// SimChar database builder CLI — the "SimChar is portable" claim of
// Section 7.2: build the database from any glyph source, serialize it to a
// small text file, and embed/reload it in other systems (browser
// extensions, mail filters, registry pipelines).
//
//   $ ./examples/build_simchar_db out.simchar [font.ttf|font.hex]
//                                  [--strategy all-pairs|popcount-band|block-index]
//
// Without a font argument, the system font is used (or the synthetic
// paper-scale font if FreeType is unavailable). A ".hex" argument loads a
// GNU Unifont hex file — the font the paper itself used. --strategy picks
// the Step II pair-mining strategy (default: auto); every strategy builds
// the identical database.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "font/freetype_font.hpp"
#include "font/hex_font.hpp"
#include "font/paper_font.hpp"
#include "simchar/simchar.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace sham;
  simchar::BuildOptions options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strategy") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--strategy needs a value\n");
        return 1;
      }
      const auto parsed = simchar::parse_pair_strategy(argv[++i]);
      if (!parsed) {
        std::fprintf(stderr,
                     "unknown strategy %s (want auto, all-pairs, popcount-band "
                     "or block-index)\n",
                     argv[i]);
        return 1;
      }
      options.pair_strategy = *parsed;
      continue;
    }
    positional.push_back(arg);
  }
  if (positional.empty()) {
    std::fprintf(stderr,
                 "usage: %s <output.simchar> [font.ttf|font.hex] "
                 "[--strategy <name>]\n",
                 argv[0]);
    return 1;
  }
  const std::string out_path = positional[0];

  font::FontSourcePtr font;
  if (positional.size() > 1) {
    const std::string font_path = positional[1];
    try {
      if (util::ends_with(font_path, ".hex")) {
        font = std::make_shared<font::HexFont>(font::HexFont::load(font_path));
      } else {
        font = std::make_shared<font::FreeTypeFont>(font_path);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot load font %s: %s\n", font_path.c_str(), e.what());
      return 1;
    }
  } else {
    font = font::FreeTypeFont::open_system_font();
    if (font == nullptr) font = font::make_paper_font({}).font;
  }
  std::printf("font: %s (%zu glyphs)\n", font->name().c_str(), font->coverage().size());

  simchar::BuildStats stats;
  const auto db = simchar::SimCharDb::build(*font, options, &stats);
  std::printf("built SimChar (%s): %zu glyphs rendered, %llu comparisons, "
              "%zu pairs over %zu characters\n",
              std::string{simchar::pair_strategy_name(stats.mining.strategy)}.c_str(),
              stats.glyphs_rendered,
              static_cast<unsigned long long>(stats.pairs_compared), db.pair_count(),
              db.character_count());
  std::printf("timings: render %.2fs, pairwise %.2fs, sparse %.2fs\n",
              stats.render_seconds, stats.compare_seconds, stats.sparse_seconds);

  const auto text = db.serialize();
  std::ofstream out{out_path, std::ios::binary};
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "# SimChar homoglyph pairs, built from " << font->name() << "\n" << text;
  out.close();
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), text.size());

  // Round-trip check: the file reloads into an identical database.
  std::ifstream in{out_path, std::ios::binary};
  std::string content{std::istreambuf_iterator<char>{in}, {}};
  const auto reloaded = simchar::SimCharDb::parse(content);
  std::printf("reload check: %zu pairs (%s)\n", reloaded.pair_count(),
              std::ranges::equal(reloaded.pairs(), db.pairs()) ? "identical" : "MISMATCH");
  return std::ranges::equal(reloaded.pairs(), db.pairs()) ? 0 : 2;
}
