// Zone audit: parse a DNS master file (the registry-zone input of Step 1),
// extract its IDNs, and report homographs of a reference list — what a
// registrar or registry could run daily over new registrations.
//
//   $ ./examples/zone_audit [zone-file] [--db-file artifact]
//
// Without an argument, a small demonstration zone is audited. With
// --db-file, the homoglyph database is memory-mapped from a prebuilt
// artifact (shamfinder_cli build-db) instead of being rebuilt from the
// font — the zero-parse cold-start path the measure driver exercises.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/shamfinder.hpp"
#include "core/warning.hpp"
#include "db/artifact.hpp"
#include "detect/engine.hpp"
#include "dns/zone_file.hpp"
#include "font/freetype_font.hpp"
#include "font/paper_font.hpp"

namespace {

constexpr const char* kDemoZone = R"($ORIGIN com.
$TTL 172800
google          IN NS ns1.google.com.
xn--ggle-55da   IN NS ns1.evil-hosting.example.
xn--ggle-55da   IN A  203.0.113.7
xn--amazn-uce   IN NS ns1.parkingcrew.net.
wikipedia       IN NS ns0.wikimedia.org.
xn--tsta8290bfzd IN NS ns1.alibabadns.com.
facebook        IN NS a.ns.facebook.com.
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace sham;

  std::string zone_path;
  std::string db_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--db-file" && i + 1 < argc) {
      db_file = argv[++i];
    } else {
      zone_path = arg;
    }
  }

  std::string zone_text;
  if (!zone_path.empty()) {
    std::ifstream in{zone_path};
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", zone_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    zone_text = buf.str();
  } else {
    zone_text = kDemoZone;
    std::printf("(no zone file given; auditing a built-in demo zone)\n\n");
  }

  const auto zone = dns::parse_zone(zone_text);
  std::printf("zone parsed: %zu records, %zu distinct owners\n", zone.records.size(),
              zone.owners().size());

  std::vector<std::string> registered;
  for (const auto& owner : zone.owners()) registered.push_back(owner.str());

  const auto idns = core::ShamFinder::extract_idns(registered, "com");
  std::printf("IDNs under .com: %zu\n\n", idns.size());

  std::vector<std::string> references{"google", "amazon", "facebook",
                                      "wikipedia", "paypal"};
  std::vector<detect::Match> matches;
  if (!db_file.empty()) {
    const auto engine = detect::Engine::from_db_file(db_file);
    std::printf("database mapped from %s (generation %llu)\n", db_file.c_str(),
                static_cast<unsigned long long>(engine.artifact()->generation()));
    if (!engine.artifact()->references().empty()) {
      references = engine.artifact()->references();
    }
    matches = engine.detect({.references = references, .idns = idns}).matches;
  } else {
    font::FontSourcePtr font = font::FreeTypeFont::open_system_font();
    if (font == nullptr) font = font::make_paper_font({}).font;
    const auto finder = core::ShamFinder::build_from_font(*font);
    matches = finder.find_homographs(references, idns);
  }
  std::printf("homographs of the reference list: %zu\n\n", matches.size());
  for (const auto& match : matches) {
    const auto warning = core::make_warning(match, references[match.reference_index],
                                            idns[match.idn_index]);
    std::printf("%s\n", warning.render().c_str());
  }
  return 0;
}
