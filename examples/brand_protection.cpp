// Brand protection: enumerate the IDN homographs an attacker could
// register against your brand, so you can register or monitor them —
// the defensive-registration behaviour the paper observes in Table 13.
//
//   $ ./examples/brand_protection [brand]
#include <cstdio>
#include <string>

#include "detect/candidates.hpp"
#include "font/freetype_font.hpp"
#include "font/paper_font.hpp"
#include "core/shamfinder.hpp"
#include "core/warning.hpp"
#include "unicode/utf8.hpp"

int main(int argc, char** argv) {
  using namespace sham;
  const std::string brand = argc > 1 ? argv[1] : "google";

  font::FontSourcePtr font = font::FreeTypeFont::open_system_font();
  if (font == nullptr) font = font::make_paper_font({}).font;
  const auto finder = core::ShamFinder::build_from_font(*font);

  detect::CandidateOptions options;
  options.max_substitutions = 2;
  options.max_candidates = 200;
  const auto candidates = detect::generate_candidates(finder.db(), brand, options);

  std::printf("%zu registerable homograph candidates for \"%s\" (showing 25):\n\n",
              candidates.size(), brand.c_str());
  std::printf("%-20s %-28s %s\n", "display", "registrable ACE", "substitutions");
  std::size_t shown = 0;
  for (const auto& c : candidates) {
    if (shown++ == 25) break;
    std::printf("%-20s %-28s %zu\n", unicode::to_utf8(c.unicode).c_str(),
                (c.ace + ".com").c_str(), c.substitutions);
  }

  // Reverting: every candidate maps back to the brand (Section 6.4).
  std::size_t reverted_ok = 0;
  for (const auto& c : candidates) {
    const auto original = finder.revert(c.unicode);
    if (original && *original == brand) ++reverted_ok;
  }
  std::printf("\nrevert check: %zu/%zu candidates revert to \"%s\"\n", reverted_ok,
              candidates.size(), brand.c_str());
  return 0;
}
