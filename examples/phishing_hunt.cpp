// Phishing hunt: the paper's full measurement pipeline on a synthetic
// .com ecosystem — generate the world, extract IDNs, detect homographs
// with UC vs SimChar vs the union, then walk the liveness funnel
// (NS -> A -> port scan), classify the active sites, and check blacklists.
//
//   $ ./examples/phishing_hunt [total_domains]
#include <cstdio>
#include <cstdlib>

#include "measure/wild_experiments.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sham;

  measure::EnvironmentConfig env_config;
  env_config.font_scale = 0.25;  // small font: fast DB build for a demo
  std::printf("building SimChar + homoglyph databases...\n");
  const auto env = measure::Environment::create(env_config);

  internet::ScenarioConfig scenario;
  scenario.total_domains = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60'000;
  scenario.attack_scale = 0.2;  // ~650 planted homographs
  std::printf("generating a synthetic .com ecosystem (%zu domains)...\n",
              scenario.total_domains);
  const auto ctx = measure::make_wild_context(env, scenario);

  std::printf("\n-- datasets --\n");
  for (const auto& row : measure::dataset_statistics(ctx.scenario)) {
    std::printf("%-16s %9zu domains  %6zu IDNs\n", row.source.c_str(), row.domains,
                row.idns);
  }

  const auto counts = measure::detection_counts(ctx);
  std::printf("\n-- detection (Table 8 shape: union ~8x UC-only) --\n");
  std::printf("UC only        : %zu homographs\n", counts.uc);
  std::printf("SimChar only   : %zu homographs\n", counts.simchar);
  std::printf("UC + SimChar   : %zu homographs\n", counts.union_all);
  std::printf("ground truth   : %zu planted, %zu found, %zu missed, %zu extra\n",
              counts.planted, counts.true_positives, counts.false_negatives,
              counts.extra_detections);

  std::printf("\n-- top targets --\n");
  for (const auto& row : measure::top_targets(ctx)) {
    std::printf("%-16s %4zu homographs\n", row.reference.c_str(), row.homographs);
  }

  const auto funnel = measure::port_scan_funnel(ctx);
  std::printf("\n-- liveness funnel --\n");
  std::printf("detected %zu -> NS %zu -> A %zu -> live %zu (80: %zu, 443: %zu)\n",
              funnel.detected, funnel.with_ns, funnel.with_a, funnel.active,
              funnel.open_80, funnel.open_443);

  std::printf("\n-- active-site classification --\n");
  for (const auto& row : measure::classify_active(ctx)) {
    std::printf("%-16s %5zu\n", row.category.c_str(), row.count);
  }

  std::printf("\n-- most-resolved active homographs (passive DNS) --\n");
  for (const auto& row : measure::popular_active_idns(ctx, 5)) {
    std::printf("%-14s (%-18s) %-9s %9llu resolutions\n", row.display.c_str(),
                row.ace.c_str(), row.category.c_str(),
                static_cast<unsigned long long>(row.resolutions));
  }

  std::printf("\n-- blacklists --\n");
  for (const auto& row : measure::blacklist_counts(ctx)) {
    std::printf("%-13s hpHosts %3zu  GSB %2zu  Symantec %2zu\n", row.db.c_str(),
                row.hphosts, row.gsb, row.symantec);
  }

  const auto revert = measure::revert_analysis(env, ctx);
  std::printf("\n-- reverting malicious homographs (Section 6.4) --\n");
  std::printf("%zu malicious, %zu reverted, %zu target non-popular domains\n",
              revert.malicious, revert.reverted, revert.non_popular_targets);
  for (const auto& e : revert.examples) std::printf("  %s\n", e.c_str());
  return 0;
}
