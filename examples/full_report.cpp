// Generate the complete reproduction report as markdown.
//
//   $ ./examples/full_report [out.md]
//
// Runs every experiment (character sets, perception studies, the wild
// measurement) against the standard deterministic configuration and writes
// a single document with paper-vs-measured tables.
#include <cstdio>
#include <fstream>

#include "measure/report.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace sham;
  const std::string path = argc > 1 ? argv[1] : "REPORT.md";

  measure::ReportConfig config;
  config.scenario.total_domains = 200'000;
  config.scenario.reference_count = 1'000;
  config.scenario.attack_scale = 0.5;

  util::Stopwatch watch;
  std::printf("running the full experiment suite...\n");
  const auto report = measure::generate_report(config);

  std::ofstream out{path, std::ios::binary};
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << report;
  std::printf("wrote %s (%zu bytes) in %.1fs\n", path.c_str(), report.size(),
              watch.seconds());
  return 0;
}
