// Quickstart: build the homoglyph database, detect an IDN homograph, and
// print the countermeasure warning.
//
//   $ ./examples/quickstart
//
// Uses the system font via FreeType when available (real glyphs for the
// Latin/Greek/Cyrillic homograph space) and falls back to the synthetic
// paper-scale font otherwise.
#include <cstdio>
#include <string>
#include <vector>

#include "core/shamfinder.hpp"
#include "core/warning.hpp"
#include "font/freetype_font.hpp"
#include "font/paper_font.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace sham;

  // 1) Pick a glyph source.
  font::FontSourcePtr font = font::FreeTypeFont::open_system_font();
  if (font != nullptr) {
    std::printf("font: %s\n", font->name().c_str());
  } else {
    font = font::make_paper_font({}).font;
    std::printf("font: %s (FreeType unavailable)\n", font->name().c_str());
  }

  // 2) Build SimChar from the font and compose the homoglyph DB with UC.
  util::Stopwatch watch;
  simchar::BuildStats stats;
  const auto finder = core::ShamFinder::build_from_font(*font, {}, &stats);
  std::printf(
      "SimChar built in %.1fs: %zu glyphs, %llu comparisons, %zu pairs "
      "(threshold delta<=4)\n",
      watch.seconds(), stats.glyphs_rendered,
      static_cast<unsigned long long>(stats.pairs_compared),
      finder.simchar().pair_count());
  std::printf("homoglyph DB (UC + SimChar): %zu pairs over %zu characters\n\n",
              finder.db().pair_count(), finder.db().character_count());

  // 3) Step 1+2: a registered-domain list; extract the IDNs.
  const std::vector<std::string> registered{
      "google.com",
      "xn--ggle-55da.com",     // gооgle (Cyrillic о twice, the Fig. 2 example)
      "xn--amazn-uce.com",     // amazοn (Greek omicron)
      "example.com",
      "xn--tsta8290bfzd.com",  // 阿里巴巴 (benign Chinese IDN)
  };
  const auto idns = core::ShamFinder::extract_idns(registered, "com");
  std::printf("extracted %zu IDNs from %zu registered domains\n", idns.size(),
              registered.size());

  // 4) Step 3: match against a reference list.
  const std::vector<std::string> references{"google", "amazon", "facebook"};
  detect::DetectionStats dstats;
  const auto matches = finder.find_homographs(references, idns, &dstats);
  std::printf("detection: %zu matches (%llu candidate pairs, %.3f ms)\n\n",
              matches.size(),
              static_cast<unsigned long long>(dstats.length_bucket_hits),
              dstats.seconds * 1e3);

  // 5) Countermeasure UI (Section 7.2 of the paper).
  for (const auto& match : matches) {
    const auto warning = core::make_warning(match, references[match.reference_index],
                                            idns[match.idn_index]);
    std::printf("%s\n", warning.render().c_str());
  }

  if (matches.empty()) {
    std::printf("no homographs detected — with the system font, try a pair the\n"
                "font renders identically (coverage varies by font).\n");
  }
  return 0;
}
