// Glyph explorer: visualize how SimChar sees characters — render glyph
// bitmaps as ASCII art, show the ∆ metric between pairs, and print the
// ∆-ladder of a letter (the Figure 6 view: homoglyph candidates of 'e'
// at ∆ = 0..6).
//
//   $ ./examples/glyph_explorer [letter]
#include <algorithm>
#include <cstdio>

#include "font/freetype_font.hpp"
#include "font/metrics.hpp"
#include "font/paper_font.hpp"
#include "unicode/idna_properties.hpp"
#include "unicode/utf8.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace sham;
  const char letter = argc > 1 ? argv[1][0] : 'e';

  font::FontSourcePtr font = font::FreeTypeFont::open_system_font();
  if (font == nullptr) font = font::make_paper_font({}).font;
  std::printf("font: %s\n\n", font->name().c_str());

  const auto base = font->glyph(static_cast<unicode::CodePoint>(letter));
  if (!base) {
    std::fprintf(stderr, "font lacks '%c'\n", letter);
    return 1;
  }

  // Side-by-side: the letter vs its closest homoglyph candidates.
  struct Rung {
    unicode::CodePoint cp;
    int delta;
  };
  std::vector<Rung> ladder;
  for (const auto cp : font->coverage()) {
    if (cp == static_cast<unicode::CodePoint>(letter)) continue;
    if (!unicode::is_idna_permitted(cp)) continue;
    const auto g = font->glyph(cp);
    if (!g) continue;
    const int d = font::delta_bounded(*base, *g, 6);
    if (d <= 6) ladder.push_back({cp, d});
  }
  std::sort(ladder.begin(), ladder.end(),
            [](const Rung& a, const Rung& b) { return a.delta < b.delta; });

  std::printf("'%c' and its nearest IDNA-permitted glyphs (delta <= 6, Figure 6 view):\n",
              letter);
  for (const auto& r : ladder) {
    std::printf("  delta=%d  %s  '%s'  PSNR=%.1f dB  SSIM=%.3f%s\n", r.delta,
                util::format_codepoint(r.cp).c_str(), unicode::to_utf8(r.cp).c_str(),
                font::psnr(*base, *font->glyph(r.cp)),
                font::ssim(*base, *font->glyph(r.cp)),
                r.delta <= 4 ? "  [SimChar homoglyph]" : "");
  }
  if (ladder.empty()) std::printf("  (none in this font)\n");

  // Render the letter and its closest candidate side by side.
  if (!ladder.empty()) {
    const auto other = *font->glyph(ladder.front().cp);
    std::printf("\n'%c' (left) vs %s (right), differing pixels marked 'x':\n", letter,
                util::format_codepoint(ladder.front().cp).c_str());
    for (int y = 0; y < font::GlyphBitmap::kSize; ++y) {
      std::string left, right;
      for (int x = 0; x < font::GlyphBitmap::kSize; ++x) {
        left += base->get(x, y) ? '#' : '.';
        const bool differs = base->get(x, y) != other.get(x, y);
        right += differs ? 'x' : (other.get(x, y) ? '#' : '.');
      }
      std::printf("%s   %s\n", left.c_str(), right.c_str());
    }
  }
  return 0;
}
