// shamfinder_cli — a command-line front end over the whole framework.
//
//   check <domain> --refs name1,name2,...   detect + explain a homograph
//   candidates <brand> [max]                registerable homographs
//   revert <domain>                         recover the original (Section 6.4)
//   inspect <utf8-char-or-U+XXXX>           character dossier + homoglyphs
//   policy <domain>                         browser display-policy decisions
//   serve --refs a,b,c                      resident service over stdin domains
//   replay                                  closed-loop replay + latency report
//   build-db <path> --refs a,b,c            serialize the DB artifact (mmap-ready)
//   scale-run --db-file p --zone tld:path   multi-TLD streaming fleet over one
//                                           shared artifact (JSON report)
//
// The homoglyph database is built once per invocation from the system font
// (or the synthetic font without FreeType) — or, with --db-file, memory-
// mapped from a prebuilt artifact (see build-db) with zero parsing.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/browser_policy.hpp"
#include "core/shamfinder.hpp"
#include "core/warning.hpp"
#include "db/artifact.hpp"
#include "detect/candidates.hpp"
#include "detect/skeleton_index.hpp"
#include "font/freetype_font.hpp"
#include "font/paper_font.hpp"
#include "idna/idna.hpp"
#include "measure/scale_run.hpp"
#include "serve/replay.hpp"
#include "serve/server.hpp"
#include "unicode/blocks.hpp"
#include "unicode/idna_properties.hpp"
#include "unicode/utf8.hpp"
#include "util/strings.hpp"

namespace {

using namespace sham;

font::FontSourcePtr open_font() {
  font::FontSourcePtr font = font::FreeTypeFont::open_system_font();
  if (font == nullptr) font = font::make_paper_font({}).font;
  return font;
}

core::ShamFinder make_finder(const core::ShamFinderConfig& config = {}) {
  const auto font = open_font();
  std::fprintf(stderr, "[db] building from %s ...\n", font->name().c_str());
  return core::ShamFinder::build_from_font(*font, config);
}

std::shared_ptr<const db::DbArtifact> load_artifact(const std::string& path) {
  auto artifact =
      std::make_shared<const db::DbArtifact>(db::DbArtifact::load(path));
  std::fprintf(stderr,
               "[db] mapped %s: %zu bytes, generation %llu, %zu reference(s), "
               "skeleton %s\n",
               path.c_str(), artifact->file_size(),
               static_cast<unsigned long long>(artifact->generation()),
               artifact->references().size(),
               artifact->has_skeleton() ? "yes" : "no");
  return artifact;
}

int usage() {
  std::fprintf(stderr,
               "usage: shamfinder_cli <command> ...\n"
               "  build-db <out-path>            build the databases and serialize\n"
               "        [--refs a,b,c]           them (plus a reference-side skeleton\n"
               "        [--no-panel]             index and the glyph panel) into one\n"
               "                                 mmap-ready artifact file\n"
               "  check <domain> --refs a,b,c    detect homograph vs references\n"
               "        [--db-file path]         mmap a build-db artifact instead of\n"
               "                                 building from the font (refs default\n"
               "                                 to the artifact's reference list)\n"
               "        [--strategy serial|indexed|parallel|skeleton] [--threads N]\n"
               "        [--repeat N]             run the query N times (shows the\n"
               "                                 engine's index/result cache at work)\n"
               "        [--join auto|idn|refs]   skeleton join direction\n"
               "        [--stats-json]           print DetectionStats as JSON\n"
               "  candidates <brand> [max]       enumerate registerable homographs\n"
               "  revert <domain>                recover the spoofed original\n"
               "  inspect <char|U+XXXX>          character dossier\n"
               "  policy <domain>                browser display decisions\n"
               "  serve --refs a,b,c             read one IDN per stdin line, detect\n"
               "        [--db-file path]         each through the resident server,\n"
               "        [--slots N] [--queue N]  report per-domain verdicts and the\n"
               "        [--policy reject|block]  server stats on EOF\n"
               "        [--stats-json]\n"
               "  replay [--clients N] [--requests N] [--slots N] [--seed N]\n"
               "        [--no-verify] [--db-file path]\n"
               "                                 synthetic closed-loop replay; prints\n"
               "                                 the latency/coalescing report JSON\n"
               "  scale-run --db-file path       stream registry zones through one\n"
               "        --zone <tld>:<path>      engine per TLD, all workers mapping\n"
               "        [--zone ...]             the shared build-db artifact; prints\n"
               "        [--batch N] [--passes N] the fleet throughput/RSS report as\n"
               "        [--strategy ...]         JSON (exit 1 if any worker failed)\n"
               "        [--domains N]            synthesize N-domain zones on the fly\n"
               "        [--tlds com,net]         instead of reading --zone files\n"
               "        [--seed N] [--shards N]  (seeded generator; N detection\n"
               "        [--chunk-bytes N]        shards per zone; generator chunk)\n"
               "        [--progress N]           stderr progress line every N domains\n");
  return 2;
}

/// build-db <out-path> [--refs a,b,c] [--no-panel]: serialize the full
/// preprocessing output into one mmap-ready artifact. When references are
/// given, a reference-side skeleton index is built and embedded so a
/// loading engine's first skeleton query skips the index build.
int cmd_build_db(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string out_path = args[0];
  std::vector<std::string> refs;
  bool include_panel = true;
  core::ShamFinderConfig config;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--no-panel") {
      include_panel = false;
    } else if (args[i] == "--refs" && i + 1 < args.size()) {
      for (const auto part : util::split(args[++i], ',')) refs.emplace_back(part);
    } else {
      std::fprintf(stderr, "build-db: unknown argument %s\n", args[i].c_str());
      return 2;
    }
  }
  const auto font = open_font();
  std::fprintf(stderr, "[db] building from %s ...\n", font->name().c_str());
  const auto finder = core::ShamFinder::build_from_font(*font, config);

  db::WriteRequest request;
  request.simchar = &finder.simchar();
  request.homoglyph = &finder.db();

  db::SkeletonFlat skeleton;
  if (!refs.empty()) {
    const detect::SkeletonIndex index{
        finder.db(), std::span<const std::string>{refs},
        {.max_bucket_occupancy = config.engine.skeleton_bucket_cap}};
    skeleton = index.to_flat();
    request.references = refs;
    request.reference_fingerprint =
        detect::label_set_fingerprint(std::span<const std::string>{refs});
    request.skeleton = &skeleton;
  }

  std::optional<simchar::RepertoirePanel> panel;
  if (include_panel) {
    panel = simchar::render_repertoire_panel(*font, config.build);
    request.panel = &panel->panel;
    request.glyph_cps = panel->cps;
    request.glyph_popcounts = panel->popcounts;
  }

  db::write_db_file(out_path, request);
  const auto artifact = db::DbArtifact::load(out_path);
  std::printf("wrote %s: %zu bytes, generation %llu, %zu pair(s), "
              "%zu reference(s), skeleton %s, glyph panel %s\n",
              out_path.c_str(), artifact.file_size(),
              static_cast<unsigned long long>(artifact.generation()),
              finder.simchar().pairs().size(), artifact.references().size(),
              artifact.has_skeleton() ? "yes" : "no",
              artifact.has_glyph_panel() ? "yes" : "no");
  return 0;
}

/// scale-run --db-file <path> --zone <tld>:<zone-path> [--zone ...]
/// [--batch N] [--passes N] [--strategy s] [--domains N] [--tlds a,b]
/// [--seed N] [--shards N] [--chunk-bytes N] [--progress N]: the multi-TLD
/// streaming fleet — one engine per zone, every worker mapping the same
/// artifact, zones streamed in bounded-memory batches. `--domains N`
/// replaces on-disk zones with seed-deterministic synthetic zones
/// generated on the fly (never materialized); `--progress N` reports
/// domains streamed and the current resident set every N owner names.
/// Prints the FleetReport JSON.
int cmd_scale_run(const std::vector<std::string>& args) {
  measure::FleetOptions options;
  std::size_t domains = 0;
  std::uint64_t seed = 2019;
  std::size_t chunk_bytes = 256 * 1024;
  std::vector<std::string> tlds = {"com"};
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--db-file" && i + 1 < args.size()) {
      options.db_file = args[++i];
    } else if (args[i] == "--zone" && i + 1 < args.size()) {
      const std::string spec = args[++i];
      const auto colon = spec.find(':');
      if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
        std::fprintf(stderr, "scale-run: --zone expects <tld>:<path>, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      options.zones.push_back({spec.substr(0, colon), spec.substr(colon + 1)});
    } else if (args[i] == "--batch" && i + 1 < args.size()) {
      options.batch_size = std::stoul(args[++i]);
    } else if (args[i] == "--passes" && i + 1 < args.size()) {
      options.passes = std::stoul(args[++i]);
    } else if (args[i] == "--domains" && i + 1 < args.size()) {
      domains = std::stoul(args[++i]);
    } else if (args[i] == "--tlds" && i + 1 < args.size()) {
      tlds.clear();
      for (const auto part : util::split(args[++i], ',')) tlds.emplace_back(part);
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = std::stoull(args[++i]);
    } else if (args[i] == "--shards" && i + 1 < args.size()) {
      options.shards = std::stoul(args[++i]);
    } else if (args[i] == "--chunk-bytes" && i + 1 < args.size()) {
      chunk_bytes = std::stoul(args[++i]);
    } else if (args[i] == "--progress" && i + 1 < args.size()) {
      options.progress_interval = std::stoul(args[++i]);
    } else if (args[i] == "--strategy" && i + 1 < args.size()) {
      const auto strategy = detect::parse_strategy(args[++i]);
      if (!strategy) {
        std::fprintf(stderr, "scale-run: unknown strategy %s\n", args[i].c_str());
        return 2;
      }
      options.strategy = *strategy;
    } else {
      std::fprintf(stderr, "scale-run: unknown argument %s\n", args[i].c_str());
      return 2;
    }
  }
  if (domains > 0) {
    // Synthetic fleet: one generated zone per TLD (which=2, the union
    // list, so every one of the N population indexes is streamed).
    for (const auto& tld : tlds) {
      measure::FleetZone zone;
      zone.tld = tld;
      zone.scenario.seed = seed;
      zone.scenario.total_domains = domains;
      zone.which = 2;
      zone.chunk_bytes = chunk_bytes;
      options.zones.push_back(std::move(zone));
    }
  }
  if (options.db_file.empty() || options.zones.empty()) {
    std::fprintf(stderr,
                 "scale-run: --db-file and at least one --zone or --domains "
                 "are required\n");
    return usage();
  }
  if (options.progress_interval > 0) {
    options.on_progress = [](const std::string& tld,
                             const measure::StreamProgress& p) {
      std::fprintf(stderr,
                   "[scale-run] .%s: %zu domains, %zu IDNs, RSS %zu KiB\n",
                   tld.c_str(), p.domains, p.idns, p.rss_kib);
    };
  }
  const auto report = measure::run_fleet(options);
  std::printf("%s\n", report.to_json(2).c_str());
  if (!report.ok()) {
    for (const auto& z : report.zones) {
      if (!z.error.empty()) {
        std::fprintf(stderr, "scale-run: .%s failed: %s\n", z.tld.c_str(),
                     z.error.c_str());
      }
    }
    return 1;
  }
  return 0;
}

std::optional<unicode::U32String> label_of(const std::string& domain) {
  // Accept either wire form (xn--) or UTF-8; use the SLD label.
  const auto dot = domain.find('.');
  const std::string label = dot == std::string::npos ? domain : domain.substr(0, dot);
  if (idna::is_a_label(label)) return idna::to_u_label(label);
  return unicode::decode_utf8(label);
}

int cmd_check(const std::vector<std::string>& raw_args) {
  if (raw_args.empty()) return usage();
  bool stats_json = false;
  std::vector<std::string> args;
  for (const auto& arg : raw_args) {
    if (arg == "--stats-json") {
      stats_json = true;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) return usage();
  std::vector<std::string> refs;
  core::ShamFinderConfig config;
  std::size_t repeat = 1;
  std::string db_file;
  for (std::size_t i = 1; i + 1 < args.size(); ++i) {
    if (args[i] == "--db-file") {
      db_file = args[i + 1];
    } else if (args[i] == "--repeat") {
      const auto& value = args[i + 1];
      if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos ||
          std::stoul(value) == 0) {
        std::fprintf(stderr, "check: --repeat needs a positive integer, got %s\n",
                     value.c_str());
        return 2;
      }
      repeat = std::stoul(value);
    } else if (args[i] == "--join") {
      const auto& value = args[i + 1];
      if (value == "auto") {
        config.engine.join = detect::SkeletonJoin::kAuto;
      } else if (value == "idn") {
        config.engine.join = detect::SkeletonJoin::kIdnIndex;
      } else if (value == "refs") {
        config.engine.join = detect::SkeletonJoin::kReferenceIndex;
      } else {
        std::fprintf(stderr, "check: unknown join %s (auto|idn|refs)\n", value.c_str());
        return 2;
      }
    } else if (args[i] == "--refs") {
      for (const auto part : util::split(args[i + 1], ',')) {
        refs.emplace_back(part);
      }
    } else if (args[i] == "--strategy") {
      const auto strategy = detect::parse_strategy(args[i + 1]);
      if (!strategy) {
        std::fprintf(stderr,
                     "check: unknown strategy %s (serial|indexed|parallel|skeleton)\n",
                     args[i + 1].c_str());
        return 2;
      }
      config.engine.strategy = *strategy;
    } else if (args[i] == "--threads") {
      const auto& value = args[i + 1];
      if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "check: --threads needs a non-negative integer, got %s\n",
                     value.c_str());
        return 2;
      }
      config.engine.threads = std::stoul(value);
    }
  }
  const auto label = label_of(args[0]);
  if (!label) {
    std::fprintf(stderr, "check: cannot decode %s\n", args[0].c_str());
    return 2;
  }
  // Either mmap a prebuilt artifact (zero-parse cold start; the engine
  // arrives with the artifact's reference-side skeleton index pre-seeded)
  // or build from the font. Both paths run the same detect() entry point.
  std::optional<core::ShamFinder> finder;
  std::optional<detect::Engine> engine;
  if (!db_file.empty()) {
    const auto artifact = load_artifact(db_file);
    if (refs.empty()) refs = artifact->references();
    engine.emplace(detect::Engine::from_db_artifact(artifact, config.engine));
  } else {
    finder.emplace(make_finder(config));
  }
  if (refs.empty()) {
    std::fprintf(stderr, "check: need --refs name1,name2,... "
                 "(or a --db-file with embedded references)\n");
    return 2;
  }
  std::vector<detect::IdnEntry> idns{{idna::to_a_label(*label), *label}};
  detect::DetectionStats stats;
  std::vector<detect::Match> matches;
  for (std::size_t iteration = 0; iteration < repeat; ++iteration) {
    if (engine) {
      auto response = engine->detect({.references = refs, .idns = idns});
      matches = std::move(response.matches);
      stats = response.stats;
    } else {
      matches = finder->find_homographs(refs, idns, &stats);
    }
    const char* served = stats.result_cache_hits != 0  ? "result memo"
                         : stats.index_cache_hits != 0 ? "cached index"
                         : stats.index_cache_updates != 0
                             ? "incrementally updated index"
                             : "cold build";
    std::fprintf(stderr,
                 "[detect #%zu] %s%s, %zu thread(s), %zu shard(s), %.3f ms "
                 "(%s; build %.3f ms, gen %llu)\n",
                 iteration + 1,
                 std::string{detect::strategy_name(config.engine.strategy)}.c_str(),
                 stats.inverted_join ? "/inverted" : "", stats.threads_used,
                 stats.shards_used, stats.seconds * 1e3, served,
                 (stats.index_build_seconds + stats.skeleton_build_seconds) * 1e3,
                 static_cast<unsigned long long>(stats.db_generation));
  }
  // Same versioned schema the serve stats and benches emit.
  if (stats_json) std::printf("%s\n", stats.to_json(2).c_str());
  if (matches.empty()) {
    std::printf("%s: no homograph of the given references detected\n",
                args[0].c_str());
    return 0;
  }
  for (const auto& match : matches) {
    const auto warning =
        core::make_warning(match, refs[match.reference_index], idns[0]);
    std::printf("%s\n", warning.render().c_str());
  }
  return 1;  // homograph found
}

int cmd_candidates(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::size_t max = args.size() > 1 ? std::stoul(args[1]) : 40;
  const auto finder = make_finder();
  detect::CandidateOptions options;
  options.max_candidates = max;
  const auto candidates = detect::generate_candidates(finder.db(), args[0], options);
  std::printf("%zu candidates for \"%s\":\n", candidates.size(), args[0].c_str());
  for (const auto& c : candidates) {
    std::printf("  %-20s %s\n", unicode::to_utf8(c.unicode).c_str(), c.ace.c_str());
  }
  return 0;
}

int cmd_revert(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto label = label_of(args[0]);
  if (!label) {
    std::fprintf(stderr, "revert: cannot decode %s\n", args[0].c_str());
    return 2;
  }
  const auto finder = make_finder();
  const auto original = finder.revert(*label);
  if (!original) {
    std::printf("%s: no full ASCII original under this database\n", args[0].c_str());
    return 1;
  }
  std::printf("%s -> %s\n", unicode::to_utf8(*label).c_str(), original->c_str());
  return 0;
}

int cmd_inspect(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  unicode::CodePoint cp = 0;
  if (util::starts_with(args[0], "U+") || util::starts_with(args[0], "u+")) {
    cp = util::parse_hex_codepoint(args[0]);
  } else {
    const auto decoded = unicode::decode_utf8(args[0]);
    if (!decoded || decoded->empty()) {
      std::fprintf(stderr, "inspect: cannot decode argument\n");
      return 2;
    }
    cp = decoded->front();
  }
  std::printf("%s '%s'\n", util::format_codepoint(cp).c_str(),
              unicode::to_utf8(cp).c_str());
  std::printf("  block   : %s\n", std::string{unicode::block_name(cp)}.c_str());
  std::printf("  idna    : %s\n",
              std::string{unicode::idna_property_name(unicode::idna_property(cp))}.c_str());
  const auto finder = make_finder();
  const auto homoglyphs = finder.db().homoglyphs_of(cp);
  std::printf("  homoglyphs (%zu):", homoglyphs.size());
  for (const auto h : homoglyphs) {
    std::printf(" %s'%s'", util::format_codepoint(h).c_str(),
                unicode::to_utf8(h).c_str());
  }
  std::printf("\n");
  return 0;
}

int cmd_policy(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto label = label_of(args[0]);
  if (!label) {
    std::fprintf(stderr, "policy: cannot decode %s\n", args[0].c_str());
    return 2;
  }
  const auto finder = make_finder();
  const auto report = [&](const char* name, const core::PolicyResult& r) {
    std::printf("  %-24s %-9s (%s)\n", name,
                r.decision == core::DisplayDecision::kUnicode ? "Unicode" : "Punycode",
                r.reason.c_str());
  };
  std::printf("display decisions for %s:\n", unicode::to_utf8(*label).c_str());
  report("legacy", core::legacy_policy(*label));
  report("mixed-script", core::mixed_script_policy(*label));
  report("whole-script-confusable", core::whole_script_policy(*label, &finder.db()));
  return 0;
}

bool parse_count(const std::string& value, std::size_t* out) {
  if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *out = std::stoul(value);
  return true;
}

/// Resident service: one server over the font-built database, one request
/// per stdin line. Lines are submitted as they arrive (the slots work
/// concurrently); verdicts print in input order on EOF.
int cmd_serve(const std::vector<std::string>& args) {
  std::vector<std::string> refs;
  serve::ServerOptions options;
  bool stats_json = false;
  std::string db_file;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--stats-json") {
      stats_json = true;
    } else if (args[i] == "--db-file" && i + 1 < args.size()) {
      db_file = args[++i];
    } else if (args[i] == "--refs" && i + 1 < args.size()) {
      for (const auto part : util::split(args[++i], ',')) refs.emplace_back(part);
    } else if (args[i] == "--slots" && i + 1 < args.size()) {
      if (!parse_count(args[++i], &options.slots)) {
        std::fprintf(stderr, "serve: --slots needs a positive integer\n");
        return 2;
      }
    } else if (args[i] == "--queue" && i + 1 < args.size()) {
      if (!parse_count(args[++i], &options.queue_capacity)) {
        std::fprintf(stderr, "serve: --queue needs a positive integer\n");
        return 2;
      }
    } else if (args[i] == "--policy" && i + 1 < args.size()) {
      const auto& value = args[++i];
      if (value == "reject") {
        options.overload = serve::OverloadPolicy::kRejectWhenFull;
      } else if (value == "block") {
        options.overload = serve::OverloadPolicy::kBlock;
      } else {
        std::fprintf(stderr, "serve: unknown policy %s (reject|block)\n", value.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "serve: unknown argument %s\n", args[i].c_str());
      return 2;
    }
  }
  // The server borrows its database: either the font-built one inside the
  // facade, or a view-mode database reading a mapped artifact in place
  // (the artifact shared_ptr and the view database must outlive the
  // server, hence the optionals at this scope).
  std::optional<core::ShamFinder> finder;
  std::shared_ptr<const db::DbArtifact> artifact;
  std::optional<homoglyph::HomoglyphDb> view_db;
  detect::EngineOptions engine_options;
  if (!db_file.empty()) {
    artifact = load_artifact(db_file);
    view_db.emplace(artifact->homoglyph());
    if (refs.empty()) refs = artifact->references();
  } else {
    finder.emplace(make_finder());
    engine_options = finder->engine_options();
  }
  if (refs.empty()) {
    std::fprintf(stderr, "serve: need --refs name1,name2,... "
                 "(or a --db-file with embedded references)\n");
    return 2;
  }
  const homoglyph::HomoglyphDb& db = view_db ? *view_db : finder->db();
  serve::DetectionServer server{db, engine_options, options};
  std::fprintf(stderr, "[serve] %zu slot(s), queue %zu, %s; reading domains "
               "from stdin ...\n",
               server.options().slots, server.options().queue_capacity,
               std::string{serve::overload_policy_name(server.options().overload)}
                   .c_str());

  std::vector<std::pair<std::string, serve::ResponseFuture>> in_flight;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    const auto label = label_of(line);
    if (!label) {
      std::fprintf(stderr, "serve: cannot decode %s, skipped\n", line.c_str());
      continue;
    }
    auto zone = std::make_shared<std::vector<detect::IdnEntry>>();
    zone->push_back({idna::to_a_label(*label), *label});
    serve::ServeRequest request;
    request.references = refs;
    request.idns = std::move(zone);
    in_flight.emplace_back(line, server.submit(std::move(request)));
  }
  int found = 0;
  for (auto& [domain, future] : in_flight) {
    auto response = future.get();
    if (response.status != serve::ServeStatus::kOk) {
      std::printf("%-30s %s\n", domain.c_str(),
                  std::string{serve::status_name(response.status)}.c_str());
      continue;
    }
    if (response.matches.empty()) {
      std::printf("%-30s clean\n", domain.c_str());
    } else {
      ++found;
      std::printf("%-30s HOMOGRAPH of %s\n", domain.c_str(),
                  refs[response.matches.front().reference_index].c_str());
    }
  }
  if (stats_json) std::printf("%s\n", server.stats().to_json(2).c_str());
  return found > 0 ? 1 : 0;
}

/// Synthetic closed-loop replay against a resident server (the library's
/// own workload generator); prints the ReplayReport JSON.
int cmd_replay(const std::vector<std::string>& args) {
  serve::ReplayConfig config;
  serve::ServerOptions options;
  options.queue_capacity = 128;
  std::string db_file;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto need = [&](std::size_t* out, const char* what) {
      if (i + 1 >= args.size() || !parse_count(args[++i], out)) {
        std::fprintf(stderr, "replay: %s needs a positive integer\n", what);
        return false;
      }
      return true;
    };
    if (args[i] == "--no-verify") {
      config.verify = false;
    } else if (args[i] == "--db-file" && i + 1 < args.size()) {
      db_file = args[++i];
    } else if (args[i] == "--clients") {
      if (!need(&config.clients, "--clients")) return 2;
    } else if (args[i] == "--requests") {
      if (!need(&config.requests_per_client, "--requests")) return 2;
    } else if (args[i] == "--slots") {
      if (!need(&options.slots, "--slots")) return 2;
    } else if (args[i] == "--seed") {
      std::size_t seed = 0;
      if (!need(&seed, "--seed")) return 2;
      config.seed = seed;
    } else {
      std::fprintf(stderr, "replay: unknown argument %s\n", args[i].c_str());
      return 2;
    }
  }
  std::optional<core::ShamFinder> finder;
  std::shared_ptr<const db::DbArtifact> artifact;
  std::optional<homoglyph::HomoglyphDb> view_db;
  detect::EngineOptions engine_options;
  if (!db_file.empty()) {
    artifact = load_artifact(db_file);
    view_db.emplace(artifact->homoglyph());
  } else {
    finder.emplace(make_finder());
    engine_options = finder->engine_options();
  }
  const homoglyph::HomoglyphDb& db = view_db ? *view_db : finder->db();
  const auto workload = serve::make_replay_workload(db, 16, 12, 2, 2000, config.seed);
  serve::DetectionServer server{db, engine_options, options};
  const auto report = serve::run_replay(server, db, workload, config);
  std::printf("%s\n", report.to_json(2).c_str());
  return report.verified ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);

  // Corrupt/missing artifacts (and other environmental failures) surface
  // as exceptions with a diagnostic naming the failing check — print it,
  // don't terminate().
  try {
    if (command == "build-db") return cmd_build_db(args);
    if (command == "scale-run") return cmd_scale_run(args);
    if (command == "check") return cmd_check(args);
    if (command == "candidates") return cmd_candidates(args);
    if (command == "revert") return cmd_revert(args);
    if (command == "inspect") return cmd_inspect(args);
    if (command == "policy") return cmd_policy(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "replay") return cmd_replay(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", command.c_str(), e.what());
    return 2;
  }
  return usage();
}
