#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dns/domain.hpp"
#include "dns/langid.hpp"
#include "dns/records.hpp"
#include "dns/zone_file.hpp"
#include "dns/zone_stream.hpp"
#include "util/rng.hpp"

namespace sham::dns {
namespace {

TEST(DomainName, ParseAndNormalize) {
  const auto d = DomainName::parse("WWW.Example.COM");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->str(), "www.example.com");
}

TEST(DomainName, TrailingDotAccepted) {
  const auto d = DomainName::parse("example.com.");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->str(), "example.com");
}

TEST(DomainName, RejectsInvalid) {
  EXPECT_FALSE(DomainName::parse("").has_value());
  EXPECT_FALSE(DomainName::parse(".").has_value());
  EXPECT_FALSE(DomainName::parse("a..b").has_value());
  EXPECT_FALSE(DomainName::parse("-leading.com").has_value());
  EXPECT_FALSE(DomainName::parse("trailing-.com").has_value());
  EXPECT_FALSE(DomainName::parse("has space.com").has_value());
  EXPECT_FALSE(DomainName::parse("exämple.com").has_value());  // raw non-ASCII
  EXPECT_FALSE(DomainName::parse(std::string(64, 'a') + ".com").has_value());
  EXPECT_FALSE(DomainName::parse(std::string(300, 'a')).has_value());
  EXPECT_THROW(DomainName::parse_or_throw("!bad!"), std::invalid_argument);
}

TEST(DomainName, Accessors) {
  const auto d = DomainName::parse_or_throw("www.google.com");
  EXPECT_EQ(d.tld(), "com");
  EXPECT_EQ(d.sld(), "google");
  EXPECT_EQ(d.without_tld(), "www.google");
  EXPECT_EQ(d.labels().size(), 3u);
  const auto single = DomainName::parse_or_throw("localhost");
  EXPECT_EQ(single.tld(), "");
  EXPECT_EQ(single.sld(), "localhost");
}

TEST(DomainName, IdnDetection) {
  EXPECT_TRUE(DomainName::parse_or_throw("xn--ggle-55da.com").is_idn());
  EXPECT_FALSE(DomainName::parse_or_throw("google.com").is_idn());
}

TEST(Ipv4, ParseAndFormat) {
  const auto a = Ipv4::parse("203.0.113.7");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->str(), "203.0.113.7");
  EXPECT_EQ(a->value, 0xCB007107u);
  EXPECT_FALSE(Ipv4::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.256").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5").has_value());
}

TEST(Records, TypeNames) {
  EXPECT_EQ(record_type_name(RecordType::kNs), "NS");
  EXPECT_EQ(parse_record_type("MX"), RecordType::kMx);
  EXPECT_FALSE(parse_record_type("BOGUS").has_value());
}

TEST(ZoneFile, ParsesDirectivesAndRecords) {
  const auto zone = parse_zone(
      "$ORIGIN com.\n"
      "$TTL 3600\n"
      "google      IN NS ns1.google.com.\n"
      "google      IN A  142.250.1.1\n"
      "mailhost    IN MX 10 mx.mailhost.com.\n");
  EXPECT_EQ(zone.origin.str(), "com");
  EXPECT_EQ(zone.default_ttl, 3600u);
  ASSERT_EQ(zone.records.size(), 3u);
  EXPECT_EQ(zone.records[0].owner.str(), "google.com");
  EXPECT_EQ(zone.records[0].type, RecordType::kNs);
  EXPECT_EQ(zone.records[0].target, "ns1.google.com");
  EXPECT_EQ(zone.records[1].address.str(), "142.250.1.1");
  EXPECT_EQ(zone.records[2].priority, 10);
}

TEST(ZoneFile, RelativeAndAbsoluteNames) {
  const auto zone = parse_zone(
      "$ORIGIN com.\n"
      "relative IN NS ns.hoster.net.\n"
      "absolute.org. IN NS ns.other.net.\n"
      "@ IN NS ns.root.net.\n");
  EXPECT_EQ(zone.records[0].owner.str(), "relative.com");
  EXPECT_EQ(zone.records[1].owner.str(), "absolute.org");
  EXPECT_EQ(zone.records[2].owner.str(), "com");
}

TEST(ZoneFile, OwnerContinuation) {
  const auto zone = parse_zone(
      "$ORIGIN com.\n"
      "multi IN NS ns1.x.net.\n"
      "      IN NS ns2.x.net.\n");
  ASSERT_EQ(zone.records.size(), 2u);
  EXPECT_EQ(zone.records[1].owner.str(), "multi.com");
}

TEST(ZoneFile, CommentsAndBlankLines) {
  const auto zone = parse_zone(
      "; full comment\n"
      "$ORIGIN com.\n"
      "\n"
      "a IN A 1.2.3.4 ; trailing comment\n");
  EXPECT_EQ(zone.records.size(), 1u);
}

TEST(ZoneFile, PerRecordTtl) {
  const auto zone = parse_zone(
      "$ORIGIN com.\n"
      "$TTL 86400\n"
      "a 300 IN A 1.2.3.4\n"
      "b IN 600 A 1.2.3.4\n"
      "c IN A 1.2.3.4\n");
  EXPECT_EQ(zone.records[0].ttl, 300u);
  EXPECT_EQ(zone.records[1].ttl, 600u);
  EXPECT_EQ(zone.records[2].ttl, 86400u);
}

TEST(ZoneFile, ErrorsCarryLineNumbers) {
  try {
    static_cast<void>(
        parse_zone("$ORIGIN com.\nok IN A 1.2.3.4\nbad IN A not-an-ip\n"));
    FAIL() << "expected ZoneParseError";
  } catch (const ZoneParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(ZoneFile, RejectsMalformed) {
  EXPECT_THROW(parse_zone("$ORIGIN\n"), ZoneParseError);
  EXPECT_THROW(parse_zone("$TTL abc\n"), ZoneParseError);
  EXPECT_THROW(parse_zone("name IN BOGUS x\n"), ZoneParseError);
  EXPECT_THROW(parse_zone("name IN NS\n"), ZoneParseError);
  EXPECT_THROW(parse_zone("name IN MX 10\n"), ZoneParseError);
  EXPECT_THROW(parse_zone("  IN A 1.2.3.4\n"), ZoneParseError);  // no owner yet
}

TEST(ZoneFile, SerializeParseRoundtrip) {
  const auto zone = parse_zone(
      "$ORIGIN com.\n"
      "$TTL 7200\n"
      "google IN NS ns1.google.com.\n"
      "google IN A 142.250.1.1\n"
      "m IN MX 5 mx.m.com.\n");
  const auto text = serialize_zone(zone);
  const auto again = parse_zone(text);
  ASSERT_EQ(again.records.size(), zone.records.size());
  for (std::size_t i = 0; i < zone.records.size(); ++i) {
    EXPECT_EQ(again.records[i].owner, zone.records[i].owner);
    EXPECT_EQ(again.records[i].type, zone.records[i].type);
    EXPECT_EQ(again.records[i].rdata_str(), zone.records[i].rdata_str());
  }
}

TEST(ZoneFile, OwnersDeduplicated) {
  const auto zone = parse_zone(
      "$ORIGIN com.\n"
      "a IN NS ns1.x.net.\n"
      "a IN A 1.2.3.4\n"
      "b IN NS ns1.x.net.\n");
  const auto owners = zone.owners();
  ASSERT_EQ(owners.size(), 2u);
  EXPECT_EQ(owners[0].str(), "a.com");
}

TEST(ZoneFile, StreamingParser) {
  std::size_t count = 0;
  parse_zone_stream(
      "$ORIGIN com.\n"
      "a IN A 1.2.3.4\n"
      "b IN A 1.2.3.5\n",
      [&](const ResourceRecord&) { ++count; });
  EXPECT_EQ(count, 2u);
}

// --- Range validation (truncation regressions) ------------------------

TEST(ZoneFile, TtlOverflowRejected) {
  // 2^32 used to static_cast down to 0 silently; now it is a parse error.
  EXPECT_THROW(parse_zone("$TTL 4294967296\n"), ZoneParseError);
  EXPECT_EQ(parse_zone("$TTL 4294967295\n").default_ttl, 4294967295u);
  EXPECT_THROW(parse_zone("$ORIGIN com.\na 4294967296 IN A 1.2.3.4\n"),
               ZoneParseError);
  const auto zone = parse_zone("$ORIGIN com.\na 4294967295 IN A 1.2.3.4\n");
  EXPECT_EQ(zone.records[0].ttl, 4294967295u);
  try {
    static_cast<void>(
        parse_zone("$ORIGIN com.\nok IN A 1.2.3.4\n$TTL 99999999999\n"));
    FAIL() << "expected ZoneParseError";
  } catch (const ZoneParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string{e.what()}.find("out of range"), std::string::npos);
  }
}

TEST(ZoneFile, MxPriorityOverflowRejected) {
  // 65536 used to wrap to priority 0 (best preference!) via static_cast.
  EXPECT_THROW(parse_zone("$ORIGIN com.\nm IN MX 65536 mx.m.com.\n"),
               ZoneParseError);
  const auto zone = parse_zone("$ORIGIN com.\nm IN MX 65535 mx.m.com.\n");
  EXPECT_EQ(zone.records[0].priority, 65535u);
}

// --- $ORIGIN semantics ------------------------------------------------

TEST(ZoneFile, MidFileOriginTracked) {
  const auto zone = parse_zone(
      "$ORIGIN com.\n"
      "a IN A 1.2.3.4\n"
      "$ORIGIN net.\n"
      "b IN A 1.2.3.5\n"
      "@ IN NS ns.b.net.\n");
  EXPECT_EQ(zone.records[0].owner.str(), "a.com");
  EXPECT_EQ(zone.records[1].owner.str(), "b.net");
  EXPECT_EQ(zone.records[2].owner.str(), "net");
  // Zone carries the origin in effect at end of file, not the first one.
  EXPECT_EQ(zone.origin.str(), "net");

  const auto again = parse_zone(serialize_zone(zone));
  ASSERT_EQ(again.records.size(), zone.records.size());
  for (std::size_t i = 0; i < zone.records.size(); ++i) {
    EXPECT_EQ(again.records[i], zone.records[i]) << "record " << i;
  }
}

TEST(ZoneFile, RootOriginSupported) {
  // "$ORIGIN ." means relative names are already fully qualified.
  const auto zone = parse_zone(
      "$ORIGIN .\n"
      "example.com IN A 1.2.3.4\n"
      "other.net. IN NS ns.other.net.\n");
  ASSERT_EQ(zone.records.size(), 2u);
  EXPECT_EQ(zone.records[0].owner.str(), "example.com");
  EXPECT_EQ(zone.records[1].owner.str(), "other.net");
  EXPECT_EQ(zone.origin.str(), "");  // root tracked as the empty origin

  // The root itself is not a registrable owner.
  EXPECT_THROW(parse_zone("$ORIGIN .\n@ IN A 1.2.3.4\n"), ZoneParseError);
  EXPECT_THROW(parse_zone("$ORIGIN .\n. IN A 1.2.3.4\n"), ZoneParseError);

  // Round trip: serialize omits the root $ORIGIN; absolute names survive.
  const auto again = parse_zone(serialize_zone(zone));
  ASSERT_EQ(again.records.size(), zone.records.size());
  for (std::size_t i = 0; i < zone.records.size(); ++i) {
    EXPECT_EQ(again.records[i], zone.records[i]) << "record " << i;
  }
}

// --- Incremental reader ------------------------------------------------

TEST(ZoneStream, BasicIncrementalUse) {
  std::vector<ResourceRecord> records;
  ZoneStreamReader reader{[&](const ResourceRecord& r) { records.push_back(r); }};
  reader.feed("$ORIGIN co");
  reader.feed("m.\n$TTL 360");
  reader.feed("0\na IN A 1.2.3.4\r\nb IN ");
  reader.feed("A 1.2.3.5");  // trailing line without newline
  EXPECT_EQ(reader.finish(), 2u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].owner.str(), "a.com");
  EXPECT_EQ(records[1].owner.str(), "b.com");
  EXPECT_EQ(records[0].ttl, 3600u);
  EXPECT_EQ(reader.origin(), "com");
  EXPECT_TRUE(reader.origin_seen());
  EXPECT_EQ(reader.default_ttl(), 3600u);
  EXPECT_EQ(reader.lines(), 4u);
}

TEST(ZoneStream, LifecycleEnforced) {
  ZoneStreamReader reader{[](const ResourceRecord&) {}};
  reader.feed("$ORIGIN com.\n");
  reader.finish();
  EXPECT_THROW(reader.feed("a IN A 1.2.3.4\n"), std::logic_error);
  EXPECT_THROW(reader.finish(), std::logic_error);
}

TEST(ZoneStream, ErrorLineNumberSpansChunks) {
  ZoneStreamReader reader{[](const ResourceRecord&) {}};
  reader.feed("$ORIGIN com.\nok IN A 1.2.3.4\n");
  try {
    reader.feed("bad IN A not");
    reader.feed("-an-ip\n");
    FAIL() << "expected ZoneParseError";
  } catch (const ZoneParseError& e) {
    EXPECT_EQ(e.line(), 3u);  // absolute line number across feeds
  }
}

// Property: a stream cut into random chunks (1 byte up to the whole file)
// yields the exact record sequence of a one-shot parse. The input covers
// CRLF endings, comments, owner-continuation lines, mid-file directives,
// and a trailing unterminated line — everything that can straddle a
// chunk boundary.
class ZoneChunkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZoneChunkProperty, ChunkingInvariant) {
  const std::string text =
      "; registry feed header\r\n"
      "$ORIGIN com.\n"
      "$TTL 7200\r\n"
      "google IN NS ns1.google.com. ; delegations\r\n"
      "       IN NS ns2.google.com.\n"
      "xn--ggle-55da 300 IN A 142.250.1.1\r\n"
      "mail IN MX 10 mx.mail.com.\n"
      "$ORIGIN net.\r\n"
      "\r\n"
      "b IN A 1.2.3.5 ; comment\n"
      "  IN AAAA ::1\n"
      "@ IN NS ns.b.net.\r\n"
      "tail IN A 9.9.9.9";  // no trailing newline

  const auto expected = parse_zone(text);
  ASSERT_EQ(expected.records.size(), 8u);

  util::Rng rng{GetParam()};
  for (int round = 0; round < 64; ++round) {
    std::vector<ResourceRecord> records;
    ZoneStreamReader reader{
        [&](const ResourceRecord& r) { records.push_back(r); }};
    std::string_view rest = text;
    while (!rest.empty()) {
      const auto take =
          static_cast<std::size_t>(1 + rng.below(rest.size()));
      reader.feed(rest.substr(0, take));
      rest.remove_prefix(take);
    }
    reader.finish();

    ASSERT_EQ(records.size(), expected.records.size()) << "round " << round;
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i], expected.records[i])
          << "round " << round << " record " << i;
    }
    EXPECT_EQ(reader.origin(), expected.origin.str());
    EXPECT_EQ(reader.default_ttl(), expected.default_ttl);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneChunkProperty,
                         ::testing::Values(1u, 77u, 515u, 8191u, 20260808u));

// --- Language identification -----------------------------------------

TEST(LangId, ScriptBasedLanguages) {
  using unicode::U32String;
  EXPECT_EQ(classify_language(U32String{0x4E2D, 0x6587}), Language::kChinese);
  EXPECT_EQ(classify_language(U32String{0xD55C, 0xAD6D}), Language::kKorean);
  EXPECT_EQ(classify_language(U32String{0x3042, 0x308A}), Language::kJapanese);
  // Kanji + kana is Japanese even though kanji alone is Chinese.
  EXPECT_EQ(classify_language(U32String{0x65E5, 0x672C, 0x3054}), Language::kJapanese);
  EXPECT_EQ(classify_language(U32String{0x043C, 0x0438, 0x0440}), Language::kRussian);
  EXPECT_EQ(classify_language(U32String{0x0627, 0x0644}), Language::kArabic);
  EXPECT_EQ(classify_language(U32String{0x0E44, 0x0E17}), Language::kThai);
  EXPECT_EQ(classify_language(U32String{0x03B1, 0x03B2}), Language::kGreek);
  EXPECT_EQ(classify_language(U32String{0x05D0, 0x05D1}), Language::kHebrew);
}

TEST(LangId, LatinLanguagesByDiacritics) {
  using unicode::U32String;
  EXPECT_EQ(classify_language(U32String{'m', 0x00FC, 'n', 'c', 'h', 'e', 'n'}),
            Language::kGerman);
  EXPECT_EQ(classify_language(U32String{'d', 0x00F6, 'v', 'i', 'z'}),
            Language::kGerman);  // ö alone reads as German class
  EXPECT_EQ(classify_language(U32String{'y', 'a', 'z', 0x0131}), Language::kTurkish);
  EXPECT_EQ(classify_language(U32String{'c', 'a', 'f', 0x00E9}), Language::kFrench);
  EXPECT_EQ(classify_language(U32String{'e', 's', 'p', 'a', 0x00F1, 'a'}),
            Language::kSpanish);
  EXPECT_EQ(classify_language(U32String{'p', 'e', 'r', 0x00FA}), Language::kSpanish);
}

TEST(LangId, AsciiIsEnglish) {
  using unicode::U32String;
  EXPECT_EQ(classify_language(U32String{'p', 'l', 'a', 'i', 'n'}),
            Language::kEnglishAscii);
}

TEST(LangId, Names) {
  EXPECT_EQ(language_name(Language::kChinese), "Chinese");
  EXPECT_EQ(language_name(Language::kTurkish), "Turkish");
}

}  // namespace
}  // namespace sham::dns
