#include <gtest/gtest.h>

#include "dns/domain.hpp"
#include "dns/langid.hpp"
#include "dns/records.hpp"
#include "dns/zone_file.hpp"

namespace sham::dns {
namespace {

TEST(DomainName, ParseAndNormalize) {
  const auto d = DomainName::parse("WWW.Example.COM");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->str(), "www.example.com");
}

TEST(DomainName, TrailingDotAccepted) {
  const auto d = DomainName::parse("example.com.");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->str(), "example.com");
}

TEST(DomainName, RejectsInvalid) {
  EXPECT_FALSE(DomainName::parse("").has_value());
  EXPECT_FALSE(DomainName::parse(".").has_value());
  EXPECT_FALSE(DomainName::parse("a..b").has_value());
  EXPECT_FALSE(DomainName::parse("-leading.com").has_value());
  EXPECT_FALSE(DomainName::parse("trailing-.com").has_value());
  EXPECT_FALSE(DomainName::parse("has space.com").has_value());
  EXPECT_FALSE(DomainName::parse("exämple.com").has_value());  // raw non-ASCII
  EXPECT_FALSE(DomainName::parse(std::string(64, 'a') + ".com").has_value());
  EXPECT_FALSE(DomainName::parse(std::string(300, 'a')).has_value());
  EXPECT_THROW(DomainName::parse_or_throw("!bad!"), std::invalid_argument);
}

TEST(DomainName, Accessors) {
  const auto d = DomainName::parse_or_throw("www.google.com");
  EXPECT_EQ(d.tld(), "com");
  EXPECT_EQ(d.sld(), "google");
  EXPECT_EQ(d.without_tld(), "www.google");
  EXPECT_EQ(d.labels().size(), 3u);
  const auto single = DomainName::parse_or_throw("localhost");
  EXPECT_EQ(single.tld(), "");
  EXPECT_EQ(single.sld(), "localhost");
}

TEST(DomainName, IdnDetection) {
  EXPECT_TRUE(DomainName::parse_or_throw("xn--ggle-55da.com").is_idn());
  EXPECT_FALSE(DomainName::parse_or_throw("google.com").is_idn());
}

TEST(Ipv4, ParseAndFormat) {
  const auto a = Ipv4::parse("203.0.113.7");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->str(), "203.0.113.7");
  EXPECT_EQ(a->value, 0xCB007107u);
  EXPECT_FALSE(Ipv4::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.256").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5").has_value());
}

TEST(Records, TypeNames) {
  EXPECT_EQ(record_type_name(RecordType::kNs), "NS");
  EXPECT_EQ(parse_record_type("MX"), RecordType::kMx);
  EXPECT_FALSE(parse_record_type("BOGUS").has_value());
}

TEST(ZoneFile, ParsesDirectivesAndRecords) {
  const auto zone = parse_zone(
      "$ORIGIN com.\n"
      "$TTL 3600\n"
      "google      IN NS ns1.google.com.\n"
      "google      IN A  142.250.1.1\n"
      "mailhost    IN MX 10 mx.mailhost.com.\n");
  EXPECT_EQ(zone.origin.str(), "com");
  EXPECT_EQ(zone.default_ttl, 3600u);
  ASSERT_EQ(zone.records.size(), 3u);
  EXPECT_EQ(zone.records[0].owner.str(), "google.com");
  EXPECT_EQ(zone.records[0].type, RecordType::kNs);
  EXPECT_EQ(zone.records[0].target, "ns1.google.com");
  EXPECT_EQ(zone.records[1].address.str(), "142.250.1.1");
  EXPECT_EQ(zone.records[2].priority, 10);
}

TEST(ZoneFile, RelativeAndAbsoluteNames) {
  const auto zone = parse_zone(
      "$ORIGIN com.\n"
      "relative IN NS ns.hoster.net.\n"
      "absolute.org. IN NS ns.other.net.\n"
      "@ IN NS ns.root.net.\n");
  EXPECT_EQ(zone.records[0].owner.str(), "relative.com");
  EXPECT_EQ(zone.records[1].owner.str(), "absolute.org");
  EXPECT_EQ(zone.records[2].owner.str(), "com");
}

TEST(ZoneFile, OwnerContinuation) {
  const auto zone = parse_zone(
      "$ORIGIN com.\n"
      "multi IN NS ns1.x.net.\n"
      "      IN NS ns2.x.net.\n");
  ASSERT_EQ(zone.records.size(), 2u);
  EXPECT_EQ(zone.records[1].owner.str(), "multi.com");
}

TEST(ZoneFile, CommentsAndBlankLines) {
  const auto zone = parse_zone(
      "; full comment\n"
      "$ORIGIN com.\n"
      "\n"
      "a IN A 1.2.3.4 ; trailing comment\n");
  EXPECT_EQ(zone.records.size(), 1u);
}

TEST(ZoneFile, PerRecordTtl) {
  const auto zone = parse_zone(
      "$ORIGIN com.\n"
      "$TTL 86400\n"
      "a 300 IN A 1.2.3.4\n"
      "b IN 600 A 1.2.3.4\n"
      "c IN A 1.2.3.4\n");
  EXPECT_EQ(zone.records[0].ttl, 300u);
  EXPECT_EQ(zone.records[1].ttl, 600u);
  EXPECT_EQ(zone.records[2].ttl, 86400u);
}

TEST(ZoneFile, ErrorsCarryLineNumbers) {
  try {
    static_cast<void>(
        parse_zone("$ORIGIN com.\nok IN A 1.2.3.4\nbad IN A not-an-ip\n"));
    FAIL() << "expected ZoneParseError";
  } catch (const ZoneParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(ZoneFile, RejectsMalformed) {
  EXPECT_THROW(parse_zone("$ORIGIN\n"), ZoneParseError);
  EXPECT_THROW(parse_zone("$TTL abc\n"), ZoneParseError);
  EXPECT_THROW(parse_zone("name IN BOGUS x\n"), ZoneParseError);
  EXPECT_THROW(parse_zone("name IN NS\n"), ZoneParseError);
  EXPECT_THROW(parse_zone("name IN MX 10\n"), ZoneParseError);
  EXPECT_THROW(parse_zone("  IN A 1.2.3.4\n"), ZoneParseError);  // no owner yet
}

TEST(ZoneFile, SerializeParseRoundtrip) {
  const auto zone = parse_zone(
      "$ORIGIN com.\n"
      "$TTL 7200\n"
      "google IN NS ns1.google.com.\n"
      "google IN A 142.250.1.1\n"
      "m IN MX 5 mx.m.com.\n");
  const auto text = serialize_zone(zone);
  const auto again = parse_zone(text);
  ASSERT_EQ(again.records.size(), zone.records.size());
  for (std::size_t i = 0; i < zone.records.size(); ++i) {
    EXPECT_EQ(again.records[i].owner, zone.records[i].owner);
    EXPECT_EQ(again.records[i].type, zone.records[i].type);
    EXPECT_EQ(again.records[i].rdata_str(), zone.records[i].rdata_str());
  }
}

TEST(ZoneFile, OwnersDeduplicated) {
  const auto zone = parse_zone(
      "$ORIGIN com.\n"
      "a IN NS ns1.x.net.\n"
      "a IN A 1.2.3.4\n"
      "b IN NS ns1.x.net.\n");
  const auto owners = zone.owners();
  ASSERT_EQ(owners.size(), 2u);
  EXPECT_EQ(owners[0].str(), "a.com");
}

TEST(ZoneFile, StreamingParser) {
  std::size_t count = 0;
  parse_zone_stream(
      "$ORIGIN com.\n"
      "a IN A 1.2.3.4\n"
      "b IN A 1.2.3.5\n",
      [&](const ResourceRecord&) { ++count; });
  EXPECT_EQ(count, 2u);
}

// --- Language identification -----------------------------------------

TEST(LangId, ScriptBasedLanguages) {
  using unicode::U32String;
  EXPECT_EQ(classify_language(U32String{0x4E2D, 0x6587}), Language::kChinese);
  EXPECT_EQ(classify_language(U32String{0xD55C, 0xAD6D}), Language::kKorean);
  EXPECT_EQ(classify_language(U32String{0x3042, 0x308A}), Language::kJapanese);
  // Kanji + kana is Japanese even though kanji alone is Chinese.
  EXPECT_EQ(classify_language(U32String{0x65E5, 0x672C, 0x3054}), Language::kJapanese);
  EXPECT_EQ(classify_language(U32String{0x043C, 0x0438, 0x0440}), Language::kRussian);
  EXPECT_EQ(classify_language(U32String{0x0627, 0x0644}), Language::kArabic);
  EXPECT_EQ(classify_language(U32String{0x0E44, 0x0E17}), Language::kThai);
  EXPECT_EQ(classify_language(U32String{0x03B1, 0x03B2}), Language::kGreek);
  EXPECT_EQ(classify_language(U32String{0x05D0, 0x05D1}), Language::kHebrew);
}

TEST(LangId, LatinLanguagesByDiacritics) {
  using unicode::U32String;
  EXPECT_EQ(classify_language(U32String{'m', 0x00FC, 'n', 'c', 'h', 'e', 'n'}),
            Language::kGerman);
  EXPECT_EQ(classify_language(U32String{'d', 0x00F6, 'v', 'i', 'z'}),
            Language::kGerman);  // ö alone reads as German class
  EXPECT_EQ(classify_language(U32String{'y', 'a', 'z', 0x0131}), Language::kTurkish);
  EXPECT_EQ(classify_language(U32String{'c', 'a', 'f', 0x00E9}), Language::kFrench);
  EXPECT_EQ(classify_language(U32String{'e', 's', 'p', 'a', 0x00F1, 'a'}),
            Language::kSpanish);
  EXPECT_EQ(classify_language(U32String{'p', 'e', 'r', 0x00FA}), Language::kSpanish);
}

TEST(LangId, AsciiIsEnglish) {
  using unicode::U32String;
  EXPECT_EQ(classify_language(U32String{'p', 'l', 'a', 'i', 'n'}),
            Language::kEnglishAscii);
}

TEST(LangId, Names) {
  EXPECT_EQ(language_name(Language::kChinese), "Chinese");
  EXPECT_EQ(language_name(Language::kTurkish), "Turkish");
}

}  // namespace
}  // namespace sham::dns
