// Cross-cutting property tests (parameterized sweeps).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "db/artifact.hpp"
#include "detect/detector.hpp"
#include "detect/engine.hpp"
#include "detect/skeleton_index.hpp"
#include "font/synthetic_font.hpp"
#include "idna/idna.hpp"
#include "kernels/kernels.hpp"
#include "simchar/simchar.hpp"
#include "util/rng.hpp"

namespace sham {
namespace {

using unicode::CodePoint;
using unicode::U32String;

std::shared_ptr<font::SyntheticFont> property_font() {
  static const auto font = [] {
    font::SyntheticFontBuilder b{8080};
    b.cover_range(0x0430, 0x04FF, 120);
    b.cover_range(0x4E00, 0x4EFF, 120);
    b.plant_cluster('o', {{0x043E, 0}, {0x03BF, 1}, {0x0585, 3}, {0x04E7, 5},
                          {0x1D0F, 7}});
    b.plant_cluster('e', {{0x0435, 2}, {0x00E9, 4}, {0x025B, 6}});
    b.plant_sparse(0x0E47, 5);
    return b.build();
  }();
  return font;
}

// --- SimChar threshold sweep --------------------------------------------

class ThresholdSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdSweep, PrunedEqualsNaiveAtEveryTheta) {
  const int theta = GetParam();
  simchar::BuildOptions pruned;
  pruned.threshold = theta;
  simchar::BuildOptions naive = pruned;
  naive.use_bucket_pruning = false;
  const auto a = simchar::SimCharDb::build(*property_font(), pruned);
  const auto b = simchar::SimCharDb::build(*property_font(), naive);
  EXPECT_TRUE(std::ranges::equal(a.pairs(), b.pairs()));
}

TEST_P(ThresholdSweep, DbGrowsMonotonicallyWithTheta) {
  const int theta = GetParam();
  if (theta == 0) return;
  simchar::BuildOptions lo;
  lo.threshold = theta - 1;
  simchar::BuildOptions hi;
  hi.threshold = theta;
  const auto db_lo = simchar::SimCharDb::build(*property_font(), lo);
  const auto db_hi = simchar::SimCharDb::build(*property_font(), hi);
  EXPECT_GE(db_hi.pair_count(), db_lo.pair_count());
  // Every pair at the lower threshold survives at the higher one.
  for (const auto& p : db_lo.pairs()) {
    EXPECT_TRUE(db_hi.are_homoglyphs(p.a, p.b));
  }
}

TEST_P(ThresholdSweep, RecordedDeltasRespectTheta) {
  const int theta = GetParam();
  simchar::BuildOptions options;
  options.threshold = theta;
  const auto db = simchar::SimCharDb::build(*property_font(), options);
  for (const auto& p : db.pairs()) {
    EXPECT_LE(p.delta, theta);
    EXPECT_GE(p.delta, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ThresholdSweep, ::testing::Range(0, 9));

// --- Detector invariances -------------------------------------------------

homoglyph::HomoglyphDb property_db() {
  homoglyph::DbConfig config;
  config.use_uc = false;
  return homoglyph::HomoglyphDb{simchar::SimCharDb::build(*property_font()),
                                unicode::ConfusablesDb::embedded(), config};
}

std::vector<detect::IdnEntry> random_idns(util::Rng& rng, std::size_t count) {
  std::vector<detect::IdnEntry> idns;
  const CodePoint subs[] = {0x043E, 0x03BF, 0x0585, 0x0435, 0x00E9};
  const std::vector<std::string> words{"oe", "ooze", "geese", "noodle", "zebra"};
  for (std::size_t i = 0; i < count; ++i) {
    const auto& word = words[rng.below(words.size())];
    U32String label;
    for (const char c : word) label.push_back(static_cast<unsigned char>(c));
    label[rng.below(label.size())] = subs[rng.below(std::size(subs))];
    idns.push_back({idna::to_a_label(label), label});
  }
  return idns;
}

class DetectorInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectorInvariance, IdnOrderPermutationPreservesMatchSet) {
  util::Rng rng{GetParam()};
  const auto db = property_db();
  const detect::Engine engine{
      db, {.strategy = detect::Strategy::kIndexed, .cache = false}};
  const std::vector<std::string> refs{"oe", "ooze", "geese", "noodle"};
  auto idns = random_idns(rng, 120);

  const auto key_set = [&](const std::vector<detect::Match>& matches,
                           const std::vector<detect::IdnEntry>& entries) {
    std::vector<std::string> keys;
    for (const auto& m : matches) {
      keys.push_back(refs[m.reference_index] + "|" + entries[m.idn_index].ace);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };

  const auto before =
      key_set(engine.detect({.references = refs, .idns = idns}).matches, idns);
  auto shuffled = idns;
  rng.shuffle(shuffled);
  const auto after = key_set(
      engine.detect({.references = refs, .idns = shuffled}).matches, shuffled);
  EXPECT_EQ(before, after);
}

TEST_P(DetectorInvariance, MatchImpliesSkeletalAgreementOfLengths) {
  util::Rng rng{GetParam()};
  const auto db = property_db();
  const detect::Engine engine{
      db, {.strategy = detect::Strategy::kIndexed, .cache = false}};
  const std::vector<std::string> refs{"oe", "ooze", "geese"};
  const auto idns = random_idns(rng, 80);
  for (const auto& m : engine.detect({.references = refs, .idns = idns}).matches) {
    EXPECT_EQ(refs[m.reference_index].size(), idns[m.idn_index].unicode.size());
    EXPECT_FALSE(m.diffs.empty());
    for (const auto& d : m.diffs) {
      EXPECT_TRUE(db.are_homoglyphs(d.idn_char, d.ref_char));
      EXPECT_LT(d.index, idns[m.idn_index].unicode.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorInvariance, ::testing::Values(21, 22, 23));

// --- Skeleton strategy vs serial on randomized databases ------------------

/// Random pair graph over a small alphabet, built so that chains (hence
/// non-transitive triples a~b, b~c with {a, c} unlisted) are common; plus
/// random reference/IDN workloads drawn over the same alphabet.
struct RandomSkeletonWorkload {
  simchar::SimCharDb sim;  // the SimChar side of db (the artifact writer needs it)
  homoglyph::HomoglyphDb db;
  std::vector<std::string> refs;
  std::vector<detect::IdnEntry> idns;
};

RandomSkeletonWorkload random_skeleton_workload(std::uint64_t seed) {
  util::Rng rng{seed};
  RandomSkeletonWorkload w;

  // Alphabet: ASCII a..j plus ten non-Latin stand-ins.
  std::vector<CodePoint> alphabet;
  for (char c = 'a'; c <= 'j'; ++c) alphabet.push_back(static_cast<CodePoint>(c));
  for (int i = 0; i < 10; ++i) alphabet.push_back(0x0430 + i);

  std::vector<simchar::HomoglyphPair> pairs;
  const std::size_t pair_count = 8 + rng.below(10);
  for (std::size_t i = 0; i < pair_count; ++i) {
    const auto a = alphabet[rng.below(alphabet.size())];
    const auto b = alphabet[rng.below(alphabet.size())];
    if (a == b) continue;
    const auto [lo, hi] = std::minmax(a, b);
    pairs.push_back({lo, hi, static_cast<int>(rng.below(4))});
  }
  homoglyph::DbConfig config;
  config.use_uc = false;  // keep the pair graph exactly the random one
  w.sim = simchar::SimCharDb{std::move(pairs)};
  w.db = homoglyph::HomoglyphDb{w.sim, unicode::ConfusablesDb::embedded(), config};

  for (int i = 0; i < 30; ++i) {
    std::string ref;
    const std::size_t n = 2 + rng.below(6);
    for (std::size_t j = 0; j < n; ++j) {
      ref += static_cast<char>('a' + rng.below(10));
    }
    w.refs.push_back(ref);
  }
  for (int i = 0; i < 300; ++i) {
    const auto& ref = w.refs[rng.below(w.refs.size())];
    U32String label;
    for (const char c : ref) label.push_back(static_cast<unsigned char>(c));
    // Mutate 1-2 positions with arbitrary alphabet members: sometimes a
    // listed homoglyph, sometimes a same-component non-pair (the
    // non-transitive case), sometimes junk.
    const std::size_t muts = 1 + rng.below(2);
    for (std::size_t m = 0; m < muts; ++m) {
      label[rng.below(label.size())] = alphabet[rng.below(alphabet.size())];
    }
    w.idns.push_back({"", label});
  }
  return w;
}

class SkeletonEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkeletonEquivalence, ByteIdenticalToSerialOnRandomizedDbs) {
  const auto w = random_skeleton_workload(GetParam());
  const detect::Engine engine{w.db};
  const auto serial = engine.detect(
      {.references = w.refs, .idns = w.idns, .strategy = detect::Strategy::kSerial});
  for (const std::size_t threads : {1u, 4u}) {
    const auto skel = engine.detect({.references = w.refs,
                                     .idns = w.idns,
                                     .strategy = detect::Strategy::kSkeleton,
                                     .threads = threads});
    EXPECT_EQ(skel.matches, serial.matches) << "seed=" << GetParam()
                                            << " threads=" << threads;
    EXPECT_EQ(skel.stats.skeleton_rejected,
              skel.stats.skeleton_candidates - serial.matches.size());
  }
}

TEST_P(SkeletonEquivalence, CollisionBucketsStayExactOnRandomizedDbs) {
  // Truncated hashes force unrelated skeletons into shared buckets; the
  // exact verification must still reproduce the serial match list.
  const auto w = random_skeleton_workload(GetParam() ^ 0x5EED);
  const detect::SkeletonIndex index{w.db, w.idns, {.hash_bits = 3}};
  EXPECT_LE(index.bucket_count(), 8u);

  const detect::HomographDetector detector{w.db};
  std::vector<detect::Match> matches;
  std::vector<detect::DiffChar> diffs;
  for (std::size_t r = 0; r < w.refs.size(); ++r) {
    const auto bucket = index.probe(index.hash_of(w.refs[r]));
    if (bucket.empty()) continue;
    for (const auto x : bucket) {
      if (detector.match_pair(w.refs[r], w.idns[x].unicode, &diffs)) {
        matches.push_back({r, x, diffs});
      }
    }
  }
  const detect::Engine engine{w.db};
  const auto serial = engine.detect(
      {.references = w.refs, .idns = w.idns, .strategy = detect::Strategy::kSerial});
  EXPECT_EQ(matches, serial.matches);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkeletonEquivalence,
                         ::testing::Values(101, 102, 103, 104, 105));

// --- Engine cache invalidation under randomized interleavings --------------

/// A single long-lived caching engine is driven through a random
/// interleaving of detect() calls (random threads and join direction),
/// in-place database growth (apply_update — the layer under
/// update_with_new_characters), and in-place IDN-set mutations (the span
/// address never changes, so only the content fingerprint can catch the
/// swap). After every detect() the warm engine must be byte-identical to
/// a freshly-constructed uncached serial engine over the same state.
class CacheInvalidationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheInvalidationProperty, WarmEngineTracksFreshSerialBaseline) {
  auto w = random_skeleton_workload(GetParam());
  util::Rng rng{GetParam() * 7919 + 17};

  std::vector<CodePoint> alphabet;
  for (char c = 'a'; c <= 'j'; ++c) alphabet.push_back(static_cast<CodePoint>(c));
  for (int i = 0; i < 10; ++i) alphabet.push_back(0x0430 + i);

  const detect::Engine warm{w.db, {.strategy = detect::Strategy::kSkeleton}};
  const detect::SkeletonJoin joins[] = {detect::SkeletonJoin::kAuto,
                                        detect::SkeletonJoin::kIdnIndex,
                                        detect::SkeletonJoin::kReferenceIndex};
  int detects = 0;
  for (int step = 0; step < 48; ++step) {
    const auto action = rng.below(4);
    if (action == 0) {
      // Grow the homoglyph graph by one random pair (sometimes a
      // duplicate, which must not bump the generation).
      const auto a = alphabet[rng.below(alphabet.size())];
      const auto b = alphabet[rng.below(alphabet.size())];
      if (a == b) continue;
      const auto [lo, hi] = std::minmax(a, b);
      const simchar::HomoglyphPair pair[] = {
          {lo, hi, static_cast<int>(rng.below(4))}};
      w.db.apply_update(pair);
      continue;
    }
    if (action == 1) {
      // Mutate the IDN set in place behind the engine's back.
      const std::size_t muts = 1 + rng.below(5);
      for (std::size_t m = 0; m < muts; ++m) {
        auto& label = w.idns[rng.below(w.idns.size())].unicode;
        label[rng.below(label.size())] = alphabet[rng.below(alphabet.size())];
      }
      continue;
    }
    ++detects;
    const std::size_t threads = rng.below(2) == 0 ? 1 : 4;
    const auto got = warm.detect({.references = w.refs,
                                  .idns = w.idns,
                                  .threads = threads,
                                  .join = joins[rng.below(std::size(joins))]});
    const detect::Engine fresh{
        w.db,
        {.strategy = detect::Strategy::kSerial, .threads = 1, .cache = false}};
    const auto want = fresh.detect({.references = w.refs, .idns = w.idns});
    ASSERT_EQ(got.matches, want.matches)
        << "seed=" << GetParam() << " step=" << step << " threads=" << threads;
    // The closure over-approximates: every candidate either matched or
    // was rejected by the exact re-verification, nothing is dropped.
    EXPECT_EQ(got.stats.skeleton_rejected,
              got.stats.skeleton_candidates - got.matches.size());
  }
  // The interleaving must actually have exercised the warm path.
  EXPECT_GE(detects, 5) << "seed " << GetParam() << " produced a degenerate walk";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheInvalidationProperty,
                         ::testing::Values(301, 302, 303, 304, 305));

// --- DB-artifact round trip on randomized databases -------------------------

/// build -> serialize -> mmap-load -> detect() must be byte-identical to
/// the in-process serial baseline under every strategy, every kernel
/// dispatch level the host supports, and both cache states (cold and
/// warm), on randomized pair graphs and workloads.
class DbRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DbRoundTripProperty, MappedDetectTracksSerialBaselineEverywhere) {
  const auto w = random_skeleton_workload(GetParam());
  const auto path = ::testing::TempDir() + "sham_roundtrip_" +
                    std::to_string(GetParam()) + ".artifact";
  {
    db::WriteRequest request;
    request.simchar = &w.sim;
    request.homoglyph = &w.db;
    const detect::SkeletonIndex index{
        w.db, std::span<const std::string>{w.refs}, {.max_bucket_occupancy = 4}};
    const auto skeleton = index.to_flat();
    request.references = w.refs;
    request.reference_fingerprint =
        detect::label_set_fingerprint(std::span<const std::string>{w.refs});
    request.skeleton = &skeleton;
    db::write_db_file(path, request);
  }
  const detect::Engine in_process{w.db};
  const auto baseline = in_process.detect(
      {.references = w.refs, .idns = w.idns, .strategy = detect::Strategy::kSerial});

  const detect::Strategy strategies[] = {
      detect::Strategy::kSerial, detect::Strategy::kIndexed,
      detect::Strategy::kParallel, detect::Strategy::kSkeleton};
  for (const auto level : kernels::supported_levels()) {
    const kernels::ScopedKernelLevel pin{level};
    ASSERT_TRUE(pin.forced());
    const auto engine = detect::Engine::from_db_file(path);
    EXPECT_EQ(engine.artifact()->references(), w.refs);
    for (const auto strategy : strategies) {
      for (int pass = 0; pass < 2; ++pass) {  // cold, then warm caches
        const auto r = engine.detect(
            {.references = w.refs, .idns = w.idns, .strategy = strategy});
        EXPECT_EQ(r.matches, baseline.matches)
            << "seed=" << GetParam() << " level=" << kernels::level_name(level)
            << " strategy=" << detect::strategy_name(strategy)
            << " pass=" << pass;
      }
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbRoundTripProperty,
                         ::testing::Values(501, 502, 503, 504, 505));

// --- Serialization closure -------------------------------------------------

class SerializationSweep : public ::testing::TestWithParam<int> {};

TEST_P(SerializationSweep, SimCharSerializeParseIsIdentityAtEveryTheta) {
  simchar::BuildOptions options;
  options.threshold = GetParam();
  const auto db = simchar::SimCharDb::build(*property_font(), options);
  EXPECT_TRUE(std::ranges::equal(simchar::SimCharDb::parse(db.serialize()).pairs(), db.pairs()));
}

INSTANTIATE_TEST_SUITE_P(Thetas, SerializationSweep, ::testing::Values(0, 2, 4, 8));

// --- Kernel-level equivalence -------------------------------------------
//
// Randomized differential property: for every dispatch level the host can
// run, the three kernels agree bit-exact with the scalar reference on
// randomized panels/streams. Complements the adversarial fixed cases in
// test_kernels.cpp with seed-parameterized fuzzing.

class KernelEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelEquivalence, DeltaBatchAgreesWithScalarOnRandomPanels) {
  util::Rng rng{GetParam()};
  // Sizes straddle the 2- and 4-lane widths and their tails.
  const std::size_t n = 1 + rng.below(70);
  std::vector<std::array<std::uint64_t, kernels::kGlyphWords>> glyphs(n);
  kernels::GlyphPanel panel(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& w : glyphs[i]) w = rng.next();
    panel.set_glyph(i, glyphs[i].data());
  }
  std::array<std::uint64_t, kernels::kGlyphWords> query;
  for (auto& w : query) w = rng.next();

  std::vector<std::int32_t> expected(n);
  {
    kernels::ScopedKernelLevel pin{kernels::Level::kScalar};
    ASSERT_TRUE(pin.forced());
    kernels::delta_batch_u1024(query.data(), panel, 0, n, expected.data());
  }
  for (const auto level : kernels::supported_levels()) {
    kernels::ScopedKernelLevel pin{level};
    ASSERT_TRUE(pin.forced());
    std::vector<std::int32_t> out(n);
    kernels::delta_batch_u1024(query.data(), panel, 0, n, out.data());
    EXPECT_EQ(out, expected) << kernels::level_name(level);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(kernels::delta_u1024(query.data(), glyphs[i].data()),
                expected[i])
          << kernels::level_name(level) << " i=" << i;
    }
  }
}

TEST_P(KernelEquivalence, BlockHashAgreesWithScalarOnRandomPanels) {
  util::Rng rng{GetParam() ^ 0xb10cULL};
  const std::size_t n = 1 + rng.below(50);
  kernels::GlyphPanel panel(n);
  std::vector<std::array<std::uint64_t, kernels::kGlyphWords>> glyphs(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& w : glyphs[i]) w = rng.next();
    panel.set_glyph(i, glyphs[i].data());
  }
  const unsigned first = static_cast<unsigned>(rng.below(17));
  const unsigned last =
      first + static_cast<unsigned>(rng.below(17 - first));

  std::vector<std::uint64_t> expected(n);
  {
    kernels::ScopedKernelLevel pin{kernels::Level::kScalar};
    ASSERT_TRUE(pin.forced());
    kernels::block_hash_batch(panel, first, last, expected.data());
  }
  for (std::size_t i = 0; i < n; ++i) {
    // The undispatched probe-side reference must agree with the scalar
    // batch — they key the same pigeonhole tables.
    ASSERT_EQ(kernels::block_hash_u1024(glyphs[i].data(), first, last),
              expected[i]);
  }
  for (const auto level : kernels::supported_levels()) {
    kernels::ScopedKernelLevel pin{level};
    ASSERT_TRUE(pin.forced());
    std::vector<std::uint64_t> out(n);
    kernels::block_hash_batch(panel, first, last, out.data());
    EXPECT_EQ(out, expected)
        << kernels::level_name(level) << " span [" << first << "," << last << ")";
  }
}

TEST_P(KernelEquivalence, FnvKernelsAgreeWithScalarOnRandomStreams) {
  util::Rng rng{GetParam() ^ 0xf2f2ULL};
  std::array<std::vector<std::uint32_t>, 4> streams;
  const std::uint32_t* ptrs[4];
  std::size_t lens[4];
  std::uint64_t seeds[4];
  for (int c = 0; c < 4; ++c) {
    streams[c].resize(rng.below(130));
    for (auto& v : streams[c]) v = static_cast<std::uint32_t>(rng.next());
    ptrs[c] = streams[c].data();
    lens[c] = streams[c].size();
    seeds[c] = rng.next();
  }

  std::uint64_t expected_span[4];
  std::uint64_t expected_batch[4];
  {
    kernels::ScopedKernelLevel pin{kernels::Level::kScalar};
    ASSERT_TRUE(pin.forced());
    for (int c = 0; c < 4; ++c) {
      expected_span[c] = kernels::fnv1a_span(seeds[c], ptrs[c], lens[c]);
    }
    kernels::fnv1a_batch4(ptrs, lens, seeds, expected_batch);
  }
  // batch4 == 4 independent spans, by definition.
  for (int c = 0; c < 4; ++c) EXPECT_EQ(expected_batch[c], expected_span[c]);

  for (const auto level : kernels::supported_levels()) {
    kernels::ScopedKernelLevel pin{level};
    ASSERT_TRUE(pin.forced());
    std::uint64_t out[4];
    kernels::fnv1a_batch4(ptrs, lens, seeds, out);
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(out[c], expected_span[c])
          << kernels::level_name(level) << " chain " << c;
      EXPECT_EQ(kernels::fnv1a_span(seeds[c], ptrs[c], lens[c]),
                expected_span[c])
          << kernels::level_name(level) << " chain " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelEquivalence,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace sham
