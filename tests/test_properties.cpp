// Cross-cutting property tests (parameterized sweeps).
#include <gtest/gtest.h>

#include <algorithm>

#include "detect/detector.hpp"
#include "font/synthetic_font.hpp"
#include "idna/idna.hpp"
#include "simchar/simchar.hpp"
#include "util/rng.hpp"

namespace sham {
namespace {

using unicode::CodePoint;
using unicode::U32String;

std::shared_ptr<font::SyntheticFont> property_font() {
  static const auto font = [] {
    font::SyntheticFontBuilder b{8080};
    b.cover_range(0x0430, 0x04FF, 120);
    b.cover_range(0x4E00, 0x4EFF, 120);
    b.plant_cluster('o', {{0x043E, 0}, {0x03BF, 1}, {0x0585, 3}, {0x04E7, 5},
                          {0x1D0F, 7}});
    b.plant_cluster('e', {{0x0435, 2}, {0x00E9, 4}, {0x025B, 6}});
    b.plant_sparse(0x0E47, 5);
    return b.build();
  }();
  return font;
}

// --- SimChar threshold sweep --------------------------------------------

class ThresholdSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdSweep, PrunedEqualsNaiveAtEveryTheta) {
  const int theta = GetParam();
  simchar::BuildOptions pruned;
  pruned.threshold = theta;
  simchar::BuildOptions naive = pruned;
  naive.use_bucket_pruning = false;
  const auto a = simchar::SimCharDb::build(*property_font(), pruned);
  const auto b = simchar::SimCharDb::build(*property_font(), naive);
  EXPECT_EQ(a.pairs(), b.pairs());
}

TEST_P(ThresholdSweep, DbGrowsMonotonicallyWithTheta) {
  const int theta = GetParam();
  if (theta == 0) return;
  simchar::BuildOptions lo;
  lo.threshold = theta - 1;
  simchar::BuildOptions hi;
  hi.threshold = theta;
  const auto db_lo = simchar::SimCharDb::build(*property_font(), lo);
  const auto db_hi = simchar::SimCharDb::build(*property_font(), hi);
  EXPECT_GE(db_hi.pair_count(), db_lo.pair_count());
  // Every pair at the lower threshold survives at the higher one.
  for (const auto& p : db_lo.pairs()) {
    EXPECT_TRUE(db_hi.are_homoglyphs(p.a, p.b));
  }
}

TEST_P(ThresholdSweep, RecordedDeltasRespectTheta) {
  const int theta = GetParam();
  simchar::BuildOptions options;
  options.threshold = theta;
  const auto db = simchar::SimCharDb::build(*property_font(), options);
  for (const auto& p : db.pairs()) {
    EXPECT_LE(p.delta, theta);
    EXPECT_GE(p.delta, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ThresholdSweep, ::testing::Range(0, 9));

// --- Detector invariances -------------------------------------------------

homoglyph::HomoglyphDb property_db() {
  homoglyph::DbConfig config;
  config.use_uc = false;
  return homoglyph::HomoglyphDb{simchar::SimCharDb::build(*property_font()),
                                unicode::ConfusablesDb::embedded(), config};
}

std::vector<detect::IdnEntry> random_idns(util::Rng& rng, std::size_t count) {
  std::vector<detect::IdnEntry> idns;
  const CodePoint subs[] = {0x043E, 0x03BF, 0x0585, 0x0435, 0x00E9};
  const std::vector<std::string> words{"oe", "ooze", "geese", "noodle", "zebra"};
  for (std::size_t i = 0; i < count; ++i) {
    const auto& word = words[rng.below(words.size())];
    U32String label;
    for (const char c : word) label.push_back(static_cast<unsigned char>(c));
    label[rng.below(label.size())] = subs[rng.below(std::size(subs))];
    idns.push_back({idna::to_a_label(label), label});
  }
  return idns;
}

class DetectorInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectorInvariance, IdnOrderPermutationPreservesMatchSet) {
  util::Rng rng{GetParam()};
  const auto db = property_db();
  const detect::HomographDetector detector{db};
  const std::vector<std::string> refs{"oe", "ooze", "geese", "noodle"};
  auto idns = random_idns(rng, 120);

  const auto key_set = [&](const std::vector<detect::Match>& matches,
                           const std::vector<detect::IdnEntry>& entries) {
    std::vector<std::string> keys;
    for (const auto& m : matches) {
      keys.push_back(refs[m.reference_index] + "|" + entries[m.idn_index].ace);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };

  const auto before = key_set(detector.detect_indexed(refs, idns), idns);
  auto shuffled = idns;
  rng.shuffle(shuffled);
  const auto after = key_set(detector.detect_indexed(refs, shuffled), shuffled);
  EXPECT_EQ(before, after);
}

TEST_P(DetectorInvariance, MatchImpliesSkeletalAgreementOfLengths) {
  util::Rng rng{GetParam()};
  const auto db = property_db();
  const detect::HomographDetector detector{db};
  const std::vector<std::string> refs{"oe", "ooze", "geese"};
  const auto idns = random_idns(rng, 80);
  for (const auto& m : detector.detect_indexed(refs, idns)) {
    EXPECT_EQ(refs[m.reference_index].size(), idns[m.idn_index].unicode.size());
    EXPECT_FALSE(m.diffs.empty());
    for (const auto& d : m.diffs) {
      EXPECT_TRUE(db.are_homoglyphs(d.idn_char, d.ref_char));
      EXPECT_LT(d.index, idns[m.idn_index].unicode.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorInvariance, ::testing::Values(21, 22, 23));

// --- Serialization closure -------------------------------------------------

class SerializationSweep : public ::testing::TestWithParam<int> {};

TEST_P(SerializationSweep, SimCharSerializeParseIsIdentityAtEveryTheta) {
  simchar::BuildOptions options;
  options.threshold = GetParam();
  const auto db = simchar::SimCharDb::build(*property_font(), options);
  EXPECT_EQ(simchar::SimCharDb::parse(db.serialize()).pairs(), db.pairs());
}

INSTANTIATE_TEST_SUITE_P(Thetas, SerializationSweep, ::testing::Values(0, 2, 4, 8));

}  // namespace
}  // namespace sham
