#include <gtest/gtest.h>

#include "core/shamfinder.hpp"
#include "core/warning.hpp"
#include "font/synthetic_font.hpp"

namespace sham::core {
namespace {

using unicode::U32String;

const ShamFinder& finder() {
  static const auto instance = [] {
    font::SyntheticFontBuilder b{31337};
    b.cover_range(0x0430, 0x045F);
    b.plant_cluster('o', {{0x043E, 0}, {0x0585, 2}});
    b.plant_cluster('e', {{0x00E9, 3}});
    b.plant_cluster('a', {{0x00E0, 1}});
    return ShamFinder::build_from_font(*b.build());
  }();
  return instance;
}

TEST(ShamFinderTest, BuildProducesDatabases) {
  EXPECT_GT(finder().simchar().pair_count(), 3u);
  EXPECT_GT(finder().db().pair_count(), finder().simchar().pair_count());
}

TEST(ShamFinderTest, ExtractIdnsFiltersTldAndPrefix) {
  const std::vector<std::string> domains{
      "google.com",
      "xn--ggle-55da.com",
      "xn--ggle-55da.net",    // wrong TLD
      "sub.xn--ggle-55da.com",  // ACE not in SLD position: skipped
      "xn--invalid!!.com",    // undecodable
      "xn--tsta8290bfzd.com",
  };
  const auto idns = ShamFinder::extract_idns(domains, "com");
  ASSERT_EQ(idns.size(), 2u);
  EXPECT_EQ(idns[0].ace, "xn--ggle-55da");
  EXPECT_EQ(idns[1].ace, "xn--tsta8290bfzd");
  EXPECT_EQ(idns[0].unicode.size(), 6u);
}

TEST(ShamFinderTest, FindHomographsEndToEnd) {
  const std::vector<std::string> domains{"xn--ggle-55da.com", "benign.com"};
  const auto idns = ShamFinder::extract_idns(domains, "com");
  const std::vector<std::string> refs{"google"};
  detect::DetectionStats stats;
  const auto matches = finder().find_homographs(refs, idns, &stats);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].diffs.size(), 2u);
  EXPECT_GE(stats.length_bucket_hits, 1u);
}

TEST(ShamFinderTest, Revert) {
  const U32String label{'g', 0x043E, 0x043E, 'g', 'l', 'e'};
  const auto original = finder().revert(label);
  ASSERT_TRUE(original.has_value());
  EXPECT_EQ(*original, "google");
  // Unrevertible: CJK has no LDH homoglyph in this DB.
  const U32String cjk{0x4E00};
  EXPECT_FALSE(finder().revert(cjk).has_value());
}

TEST(ShamFinderTest, PrebuiltDbConstructor) {
  simchar::SimCharDb sim{{{'o', 0x043E, 0}}};
  const ShamFinder f{sim, unicode::ConfusablesDb::embedded()};
  EXPECT_TRUE(f.db().are_homoglyphs('o', 0x043E));
}

TEST(Warning, DescribesCodePoints) {
  const auto desc = describe_codepoint(0x043E);
  EXPECT_NE(desc.find("U+043E"), std::string::npos);
  EXPECT_NE(desc.find("Cyrillic"), std::string::npos);
}

TEST(Warning, DescribesSupplementaryPlaneCharacters) {
  // U+118D8 (Warang Citi, SMP) — the Figure 11 example character.
  const auto desc = describe_codepoint(0x118D8);
  EXPECT_NE(desc.find("U+118D8"), std::string::npos);
  EXPECT_NE(desc.find("Warang Citi"), std::string::npos);
}

TEST(Warning, RenderContainsBothNamesAndPositions) {
  const std::vector<std::string> domains{"xn--ggle-55da.com"};
  const auto idns = ShamFinder::extract_idns(domains, "com");
  const std::vector<std::string> refs{"google"};
  const auto matches = finder().find_homographs(refs, idns);
  ASSERT_EQ(matches.size(), 1u);

  const auto warning = make_warning(matches[0], "google", idns[0]);
  const auto text = warning.render();
  EXPECT_NE(text.find("google.com"), std::string::npos);
  EXPECT_NE(text.find("WARNING"), std::string::npos);
  EXPECT_NE(text.find("position 2"), std::string::npos);
  EXPECT_NE(text.find("U+043E"), std::string::npos);
  EXPECT_EQ(warning.diffs.size(), 2u);
  EXPECT_EQ(warning.original, "google");
}

}  // namespace
}  // namespace sham::core
