#include <gtest/gtest.h>

#include "unicode/utf8.hpp"
#include "util/rng.hpp"

namespace sham::unicode {
namespace {

TEST(Utf8, EncodeAscii) {
  EXPECT_EQ(to_utf8(U32String{'a', 'b'}), "ab");
  EXPECT_EQ(to_utf8(0x7Fu), "\x7f");
}

TEST(Utf8, EncodeTwoByte) { EXPECT_EQ(to_utf8(0xE9u), "\xC3\xA9"); }      // é
TEST(Utf8, EncodeThreeByte) { EXPECT_EQ(to_utf8(0x4E2Du), "\xE4\xB8\xAD"); }  // 中
TEST(Utf8, EncodeFourByte) { EXPECT_EQ(to_utf8(0x1F600u), "\xF0\x9F\x98\x80"); }

TEST(Utf8, EncodeRejectsSurrogate) {
  std::string out;
  EXPECT_THROW(append_utf8(0xD800, out), std::invalid_argument);
  EXPECT_THROW(append_utf8(0x110000, out), std::invalid_argument);
}

TEST(Utf8, DecodeValid) {
  const auto d = decode_utf8("a\xC3\xA9\xE4\xB8\xAD");
  ASSERT_TRUE(d.has_value());
  ASSERT_EQ(d->size(), 3u);
  EXPECT_EQ((*d)[0], 'a');
  EXPECT_EQ((*d)[1], 0xE9u);
  EXPECT_EQ((*d)[2], 0x4E2Du);
}

TEST(Utf8, DecodeEmpty) {
  const auto d = decode_utf8("");
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->empty());
}

TEST(Utf8, DecodeRejectsStrayContinuation) {
  EXPECT_FALSE(decode_utf8("\x80").has_value());
}

TEST(Utf8, DecodeRejectsTruncated) {
  EXPECT_FALSE(decode_utf8("\xC3").has_value());
  EXPECT_FALSE(decode_utf8("\xE4\xB8").has_value());
}

TEST(Utf8, DecodeRejectsOverlong) {
  // U+0041 encoded in two bytes (overlong).
  EXPECT_FALSE(decode_utf8("\xC1\x81").has_value());
  // U+002F as three bytes.
  EXPECT_FALSE(decode_utf8("\xE0\x80\xAF").has_value());
}

TEST(Utf8, DecodeRejectsSurrogatesAndRange) {
  EXPECT_FALSE(decode_utf8("\xED\xA0\x80").has_value());   // U+D800
  EXPECT_FALSE(decode_utf8("\xF4\x90\x80\x80").has_value());  // U+110000
}

TEST(Utf8, LossyReplacesBadBytes) {
  const auto d = decode_utf8_lossy("a\x80z");
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[1], kReplacementChar);
  EXPECT_EQ(d[2], 'z');
}

TEST(Utf8, LengthCountsCodePoints) {
  EXPECT_EQ(utf8_length("abc"), 3u);
  EXPECT_EQ(utf8_length("\xE4\xB8\xAD"), 1u);
}

// Property: encode/decode round-trips over random scalar values.
class Utf8Roundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Utf8Roundtrip, RandomStrings) {
  util::Rng rng{GetParam()};
  for (int iter = 0; iter < 200; ++iter) {
    U32String original;
    const int n = 1 + static_cast<int>(rng.below(30));
    for (int i = 0; i < n; ++i) {
      CodePoint cp;
      do {
        cp = static_cast<CodePoint>(rng.below(0x110000));
      } while (!is_scalar_value(cp));
      original.push_back(cp);
    }
    const auto bytes = to_utf8(original);
    const auto decoded = decode_utf8(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, original);
    EXPECT_EQ(utf8_length(bytes), original.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Utf8Roundtrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(CodePointHelpers, Classifications) {
  EXPECT_TRUE(is_ascii('a'));
  EXPECT_FALSE(is_ascii(0x80));
  EXPECT_TRUE(is_ascii_letter('Z'));
  EXPECT_FALSE(is_ascii_letter('1'));
  EXPECT_TRUE(is_ascii_digit('0'));
  EXPECT_TRUE(is_ldh('-'));
  EXPECT_FALSE(is_ldh('.'));
  EXPECT_FALSE(is_ldh(0xE9));
  EXPECT_TRUE(is_scalar_value(0x10FFFF));
  EXPECT_FALSE(is_scalar_value(0xDC00));
}

}  // namespace
}  // namespace sham::unicode
