// DetectionServer: slot scheduling, same-snapshot batching, shedding,
// deadlines, priorities, drain-on-stop — and above all: the serve path
// returns byte-identical results to calling the engine directly.
#include <gtest/gtest.h>

#include <chrono>
#include <atomic>
#include <thread>

#include "serve/replay.hpp"
#include "serve/server.hpp"
#include "simchar/simchar.hpp"

namespace sham::serve {
namespace {

using unicode::U32String;
using namespace std::chrono_literals;

homoglyph::HomoglyphDb test_db() {
  simchar::SimCharDb sim{{
      {'o', 0x043E, 0},
      {'o', 0x0585, 2},
      {'e', 0x00E9, 3},
      {'a', 0x0430, 1},
      {'i', 0x0131, 2},
  }};
  homoglyph::DbConfig config;
  config.use_uc = false;
  return homoglyph::HomoglyphDb{sim, unicode::ConfusablesDb::embedded(), config};
}

ZoneSnapshot zone_of(std::initializer_list<U32String> labels) {
  auto zone = std::make_shared<std::vector<detect::IdnEntry>>();
  for (const auto& label : labels) zone->push_back({"", label});
  return zone;
}

/// Ground truth: the serial cache-free engine on the equivalent request.
std::vector<detect::Match> direct(const homoglyph::HomoglyphDb& db,
                                  const std::vector<std::string>& refs,
                                  const ZoneSnapshot& zone) {
  const detect::Engine engine{
      db, {.strategy = detect::Strategy::kSerial, .threads = 1, .cache = false}};
  return engine
      .detect({.references = refs,
               .idns = std::span<const detect::IdnEntry>{*zone}})
      .matches;
}

TEST(Serve, ResultsMatchDirectEngineUnderEverySlotCountAndPolicy) {
  const auto db = test_db();
  const auto workload = make_replay_workload(db, 4, 8, 2, 150, 20260808);
  // Ground truth once per (list, zone) pair.
  std::vector<std::vector<std::vector<detect::Match>>> truth;
  for (const auto& refs : workload.reference_lists) {
    auto& per_zone = truth.emplace_back();
    for (const auto& zone : workload.zones) per_zone.push_back(direct(db, refs, zone));
  }
  for (const std::size_t slots : {1u, 2u, 4u}) {
    for (const auto policy :
         {OverloadPolicy::kRejectWhenFull, OverloadPolicy::kBlock}) {
      DetectionServer server{db,
                             {.strategy = detect::Strategy::kSkeleton, .threads = 1},
                             {.slots = slots, .queue_capacity = 256, .overload = policy}};
      std::vector<ResponseFuture> futures;
      std::vector<std::pair<std::size_t, std::size_t>> keys;
      for (std::size_t round = 0; round < 2; ++round) {  // cold then warm
        for (std::size_t r = 0; r < workload.reference_lists.size(); ++r) {
          for (std::size_t z = 0; z < workload.zones.size(); ++z) {
            ServeRequest request;
            request.references = workload.reference_lists[r];
            request.idns = workload.zones[z];
            futures.push_back(server.submit(std::move(request)));
            keys.emplace_back(r, z);
          }
        }
      }
      for (std::size_t i = 0; i < futures.size(); ++i) {
        auto response = futures[i].get();
        ASSERT_EQ(response.status, ServeStatus::kOk)
            << "slots=" << slots << " policy=" << overload_policy_name(policy);
        EXPECT_EQ(response.api_version, kApiVersion);
        EXPECT_EQ(response.matches, truth[keys[i].first][keys[i].second])
            << "slots=" << slots << " request " << i;
      }
      const auto stats = server.stats();
      EXPECT_EQ(stats.served, futures.size());
      EXPECT_EQ(stats.shed, 0u);
      EXPECT_EQ(stats.queue_depth, 0u);
    }
  }
}

TEST(Serve, UnicodeReferencesFlowThrough) {
  const auto db = test_db();
  DetectionServer server{db};
  const auto zone = zone_of({{0x5DE5, 0x696D}, {'g', 0x043E, 'o', 'g', 'l', 'e'}});
  ServeRequest request;
  request.unicode_references = {{'g', 'o', 'o', 'g', 'l', 'e'}};
  request.idns = zone;
  const auto response = server.detect_sync(std::move(request));
  ASSERT_EQ(response.status, ServeStatus::kOk);
  ASSERT_EQ(response.matches.size(), 1u);
  EXPECT_EQ(response.matches[0].idn_index, 1u);
}

TEST(Serve, SameSnapshotRequestsCoalesceIntoOneBatch) {
  const auto db = test_db();
  DetectionServer server{
      db, {}, {.slots = 1, .queue_capacity = 32, .start_paused = true}};
  const auto zone = zone_of({{'g', 0x043E, 'o', 'g', 'l', 'e'}, {'m', 0x0430, 'i', 'l'}});
  const std::vector<std::vector<std::string>> ref_lists{
      {"google"}, {"mail"}, {"google", "mail"}, {"ok"}, {"google"}, {"mail"}};
  std::vector<ResponseFuture> futures;
  for (const auto& refs : ref_lists) {
    ServeRequest request;
    request.references = refs;
    request.idns = zone;  // one shared snapshot: one coalescing key
    futures.push_back(server.submit(std::move(request)));
  }
  server.resume();
  for (auto& future : futures) {
    const auto response = future.get();
    ASSERT_EQ(response.status, ServeStatus::kOk);
    EXPECT_EQ(response.batch_size, futures.size());  // all six in one batch
    EXPECT_EQ(response.slot_id, 0u);
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.served, futures.size());
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.coalesced_requests, futures.size());
  EXPECT_GT(stats.coalescing_ratio(), 1.0);
  EXPECT_EQ(stats.slots.at(0).batches, 1u);
}

TEST(Serve, DistinctSnapshotsDoNotCoalesce) {
  const auto db = test_db();
  DetectionServer server{
      db, {}, {.slots = 1, .queue_capacity = 32, .start_paused = true}};
  const auto zone_a = zone_of({{'g', 0x043E, 'o', 'g', 'l', 'e'}});
  const auto zone_b = zone_of({{'m', 0x0430, 'i', 'l'}});
  std::vector<ResponseFuture> futures;
  for (const auto& zone : {zone_a, zone_b}) {
    ServeRequest request;
    request.references = {"google", "mail"};
    request.idns = zone;
    futures.push_back(server.submit(std::move(request)));
  }
  server.resume();
  for (auto& future : futures) {
    const auto response = future.get();
    ASSERT_EQ(response.status, ServeStatus::kOk);
    EXPECT_EQ(response.batch_size, 1u);
  }
  EXPECT_EQ(server.stats().batches, 2u);
}

TEST(Serve, EqualContentZonesCoalesceAcrossDistinctBuffers) {
  // The coalescing key is a content fingerprint, not the shared_ptr
  // address: two snapshots with identical labels share a batch.
  const auto db = test_db();
  DetectionServer server{
      db, {}, {.slots = 1, .queue_capacity = 8, .start_paused = true}};
  const auto zone_a = zone_of({{'g', 0x043E, 'o', 'g', 'l', 'e'}});
  const auto zone_b = zone_of({{'g', 0x043E, 'o', 'g', 'l', 'e'}});
  ASSERT_NE(zone_a.get(), zone_b.get());
  std::vector<ResponseFuture> futures;
  for (const auto& zone : {zone_a, zone_b}) {
    ServeRequest request;
    request.references = {"google"};
    request.idns = zone;
    futures.push_back(server.submit(std::move(request)));
  }
  server.resume();
  for (auto& future : futures) EXPECT_EQ(future.get().batch_size, 2u);
}

TEST(Serve, ShedsWhenQueueFullUnderRejectPolicy) {
  const auto db = test_db();
  DetectionServer server{db,
                         {},
                         {.slots = 1,
                          .queue_capacity = 2,
                          .overload = OverloadPolicy::kRejectWhenFull,
                          .start_paused = true}};
  const auto zone = zone_of({{'g', 0x043E, 'o', 'g', 'l', 'e'}});
  const auto make_request = [&] {
    ServeRequest request;
    request.references = {"google"};
    request.idns = zone;
    return request;
  };
  auto first = server.submit(make_request());
  auto second = server.submit(make_request());
  auto third = server.submit(make_request());  // queue full: shed, instantly
  EXPECT_TRUE(third.ready());
  const auto shed = third.get();
  EXPECT_EQ(shed.status, ServeStatus::kShed);
  EXPECT_TRUE(shed.matches.empty());
  {
    const auto stats = server.stats();
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(stats.admitted, 2u);
    EXPECT_EQ(stats.queue_depth, 2u);
    EXPECT_EQ(stats.peak_queue_depth, 2u);
  }
  server.resume();
  EXPECT_EQ(first.get().status, ServeStatus::kOk);
  EXPECT_EQ(second.get().status, ServeStatus::kOk);
  EXPECT_EQ(server.stats().shed, 1u);  // resume sheds nothing further
}

TEST(Serve, BlockPolicyAppliesBackpressureInsteadOfShedding) {
  const auto db = test_db();
  DetectionServer server{db,
                         {},
                         {.slots = 1,
                          .queue_capacity = 1,
                          .overload = OverloadPolicy::kBlock,
                          .start_paused = true}};
  const auto zone = zone_of({{'g', 0x043E, 'o', 'g', 'l', 'e'}});
  const auto make_request = [&] {
    ServeRequest request;
    request.references = {"google"};
    request.idns = zone;
    return request;
  };
  auto first = server.submit(make_request());
  // The queue (capacity 1) is full: the next submit must block, not shed.
  std::atomic<bool> submitted{false};
  std::thread blocked{[&] {
    auto second = server.submit(make_request());  // blocks until resume
    submitted = true;
    EXPECT_EQ(second.get().status, ServeStatus::kOk);
  }};
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(submitted.load());
  EXPECT_EQ(server.stats().shed, 0u);
  server.resume();  // slot drains the queue; the blocked submit proceeds
  blocked.join();
  EXPECT_EQ(first.get().status, ServeStatus::kOk);
  const auto stats = server.stats();
  EXPECT_EQ(stats.served, 2u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(Serve, QueueDeadlineExpiresWithoutRunningTheEngine) {
  const auto db = test_db();
  DetectionServer server{
      db, {}, {.slots = 1, .queue_capacity = 8, .start_paused = true}};
  const auto zone = zone_of({{'g', 0x043E, 'o', 'g', 'l', 'e'}});
  ServeRequest doomed;
  doomed.references = {"google"};
  doomed.idns = zone;
  doomed.timeout = 1ms;
  ServeRequest patient;
  patient.references = {"google"};
  patient.idns = zone;  // no timeout: server default (none)
  auto doomed_future = server.submit(std::move(doomed));
  auto patient_future = server.submit(std::move(patient));
  std::this_thread::sleep_for(20ms);  // let the deadline pass while paused
  server.resume();
  const auto expired = doomed_future.get();
  EXPECT_EQ(expired.status, ServeStatus::kExpired);
  EXPECT_TRUE(expired.matches.empty());
  EXPECT_GT(expired.queue_seconds, 0.0);
  EXPECT_EQ(patient_future.get().status, ServeStatus::kOk);
  const auto stats = server.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.served, 1u);
}

TEST(Serve, HighPriorityJumpsTheQueue) {
  const auto db = test_db();
  DetectionServer server{
      db, {}, {.slots = 1, .queue_capacity = 8, .start_paused = true}};
  // Three distinct zones so batching cannot merge them.
  const auto zone_a = zone_of({{'g', 0x043E, 'o', 'g', 'l', 'e'}});
  const auto zone_b = zone_of({{'m', 0x0430, 'i', 'l'}});
  const auto zone_c = zone_of({{0x0585, 'k'}});
  const auto submit = [&](const ZoneSnapshot& zone, Priority priority) {
    ServeRequest request;
    request.references = {"google", "mail", "ok"};
    request.idns = zone;
    request.priority = priority;
    return server.submit(std::move(request));
  };
  auto normal_a = submit(zone_a, Priority::kNormal);
  auto normal_b = submit(zone_b, Priority::kNormal);
  auto high_c = submit(zone_c, Priority::kHigh);
  server.resume();
  const auto a = normal_a.get();
  const auto b = normal_b.get();
  const auto c = high_c.get();
  ASSERT_EQ(c.status, ServeStatus::kOk);
  // The high-priority request was dispatched first, FIFO among the rest.
  EXPECT_LT(c.dispatch_order, a.dispatch_order);
  EXPECT_LT(a.dispatch_order, b.dispatch_order);
}

TEST(Serve, InvalidRequestsThrowAtSubmitExactlyLikeTheEngine) {
  const auto db = test_db();
  DetectionServer server{db};
  const auto zone = zone_of({{'g', 0x043E, 'o', 'g', 'l', 'e'}});
  {
    ServeRequest request;  // empty reference label
    request.references = {"google", ""};
    request.idns = zone;
    EXPECT_THROW((void)server.submit(std::move(request)), std::invalid_argument);
  }
  {
    ServeRequest request;  // non-ASCII byte in an ASCII reference
    request.references = {"caf\xC3\xA9"};
    request.idns = zone;
    EXPECT_THROW((void)server.submit(std::move(request)), std::invalid_argument);
  }
  {
    ServeRequest request;  // both reference spans set
    request.references = {"google"};
    request.unicode_references = {{'p', 'i', 'e'}};
    request.idns = zone;
    EXPECT_THROW((void)server.submit(std::move(request)), std::invalid_argument);
  }
  // Rejected requests never touch the counters; the server still serves.
  EXPECT_EQ(server.stats().submitted, 0u);
  ServeRequest fine;
  fine.references = {"google"};
  fine.idns = zone;
  EXPECT_EQ(server.detect_sync(std::move(fine)).status, ServeStatus::kOk);
}

TEST(Serve, EmptyZoneShortCircuitsLikeTheEngine) {
  const auto db = test_db();
  DetectionServer server{db};
  ServeRequest request;
  request.references = {"google"};  // idns left null
  const auto response = server.detect_sync(std::move(request));
  EXPECT_EQ(response.status, ServeStatus::kOk);
  EXPECT_TRUE(response.matches.empty());
  EXPECT_EQ(response.stats.length_bucket_hits, 0u);
}

TEST(Serve, StatsJsonCarriesSchemaAndSlots) {
  const auto db = test_db();
  DetectionServer server{db, {}, {.slots = 2}};
  const auto zone = zone_of({{'g', 0x043E, 'o', 'g', 'l', 'e'}});
  ServeRequest request;
  request.references = {"google"};
  request.idns = zone;
  (void)server.detect_sync(std::move(request));
  const auto json = server.stats().to_json();
  EXPECT_NE(json.find("\"schema_version\":"), std::string::npos);
  EXPECT_NE(json.find("\"served\":1"), std::string::npos);
  EXPECT_NE(json.find("\"slots\":["), std::string::npos);
  EXPECT_NE(json.find("\"slot_id\":1"), std::string::npos);
  EXPECT_NE(json.find("\"coalescing_ratio\":"), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"idle\""), std::string::npos);
}

TEST(Serve, ReplaySmokeVerifiesAgainstGroundTruth) {
  const auto db = test_db();
  const auto workload = make_replay_workload(db, 6, 6, 2, 80, 7);
  DetectionServer server{db, {}, {.slots = 2, .queue_capacity = 64}};
  ReplayConfig config;
  config.clients = 4;
  config.requests_per_client = 12;
  const auto report = run_replay(server, db, workload, config);
  EXPECT_EQ(report.sent, 48u);
  EXPECT_EQ(report.ok + report.shed + report.expired + report.other, report.sent);
  EXPECT_GT(report.ok, 0u);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.mismatches, 0u);
  EXPECT_GE(report.p95_ms, report.p50_ms);
  EXPECT_GE(report.p99_ms, report.p95_ms);
  const auto json = report.to_json();
  EXPECT_NE(json.find("\"p99_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":"), std::string::npos);
}

// --- Drain-on-stop (registered as the serve_shutdown ctest) -----------------

TEST(ServeShutdown, StopAnswersQueuedRequestsAndDrainsCleanly) {
  const auto db = test_db();
  const auto zone = zone_of({{'g', 0x043E, 'o', 'g', 'l', 'e'}});
  DetectionServer server{
      db, {}, {.slots = 2, .queue_capacity = 16, .start_paused = true}};
  std::vector<ResponseFuture> futures;
  for (int i = 0; i < 5; ++i) {
    ServeRequest request;
    request.references = {"google"};
    request.idns = zone;
    futures.push_back(server.submit(std::move(request)));
  }
  EXPECT_EQ(server.stats().queue_depth, 5u);
  server.stop();  // paused: nothing in flight; every queued request resolves
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status, ServeStatus::kShutdown);
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.shutdown, 5u);
  EXPECT_EQ(stats.served, 0u);
  EXPECT_FALSE(stats.running);
  // Admission after stop: immediate kShutdown, never a dead future.
  ServeRequest late;
  late.references = {"google"};
  late.idns = zone;
  auto refused = server.submit(std::move(late));
  EXPECT_TRUE(refused.ready());
  EXPECT_EQ(refused.get().status, ServeStatus::kShutdown);
  server.stop();  // idempotent
}

TEST(ServeShutdown, InFlightBatchFinishesBeforeJoin) {
  const auto db = test_db();
  const auto zone = zone_of({{'g', 0x043E, 'o', 'g', 'l', 'e'}, {'m', 0x0430, 'i', 'l'}});
  auto server = std::make_unique<DetectionServer>(
      db, detect::EngineOptions{}, ServerOptions{.slots = 1, .queue_capacity = 8});
  std::vector<ResponseFuture> futures;
  for (int i = 0; i < 4; ++i) {
    ServeRequest request;
    request.references = {"google", "mail"};
    request.idns = zone;
    futures.push_back(server->submit(std::move(request)));
  }
  server.reset();  // destructor stop(): in-flight completes, queue drains
  for (auto& future : futures) {
    const auto response = future.get();
    // Each request either ran to completion or was answered kShutdown —
    // no future is abandoned, no slot leaks (destructor joined them all).
    EXPECT_TRUE(response.status == ServeStatus::kOk ||
                response.status == ServeStatus::kShutdown)
        << status_name(response.status);
    if (response.status == ServeStatus::kOk) {
      EXPECT_EQ(response.matches.size(), 2u);
    }
  }
}

}  // namespace
}  // namespace sham::serve
