#include <gtest/gtest.h>

#include "idna/idna.hpp"
#include "unicode/utf8.hpp"

namespace sham::idna {
namespace {

using unicode::U32String;

TEST(Idna, AceDetection) {
  EXPECT_TRUE(is_a_label("xn--ggle-55da"));
  EXPECT_TRUE(is_a_label("XN--GGLE-55DA"));
  EXPECT_FALSE(is_a_label("google"));
  EXPECT_FALSE(is_a_label("xn-"));
  EXPECT_FALSE(is_a_label(""));
}

TEST(Idna, IsIdnChecksAnyLabel) {
  EXPECT_TRUE(is_idn("xn--ggle-55da.com"));
  EXPECT_TRUE(is_idn("www.xn--ggle-55da.com"));
  EXPECT_FALSE(is_idn("google.com"));
  EXPECT_FALSE(is_idn("axn--b.com"));
}

TEST(Idna, AsciiLabelPassThrough) {
  const U32String label{'G', 'o', 'O', 'g', 'L', 'e'};
  EXPECT_EQ(to_a_label(label), "google");  // lowercased
}

TEST(Idna, UnicodeLabelGetsAcePrefix) {
  const U32String label{'g', 0x043E, 0x043E, 'g', 'l', 'e'};
  EXPECT_EQ(to_a_label(label), "xn--ggle-55da");
}

TEST(Idna, PaperExample) {
  // 阿里巴巴 -> xn--tsta8290bfzd (Section 2.1 of the paper).
  const U32String label{0x963F, 0x91CC, 0x5DF4, 0x5DF4};
  EXPECT_EQ(to_a_label(label), "xn--tsta8290bfzd");
}

TEST(Idna, EmptyLabelThrows) {
  EXPECT_THROW(to_a_label(U32String{}), std::invalid_argument);
}

TEST(Idna, OverlongLabelThrows) {
  U32String label(64, 'a');
  EXPECT_THROW(to_a_label(label), std::invalid_argument);
}

TEST(Idna, ULabelRoundtrip) {
  const U32String label{'g', 0x043E, 0x043E, 'g', 'l', 'e'};
  const auto ace = to_a_label(label);
  const auto back = to_u_label(ace);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, label);
}

TEST(Idna, ULabelOfPlainAscii) {
  const auto u = to_u_label("GooGLE");
  ASSERT_TRUE(u.has_value());
  const U32String want{'g', 'o', 'o', 'g', 'l', 'e'};
  EXPECT_EQ(*u, want);
}

TEST(Idna, ULabelRejectsMalformedAce) {
  EXPECT_FALSE(to_u_label("xn--!!!").has_value());
  EXPECT_FALSE(to_u_label("xn--\x80").has_value());
}

TEST(Idna, ULabelRejectsRawNonAscii) {
  EXPECT_FALSE(to_u_label("g\xC3\xB6").has_value());
}

TEST(Idna, DomainConversion) {
  // "gооgle.com" with Cyrillic о.
  const U32String domain{'g', 0x043E, 0x043E, 'g', 'l', 'e', '.', 'c', 'o', 'm'};
  EXPECT_EQ(domain_to_ascii(domain), "xn--ggle-55da.com");
  const auto back = domain_to_unicode("xn--ggle-55da.com");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, domain);
}

TEST(Idna, DomainToAsciiUtf8) {
  EXPECT_EQ(domain_to_ascii_utf8("g\xD0\xBE\xD0\xBEgle.com"), "xn--ggle-55da.com");
  EXPECT_EQ(domain_to_ascii_utf8("plain.com"), "plain.com");
  EXPECT_THROW(domain_to_ascii_utf8("bad\x80seq.com"), std::invalid_argument);
}

TEST(Idna, DomainDisplay) {
  const auto display = domain_display("xn--ggle-55da.com");
  EXPECT_EQ(display, "g\xD0\xBE\xD0\xBEgle.com");
  // Malformed names fall back to the wire form rather than failing.
  EXPECT_EQ(domain_display("xn--!!!.com"), "xn--!!!.com");
}

TEST(Idna, ValidULabel) {
  EXPECT_TRUE(is_valid_u_label(U32String{'a', 'b', 'c'}));
  EXPECT_TRUE(is_valid_u_label(U32String{0x4E2D, 0x6587}));
  EXPECT_FALSE(is_valid_u_label(U32String{}));
  EXPECT_FALSE(is_valid_u_label(U32String{'-', 'a'}));
  EXPECT_FALSE(is_valid_u_label(U32String{'a', '-'}));
  EXPECT_FALSE(is_valid_u_label(U32String{'a', 'b', '-', '-', 'c'}));  // ??--
  EXPECT_FALSE(is_valid_u_label(U32String{'a', '!', 'b'}));  // DISALLOWED char
  EXPECT_FALSE(is_valid_u_label(U32String{'A'}));             // uppercase
}

}  // namespace
}  // namespace sham::idna
