// Paper-scale streaming pipeline tests (measure/scale_run.hpp): bounded
// zone streaming, streamed-vs-materialised verdict identity, and the
// generation-diff ingestion loop proven state-identical to a rebuild.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dns/zone_file.hpp"
#include "font/synthetic_font.hpp"
#include "homoglyph/homoglyph_db.hpp"
#include "idna/idna.hpp"
#include "measure/scale_run.hpp"
#include "unicode/confusables.hpp"
#include "util/rng.hpp"

namespace sham::measure {
namespace {

using unicode::CodePoint;

// RAII temp zone file under the build tree's cwd.
class TempZone {
 public:
  TempZone(std::string name, const std::string& text) : path_{std::move(name)} {
    std::ofstream out{path_, std::ios::trunc};
    out << text;
  }
  ~TempZone() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

// The test_simchar_update versioned-font shape: the new font adds ӧ plus
// the digit '0' to the 'o' cluster — '0' becomes the component's new
// canonical representative, forcing reference-index rehashing.
struct VersionedFonts {
  std::shared_ptr<font::SyntheticFont> old_font;
  std::shared_ptr<font::SyntheticFont> new_font;
  std::vector<CodePoint> added;
};

VersionedFonts make_versioned(std::uint64_t seed) {
  VersionedFonts v;
  font::SyntheticFontBuilder old_builder{seed};
  old_builder.cover_range(0x0430, 0x045F);
  old_builder.plant_cluster('o', {{0x043E, 0}, {0x0585, 2}});
  old_builder.plant_cluster('a', {{0x0251, 1}});
  v.old_font = old_builder.build();

  font::SyntheticFontBuilder new_builder{seed};
  new_builder.cover_range(0x0430, 0x045F);
  new_builder.plant_cluster('o', {{0x043E, 0}, {0x0585, 2}, {0x04E7, 3}, {0x30, 2}});
  new_builder.plant_cluster('a', {{0x0251, 1}});
  new_builder.cover_range(0x0531 + 0x30, 0x0586, 10, false);
  v.new_font = new_builder.build();

  for (const auto cp : v.new_font->coverage()) {
    if (!v.old_font->glyph(cp).has_value()) v.added.push_back(cp);
  }
  return v;
}

const std::vector<std::string> kRefs = {"oooo", "oaoa", "aooa", "ooao", "aaoo"};

// Homograph registrations of random references: "<ace>.<tld>", IDNs only.
std::vector<std::string> make_registrations(const homoglyph::HomoglyphDb& db,
                                            std::size_t count, util::Rng& rng,
                                            const std::string& tld) {
  std::vector<std::string> out;
  for (std::size_t attempts = 0; out.size() < count && attempts < count * 64;
       ++attempts) {
    const auto& ref = kRefs[rng.below(kRefs.size())];
    unicode::U32String label;
    for (const char c : ref) label.push_back(static_cast<unsigned char>(c));
    const std::size_t at = rng.below(label.size());
    const auto subs = db.homoglyphs_of(label[at]);
    if (subs.empty()) continue;
    label[at] = subs[rng.below(subs.size())];
    auto ace = idna::to_a_label(label);
    if (!ace.starts_with("xn--")) continue;
    out.push_back(std::move(ace) + "." + tld);
  }
  return out;
}

std::string registrations_as_zone(std::span<const std::string> names) {
  std::string text = "$TTL 300\n";
  for (const auto& name : names) {
    text += name + ". IN NS ns1.hoster.net.\n";
    text += name + ". IN A 203.0.113.7\n";  // duplicate owner, dedup target
  }
  return text;
}

TEST(ResidentKib, Reports) { EXPECT_GT(resident_kib(), 0u); }

TEST(StreamZone, BatchesDedupAndFilter) {
  const unicode::U32String guugle{'g', 0x043E, 0x043E, 'g', 'l', 'e'};
  const auto ace = idna::to_a_label(guugle);
  ASSERT_TRUE(ace.starts_with("xn--"));
  const std::string text =
      "$ORIGIN com.\n"
      + ace + " IN NS ns1.x.net.\n"
      + ace + " IN A 1.2.3.4\n"           // same owner: one domain, one IDN
      "plain IN NS ns1.x.net.\n"          // ASCII: counted, not an IDN
      + ace + ".net. IN NS ns1.x.net.\n"  // wrong TLD: not extracted
      "other IN A 1.2.3.5\n";
  const TempZone zone{"test_scale_stream.zone", text};

  std::vector<std::string> seen;
  std::size_t largest_batch = 0;
  const auto stats = stream_zone_idns(
      zone.path(), {.tld = "com", .batch_size = 1},
      [&](std::span<const detect::IdnEntry> batch) {
        largest_batch = std::max(largest_batch, batch.size());
        for (const auto& e : batch) seen.push_back(e.ace);
      });
  EXPECT_EQ(stats.records, 5u);
  EXPECT_EQ(stats.domains, 4u);  // ace.com, plain.com, ace.net, other.com
  EXPECT_EQ(stats.idns, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_LE(largest_batch, 1u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], ace);
}

TEST(StreamZone, MissingFileThrows) {
  EXPECT_THROW(stream_zone_idns("/nonexistent/zone.db", {},
                                [](std::span<const detect::IdnEntry>) {}),
               std::runtime_error);
}

TEST(MergeOutcomes, SortsAndDeduplicates) {
  DetectionOutcome a;
  a.verdicts = {{1, "xn--b", {}}, {0, "xn--a", {}}};
  DetectionOutcome b;
  b.verdicts = {{0, "xn--a", {}}};  // duplicate of a's second verdict
  b.stream.idns = 3;
  auto merged = merge_outcomes({a, b});
  ASSERT_EQ(merged.verdicts.size(), 2u);
  EXPECT_EQ(merged.verdicts[0].reference_index, 0u);
  EXPECT_EQ(merged.verdicts[0].ace, "xn--a");
  EXPECT_EQ(merged.verdicts[1].ace, "xn--b");
  EXPECT_EQ(merged.stream.idns, 3u);

  // Part order must not change the canonical outcome.
  const auto flipped = merge_outcomes({b, a});
  EXPECT_EQ(flipped.verdicts, merged.verdicts);
  EXPECT_EQ(flipped.fingerprint, merged.fingerprint);
  EXPECT_NE(merged.fingerprint, 0u);
}

TEST(StreamVsMaterialized, ByteIdenticalAtEveryBatchSize) {
  const auto fonts = make_versioned(99);
  const auto sim = simchar::SimCharDb::build(*fonts.new_font, {});
  const homoglyph::HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), {}};
  const detect::Engine engine{db};

  util::Rng rng{4242};
  const auto regs = make_registrations(db, 40, rng, "com");
  ASSERT_FALSE(regs.empty());
  const TempZone zone{"test_scale_identity.zone", registrations_as_zone(regs)};

  const auto baseline = detect_materialized(engine, kRefs, zone.path(),
                                            {.tld = "com", .batch_size = 4096},
                                            detect::Strategy::kSerial);
  ASSERT_FALSE(baseline.verdicts.empty());

  for (const std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{4096}}) {
    for (const auto strategy :
         {detect::Strategy::kSerial, detect::Strategy::kIndexed,
          detect::Strategy::kParallel, detect::Strategy::kSkeleton}) {
      const auto streamed = detect_streaming(
          engine, kRefs, zone.path(), {.tld = "com", .batch_size = batch}, strategy);
      EXPECT_EQ(streamed.verdicts, baseline.verdicts)
          << "batch " << batch << " strategy " << static_cast<int>(strategy);
      EXPECT_EQ(streamed.fingerprint, baseline.fingerprint);
      EXPECT_EQ(streamed.stream.idns, baseline.stream.idns);
    }
  }
}

TEST(GenerationDiff, DailyFeedMatchesFullRebuild) {
  const auto fonts = make_versioned(515);
  GenerationDiffPipeline pipeline{*fonts.old_font, kRefs};
  util::Rng rng{515};

  // Day 0: registrations only (old font's database).
  DiffBatch day0;
  day0.new_registrations = make_registrations(pipeline.db(), 12, rng, "com");
  const auto r0 = pipeline.apply(day0);
  EXPECT_EQ(r0.db_update.pairs_added, 0u);
  EXPECT_GT(r0.new_idns, 0u);

  // Day 1: the font update lands — new characters join the 'o' component
  // and '0' takes over as its canonical representative.
  DiffBatch day1;
  day1.font = fonts.new_font.get();
  day1.new_characters = fonts.added;
  const auto r1 = pipeline.apply(day1);
  EXPECT_GT(r1.db_update.pairs_added, 0u);
  EXPECT_FALSE(r1.db_update.canonical_changed.empty());
  EXPECT_GT(r1.index_entries_rehashed, 0u);

  // Days 2-3: more registrations against the grown database.
  for (const std::uint64_t day : {2u, 3u}) {
    DiffBatch batch;
    batch.new_registrations =
        make_registrations(pipeline.db(), 12, rng, "com");
    const auto r = pipeline.apply(batch);
    EXPECT_GT(r.new_idns, 0u) << "day " << day;
  }

  // The accumulated incremental state must be indistinguishable from a
  // from-scratch rebuild over the current font — flat pair set, canonical
  // map, skeleton buckets, and detect() verdicts across all strategies.
  const auto eq = verify_against_rebuild(pipeline);
  EXPECT_TRUE(eq.pairs_identical);
  EXPECT_TRUE(eq.canonical_identical);
  EXPECT_TRUE(eq.skeleton_identical);
  EXPECT_TRUE(eq.verdicts_identical);
  EXPECT_TRUE(eq.ok());

  const auto outcome = pipeline.detect(detect::Strategy::kSkeleton);
  EXPECT_FALSE(outcome.verdicts.empty());
}

TEST(GenerationDiff, NoOpBatchKeepsStateIdentical) {
  const auto fonts = make_versioned(7);
  GenerationDiffPipeline pipeline{*fonts.old_font, kRefs};
  const auto before = pipeline.db().generation();
  const auto r = pipeline.apply({});
  EXPECT_EQ(r.db_update.pairs_added, 0u);
  EXPECT_EQ(r.index_entries_rehashed, 0u);
  EXPECT_EQ(r.new_idns, 0u);
  EXPECT_TRUE(verify_against_rebuild(pipeline).ok());
  EXPECT_EQ(pipeline.db().generation(), before);
}

}  // namespace
}  // namespace sham::measure
