// Paper-scale streaming pipeline tests (measure/scale_run.hpp): bounded
// zone streaming, streamed-vs-materialised verdict identity, and the
// generation-diff ingestion loop proven state-identical to a rebuild.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "db/artifact.hpp"
#include "detect/skeleton_index.hpp"
#include "dns/zone_file.hpp"
#include "font/synthetic_font.hpp"
#include "homoglyph/homoglyph_db.hpp"
#include "idna/idna.hpp"
#include "internet/scenario.hpp"
#include "internet/zone_gen.hpp"
#include "measure/environment.hpp"
#include "measure/scale_run.hpp"
#include "unicode/confusables.hpp"
#include "util/rng.hpp"

namespace sham::measure {
namespace {

using unicode::CodePoint;

// RAII temp zone file under the build tree's cwd.
class TempZone {
 public:
  TempZone(std::string name, const std::string& text) : path_{std::move(name)} {
    std::ofstream out{path_, std::ios::trunc};
    out << text;
  }
  ~TempZone() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

// The test_simchar_update versioned-font shape: the new font adds ӧ plus
// the digit '0' to the 'o' cluster — '0' becomes the component's new
// canonical representative, forcing reference-index rehashing.
struct VersionedFonts {
  std::shared_ptr<font::SyntheticFont> old_font;
  std::shared_ptr<font::SyntheticFont> new_font;
  std::vector<CodePoint> added;
};

VersionedFonts make_versioned(std::uint64_t seed) {
  VersionedFonts v;
  font::SyntheticFontBuilder old_builder{seed};
  old_builder.cover_range(0x0430, 0x045F);
  old_builder.plant_cluster('o', {{0x043E, 0}, {0x0585, 2}});
  old_builder.plant_cluster('a', {{0x0251, 1}});
  v.old_font = old_builder.build();

  font::SyntheticFontBuilder new_builder{seed};
  new_builder.cover_range(0x0430, 0x045F);
  new_builder.plant_cluster('o', {{0x043E, 0}, {0x0585, 2}, {0x04E7, 3}, {0x30, 2}});
  new_builder.plant_cluster('a', {{0x0251, 1}});
  new_builder.cover_range(0x0531 + 0x30, 0x0586, 10, false);
  v.new_font = new_builder.build();

  for (const auto cp : v.new_font->coverage()) {
    if (!v.old_font->glyph(cp).has_value()) v.added.push_back(cp);
  }
  return v;
}

const std::vector<std::string> kRefs = {"oooo", "oaoa", "aooa", "ooao", "aaoo"};

// Homograph registrations of random references: "<ace>.<tld>", IDNs only.
std::vector<std::string> make_registrations(const homoglyph::HomoglyphDb& db,
                                            std::size_t count, util::Rng& rng,
                                            const std::string& tld) {
  std::vector<std::string> out;
  for (std::size_t attempts = 0; out.size() < count && attempts < count * 64;
       ++attempts) {
    const auto& ref = kRefs[rng.below(kRefs.size())];
    unicode::U32String label;
    for (const char c : ref) label.push_back(static_cast<unsigned char>(c));
    const std::size_t at = rng.below(label.size());
    const auto subs = db.homoglyphs_of(label[at]);
    if (subs.empty()) continue;
    label[at] = subs[rng.below(subs.size())];
    auto ace = idna::to_a_label(label);
    if (!ace.starts_with("xn--")) continue;
    out.push_back(std::move(ace) + "." + tld);
  }
  return out;
}

std::string registrations_as_zone(std::span<const std::string> names) {
  std::string text = "$TTL 300\n";
  for (const auto& name : names) {
    text += name + ". IN NS ns1.hoster.net.\n";
    text += name + ". IN A 203.0.113.7\n";  // duplicate owner, dedup target
  }
  return text;
}

TEST(ResidentKib, Reports) { EXPECT_GT(resident_kib(), 0u); }

TEST(StreamZone, BatchesDedupAndFilter) {
  const unicode::U32String guugle{'g', 0x043E, 0x043E, 'g', 'l', 'e'};
  const auto ace = idna::to_a_label(guugle);
  ASSERT_TRUE(ace.starts_with("xn--"));
  const std::string text =
      "$ORIGIN com.\n"
      + ace + " IN NS ns1.x.net.\n"
      + ace + " IN A 1.2.3.4\n"           // same owner: one domain, one IDN
      "plain IN NS ns1.x.net.\n"          // ASCII: counted, not an IDN
      + ace + ".net. IN NS ns1.x.net.\n"  // wrong TLD: not extracted
      "other IN A 1.2.3.5\n";
  const TempZone zone{"test_scale_stream.zone", text};

  std::vector<std::string> seen;
  std::size_t largest_batch = 0;
  const auto stats = stream_zone_idns(
      zone.path(), {.tld = "com", .batch_size = 1},
      [&](std::span<const detect::IdnEntry> batch) {
        largest_batch = std::max(largest_batch, batch.size());
        for (const auto& e : batch) seen.push_back(e.ace);
      });
  EXPECT_EQ(stats.records, 5u);
  EXPECT_EQ(stats.domains, 4u);  // ace.com, plain.com, ace.net, other.com
  EXPECT_EQ(stats.idns, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_LE(largest_batch, 1u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], ace);
}

TEST(StreamZone, MissingFileThrows) {
  EXPECT_THROW(stream_zone_idns("/nonexistent/zone.db", {},
                                [](std::span<const detect::IdnEntry>) {}),
               std::runtime_error);
}

TEST(MergeOutcomes, SortsAndDeduplicates) {
  DetectionOutcome a;
  a.verdicts = {{1, "xn--b", {}}, {0, "xn--a", {}}};
  DetectionOutcome b;
  b.verdicts = {{0, "xn--a", {}}};  // duplicate of a's second verdict
  b.stream.idns = 3;
  auto merged = merge_outcomes({a, b});
  ASSERT_EQ(merged.verdicts.size(), 2u);
  EXPECT_EQ(merged.verdicts[0].reference_index, 0u);
  EXPECT_EQ(merged.verdicts[0].ace, "xn--a");
  EXPECT_EQ(merged.verdicts[1].ace, "xn--b");
  EXPECT_EQ(merged.stream.idns, 3u);

  // Part order must not change the canonical outcome.
  const auto flipped = merge_outcomes({b, a});
  EXPECT_EQ(flipped.verdicts, merged.verdicts);
  EXPECT_EQ(flipped.fingerprint, merged.fingerprint);
  EXPECT_NE(merged.fingerprint, 0u);
}

TEST(StreamVsMaterialized, ByteIdenticalAtEveryBatchSize) {
  const auto fonts = make_versioned(99);
  const auto sim = simchar::SimCharDb::build(*fonts.new_font, {});
  const homoglyph::HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), {}};
  const detect::Engine engine{db};

  util::Rng rng{4242};
  const auto regs = make_registrations(db, 40, rng, "com");
  ASSERT_FALSE(regs.empty());
  const TempZone zone{"test_scale_identity.zone", registrations_as_zone(regs)};

  const auto baseline = detect_materialized(engine, kRefs, zone.path(),
                                            {.tld = "com", .batch_size = 4096},
                                            detect::Strategy::kSerial);
  ASSERT_FALSE(baseline.verdicts.empty());

  for (const std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{4096}}) {
    for (const auto strategy :
         {detect::Strategy::kSerial, detect::Strategy::kIndexed,
          detect::Strategy::kParallel, detect::Strategy::kSkeleton}) {
      const auto streamed = detect_streaming(
          engine, kRefs, zone.path(), {.tld = "com", .batch_size = batch}, strategy);
      EXPECT_EQ(streamed.verdicts, baseline.verdicts)
          << "batch " << batch << " strategy " << static_cast<int>(strategy);
      EXPECT_EQ(streamed.fingerprint, baseline.fingerprint);
      EXPECT_EQ(streamed.stream.idns, baseline.stream.idns);
    }
  }
}

TEST(GenerationDiff, DailyFeedMatchesFullRebuild) {
  const auto fonts = make_versioned(515);
  GenerationDiffPipeline pipeline{*fonts.old_font, kRefs};
  util::Rng rng{515};

  // Day 0: registrations only (old font's database).
  DiffBatch day0;
  day0.new_registrations = make_registrations(pipeline.db(), 12, rng, "com");
  const auto r0 = pipeline.apply(day0);
  EXPECT_EQ(r0.db_update.pairs_added, 0u);
  EXPECT_GT(r0.new_idns, 0u);

  // Day 1: the font update lands — new characters join the 'o' component
  // and '0' takes over as its canonical representative.
  DiffBatch day1;
  day1.font = fonts.new_font.get();
  day1.new_characters = fonts.added;
  const auto r1 = pipeline.apply(day1);
  EXPECT_GT(r1.db_update.pairs_added, 0u);
  EXPECT_FALSE(r1.db_update.canonical_changed.empty());
  EXPECT_GT(r1.index_entries_rehashed, 0u);

  // Days 2-3: more registrations against the grown database.
  for (const std::uint64_t day : {2u, 3u}) {
    DiffBatch batch;
    batch.new_registrations =
        make_registrations(pipeline.db(), 12, rng, "com");
    const auto r = pipeline.apply(batch);
    EXPECT_GT(r.new_idns, 0u) << "day " << day;
  }

  // The accumulated incremental state must be indistinguishable from a
  // from-scratch rebuild over the current font — flat pair set, canonical
  // map, skeleton buckets, and detect() verdicts across all strategies.
  const auto eq = verify_against_rebuild(pipeline);
  EXPECT_TRUE(eq.pairs_identical);
  EXPECT_TRUE(eq.canonical_identical);
  EXPECT_TRUE(eq.skeleton_identical);
  EXPECT_TRUE(eq.verdicts_identical);
  EXPECT_TRUE(eq.ok());

  const auto outcome = pipeline.detect(detect::Strategy::kSkeleton);
  EXPECT_FALSE(outcome.verdicts.empty());
}

// --- Intra-zone sharding + generated streams ------------------------------

// Small engine over the versioned fonts, pinned together so the database
// outlives the engine.
struct ShardRig {
  VersionedFonts fonts = make_versioned(99);
  simchar::SimCharDb sim = simchar::SimCharDb::build(*fonts.new_font, {});
  homoglyph::HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), {}};
  detect::Engine engine{db};
};

BatchProducer zone_producer(std::string path, StreamOptions options) {
  return [path = std::move(path), options = std::move(options)](
             const std::function<void(std::span<const detect::IdnEntry>)>& sink) {
    return stream_zone_idns(path, options, sink);
  };
}

// The paper-scale environment at reduced font coverage: cheap enough for a
// unit test, rich enough that generated scenarios contain real homographs.
const Environment& env() {
  static const auto instance = [] {
    EnvironmentConfig config;
    config.font_scale = 0.1;
    return Environment::create(config);
  }();
  return instance;
}

internet::ScenarioConfig gen_config(std::uint64_t seed = 77) {
  internet::ScenarioConfig config;
  config.seed = seed;
  config.total_domains = 4'000;
  config.reference_count = 150;
  config.attack_scale = 0.05;
  config.idn_fraction = 0.04;
  return config;
}

TEST(DetectSharded, InvariantAcrossShardCountsAndBatchSizes) {
  const ShardRig rig;
  util::Rng rng{4242};
  const auto regs = make_registrations(rig.db, 60, rng, "com");
  ASSERT_FALSE(regs.empty());
  const TempZone zone{"test_scale_shard.zone", registrations_as_zone(regs)};

  const auto baseline =
      detect_materialized(rig.engine, kRefs, zone.path(), {.tld = "com"},
                          detect::Strategy::kSerial);
  ASSERT_FALSE(baseline.verdicts.empty());

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
      const auto out = detect_sharded(
          rig.engine, kRefs, detect::Strategy::kSkeleton,
          {.shards = shards, .queue_batches = 2},
          zone_producer(zone.path(), {.tld = "com", .batch_size = batch}));
      EXPECT_EQ(out.verdicts, baseline.verdicts)
          << "shards " << shards << " batch " << batch;
      EXPECT_EQ(out.fingerprint, baseline.fingerprint);
      EXPECT_EQ(out.stream.idns, baseline.stream.idns);
    }
  }
}

TEST(DetectSharded, ProducerExceptionPropagates) {
  const ShardRig rig;
  EXPECT_THROW(
      (void)detect_sharded(
          rig.engine, kRefs, detect::Strategy::kSkeleton, {.shards = 4},
          [](const std::function<void(std::span<const detect::IdnEntry>)>&)
              -> ZoneStreamStats {
            throw std::runtime_error{"producer failed mid-stream"};
          }),
      std::runtime_error);
}

TEST(DetectSharded, WorkerExceptionUnblocksProducer) {
  // An empty reference label makes every shard worker's detect() throw
  // std::invalid_argument on its first batch. With a one-batch queue and
  // single-entry batches the producer must be unblocked by the abort (a
  // deadlock here fails via the test timeout) and the worker's exception
  // must win over the producer's push failure.
  const ShardRig rig;
  util::Rng rng{7};
  const auto regs = make_registrations(rig.db, 40, rng, "com");
  ASSERT_GT(regs.size(), 8u);
  const TempZone zone{"test_scale_badref.zone", registrations_as_zone(regs)};
  const std::vector<std::string> bad_refs = {""};
  EXPECT_THROW(
      (void)detect_sharded(
          rig.engine, bad_refs, detect::Strategy::kSkeleton,
          {.shards = 4, .queue_batches = 1},
          zone_producer(zone.path(), {.tld = "com", .batch_size = 1})),
      std::invalid_argument);
}

TEST(DetectGenerated, MatchesStreamedFileAtEveryShardCount) {
  // The generated pipeline (generator thread -> chunk ring -> parser ->
  // shard workers) must produce the exact outcome of streaming the same
  // text from disk, at every shard count.
  const auto config = gen_config();
  const auto scenario = internet::generate_scenario(env().db_union, config);
  const detect::Engine engine{env().db_union};
  const auto text =
      internet::generate_zone_text(env().db_union, config, {.which = 2});
  const TempZone zone{"test_scale_gen.zone", text};

  const StreamOptions options{.tld = "com", .batch_size = 512};
  const auto baseline = detect_streaming(engine, scenario.references, zone.path(),
                                         options, detect::Strategy::kSkeleton);
  ASSERT_FALSE(baseline.verdicts.empty());

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    GenStream gen;
    gen.scenario = config;
    gen.zone = {.which = 2, .tld = "com", .chunk_bytes = 32 * 1024};
    gen.ring_chunks = 4;
    const auto out =
        detect_generated(engine, scenario.references, env().db_union, gen,
                         options, {.shards = shards}, detect::Strategy::kSkeleton);
    EXPECT_EQ(out.verdicts, baseline.verdicts) << "shards " << shards;
    EXPECT_EQ(out.fingerprint, baseline.fingerprint);
    EXPECT_EQ(out.stream.domains, baseline.stream.domains);
    EXPECT_EQ(out.stream.idns, baseline.stream.idns);
  }
}

TEST(StreamGenerated, ProgressCallbackIsMonotone) {
  const auto config = gen_config();
  std::vector<std::size_t> domains_seen;
  StreamOptions options{.tld = "com", .batch_size = 256,
                        .progress_interval = 500};
  options.on_progress = [&](const StreamProgress& p) {
    domains_seen.push_back(p.domains);
    EXPECT_GT(p.rss_kib, 0u);
  };
  GenStream gen;
  gen.scenario = config;
  gen.zone = {.which = 2, .tld = "com"};
  const auto stats = stream_generated_idns(
      env().db_union, gen, options, [](std::span<const detect::IdnEntry>) {});
  // stream domains counts distinct record owners — population members whose
  // host emits no records (no NS/A/MX) never reach the parser.
  EXPECT_LE(stats.domains, config.total_domains);
  EXPECT_GE(stats.domains, config.total_domains * 9 / 10);
  ASSERT_GE(domains_seen.size(), 2u);
  EXPECT_TRUE(std::is_sorted(domains_seen.begin(), domains_seen.end()));
}

TEST(Fleet, SyntheticZoneShardInvariant) {
  // A synthetic FleetZone (empty zone_path) generates its zone on the fly
  // from the artifact's own database. The verdict fingerprint must be
  // identical at 1/2/8 shards and equal to the in-process streamed
  // baseline over the same generated text; per-zone timing and peak-RSS
  // fields must be populated.
  const auto config = gen_config();
  const auto scenario = internet::generate_scenario(env().db_union, config);

  const std::string artifact = "test_scale_fleet.artifact";
  {
    db::WriteRequest request;
    request.simchar = &env().simchar;
    request.homoglyph = &env().db_union;
    const detect::SkeletonIndex index{env().db_union, scenario.references,
                                      {.max_bucket_occupancy = 64}};
    const auto flat = index.to_flat();
    request.references = scenario.references;
    request.reference_fingerprint =
        detect::label_set_fingerprint(scenario.references);
    request.skeleton = &flat;
    db::write_db_file(artifact, request);
  }

  const detect::Engine in_process{env().db_union};
  const auto text =
      internet::generate_zone_text(env().db_union, config, {.which = 2});
  const TempZone zone{"test_scale_fleet.zone", text};
  const auto baseline =
      detect_streaming(in_process, scenario.references, zone.path(),
                       {.tld = "com", .batch_size = 512},
                       detect::Strategy::kSkeleton);
  ASSERT_FALSE(baseline.verdicts.empty());

  std::vector<std::uint64_t> fingerprints;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    FleetOptions options;
    options.db_file = artifact;
    FleetZone synthetic;
    synthetic.tld = "com";
    synthetic.scenario = config;
    synthetic.which = 2;
    synthetic.chunk_bytes = 64 * 1024;
    options.zones = {synthetic};
    options.batch_size = 512;
    options.shards = shards;
    bool progressed = false;
    options.progress_interval = 1'000;
    options.on_progress = [&](const std::string& tld, const StreamProgress&) {
      EXPECT_EQ(tld, "com");
      progressed = true;
    };

    const auto report = run_fleet(options);
    ASSERT_TRUE(report.ok()) << "shards " << shards;
    EXPECT_EQ(report.shards, shards);
    ASSERT_EQ(report.zones.size(), 1u);
    const auto& z = report.zones.front();
    EXPECT_TRUE(z.error.empty());
    // Same generated text as the on-disk baseline => same owner count.
    EXPECT_EQ(z.stream.domains, baseline.stream.domains);
    EXPECT_GT(z.matches, 0u);
    EXPECT_GT(z.seconds, 0.0);
    EXPECT_GT(z.setup_seconds, 0.0);
    EXPECT_GT(z.rss_peak_kib, 0u);
    EXPECT_TRUE(progressed);
    fingerprints.push_back(z.verdict_fingerprint);

    const auto json = report.to_json();
    EXPECT_NE(json.find("\"setup_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"rss_peak_kib\""), std::string::npos);
    EXPECT_NE(json.find("\"shards\""), std::string::npos);
    // The duplicated "bench" key inside the fleet object is gone.
    EXPECT_EQ(json.find("\"bench\""), std::string::npos);
  }
  std::remove(artifact.c_str());

  ASSERT_EQ(fingerprints.size(), 3u);
  EXPECT_EQ(fingerprints[0], baseline.fingerprint);
  EXPECT_EQ(fingerprints[1], fingerprints[0]);
  EXPECT_EQ(fingerprints[2], fingerprints[0]);
}

TEST(GenerationDiff, NoOpBatchKeepsStateIdentical) {
  const auto fonts = make_versioned(7);
  GenerationDiffPipeline pipeline{*fonts.old_font, kRefs};
  const auto before = pipeline.db().generation();
  const auto r = pipeline.apply({});
  EXPECT_EQ(r.db_update.pairs_added, 0u);
  EXPECT_EQ(r.index_entries_rehashed, 0u);
  EXPECT_EQ(r.new_idns, 0u);
  EXPECT_TRUE(verify_against_rebuild(pipeline).ok());
  EXPECT_EQ(pipeline.db().generation(), before);
}

}  // namespace
}  // namespace sham::measure
