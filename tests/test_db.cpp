// The DB artifact (db/format.hpp, db/artifact.hpp): write -> mmap ->
// adopt round trips, loader hardening against corrupt input, in-place
// glyph-panel adoption for the SIMD kernels, and copy-on-write when a
// view-mode structure is mutated.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "db/artifact.hpp"
#include "db/format.hpp"
#include "detect/engine.hpp"
#include "detect/skeleton_index.hpp"
#include "font/synthetic_font.hpp"
#include "kernels/kernels.hpp"
#include "simchar/simchar.hpp"
#include "util/rng.hpp"

namespace sham {
namespace {

using unicode::CodePoint;
using unicode::U32String;

// --- Shared fixture data --------------------------------------------------

simchar::SimCharDb small_simchar() {
  return simchar::SimCharDb{{
      {'o', 0x043E, 0},
      {'o', 0x0585, 2},
      {'e', 0x00E9, 3},
      {'a', 0x0430, 1},
      {'i', 0x0131, 2},
      {0x043E, 0x04E7, 4},
  }};
}

homoglyph::HomoglyphDb small_db() {
  homoglyph::DbConfig config;
  config.use_uc = false;
  return homoglyph::HomoglyphDb{small_simchar(), unicode::ConfusablesDb::embedded(),
                                config};
}

struct Workload {
  std::vector<std::string> refs;
  std::vector<detect::IdnEntry> idns;
};

Workload small_workload(std::uint64_t seed, std::size_t ref_count = 40,
                        std::size_t idn_count = 400) {
  Workload w;
  util::Rng rng{seed};
  for (std::size_t i = 0; i < ref_count; ++i) {
    std::string name;
    const std::size_t n = 3 + rng.below(8);
    for (std::size_t j = 0; j < n; ++j) name += static_cast<char>('a' + rng.below(26));
    w.refs.push_back(name);
  }
  const CodePoint subs[] = {0x043E, 0x0585, 0x00E9, 0x0430, 0x0131, 0x04E7, 'x'};
  for (std::size_t i = 0; i < idn_count; ++i) {
    const auto& ref = w.refs[rng.below(w.refs.size())];
    U32String label;
    for (const char c : ref) label.push_back(static_cast<unsigned char>(c));
    const std::size_t muts = 1 + rng.below(2);
    for (std::size_t m = 0; m < muts; ++m) {
      label[rng.below(label.size())] = subs[rng.below(std::size(subs))];
    }
    w.idns.push_back({"", label});
  }
  return w;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "sham_" + name + ".artifact";
}

/// Write the small databases (plus a reference skeleton index) to a fresh
/// artifact file and return its path.
std::string write_small_artifact(const std::string& name,
                                 const simchar::SimCharDb& sim,
                                 const homoglyph::HomoglyphDb& db,
                                 std::span<const std::string> refs) {
  const auto path = temp_path(name);
  db::WriteRequest request;
  request.simchar = &sim;
  request.homoglyph = &db;
  db::SkeletonFlat skeleton;
  if (!refs.empty()) {
    const detect::SkeletonIndex index{db, refs, {.max_bucket_occupancy = 4}};
    skeleton = index.to_flat();
    request.references = refs;
    request.reference_fingerprint = detect::label_set_fingerprint(refs);
    request.skeleton = &skeleton;
  }
  db::write_db_file(path, request);
  return path;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{in}, {}};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- Format basics --------------------------------------------------------

TEST(DbFormat, HeaderIsOneCacheLineAndMagicSpellsShamdb) {
  static_assert(sizeof(db::FileHeader) == 64);
  static_assert(sizeof(db::SectionEntry) == 32);
  char magic[9] = {};
  std::memcpy(magic, &db::kMagic, 8);
  EXPECT_STREQ(magic, "SHAMDB1");
}

TEST(DbFormat, Fnv1a64MatchesKnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(db::fnv1a64("", 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(db::fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(db::fnv1a64("foobar", 6), 0x85944171f73967e8ULL);
}

TEST(DbFormat, SpanReaderRejectsOverflowingCounts) {
  alignas(8) const std::byte buf[16] = {};
  db::SpanReader reader{buf, sizeof(buf), "test"};
  // A count chosen so count * sizeof(T) wraps a 64-bit size_t; the divide-
  // based bound check must still reject it.
  EXPECT_THROW((void)reader.array<std::uint64_t>(~0ULL / 4), std::runtime_error);
}

// --- Round trip: databases ------------------------------------------------

TEST(DbArtifact, SimCharRoundTripsByteIdentically) {
  const auto sim = small_simchar();
  const auto db = small_db();
  const auto path = write_small_artifact("simchar_rt", sim, db, {});
  const auto artifact = db::DbArtifact::load(path);

  const auto view = artifact.simchar();
  EXPECT_TRUE(view.is_view());
  EXPECT_FALSE(sim.is_view());
  EXPECT_TRUE(std::ranges::equal(view.pairs(), sim.pairs()));
  EXPECT_EQ(view.serialize(), sim.serialize());
  EXPECT_EQ(view.characters(), sim.characters());
  for (const auto& p : sim.pairs()) {
    EXPECT_TRUE(view.are_homoglyphs(p.a, p.b));
    EXPECT_TRUE(view.are_homoglyphs(p.b, p.a));
    EXPECT_EQ(view.delta_of(p.a, p.b), sim.delta_of(p.a, p.b));
    EXPECT_EQ(view.homoglyphs_of(p.a), sim.homoglyphs_of(p.a));
  }
  EXPECT_FALSE(view.are_homoglyphs('q', 'w'));
  std::remove(path.c_str());
}

TEST(DbArtifact, HomoglyphDbRoundTripsByteIdentically) {
  const auto sim = small_simchar();
  const auto db = small_db();
  const auto path = write_small_artifact("hgdb_rt", sim, db, {});
  const auto artifact = db::DbArtifact::load(path);

  const auto view = artifact.homoglyph();
  EXPECT_TRUE(view.is_view());
  EXPECT_EQ(view.serialize(), db.serialize());
  EXPECT_EQ(view.pair_count(), db.pair_count());
  EXPECT_EQ(view.character_count(), db.character_count());
  EXPECT_EQ(view.canonical_class_count(), db.canonical_class_count());
  EXPECT_EQ(view.generation(), db.generation());
  EXPECT_EQ(artifact.generation(), db.generation());
  // canonical() must agree everywhere it matters: the latin1 fast path,
  // every mapped character, and unmapped code points.
  for (CodePoint cp = 0; cp < 0x500; ++cp) {
    EXPECT_EQ(view.canonical(cp), db.canonical(cp)) << "cp=" << cp;
  }
  for (const auto& p : sim.pairs()) {
    EXPECT_EQ(view.source_of(p.a, p.b), db.source_of(p.a, p.b));
    EXPECT_EQ(view.homoglyphs_of(p.a), db.homoglyphs_of(p.a));
  }
  EXPECT_EQ(view.revert_to_ascii(U32String{0x043E, 'k'}),
            db.revert_to_ascii(U32String{0x043E, 'k'}));
  std::remove(path.c_str());
}

TEST(DbArtifact, ReferencesAndFingerprintRoundTrip) {
  const auto sim = small_simchar();
  const auto db = small_db();
  const std::vector<std::string> refs{"google", "amazon", "facebook"};
  const auto path = write_small_artifact("refs_rt", sim, db, refs);
  const auto artifact = db::DbArtifact::load(path);
  EXPECT_EQ(artifact.references(), refs);
  EXPECT_EQ(artifact.reference_fingerprint(),
            detect::label_set_fingerprint(std::span<const std::string>{refs}));
  EXPECT_TRUE(artifact.has_skeleton());
  std::remove(path.c_str());
}

// --- Round trip: skeleton index -------------------------------------------

TEST(DbArtifact, AdoptedSkeletonProbesIdenticallyToFreshBuild) {
  const auto db = small_db();
  const auto w = small_workload(42);
  const auto path =
      write_small_artifact("skel_rt", small_simchar(), db, w.refs);
  const auto artifact = db::DbArtifact::load(path);

  const detect::SkeletonIndex fresh{
      db, std::span<const std::string>{w.refs}, {.max_bucket_occupancy = 4}};
  const auto adopted =
      detect::SkeletonIndex::adopt_view(db, artifact.skeleton(), artifact.backing());
  EXPECT_TRUE(adopted.is_view());
  EXPECT_EQ(adopted.entry_count(), fresh.entry_count());
  EXPECT_EQ(adopted.bucket_count(), fresh.bucket_count());
  EXPECT_EQ(adopted.split_bucket_count(), fresh.split_bucket_count());
  EXPECT_EQ(adopted.occupancy_histogram(), fresh.occupancy_histogram());
  // Probe with every reference and every IDN: identical candidate sets,
  // through both the whole-bucket and the split-aware probe.
  for (const auto& ref : w.refs) {
    const auto a = adopted.probe(adopted.hash_of(ref));
    const auto b = fresh.probe(fresh.hash_of(ref));
    EXPECT_TRUE(std::ranges::equal(a, b)) << ref;
    const auto a2 = adopted.probe(adopted.hashes_of(ref));
    const auto b2 = fresh.probe(fresh.hashes_of(ref));
    EXPECT_TRUE(std::ranges::equal(a2, b2)) << ref;
  }
  for (const auto& idn : w.idns) {
    const auto a = adopted.probe(adopted.hashes_of(idn.unicode));
    const auto b = fresh.probe(fresh.hashes_of(idn.unicode));
    EXPECT_TRUE(std::ranges::equal(a, b));
  }
  std::remove(path.c_str());
}

// --- Round trip: detect() across strategies, levels, cache states ---------

TEST(DbArtifact, DetectByteIdenticalAcrossStrategiesLevelsAndCacheStates) {
  const auto db = small_db();
  const auto w = small_workload(7);
  const auto path =
      write_small_artifact("detect_rt", small_simchar(), db, w.refs);

  const detect::Engine in_process{db};
  const auto baseline = in_process.detect(
      {.references = w.refs, .idns = w.idns, .strategy = detect::Strategy::kSerial});
  ASSERT_FALSE(baseline.matches.empty());

  const detect::Strategy strategies[] = {
      detect::Strategy::kSerial, detect::Strategy::kIndexed,
      detect::Strategy::kParallel, detect::Strategy::kSkeleton};
  for (const auto level : kernels::supported_levels()) {
    const kernels::ScopedKernelLevel pin{level};
    ASSERT_TRUE(pin.forced());
    const auto engine = detect::Engine::from_db_file(path);
    for (const auto strategy : strategies) {
      // Cold then warm: the response memo and cached indexes must not
      // change the bytes.
      for (int pass = 0; pass < 2; ++pass) {
        const auto r = engine.detect(
            {.references = w.refs, .idns = w.idns, .strategy = strategy});
        EXPECT_EQ(r.matches, baseline.matches)
            << "level=" << kernels::level_name(level)
            << " strategy=" << detect::strategy_name(strategy) << " pass=" << pass;
      }
    }
  }
  std::remove(path.c_str());
}

TEST(DbArtifact, EngineCacheIsPreSeededWithTheArtifactSkeleton) {
  const auto db = small_db();
  const auto w = small_workload(11);
  const auto path =
      write_small_artifact("seed_rt", small_simchar(), db, w.refs);
  const auto engine = detect::Engine::from_db_file(path);
  ASSERT_NE(engine.artifact(), nullptr);
  // First skeleton query against the artifact's own reference list: the
  // pre-seeded index is a cache hit — no skeleton build at all.
  const auto r = engine.detect({.references = engine.artifact()->references(),
                                .idns = w.idns,
                                .strategy = detect::Strategy::kSkeleton,
                                .join = detect::SkeletonJoin::kReferenceIndex});
  EXPECT_EQ(r.stats.index_cache_hits, 1u);
  EXPECT_EQ(r.stats.index_cache_rebuilds, 0u);
  EXPECT_EQ(r.stats.skeleton_build_seconds, 0.0);
  const detect::Engine fresh{db};
  const auto serial = fresh.detect(
      {.references = w.refs, .idns = w.idns, .strategy = detect::Strategy::kSerial});
  EXPECT_EQ(r.matches, serial.matches);
  std::remove(path.c_str());
}

// --- Glyph panel: mapped rows feed the kernels directly -------------------

TEST(DbArtifact, GlyphPanelRowsAreAlignedInPlaceAndKernelReadable) {
  font::SyntheticFontBuilder b{515};
  b.cover_range(0x0430, 0x0450, 60);
  b.plant_cluster('o', {{0x043E, 1}, {0x0585, 3}});
  const auto font = b.build();
  const auto rendered = simchar::render_repertoire_panel(*font);
  ASSERT_GT(rendered.cps.size(), 0u);

  const auto sim = small_simchar();
  const auto db = small_db();
  const auto path = temp_path("panel_rt");
  {
    db::WriteRequest request;
    request.simchar = &sim;
    request.homoglyph = &db;
    request.panel = &rendered.panel;
    request.glyph_cps = rendered.cps;
    request.glyph_popcounts = rendered.popcounts;
    db::write_db_file(path, request);
  }
  const auto artifact = db::DbArtifact::load(path);
  ASSERT_TRUE(artifact.has_glyph_panel());
  const auto mapped = artifact.glyph_panel();
  EXPECT_TRUE(mapped.is_view());
  EXPECT_EQ(mapped.size(), rendered.panel.size());
  EXPECT_EQ(mapped.stride(), rendered.panel.stride());
  EXPECT_TRUE(std::ranges::equal(artifact.glyph_cps(), rendered.cps));
  EXPECT_TRUE(std::ranges::equal(artifact.glyph_popcounts(), rendered.popcounts));
  // The whole point of the GPAN layout: every mapped word row sits on a
  // cache line, bytes identical to the in-memory panel (pad included).
  for (std::size_t row = 0; row < kernels::kGlyphWords; ++row) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(mapped.word_row(row)) %
                  kernels::kPanelAlign,
              0u);
    EXPECT_EQ(std::memcmp(mapped.word_row(row), rendered.panel.word_row(row),
                          mapped.stride() * sizeof(std::uint64_t)),
              0);
  }
  // The batched ∆ kernel streams the mapped rows directly, at every
  // dispatch level the host supports.
  alignas(64) std::uint64_t query[kernels::kGlyphWords];
  for (std::size_t w = 0; w < kernels::kGlyphWords; ++w) {
    query[w] = mapped.word_row(w)[0];
  }
  std::vector<std::int32_t> from_mapped(mapped.size());
  std::vector<std::int32_t> from_owned(mapped.size());
  for (const auto level : kernels::supported_levels()) {
    const kernels::ScopedKernelLevel pin{level};
    kernels::delta_batch_u1024(query, mapped, 0, mapped.size(), from_mapped.data());
    kernels::delta_batch_u1024(query, rendered.panel, 0, rendered.panel.size(),
                               from_owned.data());
    EXPECT_EQ(from_mapped, from_owned) << kernels::level_name(level);
    EXPECT_EQ(from_mapped[0], 0);
  }
  std::remove(path.c_str());
}

// --- Copy-on-write on mutation --------------------------------------------

TEST(DbArtifact, ViewHomoglyphDbMaterializesOnUpdate) {
  const auto owned = small_db();
  const auto path = write_small_artifact("cow_db", small_simchar(), owned, {});
  const auto artifact = db::DbArtifact::load(path);

  auto view = artifact.homoglyph();
  ASSERT_TRUE(view.is_view());
  auto reference = small_db();
  const simchar::HomoglyphPair extra[] = {{'k', 'x', 1}, {0x0431, 'b', 2}};
  const auto view_result = view.apply_update(extra);
  const auto ref_result = reference.apply_update(extra);
  EXPECT_FALSE(view.is_view());
  EXPECT_EQ(view_result.pairs_added, ref_result.pairs_added);
  EXPECT_EQ(view_result.canonical_changed, ref_result.canonical_changed);
  EXPECT_EQ(view.serialize(), reference.serialize());
  EXPECT_EQ(view.generation(), reference.generation());
  for (CodePoint cp = 0; cp < 0x500; ++cp) {
    EXPECT_EQ(view.canonical(cp), reference.canonical(cp)) << "cp=" << cp;
  }
  std::remove(path.c_str());
}

TEST(DbArtifact, ViewSkeletonIndexMaterializesOnRehash) {
  auto db = small_db();
  const auto w = small_workload(99);
  const auto path = write_small_artifact("cow_skel", small_simchar(), db, w.refs);
  const auto artifact = db::DbArtifact::load(path);

  auto adopted =
      detect::SkeletonIndex::adopt_view(db, artifact.skeleton(), artifact.backing());
  detect::SkeletonIndex fresh{
      db, std::span<const std::string>{w.refs}, {.max_bucket_occupancy = 4}};
  ASSERT_TRUE(adopted.is_view());

  const simchar::HomoglyphPair extra[] = {{'z', 0x0436, 2}};
  const auto update = db.apply_update(extra);
  const std::span<const std::string> labels{w.refs};
  const auto adopted_touched = adopted.rehash_changed(labels, update.canonical_changed);
  const auto fresh_touched = fresh.rehash_changed(labels, update.canonical_changed);
  EXPECT_FALSE(adopted.is_view());
  EXPECT_EQ(adopted_touched, fresh_touched);
  for (const auto& ref : w.refs) {
    EXPECT_TRUE(std::ranges::equal(adopted.probe(adopted.hashes_of(ref)),
                                   fresh.probe(fresh.hashes_of(ref))))
        << ref;
  }
  std::remove(path.c_str());
}

// --- Loader hardening ------------------------------------------------------

class DbCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = small_db();
    w_ = small_workload(1234);
    path_ = write_small_artifact("corrupt", small_simchar(), db_, w_.refs);
    bytes_ = slurp(path_);
    ASSERT_GT(bytes_.size(), 256u);
    const auto engine = detect::Engine::from_db_file(path_);
    baseline_ = engine.detect({.references = w_.refs, .idns = w_.idns}).matches;
    ASSERT_FALSE(baseline_.empty());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(mutated_path().c_str());
  }

  std::string mutated_path() const { return path_ + ".mut"; }

  /// Write `bytes` and expect the loader to reject them with a
  /// std::runtime_error carrying a non-empty diagnostic.
  void expect_rejected(const std::vector<char>& bytes, const std::string& what) {
    spit(mutated_path(), bytes);
    try {
      (void)db::DbArtifact::load(mutated_path());
      FAIL() << what << ": corrupt artifact loaded successfully";
    } catch (const std::runtime_error& e) {
      EXPECT_GT(std::strlen(e.what()), 0u) << what;
    }
  }

  /// Patch 8 bytes at `offset` and recompute both header checksums so only
  /// the targeted validation can fire.
  std::vector<char> patched_header(std::size_t offset, std::uint64_t value,
                                   std::size_t width = 8) const {
    auto bytes = bytes_;
    std::memcpy(bytes.data() + offset, &value, width);
    const auto checksum = db::fnv1a64(bytes.data(), 56);
    std::memcpy(bytes.data() + 56, &checksum, 8);
    return bytes;
  }

  /// Byte offset of the section-table entry carrying `tag`.
  std::size_t entry_offset(std::uint32_t tag) const {
    std::uint32_t section_count = 0;
    std::memcpy(&section_count, bytes_.data() + 32, 4);
    for (std::uint32_t s = 0; s < section_count; ++s) {
      const auto at = 64 + s * sizeof(db::SectionEntry);
      std::uint32_t t = 0;
      std::memcpy(&t, bytes_.data() + at, 4);
      if (t == tag) return at;
    }
    ADD_FAILURE() << "section tag not present in the fixture artifact";
    return 0;
  }

  /// Recompute the section-table and header checksums after a patch, so the
  /// file is self-consistent and only the targeted validation can fire.
  static void reseal(std::vector<char>& bytes) {
    std::uint32_t section_count = 0;
    std::memcpy(&section_count, bytes.data() + 32, 4);
    const auto table_checksum =
        db::fnv1a64(bytes.data() + 64, section_count * sizeof(db::SectionEntry));
    std::memcpy(bytes.data() + 40, &table_checksum, 8);
    const auto checksum = db::fnv1a64(bytes.data(), 56);
    std::memcpy(bytes.data() + 56, &checksum, 8);
  }

  homoglyph::HomoglyphDb db_;
  Workload w_;
  std::string path_;
  std::vector<char> bytes_;
  std::vector<detect::Match> baseline_;
};

TEST_F(DbCorruption, RejectsWrongMagicEndianVersionAndHeaderShape) {
  expect_rejected(patched_header(0, 0x0031424D414853ULL), "magic");
  expect_rejected(patched_header(8, 0x04030201, 4), "endianness");
  expect_rejected(patched_header(12, db::kFormatVersion + 1, 4), "version");
  expect_rejected(patched_header(24, bytes_.size() + 64), "file_size");
  expect_rejected(patched_header(36, 128, 4), "header_bytes");
  // A plain header bit flip without a checksum fix-up.
  auto flipped = bytes_;
  flipped[17] = static_cast<char>(flipped[17] ^ 0x01);
  expect_rejected(flipped, "header checksum");
}

TEST_F(DbCorruption, RejectsMisalignedAndOutOfBoundsSections) {
  // Section entry 0 starts at byte 64; offset field at +8, size at +16.
  const auto patch_section = [&](std::size_t field_offset, std::uint64_t value) {
    auto bytes = bytes_;
    std::memcpy(bytes.data() + 64 + field_offset, &value, 8);
    std::uint32_t section_count = 0;
    std::memcpy(&section_count, bytes.data() + 32, 4);
    const auto table_checksum =
        db::fnv1a64(bytes.data() + 64, section_count * sizeof(db::SectionEntry));
    std::memcpy(bytes.data() + 40, &table_checksum, 8);
    const auto checksum = db::fnv1a64(bytes.data(), 56);
    std::memcpy(bytes.data() + 56, &checksum, 8);
    return bytes;
  };
  std::uint64_t offset0 = 0;
  std::memcpy(&offset0, bytes_.data() + 64 + 8, 8);
  expect_rejected(patch_section(8, offset0 + 1), "misaligned section offset");
  expect_rejected(patch_section(8, bytes_.size() + 64), "out-of-bounds offset");
  expect_rejected(patch_section(16, ~0ULL - 32), "overflowing section size");
  // Flipping a section-table byte without recomputing the table checksum.
  auto table_flip = bytes_;
  table_flip[64 + 4] = static_cast<char>(table_flip[64 + 4] ^ 0x10);
  expect_rejected(table_flip, "section table checksum");
}

TEST_F(DbCorruption, RejectsEveryTruncation) {
  const std::size_t sizes[] = {0,  1,  13, 63,
                               64, sizeof(db::FileHeader) + 16,
                               bytes_.size() / 2, bytes_.size() - 1};
  for (const auto keep : sizes) {
    expect_rejected({bytes_.begin(), bytes_.begin() + static_cast<long>(keep)},
                    "truncated to " + std::to_string(keep));
  }
}

TEST_F(DbCorruption, BitFlipFuzzNeverYieldsUbOrSilentlyWrongResults) {
  // Flip one random bit anywhere in the file: the load must either throw
  // (any checksummed byte — header, table, payload) or, when the flip
  // lands in an unread alignment gap between sections, produce results
  // byte-identical to the pristine artifact. Nothing else is acceptable.
  util::Rng rng{20260808};
  std::size_t rejected = 0;
  std::size_t harmless = 0;
  for (int i = 0; i < 120; ++i) {
    auto bytes = bytes_;
    const std::size_t byte_at = rng.below(bytes.size());
    bytes[byte_at] = static_cast<char>(bytes[byte_at] ^ (1u << rng.below(8)));
    spit(mutated_path(), bytes);
    try {
      const auto engine = detect::Engine::from_db_file(mutated_path());
      const auto r = engine.detect({.references = w_.refs, .idns = w_.idns});
      EXPECT_EQ(r.matches, baseline_) << "byte " << byte_at;
      ++harmless;
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  // The file is overwhelmingly checksummed payload; the fuzz loop must
  // actually have exercised the rejection path.
  EXPECT_GT(rejected, 60u);
  EXPECT_EQ(rejected + harmless, 120u);
}

TEST_F(DbCorruption, RejectsDuplicateSections) {
  // Retag the SKEL table entry as a second REFS section. Checksums stay
  // self-consistent (they cover whatever bytes are there), so only the
  // duplicate-section check can reject the file — without it, last-one-wins
  // would let one REFS list carry another list's header fingerprint.
  auto bytes = bytes_;
  const auto at = entry_offset(db::kSecSkeleton);
  const std::uint32_t refs_tag = db::kSecReferences;
  std::memcpy(bytes.data() + at, &refs_tag, 4);
  reseal(bytes);
  expect_rejected(bytes, "duplicate REFS section");
}

TEST_F(DbCorruption, RejectsReferenceCountOverflow) {
  // The REFS payload leads with the label count; UINT64_MAX makes the
  // `count + 1` offsets read wrap to an empty span, and offsets.back()
  // would read out of bounds without the overflow guard.
  auto bytes = bytes_;
  const auto at = entry_offset(db::kSecReferences);
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::memcpy(&offset, bytes.data() + at + 8, 8);
  std::memcpy(&size, bytes.data() + at + 16, 8);
  const std::uint64_t count = ~0ULL;
  std::memcpy(bytes.data() + offset, &count, 8);
  const auto payload_checksum =
      db::fnv1a64(bytes.data() + offset, static_cast<std::size_t>(size));
  std::memcpy(bytes.data() + at + 24, &payload_checksum, 8);
  reseal(bytes);
  expect_rejected(bytes, "reference count overflow");
}

TEST_F(DbCorruption, RejectsArtifactsMissingMandatorySections) {
  // Keep the header but declare zero sections: mandatory SIMC/HGDB absent.
  auto bytes = patched_header(32, 0, 4);
  std::uint64_t zero = 0;
  std::memcpy(bytes.data() + 40, &zero, 8);  // empty table hashes as empty
  const auto table_checksum = db::fnv1a64(bytes.data() + 64, 0);
  std::memcpy(bytes.data() + 40, &table_checksum, 8);
  const auto checksum = db::fnv1a64(bytes.data(), 56);
  std::memcpy(bytes.data() + 56, &checksum, 8);
  expect_rejected(bytes, "missing mandatory sections");
}

TEST(DbArtifactErrors, LoadOfMissingAndEmptyFilesThrows) {
  EXPECT_THROW((void)db::DbArtifact::load(temp_path("nonexistent")),
               std::runtime_error);
  const auto path = temp_path("empty");
  { std::ofstream out{path, std::ios::trunc}; }
  EXPECT_THROW((void)db::DbArtifact::load(path), std::runtime_error);
  std::remove(path.c_str());
}

// A hostile artifact is self-consistent by construction — checksums and
// fingerprints are computable by anyone — so the loader must pin the SKEL
// section to the REFS labels it indexes. Entries are indexes into the
// reference list: a skeleton larger than the list would hand detect()
// out-of-bounds reference reads, not just wrong answers.
TEST(DbArtifactErrors, RejectsSkeletonLargerThanItsReferenceList) {
  const auto sim = small_simchar();
  const auto db = small_db();
  const auto w = small_workload(31);
  const auto path = temp_path("hostile_skel");
  const detect::SkeletonIndex index{db, std::span<const std::string>{w.refs},
                                    {.max_bucket_occupancy = 4}};
  const auto skeleton = index.to_flat();
  const std::vector<std::string> short_refs{w.refs.begin(), w.refs.begin() + 3};
  db::WriteRequest request;
  request.simchar = &sim;
  request.homoglyph = &db;
  request.references = short_refs;
  request.reference_fingerprint =
      detect::label_set_fingerprint(std::span<const std::string>{short_refs});
  request.skeleton = &skeleton;
  db::write_db_file(path, request);
  EXPECT_THROW((void)db::DbArtifact::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(DbArtifactErrors, EngineRejectsMismatchedReferenceFingerprint) {
  const auto sim = small_simchar();
  const auto db = small_db();
  const auto w = small_workload(32);
  const auto path = temp_path("bad_fingerprint");
  const detect::SkeletonIndex index{db, std::span<const std::string>{w.refs},
                                    {.max_bucket_occupancy = 4}};
  const auto skeleton = index.to_flat();
  db::WriteRequest request;
  request.simchar = &sim;
  request.homoglyph = &db;
  request.references = w.refs;
  request.reference_fingerprint =
      detect::label_set_fingerprint(std::span<const std::string>{w.refs}) ^ 1;
  request.skeleton = &skeleton;
  db::write_db_file(path, request);
  // The db layer cannot recompute detect's content hash, so the raw load
  // succeeds; the engine — whose reference-side cache the fingerprint
  // keys — is the rejection point.
  EXPECT_NO_THROW((void)db::DbArtifact::load(path));
  EXPECT_THROW((void)detect::Engine::from_db_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(DbArtifactErrors, RejectsFingerprintWithoutReferences) {
  const auto sim = small_simchar();
  const auto db = small_db();
  const auto path = write_small_artifact("fp_no_refs", sim, db, {});
  auto bytes = slurp(path);
  const std::uint64_t fake = 0xDEADBEEFULL;
  std::memcpy(bytes.data() + 48, &fake, 8);
  const auto checksum = db::fnv1a64(bytes.data(), 56);
  std::memcpy(bytes.data() + 56, &checksum, 8);
  spit(path, bytes);
  EXPECT_THROW((void)db::DbArtifact::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(DbArtifactErrors, WriterRejectsMalformedRequests) {
  const auto sim = small_simchar();
  const auto db = small_db();
  const auto path = temp_path("invalid_req");
  db::WriteRequest no_simchar;
  no_simchar.homoglyph = &db;
  EXPECT_THROW(db::write_db_file(path, no_simchar), std::invalid_argument);
  db::WriteRequest no_db;
  no_db.simchar = &sim;
  EXPECT_THROW(db::write_db_file(path, no_db), std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sham
