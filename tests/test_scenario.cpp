#include <gtest/gtest.h>

#include <unordered_set>

#include "idna/idna.hpp"
#include "internet/scenario.hpp"
#include "measure/environment.hpp"

namespace sham::internet {
namespace {

// One shared environment for all scenario tests (SimChar build is the
// expensive part; scale it down).
const measure::Environment& env() {
  static const auto instance = [] {
    measure::EnvironmentConfig config;
    config.font_scale = 0.1;
    return measure::Environment::create(config);
  }();
  return instance;
}

ScenarioConfig small_config() {
  ScenarioConfig config;
  config.total_domains = 12'000;
  config.reference_count = 300;
  config.attack_scale = 0.05;  // ~165 attacks
  return config;
}

TEST(Scenario, DeterministicForSeed) {
  const auto a = generate_scenario(env().db_union, small_config());
  const auto b = generate_scenario(env().db_union, small_config());
  EXPECT_EQ(a.domains, b.domains);
  ASSERT_EQ(a.attacks.size(), b.attacks.size());
  for (std::size_t i = 0; i < a.attacks.size(); ++i) {
    EXPECT_EQ(a.attacks[i].ace, b.attacks[i].ace);
  }
}

TEST(Scenario, PopulationSizeAndUniqueness) {
  const auto s = generate_scenario(env().db_union, small_config());
  EXPECT_EQ(s.domains.size(), 12'000u);
  std::unordered_set<std::string> set{s.domains.begin(), s.domains.end()};
  EXPECT_EQ(set.size(), s.domains.size());
  for (const auto& d : s.domains) {
    EXPECT_TRUE(d.ends_with(".com")) << d;
  }
}

TEST(Scenario, SourcesCoverUnion) {
  const auto s = generate_scenario(env().db_union, small_config());
  std::unordered_set<std::uint32_t> seen;
  seen.insert(s.zone_index.begin(), s.zone_index.end());
  seen.insert(s.domainlists_index.begin(), s.domainlists_index.end());
  EXPECT_EQ(seen.size(), s.domains.size());
  // Each source is close to its configured coverage.
  EXPECT_NEAR(static_cast<double>(s.zone_index.size()) / s.domains.size(), 0.9978,
              0.01);
  EXPECT_NEAR(static_cast<double>(s.domainlists_index.size()) / s.domains.size(),
              0.9891, 0.01);
}

TEST(Scenario, IdnBudgetRoughlyHonoured) {
  const auto s = generate_scenario(env().db_union, small_config());
  std::size_t idns = 0;
  for (const auto& d : s.domains) {
    if (idna::is_idn(d)) ++idns;
  }
  // Budget: 0.67% of 12,000 ≈ 80 — but at least the planted attacks.
  EXPECT_GE(idns, s.attacks.size());
  EXPECT_EQ(idns, s.attacks.size() + s.benign_idns.size());
}

TEST(Scenario, AttacksAreRealHomographs) {
  const auto s = generate_scenario(env().db_union, small_config());
  ASSERT_GT(s.attacks.size(), 100u);
  for (const auto& attack : s.attacks) {
    ASSERT_EQ(attack.unicode.size(), attack.target.size()) << attack.ace;
    bool differs = false;
    for (std::size_t i = 0; i < attack.unicode.size(); ++i) {
      const auto ref = static_cast<unicode::CodePoint>(attack.target[i]);
      if (attack.unicode[i] == ref) continue;
      differs = true;
      EXPECT_TRUE(env().db_union.are_homoglyphs(attack.unicode[i], ref))
          << attack.ace << " position " << i;
    }
    EXPECT_TRUE(differs) << attack.ace;
    // The ACE form decodes back to the Unicode label.
    const auto u = idna::to_u_label(attack.ace);
    ASSERT_TRUE(u.has_value());
    EXPECT_EQ(*u, attack.unicode);
  }
}

TEST(Scenario, ProvenanceMixFollowsTable8) {
  const auto s = generate_scenario(env().db_union, small_config());
  std::size_t sim_only = 0;
  std::size_t uc_any = 0;
  for (const auto& attack : s.attacks) {
    if (attack.provenance == homoglyph::Source::kSimChar) ++sim_only;
    if (attack.provenance == homoglyph::Source::kUc ||
        attack.provenance == homoglyph::Source::kBoth) {
      ++uc_any;
    }
  }
  // SimChar-only attacks dominate (the paper's 2,844 of 3,280).
  EXPECT_GT(sim_only, s.attacks.size() / 2);
  EXPECT_GT(uc_any, 0u);
}

TEST(Scenario, CaseStudiesArePlanted) {
  const auto s = generate_scenario(env().db_union, small_config());
  // gmaıl.com: the top phishing case of Table 11.
  const auto gmail_idn = dns::DomainName::parse_or_throw("xn--gmal-nza.com");
  const auto* host = s.world.lookup(gmail_idn);
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(host->site_label, "Phishing");
  EXPECT_EQ(host->dns_resolutions, 615447u);
  EXPECT_TRUE(host->had_mx);
  EXPECT_TRUE(host->port80_open);
}

TEST(Scenario, WorldSkippedWhenDisabled) {
  auto config = small_config();
  config.build_world = false;
  const auto s = generate_scenario(env().db_union, config);
  EXPECT_EQ(s.world.domain_count(), 0u);
  EXPECT_EQ(s.domains.size(), config.total_domains);
}

TEST(Scenario, FunnelProportionsFollowTables) {
  auto config = small_config();
  config.attack_scale = 0.3;  // larger sample for tighter proportions
  const auto s = generate_scenario(env().db_union, config);

  std::size_t with_ns = 0;
  std::size_t live = 0;
  std::size_t parked_or_sale = 0;
  const PortScanner scanner{s.world};
  const WebClassifier classifier{s.world};
  for (const auto& attack : s.attacks) {
    const auto domain = dns::DomainName::parse_or_throw(attack.ace + ".com");
    const auto* host = s.world.lookup(domain);
    ASSERT_NE(host, nullptr);
    if (host->has_ns) ++with_ns;
    if (scanner.scan(domain).any()) {
      ++live;
      const auto kind = classifier.classify(domain).kind;
      if (kind == WebsiteKind::kParking || kind == WebsiteKind::kForSale) {
        ++parked_or_sale;
      }
    }
  }
  const double n = static_cast<double>(s.attacks.size());
  EXPECT_NEAR(with_ns / n, 2294.0 / 3280.0, 0.05);       // Table: NS fraction
  EXPECT_NEAR(live / n, 1647.0 / 3280.0, 0.05);          // Table 10
  EXPECT_NEAR(parked_or_sale / (live + 1e-9), 693.0 / 1647.0, 0.08);  // Table 12
}

TEST(Scenario, RejectsZeroDomains) {
  ScenarioConfig config;
  config.total_domains = 0;
  EXPECT_THROW(generate_scenario(env().db_union, config), std::invalid_argument);
}

TEST(Scenario, Table11SpecsSelfConsistent) {
  for (const auto& cs : table11_case_studies()) {
    ASSERT_LT(cs.position, cs.target.size());
    EXPECT_EQ(static_cast<unicode::CodePoint>(cs.target[cs.position]), cs.from);
    EXPECT_GT(cs.resolutions, 0u);
  }
}

}  // namespace
}  // namespace sham::internet
