// Tests for the extension features: non-Latin homograph detection
// (Sections 2.2/7.1), visual-distance ranking, and file-based zone
// streaming.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "detect/engine.hpp"
#include "detect/ranking.hpp"
#include "dns/zone_file.hpp"
#include "font/synthetic_font.hpp"
#include "idna/idna.hpp"

namespace sham {
namespace {

using unicode::U32String;

// --- Non-Latin homograph detection --------------------------------------

homoglyph::HomoglyphDb cjk_db() {
  // 工/エ (the paper's Section 2.2 example) and 口/ロ.
  simchar::SimCharDb sim{{
      {0x5DE5, 0x30A8, 2},
      {0x53E3, 0x30ED, 1},
      {'o', 0x043E, 0},
  }};
  homoglyph::DbConfig config;
  config.use_uc = false;
  return homoglyph::HomoglyphDb{sim, unicode::ConfusablesDb::embedded(), config};
}

TEST(NonLatinDetection, KatakanaSpoofOfIdeographLabel) {
  const auto db = cjk_db();
  const detect::HomographDetector detector{db};
  // Reference 工業大学, attack エ業大学.
  const U32String reference{0x5DE5, 0x696D, 0x5927, 0x5B66};
  const U32String attack{0x30A8, 0x696D, 0x5927, 0x5B66};
  std::vector<detect::DiffChar> diffs;
  ASSERT_TRUE(detector.match_pair(reference, attack, &diffs));
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].index, 0u);
  EXPECT_EQ(diffs[0].idn_char, 0x30A8u);
  EXPECT_EQ(diffs[0].ref_char, 0x5DE5u);
}

TEST(NonLatinDetection, DetectUnicodeOverLists) {
  const auto db = cjk_db();
  const detect::Engine engine{
      db, {.strategy = detect::Strategy::kIndexed, .cache = false}};
  const std::vector<U32String> references{
      {0x5DE5, 0x696D, 0x5927, 0x5B66},  // 工業大学
      {0x53E3, 0x5EA7},                  // 口座
  };
  std::vector<detect::IdnEntry> idns;
  const U32String a1{0x30A8, 0x696D, 0x5927, 0x5B66};  // エ業大学
  const U32String a2{0x30ED, 0x5EA7};                  // ロ座
  const U32String benign{0x4E00, 0x4E8C};
  idns.push_back({idna::to_a_label(a1), a1});
  idns.push_back({idna::to_a_label(a2), a2});
  idns.push_back({idna::to_a_label(benign), benign});

  const auto r = engine.detect({.unicode_references = references, .idns = idns});
  EXPECT_EQ(r.matches.size(), 2u);
  EXPECT_GT(r.stats.length_bucket_hits, 0u);
}

TEST(NonLatinDetection, ExactIdeographStringIsNotAHomograph) {
  const auto db = cjk_db();
  const detect::HomographDetector detector{db};
  const U32String reference{0x5DE5, 0x696D};
  EXPECT_FALSE(detector.match_pair(reference, reference));
}

// --- Visual ranking ------------------------------------------------------

TEST(Ranking, MostDeceptiveFirst) {
  font::SyntheticFontBuilder b{55};
  b.plant_cluster('o', {{0x043E, 0}, {0x0585, 4}});
  b.plant_cluster('e', {{0x0435, 2}});
  const auto font = b.build();
  const auto sim = simchar::SimCharDb::build(*font);
  homoglyph::DbConfig config;
  config.use_uc = false;
  const homoglyph::HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), config};
  const detect::Engine engine{
      db, {.strategy = detect::Strategy::kIndexed, .cache = false}};

  const std::vector<std::string> refs{"oe"};
  std::vector<detect::IdnEntry> idns;
  const U32String pixel_clone{0x043E, 'e'};       // ∆ = 0
  const U32String accented{0x0585, 0x0435};       // ∆ = 4 + 2
  const U32String middling{'o', 0x0435};          // ∆ = 2
  for (const auto& label : {accented, pixel_clone, middling}) {
    idns.push_back({idna::to_a_label(label), label});
  }
  const auto matches = engine.detect({.references = refs, .idns = idns}).matches;
  ASSERT_EQ(matches.size(), 3u);

  const auto ranked = detect::rank_matches(*font, matches, refs, idns);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].total_visual_delta, 0);
  EXPECT_EQ(ranked[1].total_visual_delta, 2);
  EXPECT_EQ(ranked[2].total_visual_delta, 6);
  EXPECT_EQ(idns[ranked[0].match.idn_index].unicode, pixel_clone);
}

TEST(Ranking, VisualDistanceHelper) {
  font::SyntheticFontBuilder b{56};
  b.plant_cluster('a', {{0x0430, 3}});
  const auto font = b.build();
  const U32String idn{0x0430, 'b'};
  // 'b' is not covered by this tiny font: matching position is equal, so
  // it is never rendered; only the differing position counts.
  EXPECT_EQ(detect::visual_distance(*font, "ab", idn), 3);
  const U32String wrong_len{0x0430};
  EXPECT_FALSE(detect::visual_distance(*font, "ab", wrong_len).has_value());
  // A differing position with no glyph coverage yields nullopt.
  const U32String uncovered{'a', 0x9999};
  EXPECT_FALSE(detect::visual_distance(*font, "ab", uncovered).has_value());
}

// --- Zone file streaming -------------------------------------------------

TEST(ZoneFileStream, ReadsFromDisk) {
  const std::string path = ::testing::TempDir() + "/test_zone_stream.zone";
  {
    std::ofstream out{path};
    out << "$ORIGIN com.\n$TTL 3600\n";
    for (int i = 0; i < 500; ++i) {
      out << "domain-" << i << " IN NS ns1.hoster.net.\n";
    }
  }
  std::size_t count = 0;
  std::size_t ns_records = 0;
  const auto total = dns::parse_zone_file(path, [&](const dns::ResourceRecord& r) {
    ++count;
    if (r.type == dns::RecordType::kNs) ++ns_records;
    EXPECT_EQ(r.ttl, 3600u);
  });
  EXPECT_EQ(total, 500u);
  EXPECT_EQ(count, 500u);
  EXPECT_EQ(ns_records, 500u);
  std::remove(path.c_str());
}

TEST(ZoneFileStream, MissingFileThrows) {
  EXPECT_THROW(dns::parse_zone_file("/nonexistent/zone.db", [](const auto&) {}),
               std::runtime_error);
}

TEST(ZoneFileStream, MalformedRecordThrowsWithLine) {
  const std::string path = ::testing::TempDir() + "/test_zone_bad.zone";
  {
    std::ofstream out{path};
    out << "$ORIGIN com.\nok IN A 1.2.3.4\nbad IN A banana\n";
  }
  try {
    dns::parse_zone_file(path, [](const auto&) {});
    FAIL() << "expected ZoneParseError";
  } catch (const dns::ZoneParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sham
