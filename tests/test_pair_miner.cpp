// Randomized property suite for simchar::PairMiner: every strategy must
// emit the byte-identical, canonically sorted pair list — across seeds,
// thresholds 0–8, thread counts, and adversarial glyph sets where the
// popcount-band prune degenerates to all-pairs.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "simchar/pair_miner.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sham::simchar {
namespace {

using unicode::CodePoint;

constexpr int kPixels = font::GlyphBitmap::kSize * font::GlyphBitmap::kSize;

font::GlyphBitmap random_glyph(util::Rng& rng) {
  font::GlyphBitmap g;
  for (auto& w : g.words()) w = rng.next();
  return g;
}

/// A glyph with exactly `popcount` black pixels (uniformly placed).
font::GlyphBitmap fixed_popcount_glyph(util::Rng& rng, int popcount) {
  font::GlyphBitmap g;
  int placed = 0;
  while (placed < popcount) {
    const int bit = static_cast<int>(rng.next() % kPixels);
    const int x = bit % font::GlyphBitmap::kSize;
    const int y = bit / font::GlyphBitmap::kSize;
    if (g.get(x, y)) continue;
    g.set(x, y);
    ++placed;
  }
  return g;
}

/// Flip `count` pixels of `base`, never the same pixel twice: ∆ == count.
font::GlyphBitmap flipped(util::Rng& rng, const font::GlyphBitmap& base, int count) {
  auto g = base;
  int done = 0;
  std::vector<char> used(kPixels, 0);
  while (done < count) {
    const int bit = static_cast<int>(rng.next() % kPixels);
    if (used[bit]) continue;
    used[bit] = 1;
    g.flip(bit % font::GlyphBitmap::kSize, bit / font::GlyphBitmap::kSize);
    ++done;
  }
  return g;
}

/// Move one black pixel to a white position: ∆ == 2, popcount unchanged.
font::GlyphBitmap pixel_moved(util::Rng& rng, const font::GlyphBitmap& base) {
  auto g = base;
  for (;;) {
    const int bit = static_cast<int>(rng.next() % kPixels);
    const int x = bit % font::GlyphBitmap::kSize;
    const int y = bit / font::GlyphBitmap::kSize;
    if (!g.get(x, y)) continue;
    g.set(x, y, false);
    for (;;) {
      const int to = static_cast<int>(rng.next() % kPixels);
      const int tx = to % font::GlyphBitmap::kSize;
      const int ty = to / font::GlyphBitmap::kSize;
      if (g.get(tx, ty)) continue;
      g.set(tx, ty);
      return g;
    }
  }
}

void push(std::vector<MinerGlyph>& glyphs, CodePoint cp, font::GlyphBitmap g) {
  glyphs.push_back({cp, g, g.popcount()});
}

/// Random repertoire: independent noise glyphs (expected pairwise ∆ in the
/// hundreds) plus planted near-duplicate clusters at controlled distances.
std::vector<MinerGlyph> random_repertoire(std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<MinerGlyph> glyphs;
  CodePoint cp = 0x100;
  for (int i = 0; i < 40; ++i) push(glyphs, cp++, random_glyph(rng));
  for (int cluster = 0; cluster < 6; ++cluster) {
    const auto base = random_glyph(rng);
    push(glyphs, cp++, base);
    for (const int d : {0, 1, 2, 4, 6, 8, 9}) {
      push(glyphs, cp++, flipped(rng, base, d));
    }
  }
  return glyphs;
}

/// Worst case for the popcount band: every glyph has the same ink count,
/// so the band prune admits all C(n, 2) pairs.
std::vector<MinerGlyph> equal_popcount_repertoire(std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<MinerGlyph> glyphs;
  CodePoint cp = 0x2000;
  for (int i = 0; i < 48; ++i) push(glyphs, cp++, fixed_popcount_glyph(rng, 100));
  for (int cluster = 0; cluster < 5; ++cluster) {
    const auto base = fixed_popcount_glyph(rng, 100);
    push(glyphs, cp++, base);
    push(glyphs, cp++, pixel_moved(rng, base));        // ∆ = 2
    push(glyphs, cp++, pixel_moved(rng, pixel_moved(rng, base)));  // ∆ <= 4
  }
  return glyphs;
}

constexpr PairStrategy kConcrete[] = {PairStrategy::kAllPairs,
                                      PairStrategy::kPopcountBand,
                                      PairStrategy::kBlockIndex};

constexpr std::uint64_t kSeeds[] = {11, 22, 33, 44, 55};

TEST(PairMinerProperty, StrategiesAgreeOnRandomRepertoires) {
  util::ThreadPool pool{4};
  for (const auto seed : kSeeds) {
    const auto glyphs = random_repertoire(seed);
    for (int threshold = 0; threshold <= 8; ++threshold) {
      const PairMiner truth{glyphs, threshold, PairStrategy::kAllPairs, pool};
      MinerStats truth_stats;
      const auto expected = truth.mine_all(&truth_stats);
      EXPECT_EQ(truth_stats.delta_evaluations,
                glyphs.size() * (glyphs.size() - 1) / 2);
      for (const auto strategy : kConcrete) {
        const PairMiner miner{glyphs, threshold, strategy, pool};
        MinerStats stats;
        EXPECT_EQ(miner.mine_all(&stats), expected)
            << pair_strategy_name(strategy) << " seed " << seed << " threshold "
            << threshold;
        EXPECT_EQ(stats.strategy, strategy);
        EXPECT_LE(stats.delta_evaluations, stats.all_pairs_domain);
        EXPECT_EQ(stats.comparisons_avoided,
                  stats.all_pairs_domain - stats.delta_evaluations);
      }
    }
  }
}

TEST(PairMinerProperty, StrategiesAgreeWhenAllPopcountsCollide) {
  util::ThreadPool pool{4};
  for (const auto seed : kSeeds) {
    const auto glyphs = equal_popcount_repertoire(seed);
    const auto domain = glyphs.size() * (glyphs.size() - 1) / 2;
    for (int threshold = 0; threshold <= 8; ++threshold) {
      const PairMiner truth{glyphs, threshold, PairStrategy::kAllPairs, pool};
      const auto expected = truth.mine_all();
      if (threshold >= 2) {
        EXPECT_GE(expected.size(), 5u);  // the planted ∆ = 2 pairs
      }
      for (const auto strategy : kConcrete) {
        const PairMiner miner{glyphs, threshold, strategy, pool};
        MinerStats stats;
        EXPECT_EQ(miner.mine_all(&stats), expected)
            << pair_strategy_name(strategy) << " seed " << seed << " threshold "
            << threshold;
        if (strategy == PairStrategy::kPopcountBand) {
          // Degenerate: one shared ink count means the band admits
          // everything — this is the case the block index exists for.
          EXPECT_EQ(stats.delta_evaluations, domain);
        }
        if (strategy == PairStrategy::kBlockIndex) {
          EXPECT_LT(stats.delta_evaluations, domain / 4);
        }
      }
    }
  }
}

TEST(PairMinerProperty, ThreadCountNeverChangesTheSequence) {
  const auto glyphs = random_repertoire(kSeeds[0]);
  for (const auto strategy : kConcrete) {
    util::ThreadPool single{1};
    const PairMiner reference{glyphs, 4, strategy, single};
    MinerStats ref_stats;
    const auto expected = reference.mine_all(&ref_stats);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      util::ThreadPool pool{threads};
      const PairMiner miner{glyphs, 4, strategy, pool};
      MinerStats stats;
      // Byte-identical sequence AND identical counters: the per-chunk
      // merge is in chunk order, never scheduling order.
      EXPECT_EQ(miner.mine_all(&stats), expected)
          << pair_strategy_name(strategy) << " @ " << threads;
      EXPECT_EQ(stats.delta_evaluations, ref_stats.delta_evaluations);
    }
  }
}

TEST(PairMinerProperty, MineInvolvingEqualsFilteredMineAll) {
  util::ThreadPool pool{4};
  for (const auto seed : kSeeds) {
    const auto glyphs = random_repertoire(seed);
    // Probe a slice of the repertoire, plus a code point the glyph set
    // does not contain (must be ignored).
    std::unordered_set<CodePoint> probes{0xFFFFF};
    for (std::size_t i = glyphs.size() - 9; i < glyphs.size(); ++i) {
      probes.insert(glyphs[i].cp);
    }
    const PairMiner truth{glyphs, 4, PairStrategy::kAllPairs, pool};
    auto expected = truth.mine_all();
    std::erase_if(expected, [&](const HomoglyphPair& p) {
      return !probes.contains(p.a) && !probes.contains(p.b);
    });
    for (const auto strategy : kConcrete) {
      const PairMiner miner{glyphs, 4, strategy, pool};
      MinerStats stats;
      EXPECT_EQ(miner.mine_involving(probes, &stats), expected)
          << pair_strategy_name(strategy) << " seed " << seed;
      // The probe-side domain is C(n,2) - C(n-|P|,2); every strategy must
      // stay within it.
      EXPECT_LE(stats.delta_evaluations, stats.all_pairs_domain);
    }
  }
}

TEST(PairMiner, BlockIndexStatsFunnelIsConsistent) {
  util::ThreadPool pool{2};
  const auto glyphs = random_repertoire(kSeeds[1]);
  const PairMiner miner{glyphs, 4, PairStrategy::kBlockIndex, pool};
  MinerStats stats;
  const auto pairs = miner.mine_all(&stats);
  EXPECT_EQ(stats.block_tables, 5u);  // θ + 1
  EXPECT_GE(stats.candidates_emitted, stats.candidates_deduped);
  EXPECT_EQ(stats.candidates_deduped, stats.candidates_pruned +
                                          stats.candidates_verified +
                                          stats.candidates_rejected);
  EXPECT_EQ(stats.delta_evaluations,
            stats.candidates_verified + stats.candidates_rejected);
  // Every kept pair came through the candidate funnel exactly once.
  EXPECT_EQ(stats.candidates_verified, pairs.size());
  std::uint64_t buckets = 0;
  for (const auto n : stats.bucket_histogram) buckets += n;
  EXPECT_GT(buckets, 0u);
}

TEST(PairMiner, OversizedThresholdFallsBackToPopcountBand) {
  util::ThreadPool pool{2};
  const auto glyphs = random_repertoire(kSeeds[2]);
  // θ + 1 > 16 word blocks: pigeonhole at word granularity is impossible,
  // the miner must fall back (and report it) rather than lose recall.
  const PairMiner miner{glyphs, 16, PairStrategy::kBlockIndex, pool};
  EXPECT_EQ(miner.strategy(), PairStrategy::kPopcountBand);
  const PairMiner truth{glyphs, 16, PairStrategy::kAllPairs, pool};
  EXPECT_EQ(miner.mine_all(), truth.mine_all());
  // θ = 15 is the largest block-indexable threshold.
  const PairMiner edge{glyphs, 15, PairStrategy::kBlockIndex, pool};
  EXPECT_EQ(edge.strategy(), PairStrategy::kBlockIndex);
  const PairMiner truth15{glyphs, 15, PairStrategy::kAllPairs, pool};
  EXPECT_EQ(edge.mine_all(), truth15.mine_all());
}

TEST(PairMiner, RejectsAutoAndNegativeThreshold) {
  util::ThreadPool pool{1};
  const std::vector<MinerGlyph> glyphs;
  EXPECT_THROW((PairMiner{glyphs, 4, PairStrategy::kAuto, pool}),
               std::invalid_argument);
  EXPECT_THROW((PairMiner{glyphs, -1, PairStrategy::kAllPairs, pool}),
               std::invalid_argument);
}

TEST(PairMiner, EmptyAndSingletonInputs) {
  util::ThreadPool pool{2};
  util::Rng rng{7};
  const std::vector<MinerGlyph> none;
  std::vector<MinerGlyph> one;
  push(one, 'x', random_glyph(rng));
  const std::unordered_set<CodePoint> probe_x{'x'};
  for (const auto strategy : kConcrete) {
    const PairMiner empty{none, 4, strategy, pool};
    MinerStats stats;
    EXPECT_TRUE(empty.mine_all(&stats).empty());
    EXPECT_EQ(stats.delta_evaluations, 0u);
    const PairMiner single{one, 4, strategy, pool};
    EXPECT_TRUE(single.mine_all().empty());
    EXPECT_TRUE(single.mine_involving(probe_x).empty());
  }
}

TEST(PairMiner, ParseAndNameRoundTrip) {
  for (const auto strategy :
       {PairStrategy::kAuto, PairStrategy::kAllPairs, PairStrategy::kPopcountBand,
        PairStrategy::kBlockIndex}) {
    EXPECT_EQ(parse_pair_strategy(pair_strategy_name(strategy)), strategy);
  }
  EXPECT_EQ(parse_pair_strategy("block"), PairStrategy::kBlockIndex);
  EXPECT_EQ(parse_pair_strategy("band"), PairStrategy::kPopcountBand);
  EXPECT_FALSE(parse_pair_strategy("simd").has_value());
}

}  // namespace
}  // namespace sham::simchar
