#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "font/glyph.hpp"
#include "font/metrics.hpp"
#include "util/rng.hpp"

namespace sham::font {
namespace {

GlyphBitmap random_glyph(util::Rng& rng, double density = 0.3) {
  GlyphBitmap g;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      if (rng.bernoulli(density)) g.set(x, y);
    }
  }
  return g;
}

TEST(GlyphBitmap, SetGetFlip) {
  GlyphBitmap g;
  EXPECT_FALSE(g.get(5, 7));
  g.set(5, 7);
  EXPECT_TRUE(g.get(5, 7));
  g.set(5, 7, false);
  EXPECT_FALSE(g.get(5, 7));
  g.flip(0, 0);
  EXPECT_TRUE(g.get(0, 0));
  g.flip(0, 0);
  EXPECT_FALSE(g.get(0, 0));
  g.set(31, 31);
  EXPECT_TRUE(g.get(31, 31));
}

TEST(GlyphBitmap, PopcountMatchesSetPixels) {
  GlyphBitmap g;
  EXPECT_EQ(g.popcount(), 0);
  g.set(0, 0);
  g.set(31, 31);
  g.set(16, 16);
  EXPECT_EQ(g.popcount(), 3);
  g.set(16, 16);  // idempotent
  EXPECT_EQ(g.popcount(), 3);
}

TEST(GlyphBitmap, EqualityIsValueBased) {
  GlyphBitmap a;
  GlyphBitmap b;
  EXPECT_EQ(a, b);
  a.set(3, 3);
  EXPECT_NE(a, b);
  b.set(3, 3);
  EXPECT_EQ(a, b);
}

TEST(GlyphBitmap, AsciiArt) {
  GlyphBitmap g;
  g.set(0, 0);
  const auto art = g.ascii_art();
  EXPECT_EQ(art[0], '#');
  EXPECT_EQ(art[1], '.');
  // 32 rows of 32 chars + newline each.
  EXPECT_EQ(art.size(), 33u * 32u);
}

TEST(GlyphBitmap, Upscale8x16) {
  // A single source pixel becomes a 4x2 block.
  const auto up = GlyphBitmap::upscale(8, 16, [](int x, int y) {
    return x == 1 && y == 2;
  });
  EXPECT_EQ(up.popcount(), 4 * 2);
  EXPECT_TRUE(up.get(4, 4));
  EXPECT_TRUE(up.get(7, 5));
  EXPECT_FALSE(up.get(8, 4));
  EXPECT_FALSE(up.get(4, 6));
}

TEST(GlyphBitmap, Upscale16x16) {
  const auto up = GlyphBitmap::upscale(16, 16, [](int x, int y) {
    return x == 0 && y == 0;
  });
  EXPECT_EQ(up.popcount(), 4);
  EXPECT_TRUE(up.get(0, 0));
  EXPECT_TRUE(up.get(1, 1));
}

TEST(GlyphBitmap, UpscaleRejectsBadSizes) {
  const auto get = [](int, int) { return false; };
  EXPECT_THROW(GlyphBitmap::upscale(0, 16, get), std::invalid_argument);
  EXPECT_THROW(GlyphBitmap::upscale(7, 16, get), std::invalid_argument);
  EXPECT_THROW(GlyphBitmap::upscale(8, 13, get), std::invalid_argument);
}

TEST(Metrics, DeltaIdentityAndSymmetry) {
  util::Rng rng{1};
  for (int i = 0; i < 20; ++i) {
    const auto a = random_glyph(rng);
    const auto b = random_glyph(rng);
    EXPECT_EQ(delta(a, a), 0);
    EXPECT_EQ(delta(a, b), delta(b, a));
  }
}

TEST(Metrics, DeltaCountsFlippedPixels) {
  util::Rng rng{2};
  auto a = random_glyph(rng);
  auto b = a;
  b.flip(3, 4);
  b.flip(9, 21);
  b.flip(30, 0);
  EXPECT_EQ(delta(a, b), 3);
}

TEST(Metrics, DeltaTriangleInequality) {
  util::Rng rng{3};
  for (int i = 0; i < 30; ++i) {
    const auto a = random_glyph(rng);
    const auto b = random_glyph(rng);
    const auto c = random_glyph(rng);
    EXPECT_LE(delta(a, c), delta(a, b) + delta(b, c));
  }
}

TEST(Metrics, DeltaEqualsPopcountLowerBound) {
  // ∆(a,b) >= |popcount(a) - popcount(b)| — the bucket-pruning invariant.
  util::Rng rng{4};
  for (int i = 0; i < 50; ++i) {
    const auto a = random_glyph(rng, 0.2);
    const auto b = random_glyph(rng, 0.4);
    EXPECT_GE(delta(a, b), std::abs(a.popcount() - b.popcount()));
  }
}

TEST(Metrics, DeltaBoundedAgreesUnderLimit) {
  util::Rng rng{5};
  for (int i = 0; i < 30; ++i) {
    auto a = random_glyph(rng);
    auto b = a;
    const int flips = static_cast<int>(rng.below(6));
    for (int f = 0; f < flips; ++f) {
      b.flip(static_cast<int>(rng.below(32)), static_cast<int>(rng.below(32)));
    }
    const int exact = delta(a, b);
    if (exact <= 10) {
      EXPECT_EQ(delta_bounded(a, b, 10), exact);
    }
  }
}

TEST(Metrics, DeltaBoundedExceedsLimitWhenFar) {
  util::Rng rng{6};
  const auto a = random_glyph(rng, 0.1);
  const auto b = random_glyph(rng, 0.6);
  EXPECT_GT(delta_bounded(a, b, 4), 4);
}

TEST(Metrics, MseMatchesPaperFormula) {
  util::Rng rng{7};
  const auto a = random_glyph(rng);
  auto b = a;
  b.flip(0, 0);
  b.flip(1, 1);
  // MSE = ∆ / N² with N = 32 (Section 3.3).
  EXPECT_DOUBLE_EQ(mse(a, b), 2.0 / 1024.0);
}

TEST(Metrics, PsnrMatchesPaperFormula) {
  util::Rng rng{8};
  const auto a = random_glyph(rng);
  auto b = a;
  for (int i = 0; i < 4; ++i) b.flip(i, 0);
  // PSNR = 20·log10(N) − 10·log10(∆).
  const double want = 20.0 * std::log10(32.0) - 10.0 * std::log10(4.0);
  EXPECT_NEAR(psnr(a, b), want, 1e-9);
  EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(Metrics, SsimBoundsAndIdentity) {
  util::Rng rng{9};
  for (int i = 0; i < 20; ++i) {
    const auto a = random_glyph(rng);
    const auto b = random_glyph(rng);
    EXPECT_NEAR(ssim(a, a), 1.0, 1e-9);
    const double s = ssim(a, b);
    EXPECT_LE(s, 1.0 + 1e-9);
    EXPECT_GE(s, -1.0 - 1e-9);
  }
}

TEST(Metrics, SsimDecreasesWithDistance) {
  util::Rng rng{10};
  const auto a = random_glyph(rng);
  auto near = a;
  near.flip(0, 0);
  auto far = a;
  for (int i = 0; i < 200; ++i) {
    far.flip(static_cast<int>(rng.below(32)), static_cast<int>(rng.below(32)));
  }
  EXPECT_GT(ssim(a, near), ssim(a, far));
}

// --- Edge cases the kernel layer must honor ------------------------------
//
// delta() now routes through the dispatched kernel; these regressions pin
// the glyph-level contract at whatever level is active: every bit position
// (including the tail words past bit 512), flip/set round trips, and the
// metric identities on paper-font-shaped bitmaps.

TEST(GlyphBitmap, FlipRoundTripsEveryBitPosition) {
  GlyphBitmap g;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      ASSERT_FALSE(g.get(x, y));
      g.flip(x, y);
      ASSERT_TRUE(g.get(x, y));
      ASSERT_EQ(g.popcount(), 1);
      ASSERT_EQ(delta(g, GlyphBitmap{}), 1) << "x=" << x << " y=" << y;
      g.flip(x, y);
      ASSERT_FALSE(g.get(x, y));
      ASSERT_EQ(g.popcount(), 0);
    }
  }
}

TEST(GlyphBitmap, SetWritesTheExpectedWord) {
  // Bit (x, y) lives in word (y * 32 + x) / 64 — including the tail words
  // past bit 512 that a partial-span kernel must not drop.
  for (const auto& [x, y] : {std::pair{0, 0}, {31, 0}, {0, 1}, {31, 15},
                             {0, 16}, {31, 31}, {0, 31}}) {
    GlyphBitmap g;
    g.set(x, y);
    const int bit = y * 32 + x;
    for (int w = 0; w < GlyphBitmap::kWords; ++w) {
      EXPECT_EQ(g.words()[w] != 0, w == bit / 64) << "x=" << x << " y=" << y;
    }
    EXPECT_EQ(g.words()[bit / 64], 1ULL << (bit % 64));
  }
}

TEST(Metrics, DeltaExtremesAllZeroAllOne) {
  GlyphBitmap zero;
  GlyphBitmap full;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) full.set(x, y);
  }
  EXPECT_EQ(delta(zero, zero), 0);
  EXPECT_EQ(delta(full, full), 0);
  EXPECT_EQ(delta(zero, full), 32 * 32);
  EXPECT_EQ(delta(full, zero), 32 * 32);
  EXPECT_EQ(delta_bounded(zero, full, 4) > 4, true);
}

TEST(Metrics, DeltaSymmetryAndTriangleOnRandomizedGlyphs) {
  util::Rng rng{44};
  for (int i = 0; i < 50; ++i) {
    const auto a = random_glyph(rng);
    const auto b = random_glyph(rng);
    const auto c = random_glyph(rng);
    ASSERT_EQ(delta(a, b), delta(b, a));
    ASSERT_LE(delta(a, c), delta(a, b) + delta(b, c));
    // ∆ ≥ |popcount difference| — the band prune's soundness condition.
    ASSERT_GE(delta(a, b), std::abs(a.popcount() - b.popcount()));
    ASSERT_EQ(delta(a, a), 0);
  }
}

TEST(Metrics, DeltaAgreesWithNaivePopcountAtActiveKernelLevel) {
  util::Rng rng{45};
  for (int i = 0; i < 50; ++i) {
    const auto a = random_glyph(rng, 0.1 + 0.2 * (i % 4));
    const auto b = random_glyph(rng, 0.1 + 0.2 * ((i + 1) % 4));
    int naive = 0;
    for (int w = 0; w < GlyphBitmap::kWords; ++w) {
      naive += std::popcount(a.words()[w] ^ b.words()[w]);
    }
    ASSERT_EQ(delta(a, b), naive);
    const int bounded = delta_bounded(a, b, naive);
    ASSERT_EQ(bounded, naive);  // exact when the bound is not exceeded
  }
}

}  // namespace
}  // namespace sham::font
