// Incremental-maintenance tests: merge, diff, and the Section 4.2 update
// path (new Unicode characters added without a full pairwise rebuild).
#include <algorithm>
#include <gtest/gtest.h>

#include "font/synthetic_font.hpp"
#include "simchar/simchar.hpp"

namespace sham::simchar {
namespace {

using unicode::CodePoint;

TEST(Merge, UnionOfPairs) {
  SimCharDb a{{{'a', 0x0430, 1}}};
  SimCharDb b{{{'o', 0x043E, 0}}};
  const auto merged = SimCharDb::merge(a, b);
  EXPECT_EQ(merged.pair_count(), 2u);
  EXPECT_TRUE(merged.are_homoglyphs('a', 0x0430));
  EXPECT_TRUE(merged.are_homoglyphs('o', 0x043E));
}

TEST(Merge, SmallerDeltaWinsOnConflict) {
  SimCharDb a{{{'a', 0x0430, 4}}};
  SimCharDb b{{{'a', 0x0430, 1}}};
  EXPECT_EQ(SimCharDb::merge(a, b).delta_of('a', 0x0430), 1);
  EXPECT_EQ(SimCharDb::merge(b, a).delta_of('a', 0x0430), 1);
}

TEST(Merge, WithEmpty) {
  SimCharDb a{{{'a', 0x0430, 1}}};
  EXPECT_TRUE(std::ranges::equal(SimCharDb::merge(a, SimCharDb{}).pairs(), a.pairs()));
  EXPECT_TRUE(std::ranges::equal(SimCharDb::merge(SimCharDb{}, a).pairs(), a.pairs()));
}

TEST(Diff, AddedAndRemoved) {
  SimCharDb before{{{'a', 0x0430, 1}, {'o', 0x043E, 0}}};
  SimCharDb after{{{'o', 0x043E, 0}, {'e', 0x0435, 2}}};
  const auto d = diff(before, after);
  ASSERT_EQ(d.added.size(), 1u);
  EXPECT_EQ(d.added[0].b, 0x0435u);
  ASSERT_EQ(d.removed.size(), 1u);
  EXPECT_EQ(d.removed[0].b, 0x0430u);
}

TEST(Diff, IdenticalDbsAreEmptyDiff) {
  SimCharDb db{{{'a', 0x0430, 1}}};
  const auto d = diff(db, db);
  EXPECT_TRUE(d.added.empty());
  EXPECT_TRUE(d.removed.empty());
}

// Build two fonts: the "old" one and the "new" one with extra characters
// (some of which are homoglyphs of old characters).
struct VersionedFonts {
  std::shared_ptr<font::SyntheticFont> old_font;
  std::shared_ptr<font::SyntheticFont> new_font;
  std::vector<CodePoint> added;
};

VersionedFonts make_versioned(std::uint64_t seed) {
  VersionedFonts v;
  // Old repertoire.
  font::SyntheticFontBuilder old_builder{seed};
  old_builder.cover_range(0x0430, 0x045F);
  old_builder.plant_cluster('o', {{0x043E, 0}, {0x0585, 2}});
  old_builder.plant_cluster('a', {{0x0251, 1}});
  v.old_font = old_builder.build();

  // New version: same glyphs plus additions; one addition (ӧ U+04E7) is a
  // near-duplicate of the 'o' cluster base, another is unrelated.
  font::SyntheticFontBuilder new_builder{seed};
  new_builder.cover_range(0x0430, 0x045F);
  new_builder.plant_cluster('o', {{0x043E, 0}, {0x0585, 2}, {0x04E7, 3}});
  new_builder.plant_cluster('a', {{0x0251, 1}});
  new_builder.cover_range(0x0531 + 0x30, 0x0586, 10, false);  // unrelated additions
  v.new_font = new_builder.build();

  for (const auto cp : v.new_font->coverage()) {
    if (!v.old_font->glyph(cp).has_value()) v.added.push_back(cp);
  }
  return v;
}

TEST(Update, MatchesFullRebuild) {
  const auto v = make_versioned(404);
  const auto existing = SimCharDb::build(*v.old_font);
  BuildStats update_stats;
  const auto updated =
      update_with_new_characters(existing, *v.new_font, v.added, {}, &update_stats);
  const auto full = SimCharDb::build(*v.new_font);
  EXPECT_TRUE(std::ranges::equal(updated.pairs(), full.pairs()));
}

TEST(Update, FindsNewHomoglyphPairs) {
  const auto v = make_versioned(405);
  const auto existing = SimCharDb::build(*v.old_font);
  EXPECT_FALSE(existing.are_homoglyphs('o', 0x04E7));
  const auto updated = update_with_new_characters(existing, *v.new_font, v.added);
  EXPECT_TRUE(updated.are_homoglyphs('o', 0x04E7));
  // The addition pairs with other cluster members too (∆ ≤ 3 + 2).
  EXPECT_TRUE(updated.are_homoglyphs(0x043E, 0x04E7));
}

TEST(Update, PreservesExistingPairs) {
  const auto v = make_versioned(406);
  const auto existing = SimCharDb::build(*v.old_font);
  const auto updated = update_with_new_characters(existing, *v.new_font, v.added);
  for (const auto& p : existing.pairs()) {
    EXPECT_TRUE(updated.are_homoglyphs(p.a, p.b));
  }
}

TEST(Update, CheaperThanFullRebuild) {
  const auto v = make_versioned(407);
  const auto existing = SimCharDb::build(*v.old_font);

  BuildOptions naive;
  naive.use_bucket_pruning = false;
  BuildStats full_stats;
  SimCharDb::build(*v.new_font, naive, &full_stats);
  BuildStats update_stats;
  const auto updated =
      update_with_new_characters(existing, *v.new_font, v.added, naive, &update_stats);
  EXPECT_GE(updated.pair_count(), existing.pair_count());
  EXPECT_LT(update_stats.pairs_compared, full_stats.pairs_compared);
}

TEST(Update, EmptyAdditionChangesNothing) {
  const auto v = make_versioned(408);
  const auto existing = SimCharDb::build(*v.old_font);
  const auto updated = update_with_new_characters(existing, *v.old_font, {});
  EXPECT_TRUE(std::ranges::equal(updated.pairs(), existing.pairs()));
}

TEST(Update, PrunedMatchesUnpruned) {
  const auto v = make_versioned(409);
  const auto existing = SimCharDb::build(*v.old_font);
  BuildOptions pruned;
  pruned.use_bucket_pruning = true;
  BuildOptions naive;
  naive.use_bucket_pruning = false;
  const auto a = update_with_new_characters(existing, *v.new_font, v.added, pruned);
  const auto b = update_with_new_characters(existing, *v.new_font, v.added, naive);
  EXPECT_TRUE(std::ranges::equal(a.pairs(), b.pairs()));
}

TEST(Update, StepThreeMatchesFullBuildAtTheSparseCutoff) {
  // Regression for the Step III popcount lookup: the update path used
  // popcount_of[cp] (operator[]), whose unknown→0 default diverges from
  // full-build semantics (eliminate only characters *measured* as sparse).
  // The fix switched to .find() with unknown-keeps-pair. Lock in the
  // invariant at the exact min_black_pixels boundary: single-pixel glyphs
  // pair with each other (∆ ≤ 2) and sit right at a cutoff of 1, so any
  // popcount defaulting would flip whether they survive Step III.
  font::SyntheticFontBuilder old_builder{515};
  old_builder.plant_cluster('o', {{0x043E, 0}});
  const auto old_font = old_builder.build();

  font::SyntheticFontBuilder new_builder{515};
  new_builder.plant_cluster('o', {{0x043E, 0}});
  new_builder.plant_sparse(0x0E47, 1);  // exactly at cutoff 1: NOT sparse
  new_builder.plant_sparse(0x0E48, 1);
  new_builder.plant_sparse(0x0E49, 0);  // below cutoff: sparse, pairs erased
  const auto new_font = new_builder.build();
  const std::vector<CodePoint> added{0x0E47, 0x0E48, 0x0E49};

  BuildOptions at_cutoff;
  at_cutoff.min_black_pixels = 1;
  {
    const auto existing = SimCharDb::build(*old_font, at_cutoff);
    const auto updated =
        update_with_new_characters(existing, *new_font, added, at_cutoff);
    const auto full = SimCharDb::build(*new_font, at_cutoff);
    EXPECT_TRUE(std::ranges::equal(updated.pairs(), full.pairs()));
    EXPECT_TRUE(updated.are_homoglyphs(0x0E47, 0x0E48));   // at cutoff: kept
    EXPECT_FALSE(updated.are_homoglyphs(0x0E47, 0x0E49));  // sparse member: erased
  }

  BuildOptions above_cutoff;
  above_cutoff.min_black_pixels = 2;
  {
    const auto existing = SimCharDb::build(*old_font, above_cutoff);
    const auto updated =
        update_with_new_characters(existing, *new_font, added, above_cutoff);
    EXPECT_TRUE(std::ranges::equal(updated.pairs(),
                                   SimCharDb::build(*new_font, above_cutoff).pairs()));
    EXPECT_FALSE(updated.are_homoglyphs(0x0E47, 0x0E48));  // now below cutoff
  }
}

TEST(Update, SparseAdditionsAreFiltered) {
  font::SyntheticFontBuilder old_builder{77};
  old_builder.plant_cluster('o', {{0x043E, 0}});
  const auto old_font = old_builder.build();
  const auto existing = SimCharDb::build(*old_font);

  font::SyntheticFontBuilder new_builder{77};
  new_builder.plant_cluster('o', {{0x043E, 0}});
  new_builder.plant_sparse(0x0E47, 3);
  new_builder.plant_sparse(0x0E48, 3);
  const auto new_font = new_builder.build();

  const auto updated = update_with_new_characters(existing, *new_font,
                                                  {0x0E47, 0x0E48});
  EXPECT_FALSE(updated.are_homoglyphs(0x0E47, 0x0E48));
}

}  // namespace
}  // namespace sham::simchar
