#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace sham::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsZero) {
  Rng rng{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng{7};
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng{9};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng{11};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.between(2, 1), std::invalid_argument);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{13};
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng{17};
  double sum = 0;
  double sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent{42};
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, PickAndShuffle) {
  Rng rng{5};
  const std::vector<int> items{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int v = rng.pick(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
  std::vector<int> seq{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = seq;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, seq);  // permutation
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(Zipf, RankZeroMostLikely) {
  ZipfSampler zipf{100, 1.0};
  Rng rng{3};
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1], counts[50]);
}

TEST(Zipf, RejectsEmpty) { EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument); }

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, SplitWs) {
  const auto parts = split_ws("  foo\t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "bar");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("ab"), "ab");
}

TEST(Strings, LowerAndAffixes) {
  EXPECT_EQ(to_lower_ascii("AbC-9"), "abc-9");
  EXPECT_TRUE(starts_with("xn--foo", "xn--"));
  EXPECT_FALSE(starts_with("x", "xn--"));
  EXPECT_TRUE(ends_with("a.com", ".com"));
  EXPECT_FALSE(ends_with("com", ".com"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(join({}, "."), "");
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(parse_u64("12345"), 12345u);
  EXPECT_THROW(parse_u64("12x"), std::invalid_argument);
  EXPECT_THROW(parse_u64(""), std::invalid_argument);
  EXPECT_THROW(parse_u64("-3"), std::invalid_argument);
}

TEST(Strings, HexCodepoint) {
  EXPECT_EQ(parse_hex_codepoint("0061"), 0x61u);
  EXPECT_EQ(parse_hex_codepoint("U+0430"), 0x430u);
  EXPECT_EQ(parse_hex_codepoint("u+1F600"), 0x1F600u);
  EXPECT_THROW(parse_hex_codepoint("xyz"), std::invalid_argument);
  EXPECT_EQ(format_codepoint(0x61), "U+0061");
  EXPECT_EQ(format_codepoint(0x1F600), "U+1F600");
}

TEST(Table, AlignsColumns) {
  TextTable t{{"name", "count"}, {Align::kLeft, Align::kRight}};
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const auto s = t.str();
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(42), "42");
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(percent(0.465), "46.5%");
}

TEST(Table, Csv) {
  const auto csv = to_csv({"a", "b"}, {{"1", "x,y"}, {"2", "q\"q"}});
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"q\""), std::string::npos);
}

TEST(Stopwatch, Monotonic) {
  Stopwatch w;
  const double a = w.seconds();
  const double b = w.seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool{2};
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool{3};
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) pool.submit([&] { count++; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool{2};
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t b, std::size_t e) {
    count += static_cast<int>(e - b);
  });
  pool.parallel_for(0, 10, [&](std::size_t b, std::size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace sham::util
