#include <gtest/gtest.h>

#include "core/browser_policy.hpp"
#include "detect/candidates.hpp"
#include "idna/tld_policy.hpp"

namespace sham {
namespace {

using core::DisplayDecision;
using unicode::U32String;

// --- Browser display policies (Section 2.2) ----------------------------

TEST(BrowserPolicy, LegacyAlwaysUnicode) {
  const U32String mixed{'g', 0x043E, 'o', 'g', 'l', 'e'};
  EXPECT_EQ(core::legacy_policy(mixed).decision, DisplayDecision::kUnicode);
}

TEST(BrowserPolicy, PureAsciiDisplays) {
  const U32String ascii{'g', 'o', 'o', 'g', 'l', 'e'};
  EXPECT_EQ(core::mixed_script_policy(ascii).decision, DisplayDecision::kUnicode);
}

TEST(BrowserPolicy, LatinCyrillicMixForcedToPunycode) {
  // "facébook" with one Cyrillic character — the classic case browsers
  // now catch.
  const U32String mixed{'f', 'a', 'c', 0x0435, 'b', 'o', 'o', 'k'};
  const auto result = core::mixed_script_policy(mixed);
  EXPECT_EQ(result.decision, DisplayDecision::kPunycode);
  EXPECT_EQ(result.reason, "mixed scripts");
}

TEST(BrowserPolicy, WholeScriptCyrillicStillDisplays) {
  // Pure-Cyrillic "соре"-style labels are single script: the mixed-script
  // rule does NOT fire (the gap the paper emphasises).
  const U32String cyrillic{0x0441, 0x043E, 0x0440, 0x0435};
  EXPECT_EQ(core::mixed_script_policy(cyrillic).decision, DisplayDecision::kUnicode);
}

TEST(BrowserPolicy, CjkCarveOutDisplays) {
  // Han + Katakana mix is allowed — so エ業大学 (Katakana エ for 工)
  // renders in Unicode even under the mixed-script rule (Section 2.2).
  const U32String attack{0x30A8, 0x696D, 0x5927, 0x5B66};
  const auto result = core::mixed_script_policy(attack);
  EXPECT_EQ(result.decision, DisplayDecision::kUnicode);
  EXPECT_EQ(result.reason, "CJK combination carve-out");
  // Japanese names legitimately mix Han + kana + Latin.
  const U32String legit{0x65E5, 0x672C, 0x3054, 'j', 'p'};
  EXPECT_EQ(core::mixed_script_policy(legit).decision, DisplayDecision::kUnicode);
}

TEST(BrowserPolicy, CyrillicGreekMixForced) {
  const U32String mixed{0x0441, 0x03BF, 0x0440};  // Cyrillic + Greek
  EXPECT_EQ(core::mixed_script_policy(mixed).decision, DisplayDecision::kPunycode);
}

TEST(BrowserPolicy, WholeScriptConfusableCheckCatchesSpoof) {
  simchar::SimCharDb sim{{
      {'c', 0x0441, 0}, {'o', 0x043E, 0}, {'p', 0x0440, 0}, {'e', 0x0435, 0},
  }};
  homoglyph::DbConfig config;
  config.use_uc = false;
  const homoglyph::HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), config};

  // "соре": every character spoofs a Latin letter.
  const U32String spoof{0x0441, 0x043E, 0x0440, 0x0435};
  const auto result = core::whole_script_policy(spoof, &db);
  EXPECT_EQ(result.decision, DisplayDecision::kPunycode);
  EXPECT_EQ(result.reason, "whole-script confusable");

  // A label containing an honest Cyrillic letter (б has no Latin
  // homoglyph) still displays.
  const U32String honest{0x0441, 0x043E, 0x0431};
  EXPECT_EQ(core::whole_script_policy(honest, &db).decision,
            DisplayDecision::kUnicode);

  // Null database disables the check.
  EXPECT_EQ(core::whole_script_policy(spoof, nullptr).decision,
            DisplayDecision::kUnicode);
}

// --- TLD registration policies (Section 2.1) ---------------------------

TEST(TldPolicy, ComPermitsManyBlocks) {
  const auto& com = idna::TldPolicy::com();
  EXPECT_TRUE(com.permits('a'));
  EXPECT_TRUE(com.permits(0x0430));   // Cyrillic
  EXPECT_TRUE(com.permits(0x4E00));   // CJK
  EXPECT_TRUE(com.permits(0xAC00));   // Hangul
  EXPECT_TRUE(com.permits(0x00E9));   // é
  EXPECT_TRUE(com.permits(0xA510));   // Vai
  EXPECT_FALSE(com.permits(0x2603));  // snowman
}

TEST(TldPolicy, JpRejectsLatinLookalikes) {
  const auto& jp = idna::TldPolicy::jp();
  // The paper's example: "ácm.jp" is not registrable because .jp's table
  // has no homoglyph of LDH.
  const U32String acm{0x00E1, 'c', 'm'};
  EXPECT_FALSE(jp.is_registrable(acm));
  EXPECT_FALSE(jp.permits(0x00E1));
  EXPECT_FALSE(jp.permits(0x0430));
  // Japanese labels are registrable.
  const U32String japanese{0x3042, 0x308A, 0x4E00};
  EXPECT_TRUE(jp.is_registrable(japanese));
  // And so is plain LDH.
  const U32String ldh{'a', 'c', 'm', '-', '9'};
  EXPECT_TRUE(jp.is_registrable(ldh));
}

TEST(TldPolicy, DePermitsOnlyLatinDiacritics) {
  const auto& de = idna::TldPolicy::de();
  const U32String muenchen{'m', 0x00FC, 'n', 'c', 'h', 'e', 'n'};
  EXPECT_TRUE(de.is_registrable(muenchen));
  EXPECT_TRUE(de.permits(0x00DF));  // ß
  EXPECT_FALSE(de.permits(0x0430));
  EXPECT_FALSE(de.permits(0x4E00));
}

TEST(TldPolicy, RegistrableRequiresValidULabel) {
  const auto& com = idna::TldPolicy::com();
  EXPECT_FALSE(com.is_registrable(U32String{}));
  EXPECT_FALSE(com.is_registrable(U32String{'-', 'a'}));
  EXPECT_FALSE(com.is_registrable(U32String{'A'}));  // uppercase not PVALID
}

TEST(TldPolicy, FindByName) {
  EXPECT_NE(idna::TldPolicy::find("com"), nullptr);
  EXPECT_NE(idna::TldPolicy::find("jp"), nullptr);
  EXPECT_EQ(idna::TldPolicy::find("zz"), nullptr);
}

TEST(TldPolicy, RejectsBadRanges) {
  using Range = idna::TldPolicy::Range;
  EXPECT_THROW(idna::TldPolicy("x", {Range{5, 3}}), std::invalid_argument);
  EXPECT_THROW(idna::TldPolicy("x", {Range{1, 5}, Range{4, 9}}), std::invalid_argument);
}

TEST(TldPolicy, CandidateGenerationRespectsPolicy) {
  simchar::SimCharDb sim{{{'a', 0x00E1, 1}, {'a', 0x0430, 1}}};
  homoglyph::DbConfig config;
  config.use_uc = false;
  const homoglyph::HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), config};

  detect::CandidateOptions options;
  options.tld_policy = &idna::TldPolicy::de();
  // Under .de only the accented-Latin substitution survives.
  const auto de_candidates = detect::generate_candidates(db, "acm", options);
  ASSERT_EQ(de_candidates.size(), 1u);
  EXPECT_EQ(de_candidates[0].unicode[0], 0x00E1u);

  options.tld_policy = &idna::TldPolicy::jp();
  EXPECT_TRUE(detect::generate_candidates(db, "acm", options).empty());

  options.tld_policy = nullptr;
  EXPECT_EQ(detect::generate_candidates(db, "acm", options).size(), 2u);
}

}  // namespace
}  // namespace sham
