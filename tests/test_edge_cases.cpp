// Edge cases across modules: file-based font loading, degenerate scenario
// configurations, logging, and API misuse that must fail cleanly.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "detect/engine.hpp"
#include "font/hex_font.hpp"
#include "internet/scenario.hpp"
#include "measure/environment.hpp"
#include "util/log.hpp"

namespace sham {
namespace {

TEST(HexFontFile, LoadFromDisk) {
  const std::string path = ::testing::TempDir() + "/mini.hex";
  {
    std::ofstream out{path};
    out << "# mini font\n";
    out << "0041:FF000000000000000000000000000000\n";
    out << "4E00:" << std::string(64, '0') << "\n";
  }
  const auto font = font::HexFont::load(path);
  EXPECT_EQ(font.size(), 2u);
  EXPECT_TRUE(font.glyph('A').has_value());
  EXPECT_EQ(font.glyph(0x4E00)->popcount(), 0);
  std::remove(path.c_str());
}

TEST(HexFontFile, MissingFileThrows) {
  EXPECT_THROW(font::HexFont::load("/nonexistent/unifont.hex"), std::runtime_error);
}

const measure::Environment& env() {
  static const auto instance = [] {
    measure::EnvironmentConfig config;
    config.font_scale = 0.1;
    return measure::Environment::create(config);
  }();
  return instance;
}

TEST(ScenarioEdge, ZeroAttackScale) {
  internet::ScenarioConfig config;
  config.total_domains = 2'000;
  config.reference_count = 50;
  config.attack_scale = 0.0;
  const auto s = internet::generate_scenario(env().db_union, config);
  // Only the 10 Table 11 case studies remain planted.
  EXPECT_LE(s.attacks.size(), 10u);
  EXPECT_EQ(s.domains.size(), 2'000u);
}

TEST(ScenarioEdge, TinyPopulationStillConsistent) {
  internet::ScenarioConfig config;
  config.total_domains = 1'200;
  config.reference_count = 30;
  config.attack_scale = 0.01;
  const auto s = internet::generate_scenario(env().db_union, config);
  EXPECT_EQ(s.domains.size(), config.total_domains);
  // References and attacks all appear in the population.
  std::unordered_set<std::string> names{s.domains.begin(), s.domains.end()};
  for (const auto& ref : s.references) {
    EXPECT_TRUE(names.contains(ref + ".com")) << ref;
  }
  for (const auto& attack : s.attacks) {
    EXPECT_TRUE(names.contains(attack.ace + ".com")) << attack.ace;
  }
}

TEST(ScenarioEdge, CustomSeedChangesBackdropNotStructure) {
  internet::ScenarioConfig a;
  a.total_domains = 1'500;
  a.reference_count = 40;
  a.attack_scale = 0.01;
  auto b = a;
  b.seed = 777;
  const auto sa = internet::generate_scenario(env().db_union, a);
  const auto sb = internet::generate_scenario(env().db_union, b);
  EXPECT_NE(sa.domains, sb.domains);           // different worlds
  EXPECT_EQ(sa.domains.size(), sb.domains.size());  // same shape
}

TEST(EnvironmentEdge, CustomThresholdPropagates) {
  measure::EnvironmentConfig config;
  config.font_scale = 0.05;
  config.build.threshold = 2;
  const auto custom = measure::Environment::create(config);
  // A stricter threshold yields a strictly smaller (or equal) database
  // than the θ = 4 default at the same scale.
  measure::EnvironmentConfig base = config;
  base.build.threshold = 4;
  const auto standard = measure::Environment::create(base);
  EXPECT_LT(custom.simchar.pair_count(), standard.simchar.pair_count());
  for (const auto& p : custom.simchar.pairs()) {
    EXPECT_LE(p.delta, 2);
  }
}

// detect() with an empty IDN set or an empty reference span must return
// fully-zeroed DetectionStats — including the skeleton and cache fields —
// under every strategy: no index build, no cache traffic, no shard slots.
TEST(DetectEdge, EmptyInputsZeroStatsUnderAllStrategies) {
  simchar::SimCharDb sim{{{'o', 0x043E, 0}}};
  homoglyph::DbConfig config;
  config.use_uc = false;
  const homoglyph::HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), config};
  const std::vector<std::string> refs{"google"};
  const std::vector<detect::IdnEntry> idns{
      {"xn--ggle-0nda", {'g', 0x043E, 0x043E, 'g', 'l', 'e'}}};
  const std::vector<std::string> no_refs;
  const std::vector<detect::IdnEntry> no_idns;

  const auto expect_zeroed = [](const detect::DetectResponse& r, const char* what) {
    SCOPED_TRACE(what);
    EXPECT_TRUE(r.matches.empty());
    const auto& s = r.stats;
    EXPECT_EQ(s.length_bucket_hits, 0u);
    EXPECT_EQ(s.char_comparisons, 0u);
    EXPECT_EQ(s.seconds, 0.0);
    EXPECT_EQ(s.index_build_seconds, 0.0);
    EXPECT_EQ(s.match_seconds, 0.0);
    EXPECT_EQ(s.merge_seconds, 0.0);
    EXPECT_EQ(s.threads_used, 1u);
    EXPECT_EQ(s.shards_used, 1u);
    EXPECT_TRUE(s.shard_candidates.empty());
    EXPECT_EQ(s.skeleton_build_seconds, 0.0);
    EXPECT_EQ(s.skeleton_candidates, 0u);
    EXPECT_EQ(s.skeleton_rejected, 0u);
    EXPECT_EQ(s.skeleton_buckets, 0u);
    EXPECT_TRUE(s.skeleton_bucket_histogram.empty());
    EXPECT_EQ(s.index_cache_hits, 0u);
    EXPECT_EQ(s.index_cache_rebuilds, 0u);
    EXPECT_EQ(s.index_cache_updates, 0u);
    EXPECT_EQ(s.index_entries_rehashed, 0u);
    EXPECT_EQ(s.result_cache_hits, 0u);
    EXPECT_EQ(s.index_update_seconds, 0.0);
    EXPECT_EQ(s.db_generation, 0u);
    EXPECT_EQ(s.index_generation, 0u);
    EXPECT_FALSE(s.inverted_join);
  };

  for (const auto strategy :
       {detect::Strategy::kSerial, detect::Strategy::kIndexed,
        detect::Strategy::kParallel, detect::Strategy::kSkeleton}) {
    const detect::Engine engine{db, {.strategy = strategy, .threads = 4}};
    expect_zeroed(engine.detect({.references = refs, .idns = no_idns}),
                  "empty IDN set");
    expect_zeroed(engine.detect({.references = no_refs, .idns = idns}),
                  "empty reference span");
    expect_zeroed(engine.detect({}), "both empty");
    // An empty run must not pollute the cache either: a real query right
    // after still works and starts cold.
    const auto real = engine.detect({.references = refs, .idns = idns});
    if (strategy != detect::Strategy::kSerial) {
      EXPECT_EQ(real.stats.index_cache_rebuilds, 1u);
    }
    EXPECT_EQ(real.matches.size(), 1u);
  }
}

TEST(Log, LevelFiltering) {
  const auto saved = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  // These must not crash and are suppressed below the level.
  util::log_debug("suppressed");
  util::log_info("suppressed");
  util::log_warn("suppressed");
  util::log_error("visible (stderr)");
  util::set_log_level(saved);
}

}  // namespace
}  // namespace sham
