// Robustness / fuzz-style property tests: attacker-controlled inputs
// (wire-format names, Punycode, UTF-8, zone files) must never crash,
// hang, or corrupt state — they fail cleanly or decode losslessly.
#include <gtest/gtest.h>

#include "dns/domain.hpp"
#include "dns/zone_file.hpp"
#include "idna/idna.hpp"
#include "idna/punycode.hpp"
#include "unicode/confusables.hpp"
#include "unicode/utf8.hpp"
#include "util/rng.hpp"

namespace sham {
namespace {

std::string random_bytes(util::Rng& rng, std::size_t max_len) {
  std::string out;
  const std::size_t n = rng.below(max_len + 1);
  for (std::size_t i = 0; i < n; ++i) {
    out += static_cast<char>(rng.below(256));
  }
  return out;
}

std::string random_printable(util::Rng& rng, std::size_t max_len) {
  std::string out;
  const std::size_t n = rng.below(max_len + 1);
  for (std::size_t i = 0; i < n; ++i) {
    out += static_cast<char>(' ' + rng.below(95));
  }
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, PunycodeDecodeNeverCrashes) {
  util::Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const auto input = random_bytes(rng, 40);
    const auto decoded = idna::punycode_decode(input);
    if (decoded) {
      // Whatever decodes must re-encode without throwing (all scalar).
      EXPECT_NO_THROW(idna::punycode_encode(*decoded));
    }
  }
}

TEST_P(FuzzSeeds, Utf8DecodersNeverCrash) {
  util::Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const auto input = random_bytes(rng, 64);
    const auto strict = unicode::decode_utf8(input);
    const auto lossy = unicode::decode_utf8_lossy(input);
    if (strict) {
      EXPECT_EQ(*strict, lossy);  // valid input: both agree
      EXPECT_EQ(unicode::to_utf8(*strict), input);
    }
    for (const auto cp : lossy) {
      EXPECT_TRUE(unicode::is_scalar_value(cp));
    }
  }
}

TEST_P(FuzzSeeds, DomainParserNeverCrashes) {
  util::Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const auto input = random_bytes(rng, 300);
    const auto parsed = dns::DomainName::parse(input);
    if (parsed) {
      EXPECT_LE(parsed->str().size(), 253u);
      EXPECT_FALSE(parsed->str().empty());
    }
  }
}

TEST_P(FuzzSeeds, ULabelDecodeNeverCrashes) {
  util::Rng rng{GetParam()};
  for (int i = 0; i < 1000; ++i) {
    std::string label = "xn--" + random_printable(rng, 30);
    const auto decoded = idna::to_u_label(label);
    if (decoded) {
      // Decoded labels re-encode to a syntactically valid A-label.
      try {
        const auto ace = idna::to_a_label(*decoded);
        EXPECT_TRUE(!ace.empty());
      } catch (const std::invalid_argument&) {
        // over-long or empty: acceptable failure mode
      }
    }
  }
}

TEST_P(FuzzSeeds, ZoneParserFailsCleanly) {
  util::Rng rng{GetParam()};
  for (int i = 0; i < 300; ++i) {
    std::string zone;
    const int lines = static_cast<int>(rng.below(8));
    for (int l = 0; l < lines; ++l) {
      zone += random_printable(rng, 50);
      zone += '\n';
    }
    try {
      std::size_t records = 0;
      dns::parse_zone_stream(zone, [&](const dns::ResourceRecord&) { ++records; });
    } catch (const dns::ZoneParseError&) {
      // expected for garbage
    }
  }
}

TEST_P(FuzzSeeds, ConfusablesParserFailsCleanly) {
  util::Rng rng{GetParam()};
  for (int i = 0; i < 300; ++i) {
    std::string text;
    const int lines = static_cast<int>(rng.below(6));
    for (int l = 0; l < lines; ++l) {
      text += random_printable(rng, 40);
      text += '\n';
    }
    try {
      const auto db = unicode::ConfusablesDb::parse(text);
      (void)db.entry_count();
    } catch (const std::invalid_argument&) {
      // expected for garbage
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(101, 102, 103, 104));

TEST(Robustness, HugePunycodeInputRejectedQuickly) {
  // Pathological long digit strings must terminate via overflow checks.
  const std::string huge(100000, 'z');
  EXPECT_FALSE(idna::punycode_decode(huge).has_value());
}

TEST(Robustness, DeeplyNestedSkeletonTerminates) {
  // Build a mapping chain a->b->c->...; skeleton() must hit its round cap
  // rather than loop forever even with a cycle.
  const auto db = unicode::ConfusablesDb::parse(
      "0061 ; 0062 ;\n"
      "0062 ; 0063 ;\n"
      "0063 ; 0061 ;\n");  // cycle a->b->c->a
  const auto skel = db.skeleton(unicode::U32String{'a'});
  EXPECT_EQ(skel.size(), 1u);  // terminated, produced something sane
}

}  // namespace
}  // namespace sham
