#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "detect/candidates.hpp"
#include "detect/detector.hpp"
#include "detect/engine.hpp"
#include "detect/skeleton_index.hpp"
#include "font/paper_font.hpp"
#include "idna/idna.hpp"
#include "util/rng.hpp"

namespace sham::detect {
namespace {

using unicode::CodePoint;
using unicode::U32String;

homoglyph::HomoglyphDb test_db() {
  // Matches the paper's Figure 2 example: о (Cyrillic) and օ (Armenian)
  // are homoglyphs of 'o'; plus a few more for variety.
  simchar::SimCharDb sim{{
      {'o', 0x043E, 0},
      {'o', 0x0585, 2},
      {'e', 0x00E9, 3},
      {'a', 0x0430, 1},
      {'i', 0x0131, 2},
  }};
  homoglyph::DbConfig config;
  config.use_uc = false;  // keep the pair set small and explicit
  return homoglyph::HomoglyphDb{sim, unicode::ConfusablesDb::embedded(), config};
}

IdnEntry entry(const U32String& label) {
  return {idna::to_a_label(label), label};
}

/// Cache-free single-threaded engine under the given strategy — the
/// test-local stand-in for the removed detect()/detect_indexed()/
/// detect_unicode() wrappers.
Engine one_shot(const homoglyph::HomoglyphDb& db,
                Strategy strategy = Strategy::kSerial) {
  return Engine{db, {.strategy = strategy, .threads = 1, .cache = false}};
}

TEST(Detector, Figure2PositiveExample) {
  // reference "google", IDN "gооgle"/"goоgle" variants match.
  const auto db = test_db();
  const std::vector<std::string> refs{"google"};
  const std::vector<IdnEntry> idns{
      entry({'g', 0x043E, 0x0585, 'g', 'l', 'e'}),  // both о and օ
  };
  const auto matches =
      one_shot(db).detect({.references = refs, .idns = idns}).matches;
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].reference_index, 0u);
  EXPECT_EQ(matches[0].idn_index, 0u);
  ASSERT_EQ(matches[0].diffs.size(), 2u);
  EXPECT_EQ(matches[0].diffs[0].index, 1u);
  EXPECT_EQ(matches[0].diffs[0].idn_char, 0x043Eu);
  EXPECT_EQ(matches[0].diffs[0].ref_char, static_cast<CodePoint>('o'));
  EXPECT_EQ(matches[0].diffs[1].index, 2u);
}

TEST(Detector, Figure2NegativeExample) {
  // "goc aié"-style string: same length as "google" but containing a
  // character with no homoglyph relation.
  const auto db = test_db();
  const std::vector<std::string> refs{"google"};
  const std::vector<IdnEntry> idns{
      entry({'g', 0x043E, 'c', 'a', 'i', 0x00E9}),
  };
  EXPECT_TRUE(one_shot(db).detect({.references = refs, .idns = idns}).matches.empty());
}

TEST(Detector, LengthMismatchNeverMatches) {
  const auto db = test_db();
  const std::vector<std::string> refs{"google"};
  const std::vector<IdnEntry> idns{
      entry({'g', 0x043E, 0x043E, 'g', 'l', 'e', 's'}),  // 7 chars
      entry({'g', 0x043E, 0x043E, 'g', 'l'}),            // 5 chars
  };
  EXPECT_TRUE(one_shot(db).detect({.references = refs, .idns = idns}).matches.empty());
}

TEST(Detector, IdenticalStringIsNotAHomograph) {
  const auto db = test_db();
  const HomographDetector detector{db};
  std::vector<DiffChar> diffs;
  const U32String same{'g', 'o', 'o', 'g', 'l', 'e'};
  EXPECT_FALSE(detector.match_pair("google", same, &diffs));
}

TEST(Detector, AllPositionsMustMatchOrPair) {
  const auto db = test_db();
  const HomographDetector detector{db};
  std::vector<DiffChar> diffs;
  // One homoglyph + one unrelated substitution -> no match.
  const U32String label{'g', 0x043E, 'x', 'g', 'l', 'e'};
  EXPECT_FALSE(detector.match_pair("google", label, &diffs));
}

TEST(Detector, MultipleReferencesAndIdns) {
  const auto db = test_db();
  const std::vector<std::string> refs{"google", "apple", "pie"};
  const std::vector<IdnEntry> idns{
      entry({'g', 0x043E, 'o', 'g', 'l', 'e'}),
      entry({0x0430, 'p', 'p', 'l', 'e'}),
      entry({'p', 0x0131, 'e'}),
      entry({0x4E00, 0x4E8C}),  // unrelated CJK
  };
  const auto matches =
      one_shot(db).detect({.references = refs, .idns = idns}).matches;
  EXPECT_EQ(matches.size(), 3u);
}

TEST(Detector, IndexedMatchesNaive) {
  const auto db = test_db();
  util::Rng rng{77};

  std::vector<std::string> refs;
  for (int i = 0; i < 40; ++i) {
    std::string name;
    const int n = 3 + static_cast<int>(rng.below(8));
    for (int j = 0; j < n; ++j) name += static_cast<char>('a' + rng.below(26));
    refs.push_back(name);
  }
  std::vector<IdnEntry> idns;
  const CodePoint subs[] = {0x043E, 0x0585, 0x00E9, 0x0430, 0x0131};
  for (int i = 0; i < 200; ++i) {
    const auto& ref = refs[rng.below(refs.size())];
    U32String label;
    for (const char c : ref) label.push_back(static_cast<unsigned char>(c));
    // Randomly mutate 1-2 positions with homoglyphs or junk.
    const int muts = 1 + static_cast<int>(rng.below(2));
    for (int m = 0; m < muts; ++m) {
      label[rng.below(label.size())] = subs[rng.below(std::size(subs))];
    }
    idns.push_back(entry(label));
  }

  const auto naive =
      one_shot(db).detect({.references = refs, .idns = idns});
  const auto indexed =
      one_shot(db, Strategy::kIndexed).detect({.references = refs, .idns = idns});

  const auto key = [](const Match& m) {
    return std::make_pair(m.reference_index, m.idn_index);
  };
  std::vector<std::pair<std::size_t, std::size_t>> a, b;
  for (const auto& m : naive.matches) a.push_back(key(m));
  for (const auto& m : indexed.matches) b.push_back(key(m));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_GT(naive.stats.length_bucket_hits, 0u);
}

TEST(Detector, DiffProvenanceIsReported) {
  simchar::SimCharDb sim{{{'o', 0x00F6, 3}}};
  homoglyph::HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), {}};
  const HomographDetector detector{db};
  std::vector<DiffChar> diffs;
  // ö: SimChar; Cyrillic о: UC.
  const U32String label{0x00F6, 0x043E};
  ASSERT_TRUE(detector.match_pair("oo", label, &diffs));
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0].source, homoglyph::Source::kSimChar);
  EXPECT_EQ(diffs[1].source, homoglyph::Source::kUc);
}

TEST(Detector, SkeletonBaselineFindsUcHomographs) {
  const auto& uc = unicode::ConfusablesDb::embedded();
  const std::vector<std::string> refs{"google", "paypal"};
  const std::vector<IdnEntry> idns{
      entry({'g', 0x043E, 0x043E, 'g', 'l', 'e'}),   // UC skeleton = google
      entry({'p', 0x0430, 'y', 'p', 0x0430, 'l'}),   // UC skeleton = paypal
      entry({'g', 0x00F6, 0x00F6, 'g', 'l', 'e'}),   // ö is NOT in UC
  };
  const auto matches = detect_by_skeleton(uc, refs, idns);
  EXPECT_EQ(matches.size(), 2u);
}

TEST(Detector, EmptyInputs) {
  const auto db = test_db();
  EXPECT_TRUE(one_shot(db).detect({}).matches.empty());
  const std::vector<std::string> refs{"google"};
  EXPECT_TRUE(one_shot(db).detect({.references = refs}).matches.empty());
}

// --- Engine (unified detect() + parallel sharding) --------------------

/// Workload over the paper-scale synthetic font: real SimChar pairs, refs
/// drawn from Latin lowercase, IDNs mutated with genuine homoglyphs (so
/// matches occur) and junk (so rejections occur).
struct EngineWorkload {
  homoglyph::HomoglyphDb db;
  std::vector<std::string> refs;
  std::vector<IdnEntry> idns;
};

const EngineWorkload& paper_font_workload() {
  static const auto* workload = [] {
    auto* w = new EngineWorkload;
    font::PaperFontConfig config;
    config.scale = 0.1;
    const auto paper = font::make_paper_font(config);
    const auto sim = simchar::SimCharDb::build(*paper.font);
    w->db = homoglyph::HomoglyphDb{sim, unicode::ConfusablesDb::embedded(), {}};

    util::Rng rng{2019};
    for (int i = 0; i < 120; ++i) {
      std::string name;
      const int n = 3 + static_cast<int>(rng.below(9));
      for (int j = 0; j < n; ++j) name += static_cast<char>('a' + rng.below(26));
      w->refs.push_back(name);
    }
    for (int i = 0; i < 1500; ++i) {
      const auto& ref = w->refs[rng.below(w->refs.size())];
      U32String label;
      for (const char c : ref) label.push_back(static_cast<unsigned char>(c));
      const int muts = 1 + static_cast<int>(rng.below(2));
      for (int m = 0; m < muts; ++m) {
        const auto pos = rng.below(label.size());
        const auto subs = w->db.homoglyphs_of(label[pos]);
        // Half genuine homoglyph substitutions, half junk characters.
        label[pos] = (!subs.empty() && rng.below(2) == 0)
                         ? subs[rng.below(subs.size())]
                         : static_cast<CodePoint>(0x3042 + rng.below(64));
      }
      w->idns.push_back({"", label});
    }
    return w;
  }();
  return *workload;
}

TEST(Engine, ParallelIsByteIdenticalToSerialIndexedOnPaperFontWorkload) {
  const auto& w = paper_font_workload();
  const auto indexed = one_shot(w.db, Strategy::kIndexed)
                           .detect({.references = w.refs, .idns = w.idns});
  const auto& serial = indexed.matches;
  const auto& serial_stats = indexed.stats;
  ASSERT_FALSE(serial.empty());  // workload must exercise the match path

  const Engine engine{w.db};
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto r = engine.detect({.references = w.refs,
                                  .idns = w.idns,
                                  .strategy = Strategy::kParallel,
                                  .threads = threads});
    // Exact equality: same matches, same order, same diffs (incl. provenance).
    EXPECT_EQ(r.matches, serial) << "threads=" << threads;
    EXPECT_EQ(r.stats.length_bucket_hits, serial_stats.length_bucket_hits);
    EXPECT_EQ(r.stats.char_comparisons, serial_stats.char_comparisons);
    if (threads > 1) {
      EXPECT_EQ(r.stats.threads_used, threads);
      EXPECT_GT(r.stats.shards_used, 1u);
    }
    // Per-shard candidate counts are an exact decomposition of the total.
    std::uint64_t sum = 0;
    for (const auto c : r.stats.shard_candidates) sum += c;
    EXPECT_EQ(sum, r.stats.length_bucket_hits);
    EXPECT_EQ(r.stats.shard_candidates.size(), r.stats.shards_used);
  }
}

TEST(Engine, AllStrategiesAgreeOnUnicodeReferences) {
  const auto& w = paper_font_workload();
  std::vector<U32String> urefs;
  for (const auto& ref : w.refs) {
    U32String u;
    for (const char c : ref) u.push_back(static_cast<unsigned char>(c));
    urefs.push_back(u);
  }
  const auto serial = one_shot(w.db, Strategy::kIndexed)
                          .detect({.unicode_references = urefs, .idns = w.idns})
                          .matches;

  const Engine engine{w.db};
  for (const auto strategy : {Strategy::kSerial, Strategy::kIndexed, Strategy::kParallel}) {
    const auto r = engine.detect({.unicode_references = urefs,
                                  .idns = w.idns,
                                  .strategy = strategy,
                                  .threads = 4});
    EXPECT_EQ(r.matches, serial) << strategy_name(strategy);
  }
}

TEST(Engine, EmptyInputs) {
  const auto db = test_db();
  const Engine engine{db, {.strategy = Strategy::kParallel, .threads = 8}};
  EXPECT_TRUE(engine.detect({}).matches.empty());
  const std::vector<std::string> refs{"google"};
  const auto r = engine.detect({.references = refs});
  EXPECT_TRUE(r.matches.empty());
  EXPECT_EQ(r.stats.length_bucket_hits, 0u);
}

TEST(Engine, SingleReferenceUsesSingleShard) {
  // One reference cannot be sharded: the engine must degrade to a single
  // shard and still match the serial result.
  const auto db = test_db();
  const std::vector<std::string> refs{"google"};
  const std::vector<IdnEntry> idns{entry({'g', 0x043E, 0x0585, 'g', 'l', 'e'})};
  const auto serial = one_shot(db, Strategy::kIndexed)
                          .detect({.references = refs, .idns = idns})
                          .matches;

  const Engine engine{db, {.strategy = Strategy::kParallel, .threads = 8}};
  const auto r = engine.detect({.references = refs, .idns = idns});
  EXPECT_EQ(r.matches, serial);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_EQ(r.stats.shards_used, 1u);
  EXPECT_EQ(r.stats.shard_candidates.size(), 1u);
}

TEST(Engine, RejectsAmbiguousRequest) {
  const auto db = test_db();
  const Engine engine{db};
  const std::vector<std::string> refs{"google"};
  const std::vector<U32String> urefs{{'p', 'i', 'e'}};
  EXPECT_THROW(
      static_cast<void>(engine.detect({.references = refs, .unicode_references = urefs})),
      std::invalid_argument);
}

TEST(Engine, RequestOverridesEngineOptions) {
  const auto db = test_db();
  const Engine engine{db, {.strategy = Strategy::kSerial, .threads = 1}};
  const std::vector<std::string> refs{"google", "apple"};
  const std::vector<IdnEntry> idns{entry({'g', 0x043E, 'o', 'g', 'l', 'e'})};
  const auto r = engine.detect({.references = refs,
                                .idns = idns,
                                .strategy = Strategy::kParallel,
                                .threads = 2});
  EXPECT_EQ(r.stats.threads_used, 2u);
  EXPECT_EQ(r.matches.size(), 1u);
}

TEST(Engine, StrategyNamesRoundTrip) {
  for (const auto strategy : {Strategy::kSerial, Strategy::kIndexed,
                              Strategy::kParallel, Strategy::kSkeleton}) {
    EXPECT_EQ(parse_strategy(strategy_name(strategy)), strategy);
  }
  EXPECT_FALSE(parse_strategy("warp-drive").has_value());
}

// --- Skeleton-hash candidate index (Strategy::kSkeleton) --------------

TEST(Engine, SkeletonIsByteIdenticalToSerialOnPaperFontWorkload) {
  const auto& w = paper_font_workload();
  const Engine engine{w.db};
  const auto serial = engine.detect(
      {.references = w.refs, .idns = w.idns, .strategy = Strategy::kSerial});
  ASSERT_FALSE(serial.matches.empty());

  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto r = engine.detect({.references = w.refs,
                                  .idns = w.idns,
                                  .strategy = Strategy::kSkeleton,
                                  .threads = threads});
    // Exact equality: same matches, same order, same diffs and provenance.
    EXPECT_EQ(r.matches, serial.matches) << "threads=" << threads;
    // Candidate accounting: the skeleton probe must examine far fewer
    // pairs than the length-bucketed scan while never missing a match.
    EXPECT_EQ(r.stats.skeleton_candidates, r.stats.length_bucket_hits);
    EXPECT_LT(r.stats.length_bucket_hits, serial.stats.length_bucket_hits);
    EXPECT_LT(r.stats.char_comparisons, serial.stats.char_comparisons);
    EXPECT_GE(r.stats.skeleton_candidates, serial.matches.size());
    EXPECT_EQ(r.stats.skeleton_rejected,
              r.stats.skeleton_candidates - serial.matches.size());
    EXPECT_GT(r.stats.skeleton_buckets, 0u);
    // The histogram covers every bucket exactly once.
    std::uint64_t histogram_total = 0;
    for (const auto n : r.stats.skeleton_bucket_histogram) histogram_total += n;
    EXPECT_EQ(histogram_total, r.stats.skeleton_buckets);
    // Per-shard candidates still decompose the total under sharding.
    std::uint64_t sum = 0;
    for (const auto c : r.stats.shard_candidates) sum += c;
    EXPECT_EQ(sum, r.stats.length_bucket_hits);
  }
}

TEST(Engine, SkeletonVerifiesAwayNonTransitiveTriples) {
  // a~b and b~c listed, {a, c} not: the closure puts "abc"-alphabet
  // strings in one skeleton bucket, so an IDN using c where the reference
  // has a MUST surface as a rejected candidate, never as a match.
  simchar::SimCharDb sim{{{'a', 'b', 1}, {'b', 'c', 1}}};
  homoglyph::DbConfig config;
  config.use_uc = false;
  const homoglyph::HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), config};

  const std::vector<std::string> refs{"aaa", "aba"};
  const std::vector<IdnEntry> idns{
      entry({'a', 'b', 'a'}),  // matches "aaa" (a~b), identical to "aba" -> no match
      entry({'a', 'c', 'a'}),  // closure-bucket hit for both refs; only "aba" matches (b~c? no — a~c unlisted, c~b listed)
      entry({'c', 'c', 'c'}),  // skeleton equals "aaa" but no position pairs with 'a'
  };
  const Engine engine{db};
  const auto serial = engine.detect(
      {.references = refs, .idns = idns, .strategy = Strategy::kSerial});
  const auto skel = engine.detect(
      {.references = refs, .idns = idns, .strategy = Strategy::kSkeleton});

  EXPECT_EQ(skel.matches, serial.matches);
  // The over-approximate bucket really did hand the verifier false
  // positives (e.g. "ccc" vs "aaa"), and verification rejected them.
  EXPECT_GT(skel.stats.skeleton_rejected, 0u);
  EXPECT_GT(skel.stats.skeleton_rejection_rate(), 0.0);
  // Sanity on content: "ccc" never matches anything.
  for (const auto& m : skel.matches) EXPECT_NE(m.idn_index, 2u);
}

TEST(Engine, SkeletonAgreesOnUnicodeReferences) {
  const auto& w = paper_font_workload();
  std::vector<U32String> urefs;
  for (const auto& ref : w.refs) {
    U32String u;
    for (const char c : ref) u.push_back(static_cast<unsigned char>(c));
    urefs.push_back(u);
  }
  const Engine engine{w.db};
  const auto serial = engine.detect(
      {.unicode_references = urefs, .idns = w.idns, .strategy = Strategy::kSerial});
  const auto skel = engine.detect({.unicode_references = urefs,
                                   .idns = w.idns,
                                   .strategy = Strategy::kSkeleton,
                                   .threads = 4});
  EXPECT_EQ(skel.matches, serial.matches);
}

TEST(SkeletonIndex, CollisionBucketsAreVerifiedExactly) {
  // Truncate the hash to 2 bits: at most 4 buckets for the whole IDN set,
  // so buckets mix unrelated skeletons (and lengths). Exact verification
  // of every bucket entry must still reproduce the serial matches.
  const auto& w = paper_font_workload();
  const SkeletonIndex index{w.db, w.idns, {.hash_bits = 2}};
  EXPECT_LE(index.bucket_count(), 4u);

  const HomographDetector detector{w.db};
  std::vector<Match> matches;
  std::vector<DiffChar> diffs;
  for (std::size_t r = 0; r < w.refs.size(); ++r) {
    const auto bucket = index.probe(index.hash_of(w.refs[r]));
    if (bucket.empty()) continue;
    for (const auto x : bucket) {
      if (detector.match_pair(w.refs[r], w.idns[x].unicode, &diffs)) {
        matches.push_back({r, x, diffs});
      }
    }
  }
  const Engine engine{w.db};
  const auto serial = engine.detect(
      {.references = w.refs, .idns = w.idns, .strategy = Strategy::kSerial});
  EXPECT_EQ(matches, serial.matches);
}

TEST(SkeletonIndex, OccupancyHistogramAggregatesTail) {
  const auto db = test_db();
  // Six IDNs, all sharing one skeleton ('o'-cluster homoglyphs of "oo").
  std::vector<IdnEntry> idns;
  for (int i = 0; i < 6; ++i) {
    idns.push_back(entry({static_cast<CodePoint>(i % 2 == 0 ? 0x043E : 0x0585),
                          static_cast<CodePoint>('o')}));
  }
  const SkeletonIndex index{db, idns};
  EXPECT_EQ(index.bucket_count(), 1u);
  const auto histogram = index.occupancy_histogram(4);
  ASSERT_EQ(histogram.size(), 4u);
  EXPECT_EQ(histogram[3], 1u);  // one bucket of size 6 >= max_slots
  EXPECT_EQ(histogram[0] + histogram[1] + histogram[2], 0u);
}

TEST(Engine, SkeletonEmptyInputs) {
  const auto db = test_db();
  const Engine engine{db, {.strategy = Strategy::kSkeleton}};
  EXPECT_TRUE(engine.detect({}).matches.empty());
  const std::vector<std::string> refs{"google"};
  const auto r = engine.detect({.references = refs});
  EXPECT_TRUE(r.matches.empty());
  EXPECT_EQ(r.stats.skeleton_candidates, 0u);
  EXPECT_EQ(r.stats.skeleton_rejection_rate(), 0.0);
}

TEST(Engine, StatsSecondsIsWallClockNotShardSum) {
  // seconds covers the whole run and must be at least the stage sum of
  // the wall-clock stages (index build + match + merge), never the sum of
  // per-shard times (which would exceed it under real parallelism).
  const auto& w = paper_font_workload();
  const Engine engine{w.db};
  const auto r = engine.detect({.references = w.refs,
                                .idns = w.idns,
                                .strategy = Strategy::kParallel,
                                .threads = 4});
  EXPECT_GE(r.stats.seconds + 1e-9, r.stats.index_build_seconds +
                                        r.stats.match_seconds + r.stats.merge_seconds);
  EXPECT_GT(r.stats.match_seconds, 0.0);
}

// --- Candidate generation ---------------------------------------------

TEST(Candidates, SingleSubstitutionCount) {
  const auto db = test_db();
  // "oe": 'o' has 2 homoglyphs, 'e' has 1 -> 3 single-sub candidates.
  const auto out = generate_candidates(db, "oe");
  EXPECT_EQ(out.size(), 3u);
  for (const auto& c : out) {
    EXPECT_EQ(c.substitutions, 1u);
    EXPECT_TRUE(idna::is_a_label(c.ace)) << c.ace;
  }
}

TEST(Candidates, TwoSubstitutions) {
  const auto db = test_db();
  CandidateOptions options;
  options.max_substitutions = 2;
  const auto out = generate_candidates(db, "oe", options);
  // 3 singles + 2x1 doubles = 5.
  EXPECT_EQ(out.size(), 5u);
  // Ordered by substitution count.
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].substitutions, out[i].substitutions);
  }
}

TEST(Candidates, CapRespected) {
  const auto db = test_db();
  CandidateOptions options;
  options.max_substitutions = 3;
  options.max_candidates = 4;
  const auto out = generate_candidates(db, "ooee", options);
  EXPECT_LE(out.size(), 4u);
}

TEST(Candidates, CandidatesDecodeBack) {
  const auto db = test_db();
  const auto out = generate_candidates(db, "google");
  ASSERT_FALSE(out.empty());
  for (const auto& c : out) {
    const auto u = idna::to_u_label(c.ace);
    ASSERT_TRUE(u.has_value());
    EXPECT_EQ(*u, c.unicode);
  }
}

TEST(Candidates, RejectsBadInput) {
  const auto db = test_db();
  EXPECT_THROW(generate_candidates(db, ""), std::invalid_argument);
  EXPECT_THROW(generate_candidates(db, "caf\xC3\xA9"), std::invalid_argument);
}

TEST(Candidates, NoHomoglyphsMeansNoCandidates) {
  const auto db = test_db();
  EXPECT_TRUE(generate_candidates(db, "zzz").empty());
}

// --- Engine-resident index & result caching --------------------------------

std::vector<Match> fresh_serial(const homoglyph::HomoglyphDb& db,
                                std::span<const std::string> refs,
                                std::span<const IdnEntry> idns) {
  const Engine pure{db, {.strategy = Strategy::kSerial, .threads = 1, .cache = false}};
  return pure.detect({.references = refs, .idns = idns}).matches;
}

TEST(EngineCache, WarmHitSkipsBuild) {
  const auto db = test_db();
  const Engine engine{db, {.strategy = Strategy::kSkeleton, .threads = 1}};
  const std::vector<std::string> refs{"google", "mail"};
  const std::vector<IdnEntry> idns{
      entry({'g', 0x043E, 'o', 'g', 'l', 'e'}),
      entry({'m', 0x0430, 'i', 'l'}),
  };
  const auto cold = engine.detect({.references = refs, .idns = idns});
  EXPECT_EQ(cold.stats.index_cache_rebuilds, 1u);
  EXPECT_EQ(cold.stats.index_cache_hits, 0u);
  EXPECT_EQ(cold.stats.result_cache_hits, 0u);
  ASSERT_EQ(cold.matches.size(), 2u);

  const auto warm = engine.detect({.references = refs, .idns = idns});
  EXPECT_EQ(warm.stats.result_cache_hits, 1u);
  EXPECT_EQ(warm.stats.index_cache_rebuilds, 0u);
  EXPECT_EQ(warm.stats.skeleton_build_seconds, 0.0);
  EXPECT_EQ(warm.stats.index_build_seconds, 0.0);
  EXPECT_EQ(warm.stats.match_seconds, 0.0);
  EXPECT_EQ(warm.matches, cold.matches);
  EXPECT_EQ(warm.matches, fresh_serial(db, refs, idns));
}

TEST(EngineCache, WarmIndexServesChangedReferences) {
  const auto db = test_db();
  const Engine engine{db, {.strategy = Strategy::kSkeleton, .threads = 1}};
  const std::vector<std::string> refs_a{"google"};
  const std::vector<std::string> refs_b{"mail"};
  const std::vector<IdnEntry> idns{
      entry({'g', 0x043E, 'o', 'g', 'l', 'e'}),
      entry({'m', 0x0430, 'i', 'l'}),
  };
  (void)engine.detect({.references = refs_a, .idns = idns});
  // New reference list, same IDN set: the response memo misses but the
  // skeleton index is reused — no build, real scan.
  const auto r = engine.detect({.references = refs_b, .idns = idns});
  EXPECT_EQ(r.stats.result_cache_hits, 0u);
  EXPECT_EQ(r.stats.index_cache_hits, 1u);
  EXPECT_EQ(r.stats.index_cache_rebuilds, 0u);
  EXPECT_EQ(r.stats.skeleton_build_seconds, 0.0);
  EXPECT_EQ(r.matches, fresh_serial(db, refs_b, idns));
}

TEST(EngineCache, IdnSwapInvalidates) {
  const auto db = test_db();
  const Engine engine{db, {.strategy = Strategy::kSkeleton, .threads = 1}};
  const std::vector<std::string> refs{"google"};
  std::vector<IdnEntry> idns{entry({'g', 0x043E, 'o', 'g', 'l', 'e'})};
  const auto first = engine.detect({.references = refs, .idns = idns});
  EXPECT_EQ(first.stats.index_cache_rebuilds, 1u);
  ASSERT_EQ(first.matches.size(), 1u);

  // Mutate the IDN set *in place* — same span address, different content.
  // Content fingerprints must catch this (pointer identity would not).
  idns[0] = entry({'g', 'o', 0x0585, 'g', 'l', 'e'});
  const auto second = engine.detect({.references = refs, .idns = idns});
  EXPECT_EQ(second.stats.result_cache_hits, 0u);
  EXPECT_EQ(second.stats.index_cache_hits, 0u);
  EXPECT_EQ(second.stats.index_cache_rebuilds, 1u);
  EXPECT_EQ(second.matches, fresh_serial(db, refs, idns));
  ASSERT_EQ(second.matches.size(), 1u);
  EXPECT_EQ(second.matches[0].diffs[0].index, 2u);
}

TEST(EngineCache, IncrementalUpdateRehashesOnlyAffectedEntries) {
  simchar::SimCharDb sim{{{'o', 0x043E, 0}}};
  homoglyph::DbConfig config;
  config.use_uc = false;
  homoglyph::HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), config};
  const Engine engine{db, {.strategy = Strategy::kSkeleton, .threads = 1}};
  const std::vector<std::string> refs{"ok"};
  const std::vector<IdnEntry> idns{
      entry({0x0585, 'k'}),  // Armenian օ: unrelated until the update below
      entry({0x043E, 'k'}),  // Cyrillic о: matches "ok" from the start
      entry({'z', 'z'}),     // never affected
  };
  const auto cold = engine.detect({.references = refs, .idns = idns});
  ASSERT_EQ(cold.matches.size(), 1u);
  EXPECT_EQ(cold.matches[0].idn_index, 1u);

  // New pair {о, օ} merges օ into o's component: only the one IDN whose
  // label contains օ may be rehashed.
  const simchar::HomoglyphPair added[] = {{0x043E, 0x0585, 2}};
  const auto update = db.apply_update(added);
  EXPECT_EQ(update.pairs_added, 1u);
  EXPECT_EQ(update.canonical_changed, std::vector<CodePoint>{0x0585});

  const auto patched = engine.detect({.references = refs, .idns = idns});
  EXPECT_EQ(patched.stats.index_cache_updates, 1u);
  EXPECT_EQ(patched.stats.index_cache_rebuilds, 0u);
  EXPECT_EQ(patched.stats.index_entries_rehashed, 1u);
  EXPECT_EQ(patched.stats.db_generation, 1u);
  EXPECT_EQ(patched.stats.index_generation, 1u);
  // օk now lands in ok's bucket but {օ, o} is not itself a listed pair —
  // the closure over-approximates and exact verification must reject it.
  EXPECT_EQ(patched.stats.skeleton_rejected, cold.stats.skeleton_rejected + 1);
  EXPECT_EQ(patched.matches, fresh_serial(db, refs, idns));
  ASSERT_EQ(patched.matches.size(), 1u);
}

TEST(EngineCache, WithinComponentUpdateRehashesNothing) {
  simchar::SimCharDb sim{{{'a', 'b', 1}, {'b', 'c', 1}}};
  homoglyph::DbConfig config;
  config.use_uc = false;
  homoglyph::HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), config};
  const Engine engine{db, {.strategy = Strategy::kSkeleton, .threads = 1}};
  const std::vector<std::string> refs{"aaa"};
  const std::vector<IdnEntry> idns{entry({'a', 'c', 'a'})};

  // a~b and b~c put a and c in one component, so "aca" is a candidate for
  // "aaa" — but {a, c} is not listed, so verification rejects it.
  const auto before = engine.detect({.references = refs, .idns = idns});
  EXPECT_TRUE(before.matches.empty());
  EXPECT_EQ(before.stats.skeleton_candidates, 1u);
  EXPECT_EQ(before.stats.skeleton_rejected, 1u);

  // Adding {a, c} lands inside the existing component: no canonical
  // representative moves, so the patched index rehashes zero entries —
  // yet the match list changes, which the generation bump must surface.
  const simchar::HomoglyphPair added[] = {{'a', 'c', 1}};
  const auto update = db.apply_update(added);
  EXPECT_EQ(update.pairs_added, 1u);
  EXPECT_TRUE(update.canonical_changed.empty());

  const auto after = engine.detect({.references = refs, .idns = idns});
  EXPECT_EQ(after.stats.result_cache_hits, 0u);
  EXPECT_EQ(after.stats.index_cache_updates, 1u);
  EXPECT_EQ(after.stats.index_entries_rehashed, 0u);
  ASSERT_EQ(after.matches.size(), 1u);
  EXPECT_EQ(after.matches, fresh_serial(db, refs, idns));
}

TEST(EngineCache, SerialIsNeverCached) {
  const auto db = test_db();
  const Engine engine{db, {.strategy = Strategy::kSerial, .threads = 1}};
  const std::vector<std::string> refs{"google"};
  const std::vector<IdnEntry> idns{entry({'g', 0x043E, 'o', 'g', 'l', 'e'})};
  const auto first = engine.detect({.references = refs, .idns = idns});
  const auto second = engine.detect({.references = refs, .idns = idns});
  for (const auto* r : {&first, &second}) {
    EXPECT_EQ(r->stats.result_cache_hits, 0u);
    EXPECT_EQ(r->stats.index_cache_hits, 0u);
    EXPECT_EQ(r->stats.index_cache_rebuilds, 0u);
    EXPECT_EQ(r->stats.index_cache_updates, 0u);
    EXPECT_EQ(r->matches, first.matches);
  }
}

TEST(EngineCache, InvertedJoinMatchesForward) {
  const auto db = test_db();
  const Engine engine{db, {.strategy = Strategy::kSkeleton, .threads = 1}};
  std::vector<std::string> refs{"google", "mail", "ok"};
  std::vector<IdnEntry> idns;
  for (const CodePoint o : {CodePoint{0x043E}, CodePoint{0x0585}, CodePoint{'o'}}) {
    idns.push_back(entry({'g', o, 'o', 'g', 'l', 'e'}));
    idns.push_back(entry({'m', 0x0430, 'i', 'l'}));
    idns.push_back(entry({o, 'k'}));
    idns.push_back(entry({'z', 'z', 'z'}));
  }
  const auto forward = engine.detect(
      {.references = refs, .idns = idns, .join = SkeletonJoin::kIdnIndex});
  const auto inverted = engine.detect(
      {.references = refs, .idns = idns, .join = SkeletonJoin::kReferenceIndex});
  EXPECT_FALSE(forward.stats.inverted_join);
  EXPECT_TRUE(inverted.stats.inverted_join);
  EXPECT_EQ(inverted.matches, forward.matches);
  EXPECT_EQ(inverted.matches, fresh_serial(db, refs, idns));
  // The hash join is symmetric: identical candidate pair set and counters,
  // whichever side is bucketed.
  EXPECT_EQ(inverted.stats.skeleton_candidates, forward.stats.skeleton_candidates);
  EXPECT_EQ(inverted.stats.skeleton_rejected, forward.stats.skeleton_rejected);
  EXPECT_EQ(inverted.stats.char_comparisons, forward.stats.char_comparisons);
  EXPECT_FALSE(forward.matches.empty());
}

TEST(EngineCache, AutoJoinInvertsThenPromotesStableIdnSet) {
  const auto db = test_db();
  const Engine engine{db, {.strategy = Strategy::kSkeleton, .threads = 1}};
  const std::vector<std::string> refs{"ok"};
  std::vector<IdnEntry> idns;
  for (int i = 0; i < 8; ++i) idns.push_back(entry({0x043E, 'k'}));
  // 1 ref vs 8 IDNs: the size rule picks the inverted join on first sight.
  const auto first = engine.detect({.references = refs, .idns = idns});
  EXPECT_TRUE(first.stats.inverted_join);
  // Same IDN set again: promoted to the forward join so the reusable
  // IDN-side index gets built and cached.
  const auto second = engine.detect({.references = refs, .idns = idns});
  EXPECT_FALSE(second.stats.inverted_join);
  EXPECT_EQ(second.stats.index_cache_rebuilds, 1u);
  // Third time: the exact query is served from the response memo.
  const auto third = engine.detect({.references = refs, .idns = idns});
  EXPECT_FALSE(third.stats.inverted_join);
  EXPECT_EQ(third.stats.result_cache_hits, 1u);
  EXPECT_EQ(second.matches, first.matches);
  EXPECT_EQ(third.matches, first.matches);
  EXPECT_EQ(first.matches, fresh_serial(db, refs, idns));
}

TEST(EngineCache, RejectsNonAsciiReferences) {
  const auto db = test_db();
  const std::vector<std::string> refs{"caf\xC3\xA9"};  // UTF-8 é, two bytes
  const std::vector<IdnEntry> idns{entry({'c', 'a', 'f', 0x00E9})};
  for (const auto strategy : {Strategy::kSerial, Strategy::kIndexed,
                              Strategy::kParallel, Strategy::kSkeleton}) {
    const Engine engine{db, {.strategy = strategy, .threads = 1}};
    EXPECT_THROW((void)engine.detect({.references = refs, .idns = idns}),
                 std::invalid_argument)
        << strategy_name(strategy);
  }
}

TEST(SkeletonIndex, OccupancyHistogramGuardsEmptyBuckets) {
  homoglyph::HomoglyphDb db;  // starts with no pairs
  const std::vector<U32String> labels{{'b'}, {'c'}};
  SkeletonIndex index{db, labels};
  EXPECT_EQ(index.bucket_count(), 2u);
  const auto hash_b = index.entry_hash(0);

  // {a, b} merges b under a's representative: label "b" moves buckets and
  // its old bucket stays in the table, empty.
  const simchar::HomoglyphPair added[] = {{'a', 'b', 1}};
  const auto update = db.apply_update(added);
  EXPECT_EQ(index.rehash_changed(labels, update.canonical_changed), 1u);
  EXPECT_TRUE(index.probe(hash_b).empty());
  EXPECT_NE(index.entry_hash(0), hash_b);
  EXPECT_EQ(index.bucket_count(), 2u);

  // Pre-fix, `size() - 1` underflowed for the vacated bucket and counted
  // it in the histogram tail: the histogram summed to bucket_count() + 1.
  const auto histogram = index.occupancy_histogram();
  std::uint64_t total = 0;
  for (const auto n : histogram) total += n;
  EXPECT_EQ(total, index.bucket_count());
  EXPECT_EQ(histogram[0], 2u);
}

TEST(EngineCache, ResultLruServesRotatingReferenceLists) {
  const auto db = test_db();
  const Engine engine{db, {.strategy = Strategy::kSkeleton, .threads = 1}};
  const std::vector<std::vector<std::string>> ref_lists{
      {"google"}, {"mail"}, {"ok"}};
  const std::vector<IdnEntry> idns{
      entry({'g', 0x043E, 'o', 'g', 'l', 'e'}),
      entry({'m', 0x0430, 'i', 'l'}),
      entry({0x0585, 'k'}),
  };
  // First round populates one LRU entry per reference list.
  std::vector<DetectResponse> cold;
  for (const auto& refs : ref_lists) {
    cold.push_back(engine.detect({.references = refs, .idns = idns}));
    EXPECT_EQ(cold.back().stats.result_cache_hits, 0u);
  }
  EXPECT_EQ(cold.back().stats.result_cache_entries, 3u);
  // Second round: every rotated list hits (the old single-slot memo kept
  // only the last query and would miss all but one).
  for (std::size_t i = 0; i < ref_lists.size(); ++i) {
    const auto warm = engine.detect({.references = ref_lists[i], .idns = idns});
    EXPECT_EQ(warm.stats.result_cache_hits, 1u) << "list " << i;
    EXPECT_EQ(warm.stats.result_cache_entries, 3u);
    EXPECT_EQ(warm.matches, cold[i].matches);
  }
}

TEST(EngineCache, ResultLruEvictsLeastRecentlyUsed) {
  const auto db = test_db();
  const Engine engine{
      db, {.strategy = Strategy::kSkeleton, .threads = 1, .result_cache_capacity = 2}};
  const std::vector<std::string> refs_a{"google"};
  const std::vector<std::string> refs_b{"mail"};
  const std::vector<std::string> refs_c{"ok"};
  const std::vector<IdnEntry> idns{
      entry({'g', 0x043E, 'o', 'g', 'l', 'e'}),
      entry({'m', 0x0430, 'i', 'l'}),
      entry({0x043E, 'k'}),
  };
  const auto q = [&](const std::vector<std::string>& refs) {
    return engine.detect({.references = refs, .idns = idns});
  };
  EXPECT_EQ(q(refs_a).stats.result_cache_entries, 1u);
  EXPECT_EQ(q(refs_b).stats.result_cache_entries, 2u);
  // Capacity 2: storing C evicts A (least recently used), never grows.
  EXPECT_EQ(q(refs_c).stats.result_cache_entries, 2u);
  EXPECT_EQ(q(refs_b).stats.result_cache_hits, 1u);  // B survived
  const auto a_again = q(refs_a);                    // A was evicted
  EXPECT_EQ(a_again.stats.result_cache_hits, 0u);
  EXPECT_EQ(a_again.stats.result_cache_entries, 2u);
  // Storing A evicted C (B was refreshed by the hit above): both residents
  // hit, and re-querying C misses.
  EXPECT_EQ(q(refs_b).stats.result_cache_hits, 1u);
  EXPECT_EQ(q(refs_a).stats.result_cache_hits, 1u);
  EXPECT_EQ(q(refs_c).stats.result_cache_hits, 0u);
}

TEST(EngineCache, ResultCacheCapacityZeroDisablesMemo) {
  const auto db = test_db();
  const Engine engine{
      db, {.strategy = Strategy::kSkeleton, .threads = 1, .result_cache_capacity = 0}};
  const std::vector<std::string> refs{"google"};
  const std::vector<IdnEntry> idns{entry({'g', 0x043E, 'o', 'g', 'l', 'e'})};
  (void)engine.detect({.references = refs, .idns = idns});
  const auto repeat = engine.detect({.references = refs, .idns = idns});
  EXPECT_EQ(repeat.stats.result_cache_hits, 0u);
  EXPECT_EQ(repeat.stats.result_cache_entries, 0u);
  // The index cache is independent of the response memo and still works.
  EXPECT_EQ(repeat.stats.index_cache_hits, 1u);
}

TEST(SkeletonIndex, OversizedBucketsSplitBySecondaryHash) {
  // Truncate the primary hash to 1 bit so every label is forced into one
  // of two buckets — the long-tail shape the cap is for.
  const auto db = test_db();
  std::vector<std::string> labels;
  // 20 distinct skeletons into <= 2 primary buckets: one bucket holds
  // >= 10 entries by pigeonhole, landing in the histogram tail slot.
  for (char c = 'a'; c < 'a' + 20; ++c) labels.push_back({c, c});
  const SkeletonIndex flat{db, labels, {.hash_bits = 1}};
  const SkeletonIndex capped{db, labels, {.hash_bits = 1, .max_bucket_occupancy = 2}};
  EXPECT_EQ(flat.split_bucket_count(), 0u);
  EXPECT_GE(capped.split_bucket_count(), 1u);

  // Histogram long tail: uncapped piles >= 8 entries into the last slot;
  // splitting redistributes them into child buckets under the cap + tiny
  // secondary-collision noise.
  const auto flat_hist = flat.occupancy_histogram(8);
  const auto capped_hist = capped.occupancy_histogram(8);
  EXPECT_GE(flat_hist[7], 1u);
  EXPECT_EQ(capped_hist[7], 0u);
  std::uint64_t small = 0;
  for (std::size_t i = 0; i < 4; ++i) small += capped_hist[i];
  EXPECT_GE(small, capped.bucket_count());

  // Exactness: the split-aware probe still finds every entry whose
  // canonical stream equals the probe's (here: the label itself), and the
  // legacy hash probe still sees the full union.
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto child = capped.probe(capped.hashes_of(labels[i]));
    ASSERT_FALSE(child.empty()) << labels[i];
    EXPECT_NE(std::find(child.begin(), child.end(), i), child.end());
    EXPECT_LE(child.size(), 3u);  // far below the 12-entry parent
    const auto whole = capped.probe(capped.hash_of(labels[i]));
    ASSERT_FALSE(whole.empty());
    EXPECT_GE(whole.size(), child.size());
  }
}

TEST(SkeletonIndex, SplitBucketsKeepEngineMatchesExact) {
  // Force splits at the engine level (cap 1 splits every multi-entry
  // bucket) and check the skeleton strategy still reproduces the serial
  // match list in both join directions, warm and cold.
  const auto db = test_db();
  const Engine engine{
      db, {.strategy = Strategy::kSkeleton, .threads = 1, .skeleton_bucket_cap = 1}};
  std::vector<std::string> refs{"google", "mail", "ok"};
  std::vector<IdnEntry> idns;
  for (const CodePoint o : {CodePoint{0x043E}, CodePoint{0x0585}, CodePoint{'o'}}) {
    idns.push_back(entry({'g', o, 'o', 'g', 'l', 'e'}));
    idns.push_back(entry({'m', 0x0430, 'i', 'l'}));
    idns.push_back(entry({o, 'k'}));
  }
  const auto expected = fresh_serial(db, refs, idns);
  for (const auto join : {SkeletonJoin::kIdnIndex, SkeletonJoin::kReferenceIndex}) {
    const auto cold = engine.detect({.references = refs, .idns = idns, .join = join});
    const auto warm = engine.detect({.references = refs, .idns = idns, .join = join});
    EXPECT_EQ(cold.matches, expected);
    EXPECT_EQ(warm.matches, expected);
  }
  EXPECT_FALSE(expected.empty());
}

TEST(SkeletonIndex, SplitStateSurvivesIncrementalRehash) {
  // rehash_changed must keep child partitions consistent: entries whose
  // canonical stream moved change both primary bucket and child.
  homoglyph::HomoglyphDb db;  // no pairs yet
  std::vector<U32String> labels;
  for (int i = 0; i < 6; ++i) labels.push_back({'b'});  // six identical labels
  labels.push_back({'a'});
  SkeletonIndex index{db, labels, {.max_bucket_occupancy = 2}};
  // All six "b" labels share one skeleton: one oversized bucket, split
  // into a single child of 6 (identical secondary hashes — the split
  // cannot help identical labels, only distinct colliding skeletons).
  EXPECT_EQ(index.split_bucket_count(), 1u);

  // {a, b}: every "b" label's canonical stream moves to a's bucket, which
  // then exceeds the cap and splits; probes must still find all 7.
  const simchar::HomoglyphPair added[] = {{'a', 'b', 1}};
  const auto update = db.apply_update(added);
  EXPECT_EQ(index.rehash_changed(labels, update.canonical_changed), 6u);
  const auto merged = index.probe(index.hashes_of(labels[0]));
  ASSERT_FALSE(merged.empty());
  EXPECT_EQ(merged.size(), 7u);  // all labels, one canonical stream
}

// --- Uniform DetectRequest boundary validation ------------------------------

TEST(Validation, EmptyAsciiReferenceThrowsUnderEveryStrategy) {
  const auto db = test_db();
  const std::vector<std::string> refs{"google", ""};
  const std::vector<IdnEntry> idns{entry({'g', 0x043E, 'o', 'g', 'l', 'e'})};
  for (const auto strategy : {Strategy::kSerial, Strategy::kIndexed,
                              Strategy::kParallel, Strategy::kSkeleton}) {
    const Engine engine{db, {.strategy = strategy, .threads = 1}};
    EXPECT_THROW((void)engine.detect({.references = refs, .idns = idns}),
                 std::invalid_argument)
        << strategy_name(strategy);
  }
}

TEST(Validation, EmptyUnicodeReferenceThrowsUnderEveryStrategy) {
  const auto db = test_db();
  const std::vector<U32String> urefs{{'g', 'o', 'o', 'g', 'l', 'e'}, {}};
  const std::vector<IdnEntry> idns{entry({'g', 0x043E, 'o', 'g', 'l', 'e'})};
  for (const auto strategy : {Strategy::kSerial, Strategy::kIndexed,
                              Strategy::kParallel, Strategy::kSkeleton}) {
    const Engine engine{db, {.strategy = strategy, .threads = 1}};
    EXPECT_THROW(
        (void)engine.detect({.unicode_references = urefs, .idns = idns}),
        std::invalid_argument)
        << strategy_name(strategy);
  }
}

TEST(Validation, EngineThrowsTheExactValidateRequestMessage) {
  // Engine::detect and the standalone validate_request are one boundary:
  // identical exception type AND identical message, whatever the strategy.
  const auto db = test_db();
  const std::vector<std::string> refs{""};
  const std::vector<IdnEntry> idns{entry({'g', 0x043E, 'o', 'g', 'l', 'e'})};
  const DetectRequest request{.references = refs, .idns = idns};
  std::string expected;
  try {
    validate_request(request);
    FAIL() << "validate_request accepted an empty reference";
  } catch (const std::invalid_argument& error) {
    expected = error.what();
  }
  for (const auto strategy : {Strategy::kSerial, Strategy::kIndexed,
                              Strategy::kParallel, Strategy::kSkeleton}) {
    const Engine engine{db, {.strategy = strategy, .threads = 1}};
    try {
      (void)engine.detect(request);
      FAIL() << strategy_name(strategy) << " accepted an empty reference";
    } catch (const std::invalid_argument& error) {
      EXPECT_EQ(std::string{error.what()}, expected) << strategy_name(strategy);
    }
  }
}

TEST(Validation, BothReferenceSpansSetThrowsEvenWithEmptyZone) {
  // Validation runs before the empty-input short-circuit: a malformed
  // request fails the same way regardless of input size.
  const auto db = test_db();
  const std::vector<std::string> refs{"google"};
  const std::vector<U32String> urefs{{'p', 'i', 'e'}};
  const Engine engine{db, {.strategy = Strategy::kSerial, .threads = 1}};
  EXPECT_THROW(
      (void)engine.detect({.references = refs, .unicode_references = urefs}),
      std::invalid_argument);
  EXPECT_THROW((void)engine.detect({.references = std::vector<std::string>{""}}),
               std::invalid_argument);
}

// --- Concurrent detect() on one shared engine -------------------------------

// N threads hammer a single cached Engine with a randomized mix of
// requests — cold index builds, warm index hits, and response-memo hits
// interleave freely — and every response must be byte-identical to the
// serial cache-free ground truth. Runs under -DSHAM_SANITIZE=thread to
// certify the engine's internal cache against data races.
TEST(ConcurrentEngine, RandomizedInterleavingsMatchSerialGroundTruth) {
  const auto& w = paper_font_workload();

  // Request variants: three reference lists × two IDN snapshots. Two IDN
  // sets force index swaps (cold rebuilds) while repeats hit warm paths.
  std::vector<std::vector<std::string>> ref_lists;
  ref_lists.emplace_back(w.refs.begin(), w.refs.end());
  ref_lists.emplace_back(w.refs.begin(), w.refs.begin() + 40);
  ref_lists.emplace_back(w.refs.begin() + 40, w.refs.begin() + 80);
  std::vector<std::vector<IdnEntry>> idn_sets;
  idn_sets.emplace_back(w.idns.begin(), w.idns.end());
  idn_sets.emplace_back(w.idns.begin(), w.idns.begin() + w.idns.size() / 3);

  std::vector<std::vector<std::vector<Match>>> truth(ref_lists.size());
  for (std::size_t r = 0; r < ref_lists.size(); ++r) {
    for (const auto& idns : idn_sets) {
      truth[r].push_back(fresh_serial(w.db, ref_lists[r], idns));
    }
  }
  ASSERT_FALSE(truth[0][0].empty());  // the workload must produce matches

  constexpr Strategy kMix[] = {Strategy::kSerial, Strategy::kIndexed,
                               Strategy::kParallel, Strategy::kSkeleton};
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRequestsPerThread = 16;
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    const Engine engine{w.db, {.threads = 2}};  // shared; caching on
    std::atomic<std::uint64_t> mismatches{0};
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        util::Rng rng{seed * 6364136223846793005ULL + t};
        for (std::size_t i = 0; i < kRequestsPerThread; ++i) {
          const auto r = rng.below(ref_lists.size());
          const auto z = rng.below(idn_sets.size());
          const auto result =
              engine.detect({.references = ref_lists[r],
                             .idns = idn_sets[z],
                             .strategy = kMix[rng.below(std::size(kMix))]});
          if (result.matches != truth[r][z]) mismatches.fetch_add(1);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(mismatches.load(), 0u) << "seed=" << seed;
  }
}

TEST(ConcurrentEngine, SharedEngineBehindServeAndDirectCallersAgree) {
  // The serve path and direct Engine::detect share one engine type; a
  // thread mixing both entry points must still see ground-truth results.
  const auto& w = paper_font_workload();
  const std::vector<std::string> refs{w.refs.begin(), w.refs.begin() + 40};
  const auto expected = fresh_serial(w.db, refs, w.idns);
  ASSERT_FALSE(expected.empty());

  const Engine engine{w.db};
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        const auto result = engine.detect({.references = refs, .idns = w.idns});
        if (result.matches != expected) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace sham::detect
