// Evidence-based web classification tests: the WebServer synthesizes
// observable pages from the world's ground truth and the classifier must
// recover the category from the evidence alone.
#include <gtest/gtest.h>

#include "internet/scenario.hpp"
#include "internet/webpage.hpp"
#include "measure/environment.hpp"

namespace sham::internet {
namespace {

dns::DomainName dom(const std::string& s) { return dns::DomainName::parse_or_throw(s); }

HostState live_host(WebsiteKind kind) {
  HostState s;
  s.has_ns = true;
  s.has_a = true;
  s.port80_open = true;
  s.ns_host = "ns1.generic-hosting.net";
  s.website = kind;
  return s;
}

TEST(WebServer, UnreachableHostsYieldNoResponse) {
  SimulatedInternet world;
  HostState s = live_host(WebsiteKind::kNormal);
  s.port443_open = false;
  world.add_domain(dom("a.com"), s);
  const WebServer server{world};
  EXPECT_TRUE(server.fetch(dom("a.com"), false).has_value());
  EXPECT_FALSE(server.fetch(dom("a.com"), true).has_value());   // 443 closed
  EXPECT_FALSE(server.fetch(dom("b.com"), false).has_value());  // unregistered
}

TEST(WebServer, SynthesizesDistinctEvidencePerKind) {
  SimulatedInternet world;
  world.add_domain(dom("normal.com"), live_host(WebsiteKind::kNormal));
  world.add_domain(dom("empty.com"), live_host(WebsiteKind::kEmpty));
  world.add_domain(dom("err.com"), live_host(WebsiteKind::kError));
  auto redirect = live_host(WebsiteKind::kRedirect);
  redirect.redirect_target = "landing.com";
  world.add_domain(dom("redir.com"), redirect);

  const WebServer server{world};
  EXPECT_EQ(server.fetch(dom("normal.com"), false)->status, 200);
  EXPECT_GT(server.fetch(dom("normal.com"), false)->body_bytes, 0u);
  EXPECT_EQ(server.fetch(dom("empty.com"), false)->body_bytes, 0u);
  EXPECT_EQ(server.fetch(dom("err.com"), false)->status, 0);
  const auto r = server.fetch(dom("redir.com"), false);
  EXPECT_EQ(r->status, 301);
  EXPECT_EQ(r->location, "https://landing.com/");
}

class KindRecovery : public ::testing::TestWithParam<WebsiteKind> {};

TEST_P(KindRecovery, ClassifierRecoversGroundTruthFromEvidence) {
  const auto kind = GetParam();
  SimulatedInternet world;
  auto s = live_host(kind);
  if (kind == WebsiteKind::kRedirect) s.redirect_target = "elsewhere.com";
  if (kind == WebsiteKind::kParking) {
    s.ns_host = WebClassifier::parking_nameservers()[3];
  }
  world.add_domain(dom("site.com"), s);
  const WebClassifier classifier{world};
  EXPECT_EQ(classifier.classify(dom("site.com")).kind, kind);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, KindRecovery,
                         ::testing::Values(WebsiteKind::kParking,
                                           WebsiteKind::kForSale,
                                           WebsiteKind::kRedirect,
                                           WebsiteKind::kNormal,
                                           WebsiteKind::kEmpty,
                                           WebsiteKind::kError));

TEST(Classifier, ParkingByContentWithoutParkingNs) {
  // A parked page hosted on generic NS is still caught by its template.
  SimulatedInternet world;
  world.add_domain(dom("p.com"), live_host(WebsiteKind::kParking));
  const WebClassifier classifier{world};
  EXPECT_EQ(classifier.classify(dom("p.com")).kind, WebsiteKind::kParking);
}

TEST(Classifier, EvidenceFromHttpsWhenHttpClosed) {
  SimulatedInternet world;
  auto s = live_host(WebsiteKind::kForSale);
  s.port80_open = false;
  s.port443_open = true;
  world.add_domain(dom("s.com"), s);
  const WebClassifier classifier{world};
  EXPECT_EQ(classifier.classify(dom("s.com")).kind, WebsiteKind::kForSale);
}

TEST(Classifier, WholeScenarioInferenceMatchesGroundTruth) {
  // Property over a generated world: for every live attack domain the
  // evidence-based classification equals the planted website kind (with
  // parking NS hosts always classified as parking).
  measure::EnvironmentConfig env_config;
  env_config.font_scale = 0.1;
  const auto env = measure::Environment::create(env_config);
  ScenarioConfig config;
  config.total_domains = 8'000;
  config.reference_count = 150;
  config.attack_scale = 0.1;
  const auto scenario = generate_scenario(env.db_union, config);

  const PortScanner scanner{scenario.world};
  const WebClassifier classifier{scenario.world};
  std::size_t checked = 0;
  for (const auto& attack : scenario.attacks) {
    const auto domain = dns::DomainName::parse_or_throw(attack.ace + ".com");
    if (!scanner.scan(domain).any()) continue;
    const auto* host = scenario.world.lookup(domain);
    ASSERT_NE(host, nullptr);
    const auto inferred = classifier.classify(domain).kind;
    EXPECT_EQ(inferred, host->website) << attack.ace;
    ++checked;
  }
  EXPECT_GT(checked, 50u);
}

}  // namespace
}  // namespace sham::internet
