#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "font/synthetic_font.hpp"
#include "simchar/simchar.hpp"

namespace sham::simchar {
namespace {

using unicode::CodePoint;

std::shared_ptr<font::SyntheticFont> small_planted_font() {
  font::SyntheticFontBuilder b{2024};
  b.cover_range(0x0430, 0x045F);          // Cyrillic backdrop
  b.cover_range(0x4E00, 0x4E80, 60);      // CJK backdrop
  b.plant_cluster('o', {{0x03BF, 0}, {0x043E, 2}, {0x0585, 4}});
  b.plant_cluster('e', {{0x00E9, 1}, {0x0435, 3}, {0x025B, 5}});  // 5 > θ
  b.plant_sparse(0x0E47, 4);
  b.plant_sparse(0x0E48, 3);
  return b.build();
}

TEST(SimCharBuild, FindsPlantedPairsWithinThreshold) {
  const auto font = small_planted_font();
  const auto db = SimCharDb::build(*font);
  EXPECT_TRUE(db.are_homoglyphs('o', 0x03BF));
  EXPECT_TRUE(db.are_homoglyphs('o', 0x043E));
  EXPECT_TRUE(db.are_homoglyphs('o', 0x0585));
  EXPECT_TRUE(db.are_homoglyphs('e', 0x00E9));
  EXPECT_TRUE(db.are_homoglyphs('e', 0x0435));
}

TEST(SimCharBuild, RejectsPairsAboveThreshold) {
  const auto font = small_planted_font();
  const auto db = SimCharDb::build(*font);
  EXPECT_FALSE(db.are_homoglyphs('e', 0x025B));  // planted at ∆ = 5
  EXPECT_FALSE(db.are_homoglyphs('o', 'e'));     // independent random glyphs
}

TEST(SimCharBuild, IntraClusterPairsEmerge) {
  // Members at ∆ 0 and 2 from the base are at most 2 apart of each other.
  const auto font = small_planted_font();
  const auto db = SimCharDb::build(*font);
  EXPECT_TRUE(db.are_homoglyphs(0x03BF, 0x043E));
}

TEST(SimCharBuild, RecordsDeltas) {
  const auto font = small_planted_font();
  const auto db = SimCharDb::build(*font);
  EXPECT_EQ(db.delta_of('o', 0x03BF), 0);
  EXPECT_EQ(db.delta_of('o', 0x043E), 2);
  EXPECT_EQ(db.delta_of(0x043E, 'o'), 2);  // symmetric lookup
  EXPECT_FALSE(db.delta_of('o', 'q').has_value());
  EXPECT_FALSE(db.delta_of('o', 'o').has_value());  // irreflexive
}

TEST(SimCharBuild, DeltaLookupOverCrowdedPostingLists) {
  // delta_of binary-searches partner-sorted posting lists (hot in the
  // detect verify path); stress a character participating in many pairs,
  // as both the smaller and the larger member, in shuffled input order.
  std::vector<HomoglyphPair> pairs;
  for (unicode::CodePoint cp = 0x0400; cp < 0x0430; ++cp) {
    pairs.push_back({'m', cp, static_cast<int>(cp % 5)});
  }
  pairs.push_back({'a', 'm', 1});
  pairs.push_back({'k', 'm', 2});
  std::reverse(pairs.begin(), pairs.end());
  const SimCharDb db{std::move(pairs)};

  for (unicode::CodePoint cp = 0x0400; cp < 0x0430; ++cp) {
    EXPECT_EQ(db.delta_of('m', cp), static_cast<int>(cp % 5));
    EXPECT_EQ(db.delta_of(cp, 'm'), static_cast<int>(cp % 5));
  }
  EXPECT_EQ(db.delta_of('m', 'a'), 1);
  EXPECT_EQ(db.delta_of('k', 'm'), 2);
  EXPECT_FALSE(db.delta_of('m', 0x0430).has_value());  // one past the range
  EXPECT_FALSE(db.delta_of('m', 'b').has_value());
  // homoglyphs_of stays ascending and duplicate-free off the sorted lists.
  const auto hs = db.homoglyphs_of('m');
  ASSERT_EQ(hs.size(), 50u);
  for (std::size_t i = 1; i < hs.size(); ++i) EXPECT_LT(hs[i - 1], hs[i]);
}

TEST(SimCharBuild, ThresholdOptionWidens) {
  const auto font = small_planted_font();
  BuildOptions options;
  options.threshold = 6;
  const auto db = SimCharDb::build(*font, options);
  EXPECT_TRUE(db.are_homoglyphs('e', 0x025B));  // ∆ = 5 now included
}

TEST(SimCharBuild, SparseCharactersEliminated) {
  // The two sparse glyphs have ≤ 4 pixels each: their mutual distance is
  // ≤ 7, so without Step III they would typically appear as homoglyphs.
  const auto font = small_planted_font();
  BuildStats stats;
  const auto db = SimCharDb::build(*font, {}, &stats);
  EXPECT_FALSE(db.are_homoglyphs(0x0E47, 0x0E48));
  for (const auto cp : db.characters()) {
    EXPECT_NE(cp, 0x0E47u);
    EXPECT_NE(cp, 0x0E48u);
  }
}

TEST(SimCharBuild, SparseKeptWhenStepDisabled) {
  const auto font = small_planted_font();
  BuildOptions options;
  options.min_black_pixels = 0;
  const auto db = SimCharDb::build(*font, options);
  // With Step III disabled the two sparse glyphs may pair up (their
  // distance is ≤ 7 only if pixels overlap; at least they are allowed to).
  // The invariant we check: no character was eliminated.
  BuildStats stats;
  SimCharDb::build(*font, options, &stats);
  EXPECT_EQ(stats.sparse_eliminated, 0u);
}

TEST(SimCharBuild, PrunedEqualsNaive) {
  const auto font = small_planted_font();
  BuildOptions pruned;
  pruned.use_bucket_pruning = true;
  BuildOptions naive;
  naive.use_bucket_pruning = false;

  BuildStats stats_pruned;
  BuildStats stats_naive;
  const auto db_pruned = SimCharDb::build(*font, pruned, &stats_pruned);
  const auto db_naive = SimCharDb::build(*font, naive, &stats_naive);

  EXPECT_TRUE(std::ranges::equal(db_pruned.pairs(), db_naive.pairs()));
  EXPECT_LT(stats_pruned.pairs_compared, stats_naive.pairs_compared);
}

TEST(SimCharBuild, NaiveComparesAllPairs) {
  const auto font = small_planted_font();
  BuildOptions naive;
  naive.use_bucket_pruning = false;
  BuildStats stats;
  SimCharDb::build(*font, naive, &stats);
  const auto n = stats.glyphs_rendered;
  EXPECT_EQ(stats.pairs_compared, n * (n - 1) / 2);
}

TEST(SimCharBuild, SingleThreadMatchesParallel) {
  const auto font = small_planted_font();
  BuildOptions one;
  one.threads = 1;
  BuildOptions many;
  many.threads = 4;
  EXPECT_TRUE(std::ranges::equal(SimCharDb::build(*font, one).pairs(),
                                 SimCharDb::build(*font, many).pairs()));
}

TEST(SimCharBuild, IdnaOnlyFilters) {
  font::SyntheticFontBuilder b{3};
  b.cover_range('A', 'Z', SIZE_MAX, /*idna_only=*/false);  // DISALLOWED chars
  b.plant_cluster('a', {{0x0430, 1}});
  const auto font = b.build();

  BuildStats stats;
  const auto db = SimCharDb::build(*font, {}, &stats);
  // Only the PVALID characters were considered.
  EXPECT_EQ(stats.repertoire_size, 2u);

  BuildOptions all;
  all.idna_only = false;
  BuildStats stats_all;
  SimCharDb::build(*font, all, &stats_all);
  EXPECT_EQ(stats_all.repertoire_size, 28u);
}

TEST(SimCharBuild, StatsTimingsPopulated) {
  const auto font = small_planted_font();
  BuildStats stats;
  SimCharDb::build(*font, {}, &stats);
  EXPECT_GT(stats.glyphs_rendered, 0u);
  EXPECT_GE(stats.render_seconds, 0.0);
  EXPECT_GE(stats.compare_seconds, 0.0);
  EXPECT_GE(stats.pairs_found, stats.pairs_after_sparse);
}

TEST(SimCharBuild, NegativeThresholdThrows) {
  const auto font = small_planted_font();
  BuildOptions options;
  options.threshold = -1;
  EXPECT_THROW(SimCharDb::build(*font, options), std::invalid_argument);
}

TEST(SimCharDbTest, QueriesOnHandBuiltDb) {
  SimCharDb db{{{'a', 0x0430, 1}, {'o', 0x043E, 0}, {0x03BF, 0x043E, 2}}};
  EXPECT_EQ(db.pair_count(), 3u);
  EXPECT_EQ(db.character_count(), 5u);
  const auto homoglyphs = db.homoglyphs_of(0x043E);
  ASSERT_EQ(homoglyphs.size(), 2u);
  EXPECT_EQ(homoglyphs[0], static_cast<CodePoint>('o'));
  EXPECT_EQ(homoglyphs[1], 0x03BFu);
  EXPECT_TRUE(db.homoglyphs_of('z').empty());
}

TEST(SimCharDbTest, CanonicalizesAndDeduplicates) {
  SimCharDb db{{{0x0430, 'a', 1}, {'a', 0x0430, 1}}};
  EXPECT_EQ(db.pair_count(), 1u);
  EXPECT_EQ(db.pairs()[0].a, static_cast<CodePoint>('a'));
  EXPECT_EQ(db.pairs()[0].b, 0x0430u);
}

TEST(SimCharDbTest, RejectsReflexivePair) {
  EXPECT_THROW(SimCharDb({{'a', 'a', 0}}), std::invalid_argument);
}

TEST(SimCharDbTest, SerializeParseRoundtrip) {
  const auto font = small_planted_font();
  const auto db = SimCharDb::build(*font);
  const auto text = db.serialize();
  const auto parsed = SimCharDb::parse(text);
  EXPECT_TRUE(std::ranges::equal(parsed.pairs(), db.pairs()));
}

TEST(SimCharDbTest, ParseFormat) {
  const auto db = SimCharDb::parse(
      "# homoglyph pairs\n"
      "U+0061 U+0430 1\n"
      "U+006F U+043E 0\n");
  EXPECT_EQ(db.pair_count(), 2u);
  EXPECT_TRUE(db.are_homoglyphs('a', 0x0430));
  EXPECT_THROW(SimCharDb::parse("U+0061 U+0430\n"), std::invalid_argument);
}

TEST(SimCharDbTest, EmptyDb) {
  SimCharDb db;
  EXPECT_EQ(db.pair_count(), 0u);
  EXPECT_FALSE(db.are_homoglyphs('a', 'b'));
  EXPECT_TRUE(db.characters().empty());
}

}  // namespace
}  // namespace sham::simchar
