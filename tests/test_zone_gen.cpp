// Generator-equivalence suite: internet::ZoneTextStream must produce
// master-file text byte-identical to the materialized
// serialize_zone(scenario_to_zone(generate_scenario(...))) path for the
// same config/seed/which/TLD, at every chunk size, with chunk boundaries
// that dns::ZoneStreamReader can be fed directly.
#include <gtest/gtest.h>

#include <unordered_set>

#include "dns/zone_file.hpp"
#include "dns/zone_stream.hpp"
#include "internet/scenario.hpp"
#include "internet/scenario_core.hpp"
#include "internet/zone_gen.hpp"
#include "measure/environment.hpp"
#include "util/rng.hpp"

namespace sham::internet {
namespace {

const measure::Environment& env() {
  static const auto instance = [] {
    measure::EnvironmentConfig config;
    config.font_scale = 0.1;
    return measure::Environment::create(config);
  }();
  return instance;
}

ScenarioConfig small_config(std::uint64_t seed = 2019) {
  ScenarioConfig config;
  config.seed = seed;
  config.total_domains = 6'000;
  config.reference_count = 200;
  config.attack_scale = 0.05;  // ~165 attacks
  config.idn_fraction = 0.04;  // budget 240 => benign tail is exercised
  return config;
}

std::string materialized_text(const ScenarioConfig& config, int which,
                              std::string_view tld) {
  const auto scenario = generate_scenario(env().db_union, config);
  return dns::serialize_zone(scenario_to_zone(scenario, which, tld));
}

TEST(ZoneGen, ByteIdenticalToMaterializedPath) {
  for (const std::uint64_t seed : {2019ULL, 7ULL}) {
    const auto config = small_config(seed);
    for (const int which : {0, 1, 2}) {
      for (const std::string tld : {"com", "org"}) {
        const auto streamed = generate_zone_text(
            env().db_union, config,
            {.which = which, .tld = tld, .chunk_bytes = 64 * 1024});
        EXPECT_EQ(streamed, materialized_text(config, which, tld))
            << "seed=" << seed << " which=" << which << " tld=" << tld;
      }
    }
  }
}

TEST(ZoneGen, ByteIdenticalWithoutWorld) {
  auto config = small_config();
  config.build_world = false;
  const auto streamed = generate_zone_text(env().db_union, config, {.which = 2});
  EXPECT_EQ(streamed, materialized_text(config, 2, "com"));
  // Without world state every name is a bare delegation.
  EXPECT_NE(streamed.find("ns1.registrar-default.net"), std::string::npos);
}

TEST(ZoneGen, ChunkSizeDoesNotChangeTheText) {
  const auto config = small_config();
  const auto baseline =
      generate_zone_text(env().db_union, config, {.which = 0, .chunk_bytes = 1 << 20});
  for (const std::size_t chunk_bytes : {std::size_t{1}, std::size_t{113},
                                        std::size_t{4096}}) {
    ZoneTextStream stream{env().db_union, config,
                          {.which = 0, .chunk_bytes = chunk_bytes}};
    std::string text;
    std::string chunk;
    std::size_t chunks = 0;
    while (stream.next_chunk(chunk)) {
      text += chunk;
      ++chunks;
    }
    EXPECT_EQ(text, baseline) << "chunk_bytes=" << chunk_bytes;
    EXPECT_GE(chunks, 2u) << "chunk_bytes=" << chunk_bytes;
    EXPECT_EQ(stream.stats().bytes, text.size());
  }
}

TEST(ZoneGen, ChunksFeedTheStreamReaderDirectly) {
  // The generator's chunk boundaries are arbitrary byte positions; the
  // incremental reader must deliver the record sequence of a one-shot
  // parse of the concatenated text.
  const auto config = small_config();
  const ZoneGenOptions options{.which = 0, .chunk_bytes = 777};
  const auto text = generate_zone_text(env().db_union, config, options);
  const auto oneshot = dns::parse_zone(text);

  std::vector<dns::ResourceRecord> streamed;
  dns::ZoneStreamReader reader{[&](const dns::ResourceRecord& r) {
    streamed.push_back(r);
  }};
  ZoneTextStream stream{env().db_union, config, options};
  std::string chunk;
  while (stream.next_chunk(chunk)) reader.feed(chunk);
  reader.finish();

  EXPECT_EQ(streamed, oneshot.records);
  EXPECT_EQ(streamed.size(), stream.stats().records);
}

TEST(ZoneGen, RandomChunkBoundaryProperty) {
  // Re-chunk the generated text at random boundaries (mirroring the
  // ZoneChunkProperty suite in test_dns) — the parse must be invariant.
  const auto config = small_config(11);
  const auto text = generate_zone_text(env().db_union, config, {.which = 1});
  const auto oneshot = dns::parse_zone(text);

  util::Rng rng{0xC0FFEE};
  for (int round = 0; round < 4; ++round) {
    std::vector<dns::ResourceRecord> records;
    dns::ZoneStreamReader reader{[&](const dns::ResourceRecord& r) {
      records.push_back(r);
    }};
    std::size_t at = 0;
    while (at < text.size()) {
      const std::size_t len =
          std::min<std::size_t>(1 + rng.below(4096), text.size() - at);
      reader.feed(std::string_view{text}.substr(at, len));
      at += len;
    }
    reader.finish();
    EXPECT_EQ(records, oneshot.records) << "round " << round;
  }
}

TEST(ZoneGen, StatsAndPopulationAreConsistent) {
  const auto config = small_config();
  ZoneTextStream stream{env().db_union, config, {.which = 2}};
  std::string chunk;
  while (stream.next_chunk(chunk)) {
  }
  const auto& stats = stream.stats();
  EXPECT_EQ(stream.population(), config.total_domains);
  EXPECT_EQ(stats.domains_considered, config.total_domains);
  // Union list: every population index is a member.
  EXPECT_EQ(stats.domains_emitted, config.total_domains);
  EXPECT_GE(stats.records, stats.domains_emitted / 2);
}

TEST(ZoneGen, UnionOwnersAreUnique) {
  // Filler labels are unique by construction (index suffix); references,
  // attacks, and benign ACEs cannot collide with them. Benign-benign
  // duplicates are tolerated by design but do not occur at this size.
  const auto config = small_config();
  const auto zone = dns::parse_zone(
      generate_zone_text(env().db_union, config, {.which = 2}));
  std::unordered_set<std::string> owners;
  for (const auto& r : zone.records) owners.insert(r.owner.str());
  const auto core = build_scenario_core(env().db_union, config);
  EXPECT_GE(owners.size(), core.population() - core.benign_count);
}

TEST(ZoneGen, RejectsInvalidWhich) {
  EXPECT_THROW(
      (ZoneTextStream{env().db_union, small_config(), {.which = 3}}),
      std::invalid_argument);
}

TEST(ZoneGen, PerIndexFunctionsAreStateless) {
  // Calling the index-addressed functions out of order or repeatedly
  // yields identical values — the contract streaming relies on.
  const auto core = build_scenario_core(env().db_union, small_config());
  const auto a = filler_label_at(core, core.head_count() + 17);
  const auto b = filler_label_at(core, core.head_count() + 17);
  EXPECT_EQ(a, b);
  ASSERT_GT(core.benign_count, 0u);
  EXPECT_EQ(benign_idn_at(core, 0).ace, benign_idn_at(core, 0).ace);
  const auto m1 = membership_at(core, 42);
  const auto m2 = membership_at(core, 42);
  EXPECT_EQ(m1.zone, m2.zone);
  EXPECT_EQ(m1.domainlists, m2.domainlists);
  EXPECT_TRUE(m1.zone || m1.domainlists);
}

}  // namespace
}  // namespace sham::internet
