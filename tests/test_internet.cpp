#include <gtest/gtest.h>

#include <unordered_set>

#include "idna/idna.hpp"
#include "internet/brands.hpp"
#include "internet/idn_corpus.hpp"
#include "internet/scenario.hpp"
#include "internet/world.hpp"

namespace sham::internet {
namespace {

// --- World and services ------------------------------------------------

dns::DomainName dom(const std::string& s) { return dns::DomainName::parse_or_throw(s); }

TEST(World, RegistrationAndLookup) {
  SimulatedInternet world;
  HostState s;
  s.has_ns = true;
  world.add_domain(dom("a.com"), s);
  EXPECT_TRUE(world.is_registered(dom("a.com")));
  EXPECT_FALSE(world.is_registered(dom("b.com")));
  ASSERT_NE(world.lookup(dom("a.com")), nullptr);
  EXPECT_EQ(world.lookup(dom("b.com")), nullptr);
  EXPECT_EQ(world.domain_count(), 1u);
  EXPECT_THROW(world.state_for_update(dom("b.com")), std::invalid_argument);
}

TEST(PortScannerTest, RequiresNsAndA) {
  SimulatedInternet world;
  HostState live;
  live.has_ns = true;
  live.has_a = true;
  live.port80_open = true;
  world.add_domain(dom("live.com"), live);

  HostState no_a = live;
  no_a.has_a = false;
  world.add_domain(dom("no-a.com"), no_a);

  HostState no_ns = live;
  no_ns.has_ns = false;
  world.add_domain(dom("no-ns.com"), no_ns);

  const PortScanner scanner{world};
  EXPECT_TRUE(scanner.scan(dom("live.com")).tcp80);
  EXPECT_FALSE(scanner.scan(dom("no-a.com")).any());
  EXPECT_FALSE(scanner.scan(dom("no-ns.com")).any());
  EXPECT_FALSE(scanner.scan(dom("unregistered.com")).any());
}

TEST(WebClassifierTest, ParkingDetectedByNameserver) {
  SimulatedInternet world;
  HostState s;
  s.has_ns = true;
  s.has_a = true;
  s.port80_open = true;
  s.website = WebsiteKind::kNormal;  // content says normal...
  s.ns_host = WebClassifier::parking_nameservers().front();  // ...but NS says parked
  world.add_domain(dom("parked.com"), s);

  const WebClassifier classifier{world};
  EXPECT_EQ(classifier.classify(dom("parked.com")).kind, WebsiteKind::kParking);
  EXPECT_EQ(WebClassifier::parking_nameservers().size(), 17u);
}

TEST(WebClassifierTest, RedirectCarriesTargetFromLocationHeader) {
  SimulatedInternet world;
  HostState s;
  s.has_ns = true;
  s.has_a = true;
  s.port80_open = true;
  s.ns_host = "ns1.normal-host.net";
  s.website = WebsiteKind::kRedirect;
  s.redirect = RedirectKind::kBrandProtection;
  s.redirect_target = "google.com";
  world.add_domain(dom("xn--ggle-55da.com"), s);

  const WebClassifier classifier{world};
  const auto site = classifier.classify(dom("xn--ggle-55da.com"));
  EXPECT_EQ(site.kind, WebsiteKind::kRedirect);
  EXPECT_EQ(site.redirect_target, "google.com");
}

TEST(BlacklistServiceTest, FeedsAreBitmask) {
  SimulatedInternet world;
  HostState s;
  s.blacklists = static_cast<std::uint8_t>(BlacklistFeed::kHpHosts) |
                 static_cast<std::uint8_t>(BlacklistFeed::kGsb);
  world.add_domain(dom("bad.com"), s);

  const BlacklistService service{world};
  EXPECT_TRUE(service.listed(dom("bad.com"), BlacklistFeed::kHpHosts));
  EXPECT_TRUE(service.listed(dom("bad.com"), BlacklistFeed::kGsb));
  EXPECT_FALSE(service.listed(dom("bad.com"), BlacklistFeed::kSymantec));
  EXPECT_EQ(service.feeds(dom("unknown.com")), 0);
}

TEST(PassiveDnsTest, CountsForKnownDomains) {
  SimulatedInternet world;
  HostState s;
  s.dns_resolutions = 615447;
  world.add_domain(dom("xn--gmal-nza.com"), s);
  const PassiveDns pdns{world};
  EXPECT_EQ(pdns.resolutions(dom("xn--gmal-nza.com")), 615447u);
  EXPECT_EQ(pdns.resolutions(dom("x.com")), 0u);
}

// --- Brands and corpora -------------------------------------------------

TEST(Brands, ContainsPaperTargets) {
  const auto& brands = well_known_brands();
  const std::unordered_set<std::string> set{brands.begin(), brands.end()};
  for (const char* name : {"google", "amazon", "facebook", "myetherwallet",
                           "allstate", "gmail", "yahoo", "youtube", "binance",
                           "doviz", "expansion", "shadbase", "peru"}) {
    EXPECT_TRUE(set.contains(name)) << name;
  }
  EXPECT_EQ(set.size(), brands.size()) << "duplicate brand names";
}

TEST(Brands, ReferenceListDeterministicAndUnique) {
  const auto a = make_reference_list(500, 9);
  const auto b = make_reference_list(500, 9);
  EXPECT_EQ(a, b);
  const std::unordered_set<std::string> set{a.begin(), a.end()};
  EXPECT_EQ(set.size(), a.size());
  // Curated brands come first, in order.
  EXPECT_EQ(a[0], well_known_brands()[0]);
}

TEST(Brands, SyntheticLabelsAreLdh) {
  util::Rng rng{4};
  for (int i = 0; i < 200; ++i) {
    const auto label = synthetic_label(rng);
    EXPECT_GE(label.size(), 2u);
    for (const char c : label) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << label;
    }
  }
}

TEST(IdnCorpus, LanguageMixRoughlyHonoured) {
  const auto corpus = make_idn_corpus(4000, 77);
  ASSERT_EQ(corpus.size(), 4000u);
  std::size_t chinese = 0;
  std::size_t korean = 0;
  for (const auto& s : corpus) {
    if (s.language == dns::Language::kChinese) ++chinese;
    if (s.language == dns::Language::kKorean) ++korean;
  }
  EXPECT_NEAR(static_cast<double>(chinese) / 4000.0, 0.465, 0.05);
  EXPECT_NEAR(static_cast<double>(korean) / 4000.0, 0.106, 0.04);
}

TEST(IdnCorpus, AceFormsAreValidAndUnique) {
  const auto corpus = make_idn_corpus(500, 3);
  std::unordered_set<std::string> aces;
  for (const auto& s : corpus) {
    EXPECT_TRUE(idna::is_a_label(s.ace)) << s.ace;
    EXPECT_TRUE(aces.insert(s.ace).second) << "duplicate " << s.ace;
    const auto u = idna::to_u_label(s.ace);
    ASSERT_TRUE(u.has_value());
    EXPECT_EQ(*u, s.label);
  }
}

TEST(IdnCorpus, Deterministic) {
  const auto a = make_idn_corpus(100, 5);
  const auto b = make_idn_corpus(100, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].ace, b[i].ace);
}

}  // namespace
}  // namespace sham::internet
