// End-to-end integration tests: the full Figure 1 pipeline over a
// generated ecosystem, database portability through serialization, and
// cross-component consistency (detector vs candidate generator vs revert).
#include <algorithm>
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/shamfinder.hpp"
#include "core/warning.hpp"
#include "detect/candidates.hpp"
#include "internet/scenario.hpp"
#include "measure/environment.hpp"

namespace sham {
namespace {

const measure::Environment& env() {
  static const auto instance = [] {
    measure::EnvironmentConfig config;
    config.font_scale = 0.1;
    return measure::Environment::create(config);
  }();
  return instance;
}

TEST(Integration, FullPipelineOverScenario) {
  internet::ScenarioConfig config;
  config.total_domains = 20'000;
  config.reference_count = 200;
  config.attack_scale = 0.03;
  config.build_world = false;
  const auto scenario = internet::generate_scenario(env().db_union, config);

  // Steps 1-3 via the facade.
  const core::ShamFinder finder{env().simchar, *env().uc};
  const auto idns = core::ShamFinder::extract_idns(scenario.domains, "com");
  EXPECT_GT(idns.size(), scenario.attacks.size());

  const auto matches = finder.find_homographs(scenario.references, idns);
  std::unordered_set<std::string> detected;
  for (const auto& m : matches) detected.insert(idns[m.idn_index].ace);
  for (const auto& attack : scenario.attacks) {
    EXPECT_TRUE(detected.contains(attack.ace)) << attack.ace;
  }
}

TEST(Integration, DetectedMatchesCarryUsableWarnings) {
  internet::ScenarioConfig config;
  config.total_domains = 5'000;
  config.reference_count = 100;
  config.attack_scale = 0.02;
  config.build_world = false;
  const auto scenario = internet::generate_scenario(env().db_union, config);

  const core::ShamFinder finder{env().simchar, *env().uc};
  const auto idns = core::ShamFinder::extract_idns(scenario.domains, "com");
  const auto matches = finder.find_homographs(scenario.references, idns);
  ASSERT_FALSE(matches.empty());
  for (const auto& match : matches) {
    const auto warning = core::make_warning(
        match, scenario.references[match.reference_index], idns[match.idn_index]);
    EXPECT_FALSE(warning.diffs.empty());
    const auto text = warning.render();
    EXPECT_NE(text.find("WARNING"), std::string::npos);
    EXPECT_NE(text.find(warning.original), std::string::npos);
  }
}

TEST(Integration, SimCharSurvivesSerialization) {
  // Portability (Section 7.2): serialize, reload, and verify the detector
  // behaves identically.
  const auto text = env().simchar.serialize();
  const auto reloaded = simchar::SimCharDb::parse(text);
  ASSERT_TRUE(std::ranges::equal(reloaded.pairs(), env().simchar.pairs()));

  const core::ShamFinder original{env().simchar, *env().uc};
  const core::ShamFinder round_tripped{reloaded, *env().uc};
  const std::vector<std::string> domains{"xn--ggle-55da.com", "plain.com"};
  const auto idns = core::ShamFinder::extract_idns(domains, "com");
  const std::vector<std::string> refs{"google"};
  EXPECT_EQ(original.find_homographs(refs, idns).size(),
            round_tripped.find_homographs(refs, idns).size());
}

TEST(Integration, CandidatesAreDetectedBack) {
  // Generator -> detector consistency: every candidate homograph of a
  // reference must be detected as a homograph of that reference.
  const core::ShamFinder finder{env().simchar, *env().uc};
  detect::CandidateOptions options;
  options.max_candidates = 100;
  const auto candidates = detect::generate_candidates(finder.db(), "google", options);
  ASSERT_FALSE(candidates.empty());

  std::vector<detect::IdnEntry> idns;
  for (const auto& c : candidates) idns.push_back({c.ace, c.unicode});
  const std::vector<std::string> refs{"google"};
  const auto matches = finder.find_homographs(refs, idns);
  EXPECT_EQ(matches.size(), candidates.size());
}

TEST(Integration, CandidatesRevertToOriginal) {
  const core::ShamFinder finder{env().simchar, *env().uc};
  detect::CandidateOptions options;
  options.max_substitutions = 2;
  options.max_candidates = 200;
  const auto candidates = detect::generate_candidates(finder.db(), "amazon", options);
  ASSERT_FALSE(candidates.empty());
  for (const auto& c : candidates) {
    const auto original = finder.revert(c.unicode);
    ASSERT_TRUE(original.has_value()) << c.ace;
    // Reverting maps each homoglyph to its *smallest* LDH partner, which
    // is the original letter whenever the substitution came from an
    // ASCII-anchored pair — true for all generator output.
    EXPECT_EQ(*original, "amazon") << c.ace;
  }
}

TEST(Integration, Figure1PipelineFromZoneFile) {
  // The complete Figure 1 flow against the actual Step 1 artifact: render
  // the scenario as a registry zone file, parse it back, collect the
  // registered names from the records, extract IDNs, and detect.
  internet::ScenarioConfig config;
  config.total_domains = 4'000;
  config.reference_count = 120;
  config.attack_scale = 0.02;
  const auto scenario = internet::generate_scenario(env().db_union, config);

  const auto zone = internet::scenario_to_zone(scenario, /*which=*/0);
  EXPECT_GT(zone.records.size(), zone.owners().size());  // NS + A/MX records

  // Round-trip through the master-file text format.
  const auto text = dns::serialize_zone(zone);
  const auto parsed = dns::parse_zone(text);
  ASSERT_EQ(parsed.records.size(), zone.records.size());

  std::vector<std::string> registered;
  for (const auto& owner : parsed.owners()) registered.push_back(owner.str());

  const core::ShamFinder finder{env().simchar, *env().uc};
  const auto idns = core::ShamFinder::extract_idns(registered, "com");
  const auto matches = finder.find_homographs(scenario.references, idns);

  // Every planted attack that has an NS delegation (i.e. appears in the
  // zone) must be detected from the zone data alone.
  std::unordered_set<std::string> detected;
  for (const auto& m : matches) detected.insert(idns[m.idn_index].ace);
  std::size_t in_zone = 0;
  for (const auto& attack : scenario.attacks) {
    const auto domain = dns::DomainName::parse_or_throw(attack.ace + ".com");
    const auto* host = scenario.world.lookup(domain);
    if (host == nullptr || !host->has_ns) continue;
    ++in_zone;
    EXPECT_TRUE(detected.contains(attack.ace)) << attack.ace;
  }
  EXPECT_GT(in_zone, 10u);
}

TEST(Integration, ZoneSourcesDifferButUnionCoversAll) {
  internet::ScenarioConfig config;
  config.total_domains = 3'000;
  config.reference_count = 100;
  config.attack_scale = 0.01;
  const auto scenario = internet::generate_scenario(env().db_union, config);
  const auto zone0 = internet::scenario_to_zone(scenario, 0);
  const auto zone1 = internet::scenario_to_zone(scenario, 1);
  const auto zone2 = internet::scenario_to_zone(scenario, 2);
  EXPECT_LE(zone0.owners().size(), zone2.owners().size());
  EXPECT_LE(zone1.owners().size(), zone2.owners().size());
  EXPECT_THROW(internet::scenario_to_zone(scenario, 3), std::invalid_argument);
}

TEST(Integration, PlantedAttacksRevertToTargets) {
  internet::ScenarioConfig config;
  config.total_domains = 5'000;
  config.reference_count = 150;
  config.attack_scale = 0.05;
  config.build_world = false;
  const auto scenario = internet::generate_scenario(env().db_union, config);
  std::size_t reverted_to_target = 0;
  for (const auto& attack : scenario.attacks) {
    const auto original = env().db_union.revert_to_ascii(attack.unicode);
    if (original.has_value()) {
      std::string s;
      for (const auto cp : *original) s += static_cast<char>(cp);
      if (s == attack.target) ++reverted_to_target;
    }
  }
  // The large majority of planted attacks revert to their exact target
  // (a few substituted characters also pair with a smaller LDH letter).
  EXPECT_GT(reverted_to_target * 10, scenario.attacks.size() * 8);
}

}  // namespace
}  // namespace sham
