// Differential correctness harness for the SIMD kernel layer.
//
// Every kernel is checked bit-exact against a test-local naive reference
// (written here, independent of src/kernels) at EVERY dispatch level the
// host can run — scalar always, AVX2/NEON when supported — over
// randomized, adversarial (all-zero, all-one, single-bit, tail-partial
// panel sizes), and real paper-font bitmaps. The end-to-end sections then
// pin the consumers: SimChar pair sets, skeleton-index hashes/buckets,
// and Engine detect() output must be byte-identical across levels.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "detect/engine.hpp"
#include "detect/skeleton_index.hpp"
#include "font/glyph.hpp"
#include "font/paper_font.hpp"
#include "kernels/kernels.hpp"
#include "simchar/simchar.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sham::kernels {
namespace {

using Words = std::array<std::uint64_t, kGlyphWords>;

// --- Test-local references (independent of src/kernels internals) -------

int naive_delta(const Words& a, const Words& b) {
  int sum = 0;
  for (std::size_t w = 0; w < kGlyphWords; ++w) {
    sum += std::popcount(a[w] ^ b[w]);
  }
  return sum;
}

std::uint64_t naive_splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t naive_block_hash(const Words& words, unsigned first, unsigned last) {
  std::uint64_t h = kBlockHashSeed;
  for (unsigned w = first; w < last; ++w) h = naive_splitmix64(h ^ words[w]);
  return h;
}

std::uint64_t naive_fnv1a(std::uint64_t seed, const std::vector<std::uint32_t>& v) {
  std::uint64_t h = seed;
  for (const auto x : v) {
    for (int shift = 0; shift < 32; shift += 8) {
      h = (h ^ ((x >> shift) & 0xFF)) * 0x100000001b3ULL;
    }
  }
  return h;
}

// --- Inputs --------------------------------------------------------------

/// Adversarial + randomized glyph word sets. Includes all-zero, all-one,
/// every-other-bit, and single-bit bitmaps at word and bitmap boundaries.
std::vector<Words> glyph_corpus(std::uint64_t seed, std::size_t random_count) {
  std::vector<Words> corpus;
  corpus.push_back(Words{});                                   // all zero
  Words ones;
  ones.fill(~0ULL);
  corpus.push_back(ones);                                      // all one
  Words alt;
  alt.fill(0xAAAAAAAAAAAAAAAAULL);
  corpus.push_back(alt);
  for (const std::size_t bit : {0u, 1u, 63u, 64u, 65u, 512u, 1022u, 1023u}) {
    Words g{};
    g[bit / 64] = 1ULL << (bit % 64);
    corpus.push_back(g);                                       // single bit
  }
  util::Rng rng{seed};
  for (std::size_t i = 0; i < random_count; ++i) {
    Words g;
    for (auto& w : g) w = rng.next();
    corpus.push_back(g);
  }
  return corpus;
}

GlyphPanel panel_of(const std::vector<Words>& glyphs) {
  GlyphPanel panel(glyphs.size());
  for (std::size_t i = 0; i < glyphs.size(); ++i) {
    panel.set_glyph(i, glyphs[i].data());
  }
  return panel;
}

/// Bitmaps of the paper-scale synthetic font — the kernels' real diet.
const std::vector<Words>& paper_font_words() {
  static const auto* words = [] {
    auto* out = new std::vector<Words>;
    font::PaperFontConfig config;
    config.scale = 0.05;
    const auto paper = font::make_paper_font(config);
    for (const auto cp : paper.font->coverage()) {
      const auto glyph = paper.font->glyph(cp);
      if (glyph.has_value()) out->push_back(glyph->words());
    }
    return out;
  }();
  return *words;
}

// --- Dispatch plumbing ---------------------------------------------------

TEST(KernelDispatch, LevelNamesRoundTrip) {
  for (const Level level : {Level::kScalar, Level::kAvx2, Level::kNeon}) {
    const auto parsed = parse_level(level_name(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(parse_level("sse9").has_value());
  EXPECT_FALSE(parse_level("").has_value());
  EXPECT_FALSE(parse_level("SCALAR").has_value());
}

TEST(KernelDispatch, SupportedLevelsStartWithScalarAndAreRunnable) {
  const auto levels = supported_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), Level::kScalar);
  for (const Level level : levels) {
    EXPECT_TRUE(force_level(level)) << level_name(level);
  }
  reset_level();
}

TEST(KernelDispatch, ForceRejectsUnsupportedAndKeepsActive) {
  const auto levels = supported_levels();
  ASSERT_TRUE(force_level(Level::kScalar));
  for (const Level level : {Level::kAvx2, Level::kNeon}) {
    if (std::find(levels.begin(), levels.end(), level) != levels.end()) continue;
    EXPECT_FALSE(force_level(level)) << level_name(level);
    EXPECT_EQ(active_level(), Level::kScalar);  // untouched on failure
  }
  reset_level();
}

TEST(KernelDispatch, ScopedLevelRestoresOnExit) {
  const auto before = active_level();
  {
    ScopedKernelLevel pin{Level::kScalar};
    ASSERT_TRUE(pin.forced());
    EXPECT_EQ(active_level(), Level::kScalar);
  }
  EXPECT_EQ(active_level(), before);
}

// --- GlyphPanel ----------------------------------------------------------

TEST(GlyphPanel, LayoutRoundTripAndZeroPadding) {
  const auto glyphs = glyph_corpus(7, 5);
  const auto panel = panel_of(glyphs);
  ASSERT_EQ(panel.size(), glyphs.size());
  ASSERT_GE(panel.stride(), panel.size());
  EXPECT_EQ(panel.stride() % kPanelPad, 0u);
  for (std::size_t w = 0; w < kGlyphWords; ++w) {
    const auto* row = panel.word_row(w);
    for (std::size_t g = 0; g < glyphs.size(); ++g) {
      EXPECT_EQ(row[g], glyphs[g][w]) << "w=" << w << " g=" << g;
    }
    // Padding columns must stay zero: vector tails may read them.
    for (std::size_t g = glyphs.size(); g < panel.stride(); ++g) {
      EXPECT_EQ(row[g], 0u);
    }
  }
}

TEST(GlyphPanel, CopyAndMovePreserveWords) {
  const auto glyphs = glyph_corpus(9, 3);
  const auto panel = panel_of(glyphs);
  GlyphPanel copy{panel};
  ASSERT_EQ(copy.size(), panel.size());
  EXPECT_EQ(copy.word_row(5)[2], panel.word_row(5)[2]);

  GlyphPanel moved{std::move(copy)};
  EXPECT_EQ(moved.size(), panel.size());
  EXPECT_EQ(moved.word_row(5)[2], panel.word_row(5)[2]);
  EXPECT_EQ(copy.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
}

// --- Differential: ∆ kernels --------------------------------------------

class KernelLevels : public ::testing::TestWithParam<Level> {
 protected:
  void SetUp() override {
    pin_ = std::make_unique<ScopedKernelLevel>(GetParam());
    ASSERT_TRUE(pin_->forced());
  }
  void TearDown() override { pin_.reset(); }

 private:
  std::unique_ptr<ScopedKernelLevel> pin_;
};

TEST_P(KernelLevels, DeltaBatchMatchesNaiveOnCorpusPanels) {
  const auto glyphs = glyph_corpus(11, 40);
  const auto panel = panel_of(glyphs);
  std::vector<std::int32_t> out(glyphs.size());
  for (const auto& query : glyphs) {
    // Full range plus tail-partial subranges around the vector width.
    const std::size_t n = glyphs.size();
    const std::array<std::pair<std::size_t, std::size_t>, 7> ranges{{
        {0, n}, {0, 1}, {0, 3}, {1, 5}, {3, 3}, {n - 9, n}, {n - 1, n},
    }};
    for (const auto& [begin, end] : ranges) {
      std::fill(out.begin(), out.end(), -1);
      delta_batch_u1024(query.data(), panel, begin, end, out.data());
      for (std::size_t k = 0; k < end - begin; ++k) {
        ASSERT_EQ(out[k], naive_delta(query, glyphs[begin + k]))
            << level_name(GetParam()) << " range [" << begin << "," << end
            << ") k=" << k;
      }
    }
  }
}

TEST_P(KernelLevels, DeltaBatchMatchesNaiveOnEverySmallPanelSize) {
  // n = 1..9 exercises every vector-width tail case on both 4-lane (AVX2)
  // and 2-lane (NEON) batches.
  const auto corpus = glyph_corpus(13, 16);
  for (std::size_t n = 1; n <= 9; ++n) {
    const std::vector<Words> glyphs(corpus.begin(), corpus.begin() + n);
    const auto panel = panel_of(glyphs);
    std::vector<std::int32_t> out(n);
    delta_batch_u1024(corpus[10].data(), panel, 0, n, out.data());
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_EQ(out[k], naive_delta(corpus[10], glyphs[k])) << "n=" << n;
    }
  }
}

TEST_P(KernelLevels, DeltaOneMatchesNaiveOnCorpusAndPaperFont) {
  const auto corpus = glyph_corpus(17, 25);
  for (const auto& a : corpus) {
    for (const auto& b : corpus) {
      ASSERT_EQ(delta_u1024(a.data(), b.data()), naive_delta(a, b));
    }
  }
  const auto& paper = paper_font_words();
  ASSERT_GT(paper.size(), 10u);
  for (std::size_t i = 0; i + 1 < std::min<std::size_t>(paper.size(), 64); ++i) {
    ASSERT_EQ(delta_u1024(paper[i].data(), paper[i + 1].data()),
              naive_delta(paper[i], paper[i + 1]));
  }
}

TEST_P(KernelLevels, DeltaBatchMatchesNaiveOnPaperFontPanel) {
  const auto& paper = paper_font_words();
  const auto panel = panel_of(paper);
  std::vector<std::int32_t> out(paper.size());
  for (std::size_t q = 0; q < std::min<std::size_t>(paper.size(), 24); ++q) {
    delta_batch_u1024(paper[q].data(), panel, 0, paper.size(), out.data());
    for (std::size_t k = 0; k < paper.size(); ++k) {
      ASSERT_EQ(out[k], naive_delta(paper[q], paper[k])) << "q=" << q;
    }
  }
}

// --- Differential: block-hash kernels -----------------------------------

TEST_P(KernelLevels, BlockHashBatchMatchesNaiveAndScalarProbe) {
  const auto glyphs = glyph_corpus(19, 30);
  const auto panel = panel_of(glyphs);
  std::vector<std::uint64_t> keys(glyphs.size());
  // Every partition the miner can produce (θ + 1 blocks, θ = 0..15), plus
  // degenerate spans.
  std::vector<std::pair<unsigned, unsigned>> spans{{0, 0}, {5, 5}, {0, 16}};
  for (int blocks = 1; blocks <= 16; ++blocks) {
    for (int b = 0; b < blocks; ++b) {
      spans.emplace_back(b * 16 / blocks, (b + 1) * 16 / blocks);
    }
  }
  for (const auto& [first, last] : spans) {
    block_hash_batch(panel, first, last, keys.data());
    for (std::size_t g = 0; g < glyphs.size(); ++g) {
      const auto expected = naive_block_hash(glyphs[g], first, last);
      ASSERT_EQ(keys[g], expected)
          << "span [" << first << "," << last << ") g=" << g;
      // Table-build (batch) and probe (scalar reference) must agree, or
      // the pigeonhole index would silently lose recall at this level.
      ASSERT_EQ(block_hash_u1024(glyphs[g].data(), first, last), expected);
    }
  }
}

// --- Differential: FNV kernels ------------------------------------------

TEST_P(KernelLevels, Fnv1aSpanMatchesNaiveAndChunksExactly) {
  util::Rng rng{23};
  for (const std::size_t len : {0u, 1u, 2u, 5u, 63u, 64u, 65u, 200u}) {
    std::vector<std::uint32_t> values(len);
    for (auto& v : values) v = static_cast<std::uint32_t>(rng.next());
    const auto expected = naive_fnv1a(0xcbf29ce484222325ULL, values);
    ASSERT_EQ(fnv1a_span(0xcbf29ce484222325ULL, values.data(), len), expected);
    // The chain property: feeding in two chunks resumes exactly.
    const std::size_t cut = len / 3;
    const auto partial = fnv1a_span(0xcbf29ce484222325ULL, values.data(), cut);
    ASSERT_EQ(fnv1a_span(partial, values.data() + cut, len - cut), expected);
  }
}

TEST_P(KernelLevels, Fnv1aBatch4MatchesFourSingleChains) {
  util::Rng rng{29};
  // Mixed lengths (including empty) force the common-prefix + scalar-tail
  // split in the vectorized variant.
  const std::array<std::array<std::size_t, 4>, 4> length_sets{{
      {0, 0, 0, 0},
      {1, 2, 3, 4},
      {64, 64, 64, 64},
      {0, 7, 64, 129},
  }};
  for (const auto& lengths : length_sets) {
    std::array<std::vector<std::uint32_t>, 4> streams;
    const std::uint32_t* ptrs[4];
    std::size_t lens[4];
    std::uint64_t seeds[4];
    for (int c = 0; c < 4; ++c) {
      streams[c].resize(lengths[c]);
      for (auto& v : streams[c]) v = static_cast<std::uint32_t>(rng.next());
      ptrs[c] = streams[c].data();
      lens[c] = streams[c].size();
      seeds[c] = rng.next();
    }
    std::uint64_t out[4];
    fnv1a_batch4(ptrs, lens, seeds, out);
    for (int c = 0; c < 4; ++c) {
      ASSERT_EQ(out[c], naive_fnv1a(seeds[c], streams[c])) << "chain " << c;
    }
  }
}

// --- End-to-end: consumers byte-identical across levels ------------------

std::vector<Level> reachable_levels() { return supported_levels(); }

TEST(KernelEndToEnd, SimCharPairSetsIdenticalAcrossLevelsAndStrategies) {
  font::PaperFontConfig config;
  config.scale = 0.05;
  const auto paper = font::make_paper_font(config);

  for (const auto strategy :
       {simchar::PairStrategy::kAllPairs, simchar::PairStrategy::kPopcountBand,
        simchar::PairStrategy::kBlockIndex}) {
    std::optional<std::vector<simchar::HomoglyphPair>> baseline;
    for (const Level level : reachable_levels()) {
      ScopedKernelLevel pin{level};
      ASSERT_TRUE(pin.forced());
      simchar::BuildOptions options;
      options.pair_strategy = strategy;
      options.threads = 2;
      const auto db = simchar::SimCharDb::build(*paper.font, options);
      if (!baseline.has_value()) {
        baseline.emplace(db.pairs().begin(), db.pairs().end());
        ASSERT_FALSE(baseline->empty());
      } else {
        ASSERT_TRUE(std::ranges::equal(db.pairs(), *baseline))
            << pair_strategy_name(strategy) << " @ " << level_name(level);
      }
    }
  }
}

TEST(KernelEndToEnd, SkeletonIndexHashesAndBucketsIdenticalAcrossLevels) {
  const simchar::SimCharDb sim{{
      {'o', 0x043E, 0}, {'o', 0x0585, 2}, {'e', 0x00E9, 3},
      {'a', 0x0430, 1}, {'i', 0x0131, 2},
  }};
  const homoglyph::HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), {}};
  util::Rng rng{31};
  std::vector<std::string> labels;
  for (int i = 0; i < 200; ++i) {
    std::string label;
    const int n = 1 + static_cast<int>(rng.below(20));
    for (int j = 0; j < n; ++j) label += static_cast<char>('a' + rng.below(26));
    labels.push_back(label);
  }

  std::vector<std::uint64_t> baseline_hashes;
  std::size_t baseline_buckets = 0;
  for (const Level level : reachable_levels()) {
    ScopedKernelLevel pin{level};
    ASSERT_TRUE(pin.forced());
    // A small cap exercises the secondary-hash (fnv1a_batch4) path too.
    const detect::SkeletonIndex index{db, labels, {.max_bucket_occupancy = 2}};
    std::vector<std::uint64_t> hashes(index.entry_count());
    for (std::size_t i = 0; i < index.entry_count(); ++i) {
      hashes[i] = index.entry_hash(i);
    }
    if (baseline_hashes.empty()) {
      baseline_hashes = hashes;
      baseline_buckets = index.bucket_count();
    } else {
      ASSERT_EQ(hashes, baseline_hashes) << level_name(level);
      ASSERT_EQ(index.bucket_count(), baseline_buckets) << level_name(level);
    }
    // Probe side must agree with build side at this level.
    for (const auto& label : labels) {
      ASSERT_EQ(index.hash_of(label),
                baseline_hashes[&label - labels.data()]);
    }
  }
}

TEST(KernelEndToEnd, DetectOutputIdenticalAcrossLevels) {
  font::PaperFontConfig config;
  config.scale = 0.05;
  const auto paper = font::make_paper_font(config);
  const auto sim = simchar::SimCharDb::build(*paper.font);
  const homoglyph::HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), {}};

  util::Rng rng{2019};
  std::vector<std::string> refs;
  for (int i = 0; i < 40; ++i) {
    std::string name;
    const int n = 3 + static_cast<int>(rng.below(9));
    for (int j = 0; j < n; ++j) name += static_cast<char>('a' + rng.below(26));
    refs.push_back(name);
  }
  std::vector<detect::IdnEntry> idns;
  for (int i = 0; i < 400; ++i) {
    const auto& ref = refs[rng.below(refs.size())];
    unicode::U32String label;
    for (const char c : ref) label.push_back(static_cast<unsigned char>(c));
    const auto pos = rng.below(label.size());
    const auto subs = db.homoglyphs_of(label[pos]);
    label[pos] = (!subs.empty() && rng.below(2) == 0)
                     ? subs[rng.below(subs.size())]
                     : static_cast<unicode::CodePoint>(0x3042 + rng.below(64));
    idns.push_back({"", label});
  }

  std::optional<std::vector<detect::Match>> baseline;
  for (const Level level : reachable_levels()) {
    ScopedKernelLevel pin{level};
    ASSERT_TRUE(pin.forced());
    const detect::Engine engine{
        db, {.strategy = detect::Strategy::kIndexed, .threads = 1, .cache = false}};
    const auto result = engine.detect({.references = refs, .idns = idns});
    if (!baseline.has_value()) {
      baseline = result.matches;
      ASSERT_FALSE(baseline->empty());  // workload must exercise matches
    } else {
      ASSERT_EQ(result.matches, *baseline) << level_name(level);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, KernelLevels,
                         ::testing::ValuesIn(supported_levels()),
                         [](const ::testing::TestParamInfo<Level>& info) {
                           return std::string{level_name(info.param)};
                         });

}  // namespace
}  // namespace sham::kernels
