#include <gtest/gtest.h>

#include "font/freetype_font.hpp"
#include "font/hex_font.hpp"
#include "font/metrics.hpp"
#include "font/paper_font.hpp"
#include "font/synthetic_font.hpp"
#include "unicode/idna_properties.hpp"

namespace sham::font {
namespace {

// --- HexFont ---------------------------------------------------------

TEST(HexFont, ParsesNarrowGlyph) {
  // 8x16 glyph: 32 hex digits, first row 0xFF (all black), rest empty.
  const auto font = HexFont::parse("0041:FF000000000000000000000000000000\n");
  EXPECT_EQ(font.size(), 1u);
  const auto g = font.glyph('A');
  ASSERT_TRUE(g.has_value());
  // Top source row scales to rows 0-1, full width.
  EXPECT_EQ(g->popcount(), 32 * 2);
  EXPECT_TRUE(g->get(0, 0));
  EXPECT_TRUE(g->get(31, 1));
  EXPECT_FALSE(g->get(0, 2));
}

TEST(HexFont, ParsesWideGlyph) {
  std::string row0 = "8000";  // leftmost pixel only
  std::string rest(15 * 4, '0');
  const auto font = HexFont::parse("4E00:" + row0 + rest + "\n");
  const auto g = font.glyph(0x4E00);
  ASSERT_TRUE(g.has_value());
  // 16x16 -> 32x32: one source pixel becomes a 2x2 block.
  EXPECT_EQ(g->popcount(), 4);
  EXPECT_TRUE(g->get(0, 0));
  EXPECT_TRUE(g->get(1, 1));
}

TEST(HexFont, SkipsCommentsAndBlankLines) {
  const auto font = HexFont::parse(
      "# GNU Unifont sample\n"
      "\n"
      "0041:FF000000000000000000000000000000\n");
  EXPECT_EQ(font.size(), 1u);
}

TEST(HexFont, RejectsMalformedLines) {
  EXPECT_THROW(HexFont::parse("0041 FF00\n"), std::invalid_argument);
  EXPECT_THROW(HexFont::parse("0041:FF\n"), std::invalid_argument);  // wrong length
  EXPECT_THROW(HexFont::parse("0041:GG000000000000000000000000000000\n"),
               std::invalid_argument);
  EXPECT_THROW(HexFont::parse("zz:FF000000000000000000000000000000\n"),
               std::invalid_argument);
}

TEST(HexFont, SerializeParseRoundtrip) {
  HexFont font;
  std::vector<std::uint32_t> narrow(16, 0);
  narrow[0] = 0x81;
  narrow[15] = 0x7E;
  font.add_glyph('x', false, narrow);
  std::vector<std::uint32_t> wide(16, 0);
  wide[3] = 0xF00F;
  font.add_glyph(0x4E8C, true, wide);

  const auto text = font.serialize();
  const auto parsed = HexFont::parse(text);
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.glyph('x'), font.glyph('x'));
  EXPECT_EQ(parsed.glyph(0x4E8C), font.glyph(0x4E8C));
}

TEST(HexFont, AddGlyphValidation) {
  HexFont font;
  EXPECT_THROW(font.add_glyph('a', false, {}), std::invalid_argument);
  std::vector<std::uint32_t> rows(16, 0x1FF);  // too wide for 8-bit cell
  EXPECT_THROW(font.add_glyph('a', false, rows), std::invalid_argument);
}

TEST(HexFont, CoverageSorted) {
  HexFont font;
  const std::vector<std::uint32_t> rows(16, 0xFF);
  font.add_glyph('z', false, rows);
  font.add_glyph('a', false, rows);
  const auto cov = font.coverage();
  ASSERT_EQ(cov.size(), 2u);
  EXPECT_EQ(cov[0], 'a');
  EXPECT_EQ(cov[1], 'z');
  EXPECT_FALSE(font.glyph('q').has_value());
}

// --- SyntheticFont ---------------------------------------------------

TEST(SyntheticFont, DeterministicForSeed) {
  SyntheticFontBuilder b1{99};
  SyntheticFontBuilder b2{99};
  b1.cover_range('a', 'z');
  b2.cover_range('a', 'z');
  const auto f1 = b1.build();
  const auto f2 = b2.build();
  for (char c = 'a'; c <= 'z'; ++c) {
    EXPECT_EQ(f1->glyph(c), f2->glyph(c));
  }
}

TEST(SyntheticFont, DifferentSeedsDiffer) {
  SyntheticFontBuilder b1{1};
  SyntheticFontBuilder b2{2};
  b1.cover_range('a', 'a');
  b2.cover_range('a', 'a');
  EXPECT_NE(*b1.build()->glyph('a'), *b2.build()->glyph('a'));
}

TEST(SyntheticFont, CoverRangeRespectsIdnaFilter) {
  SyntheticFontBuilder b{5};
  // 'A'-'Z' are DISALLOWED: nothing covered with the filter on.
  EXPECT_EQ(b.cover_range('A', 'Z'), 0u);
  EXPECT_EQ(b.cover_range('A', 'Z', SIZE_MAX, /*idna_only=*/false), 26u);
}

TEST(SyntheticFont, CoverRangeCap) {
  SyntheticFontBuilder b{5};
  const auto added = b.cover_range(0x4E00, 0x4FFF, 100);
  EXPECT_EQ(added, 100u);
  EXPECT_EQ(b.build()->size(), 100u);
}

TEST(SyntheticFont, PlantedClusterHasExactDeltas) {
  SyntheticFontBuilder b{7};
  b.plant_cluster('o', {{0x03BF, 0}, {0x043E, 2}, {0x0585, 4}, {0x00F6, 6}});
  const auto font = b.build();
  const auto base = font->glyph('o');
  ASSERT_TRUE(base.has_value());
  EXPECT_EQ(delta(*base, *font->glyph(0x03BF)), 0);
  EXPECT_EQ(delta(*base, *font->glyph(0x043E)), 2);
  EXPECT_EQ(delta(*base, *font->glyph(0x0585)), 4);
  EXPECT_EQ(delta(*base, *font->glyph(0x00F6)), 6);
}

TEST(SyntheticFont, RandomGlyphsAreFarApart) {
  SyntheticFontBuilder b{11};
  b.cover_range(0x4E00, 0x4E80, 100);
  const auto font = b.build();
  const auto cov = font->coverage();
  // Spot-check pairwise distances between unrelated glyphs.
  for (std::size_t i = 0; i + 1 < cov.size(); i += 7) {
    const int d = delta(*font->glyph(cov[i]), *font->glyph(cov[i + 1]));
    EXPECT_GT(d, 50) << "cp " << cov[i] << " vs " << cov[i + 1];
  }
}

TEST(SyntheticFont, SparseGlyphs) {
  SyntheticFontBuilder b{13};
  b.plant_sparse(0x0E47, 6);
  const auto font = b.build();
  EXPECT_EQ(font->glyph(0x0E47)->popcount(), 6);
  EXPECT_THROW(b.plant_sparse(0x0E48, 10), std::invalid_argument);
  EXPECT_THROW(b.plant_sparse(0x0E48, -1), std::invalid_argument);
}

TEST(SyntheticFont, BuilderRecordsGroundTruth) {
  SyntheticFontBuilder b{17};
  b.plant_cluster('a', {{0x0430, 1}});
  b.plant_sparse(0x1BE7, 5);
  EXPECT_EQ(b.planted().size(), 1u);
  EXPECT_EQ(b.planted()[0].base, static_cast<unicode::CodePoint>('a'));
  EXPECT_EQ(b.sparse_planted().size(), 1u);
}

// --- Paper font ------------------------------------------------------

TEST(PaperFont, CoversLatinDigitsAndClusters) {
  PaperFontConfig config;
  config.scale = 0.1;
  const auto paper = make_paper_font(config);
  for (char c = 'a'; c <= 'z'; ++c) {
    EXPECT_TRUE(paper.font->glyph(static_cast<unicode::CodePoint>(c)).has_value());
  }
  EXPECT_TRUE(paper.font->glyph('7').has_value());
  EXPECT_FALSE(paper.clusters.empty());
  EXPECT_FALSE(paper.sparse.empty());
}

TEST(PaperFont, Table3CountsArePlanted) {
  PaperFontConfig config;
  config.scale = 0.1;
  const auto paper = make_paper_font(config);
  // Per letter, count planted members with ∆ ≤ 4: must equal Table 3.
  for (const auto& [letter, want] : table3_simchar_counts()) {
    int have = 0;
    for (const auto& cluster : paper.clusters) {
      if (cluster.base != static_cast<unicode::CodePoint>(letter)) continue;
      for (const auto& m : cluster.members) {
        if (m.delta <= 4) ++have;
      }
    }
    EXPECT_GE(have, want) << "letter " << letter;
  }
}

TEST(PaperFont, CaseStudyDonorsArePinned) {
  PaperFontConfig config;
  config.scale = 0.1;
  const auto paper = make_paper_font(config);
  const auto check = [&](char letter, unicode::CodePoint donor) {
    const auto base = paper.font->glyph(static_cast<unicode::CodePoint>(letter));
    const auto g = paper.font->glyph(donor);
    ASSERT_TRUE(base.has_value());
    ASSERT_TRUE(g.has_value());
    EXPECT_LE(delta(*base, *g), 4) << letter << " / " << donor;
  };
  check('i', 0x0131);  // gmaıl
  check('o', 0x00F6);  // döviz
  check('a', 0x00E0);  // gmàil / yàhoo
  check('u', 0x00FA);  // perú
}

TEST(PaperFont, RejectsNonPositiveScale) {
  PaperFontConfig config;
  config.scale = 0.0;
  EXPECT_THROW(make_paper_font(config), std::invalid_argument);
}

// --- FreeTypeFont ----------------------------------------------------

TEST(FreeType, SystemFontWorksWhenAvailable) {
  const auto font = FreeTypeFont::open_system_font();
  if (!freetype_available() || font == nullptr) {
    GTEST_SKIP() << "no FreeType or no system font";
  }
  const auto a = font->glyph('a');
  ASSERT_TRUE(a.has_value());
  EXPECT_GT(a->popcount(), 10);
  EXPECT_GT(font->coverage().size(), 500u);
  // An unassigned code point has no glyph.
  EXPECT_FALSE(font->glyph(0x0378).has_value());
}

TEST(FreeType, GlyphsAreDeterministic) {
  const auto font = FreeTypeFont::open_system_font();
  if (font == nullptr) GTEST_SKIP();
  EXPECT_EQ(font->glyph('g'), font->glyph('g'));
}

TEST(FreeType, ThrowsOnMissingFile) {
  if (!freetype_available()) GTEST_SKIP();
  EXPECT_THROW(FreeTypeFont{"/nonexistent/font.ttf"}, std::runtime_error);
}

}  // namespace
}  // namespace sham::font
