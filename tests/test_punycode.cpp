#include <gtest/gtest.h>

#include "idna/punycode.hpp"
#include "util/rng.hpp"

namespace sham::idna {
namespace {

using unicode::U32String;

struct Rfc3492Vector {
  const char* name;
  U32String unicode;
  const char* encoded;
};

// Official sample strings from RFC 3492 section 7.1 (subset) plus the
// paper's own example (阿里巴巴 -> tsta8290bfzd, Section 2.1).
const Rfc3492Vector kVectors[] = {
    {"Arabic (Egyptian)",
     {0x0644, 0x064A, 0x0647, 0x0645, 0x0627, 0x0628, 0x062A, 0x0643, 0x0644,
      0x0645, 0x0648, 0x0634, 0x0639, 0x0631, 0x0628, 0x064A, 0x061F},
     "egbpdaj6bu4bxfgehfvwxn"},
    {"Chinese (simplified)",
     {0x4ED6, 0x4EEC, 0x4E3A, 0x4EC0, 0x4E48, 0x4E0D, 0x8BF4, 0x4E2D, 0x6587},
     "ihqwcrb4cv8a8dqg056pqjye"},
    {"Czech",
     {0x0050, 0x0072, 0x006F, 0x010D, 0x0070, 0x0072, 0x006F, 0x0073, 0x0074,
      0x011B, 0x006E, 0x0065, 0x006D, 0x006C, 0x0075, 0x0076, 0x00ED, 0x010D,
      0x0065, 0x0073, 0x006B, 0x0079},
     "Proprostnemluvesky-uyb24dma41a"},
    {"Japanese (kanji+kana)",
     {0x306A, 0x305C, 0x307F, 0x3093, 0x306A, 0x65E5, 0x672C, 0x8A9E, 0x3092,
      0x8A71, 0x3057, 0x3066, 0x304F, 0x308C, 0x306A, 0x3044, 0x306E, 0x304B},
     "n8jok5ay5dzabd5bym9f0cm5685rrjetr6pdxa"},
    {"Russian (Cyrillic)",
     {0x043F, 0x043E, 0x0447, 0x0435, 0x043C, 0x0443, 0x0436, 0x0435, 0x043E,
      0x043D, 0x0438, 0x043D, 0x0435, 0x0433, 0x043E, 0x0432, 0x043E, 0x0440,
      0x044F, 0x0442, 0x043F, 0x043E, 0x0440, 0x0443, 0x0441, 0x0441, 0x043A,
      0x0438},
     "b1abfaaepdrnnbgefbadotcwatmq2g4l"},
    {"Paper example: alibaba",
     {0x963F, 0x91CC, 0x5DF4, 0x5DF4},
     "tsta8290bfzd"},
    {"Mixed: Pref=mit",
     {0x0050, 0x0072, 0x0065, 0x0066, 0x003D, 0x006D, 0x0069, 0x0074},
     "Pref=mit-"},  // all-basic input keeps trailing delimiter
};

class PunycodeVectors : public ::testing::TestWithParam<Rfc3492Vector> {};

TEST_P(PunycodeVectors, EncodeMatches) {
  const auto& v = GetParam();
  EXPECT_EQ(punycode_encode(v.unicode), v.encoded) << v.name;
}

TEST_P(PunycodeVectors, DecodeMatches) {
  const auto& v = GetParam();
  const auto decoded = punycode_decode(v.encoded);
  ASSERT_TRUE(decoded.has_value()) << v.name;
  EXPECT_EQ(*decoded, v.unicode) << v.name;
}

INSTANTIATE_TEST_SUITE_P(Rfc3492, PunycodeVectors, ::testing::ValuesIn(kVectors));

TEST(Punycode, EmptyInput) {
  EXPECT_EQ(punycode_encode({}), "");
  const auto d = punycode_decode("");
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->empty());
}

TEST(Punycode, AllBasic) {
  const U32String in{'a', 'b', 'c'};
  EXPECT_EQ(punycode_encode(in), "abc-");
  const auto d = punycode_decode("abc-");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, in);
}

TEST(Punycode, SingleNonAscii) {
  // "ü" alone.
  EXPECT_EQ(punycode_encode(U32String{0xFC}), "tda");
  const auto d = punycode_decode("tda");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, U32String{0xFC});
}

TEST(Punycode, DecodeRejectsBadDigit) {
  EXPECT_FALSE(punycode_decode("ab!").has_value());
  EXPECT_FALSE(punycode_decode("\x80").has_value());
}

TEST(Punycode, DecodeRejectsOverflow) {
  EXPECT_FALSE(punycode_decode("99999999999999999999999999").has_value());
}

TEST(Punycode, EncodeRejectsSurrogate) {
  EXPECT_THROW(punycode_encode(U32String{0xD800}), std::invalid_argument);
}

TEST(Punycode, CaseInsensitiveDigitsOnDecode) {
  const auto lower = punycode_decode("tda");
  const auto upper = punycode_decode("TDA");
  ASSERT_TRUE(lower.has_value());
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(*lower, *upper);
}

// Property: encode/decode round-trips on random scalar strings.
class PunycodeRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PunycodeRoundtrip, RandomLabels) {
  util::Rng rng{GetParam()};
  for (int iter = 0; iter < 300; ++iter) {
    U32String label;
    const int n = 1 + static_cast<int>(rng.below(24));
    for (int i = 0; i < n; ++i) {
      unicode::CodePoint cp;
      if (rng.bernoulli(0.5)) {
        cp = 'a' + static_cast<unicode::CodePoint>(rng.below(26));
      } else {
        do {
          cp = static_cast<unicode::CodePoint>(rng.below(0xFFFF));
        } while (!unicode::is_scalar_value(cp));
      }
      label.push_back(cp);
    }
    const auto encoded = punycode_encode(label);
    // The delta digits (after the last delimiter) are always LDH; basic
    // input code points are copied literally before it.
    const auto last_dash = encoded.rfind('-');
    for (std::size_t i = last_dash == std::string::npos ? 0 : last_dash + 1;
         i < encoded.size(); ++i) {
      EXPECT_TRUE(unicode::is_ldh(static_cast<unsigned char>(encoded[i])));
    }
    const auto decoded = punycode_decode(encoded);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, label);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PunycodeRoundtrip,
                         ::testing::Values(10, 11, 12, 13, 14, 15));

}  // namespace
}  // namespace sham::idna
