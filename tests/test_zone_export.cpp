// scenario_to_zone: the registry-zone rendering of a generated world.
#include <gtest/gtest.h>

#include <unordered_map>

#include "internet/scenario.hpp"
#include "measure/environment.hpp"

namespace sham::internet {
namespace {

const measure::Environment& env() {
  static const auto instance = [] {
    measure::EnvironmentConfig config;
    config.font_scale = 0.1;
    return measure::Environment::create(config);
  }();
  return instance;
}

Scenario small_scenario() {
  ScenarioConfig config;
  config.total_domains = 2'500;
  config.reference_count = 80;
  config.attack_scale = 0.02;
  return generate_scenario(env().db_union, config);
}

TEST(ZoneExport, RecordsMirrorWorldState) {
  const auto s = small_scenario();
  const auto zone = scenario_to_zone(s, 2);

  std::unordered_map<std::string, int> ns_count;
  std::unordered_map<std::string, int> a_count;
  std::unordered_map<std::string, int> mx_count;
  for (const auto& r : zone.records) {
    switch (r.type) {
      case dns::RecordType::kNs: ns_count[r.owner.str()]++; break;
      case dns::RecordType::kA: a_count[r.owner.str()]++; break;
      case dns::RecordType::kMx: mx_count[r.owner.str()]++; break;
      default: break;
    }
  }
  std::size_t checked = 0;
  for (const auto& attack : s.attacks) {
    const auto name = attack.ace + ".com";
    const auto* host = s.world.lookup(dns::DomainName::parse_or_throw(name));
    ASSERT_NE(host, nullptr);
    EXPECT_EQ(ns_count[name] > 0, host->has_ns) << name;
    EXPECT_EQ(a_count[name] > 0, host->has_ns && host->has_a) << name;
    if (!host->has_ns) {
      EXPECT_EQ(a_count[name], 0) << name;  // no delegation, no glue
    }
    ++checked;
  }
  EXPECT_GT(checked, 20u);
}

TEST(ZoneExport, MxOnlyForMailHosts) {
  const auto s = small_scenario();
  const auto zone = scenario_to_zone(s, 2);
  for (const auto& r : zone.records) {
    if (r.type != dns::RecordType::kMx) continue;
    const auto* host = s.world.lookup(r.owner);
    ASSERT_NE(host, nullptr) << r.owner.str();
    EXPECT_TRUE(host->has_mx) << r.owner.str();
    EXPECT_EQ(r.priority, 10);
  }
}

TEST(ZoneExport, ParkingNsSurvivesSerialization) {
  // Zone-level NS data alone is enough for NS-based parking detection.
  const auto s = small_scenario();
  const auto zone = scenario_to_zone(s, 2);
  const auto text = dns::serialize_zone(zone);
  const auto parsed = dns::parse_zone(text);
  const auto& parking = WebClassifier::parking_nameservers();
  std::size_t parked_delegations = 0;
  for (const auto& r : parsed.records) {
    if (r.type != dns::RecordType::kNs) continue;
    if (std::find(parking.begin(), parking.end(), r.target) != parking.end()) {
      ++parked_delegations;
    }
  }
  EXPECT_GT(parked_delegations, 0u);
}

TEST(ZoneExport, DeterministicAddresses) {
  const auto s = small_scenario();
  const auto z1 = scenario_to_zone(s, 0);
  const auto z2 = scenario_to_zone(s, 0);
  ASSERT_EQ(z1.records.size(), z2.records.size());
  for (std::size_t i = 0; i < z1.records.size(); ++i) {
    EXPECT_EQ(z1.records[i].rdata_str(), z2.records[i].rdata_str());
  }
}

TEST(ZoneExport, OriginAndTtl) {
  const auto s = small_scenario();
  const auto zone = scenario_to_zone(s, 0);
  EXPECT_EQ(zone.origin.str(), "com");
  EXPECT_EQ(zone.default_ttl, 172800u);
  for (const auto& r : zone.records) {
    EXPECT_EQ(r.owner.tld(), "com");
  }
}

}  // namespace
}  // namespace sham::internet
