#include <gtest/gtest.h>

#include "homoglyph/homoglyph_db.hpp"

namespace sham::homoglyph {
namespace {

using unicode::CodePoint;
using unicode::U32String;

simchar::SimCharDb sim_db() {
  // a~à, o~ö, o~Greek ο (also in UC: "both" provenance), plus a pair of
  // non-Latin homoglyphs.
  return simchar::SimCharDb{{
      {'a', 0x00E0, 2},
      {'o', 0x00F6, 3},
      {'o', 0x03BF, 1},
      {0x4E8C, 0x30CB, 2},
  }};
}

HomoglyphDb make_db(DbConfig config = {}) {
  return HomoglyphDb{sim_db(), unicode::ConfusablesDb::embedded(), config};
}

TEST(HomoglyphDb, UnionContainsBothSources) {
  const auto db = make_db();
  EXPECT_TRUE(db.are_homoglyphs('a', 0x00E0));   // SimChar only
  EXPECT_TRUE(db.are_homoglyphs('a', 0x0430));   // UC only (Cyrillic а)
  EXPECT_TRUE(db.are_homoglyphs('o', 0x03BF));   // both
}

TEST(HomoglyphDb, ProvenanceTracking) {
  const auto db = make_db();
  EXPECT_EQ(db.source_of('a', 0x00E0), Source::kSimChar);
  EXPECT_EQ(db.source_of('a', 0x0430), Source::kUc);
  EXPECT_EQ(db.source_of('o', 0x03BF), Source::kBoth);
  EXPECT_FALSE(db.source_of('a', 'b').has_value());
  EXPECT_FALSE(db.source_of('a', 'a').has_value());
}

TEST(HomoglyphDb, SymmetricLookup) {
  const auto db = make_db();
  EXPECT_TRUE(db.are_homoglyphs(0x00E0, 'a'));
  EXPECT_EQ(db.source_of(0x0430, 'a'), Source::kUc);
}

TEST(HomoglyphDb, UcOnlyConfig) {
  DbConfig config;
  config.use_simchar = false;
  const auto db = make_db(config);
  EXPECT_FALSE(db.are_homoglyphs('a', 0x00E0));
  EXPECT_TRUE(db.are_homoglyphs('a', 0x0430));
}

TEST(HomoglyphDb, SimOnlyConfig) {
  DbConfig config;
  config.use_uc = false;
  const auto db = make_db(config);
  EXPECT_TRUE(db.are_homoglyphs('a', 0x00E0));
  EXPECT_FALSE(db.are_homoglyphs('a', 0x0430));
}

TEST(HomoglyphDb, IdnaFilterDropsNonPvalidUcPairs) {
  const auto db = make_db();  // idna_only = true
  // Fullwidth ａ is in UC but NFKC-unstable, hence not IDNA-permitted.
  EXPECT_FALSE(db.are_homoglyphs(0xFF41, 'a'));

  DbConfig config;
  config.idna_only = false;
  const auto db_all = make_db(config);
  EXPECT_TRUE(db_all.are_homoglyphs(0xFF41, 'a'));
}

TEST(HomoglyphDb, PairCountsBySource) {
  const auto db = make_db();
  EXPECT_EQ(db.pair_count(),
            db.pair_count(Source::kUc) + db.pair_count(Source::kSimChar) -
                db.pair_count(Source::kBoth));
  EXPECT_GE(db.pair_count(Source::kSimChar), 4u);
  EXPECT_GT(db.pair_count(Source::kUc), 100u);
}

TEST(HomoglyphDb, HomoglyphsOfSortedUnique) {
  const auto db = make_db();
  const auto hs = db.homoglyphs_of('o');
  EXPECT_GE(hs.size(), 3u);  // ö, Greek ο, Cyrillic о, Armenian օ, ...
  for (std::size_t i = 1; i < hs.size(); ++i) EXPECT_LT(hs[i - 1], hs[i]);
  EXPECT_TRUE(db.homoglyphs_of(0x2603).empty());  // snowman: not a homoglyph
}

TEST(HomoglyphDb, RevertToAscii) {
  const auto db = make_db();
  // "gооgle" with Cyrillic о (UC pair) -> "google".
  const U32String idn{'g', 0x043E, 0x043E, 'g', 'l', 'e'};
  const auto reverted = db.revert_to_ascii(idn);
  ASSERT_TRUE(reverted.has_value());
  const U32String want{'g', 'o', 'o', 'g', 'l', 'e'};
  EXPECT_EQ(*reverted, want);
}

TEST(HomoglyphDb, RevertMixedSources) {
  const auto db = make_db();
  // à (SimChar) + Cyrillic о (UC) in one label.
  const U32String idn{0x00E0, 0x043E};
  const auto reverted = db.revert_to_ascii(idn);
  ASSERT_TRUE(reverted.has_value());
  const U32String want{'a', 'o'};
  EXPECT_EQ(*reverted, want);
}

TEST(HomoglyphDb, RevertFailsWithoutLdhHomoglyph) {
  const auto db = make_db();
  // 二 has a Katakana homoglyph but no LDH one.
  const U32String idn{'a', 0x4E8C};
  EXPECT_FALSE(db.revert_to_ascii(idn).has_value());
}

TEST(HomoglyphDb, RevertKeepsAsciiUntouched) {
  const auto db = make_db();
  const U32String plain{'x', 'y', '1', '-'};
  EXPECT_EQ(db.revert_to_ascii(plain), plain);
}

TEST(HomoglyphDb, SerializeParseRoundtrip) {
  const auto db = make_db();
  const auto text = db.serialize();
  const auto reloaded = HomoglyphDb::parse(text);
  EXPECT_EQ(reloaded.pair_count(), db.pair_count());
  EXPECT_EQ(reloaded.pair_count(Source::kUc), db.pair_count(Source::kUc));
  EXPECT_EQ(reloaded.pair_count(Source::kSimChar), db.pair_count(Source::kSimChar));
  EXPECT_EQ(reloaded.pair_count(Source::kBoth), db.pair_count(Source::kBoth));
  EXPECT_EQ(reloaded.source_of('o', 0x03BF), Source::kBoth);
  EXPECT_EQ(reloaded.source_of('a', 0x00E0), Source::kSimChar);
  EXPECT_EQ(reloaded.homoglyphs_of('o'), db.homoglyphs_of('o'));
}

TEST(HomoglyphDb, SerializeIsDeterministic) {
  const auto db = make_db();
  EXPECT_EQ(db.serialize(), db.serialize());
}

TEST(HomoglyphDb, ParseRejectsGarbage) {
  EXPECT_THROW(HomoglyphDb::parse("U+0061 U+0430\n"), std::invalid_argument);
  EXPECT_THROW(HomoglyphDb::parse("U+0061 U+0430 Bogus\n"), std::invalid_argument);
  EXPECT_THROW(HomoglyphDb::parse("zz U+0430 UC\n"), std::invalid_argument);
}

TEST(HomoglyphDb, ParseAcceptsCommentsAndBlankLines) {
  const auto db = HomoglyphDb::parse(
      "# portable homoglyph DB\n"
      "\n"
      "U+0061 U+0430 UC\n"
      "U+006F U+00F6 SimChar\n"
      "U+006F U+03BF both\n");
  EXPECT_EQ(db.pair_count(), 3u);
  EXPECT_EQ(db.source_of('o', 0x03BF), Source::kBoth);
}

// --- Confusable-closure canonical map ---------------------------------

TEST(HomoglyphDb, CanonicalEqualForEveryListedPair) {
  const auto db = make_db();
  // Pair members always share a component representative — the necessary
  // condition the skeleton index is built on.
  EXPECT_EQ(db.canonical('a'), db.canonical(0x00E0));
  EXPECT_EQ(db.canonical('a'), db.canonical(0x0430));
  EXPECT_EQ(db.canonical('o'), db.canonical(0x00F6));
  EXPECT_EQ(db.canonical('o'), db.canonical(0x03BF));
  EXPECT_EQ(db.canonical(0x4E8C), db.canonical(0x30CB));
}

TEST(HomoglyphDb, CanonicalIsComponentMinimum) {
  // Representative = smallest code point of the component, so Latin bases
  // canonicalize to themselves here.
  simchar::SimCharDb sim{{{'o', 0x043E, 0}, {0x043E, 0x0585, 1}}};
  DbConfig config;
  config.use_uc = false;
  const HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), config};
  EXPECT_EQ(db.canonical('o'), static_cast<CodePoint>('o'));
  EXPECT_EQ(db.canonical(0x043E), static_cast<CodePoint>('o'));
  EXPECT_EQ(db.canonical(0x0585), static_cast<CodePoint>('o'));
  EXPECT_EQ(db.canonical_class_count(), 1u);
}

TEST(HomoglyphDb, CanonicalClosureIsOverApproximate) {
  // Non-transitive triple: a~b and b~c listed, {a, c} NOT listed. The
  // closure still puts all three in one component — canonical equality
  // must never be read as "is a pair".
  simchar::SimCharDb sim{{{'a', 'b', 1}, {'b', 'c', 1}}};
  DbConfig config;
  config.use_uc = false;
  const HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), config};
  EXPECT_EQ(db.canonical('a'), db.canonical('c'));
  EXPECT_FALSE(db.are_homoglyphs('a', 'c'));
}

TEST(HomoglyphDb, CanonicalIdentityOutsidePairGraph) {
  const auto db = make_db();
  EXPECT_EQ(db.canonical('z'), static_cast<CodePoint>('z'));      // Latin-1 fast path
  EXPECT_EQ(db.canonical(0x2603), 0x2603u);                       // map path (snowman)
  EXPECT_EQ(db.canonical(0x10FFFF), 0x10FFFFu);
}

TEST(HomoglyphDb, CanonicalDenseFastPathAgreesWithSelf) {
  // Every Latin-1 code point answers identically whether it went through
  // the flat array or would have gone through the map.
  const auto db = make_db();
  for (CodePoint cp = 0; cp < 0x100; ++cp) {
    const auto rep = db.canonical(cp);
    EXPECT_EQ(db.canonical(rep), rep) << "cp=" << cp;  // idempotent
    if (rep != cp) {
      // In-component: some listed neighbour chain connects cp to rep.
      EXPECT_FALSE(db.homoglyphs_of(cp).empty()) << "cp=" << cp;
    }
  }
}

TEST(HomoglyphDb, CanonicalSurvivesSerializeParse) {
  const auto db = make_db();
  const auto reloaded = HomoglyphDb::parse(db.serialize());
  EXPECT_EQ(reloaded.canonical_class_count(), db.canonical_class_count());
  EXPECT_EQ(reloaded.canonical('a'), db.canonical('a'));
  EXPECT_EQ(reloaded.canonical(0x0430), db.canonical(0x0430));
  EXPECT_EQ(reloaded.canonical(0x03BF), db.canonical(0x03BF));
}

TEST(HomoglyphDb, EmptyDbCanonicalIsIdentity) {
  HomoglyphDb db;
  EXPECT_EQ(db.canonical('a'), static_cast<CodePoint>('a'));
  EXPECT_EQ(db.canonical(0x0430), 0x0430u);
  EXPECT_EQ(db.canonical_class_count(), 0u);
}

TEST(HomoglyphDb, EmptyDb) {
  HomoglyphDb db;
  EXPECT_EQ(db.pair_count(), 0u);
  EXPECT_FALSE(db.are_homoglyphs('a', 0x0430));
  const U32String idn{0x0430};
  EXPECT_FALSE(db.revert_to_ascii(idn).has_value());
}

// --- Generation counter & incremental updates --------------------------

HomoglyphDb sim_only_db(std::vector<simchar::HomoglyphPair> pairs) {
  DbConfig config;
  config.use_uc = false;
  return HomoglyphDb{simchar::SimCharDb{std::move(pairs)},
                     unicode::ConfusablesDb::embedded(), config};
}

TEST(HomoglyphDbUpdate, GenerationBumpsOnlyOnEffectiveChange) {
  auto db = sim_only_db({{'a', 'b', 1}});
  EXPECT_EQ(db.generation(), 0u);

  // Brand-new pair: bump.
  const simchar::HomoglyphPair fresh[] = {{'x', 'y', 1}};
  auto result = db.apply_update(fresh);
  EXPECT_EQ(result.pairs_added, 1u);
  EXPECT_EQ(db.generation(), 1u);

  // Exact duplicate (same pair, same source): no bump.
  result = db.apply_update(fresh);
  EXPECT_EQ(result.pairs_added, 0u);
  EXPECT_EQ(result.sources_widened, 0u);
  EXPECT_TRUE(result.canonical_changed.empty());
  EXPECT_EQ(db.generation(), 1u);

  // Same pair from the other source: provenance widens to kBoth — that is
  // an observable change, so the generation bumps.
  result = db.apply_update(fresh, Source::kUc);
  EXPECT_EQ(result.pairs_added, 0u);
  EXPECT_EQ(result.sources_widened, 1u);
  EXPECT_TRUE(result.canonical_changed.empty());
  EXPECT_EQ(db.generation(), 2u);
  EXPECT_EQ(db.source_of('x', 'y'), Source::kBoth);
}

TEST(HomoglyphDbUpdate, IdnaFilterAppliesToUpdatesToo) {
  auto db = sim_only_db({{'a', 'b', 1}});
  // Fullwidth ａ is NFKC-unstable, hence not IDNA-permitted; the pair must
  // be dropped by the same filter the constructor applies, with no bump.
  const simchar::HomoglyphPair rejected[] = {{'a', 0xFF41, 1}};
  const auto result = db.apply_update(rejected);
  EXPECT_EQ(result.pairs_added, 0u);
  EXPECT_EQ(db.generation(), 0u);
  EXPECT_FALSE(db.are_homoglyphs('a', 0xFF41));
}

TEST(HomoglyphDbUpdate, MergeReportsLosingComponentMembers) {
  // {a, b} and {x, y} are separate components; bridging b~x merges them and
  // moves the representative of every member of the losing ({x, y}, whose
  // rep 'x' > 'a') component.
  auto db = sim_only_db({{'a', 'b', 1}, {'x', 'y', 1}});
  EXPECT_EQ(db.canonical_class_count(), 2u);

  const simchar::HomoglyphPair bridge[] = {{'b', 'x', 1}};
  const auto result = db.apply_update(bridge);
  EXPECT_EQ(result.pairs_added, 1u);
  const std::vector<CodePoint> want{'x', 'y'};
  EXPECT_EQ(result.canonical_changed, want);
  EXPECT_EQ(db.canonical_class_count(), 1u);
  for (const CodePoint cp : {'a', 'b', 'x', 'y'}) {
    EXPECT_EQ(db.canonical(cp), static_cast<CodePoint>('a')) << cp;
  }
}

TEST(HomoglyphDbUpdate, WithinComponentPairMovesNoCanonical) {
  // a~b~c already one component; adding the chord {a, c} lists a new pair
  // but no representative moves.
  auto db = sim_only_db({{'a', 'b', 1}, {'b', 'c', 1}});
  const simchar::HomoglyphPair chord[] = {{'a', 'c', 2}};
  const auto result = db.apply_update(chord);
  EXPECT_EQ(result.pairs_added, 1u);
  EXPECT_TRUE(result.canonical_changed.empty());
  EXPECT_EQ(db.generation(), 1u);
  EXPECT_TRUE(db.are_homoglyphs('a', 'c'));
  EXPECT_EQ(db.canonical_class_count(), 1u);
}

TEST(HomoglyphDbUpdate, ChangesSinceAnswersKnownGenerationsOnly) {
  auto db = sim_only_db({{'a', 'b', 1}, {'x', 'y', 1}});
  // Fresh database: nothing changed since "now".
  ASSERT_TRUE(db.canonical_changes_since(0).has_value());
  EXPECT_TRUE(db.canonical_changes_since(0)->empty());
  // The future is unanswerable.
  EXPECT_FALSE(db.canonical_changes_since(1).has_value());

  const simchar::HomoglyphPair bridge[] = {{'b', 'x', 1}};
  db.apply_update(bridge);                       // gen 1: {x, y} move
  const simchar::HomoglyphPair chord[] = {{'a', 'y', 1}};
  db.apply_update(chord);                        // gen 2: nothing moves

  const std::vector<CodePoint> moved{'x', 'y'};
  EXPECT_EQ(db.canonical_changes_since(0), moved);   // union of gens 1..2
  EXPECT_EQ(db.canonical_changes_since(1), std::vector<CodePoint>{});
  EXPECT_EQ(db.canonical_changes_since(2), std::vector<CodePoint>{});
  EXPECT_FALSE(db.canonical_changes_since(3).has_value());
}

TEST(HomoglyphDbUpdate, IncrementalCanonicalMatchesFullRebuild) {
  auto db = sim_only_db({{'a', 'b', 1}, {'c', 'd', 1}, {'x', 'y', 1}});
  const simchar::HomoglyphPair updates[] = {
      {'b', 'c', 1},          // merges {a,b} with {c,d}
      {'d', 'x', 2},          // merges the result with {x,y}
      {'a', 0x0430, 1},       // grows the component with a new code point
  };
  for (const auto& pair : updates) {
    const simchar::HomoglyphPair one[] = {pair};
    db.apply_update(one);
  }
  // A full rebuild from the serialized pair list must agree with the
  // incrementally maintained closure on every touched code point.
  const auto rebuilt = HomoglyphDb::parse(db.serialize());
  EXPECT_EQ(rebuilt.canonical_class_count(), db.canonical_class_count());
  EXPECT_EQ(rebuilt.pair_count(), db.pair_count());
  for (const CodePoint cp :
       {CodePoint{'a'}, CodePoint{'b'}, CodePoint{'c'}, CodePoint{'d'},
        CodePoint{'x'}, CodePoint{'y'}, CodePoint{0x0430}, CodePoint{'z'}}) {
    EXPECT_EQ(rebuilt.canonical(cp), db.canonical(cp)) << cp;
  }
  // update_with_new_characters is the same machinery fed by a SimChar db.
  auto other = sim_only_db({{'a', 'b', 1}});
  const auto result = other.update_with_new_characters(
      simchar::SimCharDb{{{'a', 'b', 1}, {'p', 'q', 3}}});
  EXPECT_EQ(result.pairs_added, 1u);  // {a,b} already listed
  EXPECT_EQ(other.generation(), 1u);
  EXPECT_TRUE(other.are_homoglyphs('p', 'q'));
}

}  // namespace
}  // namespace sham::homoglyph
