#include <gtest/gtest.h>

#include "measure/charset_experiments.hpp"
#include "measure/report.hpp"
#include "measure/wild_experiments.hpp"

namespace sham::measure {
namespace {

const Environment& env() {
  static const auto instance = [] {
    EnvironmentConfig config;
    config.font_scale = 0.1;
    return Environment::create(config);
  }();
  return instance;
}

const WildContext& ctx() {
  static const auto instance = [] {
    internet::ScenarioConfig config;
    // IDN budget = 0.67% of 150,000 ≈ 1,005: room for ~330 attacks plus a
    // benign-IDN majority (as in the paper, where attacks are a small
    // fraction of registered IDNs).
    config.total_domains = 150'000;
    config.reference_count = 300;
    config.attack_scale = 0.1;  // ~330 attacks
    return make_wild_context(env(), config);
  }();
  return instance;
}

// --- Environment -------------------------------------------------------

TEST(EnvironmentTest, BuildsAllThreeDbs) {
  EXPECT_GT(env().simchar.pair_count(), 100u);
  EXPECT_GT(env().db_uc.pair_count(), 0u);
  EXPECT_GT(env().db_sim.pair_count(), 0u);
  EXPECT_GE(env().db_union.pair_count(), env().db_sim.pair_count());
  EXPECT_GE(env().db_union.pair_count(), env().db_uc.pair_count());
}

// --- Table 1 / 2 -------------------------------------------------------

TEST(Table1, SetRelationsHold) {
  const auto s = charset_sizes(env());
  // Figure 3 relations: UC ∩ IDNA is a small part of UC; SimChar is built
  // inside IDNA; the union is at least each part.
  EXPECT_LT(s.uc_idna_chars, s.uc_chars);
  EXPECT_GT(s.uc_idna_chars, 0u);
  EXPECT_GT(s.simchar_chars, s.uc_idna_chars);  // paper: 12,686 vs 980
  EXPECT_GE(s.union_chars, s.simchar_chars);
  EXPECT_GE(s.union_pairs, s.simchar_pairs);
  EXPECT_LT(s.simchar_uc_chars, s.simchar_chars / 4);  // small overlap
  EXPECT_GT(s.simchar_uc_chars, 0u);                   // but nonempty
  EXPECT_GT(s.idna_chars, 40'000u);
}

TEST(Table2, FontIntersections) {
  const auto s = charset_sizes(env());
  EXPECT_LE(s.idna_font_chars, s.font_glyphs);
  EXPECT_GT(s.idna_font_chars, 1000u);
  EXPECT_LE(s.uc_font_chars, s.uc_chars);
  // SimChar is built from IDNA ∩ font, so its characters are a subset.
  EXPECT_LE(s.simchar_chars, s.idna_font_chars);
}

// --- Table 3 -----------------------------------------------------------

TEST(Table3, MatchesPaperCounts) {
  const auto rows = latin_homoglyph_counts(env());
  ASSERT_EQ(rows.size(), 26u);
  // 'o' leads with 40, 'v' trails with 1 (Table 3).
  EXPECT_EQ(rows.front().letter, 'o');
  EXPECT_EQ(rows.front().simchar_count, 40u);
  std::size_t total_sim = 0;
  std::size_t total_uc = 0;
  for (const auto& row : rows) {
    total_sim += row.simchar_count;
    total_uc += row.uc_idna_count;
  }
  EXPECT_EQ(total_sim, 351u);        // paper total
  EXPECT_GT(total_sim, total_uc);    // SimChar ≫ UC ∩ IDNA (351 vs 141)
  EXPECT_GT(total_uc, 20u);
}

// --- Table 4 -----------------------------------------------------------

TEST(Table4, HangulDominatesSimChar) {
  const auto blocks = top_blocks_simchar(env());
  ASSERT_GE(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].block, "Hangul Syllables");
  // Hangul clearly leads (paper: 8,787 vs 395; the margin grows with
  // font_scale — this environment runs at 0.1).
  EXPECT_GT(blocks[0].count, blocks[1].count);
}

TEST(Table4, UcIdnaTopBlocksArePlausible) {
  const auto blocks = top_blocks_uc_idna(env());
  ASSERT_GE(blocks.size(), 3u);
  // CJK leads the UC ∩ IDNA breakdown (paper: 91).
  EXPECT_EQ(blocks[0].block, "CJK Unified Ideographs");
}

// --- Figure 6 ----------------------------------------------------------

TEST(Figure6, LadderOfE) {
  const auto rungs = delta_ladder(env(), 'e', 6);
  ASSERT_EQ(rungs.size(), 7u);
  std::size_t total = 0;
  for (const auto& rung : rungs) total += rung.count;
  EXPECT_GT(total, 10u);  // 'e' has 26 planted ≤4 plus ladder at 5-6
  for (const auto& rung : rungs) {
    EXPECT_LE(rung.examples.size(), 4u);
  }
  EXPECT_THROW(delta_ladder(env(), '!', 6), std::invalid_argument);
}

// --- Figure 9 ----------------------------------------------------------

TEST(Figure9, ConfusabilityDropsAcrossThreshold) {
  const auto result = threshold_study(env());
  EXPECT_GT(result.workers_kept, 0u);
  EXPECT_GT(result.effective_responses, 100u);
  const auto& d = result.per_delta;
  // Paper: ∆=4 mean 3.57 / median 4; ∆=5 mean 2.57 / median 2-3.
  EXPECT_GT(d[0].mean, 4.4);
  EXPECT_NEAR(d[4].mean, 3.57, 0.45);
  EXPECT_NEAR(d[5].mean, 2.57, 0.45);
  EXPECT_GT(d[4].mean, d[5].mean);
  EXPECT_LT(d[8].mean, 2.0);
  // Overall decreasing trend.
  EXPECT_GT(d[0].mean, d[4].mean);
  EXPECT_GT(d[5].mean, d[8].mean);
  // Dummies are "very distinct".
  EXPECT_LT(result.dummies.mean, 1.6);
}

// --- Figure 10 ---------------------------------------------------------

TEST(Figure10, SimCharMoreConfusableThanUc) {
  const auto result = confusability_study(env());
  EXPECT_GT(result.workers_kept, 0u);
  ASSERT_GT(result.simchar.n, 0u);
  ASSERT_GT(result.uc.n, 0u);
  ASSERT_GT(result.random.n, 0u);
  // Paper: SimChar mean > 4 > UC mean; both medians 4; random ~1.
  EXPECT_GT(result.simchar.mean, result.uc.mean);
  EXPECT_GT(result.uc.mean, result.random.mean + 1.0);
  EXPECT_GT(result.simchar.mean, 3.9);
  EXPECT_LT(result.random.mean, 1.6);
  EXPECT_GE(result.simchar.median, 4.0);
}

// --- Word-context extension (Section 7.1 future work) -------------------

TEST(WordContext, LongerLabelsMoreConfusable) {
  const auto result = word_context_study(env());
  EXPECT_GT(result.workers_kept, 0u);
  ASSERT_GT(result.short_labels.n, 0u);
  ASSERT_GT(result.long_labels.n, 0u);
  EXPECT_GT(result.long_labels.mean, result.short_labels.mean);
}

// --- Tables 6-14 -------------------------------------------------------

TEST(Table6, DatasetShape) {
  const auto rows = dataset_statistics(ctx().scenario);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2].source, "Total (union)");
  EXPECT_EQ(rows[2].domains, 150'000u);
  EXPECT_GE(rows[2].domains, rows[0].domains);
  EXPECT_GE(rows[2].domains, rows[1].domains);
  // IDN fraction ~0.67% (paper Table 6).
  const double fraction = static_cast<double>(rows[2].idns) / rows[2].domains;
  EXPECT_NEAR(fraction, 0.0067, 0.004);
}

TEST(Table7, ChineseLeadsLanguages) {
  const auto rows = idn_languages(ctx(), 5);
  ASSERT_GE(rows.size(), 3u);
  EXPECT_EQ(rows[0].language, "Chinese");
  EXPECT_GT(rows[0].fraction, 0.2);
}

TEST(Table8, UnionDetectsSeveralTimesUc) {
  const auto counts = detection_counts(ctx());
  EXPECT_GT(counts.uc, 0u);
  EXPECT_GT(counts.simchar, counts.uc * 3);    // paper: 3,110 vs 436
  EXPECT_GE(counts.union_all, counts.simchar);
  EXPECT_GT(counts.union_all, counts.uc * 5);  // ≈8× in the paper
  // Ground truth: every planted attack is found (the DB generated them).
  EXPECT_EQ(counts.false_negatives, 0u);
  EXPECT_EQ(counts.true_positives, counts.planted);
}

TEST(Table9, TopTargetsShape) {
  const auto rows = top_targets(ctx(), 5);
  ASSERT_EQ(rows.size(), 5u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].homographs, rows[i].homographs);
  }
  // myetherwallet tops the paper's Table 9.
  EXPECT_EQ(rows[0].reference, "myetherwallet");
}

TEST(Table10, FunnelIsMonotone) {
  const auto f = port_scan_funnel(ctx());
  EXPECT_GE(f.detected, f.with_ns);
  EXPECT_GE(f.with_ns, f.with_a);
  EXPECT_GE(f.with_a, f.active);
  EXPECT_GE(f.open_80, f.open_both);
  EXPECT_GE(f.open_443, f.open_both);
  EXPECT_EQ(f.active, f.open_80 + f.open_443 - f.open_both);
  EXPECT_GT(f.active, 0u);
}

TEST(Table11, GmailPhishingTopsPassiveDns) {
  const auto rows = popular_active_idns(ctx(), 10);
  ASSERT_GE(rows.size(), 3u);
  EXPECT_EQ(rows[0].ace, "xn--gmal-nza");  // gmaıl
  EXPECT_EQ(rows[0].category, "Phishing");
  EXPECT_EQ(rows[0].resolutions, 615447u);
  EXPECT_TRUE(rows[0].mx_past);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].resolutions, rows[i].resolutions);
  }
}

TEST(Table12, ParkingLeadsClassification) {
  const auto rows = classify_active(ctx());
  ASSERT_GE(rows.size(), 4u);
  EXPECT_EQ(rows.back().category, "Total");
  // Parking and For sale lead (paper: 348 and 345 of 1,647).
  EXPECT_EQ(rows[0].category, "Domain parking");
  std::size_t sum = 0;
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) sum += rows[i].count;
  EXPECT_EQ(sum, rows.back().count);
}

TEST(Table13, RedirectBreakdown) {
  const auto rows = classify_redirects(ctx());
  ASSERT_GE(rows.size(), 3u);
  EXPECT_EQ(rows.back().category, "Total");
  // Brand protection > legitimate > malicious (paper: 178/125/35).
  EXPECT_EQ(rows[0].category, "Brand protection");
  EXPECT_GT(rows[0].count, 0u);
}

TEST(Table14, BlacklistCountsGrowWithDb) {
  const auto rows = blacklist_counts(ctx());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].db, "UC");
  EXPECT_EQ(rows[2].db, "UC + SimChar");
  EXPECT_GE(rows[2].hphosts, rows[0].hphosts);
  EXPECT_GE(rows[2].hphosts, rows[1].hphosts);
  EXPECT_GT(rows[2].hphosts, 0u);
  EXPECT_GE(rows[2].hphosts, rows[2].gsb);      // hpHosts is the largest feed
  EXPECT_GE(rows[2].gsb, rows[2].symantec);
}

TEST(Report, GeneratesAllSections) {
  ReportConfig config;
  config.environment.font_scale = 0.1;
  config.scenario.total_domains = 8'000;
  config.scenario.reference_count = 150;
  config.scenario.attack_scale = 0.03;
  config.include_perception = false;  // keep the test quick
  const auto report = generate_report(config);
  for (const char* section :
       {"Character sets", "Latin-letter homoglyphs", "Top Unicode blocks",
        "Datasets", "IDN languages", "Detection", "Top targets",
        "Liveness funnel", "Active-site classification", "Redirect purposes",
        "Blacklisted homographs", "Reverting malicious IDNs"}) {
    EXPECT_NE(report.find(section), std::string::npos) << section;
  }
  EXPECT_EQ(report.find("Figure 9"), std::string::npos);  // perception skipped
}

TEST(Report, DeterministicForConfig) {
  ReportConfig config;
  config.environment.font_scale = 0.05;
  config.scenario.total_domains = 3'000;
  config.scenario.reference_count = 60;
  config.scenario.attack_scale = 0.01;
  config.include_perception = false;
  EXPECT_EQ(generate_report(config), generate_report(config));
}

TEST(Section64, RevertAnalysisFindsNonPopularTargets) {
  const auto result = revert_analysis(env(), ctx(), 100);
  EXPECT_GT(result.malicious, 0u);
  EXPECT_GT(result.reverted, 0u);
  EXPECT_LE(result.reverted, result.malicious);
  EXPECT_LE(result.non_popular_targets, result.reverted);
  EXPECT_LE(result.examples.size(), 10u);
}

}  // namespace
}  // namespace sham::measure
