#include <gtest/gtest.h>

#include "unicode/confusables.hpp"
#include "unicode/idna_properties.hpp"

namespace sham::unicode {
namespace {

TEST(Confusables, EmbeddedHasClassicPairs) {
  const auto& db = ConfusablesDb::embedded();
  EXPECT_TRUE(db.confusable(0x0430, 'a'));  // Cyrillic а
  EXPECT_TRUE(db.confusable(0x043E, 'o'));  // Cyrillic о
  EXPECT_TRUE(db.confusable(0x03BF, 'o'));  // Greek ο
  EXPECT_TRUE(db.confusable(0x0131, 'i'));  // dotless ı (the gmaıl attack)
  EXPECT_FALSE(db.confusable('a', 'b'));
}

TEST(Confusables, ConfusableIsReflexive) {
  const auto& db = ConfusablesDb::embedded();
  EXPECT_TRUE(db.confusable('q', 'q'));
  EXPECT_TRUE(db.confusable(0x0430, 0x0430));
}

TEST(Confusables, TransitiveViaPrototype) {
  // Both Cyrillic о and Greek ο map to 'o': they are confusable with each
  // other through the shared skeleton.
  const auto& db = ConfusablesDb::embedded();
  EXPECT_TRUE(db.confusable(0x043E, 0x03BF));
}

TEST(Confusables, SkeletonOfString) {
  const auto& db = ConfusablesDb::embedded();
  // "gооgle" with Cyrillic о -> "google".
  const U32String in{'g', 0x043E, 0x043E, 'g', 'l', 'e'};
  const U32String want{'g', 'o', 'o', 'g', 'l', 'e'};
  EXPECT_EQ(db.skeleton(in), want);
}

TEST(Confusables, MultiCharSkeleton) {
  const auto& db = ConfusablesDb::embedded();
  // ﬁ ligature expands to "fi".
  const auto skel = db.skeleton(U32String{0xFB01});
  const U32String want{'f', 'i'};
  EXPECT_EQ(skel, want);
}

TEST(Confusables, SkeletonIdentityForUnmapped) {
  const auto& db = ConfusablesDb::embedded();
  const U32String in{'q', '7', 0x4E00};
  EXPECT_EQ(db.skeleton(in), in);
  EXPECT_EQ(db.skeleton_of('q'), U32String{'q'});
}

TEST(Confusables, SingleCharPairsAreCanonical) {
  const auto& db = ConfusablesDb::embedded();
  const auto pairs = db.single_char_pairs();
  EXPECT_GT(pairs.size(), 200u);
  for (const auto& [a, b] : pairs) {
    EXPECT_NE(a, b);
  }
  // Sorted ascending by source.
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LE(pairs[i - 1].first, pairs[i].first);
  }
}

TEST(Confusables, AllCharactersIncludesBothSides) {
  const auto& db = ConfusablesDb::embedded();
  const auto chars = db.all_characters();
  EXPECT_TRUE(std::binary_search(chars.begin(), chars.end(), 0x0430u));
  EXPECT_TRUE(std::binary_search(chars.begin(), chars.end(),
                                 static_cast<CodePoint>('a')));
}

TEST(Confusables, UcContainsNonIdnaCharacters) {
  // The paper's Figure 3: UC is mostly outside the IDNA set (fullwidth
  // forms, ligatures, Kangxi radicals...).
  const auto& db = ConfusablesDb::embedded();
  std::size_t non_idna = 0;
  for (const auto cp : db.all_characters()) {
    if (!is_idna_permitted(cp)) ++non_idna;
  }
  EXPECT_GT(non_idna, 50u);
}

TEST(Confusables, ParseFormat) {
  const auto db = ConfusablesDb::parse(
      "# comment line\n"
      "\n"
      "0430 ; 0061 ; MA # CYRILLIC SMALL A\n"
      "FB01 ; 0066 0069 ; MA # fi ligature\n");
  EXPECT_EQ(db.entry_count(), 2u);
  EXPECT_TRUE(db.confusable(0x0430, 0x0061));
  const U32String fi{'f', 'i'};
  EXPECT_EQ(db.skeleton(U32String{0xFB01}), fi);
}

TEST(Confusables, ParseRejectsGarbage) {
  EXPECT_THROW(ConfusablesDb::parse("0430 0061\n"), std::invalid_argument);
  EXPECT_THROW(ConfusablesDb::parse("zzzz ; 0061 ;\n"), std::invalid_argument);
  EXPECT_THROW(ConfusablesDb::parse("0430 ;  ; MA\n"), std::invalid_argument);
}

TEST(Confusables, ParseTolleratesMissingTypeField) {
  const auto db = ConfusablesDb::parse("0455 ; 0073\n");
  EXPECT_TRUE(db.confusable(0x0455, 's'));
}

TEST(Confusables, SystematicMathAlphabets) {
  const auto& db = ConfusablesDb::embedded();
  EXPECT_TRUE(db.confusable(0x1D41A, 'a'));  // mathematical bold a
  EXPECT_TRUE(db.confusable(0x1D68A, 'a'));  // mathematical monospace a
  EXPECT_TRUE(db.confusable(0x1D7CE, '0'));  // mathematical bold zero
  // U+1D455 (italic h) is a hole in the math alphabet: unassigned, so the
  // generator must have skipped it.
  EXPECT_FALSE(db.contains(0x1D455));
  // Its neighbours exist.
  EXPECT_TRUE(db.confusable(0x1D454, 'g'));
  EXPECT_TRUE(db.confusable(0x1D456, 'i'));
}

TEST(Confusables, SystematicEnclosedAndFullwidth) {
  const auto& db = ConfusablesDb::embedded();
  EXPECT_TRUE(db.confusable(0x24D0, 'a'));  // circled a
  EXPECT_TRUE(db.confusable(0x24B6, 'a'));  // circled capital A
  EXPECT_TRUE(db.confusable(0xFF21, 'a'));  // fullwidth capital A
}

TEST(Confusables, RomanNumeralsExpandToLetterSequences) {
  const auto& db = ConfusablesDb::embedded();
  const U32String two = db.skeleton(U32String{0x2171});  // small roman two
  const U32String want{'i', 'i'};
  EXPECT_EQ(two, want);
  const U32String m = db.skeleton(U32String{0x216F});  // capital roman M
  EXPECT_EQ(m, U32String{'m'});
}

TEST(Confusables, ContainsLookup) {
  const auto& db = ConfusablesDb::embedded();
  EXPECT_TRUE(db.contains(0x0430));
  EXPECT_FALSE(db.contains('a'));  // prototypes are not sources
}

}  // namespace
}  // namespace sham::unicode
