#include <gtest/gtest.h>

#include "perception/crowd_study.hpp"

namespace sham::perception {
namespace {

TEST(ResponseModel, CalibratedToPaperMeans) {
  // The paper reports mean 3.57 at ∆ = 4 and 2.57 at ∆ = 5 (Section 4.1).
  EXPECT_NEAR(expected_score(4.0), 3.57, 0.05);
  EXPECT_NEAR(expected_score(5.0), 2.57, 0.05);
  // Identical glyphs read as "very confusing", far ones as "very distinct".
  EXPECT_GT(expected_score(0.0), 4.9);
  EXPECT_LT(expected_score(300.0), 1.01);
}

TEST(ResponseModel, MonotoneDecreasing) {
  for (int d = 0; d < 20; ++d) {
    EXPECT_GT(expected_score(d), expected_score(d + 1));
  }
}

TEST(ResponseModel, SampleStaysInScale) {
  util::Rng rng{1};
  WorkerProfile worker;
  for (int i = 0; i < 1000; ++i) {
    const int s = sample_response(static_cast<double>(i % 10), worker, {}, rng);
    EXPECT_GE(s, 1);
    EXPECT_LE(s, 5);
  }
}

TEST(ResponseModel, InattentiveWorkerIsUniform) {
  util::Rng rng{2};
  WorkerProfile worker;
  worker.attentive = false;
  int counts[6] = {};
  for (int i = 0; i < 5000; ++i) {
    ++counts[sample_response(0.0, worker, {}, rng)];
  }
  for (int s = 1; s <= 5; ++s) {
    EXPECT_NEAR(counts[s] / 5000.0, 0.2, 0.03);
  }
}

TEST(Summary, BasicStatistics) {
  const auto s = summarize_scores({1, 2, 3, 4, 5});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_EQ(s.histogram[0], 1u);
  EXPECT_EQ(s.histogram[4], 1u);
}

TEST(Summary, EmptyAndSingle) {
  EXPECT_EQ(summarize_scores({}).n, 0u);
  const auto s = summarize_scores({4});
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 4.0);
  EXPECT_DOUBLE_EQ(s.whisker_low, 4.0);
  EXPECT_DOUBLE_EQ(s.whisker_high, 4.0);
}

TEST(Summary, RejectsOutOfScale) {
  EXPECT_THROW(static_cast<void>(summarize_scores({0})), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(summarize_scores({6})), std::invalid_argument);
}

TEST(Summary, WhiskersWithin15Iqr) {
  const auto s = summarize_scores({1, 4, 4, 4, 4, 4, 5, 5, 5});
  EXPECT_GE(s.whisker_low, s.q1 - 1.5 * (s.q3 - s.q1));
  EXPECT_LE(s.whisker_high, s.q3 + 1.5 * (s.q3 - s.q1));
}

std::vector<Stimulus> demo_stimuli() {
  return {
      {'a', 0x0430, 0.0, false, "identical"},
      {'e', 0x00E9, 4.0, false, "near"},
      {'e', 0x025B, 8.0, false, "far"},
      {'q', 0x4E00, 400.0, true, "dummy"},
      {'z', 0x3042, 380.0, true, "dummy"},
  };
}

TEST(Study, RunsAndFilters) {
  StudyConfig config;
  config.seed = 5;
  config.workers = 40;
  const auto outcome = run_study(demo_stimuli(), config);
  EXPECT_EQ(outcome.workers_recruited, 40u);
  EXPECT_GT(outcome.workers_kept, 0u);
  EXPECT_LE(outcome.workers_kept, 40u);
  // Every kept worker answered every stimulus.
  for (const auto& responses : outcome.responses) {
    EXPECT_EQ(responses.size(), outcome.workers_kept);
  }
}

TEST(Study, FiltersRemoveBadWorkers) {
  // With many workers, some are inattentive random clickers; the two
  // filtering rules must remove them: kept < recruited (statistically
  // certain with 200 workers at 8% inattentive rate).
  StudyConfig config;
  config.seed = 6;
  config.workers = 200;
  const auto outcome = run_study(demo_stimuli(), config);
  EXPECT_LT(outcome.workers_kept, outcome.workers_recruited);
}

TEST(Study, KeptWorkersScoreSensibly) {
  StudyConfig config;
  config.seed = 7;
  config.workers = 60;
  const auto stimuli = demo_stimuli();
  const auto outcome = run_study(stimuli, config);

  const auto identical = summarize_scores(outcome.scores_for_tag(stimuli, "identical"));
  const auto near = summarize_scores(outcome.scores_for_tag(stimuli, "near"));
  const auto far = summarize_scores(outcome.scores_for_tag(stimuli, "far"));
  const auto dummy = summarize_scores(outcome.scores_for_tag(stimuli, "dummy"));

  EXPECT_GT(identical.mean, near.mean);
  EXPECT_GT(near.mean, far.mean);
  EXPECT_GT(far.mean, dummy.mean - 0.5);
  EXPECT_LT(dummy.mean, 2.0);
  EXPECT_GT(identical.mean, 4.0);
}

TEST(Study, DeterministicForSeed) {
  StudyConfig config;
  config.seed = 8;
  config.workers = 20;
  const auto a = run_study(demo_stimuli(), config);
  const auto b = run_study(demo_stimuli(), config);
  EXPECT_EQ(a.workers_kept, b.workers_kept);
  EXPECT_EQ(a.responses, b.responses);
}

TEST(Study, RejectsZeroWorkers) {
  StudyConfig config;
  config.workers = 0;
  EXPECT_THROW(run_study(demo_stimuli(), config), std::invalid_argument);
}

}  // namespace
}  // namespace sham::perception
