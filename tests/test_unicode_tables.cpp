#include <gtest/gtest.h>

#include "unicode/blocks.hpp"
#include "unicode/category.hpp"
#include "unicode/idna_properties.hpp"
#include "unicode/script.hpp"

namespace sham::unicode {
namespace {

TEST(Category, KnownValues) {
  EXPECT_EQ(general_category('a'), GeneralCategory::kLl);
  EXPECT_EQ(general_category('A'), GeneralCategory::kLu);
  EXPECT_EQ(general_category('0'), GeneralCategory::kNd);
  EXPECT_EQ(general_category(' '), GeneralCategory::kZs);
  EXPECT_EQ(general_category('-'), GeneralCategory::kPd);
  EXPECT_EQ(general_category(0x00DF), GeneralCategory::kLl);  // ß
  EXPECT_EQ(general_category(0x0301), GeneralCategory::kMn);  // combining acute
  EXPECT_EQ(general_category(0x4E00), GeneralCategory::kLo);  // CJK
  EXPECT_EQ(general_category(0xAC00), GeneralCategory::kLo);  // Hangul syllable
  EXPECT_EQ(general_category(0x0660), GeneralCategory::kNd);  // Arabic-Indic 0
  EXPECT_EQ(general_category(0x200D), GeneralCategory::kCf);  // ZWJ
  EXPECT_EQ(general_category(0xD800), GeneralCategory::kCs);  // surrogate
  EXPECT_EQ(general_category(0xE000), GeneralCategory::kCo);  // private use
}

TEST(Category, UnassignedAndOutOfTable) {
  EXPECT_EQ(general_category(0x0378), GeneralCategory::kCn);   // gap in Greek
  EXPECT_EQ(general_category(0x30000), GeneralCategory::kCn);  // beyond table
}

TEST(Category, Names) {
  EXPECT_EQ(category_name(GeneralCategory::kLl), "Ll");
  EXPECT_EQ(category_name(GeneralCategory::kZs), "Zs");
}

TEST(Category, Predicates) {
  EXPECT_TRUE(is_letter(GeneralCategory::kLo));
  EXPECT_FALSE(is_letter(GeneralCategory::kNd));
  EXPECT_TRUE(is_mark(GeneralCategory::kMn));
  EXPECT_TRUE(is_decimal_number(GeneralCategory::kNd));
}

TEST(Category, Noncharacters) {
  EXPECT_TRUE(is_noncharacter(0xFDD0));
  EXPECT_TRUE(is_noncharacter(0xFFFE));
  EXPECT_TRUE(is_noncharacter(0x1FFFF));
  EXPECT_FALSE(is_noncharacter('a'));
}

TEST(Blocks, KnownBlocks) {
  EXPECT_EQ(block_name('a'), "Basic Latin");
  EXPECT_EQ(block_name(0x0430), "Cyrillic");
  EXPECT_EQ(block_name(0x4E50), "CJK Unified Ideographs");
  EXPECT_EQ(block_name(0xAC10), "Hangul Syllables");
  EXPECT_EQ(block_name(0xA510), "Vai");
  EXPECT_EQ(block_name(0x1450), "Unified Canadian Aboriginal Syllabics");
  EXPECT_EQ(block_name(0x0305), "Combining Diacritical Marks");
  EXPECT_EQ(block_name(0x118D8), "Warang Citi");
}

TEST(Blocks, TableIsSortedAndDisjoint) {
  const auto& blocks = all_blocks();
  ASSERT_FALSE(blocks.empty());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_LE(blocks[i].first, blocks[i].last) << blocks[i].name;
    if (i > 0) {
      EXPECT_GT(blocks[i].first, blocks[i - 1].last)
          << blocks[i - 1].name << " overlaps " << blocks[i].name;
    }
  }
}

TEST(Blocks, Planes) {
  EXPECT_EQ(plane_of(0x4E00), Plane::kBmp);
  EXPECT_EQ(plane_of(0x1F600), Plane::kSmp);
  EXPECT_EQ(plane_of(0x20000), Plane::kOther);
}

TEST(Script, KnownScripts) {
  EXPECT_EQ(script_of('x'), Script::kLatin);
  EXPECT_EQ(script_of(0x03B1), Script::kGreek);
  EXPECT_EQ(script_of(0x0431), Script::kCyrillic);
  EXPECT_EQ(script_of(0x05D0), Script::kHebrew);
  EXPECT_EQ(script_of(0x0E01), Script::kThai);
  EXPECT_EQ(script_of(0x3042), Script::kHiragana);
  EXPECT_EQ(script_of(0x30A8), Script::kKatakana);
  EXPECT_EQ(script_of(0x5DE5), Script::kHan);
  EXPECT_EQ(script_of(0xAC00), Script::kHangul);
  EXPECT_EQ(script_of('.'), Script::kCommon);
  EXPECT_EQ(script_of(0x0300), Script::kInherited);
}

TEST(Script, MixedScriptDetection) {
  // "facebook" with Cyrillic о — the browser-policy trigger.
  U32String mixed{'f', 'a', 'c', 0x043E, 'b', 'o', 'o', 'k'};
  EXPECT_TRUE(is_mixed_script(mixed));
  U32String pure{'g', 'o', 'o', 'g', 'l', 'e'};
  EXPECT_FALSE(is_mixed_script(pure));
  // CJK + Katakana: mixed (the 工業大学 / エ業大学 case, Section 2.2).
  U32String cjk_kana{0x30A8, 0x696D, 0x5927, 0x5B66};
  EXPECT_TRUE(is_mixed_script(cjk_kana));
  // Digits and hyphens are Common: do not create mixing on their own.
  U32String with_digits{'a', 'b', '1', '-', 'c'};
  EXPECT_FALSE(is_mixed_script(with_digits));
}

TEST(Idna, LdhIsPvalid) {
  for (CodePoint cp = 'a'; cp <= 'z'; ++cp) {
    EXPECT_EQ(idna_property(cp), IdnaProperty::kPvalid);
  }
  for (CodePoint cp = '0'; cp <= '9'; ++cp) {
    EXPECT_EQ(idna_property(cp), IdnaProperty::kPvalid);
  }
  EXPECT_EQ(idna_property('-'), IdnaProperty::kPvalid);
}

TEST(Idna, UppercaseDisallowed) {
  EXPECT_EQ(idna_property('A'), IdnaProperty::kDisallowed);
  EXPECT_EQ(idna_property(0x0410), IdnaProperty::kDisallowed);  // Cyrillic А
}

TEST(Idna, PunctuationAndSymbolsDisallowed) {
  EXPECT_EQ(idna_property('.'), IdnaProperty::kDisallowed);
  EXPECT_EQ(idna_property('!'), IdnaProperty::kDisallowed);
  EXPECT_EQ(idna_property(0x2764), IdnaProperty::kDisallowed);  // heart symbol
  EXPECT_EQ(idna_property(' '), IdnaProperty::kDisallowed);
}

TEST(Idna, Rfc5892Exceptions) {
  EXPECT_EQ(idna_property(0x00DF), IdnaProperty::kPvalid);  // ß
  EXPECT_EQ(idna_property(0x03C2), IdnaProperty::kPvalid);  // final sigma
  EXPECT_EQ(idna_property(0x00B7), IdnaProperty::kContextO);  // middle dot
  EXPECT_EQ(idna_property(0x30FB), IdnaProperty::kContextO);  // katakana dot
  EXPECT_EQ(idna_property(0x0660), IdnaProperty::kContextO);  // Arabic digit
  EXPECT_EQ(idna_property(0x0640), IdnaProperty::kDisallowed);  // tatweel
  EXPECT_EQ(idna_property(0x302E), IdnaProperty::kDisallowed);  // tone mark
}

TEST(Idna, JoinControls) {
  EXPECT_EQ(idna_property(0x200C), IdnaProperty::kContextJ);  // ZWNJ
  EXPECT_EQ(idna_property(0x200D), IdnaProperty::kContextJ);  // ZWJ
}

TEST(Idna, ScriptsArePvalid) {
  EXPECT_EQ(idna_property(0x4E00), IdnaProperty::kPvalid);   // CJK
  EXPECT_EQ(idna_property(0xAC00), IdnaProperty::kPvalid);   // Hangul syllable
  EXPECT_EQ(idna_property(0x0431), IdnaProperty::kPvalid);   // Cyrillic б
  EXPECT_EQ(idna_property(0x05D0), IdnaProperty::kPvalid);   // Hebrew א
  EXPECT_EQ(idna_property(0x0301), IdnaProperty::kPvalid);   // combining mark
  EXPECT_EQ(idna_property(0x1401), IdnaProperty::kPvalid);   // Canadian Aboriginal
  EXPECT_EQ(idna_property(0xA500), IdnaProperty::kPvalid);   // Vai
}

TEST(Idna, OldHangulJamoDisallowed) {
  EXPECT_EQ(idna_property(0x1100), IdnaProperty::kDisallowed);
  EXPECT_EQ(idna_property(0xA960), IdnaProperty::kDisallowed);
  EXPECT_EQ(idna_property(0xD7B0), IdnaProperty::kDisallowed);
}

TEST(Idna, UnstableCompatibilityFormsDisallowed) {
  EXPECT_EQ(idna_property(0xFF41), IdnaProperty::kDisallowed);  // fullwidth a
  EXPECT_EQ(idna_property(0xFB01), IdnaProperty::kDisallowed);  // fi ligature
  EXPECT_EQ(idna_property(0x2113), IdnaProperty::kDisallowed);  // script l
}

TEST(Idna, UnassignedAndSurrogates) {
  EXPECT_EQ(idna_property(0x0378), IdnaProperty::kUnassigned);
  EXPECT_EQ(idna_property(0xD800), IdnaProperty::kDisallowed);  // non-scalar
}

TEST(Idna, PermittedCountIsPlausible) {
  // Unicode 14 planes 0-1 contain far more PVALID characters than the
  // ASCII repertoire and far fewer than the full code space.
  const auto count = idna_permitted_count();
  EXPECT_GT(count, 40'000u);
  EXPECT_LT(count, 110'000u);
}

TEST(Idna, RangeEnumeration) {
  const auto latin = idna_permitted_in_range('a', 'z');
  EXPECT_EQ(latin.size(), 26u);
  const auto hangul_jamo = idna_permitted_in_range(0x1100, 0x11FF);
  EXPECT_TRUE(hangul_jamo.empty());
}

TEST(Idna, PropertyNames) {
  EXPECT_EQ(idna_property_name(IdnaProperty::kPvalid), "PVALID");
  EXPECT_EQ(idna_property_name(IdnaProperty::kContextJ), "CONTEXTJ");
}

}  // namespace
}  // namespace sham::unicode
