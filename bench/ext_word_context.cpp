// Extension experiment (Section 7.1 future work): confusability of
// homoglyphs in *word* context. The paper's study rates isolated character
// pairs; here whole-label homographs are rated, contrasting short and long
// reference names — a single substituted letter is diluted in a longer
// word, so long-label homographs should read as *more* confusing.
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Extension: word-context confusability (paper future work)");
  const auto& env = bench::standard_env();
  const auto result = measure::word_context_study(env);

  util::TextTable t{{"Label group", "n", "mean", "median", "q1", "q3"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight, util::Align::kRight}};
  const auto add = [&](const char* name, const perception::LikertSummary& s) {
    t.add_row({name, std::to_string(s.n), util::fixed(s.mean, 2),
               util::fixed(s.median, 1), util::fixed(s.q1, 1), util::fixed(s.q3, 1)});
  };
  add("short labels (<= 6 chars)", result.short_labels);
  add("long labels (>= 9 chars)", result.long_labels);
  std::printf("%s\n", t.str().c_str());
  std::printf("workers kept: %zu\n", result.workers_kept);

  bench::shape("homographs of long labels are more confusable (dilution)",
               result.long_labels.mean > result.short_labels.mean);
  bench::shape("both groups clear the 'neutral' midpoint on average",
               result.long_labels.mean > 3.0);
  return 0;
}
