// Table 11: top-10 active IDN homographs by passive-DNS resolutions, with
// manual-inspection category, MX history, and web/SNS presence (paper:
// gmaıl.com phishing at 615,447 resolutions leads).
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Table 11: most-resolved active IDN homographs (passive DNS)");
  const auto& ctx = bench::standard_wild();
  const auto rows = measure::popular_active_idns(ctx, 10);

  util::TextTable t{{"Domain name", "Category", "#resolutions", "MX", "Web link", "SNS"},
                    {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
                     util::Align::kLeft, util::Align::kLeft, util::Align::kLeft}};
  for (const auto& row : rows) {
    const char* mx = row.mx_now ? "now" : (row.mx_past ? "past" : "-");
    t.add_row({row.display + "[.]com", row.category, util::with_commas(row.resolutions),
               mx, row.web_link ? "yes" : "-", row.sns_link ? "yes" : "-"});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("paper top rows: gmaıl[.]com Phishing 615,447 (past MX); "
              "döviz[.]com Portal 127,417; ...\n");

  bench::shape("the gmaıl phishing case tops the list",
               !rows.empty() && rows[0].category == "Phishing" &&
                   rows[0].resolutions == 615447);
  std::size_t parked = 0;
  for (const auto& row : rows) {
    if (row.category == "Parked" || row.category == "Domain parking") ++parked;
  }
  bench::shape("majority of the top-10 are parked (paper: 7 of 10)", parked >= 5);
  bool mail_targets_have_mx = true;
  for (const auto& row : rows) {
    if (row.ace.find("gmal") != std::string::npos ||
        row.ace.find("gmil") != std::string::npos) {
      mail_targets_have_mx &= (row.mx_now || row.mx_past);
    }
  }
  bench::shape("homographs of mail services carry MX records", mail_targets_have_mx);
  return 0;
}
