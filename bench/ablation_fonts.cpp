// Ablation: font sensitivity (Section 7.1 names "extend to other fonts" as
// future work enabled by the automated pipeline). Builds SimChar from every
// available real font face plus the synthetic font and compares the
// resulting pair sets — demonstrating that the pipeline is font-agnostic
// and quantifying how much the detected homoglyphs depend on the face.
#include <unordered_set>

#include "bench_common.hpp"
#include "font/freetype_font.hpp"
#include "font/paper_font.hpp"

int main() {
  using namespace sham;
  bench::header("Ablation: SimChar across font faces");

  struct Candidate {
    std::string label;
    font::FontSourcePtr font;
  };
  std::vector<Candidate> fonts;
  for (const auto* path : {"/usr/share/fonts/truetype/dejavu/DejaVuSans.ttf",
                           "/usr/share/fonts/truetype/dejavu/DejaVuSerif.ttf",
                           "/usr/share/fonts/truetype/dejavu/DejaVuSansMono.ttf"}) {
    if (!font::freetype_available()) break;
    try {
      fonts.push_back({path, std::make_shared<font::FreeTypeFont>(path)});
    } catch (const std::exception&) {
      // face not installed; skip
    }
  }
  font::PaperFontConfig synth_config;
  synth_config.scale = 0.25;
  fonts.push_back({"synthetic-paper-scale", font::make_paper_font(synth_config).font});

  util::TextTable t{{"font", "glyphs", "pairs", "chars", "latin-letter homoglyphs"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight}};

  std::vector<std::unordered_set<std::uint64_t>> pair_sets;
  for (const auto& candidate : fonts) {
    simchar::BuildStats stats;
    const auto db = simchar::SimCharDb::build(*candidate.font, {}, &stats);
    std::size_t latin = 0;
    for (char c = 'a'; c <= 'z'; ++c) {
      latin += db.homoglyphs_of(static_cast<unicode::CodePoint>(c)).size();
    }
    t.add_row({candidate.label, util::with_commas(stats.glyphs_rendered),
               util::with_commas(db.pair_count()), util::with_commas(db.character_count()),
               util::with_commas(latin)});
    std::unordered_set<std::uint64_t> keys;
    for (const auto& p : db.pairs()) {
      keys.insert((static_cast<std::uint64_t>(p.a) << 32) | p.b);
    }
    pair_sets.push_back(std::move(keys));
  }
  std::printf("%s\n", t.str().c_str());

  if (pair_sets.size() >= 2) {
    // Overlap between the first two real faces.
    std::size_t common = 0;
    for (const auto key : pair_sets[0]) {
      if (pair_sets[1].contains(key)) ++common;
    }
    std::printf("pair overlap between %s and %s: %zu pairs\n", fonts[0].label.c_str(),
                fonts[1].label.c_str(), common);
    bench::shape("different faces share a homoglyph core (identical scripts)",
                 common > 0);
    bench::shape("faces also disagree (font choice matters, Section 7.1)",
                 pair_sets[0].size() != pair_sets[1].size() ||
                     common != pair_sets[0].size());
  }
  bench::shape("pipeline runs unchanged on every glyph source", fonts.size() >= 2);
  return 0;
}
