// Table 13: breakdown of the redirecting homographs (paper: brand
// protection 178, legitimate 125, malicious 35 of 338).
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Table 13: redirecting homographs by purpose");
  const auto& ctx = bench::standard_wild();
  const auto rows = measure::classify_redirects(ctx);

  const auto paper = [](const std::string& name) -> const char* {
    if (name == "Brand protection") return "178";
    if (name == "Legitimate website") return "125";
    if (name == "Malicious website") return "35";
    if (name == "Total") return "338";
    return "-";
  };
  util::TextTable t{{"Category", "paper", "ours"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight}};
  for (const auto& row : rows) {
    t.add_row({row.category, paper(row.category), util::with_commas(row.count)});
  }
  std::printf("%s\n", t.str().c_str());

  std::size_t brand = 0;
  std::size_t legit = 0;
  std::size_t malicious = 0;
  for (const auto& row : rows) {
    if (row.category == "Brand protection") brand = row.count;
    if (row.category == "Legitimate website") legit = row.count;
    if (row.category == "Malicious website") malicious = row.count;
  }
  bench::shape("defensive registrations dominate redirects", brand > legit);
  bench::shape("a malicious minority exists (paper: 35)",
               malicious > 0 && malicious < legit);
  return 0;
}
