// Table 10: port-scan results over the detected homographs
// (paper: of 3,280 detected, 2,294 have NS, 1,909 have A; TCP/80 1,642,
// TCP/443 700, both 695, unique reachable 1,647).
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Table 10: liveness funnel and port scans");
  const auto& ctx = bench::standard_wild();
  const auto f = measure::port_scan_funnel(ctx);

  util::TextTable t{{"Stage", "paper", "ours"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight}};
  t.add_row({"detected homographs", "3,280", util::with_commas(f.detected)});
  t.add_row({"with NS records", "2,294", util::with_commas(f.with_ns)});
  t.add_row({"with A records", "1,909", util::with_commas(f.with_a)});
  t.add_row({"TCP/80 open", "1,642", util::with_commas(f.open_80)});
  t.add_row({"TCP/443 open", "700", util::with_commas(f.open_443)});
  t.add_row({"TCP/80 & TCP/443", "695", util::with_commas(f.open_both)});
  t.add_row({"total reachable (unique)", "1,647", util::with_commas(f.active)});
  std::printf("%s\n", t.str().c_str());

  const double live_fraction = static_cast<double>(f.active) / f.detected;
  bench::shape("roughly half of detected homographs are live (paper: 50%)",
               live_fraction > 0.4 && live_fraction < 0.6);
  bench::shape("most live hosts serve plain HTTP; HTTPS is a subset-heavy overlap",
               f.open_80 > 2 * f.open_443 && f.open_both > f.open_443 * 8 / 10);
  bench::shape("funnel is monotone", f.detected >= f.with_ns && f.with_ns >= f.with_a &&
                                         f.with_a >= f.active);
  return 0;
}
