// Section 6.4: revert malicious homographs to their original domains and
// count those targeting non-popular sites (paper: 91 malicious IDNs whose
// originals are outside the Alexa top-1K).
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Section 6.4: reverting malicious IDNs to original domains");
  const auto& env = bench::standard_env();
  const auto& ctx = bench::standard_wild();
  const auto result = measure::revert_analysis(env, ctx, 100);

  std::printf("malicious (blacklisted) homographs : %zu\n", result.malicious);
  std::printf("reverted to an ASCII original      : %zu\n", result.reverted);
  std::printf("originals outside the top-100 refs : %zu (paper: 91 outside top-1K)\n",
              result.non_popular_targets);
  std::printf("\nexamples:\n");
  for (const auto& e : result.examples) std::printf("  %s\n", e.c_str());
  std::printf("\n");

  bench::shape("every malicious homograph reverts (char-level DB advantage)",
               result.reverted == result.malicious);
  bench::shape("a non-negligible share targets non-popular domains",
               result.non_popular_targets > 0);
  return 0;
}
