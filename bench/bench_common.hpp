// Shared scaffolding for the per-table bench binaries: standard experiment
// environments and a renderer that prints the paper's numbers next to the
// measured ones.
//
// Absolute counts differ from the paper by design — the substrate is a
// synthetic font/internet at reduced scale (see DESIGN.md §2) — so every
// binary prints the *shape criteria* it is expected to preserve.
#pragma once

#include <cstdio>
#include <string>

#include "measure/charset_experiments.hpp"
#include "measure/wild_experiments.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace sham::bench {

/// Full-scale character-set environment (synthetic paper font, θ = 4).
inline const measure::Environment& standard_env() {
  static const auto env = [] {
    util::Stopwatch watch;
    measure::EnvironmentConfig config;
    config.font_scale = 1.0;
    auto e = measure::Environment::create(config);
    std::printf("[setup] SimChar built: %zu glyphs, %zu pairs, %.2fs\n",
                e.build_stats.glyphs_rendered, e.simchar.pair_count(),
                watch.seconds());
    return e;
  }();
  return env;
}

/// Wild-measurement context at paper attack scale (3,280 planted attacks)
/// over a 500 K-domain backdrop.
inline const measure::WildContext& standard_wild() {
  static const auto ctx = [] {
    util::Stopwatch watch;
    internet::ScenarioConfig config;
    config.total_domains = 500'000;
    config.reference_count = 1'000;
    config.attack_scale = 1.0;
    auto c = measure::make_wild_context(standard_env(), config);
    std::printf(
        "[setup] scenario: %zu domains, %zu IDNs, %zu planted attacks, %.2fs\n",
        c.scenario.domains.size(), c.idns.size(), c.scenario.attacks.size(),
        watch.seconds());
    return c;
  }();
  return ctx;
}

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void shape(const std::string& criterion, bool holds) {
  std::printf("  shape: %-58s [%s]\n", criterion.c_str(), holds ? "OK" : "MISS");
}

}  // namespace sham::bench
