// Table 14: blacklisted IDN homographs per homoglyph database and feed
// (paper: UC 28/2/1, SimChar 222/12/7, union 242/13/8 across
// hpHosts / Google Safe Browsing / Symantec DeepSight).
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Table 14: malicious (blacklisted) IDN homographs");
  const auto& ctx = bench::standard_wild();
  const auto rows = measure::blacklist_counts(ctx);

  util::TextTable t{{"Homoglyph DB", "hpHosts (paper)", "hpHosts", "GSB (paper)", "GSB",
                     "Symantec (paper)", "Symantec"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight}};
  const char* paper[3][3] = {{"28", "2", "1"}, {"222", "12", "7"}, {"242", "13", "8"}};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    t.add_row({rows[i].db, paper[i][0], std::to_string(rows[i].hphosts), paper[i][1],
               std::to_string(rows[i].gsb), paper[i][2],
               std::to_string(rows[i].symantec)});
  }
  std::printf("%s\n", t.str().c_str());

  bench::shape("SimChar multiplies the malicious yield over UC alone",
               rows[1].hphosts > 4 * rows[0].hphosts);
  bench::shape("union ≥ each sub-database on every feed",
               rows[2].hphosts >= rows[0].hphosts && rows[2].hphosts >= rows[1].hphosts &&
                   rows[2].gsb >= rows[1].gsb && rows[2].symantec >= rows[1].symantec);
  bench::shape("community feed ≫ curated commercial feeds",
               rows[2].hphosts > 5 * rows[2].gsb && rows[2].gsb >= rows[2].symantec);
  return 0;
}
