// Figure 9: confusability score vs threshold ∆ (simulated crowd study;
// paper: 20 pairs per ∆ in 0..8, 30 dummies, 10 kept participants,
// 900 effective responses).
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Figure 9: confusability score by ∆ (crowd study)");
  const auto& env = bench::standard_env();
  const auto result = measure::threshold_study(env);

  std::printf("workers: %zu recruited, %zu kept after trap filtering; "
              "%zu effective responses\n\n",
              result.workers_recruited, result.workers_kept,
              result.effective_responses);

  util::TextTable t{{"∆", "n", "mean", "median", "q1", "q3", "box"},
                    {util::Align::kRight, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight, util::Align::kRight,
                     util::Align::kLeft}};
  for (int d = 0; d <= 8; ++d) {
    const auto& s = result.per_delta[static_cast<std::size_t>(d)];
    // Tiny text boxplot over [1, 5].
    std::string box(41, ' ');
    const auto mark = [&](double value, char c) {
      const int pos = static_cast<int>((value - 1.0) * 10.0);
      if (pos >= 0 && pos < 41) box[static_cast<std::size_t>(pos)] = c;
    };
    for (double q = s.q1; q <= s.q3 + 1e-9; q += 0.1) mark(q, '=');
    mark(s.median, '|');
    t.add_row({std::to_string(d), std::to_string(s.n), util::fixed(s.mean, 2),
               util::fixed(s.median, 1), util::fixed(s.q1, 1), util::fixed(s.q3, 1),
               box});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("paper anchor points: ∆=4 mean 3.57 / median 4; ∆=5 mean 2.57 / median 2\n");

  const auto& d = result.per_delta;
  bench::shape("score decreases with ∆", d[0].mean > d[4].mean && d[4].mean > d[8].mean);
  bench::shape("∆ = 4 still reads 'confusing' (mean ≈ 3.57)",
               d[4].mean > 3.1 && d[4].mean < 4.0);
  bench::shape("∆ = 5 flips to 'distinct' (mean ≈ 2.57)",
               d[5].mean > 2.1 && d[5].mean < 3.1);
  bench::shape("sharp drop across the θ = 4 boundary", d[4].mean - d[5].mean > 0.6);
  bench::shape("dummies read 'very distinct'", result.dummies.mean < 1.6);
  return 0;
}
