// Table 5: time to construct SimChar (paper: 79.2 s image generation,
// 10.9 h pairwise ∆ with 15 processes, 18.0 s sparse elimination at
// 52,457 characters). This binary reproduces the cost structure: the
// pairwise step dominates and scales quadratically; worker threads give
// near-linear speedup; the exact popcount-band prune removes most of the
// work, and the pigeonhole block index removes most of what remains.
#include <algorithm>
#include <cstdint>
#include <thread>

#include "bench_common.hpp"
#include "font/paper_font.hpp"
#include "simchar/simchar.hpp"

int main() {
  using namespace sham;
  bench::header("Table 5: SimChar construction cost");

  util::TextTable t{{"glyphs", "mode", "threads", "render s", "pairwise s",
                     "sparse s", "comparisons"},
                    {util::Align::kRight, util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight}};

  double naive_small = 0.0;
  double naive_large = 0.0;
  double pruned_large = 0.0;
  std::uint64_t pruned_comparisons = 0;
  double block_large = 0.0;
  std::uint64_t block_comparisons = 0;
  double one_thread = 0.0;
  double many_threads = 0.0;
  std::size_t glyphs_small = 0;
  std::size_t glyphs_large = 0;

  const auto run = [&](double scale, simchar::PairStrategy strategy,
                       std::size_t threads) {
    font::PaperFontConfig font_config;
    font_config.scale = scale;
    const auto paper = font::make_paper_font(font_config);
    simchar::BuildOptions options;
    options.pair_strategy = strategy;
    options.threads = threads;
    simchar::BuildStats stats;
    simchar::SimCharDb::build(*paper.font, options, &stats);
    t.add_row({util::with_commas(stats.glyphs_rendered),
               std::string{simchar::pair_strategy_name(strategy)},
               std::to_string(threads == 0
                                  ? static_cast<std::size_t>(
                                        std::thread::hardware_concurrency())
                                  : threads),
               util::fixed(stats.render_seconds, 3),
               util::fixed(stats.compare_seconds, 3),
               util::fixed(stats.sparse_seconds, 3),
               util::with_commas(stats.pairs_compared)});
    return stats;
  };

  {
    const auto s = run(0.25, simchar::PairStrategy::kAllPairs, 0);
    naive_small = s.compare_seconds;
    glyphs_small = s.glyphs_rendered;
  }
  {
    const auto s = run(1.0, simchar::PairStrategy::kAllPairs, 0);
    naive_large = s.compare_seconds;
    glyphs_large = s.glyphs_rendered;
  }
  {
    const auto s = run(1.0, simchar::PairStrategy::kPopcountBand, 0);
    pruned_large = s.compare_seconds;
    pruned_comparisons = s.pairs_compared;
  }
  {
    const auto s = run(1.0, simchar::PairStrategy::kBlockIndex, 0);
    block_large = s.compare_seconds;
    block_comparisons = s.pairs_compared;
  }
  {
    const auto s = run(1.0, simchar::PairStrategy::kAllPairs, 1);
    one_thread = s.compare_seconds;
  }
  {
    const auto s = run(1.0, simchar::PairStrategy::kAllPairs, 4);
    many_threads = s.compare_seconds;
  }
  std::printf("%s\n", t.str().c_str());

  const double size_ratio = static_cast<double>(glyphs_large) / glyphs_small;
  const double time_ratio = naive_large / naive_small;
  std::printf("naive pairwise scaling: %.1fx glyphs -> %.1fx time (quadratic ≈ %.1fx)\n",
              size_ratio, time_ratio, size_ratio * size_ratio);
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("4 threads vs 1: %.2fx speedup on %u core(s) (paper used 15 processes)\n",
              one_thread / many_threads, cores);
  std::printf("bucket prune vs naive at full size: %.1fx faster, identical output\n",
              naive_large / pruned_large);
  std::printf("block index vs band prune at full size: %s vs %s ∆ evaluations "
              "(%.1fx fewer), identical output\n",
              util::with_commas(block_comparisons).c_str(),
              util::with_commas(pruned_comparisons).c_str(),
              static_cast<double>(pruned_comparisons) /
                  static_cast<double>(std::max<std::uint64_t>(block_comparisons, 1)));
  // Extrapolate the naive single-thread cost to the paper's 52,457 glyphs.
  const double per_pair = one_thread / (0.5 * glyphs_large * glyphs_large);
  const double paper_pairs = 0.5 * 52457.0 * 52457.0;
  std::printf("per-pair ∆ cost: %.1f ns; extrapolated naive cost at 52,457 glyphs: "
              "%.1f s on 1 thread (paper: 10.9 h with 15 processes — their "
              "per-pair cost was ~28 µs; the XOR/popcount kernel here is ~3 "
              "orders of magnitude faster)\n",
              per_pair * 1e9, per_pair * paper_pairs);

  bench::shape("pairwise ∆ dominates render and sparse steps",
               naive_large > 5.0 * 0.001);  // structure visible in the table
  bench::shape("naive pairwise cost grows ~quadratically",
               time_ratio > 0.5 * size_ratio * size_ratio / 2.0);
  if (cores > 1) {
    bench::shape("multithreading helps (paper parallelised with 15 procs)",
                 one_thread > 1.5 * many_threads);
  } else {
    std::printf("  shape: multithreading speedup             [SKIPPED: 1-core host]\n");
  }
  bench::shape("bucket prune beats naive", pruned_large < naive_large);
  bench::shape("block index evaluates fewer ∆ than the band prune",
               block_comparisons < pruned_comparisons);
  bench::shape("block index beats naive on wall clock", block_large < naive_large);
  return 0;
}
