// Ablation: choice of the glyph-similarity metric. Section 3.3 argues the
// direct pixel-difference count ∆ suffices and relates it analytically to
// MSE and PSNR (both are monotone transforms of ∆ for binary images);
// SSIM is the standard perceptual alternative. This bench measures how the
// metrics agree on the planted ground truth: for every planted pair and an
// equal number of random pairs, are the ∆ ≤ 4 decisions recoverable with
// an SSIM or PSNR threshold?
#include <algorithm>

#include "bench_common.hpp"
#include "font/metrics.hpp"
#include "font/paper_font.hpp"
#include "util/rng.hpp"

int main() {
  using namespace sham;
  bench::header("Ablation: ∆ vs SSIM vs PSNR as the homoglyph criterion");

  font::PaperFontConfig config;
  config.scale = 0.5;
  const auto paper = font::make_paper_font(config);
  const auto& font = *paper.font;

  struct Sample {
    int delta;
    double ssim;
    double psnr;
    bool positive;  // planted with ∆ ≤ 4
  };
  std::vector<Sample> samples;

  for (const auto& cluster : paper.clusters) {
    const auto base = font.glyph(cluster.base);
    if (!base) continue;
    for (const auto& member : cluster.members) {
      const auto g = font.glyph(member.cp);
      if (!g) continue;
      Sample s;
      s.delta = font::delta(*base, *g);
      s.ssim = font::ssim(*base, *g);
      s.psnr = font::psnr(*base, *g);
      s.positive = s.delta <= 4;
      samples.push_back(s);
    }
  }
  // Random negative pairs.
  util::Rng rng{99};
  const auto coverage = font.coverage();
  const std::size_t planted_count = samples.size();
  for (std::size_t i = 0; i < planted_count; ++i) {
    const auto a = font.glyph(coverage[rng.below(coverage.size())]);
    const auto b = font.glyph(coverage[rng.below(coverage.size())]);
    if (!a || !b || *a == *b) continue;
    Sample s;
    s.delta = font::delta(*a, *b);
    s.ssim = font::ssim(*a, *b);
    s.psnr = font::psnr(*a, *b);
    s.positive = s.delta <= 4;
    samples.push_back(s);
  }

  // Find the SSIM/PSNR thresholds that best reproduce the ∆ ≤ 4 decision.
  const auto accuracy_at = [&](auto value_of, double threshold) {
    std::size_t correct = 0;
    for (const auto& s : samples) {
      const bool predicted = value_of(s) >= threshold;
      if (predicted == s.positive) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(samples.size());
  };
  double best_ssim_threshold = 0;
  double best_ssim_acc = 0;
  for (double t = 0.5; t <= 1.0; t += 0.005) {
    const double acc = accuracy_at([](const Sample& s) { return s.ssim; }, t);
    if (acc > best_ssim_acc) {
      best_ssim_acc = acc;
      best_ssim_threshold = t;
    }
  }
  double best_psnr_threshold = 0;
  double best_psnr_acc = 0;
  for (double t = 10.0; t <= 40.0; t += 0.25) {
    const double acc = accuracy_at([](const Sample& s) { return s.psnr; }, t);
    if (acc > best_psnr_acc) {
      best_psnr_acc = acc;
      best_psnr_threshold = t;
    }
  }

  util::TextTable t{{"criterion", "threshold", "agreement with ∆ ≤ 4"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight}};
  t.add_row({"∆ (pixel count)", "4", "100.0% (definition)"});
  t.add_row({"SSIM ≥ t", util::fixed(best_ssim_threshold, 3),
             util::percent(best_ssim_acc)});
  t.add_row({"PSNR ≥ t dB", util::fixed(best_psnr_threshold, 2),
             util::percent(best_psnr_acc)});
  std::printf("%s\n", t.str().c_str());
  std::printf("samples: %zu planted-pair + %zu random-pair measurements\n",
              planted_count, samples.size() - planted_count);
  std::printf("PSNR is a monotone transform of ∆ (Section 3.3), so a perfect "
              "PSNR threshold exists by construction; SSIM additionally depends "
              "on ink mass, so it can disagree near the boundary.\n");

  bench::shape("a PSNR threshold reproduces ∆ exactly", best_psnr_acc > 0.999);
  bench::shape("an SSIM threshold agrees with ∆ on >95% of pairs",
               best_ssim_acc > 0.95);
  return 0;
}
