// Table 9: top-5 ASCII domain names with the most IDN homographs
// (paper: myetherwallet 170 / google 114 / amazon 75 / facebook 72 /
// allstate 68 — moderately popular sites are targeted too).
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Table 9: top-5 targeted domain names");
  const auto& ctx = bench::standard_wild();
  const auto rows = measure::top_targets(ctx, 5);

  const char* paper[5][2] = {{"myetherwallet", "170"},
                             {"google", "114"},
                             {"amazon", "75"},
                             {"facebook", "72"},
                             {"allstate", "68"}};
  util::TextTable t{{"Rank", "paper target", "paper #", "ours target", "ours #"},
                    {util::Align::kRight, util::Align::kLeft, util::Align::kRight,
                     util::Align::kLeft, util::Align::kRight}};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    t.add_row({std::to_string(i + 1), paper[i][0], paper[i][1], rows[i].reference,
               std::to_string(rows[i].homographs)});
  }
  std::printf("%s\n", t.str().c_str());

  bench::shape("myetherwallet (not a top-10 site) is the most-targeted name",
               !rows.empty() && rows[0].reference == "myetherwallet");
  bool has_allstate = false;
  for (const auto& row : rows) has_allstate |= row.reference == "allstate";
  bench::shape("moderately popular allstate appears in the top-5", has_allstate);
  return 0;
}
