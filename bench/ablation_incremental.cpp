// Ablation: incremental SimChar maintenance (Section 4.2: "we would need
// to update SimChar when the Unicode standard adds a new set of glyphs ...
// Unicode 12.0 added 553 characters to version 11"). Compares a full
// pairwise rebuild with the incremental update that compares only the new
// characters against the repertoire.
#include <algorithm>

#include "bench_common.hpp"
#include "font/paper_font.hpp"
#include "simchar/simchar.hpp"
#include "unicode/idna_properties.hpp"

int main() {
  using namespace sham;
  bench::header("Ablation: incremental update vs full rebuild (+553 chars)");

  // "Unicode 11" font: the paper-scale font; "Unicode 12": the same plus
  // 553 additional characters from a block the old font did not cover.
  font::PaperFontConfig config;
  const auto old_paper = font::make_paper_font(config);

  font::SyntheticFontBuilder new_builder{config.seed, "synthetic+553"};
  // Rebuild the same coverage... the cheap way: copy every old glyph.
  // (Builder seeds are deterministic, so covering the same ranges yields
  // identical glyphs; we reuse the old font and add a new block.)
  std::vector<unicode::CodePoint> added;
  {
    // Myanmar block was not covered by the paper font: use it as the
    // "newly encoded" repertoire.
    const auto candidates = unicode::idna_permitted_in_range(0x1000, 0x109F);
    for (const auto cp : candidates) {
      if (added.size() >= 553) break;
      added.push_back(cp);
    }
    // Extend with Khmer if the block alone is too small.
    for (const auto cp : unicode::idna_permitted_in_range(0x1780, 0x17FF)) {
      if (added.size() >= 553) break;
      added.push_back(cp);
    }
  }

  // Compose the new font: old glyphs + synthetic glyphs for the additions.
  class CompositeFont final : public font::FontSource {
   public:
    CompositeFont(font::FontSourcePtr base, std::shared_ptr<font::SyntheticFont> extra)
        : base_{std::move(base)}, extra_{std::move(extra)} {}
    std::optional<font::GlyphBitmap> glyph(unicode::CodePoint cp) const override {
      if (auto g = extra_->glyph(cp)) return g;
      return base_->glyph(cp);
    }
    std::vector<unicode::CodePoint> coverage() const override {
      auto out = base_->coverage();
      const auto more = extra_->coverage();
      out.insert(out.end(), more.begin(), more.end());
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    }
    std::string name() const override { return base_->name() + "+553"; }

   private:
    font::FontSourcePtr base_;
    std::shared_ptr<font::SyntheticFont> extra_;
  };

  font::SyntheticFontBuilder extra_builder{config.seed ^ 0x553, "additions"};
  for (const auto cp : added) extra_builder.cover_range(cp, cp);
  const CompositeFont new_font{old_paper.font, extra_builder.build()};

  const auto existing = simchar::SimCharDb::build(*old_paper.font);

  simchar::BuildStats full_stats;
  const auto full = simchar::SimCharDb::build(new_font, {}, &full_stats);

  simchar::BuildStats update_stats;
  const auto updated =
      simchar::update_with_new_characters(existing, new_font, added, {}, &update_stats);

  util::TextTable t{{"strategy", "comparisons", "pairwise s", "pairs"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight}};
  t.add_row({"full rebuild", util::with_commas(full_stats.pairs_compared),
             util::fixed(full_stats.compare_seconds, 3),
             util::with_commas(full.pair_count())});
  t.add_row({"incremental (+553 chars)", util::with_commas(update_stats.pairs_compared),
             util::fixed(update_stats.compare_seconds, 3),
             util::with_commas(updated.pair_count())});
  std::printf("%s\n", t.str().c_str());

  const auto d = simchar::diff(existing, updated);
  std::printf("diff vs old database: %zu pairs added, %zu removed\n", d.added.size(),
              d.removed.size());

  bench::shape("incremental result identical to full rebuild",
               std::ranges::equal(updated.pairs(), full.pairs()));
  bench::shape("incremental does a fraction of the comparisons",
               update_stats.pairs_compared * 5 < full_stats.pairs_compared);
  bench::shape("no existing pairs lost", d.removed.empty());
  return 0;
}
