// Table 6: registered-domain sources and their IDN counts
// (paper: zone file 140.9 M / 952 K IDNs; domainlists.io 139.7 M / 953 K;
// union 141.2 M / 955 K = 0.67%).
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Table 6: domain-name lists and IDN counts");
  const auto& env = bench::standard_env();

  // List-only scenario at a larger backdrop with a benign-IDN majority.
  internet::ScenarioConfig config;
  config.total_domains = 2'000'000;
  config.reference_count = 1'000;
  config.attack_scale = 0.3;
  config.build_world = false;
  util::Stopwatch watch;
  const auto scenario = internet::generate_scenario(env.db_union, config);
  std::printf("[setup] generated %zu domains in %.2fs\n", scenario.domains.size(),
              watch.seconds());

  const auto rows = measure::dataset_statistics(scenario);
  util::TextTable t{{"Data", "#domains", "#IDNs", "IDN fraction"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight}};
  for (const auto& row : rows) {
    t.add_row({row.source, util::with_commas(row.domains), util::with_commas(row.idns),
               util::percent(static_cast<double>(row.idns) / row.domains, 2)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("paper: 140,900,279 / 952,352 (0.67%%); 139,667,014 / 953,209 (0.73%%); "
              "union 141,212,035 / 955,512 (0.67%%)\n");

  const double union_fraction =
      static_cast<double>(rows[2].idns) / static_cast<double>(rows[2].domains);
  bench::shape("union ≥ each source", rows[2].domains >= rows[0].domains &&
                                          rows[2].domains >= rows[1].domains);
  bench::shape("sources overlap heavily (each ≈ 99% of union)",
               rows[0].domains > rows[2].domains * 95 / 100 &&
                   rows[1].domains > rows[2].domains * 95 / 100);
  bench::shape("IDN fraction ≈ 0.67%",
               union_fraction > 0.005 && union_fraction < 0.009);
  return 0;
}
