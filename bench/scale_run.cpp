// Paper-scale streaming measurement run over the shared mmap DB artifact
// (Sections 5-6 at registry-zone scale):
//
//   * zone streaming — Step 1+2 as one bounded-memory pass through
//     dns::ZoneStreamReader; the verdicts must be byte-identical to the
//     classic materialise-then-detect path at every batch size;
//   * RSS bound — streaming a zone must grow the resident set by a
//     fraction of what materialising the same zone costs;
//   * multi-TLD fleet — one detect::Engine per TLD, every worker mapping
//     the same build-db artifact (page-cache shared), streaming its zone
//     as steady load; per-TLD throughput and fingerprints recorded;
//   * generation-diff ingestion — daily batches of new Unicode characters
//     and new registrations folded in incrementally
//     (simchar::update_with_new_characters, HomoglyphDb, SkeletonIndex::
//     rehash_changed), proven state-identical to a full rebuild;
//   * streaming zone generation — internet::ZoneTextStream synthesizes the
//     master-file text chunk-by-chunk, byte-identical to the zone files
//     written from the materialized scenario;
//   * intra-zone sharding — detection workers pulling batches off one
//     generated stream; verdict fingerprints must be identical at 1/2/8
//     shards (throughput scaling is recorded, and marked hardware_skipped
//     on single-core hosts);
//   * bounded-RSS ladder — full generate-and-detect runs at 2e6 and 1e7
//     domains; the peak resident set at 1e7 must stay within a fixed
//     slack (kGenRssSlackKib) of the 2e6 run, i.e. independent of the
//     population size.
//
// Results are persisted as BENCH_scale.json. `scale_run --smoke` is the
// seconds-scale correctness pass registered as the `scale_smoke` ctest
// label.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "db/artifact.hpp"
#include "detect/engine.hpp"
#include "detect/skeleton_index.hpp"
#include "dns/zone_file.hpp"
#include "font/synthetic_font.hpp"
#include "idna/idna.hpp"
#include "internet/scenario.hpp"
#include "measure/scale_run.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace sham;

void write_zone_file(const std::string& path, const dns::Zone& zone) {
  std::ofstream out{path, std::ios::trunc};
  out << dns::serialize_zone(zone);
}

void write_artifact(const std::string& path, const simchar::SimCharDb& sim,
                    const homoglyph::HomoglyphDb& db,
                    std::span<const std::string> refs) {
  db::WriteRequest request;
  request.simchar = &sim;
  request.homoglyph = &db;
  const detect::SkeletonIndex index{db, refs, {.max_bucket_occupancy = 64}};
  const auto skeleton = index.to_flat();
  request.references = refs;
  request.reference_fingerprint = detect::label_set_fingerprint(refs);
  request.skeleton = &skeleton;
  db::write_db_file(path, request);
}

/// Two font versions for the generation-diff pipeline: the new one adds a
/// near-duplicate of the 'o' cluster plus unrelated characters (the
/// test_simchar_update shape). One addition is the digit '0' — smaller
/// than every current member of the 'o' component, so folding it in moves
/// the component's canonical representative and forces the reference-side
/// skeleton index to rehash every label containing 'o'.
struct VersionedFonts {
  std::shared_ptr<font::SyntheticFont> old_font;
  std::shared_ptr<font::SyntheticFont> new_font;
  std::vector<unicode::CodePoint> added;
};

VersionedFonts make_versioned(std::uint64_t seed) {
  VersionedFonts v;
  font::SyntheticFontBuilder old_builder{seed};
  old_builder.cover_range(0x0430, 0x045F);
  old_builder.plant_cluster('o', {{0x043E, 0}, {0x0585, 2}});
  old_builder.plant_cluster('a', {{0x0251, 1}});
  v.old_font = old_builder.build();

  font::SyntheticFontBuilder new_builder{seed};
  new_builder.cover_range(0x0430, 0x045F);
  new_builder.plant_cluster('o', {{0x043E, 0}, {0x0585, 2}, {0x04E7, 3}, {0x30, 2}});
  new_builder.plant_cluster('a', {{0x0251, 1}});
  new_builder.cover_range(0x0531 + 0x30, 0x0586, 10, false);
  v.new_font = new_builder.build();

  for (const auto cp : v.new_font->coverage()) {
    if (!v.old_font->glyph(cp).has_value()) v.added.push_back(cp);
  }
  return v;
}

/// Homograph registrations of random references under `db`, as full
/// "<ace>.<tld>" names (only genuine IDNs — pure-ASCII mutations are
/// discarded).
std::vector<std::string> make_registrations(const homoglyph::HomoglyphDb& db,
                                            std::span<const std::string> refs,
                                            std::size_t count, util::Rng& rng,
                                            std::string_view tld) {
  std::vector<std::string> out;
  for (std::size_t attempts = 0; out.size() < count && attempts < count * 64;
       ++attempts) {
    const auto& ref = refs[rng.below(refs.size())];
    unicode::U32String label;
    for (const char c : ref) label.push_back(static_cast<unsigned char>(c));
    const std::size_t at = rng.below(label.size());
    const auto subs = db.homoglyphs_of(label[at]);
    if (subs.empty()) continue;
    label[at] = subs[rng.below(subs.size())];
    auto ace = idna::to_a_label(label);
    if (!ace.starts_with("xn--")) continue;
    out.push_back(std::move(ace) + "." + std::string{tld});
  }
  return out;
}

/// Run the daily generation-diff feed and report equivalence to a full
/// rebuild plus the totals folded in.
struct DiffRun {
  measure::DiffEquivalence equivalence;
  std::size_t days = 0;
  std::size_t pairs_added = 0;
  std::size_t entries_rehashed = 0;
  std::size_t idns = 0;
  std::size_t verdicts = 0;
};

DiffRun run_diff_feed(std::size_t registrations_per_day, std::uint64_t seed) {
  const auto v = make_versioned(seed);
  const std::vector<std::string> refs{"oooo", "oaoa", "aooa", "ooao", "aaoo"};
  measure::GenerationDiffPipeline pipeline{*v.old_font, refs};
  util::Rng rng{seed ^ 0x5ca1eULL};

  DiffRun run;
  const auto feed_day = [&](const font::FontSource* font,
                            std::vector<unicode::CodePoint> chars) {
    measure::DiffBatch batch;
    batch.font = font;
    batch.new_characters = std::move(chars);
    batch.new_registrations = make_registrations(
        pipeline.db(), pipeline.references(), registrations_per_day, rng, "com");
    const auto r = pipeline.apply(batch);
    ++run.days;
    run.pairs_added += r.db_update.pairs_added;
    run.entries_rehashed += r.index_entries_rehashed;
    run.idns += r.new_idns;
  };

  feed_day(nullptr, {});               // day 0: registrations only
  feed_day(v.new_font.get(), v.added); // day 1: Unicode additions land
  feed_day(nullptr, {});               // day 2+: steady registrations
  feed_day(nullptr, {});

  run.equivalence = measure::verify_against_rebuild(pipeline);
  run.verdicts = pipeline.detect(detect::Strategy::kSkeleton).verdicts.size();
  return run;
}

struct ZoneSet {
  internet::Scenario scenario;
  std::vector<measure::FleetZone> zones;  // written to disk
};

ZoneSet make_zones(const homoglyph::HomoglyphDb& db,
                   const internet::ScenarioConfig& config,
                   const std::string& prefix) {
  ZoneSet set;
  set.scenario = internet::generate_scenario(db, config);
  const std::pair<std::string, int> tlds[] = {{"com", 0}, {"net", 1}, {"org", 2}};
  for (const auto& [tld, which] : tlds) {
    const std::string path = prefix + "_" + tld + ".zone";
    write_zone_file(path, internet::scenario_to_zone(set.scenario, which, tld));
    set.zones.push_back({tld, path});
  }
  return set;
}

void remove_zone_set(const ZoneSet& set) {
  for (const auto& z : set.zones) std::remove(z.zone_path.c_str());
}

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  return {std::istreambuf_iterator<char>{in}, {}};
}

/// The streamed generator must reproduce the zone files written from the
/// materialized scenario byte-for-byte (same config, same which/TLD map
/// as make_zones).
bool genstream_identity(const homoglyph::HomoglyphDb& db,
                        const internet::ScenarioConfig& config,
                        const ZoneSet& set, bool print) {
  const std::pair<std::string, int> tlds[] = {{"com", 0}, {"net", 1}, {"org", 2}};
  bool ok = true;
  for (std::size_t i = 0; i < set.zones.size(); ++i) {
    const auto& [tld, which] = tlds[i];
    const auto streamed =
        internet::generate_zone_text(db, config, {.which = which, .tld = tld});
    const bool same = streamed == read_file(set.zones[i].zone_path);
    if (print) {
      std::printf("  genstream .%s (which=%d): %zu bytes  [%s]\n", tld.c_str(),
                  which, streamed.size(), same ? "identical" : "MISMATCH");
    }
    ok = ok && same;
  }
  return ok;
}

/// One synthetic generate-and-detect fleet run (never touches disk).
struct GenRun {
  std::size_t domains = 0;
  std::size_t shards = 1;
  std::size_t rss_before_kib = 0;
  std::size_t rss_peak_kib = 0;
  std::size_t rss_after_kib = 0;
  double seconds = 0.0;
  double domains_per_second = 0.0;
  std::uint64_t fingerprint = 0;
  std::size_t matches = 0;
  bool ok = false;
};

GenRun run_generated_fleet(const std::string& artifact,
                           internet::ScenarioConfig config, std::size_t domains,
                           std::size_t shards) {
  // Same seed/reference config as the artifact's reference list, so the
  // planted attacks target names the fleet actually detects against.
  config.total_domains = domains;
  measure::FleetOptions options;
  options.db_file = artifact;
  measure::FleetZone zone;
  zone.tld = "com";
  zone.scenario = config;
  zone.which = 2;
  options.zones = {zone};
  options.shards = shards;

  GenRun run;
  run.domains = domains;
  run.shards = shards;
  run.rss_before_kib = measure::resident_kib();
  const auto report = measure::run_fleet(options);
  run.rss_after_kib = measure::resident_kib();
  if (!report.ok() || report.zones.empty()) return run;
  const auto& z = report.zones.front();
  run.rss_peak_kib = z.rss_peak_kib;
  run.seconds = z.seconds;
  run.domains_per_second = z.domains_per_second;
  run.fingerprint = z.verdict_fingerprint;
  run.matches = z.matches;
  run.ok = true;
  return run;
}

/// Peak-RSS slack allowed between the 2e6- and 1e7-domain generated runs:
/// the pipeline's working set is a constant (generator head + chunk ring +
/// batch queue + per-shard verdict vectors), so the ceiling must not move
/// with the population. 256 MiB absorbs allocator noise and verdict
/// accumulation without masking an O(N) regression (materializing 1e7
/// domains would cost GiBs).
constexpr std::size_t kGenRssSlackKib = 256 * 1024;

/// Streaming vs materialized verdict identity for one zone, across batch
/// sizes and against an independent in-process engine.
bool verdict_identity(const detect::Engine& mapped, const detect::Engine& in_process,
                      std::span<const std::string> refs,
                      const measure::FleetZone& zone, bool print) {
  const measure::StreamOptions base{.tld = zone.tld, .batch_size = 512};
  const auto materialized = measure::detect_materialized(
      in_process, refs, zone.zone_path, base, detect::Strategy::kSerial);
  bool ok = true;
  for (const std::size_t batch : {std::size_t{7}, std::size_t{512},
                                  std::size_t{100'000}}) {
    const measure::StreamOptions options{.tld = zone.tld, .batch_size = batch};
    const auto streamed = measure::detect_streaming(
        mapped, refs, zone.zone_path, options, detect::Strategy::kSkeleton);
    const bool same = streamed.verdicts == materialized.verdicts &&
                      streamed.fingerprint == materialized.fingerprint;
    if (print) {
      std::printf("  .%s batch %-6zu: %zu verdicts over %zu IDNs  [%s]\n",
                  zone.tld.c_str(), batch, streamed.verdicts.size(),
                  streamed.stream.idns, same ? "OK" : "MISMATCH");
    }
    ok = ok && same;
  }
  return ok && !materialized.verdicts.empty();
}

int run_smoke() {
  measure::EnvironmentConfig env_config;
  env_config.font_scale = 0.1;
  const auto env = measure::Environment::create(env_config);

  internet::ScenarioConfig config;
  config.total_domains = 12'000;
  config.reference_count = 250;
  config.attack_scale = 0.05;
  auto set = make_zones(env.db_union, config, "scale_smoke");

  const std::string artifact = "scale_smoke.artifact";
  write_artifact(artifact, env.simchar, env.db_union, set.scenario.references);

  const auto mapped = detect::Engine::from_db_file(artifact);
  const auto& refs = mapped.artifact()->references();
  const detect::Engine in_process{env.db_union};

  std::printf("smoke: %zu domains, %zu refs, %zu zones\n",
              set.scenario.domains.size(), refs.size(), set.zones.size());
  bool ok = true;
  for (const auto& zone : set.zones) {
    ok = verdict_identity(mapped, in_process, refs, zone, true) && ok;
  }

  // Fleet over the shared artifact: every worker's fingerprint must equal
  // the in-process baseline for its TLD.
  measure::FleetOptions fleet_options;
  fleet_options.db_file = artifact;
  fleet_options.zones = set.zones;
  fleet_options.batch_size = 256;
  const auto fleet = measure::run_fleet(fleet_options);
  bool fleet_ok = fleet.ok();
  for (const auto& z : fleet.zones) {
    const measure::StreamOptions options{.tld = z.tld, .batch_size = 512};
    const auto baseline = measure::detect_materialized(
        in_process, refs,
        set.zones[static_cast<std::size_t>(&z - fleet.zones.data())].zone_path,
        options, detect::Strategy::kSerial);
    fleet_ok = fleet_ok && z.verdict_fingerprint == baseline.fingerprint;
  }
  std::printf("  fleet: %zu workers, %zu IDNs, %zu matches  [%s]\n",
              fleet.zones.size(), fleet.total_idns, fleet.total_matches,
              fleet_ok ? "OK" : "MISMATCH");
  ok = ok && fleet_ok;

  // Streamed generator byte-identical to the written zone files.
  ok = genstream_identity(env.db_union, config, set, true) && ok;

  // Generated sharded fleet: fingerprint-invariant at 1/2/4 shards.
  std::vector<GenRun> shard_runs;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    shard_runs.push_back(run_generated_fleet(artifact, config, 20'000, shards));
  }
  bool shard_ok = true;
  for (const auto& r : shard_runs) {
    shard_ok = shard_ok && r.ok && r.matches > 0 &&
               r.fingerprint == shard_runs.front().fingerprint;
  }
  std::printf("  generated fleet 20k domains, shards 1/2/4: %zu matches  [%s]\n",
              shard_runs.front().matches,
              shard_ok ? "fingerprints identical" : "MISMATCH");
  ok = ok && shard_ok;

  // Generation-diff ingestion equivalent to a full rebuild.
  const auto diff = run_diff_feed(24, 515);
  std::printf(
      "  diff feed: %zu days, %zu pairs added, %zu rehashed, %zu IDNs, "
      "%zu verdicts\n",
      diff.days, diff.pairs_added, diff.entries_rehashed, diff.idns,
      diff.verdicts);
  const auto& eq = diff.equivalence;
  std::printf("  diff vs rebuild: pairs %s, canonical %s, skeleton %s, verdicts %s\n",
              eq.pairs_identical ? "OK" : "MISMATCH",
              eq.canonical_identical ? "OK" : "MISMATCH",
              eq.skeleton_identical ? "OK" : "MISMATCH",
              eq.verdicts_identical ? "OK" : "MISMATCH");
  ok = ok && eq.ok() && diff.pairs_added > 0 && diff.entries_rehashed > 0 &&
       diff.verdicts > 0;

  remove_zone_set(set);
  std::remove(artifact.c_str());
  std::printf("smoke: %s\n", ok ? "streaming pipeline byte-identical" : "FAILED");
  return ok ? 0 : 1;
}

int run_full() {
  bench::header("Paper-scale streaming run over the shared mmap DB artifact");

  const auto& env = bench::standard_env();
  internet::ScenarioConfig config;
  config.total_domains = 300'000;
  config.reference_count = 1'000;
  config.attack_scale = 1.0;
  util::Stopwatch setup_watch;
  auto set = make_zones(env.db_union, config, "BENCH_scale");
  std::printf("scenario: %zu domains -> %zu zone files (%.2fs)\n",
              set.scenario.domains.size(), set.zones.size(), setup_watch.seconds());

  const std::string artifact = "BENCH_scale.artifact";
  write_artifact(artifact, env.simchar, env.db_union, set.scenario.references);
  const auto mapped = detect::Engine::from_db_file(artifact);
  const auto& refs = mapped.artifact()->references();
  const detect::Engine in_process{env.db_union};

  // --- RSS bound: streaming vs materialising the .com zone --------------
  const auto& com = set.zones.front();
  const std::size_t rss0 = measure::resident_kib();
  const measure::StreamOptions stream_options{.tld = com.tld, .batch_size = 4096};
  const auto streamed = measure::detect_streaming(mapped, refs, com.zone_path,
                                                  stream_options,
                                                  detect::Strategy::kSkeleton);
  const std::size_t rss1 = measure::resident_kib();
  const std::size_t stream_delta = rss1 > rss0 ? rss1 - rss0 : 0;
  std::size_t materialize_delta = 0;
  {
    std::ifstream in{com.zone_path};
    const std::string text{std::istreambuf_iterator<char>{in}, {}};
    const auto zone = dns::parse_zone(text);
    const std::size_t rss2 = measure::resident_kib();
    materialize_delta = rss2 > rss1 ? rss2 - rss1 : 0;
    std::printf("zone materialised: %zu records, RSS +%zu KiB\n",
                zone.records.size(), materialize_delta);
  }
  std::printf("zone streamed: %zu records in %zu batches, RSS +%zu KiB\n",
              streamed.stream.records, streamed.stream.batches, stream_delta);
  const bool rss_bounded =
      materialize_delta > 1024 && stream_delta * 4 <= materialize_delta;

  // --- Verdict identity across paths and batch sizes --------------------
  bool identical = true;
  for (const auto& zone : set.zones) {
    identical = verdict_identity(mapped, in_process, refs, zone, true) && identical;
  }

  // --- Fleet: one engine per TLD over the shared artifact ---------------
  measure::FleetOptions fleet_options;
  fleet_options.db_file = artifact;
  fleet_options.zones = set.zones;
  fleet_options.batch_size = 4096;
  fleet_options.passes = 2;
  const auto fleet = measure::run_fleet(fleet_options);
  bool fleet_identical = fleet.ok();
  for (std::size_t i = 0; i < fleet.zones.size(); ++i) {
    const auto& z = fleet.zones[i];
    const measure::StreamOptions options{.tld = z.tld, .batch_size = 4096};
    const auto baseline = measure::detect_materialized(
        in_process, refs, set.zones[i].zone_path, options, detect::Strategy::kSerial);
    fleet_identical = fleet_identical && z.verdict_fingerprint == baseline.fingerprint;
    std::printf("fleet .%s: %zu domains at %.0f domains/s, %zu matches  [%s]\n",
                z.tld.c_str(), z.stream.domains, z.domains_per_second, z.matches,
                z.verdict_fingerprint == baseline.fingerprint ? "identical"
                                                              : "MISMATCH");
  }
  std::printf("fleet RSS: %zu -> %zu KiB over %zu workers (artifact %zu KiB)\n",
              fleet.rss_before_kib, fleet.rss_after_kib, fleet.zones.size(),
              fleet.artifact_bytes / 1024);

  // --- Streamed generator vs the written zone files ---------------------
  bench::header("Streaming zone generation");
  const bool genstream_identical = genstream_identity(env.db_union, config, set, true);

  // --- Shard sweep over a 1e6-domain generated zone ---------------------
  // Fingerprint identity is enforced everywhere; the speedup criterion is
  // only meaningful with cores to scale onto.
  const std::size_t cores = std::thread::hardware_concurrency();
  std::vector<GenRun> shard_runs;
  bool shard_identical = true;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    shard_runs.push_back(run_generated_fleet(artifact, config, 1'000'000, shards));
    const auto& r = shard_runs.back();
    shard_identical = shard_identical && r.ok && r.matches > 0 &&
                      r.fingerprint == shard_runs.front().fingerprint;
    std::printf("shard sweep 1e6 domains x%zu shards: %.0f domains/s, "
                "%zu matches, peak RSS %zu KiB  [%s]\n",
                shards, r.domains_per_second, r.matches, r.rss_peak_kib,
                r.fingerprint == shard_runs.front().fingerprint ? "identical"
                                                                : "MISMATCH");
  }
  const bool shard_speedup =
      shard_runs.back().domains_per_second >
      shard_runs.front().domains_per_second * 1.2;
  const char* shard_speedup_criterion =
      cores < 2 ? "hardware_skipped" : (shard_speedup ? "met" : "FAILED");
  std::printf("shard speedup (8 vs 1): %.2fx on %zu core(s)  [%s]\n",
              shard_runs.back().domains_per_second /
                  std::max(1.0, shard_runs.front().domains_per_second),
              cores, shard_speedup_criterion);

  // --- Bounded-RSS ladder: 2e6 then 1e7 generated domains ---------------
  bench::header("Bounded-RSS generate-and-detect ladder");
  std::vector<GenRun> ladder;
  for (const std::size_t domains : {std::size_t{2'000'000}, std::size_t{10'000'000}}) {
    ladder.push_back(run_generated_fleet(artifact, config, domains, 1));
    const auto& r = ladder.back();
    std::printf("generated %zu domains: %.1fs at %.0f domains/s, %zu matches, "
                "RSS %zu -> peak %zu -> %zu KiB\n",
                r.domains, r.seconds, r.domains_per_second, r.matches,
                r.rss_before_kib, r.rss_peak_kib, r.rss_after_kib);
  }
  // The ceiling must not move with the population: the 1e7 peak stays
  // within kGenRssSlackKib of the 2e6 peak (5x the domains, ~flat RSS).
  const bool gen_rss_bounded =
      ladder[0].ok && ladder[1].ok &&
      ladder[1].rss_peak_kib <= ladder[0].rss_peak_kib + kGenRssSlackKib;
  std::printf("peak-RSS delta 1e7 vs 2e6: %lld KiB (slack %zu KiB)  [%s]\n",
              static_cast<long long>(ladder[1].rss_peak_kib) -
                  static_cast<long long>(ladder[0].rss_peak_kib),
              kGenRssSlackKib, gen_rss_bounded ? "bounded" : "FAILED");

  // --- Generation-diff ingestion ----------------------------------------
  const auto diff = run_diff_feed(200, 20260808);
  std::printf("diff feed: %zu days, %zu pairs added, %zu index entries rehashed, "
              "%zu IDNs folded in\n",
              diff.days, diff.pairs_added, diff.entries_rehashed, diff.idns);

  // --- BENCH_scale.json --------------------------------------------------
  {
    util::JsonWriter w{2};
    w.begin_object();
    w.field("bench", "scale_run");
    w.field("stream_rss_delta_kib", static_cast<std::uint64_t>(stream_delta));
    w.field("materialize_rss_delta_kib",
            static_cast<std::uint64_t>(materialize_delta));
    w.field("rss_criterion", rss_bounded ? "met" : "FAILED");
    w.field("verdicts_identical_criterion", identical ? "met" : "FAILED");
    w.field("fleet_identical_criterion", fleet_identical ? "met" : "FAILED");
    w.field("genstream_identity_criterion",
            genstream_identical ? "met" : "FAILED");
    w.field("shard_fingerprint_criterion", shard_identical ? "met" : "FAILED");
    w.field("shard_speedup_criterion", shard_speedup_criterion);
    w.field("cores", static_cast<std::uint64_t>(cores));
    w.key("shard_throughput").begin_array();
    for (const auto& r : shard_runs) {
      w.begin_object();
      w.field("shards", static_cast<std::uint64_t>(r.shards));
      w.field("domains", static_cast<std::uint64_t>(r.domains));
      w.field("domains_per_second", r.domains_per_second);
      w.field("rss_peak_kib", static_cast<std::uint64_t>(r.rss_peak_kib));
      w.end_object();
    }
    w.end_array();
    w.key("genstream_runs").begin_array();
    for (const auto& r : ladder) {
      w.begin_object();
      w.field("domains", static_cast<std::uint64_t>(r.domains));
      w.field("seconds", r.seconds);
      w.field("domains_per_second", r.domains_per_second);
      w.field("matches", static_cast<std::uint64_t>(r.matches));
      w.field("rss_before_kib", static_cast<std::uint64_t>(r.rss_before_kib));
      w.field("rss_peak_kib", static_cast<std::uint64_t>(r.rss_peak_kib));
      w.field("rss_after_kib", static_cast<std::uint64_t>(r.rss_after_kib));
      w.end_object();
    }
    w.end_array();
    w.field("genstream_rss_slack_kib",
            static_cast<std::uint64_t>(kGenRssSlackKib));
    w.field("genstream_rss_criterion", gen_rss_bounded ? "met" : "FAILED");
    w.field("diff_rebuild_criterion", diff.equivalence.ok() ? "met" : "FAILED");
    w.field("diff_days", static_cast<std::uint64_t>(diff.days));
    w.field("diff_pairs_added", static_cast<std::uint64_t>(diff.pairs_added));
    w.field("diff_entries_rehashed",
            static_cast<std::uint64_t>(diff.entries_rehashed));
    w.key("fleet").raw(fleet.to_json(2));
    w.end_object();
    if (std::FILE* f = std::fopen("BENCH_scale.json", "w")) {
      std::fputs(w.str().c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote BENCH_scale.json\n");
    }
  }

  remove_zone_set(set);
  std::remove(artifact.c_str());

  bench::shape("streaming verdicts byte-identical to materialised path", identical);
  bench::shape("streaming RSS growth a fraction of zone materialisation",
               rss_bounded);
  bench::shape("fleet workers byte-identical over one shared artifact",
               fleet_identical);
  bench::shape("streamed generator byte-identical to written zone files",
               genstream_identical);
  bench::shape("sharded verdict fingerprints identical at 1/2/8 shards",
               shard_identical);
  bench::shape("1e7-domain generated run peak RSS flat vs 2e6", gen_rss_bounded);
  bench::shape("incremental diff state identical to full rebuild",
               diff.equivalence.ok());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  return run_full();
}
