// Kernel dispatch-level sweep: throughput of the batched ∆, block-hash,
// and FNV kernels at every level the host can run, speedups vs the scalar
// reference, and the ≥4x batched-∆ criterion (hardware_skipped on hosts
// with no vector level). Merges a "delta_kernel" section into
// BENCH_simchar.json next to the Step II grid those kernels accelerate.
//
//   $ ./bench/kernel_sweep            # full sweep + JSON merge
//   $ ./bench/kernel_sweep --smoke    # cross-level equivalence only
//   $ ./bench/kernel_sweep --levels   # print runnable levels, one per line
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernels/kernels.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace sham;
using kernels::GlyphPanel;
using kernels::kGlyphWords;
using kernels::Level;

constexpr std::size_t kPanelGlyphs = 4096;
constexpr std::size_t kQueries = 128;
constexpr int kReps = 5;  // best-of to shed scheduler noise

struct Workload {
  GlyphPanel panel;
  std::vector<std::array<std::uint64_t, kGlyphWords>> glyphs;
  std::vector<std::array<std::uint64_t, kGlyphWords>> queries;
  // FNV: groups of 4 independent 64-value streams.
  std::vector<std::vector<std::uint32_t>> streams;
};

Workload make_workload(std::uint64_t seed) {
  util::Rng rng{seed};
  Workload w;
  w.glyphs.resize(kPanelGlyphs);
  w.panel.reset(kPanelGlyphs);
  for (std::size_t i = 0; i < kPanelGlyphs; ++i) {
    for (auto& word : w.glyphs[i]) word = rng.next();
    w.panel.set_glyph(i, w.glyphs[i].data());
  }
  w.queries.resize(kQueries);
  for (auto& q : w.queries) {
    for (auto& word : q) word = rng.next();
  }
  w.streams.resize(256);
  for (auto& s : w.streams) {
    s.resize(64);
    for (auto& v : s) v = static_cast<std::uint32_t>(rng.next());
  }
  return w;
}

/// Seconds for one full delta_batch pass (every query against the panel),
/// best of kReps. `sink` defeats dead-code elimination.
double time_delta(const Workload& w, std::int64_t& sink) {
  std::vector<std::int32_t> out(kPanelGlyphs);
  double best = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    util::Stopwatch watch;
    for (const auto& q : w.queries) {
      kernels::delta_batch_u1024(q.data(), w.panel, 0, kPanelGlyphs, out.data());
      sink += out[0] + out[kPanelGlyphs - 1];
    }
    best = std::min(best, watch.seconds());
  }
  return best;
}

/// Seconds for the θ=4 pigeonhole table keys (5 word-block spans over the
/// whole panel), best of kReps.
double time_block_hash(const Workload& w, std::int64_t& sink) {
  std::vector<std::uint64_t> keys(kPanelGlyphs);
  double best = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    util::Stopwatch watch;
    for (int b = 0; b < 5; ++b) {
      const auto first = static_cast<unsigned>(b * 16 / 5);
      const auto last = static_cast<unsigned>((b + 1) * 16 / 5);
      for (int pass = 0; pass < 8; ++pass) {
        kernels::block_hash_batch(w.panel, first, last, keys.data());
        sink += static_cast<std::int64_t>(keys[0] ^ keys[kPanelGlyphs - 1]);
      }
    }
    best = std::min(best, watch.seconds());
  }
  return best;
}

/// Seconds for hashing every stream group through fnv1a_batch4, best of
/// kReps.
double time_fnv(const Workload& w, std::int64_t& sink) {
  double best = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    util::Stopwatch watch;
    for (int pass = 0; pass < 16; ++pass) {
      for (std::size_t g = 0; g + 4 <= w.streams.size(); g += 4) {
        const std::uint32_t* ptrs[4];
        std::size_t lens[4];
        std::uint64_t seeds[4];
        for (int c = 0; c < 4; ++c) {
          ptrs[c] = w.streams[g + c].data();
          lens[c] = w.streams[g + c].size();
          seeds[c] = 0xcbf29ce484222325ULL + c;
        }
        std::uint64_t out[4];
        kernels::fnv1a_batch4(ptrs, lens, seeds, out);
        sink += static_cast<std::int64_t>(out[0] ^ out[3]);
      }
    }
    best = std::min(best, watch.seconds());
  }
  return best;
}

int run_levels() {
  for (const auto level : kernels::supported_levels()) {
    std::printf("%s\n", std::string{kernels::level_name(level)}.c_str());
  }
  return 0;
}

int run_smoke() {
  const auto w = make_workload(20260808);
  bool ok = true;

  // Scalar baselines.
  std::vector<std::vector<std::int32_t>> delta_truth(kQueries,
                                                     std::vector<std::int32_t>(kPanelGlyphs));
  std::vector<std::uint64_t> hash_truth(kPanelGlyphs);
  std::uint64_t fnv_truth[4];
  {
    kernels::ScopedKernelLevel pin{Level::kScalar};
    ok = ok && pin.forced();
    for (std::size_t q = 0; q < kQueries; ++q) {
      kernels::delta_batch_u1024(w.queries[q].data(), w.panel, 0, kPanelGlyphs,
                                 delta_truth[q].data());
    }
    kernels::block_hash_batch(w.panel, 3, 7, hash_truth.data());
    const std::uint32_t* ptrs[4];
    std::size_t lens[4];
    std::uint64_t seeds[4] = {1, 2, 3, 4};
    for (int c = 0; c < 4; ++c) {
      ptrs[c] = w.streams[c].data();
      lens[c] = w.streams[c].size();
    }
    kernels::fnv1a_batch4(ptrs, lens, seeds, fnv_truth);
  }

  for (const auto level : kernels::supported_levels()) {
    kernels::ScopedKernelLevel pin{level};
    bool same = pin.forced();
    std::vector<std::int32_t> out(kPanelGlyphs);
    for (std::size_t q = 0; q < kQueries && same; ++q) {
      kernels::delta_batch_u1024(w.queries[q].data(), w.panel, 0, kPanelGlyphs,
                                 out.data());
      same = same && out == delta_truth[q];
    }
    for (std::size_t i = 0; i < kPanelGlyphs && same; i += 97) {
      same = kernels::delta_u1024(w.queries[0].data(), w.glyphs[i].data()) ==
             delta_truth[0][i];
    }
    std::vector<std::uint64_t> keys(kPanelGlyphs);
    kernels::block_hash_batch(w.panel, 3, 7, keys.data());
    same = same && keys == hash_truth;
    const std::uint32_t* ptrs[4];
    std::size_t lens[4];
    std::uint64_t seeds[4] = {1, 2, 3, 4};
    for (int c = 0; c < 4; ++c) {
      ptrs[c] = w.streams[c].data();
      lens[c] = w.streams[c].size();
    }
    std::uint64_t out4[4];
    kernels::fnv1a_batch4(ptrs, lens, seeds, out4);
    same = same && std::equal(out4, out4 + 4, fnv_truth);
    std::printf("  kernel level %-6s %s\n",
                std::string{kernels::level_name(level)}.c_str(),
                same ? "identical" : "MISMATCH");
    ok = ok && same;
  }
  std::printf("kernel equivalence smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

/// Merge `line` (a complete `  "delta_kernel": {...},` line) into
/// BENCH_simchar.json right after the opening brace, replacing any earlier
/// delta_kernel line. Creates a minimal file when none exists.
void merge_into_bench_json(const std::string& section) {
  std::ifstream in{"BENCH_simchar.json"};
  std::string merged;
  if (in) {
    std::string line;
    bool inserted = false;
    while (std::getline(in, line)) {
      if (line.find("\"delta_kernel\":") != std::string::npos) continue;
      merged += line;
      merged += '\n';
      if (!inserted && line.find('{') == 0) {
        merged += "  \"delta_kernel\": " + section + ",\n";
        inserted = true;
      }
    }
    if (!inserted) {
      merged = "{\n  \"delta_kernel\": " + section + "\n}\n";
    }
  } else {
    merged = "{\n  \"delta_kernel\": " + section + "\n}\n";
  }
  if (std::FILE* f = std::fopen("BENCH_simchar.json", "w")) {
    std::fwrite(merged.data(), 1, merged.size(), f);
    std::fclose(f);
    std::printf("merged delta_kernel section into BENCH_simchar.json\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--levels") == 0) return run_levels();
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();

  bench::header("SIMD kernel layer: dispatch-level sweep");

  const auto w = make_workload(20260808);
  const auto levels = kernels::supported_levels();
  const double deltas_per_pass =
      static_cast<double>(kPanelGlyphs) * static_cast<double>(kQueries);

  util::TextTable t{{"level", "∆ batch s", "M∆/s", "∆ speedup", "blockhash s",
                     "speedup", "fnv4 s", "speedup"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight}};

  std::int64_t sink = 0;
  double scalar_delta = 0.0;
  double scalar_hash = 0.0;
  double scalar_fnv = 0.0;
  double best_delta_speedup = 1.0;
  std::string level_json;
  for (const auto level : levels) {
    kernels::ScopedKernelLevel pin{level};
    if (!pin.forced()) continue;
    const double delta_s = time_delta(w, sink);
    const double hash_s = time_block_hash(w, sink);
    const double fnv_s = time_fnv(w, sink);
    if (level == Level::kScalar) {
      scalar_delta = delta_s;
      scalar_hash = hash_s;
      scalar_fnv = fnv_s;
    }
    const double delta_speedup = scalar_delta / delta_s;
    const double hash_speedup = scalar_hash / hash_s;
    const double fnv_speedup = scalar_fnv / fnv_s;
    if (level != Level::kScalar) {
      best_delta_speedup = std::max(best_delta_speedup, delta_speedup);
    }
    t.add_row({std::string{kernels::level_name(level)}, util::fixed(delta_s, 4),
               util::fixed(deltas_per_pass / delta_s / 1e6, 1),
               util::fixed(delta_speedup, 2) + "x", util::fixed(hash_s, 4),
               util::fixed(hash_speedup, 2) + "x", util::fixed(fnv_s, 4),
               util::fixed(fnv_speedup, 2) + "x"});
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s\"%s\": {\"delta_seconds\": %.6f, \"delta_speedup\": %.2f, "
                  "\"block_hash_speedup\": %.2f, \"fnv1a4_speedup\": %.2f}",
                  level_json.empty() ? "" : ", ",
                  std::string{kernels::level_name(level)}.c_str(), delta_s,
                  delta_speedup, hash_speedup, fnv_speedup);
    level_json += buf;
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("(sink %lld)\n", static_cast<long long>(sink % 10));

  // ≥4x criterion: only judged when the host has a vector level at all.
  const bool vector_available = levels.size() > 1;
  const char* criterion = !vector_available ? "hardware_skipped"
                          : best_delta_speedup >= 4.0 ? "met"
                                                      : "FAILED";
  if (vector_available) {
    bench::shape("vector batched ∆ ≥4x the scalar reference",
                 best_delta_speedup >= 4.0);
  } else {
    std::printf("  shape: vector batched ∆ ≥4x scalar                    "
                "[SKIPPED: scalar-only host]\n");
  }

  char section[512];
  std::snprintf(section, sizeof section,
                "{\"active_level\": \"%s\", \"levels\": {%s}, "
                "\"best_delta_speedup\": %.2f, \"criterion_4x\": \"%s\"}",
                std::string{kernels::level_name(kernels::active_level())}.c_str(),
                level_json.c_str(), best_delta_speedup, criterion);
  merge_into_bench_json(section);
  return std::strcmp(criterion, "FAILED") == 0 ? 1 : 0;
}
