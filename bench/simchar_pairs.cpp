// Step II pair-mining strategies head to head: strategy × threshold ×
// repertoire-size grid over synthetic repertoires whose ink counts cluster
// tightly — the popcount band's worst case and the block index's best.
// Every cell is equivalence-checked against the all-pairs ground truth;
// the headline is the ∆-evaluation ratio between the band prune and the
// pigeonhole block index on the largest repertoire. Emits BENCH_simchar.json.
//
//   $ ./bench/simchar_pairs          # full grid + JSON
//   $ ./bench/simchar_pairs --smoke  # tiny equivalence grid (perf_smoke)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "kernels/kernels.hpp"
#include "simchar/pair_miner.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace sham;
using simchar::MinerGlyph;
using simchar::MinerStats;
using simchar::PairMiner;
using simchar::PairStrategy;

constexpr int kPixels = font::GlyphBitmap::kSize * font::GlyphBitmap::kSize;

/// A glyph with `ink` black pixels placed uniformly over the full bitmap
/// (every word carries ink, so no block degenerates into a shared bucket).
font::GlyphBitmap ink_glyph(util::Rng& rng, int ink) {
  font::GlyphBitmap g;
  int placed = 0;
  while (placed < ink) {
    const int bit = static_cast<int>(rng.below(kPixels));
    const int x = bit % font::GlyphBitmap::kSize;
    const int y = bit / font::GlyphBitmap::kSize;
    if (g.get(x, y)) continue;
    g.set(x, y);
    ++placed;
  }
  return g;
}

/// Flip exactly `count` distinct pixels: ∆(base, result) == count.
font::GlyphBitmap flipped(util::Rng& rng, const font::GlyphBitmap& base, int count) {
  auto g = base;
  std::vector<char> used(kPixels, 0);
  int done = 0;
  while (done < count) {
    const int bit = static_cast<int>(rng.below(kPixels));
    if (used[bit]) continue;
    used[bit] = 1;
    g.flip(bit % font::GlyphBitmap::kSize, bit / font::GlyphBitmap::kSize);
    ++done;
  }
  return g;
}

/// Adversarial repertoire: noise glyphs with ink drawn from the narrow band
/// [96, 104] (pairwise ∆ in the hundreds, yet every pair inside one popcount
/// window), seasoned with planted homoglyph clusters at ∆ ∈ {1, 2, 4, 8} —
/// one 4-member cluster per 20 glyphs.
std::vector<MinerGlyph> make_repertoire(std::size_t n, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<MinerGlyph> glyphs;
  glyphs.reserve(n);
  unicode::CodePoint cp = 0x1000;
  const auto push = [&](const font::GlyphBitmap& g) {
    glyphs.push_back({cp++, g, g.popcount()});
  };
  while (glyphs.size() < n) {
    if (glyphs.size() % 20 == 0 && glyphs.size() + 4 <= n) {
      const auto base = ink_glyph(rng, 96 + static_cast<int>(rng.below(9)));
      push(base);
      for (const int d : {1, 2, 4, 8}) {
        if (glyphs.size() >= n) break;
        push(flipped(rng, base, d));
      }
      continue;
    }
    push(ink_glyph(rng, 96 + static_cast<int>(rng.below(9))));
  }
  return glyphs;
}

struct Cell {
  std::size_t repertoire = 0;
  int threshold = 0;
  PairStrategy strategy = PairStrategy::kAllPairs;
  MinerStats stats;
  std::size_t pairs = 0;
  double seconds = 0.0;
  bool identical = true;
};

int run_smoke() {
  util::ThreadPool pool;    // hardware concurrency
  util::ThreadPool serial{1};
  const auto glyphs = make_repertoire(160, 20260805);
  bool ok = true;
  for (const int threshold : {0, 2, 4, 8}) {
    const PairMiner truth_miner{glyphs, threshold, PairStrategy::kAllPairs, pool};
    const auto truth = truth_miner.mine_all();
    for (const auto strategy :
         {PairStrategy::kPopcountBand, PairStrategy::kBlockIndex}) {
      const PairMiner parallel{glyphs, threshold, strategy, pool};
      const PairMiner single{glyphs, threshold, strategy, serial};
      const bool same = parallel.mine_all() == truth && single.mine_all() == truth;
      std::printf("  θ=%d %-13s %s\n", threshold,
                  std::string{simchar::pair_strategy_name(strategy)}.c_str(),
                  same ? "identical" : "MISMATCH");
      ok = ok && same;
    }
  }
  // Kernel-dispatch sweep: the pair set must be identical at every kernel
  // level the host can run, for every strategy (θ = 4, the paper default).
  {
    const PairMiner truth_miner{glyphs, 4, PairStrategy::kAllPairs, pool};
    const auto truth = truth_miner.mine_all();
    for (const auto level : kernels::supported_levels()) {
      kernels::ScopedKernelLevel pin{level};
      bool same = pin.forced();
      for (const auto strategy :
           {PairStrategy::kAllPairs, PairStrategy::kPopcountBand,
            PairStrategy::kBlockIndex}) {
        const PairMiner miner{glyphs, 4, strategy, pool};
        same = same && miner.mine_all() == truth;
      }
      std::printf("  kernel level %-6s %s\n",
                  std::string{kernels::level_name(level)}.c_str(),
                  same ? "identical" : "MISMATCH");
      ok = ok && same;
    }
  }
  std::printf("simchar pair-mining smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();

  bench::header("SimChar Step II pair-mining strategies");

  util::ThreadPool pool;
  const std::size_t sizes[] = {512, 2048, 6144};
  const int thresholds[] = {2, 4, 8};
  constexpr PairStrategy kStrategies[] = {PairStrategy::kAllPairs,
                                          PairStrategy::kPopcountBand,
                                          PairStrategy::kBlockIndex};

  util::TextTable t{{"glyphs", "θ", "strategy", "∆ evals", "domain", "avoided",
                     "candidates", "pairs", "seconds", "identical"},
                    {util::Align::kRight, util::Align::kRight, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight, util::Align::kRight,
                     util::Align::kLeft}};

  std::vector<Cell> cells;
  for (const auto n : sizes) {
    const auto glyphs = make_repertoire(n, 20260805);
    for (const int threshold : thresholds) {
      // The all-pairs cell doubles as the ground truth for the other two.
      std::vector<simchar::HomoglyphPair> truth;
      for (const auto strategy : kStrategies) {
        Cell cell;
        cell.repertoire = n;
        cell.threshold = threshold;
        cell.strategy = strategy;
        util::Stopwatch watch;
        const PairMiner miner{glyphs, threshold, strategy, pool};
        auto pairs = miner.mine_all(&cell.stats);
        cell.seconds = watch.seconds();
        cell.pairs = pairs.size();
        if (strategy == PairStrategy::kAllPairs) {
          truth = std::move(pairs);
        } else {
          cell.identical = pairs == truth;
        }
        cells.push_back(cell);
        const double avoided =
            cell.stats.all_pairs_domain == 0
                ? 0.0
                : 100.0 * static_cast<double>(cell.stats.comparisons_avoided) /
                      static_cast<double>(cell.stats.all_pairs_domain);
        t.add_row({util::with_commas(n), std::to_string(threshold),
                   std::string{simchar::pair_strategy_name(strategy)},
                   util::with_commas(cell.stats.delta_evaluations),
                   util::with_commas(cell.stats.all_pairs_domain),
                   util::fixed(avoided, 1) + "%",
                   util::with_commas(cell.stats.candidates_deduped),
                   util::with_commas(cell.pairs), util::fixed(cell.seconds, 3),
                   cell.identical ? "yes" : "NO"});
      }
    }
  }
  std::printf("%s\n", t.str().c_str());

  // Headline: how many ∆ evaluations the band prune needs per block-index
  // evaluation on the largest repertoire, per threshold.
  const std::size_t largest = sizes[std::size(sizes) - 1];
  bool all_identical = true;
  for (const auto& cell : cells) all_identical = all_identical && cell.identical;
  double ratio_theta4 = 0.0;
  std::string ratio_json;
  for (const int threshold : thresholds) {
    std::uint64_t band = 0;
    std::uint64_t block = 0;
    for (const auto& cell : cells) {
      if (cell.repertoire != largest || cell.threshold != threshold) continue;
      if (cell.strategy == PairStrategy::kPopcountBand)
        band = cell.stats.delta_evaluations;
      if (cell.strategy == PairStrategy::kBlockIndex)
        block = cell.stats.delta_evaluations;
    }
    const double ratio =
        static_cast<double>(band) / static_cast<double>(std::max<std::uint64_t>(block, 1));
    if (threshold == 4) ratio_theta4 = ratio;
    std::printf("θ=%d, %s glyphs: band %s ∆ vs block index %s ∆ -> %.1fx fewer\n",
                threshold, util::with_commas(largest).c_str(),
                util::with_commas(band).c_str(), util::with_commas(block).c_str(),
                ratio);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s\"%d\": %.1f", ratio_json.empty() ? "" : ", ",
                  threshold, ratio);
    ratio_json += buf;
  }

  bench::shape("every strategy cell identical to all-pairs", all_identical);
  bench::shape("block index ≥10x fewer ∆ than band prune at θ=4 (largest repertoire)",
               ratio_theta4 >= 10.0);

  // Parallel speedup on the heaviest cell (all-pairs, θ=4, largest
  // repertoire). Recorded hardware_skipped only on a single-core host —
  // any multi-core box must beat the serial pool.
  const unsigned hw = std::thread::hardware_concurrency();
  double parallel_speedup = 0.0;
  bool parallel_identical = true;
  {
    util::ThreadPool serial{1};
    const auto glyphs = make_repertoire(largest, 20260805);
    const PairMiner serial_miner{glyphs, 4, PairStrategy::kAllPairs, serial};
    util::Stopwatch serial_watch;
    const auto serial_pairs = serial_miner.mine_all();
    const double serial_seconds = serial_watch.seconds();
    const PairMiner parallel_miner{glyphs, 4, PairStrategy::kAllPairs, pool};
    util::Stopwatch parallel_watch;
    const auto parallel_pairs = parallel_miner.mine_all();
    const double parallel_seconds = parallel_watch.seconds();
    parallel_speedup = serial_seconds / std::max(parallel_seconds, 1e-9);
    parallel_identical = parallel_pairs == serial_pairs;
    std::printf("parallel mine_all (θ=4, %s glyphs): serial %.3fs, pool %.3fs "
                "-> %.2fx (%u hardware threads)\n",
                util::with_commas(largest).c_str(), serial_seconds,
                parallel_seconds, parallel_speedup, hw);
    if (hw >= 2) {
      bench::shape("thread pool beats the serial miner on the heaviest cell",
                   parallel_speedup >= 1.2);
    } else {
      std::printf("  shape: thread-pool speedup on the heaviest cell       "
                  "[SKIPPED: single-core host]\n");
    }
  }

  std::string grid_json;
  for (const auto& cell : cells) {
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"repertoire\": %zu, \"threshold\": %d, \"strategy\": "
                  "\"%s\", \"delta_evaluations\": %llu, \"all_pairs_domain\": "
                  "%llu, \"comparisons_avoided\": %llu, \"candidates_deduped\": "
                  "%llu, \"pairs\": %zu, \"seconds\": %.6f, "
                  "\"identical_to_all_pairs\": %s}%s\n",
                  cell.repertoire, cell.threshold,
                  std::string{simchar::pair_strategy_name(cell.strategy)}.c_str(),
                  static_cast<unsigned long long>(cell.stats.delta_evaluations),
                  static_cast<unsigned long long>(cell.stats.all_pairs_domain),
                  static_cast<unsigned long long>(cell.stats.comparisons_avoided),
                  static_cast<unsigned long long>(cell.stats.candidates_deduped),
                  cell.pairs, cell.seconds, cell.identical ? "true" : "false",
                  &cell == &cells.back() ? "" : ",");
    grid_json += buf;
  }

  if (std::FILE* f = std::fopen("BENCH_simchar.json", "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"simchar_pairs\",\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"grid\": [\n%s  ],\n"
                 "  \"largest_repertoire\": %zu,\n"
                 "  \"band_vs_block_delta_ratio\": {%s},\n"
                 "  \"band_vs_block_delta_ratio_theta4\": %.1f,\n"
                 "  \"identical_to_all_pairs_in_every_cell\": %s,\n"
                 "  \"parallel_speedup_theta4\": %.2f,\n"
                 "  \"parallel_identical_to_serial\": %s,\n"
                 "  \"parallel_speedup_criterion\": \"%s\",\n"
                 "  \"block_index_10x_criterion\": \"%s\"\n"
                 "}\n",
                 std::thread::hardware_concurrency(), grid_json.c_str(), largest,
                 ratio_json.c_str(), ratio_theta4,
                 all_identical ? "true" : "false", parallel_speedup,
                 parallel_identical ? "true" : "false",
                 hw >= 2 ? (parallel_speedup >= 1.2 ? "met" : "FAILED")
                         : "hardware_skipped",
                 all_identical && ratio_theta4 >= 10.0 ? "met" : "FAILED");
    std::fclose(f);
    std::printf("wrote BENCH_simchar.json\n");
  }
  return all_identical && parallel_identical ? 0 : 1;
}
