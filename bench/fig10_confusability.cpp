// Figure 10: confusability of Random vs SimChar vs UC pairs (simulated
// crowd study; paper: 30 UC pairs / 100 SimChar pairs / 30 dummies,
// 28 kept participants, ~500 effective responses per set).
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Figure 10: confusability of Random / SimChar / UC pairs");
  const auto& env = bench::standard_env();
  const auto result = measure::confusability_study(env);

  std::printf("workers kept: %zu\n\n", result.workers_kept);
  util::TextTable t{{"Set", "n", "mean", "median", "q1", "q3", "1s", "2s", "3s", "4s", "5s"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight}};
  const auto add = [&](const char* name, const perception::LikertSummary& s) {
    t.add_row({name, std::to_string(s.n), util::fixed(s.mean, 2),
               util::fixed(s.median, 1), util::fixed(s.q1, 1), util::fixed(s.q3, 1),
               std::to_string(s.histogram[0]), std::to_string(s.histogram[1]),
               std::to_string(s.histogram[2]), std::to_string(s.histogram[3]),
               std::to_string(s.histogram[4])});
  };
  add("Random", result.random);
  add("SimChar", result.simchar);
  add("UC", result.uc);
  std::printf("%s\n", t.str().c_str());
  std::printf("paper: both DBs have median 4; SimChar mean > 4 > UC mean; "
              "random concentrates at 'very distinct'\n");

  bench::shape("SimChar more confusable than UC", result.simchar.mean > result.uc.mean);
  bench::shape("UC clearly more confusable than random",
               result.uc.mean > result.random.mean + 1.0);
  bench::shape("SimChar mean > 4", result.simchar.mean > 4.0);
  bench::shape("SimChar median at 'confusing' (4)", result.simchar.median >= 4.0);
  bench::shape("random reads 'very distinct'", result.random.mean < 1.5);
  return 0;
}
