// Table 3: homoglyphs of Basic Latin lowercase letters in SimChar vs
// UC ∩ IDNA.
#include "bench_common.hpp"

namespace {

// Paper Table 3, UC ∩ IDNA column.
int paper_uc_count(char letter) {
  switch (letter) {
    case 'o': return 34; case 'l': return 12; case 'y': return 10;
    case 'i': return 9;  case 'u': return 9;  case 'w': return 8;
    case 'v': return 6;  case 's': return 5;  case 'r': return 5;
    case 'c': return 4;  case 'd': return 4;  case 'g': return 4;
    case 'f': return 4;  case 'a': return 3;  case 'b': return 3;
    case 'e': return 3;  case 'h': return 3;  case 'q': return 3;
    case 'p': return 3;  case 'x': return 3;  case 'j': return 2;
    case 'n': return 2;  case 'z': return 2;
    default: return 0;
  }
}

}  // namespace

int main() {
  using namespace sham;
  bench::header("Table 3: homoglyphs of Latin lowercase letters");
  const auto& env = bench::standard_env();
  const auto rows = measure::latin_homoglyph_counts(env);

  util::TextTable t{{"letter", "paper SimChar", "ours SimChar", "paper UC∩IDNA",
                     "ours UC∩IDNA"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight}};
  std::size_t total_sim = 0;
  std::size_t total_uc = 0;
  int paper_sim_total = 0;
  int paper_uc_total = 0;
  for (const auto& row : rows) {
    int paper_sim = 0;
    for (const auto& [l, c] : font::table3_simchar_counts()) {
      if (l == row.letter) paper_sim = c;
    }
    t.add_row({std::string(1, row.letter), std::to_string(paper_sim),
               std::to_string(row.simchar_count), std::to_string(paper_uc_count(row.letter)),
               std::to_string(row.uc_idna_count)});
    total_sim += row.simchar_count;
    total_uc += row.uc_idna_count;
    paper_sim_total += paper_sim;
    paper_uc_total += paper_uc_count(row.letter);
  }
  t.add_row({"Total", std::to_string(paper_sim_total), std::to_string(total_sim),
             std::to_string(paper_uc_total), std::to_string(total_uc)});
  std::printf("%s\n", t.str().c_str());

  bench::shape("'o' is the most homoglyph-rich letter", rows.front().letter == 'o');
  bench::shape("SimChar total (351 in paper) matches planted structure",
               total_sim == 351);
  bench::shape("SimChar finds more Latin homoglyphs than UC ∩ IDNA",
               total_sim > total_uc);
  return 0;
}
