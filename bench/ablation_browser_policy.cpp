// Ablation: browser display policies vs database-driven detection
// (Sections 2.2 and 7.2). For every planted homograph attack, ask: would
// the mixed-script policy have forced Punycode display? Would the
// whole-script-confusable hardening? ShamFinder detects them all by
// construction — and, unlike the blanket Punycode fallback, pinpoints the
// substituted characters for a user-comprehensible warning.
#include "bench_common.hpp"
#include "core/browser_policy.hpp"

int main() {
  using namespace sham;
  bench::header("Ablation: browser display policies vs ShamFinder");
  const auto& env = bench::standard_env();
  const auto& ctx = bench::standard_wild();

  std::size_t total = 0;
  std::size_t legacy_caught = 0;
  std::size_t mixed_caught = 0;
  std::size_t whole_caught = 0;
  std::size_t benign_punished_mixed = 0;
  std::size_t benign_total = 0;

  for (const auto& attack : ctx.scenario.attacks) {
    ++total;
    if (core::legacy_policy(attack.unicode).decision == core::DisplayDecision::kPunycode) {
      ++legacy_caught;
    }
    if (core::mixed_script_policy(attack.unicode).decision ==
        core::DisplayDecision::kPunycode) {
      ++mixed_caught;
    }
    if (core::whole_script_policy(attack.unicode, &env.db_union).decision ==
        core::DisplayDecision::kPunycode) {
      ++whole_caught;
    }
  }
  // Collateral damage: how many *benign* IDNs get their Unicode display
  // taken away by each policy?
  std::size_t benign_punished_whole = 0;
  for (const auto& idn : ctx.scenario.benign_idns) {
    ++benign_total;
    if (core::mixed_script_policy(idn.label).decision ==
        core::DisplayDecision::kPunycode) {
      ++benign_punished_mixed;
    }
    if (core::whole_script_policy(idn.label, &env.db_union).decision ==
        core::DisplayDecision::kPunycode) {
      ++benign_punished_whole;
    }
  }

  const auto counts = measure::detection_counts(ctx);
  util::TextTable t{{"defence", "attacks flagged", "rate", "benign IDNs punished"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight}};
  t.add_row({"legacy browser (pre-2017)", util::with_commas(legacy_caught),
             util::percent(static_cast<double>(legacy_caught) / total), "0"});
  t.add_row({"mixed-script policy", util::with_commas(mixed_caught),
             util::percent(static_cast<double>(mixed_caught) / total),
             util::with_commas(benign_punished_mixed)});
  t.add_row({"+ whole-script confusables", util::with_commas(whole_caught),
             util::percent(static_cast<double>(whole_caught) / total),
             util::with_commas(benign_punished_whole)});
  t.add_row({"ShamFinder (UC ∪ SimChar)", util::with_commas(counts.true_positives),
             util::percent(static_cast<double>(counts.true_positives) / counts.planted),
             "0 (warning UI, Unicode kept)"});
  std::printf("%s\n", t.str().c_str());
  std::printf("benign IDN population: %zu\n", benign_total);

  bench::shape("legacy browsers catch nothing", legacy_caught == 0);
  bench::shape("mixed-script policy misses a chunk of attacks",
               mixed_caught < total);
  bench::shape("whole-script check improves on mixed-script",
               whole_caught >= mixed_caught);
  bench::shape("ShamFinder catches all planted attacks",
               counts.true_positives == counts.planted);
  return 0;
}
