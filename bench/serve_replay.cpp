// Resident-service replay benchmark: N closed-loop client threads drive
// a DetectionServer with a mixed cold/warm workload (rotating reference
// lists × alternating zone snapshots) and the driver reports request
// latency percentiles, throughput, shed rate, and the same-snapshot
// coalescing ratio, written to BENCH_serve.json.
//
// Every kOk response is verified byte-identical to the serial cache-free
// engine: the serve path adds scheduling, never changes detection output.
//
// `serve_replay --smoke` runs a seconds-scale correctness pass instead
// (tiny workload, verification on, drain checked) — registered under the
// `perf_smoke` ctest label.
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench_common.hpp"
#include "serve/replay.hpp"
#include "util/json.hpp"

namespace {

using namespace sham;

homoglyph::HomoglyphDb make_db() {
  simchar::SimCharDb sim{{
      {'o', 0x043E, 0},
      {'o', 0x0585, 2},
      {'e', 0x00E9, 3},
      {'a', 0x0430, 1},
      {'i', 0x0131, 2},
  }};
  homoglyph::DbConfig config;
  config.use_uc = false;
  return homoglyph::HomoglyphDb{sim, unicode::ConfusablesDb::embedded(), config};
}

int run_smoke() {
  const auto db = make_db();
  const auto workload = serve::make_replay_workload(db, 8, 6, 2, 300, 20260808);
  serve::DetectionServer server{db, {}, {.slots = 2, .queue_capacity = 64}};
  serve::ReplayConfig config;
  config.clients = 4;
  config.requests_per_client = 16;
  const auto report = serve::run_replay(server, db, workload, config);
  const auto stats = server.stats();
  std::printf("smoke: %zu clients x %zu requests, %llu ok, %llu shed, "
              "%llu expired, coalescing %.2f\n",
              config.clients, config.requests_per_client,
              static_cast<unsigned long long>(report.ok),
              static_cast<unsigned long long>(report.shed),
              static_cast<unsigned long long>(report.expired),
              report.coalescing_ratio);
  bool ok = true;
  const auto check = [&](const char* what, bool pass) {
    std::printf("  %-52s [%s]\n", what, pass ? "OK" : "FAIL");
    ok = ok && pass;
  };
  check("every response accounted for", report.sent == config.clients *
                                                          config.requests_per_client &&
                                            report.ok + report.shed + report.expired +
                                                    report.other ==
                                                report.sent);
  check("all ok responses byte-identical to serial engine",
        report.verified && report.mismatches == 0 && report.ok > 0);
  check("server counters consistent with replay",
        stats.served == report.ok && stats.queue_depth == 0);
  server.stop();
  check("drained on stop", !server.stats().running);
  std::printf("smoke: %s\n", ok ? "serve path byte-identical and drained" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();

  bench::header("Resident detection service: slot-scheduled replay");
  const auto db = make_db();
  // 16 reference lists (beyond the engine's 8-entry response memo, so
  // warm-index scans actually run) x 2 zone snapshots of 2,000 IDNs.
  const auto workload = serve::make_replay_workload(db, 16, 12, 2, 2000, 20260808);

  // --- Slot sweep: same traffic, growing slot pool ----------------------
  util::TextTable t{{"slots", "ok", "p50 ms", "p95 ms", "p99 ms", "rps",
                     "coalescing", "verified"},
                    {util::Align::kRight, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kLeft}};
  serve::ReplayConfig config;
  config.clients = 4;
  config.requests_per_client = 64;
  bool all_verified = true;
  double coalescing_single_slot = 0.0;
  double p99_best = 0.0;
  std::vector<std::pair<std::size_t, serve::ReplayReport>> sweep;
  for (const std::size_t slots : {1u, 2u, 4u}) {
    serve::DetectionServer server{db, {}, {.slots = slots, .queue_capacity = 128}};
    const auto report = serve::run_replay(server, db, workload, config);
    all_verified = all_verified && report.verified && report.ok > 0;
    if (slots == 1) coalescing_single_slot = report.coalescing_ratio;
    p99_best = report.p99_ms;
    t.add_row({std::to_string(slots), std::to_string(report.ok),
               util::fixed(report.p50_ms, 3), util::fixed(report.p95_ms, 3),
               util::fixed(report.p99_ms, 3), util::fixed(report.throughput_rps, 0),
               util::fixed(report.coalescing_ratio, 2),
               report.verified ? "yes" : "NO"});
    sweep.emplace_back(slots, report);
  }
  std::printf("slot sweep (%zu clients x %zu requests, %zu ref lists x %zu zones "
              "of %zu IDNs):\n%s\n",
              config.clients, config.requests_per_client,
              workload.reference_lists.size(), workload.zones.size(),
              workload.zones.front()->size(), t.str().c_str());

  // --- Overload: tiny queue, twice the clients, shedding on -------------
  serve::ReplayReport pressure;
  {
    serve::DetectionServer server{
        db,
        {},
        {.slots = 1, .queue_capacity = 2, .overload = serve::OverloadPolicy::kRejectWhenFull}};
    serve::ReplayConfig heavy;
    heavy.clients = 8;
    heavy.requests_per_client = 32;
    pressure = serve::run_replay(server, db, workload, heavy);
    std::printf("overload (1 slot, queue capacity 2, 8 clients): %llu ok, "
                "%llu shed (%.0f%%), verified %s\n\n",
                static_cast<unsigned long long>(pressure.ok),
                static_cast<unsigned long long>(pressure.shed),
                pressure.shed_rate * 100.0, pressure.verified ? "yes" : "NO");
  }

  {
    util::JsonWriter w{2};
    w.begin_object();
    w.field("bench", "serve_replay");
    w.field("hardware_concurrency",
            static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    w.field("reference_lists",
            static_cast<std::uint64_t>(workload.reference_lists.size()));
    w.field("zones", static_cast<std::uint64_t>(workload.zones.size()));
    w.field("idns_per_zone",
            static_cast<std::uint64_t>(workload.zones.front()->size()));
    w.key("slot_sweep").begin_array();
    for (const auto& [slots, report] : sweep) {
      w.begin_object();
      w.field("slots", static_cast<std::uint64_t>(slots));
      w.key("report").raw(report.to_json());
      w.end_object();
    }
    w.end_array();
    w.key("overload").raw(pressure.to_json());
    w.end_object();
    if (std::FILE* f = std::fopen("BENCH_serve.json", "w")) {
      std::fprintf(f, "%s\n", w.str().c_str());
      std::fclose(f);
      std::printf("wrote BENCH_serve.json\n");
    }
  }

  bench::shape("every admitted response byte-identical to the serial engine",
               all_verified && pressure.verified);
  bench::shape("same-snapshot coalescing amortizes (ratio > 1.0 at 1 slot)",
               coalescing_single_slot > 1.0);
  bench::shape("overload sheds instead of queueing without bound",
               pressure.shed > 0);
  bench::shape("p99 stays in interactive range (< 1 s)", p99_best < 1000.0);
  return 0;
}
