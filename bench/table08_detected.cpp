// Table 8: number of detected IDN homographs of ASCII domains, by
// homoglyph database (paper: UC 436 / SimChar 3,110 / union 3,280 — the
// union detects ≈8x more than the UC-only prior approach of Quinkert
// et al.). Also scores against the planted ground truth, which the real
// measurement could not do.
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Table 8: detected IDN homographs per homoglyph database");
  const auto& ctx = bench::standard_wild();
  const auto counts = measure::detection_counts(ctx);

  util::TextTable t{{"Homoglyph DB", "paper", "ours"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight}};
  t.add_row({"UC", "436", util::with_commas(counts.uc)});
  t.add_row({"SimChar", "3,110", util::with_commas(counts.simchar)});
  t.add_row({"UC ∪ SimChar", "3,280", util::with_commas(counts.union_all)});
  std::printf("%s\n", t.str().c_str());

  std::printf("ground truth: %zu planted attacks, %zu detected, %zu missed, "
              "%zu extra detections\n",
              counts.planted, counts.true_positives, counts.false_negatives,
              counts.extra_detections);

  const double ratio = static_cast<double>(counts.union_all) /
                       static_cast<double>(counts.uc == 0 ? 1 : counts.uc);
  std::printf("union / UC-only ratio: %.1fx (paper: 3280/436 = 7.5x)\n", ratio);

  bench::shape("SimChar detects far more than UC alone", counts.simchar > 3 * counts.uc);
  bench::shape("union ≈ 6-9x the UC-only baseline", ratio > 5.0 && ratio < 10.0);
  bench::shape("all planted attacks recovered", counts.false_negatives == 0);
  return 0;
}
