// Table 1: number of characters / homoglyph pairs in each character set
// (IDNA2008, UC, UC∩IDNA, SimChar, SimChar∩UC, union).
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Table 1: character sets and homoglyph pairs");
  const auto& env = bench::standard_env();
  const auto s = measure::charset_sizes(env);

  util::TextTable t{{"Set", "paper #chars", "ours #chars", "paper #pairs", "ours #pairs"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight}};
  t.add_row({"IDNA", "123,006", util::with_commas(s.idna_chars), "n/a", "n/a"});
  t.add_row({"UC", "9,605", util::with_commas(s.uc_chars), "6,296",
             util::with_commas(s.uc_pairs)});
  t.add_row({"UC ∩ IDNA", "980", util::with_commas(s.uc_idna_chars), "627",
             util::with_commas(s.uc_idna_pairs)});
  t.add_row({"SimChar", "12,686", util::with_commas(s.simchar_chars), "13,208",
             util::with_commas(s.simchar_pairs)});
  t.add_row({"SimChar ∩ UC", "233", util::with_commas(s.simchar_uc_chars), "127", "n/a"});
  t.add_row({"SimChar ∪ (UC ∩ IDNA)", "13,210", util::with_commas(s.union_chars),
             "13,708", util::with_commas(s.union_pairs)});
  std::printf("%s\n", t.str().c_str());

  bench::shape("UC ∩ IDNA is a minority of UC (paper: 980 of 9,605)",
               s.uc_idna_chars * 2 < s.uc_chars);
  bench::shape("SimChar ≫ UC ∩ IDNA (new homoglyphs found)",
               s.simchar_chars > 3 * s.uc_idna_chars);
  bench::shape("SimChar ∩ UC small but nonempty (complementary DBs)",
               s.simchar_uc_chars > 0 && s.simchar_uc_chars * 4 < s.simchar_chars);
  bench::shape("union adds UC pairs on top of SimChar", s.union_pairs > s.simchar_pairs);
  return 0;
}
