// Table 12: classification of the active IDN homographs (paper: parking
// 348, for-sale 345, redirect 338, normal 281, empty 222, error 113 of
// 1,647 — 42% are monetised).
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Table 12: classification of active IDN homographs");
  const auto& ctx = bench::standard_wild();
  const auto rows = measure::classify_active(ctx);

  const auto paper = [](const std::string& name) -> const char* {
    if (name == "Domain parking") return "348";
    if (name == "For sale") return "345";
    if (name == "Redirect") return "338";
    if (name == "Normal") return "281";
    if (name == "Empty") return "222";
    if (name == "Error") return "113";
    if (name == "Total") return "1,647";
    return "-";
  };
  util::TextTable t{{"Category", "paper", "ours"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight}};
  for (const auto& row : rows) {
    t.add_row({row.category, paper(row.category), util::with_commas(row.count)});
  }
  std::printf("%s\n", t.str().c_str());

  std::size_t business = 0;
  std::size_t total = 0;
  for (const auto& row : rows) {
    if (row.category == "Domain parking" || row.category == "For sale") {
      business += row.count;
    }
    if (row.category == "Total") total = row.count;
  }
  const double business_fraction = static_cast<double>(business) / total;
  bench::shape("parking leads the classification", rows[0].category == "Domain parking");
  bench::shape("~42% of active homographs are monetised (parking + sale)",
               business_fraction > 0.32 && business_fraction < 0.52);
  return 0;
}
