// Section 4.2: detection throughput. The paper matched the Alexa top-10K
// references against 141 M .com domains (955 K IDNs) in 743.6 s — 0.07 s
// per reference domain, "sufficiently fast to block a suspicious, newly
// found IDN homograph attack in real time". This bench sweeps reference-
// and IDN-list sizes and reports per-reference cost for both Algorithm 1
// as printed (naive) and the length-bucket-indexed variant.
#include "bench_common.hpp"
#include "detect/detector.hpp"

int main() {
  using namespace sham;
  bench::header("Section 4.2: homograph-detection throughput");
  const auto& env = bench::standard_env();
  const auto& ctx = bench::standard_wild();

  const detect::HomographDetector detector{env.db_union};

  util::TextTable t{{"refs", "IDNs", "variant", "seconds", "s/ref", "matches"},
                    {util::Align::kRight, util::Align::kRight, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight, util::Align::kRight}};

  double naive_full = 0.0;
  double indexed_full = 0.0;
  for (const std::size_t ref_count : {100u, 300u, 1000u}) {
    std::span<const std::string> refs{ctx.scenario.references.data(),
                                      std::min(ref_count, ctx.scenario.references.size())};
    detect::DetectionStats naive_stats;
    const auto naive = detector.detect(refs, ctx.idns, &naive_stats);
    detect::DetectionStats indexed_stats;
    const auto indexed = detector.detect_indexed(refs, ctx.idns, &indexed_stats);
    t.add_row({std::to_string(refs.size()), util::with_commas(ctx.idns.size()), "naive",
               util::fixed(naive_stats.seconds, 4),
               util::fixed(naive_stats.seconds / refs.size() * 1e3, 4) + " ms",
               util::with_commas(naive.size())});
    t.add_row({std::to_string(refs.size()), util::with_commas(ctx.idns.size()), "indexed",
               util::fixed(indexed_stats.seconds, 4),
               util::fixed(indexed_stats.seconds / refs.size() * 1e3, 4) + " ms",
               util::with_commas(indexed.size())});
    if (refs.size() == 1000u) {
      naive_full = naive_stats.seconds;
      indexed_full = indexed_stats.seconds;
    }
  }
  // The UC-skeleton baseline (prior character-based work): fast hash
  // matching, but blind to SimChar pairs and unable to pinpoint diffs.
  {
    detect::DetectionStats skel_stats;
    const auto skel = detect::detect_by_skeleton(*env.uc, ctx.scenario.references,
                                                 ctx.idns, &skel_stats);
    t.add_row({std::to_string(ctx.scenario.references.size()),
               util::with_commas(ctx.idns.size()), "UC-skeleton baseline",
               util::fixed(skel_stats.seconds, 4),
               util::fixed(skel_stats.seconds / ctx.scenario.references.size() * 1e3, 4) +
                   " ms",
               util::with_commas(skel.size())});
  }
  std::printf("%s\n", t.str().c_str());

  const double per_ref = naive_full / 1000.0;
  std::printf("paper: 10,000 refs x 955K IDNs in 743.6 s = 0.07 s/ref\n");
  std::printf("ours:  per-ref cost %.4f ms over %zu IDNs; scaled to 955K IDNs "
              "≈ %.3f s/ref\n",
              per_ref * 1e3, ctx.idns.size(),
              per_ref * 955512.0 / static_cast<double>(ctx.idns.size()));

  bench::shape("per-reference cost is real-time (well under 0.07 s/ref scaled)",
               per_ref * 955512.0 / static_cast<double>(ctx.idns.size()) < 0.07);
  bench::shape("indexed variant is no slower than the printed Algorithm 1",
               indexed_full <= naive_full * 1.2);
  return 0;
}
