// Section 4.2: detection throughput. The paper matched the Alexa top-10K
// references against 141 M .com domains (955 K IDNs) in 743.6 s — 0.07 s
// per reference domain, "sufficiently fast to block a suspicious, newly
// found IDN homograph attack in real time". This bench sweeps reference-
// and IDN-list sizes and reports per-reference cost for both Algorithm 1
// as printed (naive) and the length-bucket-indexed variant, then sweeps
// the parallel sharded engine over 1/2/4/8 threads against the serial
// baseline and records the results in BENCH_detect.json.
//
// `detect_throughput --smoke` runs a seconds-scale correctness pass
// instead (tiny workload, every strategy and thread count checked for
// byte-identical output) — registered as the `perf_smoke` ctest label so
// engine races surface in tier-1 (and under -DSHAM_SANITIZE=thread).
#include <algorithm>
#include <cstring>
#include <functional>
#include <thread>

#include "bench_common.hpp"
#include "detect/detector.hpp"
#include "detect/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace sham;

/// Small self-contained workload (no font build): explicit SimChar pairs,
/// random references, IDNs derived from references by homoglyph and junk
/// substitutions so both matches and rejections are exercised.
struct SmokeWorkload {
  std::vector<std::string> refs;
  std::vector<detect::IdnEntry> idns;
};

SmokeWorkload make_smoke_workload(std::size_t ref_count, std::size_t idn_count) {
  SmokeWorkload w;
  util::Rng rng{20260805};
  for (std::size_t i = 0; i < ref_count; ++i) {
    std::string name;
    const std::size_t n = 3 + rng.below(10);
    for (std::size_t j = 0; j < n; ++j) name += static_cast<char>('a' + rng.below(26));
    w.refs.push_back(name);
  }
  const unicode::CodePoint subs[] = {0x043E, 0x0585, 0x00E9, 0x0430, 0x0131, 'x'};
  for (std::size_t i = 0; i < idn_count; ++i) {
    const auto& ref = w.refs[rng.below(w.refs.size())];
    unicode::U32String label;
    for (const char c : ref) label.push_back(static_cast<unsigned char>(c));
    const std::size_t muts = 1 + rng.below(2);
    for (std::size_t m = 0; m < muts; ++m) {
      label[rng.below(label.size())] = subs[rng.below(std::size(subs))];
    }
    w.idns.push_back({"", label});  // ACE form unused by detection
  }
  return w;
}

int run_smoke() {
  simchar::SimCharDb sim{{
      {'o', 0x043E, 0},
      {'o', 0x0585, 2},
      {'e', 0x00E9, 3},
      {'a', 0x0430, 1},
      {'i', 0x0131, 2},
  }};
  homoglyph::DbConfig db_config;
  db_config.use_uc = false;
  const homoglyph::HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), db_config};
  const auto w = make_smoke_workload(300, 3000);

  const detect::Engine engine{db};
  const auto baseline = engine.detect(
      {.references = w.refs, .idns = w.idns, .strategy = detect::Strategy::kIndexed});
  std::printf("smoke: %zu refs x %zu IDNs, %zu matches (indexed baseline)\n",
              w.refs.size(), w.idns.size(), baseline.matches.size());
  if (baseline.matches.empty()) {
    std::printf("smoke: FAIL — workload produced no matches\n");
    return 1;
  }

  bool ok = true;
  const auto check = [&](const char* what, const detect::DetectResponse& r) {
    const bool same = r.matches == baseline.matches &&
                      r.stats.length_bucket_hits == baseline.stats.length_bucket_hits;
    std::printf("  %-24s %zu matches, %zu shard(s)  [%s]\n", what, r.matches.size(),
                r.stats.shards_used, same ? "OK" : "MISMATCH");
    ok = ok && same;
  };
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const auto r = engine.detect({.references = w.refs,
                                  .idns = w.idns,
                                  .strategy = detect::Strategy::kParallel,
                                  .threads = threads});
    char label[32];
    std::snprintf(label, sizeof label, "parallel x%zu", threads);
    check(label, r);
  }
  check("serial", engine.detect({.references = w.refs,
                                 .idns = w.idns,
                                 .strategy = detect::Strategy::kSerial}));
  // Skeleton probes hash buckets instead of length buckets, so its
  // candidate counter legitimately differs from the indexed baseline;
  // the match list must still be byte-identical and every candidate
  // accounted for as either a match or a verification rejection.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto r = engine.detect({.references = w.refs,
                                  .idns = w.idns,
                                  .strategy = detect::Strategy::kSkeleton,
                                  .threads = threads});
    const bool same =
        r.matches == baseline.matches &&
        r.stats.skeleton_rejected == r.stats.skeleton_candidates - r.matches.size();
    std::printf("  skeleton x%-14zu %zu matches, %zu shard(s), %.0f%% rejected  [%s]\n",
                threads, r.matches.size(), r.stats.shards_used,
                r.stats.skeleton_rejection_rate() * 100.0, same ? "OK" : "MISMATCH");
    ok = ok && same;
  }
  // --- Cache-state equivalence -----------------------------------------
  // A cached engine must stay byte-identical to a freshly built serial
  // engine in every cache state: cold build, warm (whole-response memo),
  // after an in-place database update (incremental index patch), and
  // under the inverted (reference-bucketed) join. The serial baseline is
  // rebuilt from the *current* database each time, so it tracks the
  // update too.
  homoglyph::HomoglyphDb mutable_db{sim, unicode::ConfusablesDb::embedded(),
                                    db_config};
  const detect::Engine cached{mutable_db, {.threads = 1}};
  const auto serial_fresh = [&] {
    const detect::Engine pure{mutable_db, {.threads = 1, .cache = false}};
    return pure.detect({.references = w.refs,
                        .idns = w.idns,
                        .strategy = detect::Strategy::kSerial});
  };
  const auto cache_check = [&](const char* what, const detect::DetectResponse& r,
                               bool state_ok) {
    const bool same = r.matches == serial_fresh().matches && state_ok;
    std::printf("  cache: %-20s %zu matches  [%s]\n", what, r.matches.size(),
                same ? "OK" : "MISMATCH");
    ok = ok && same;
  };
  const auto skeleton_query = [&](std::optional<detect::SkeletonJoin> join =
                                      std::nullopt) {
    return cached.detect({.references = w.refs,
                          .idns = w.idns,
                          .strategy = detect::Strategy::kSkeleton,
                          .threads = 1,
                          .join = join});
  };
  // Join direction pinned forward: at this shape (300 refs x 3000 IDNs)
  // kAuto would start inverted and then promote to forward once the IDN
  // set proves stable, which is correct but makes the per-call cache
  // expectations below non-obvious; the promotion itself is unit-tested.
  const auto cold = skeleton_query(detect::SkeletonJoin::kIdnIndex);
  cache_check("cold", cold, cold.stats.index_cache_rebuilds == 1);
  const auto warm = skeleton_query(detect::SkeletonJoin::kIdnIndex);
  cache_check("warm (memo)", warm,
              warm.stats.result_cache_hits == 1 &&
                  warm.stats.skeleton_build_seconds == 0.0);
  const simchar::HomoglyphPair extra[] = {{'k', 'x', 1}};
  mutable_db.apply_update(extra);
  const auto updated = skeleton_query(detect::SkeletonJoin::kIdnIndex);
  cache_check("post-update (patched)", updated,
              updated.stats.index_cache_updates == 1 &&
                  updated.stats.index_cache_rebuilds == 0);
  const auto inverted = skeleton_query(detect::SkeletonJoin::kReferenceIndex);
  cache_check("inverted join", inverted,
              inverted.stats.inverted_join &&
                  inverted.stats.skeleton_candidates ==
                      updated.stats.skeleton_candidates);

  std::printf("smoke: %s\n",
              ok ? "all strategies and cache states byte-identical" : "FAILED");
  return ok ? 0 : 1;
}

double best_of(int reps, const std::function<double()>& run) {
  double best = run();
  for (int i = 1; i < reps; ++i) best = std::min(best, run());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();

  using namespace sham;
  bench::header("Section 4.2: homograph-detection throughput");
  const auto& env = bench::standard_env();
  const auto& ctx = bench::standard_wild();

  // Cache-free engines so every row pays full cost (measurement, not reuse).
  const detect::Engine naive_engine{env.db_union,
                                    {.strategy = detect::Strategy::kSerial, .cache = false}};
  const detect::Engine indexed_engine{
      env.db_union, {.strategy = detect::Strategy::kIndexed, .cache = false}};

  util::TextTable t{{"refs", "IDNs", "variant", "seconds", "s/ref", "matches"},
                    {util::Align::kRight, util::Align::kRight, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight, util::Align::kRight}};

  double naive_full = 0.0;
  double indexed_full = 0.0;
  for (const std::size_t ref_count : {100u, 300u, 1000u}) {
    std::span<const std::string> refs{ctx.scenario.references.data(),
                                      std::min(ref_count, ctx.scenario.references.size())};
    const auto naive = naive_engine.detect({.references = refs, .idns = ctx.idns});
    const auto& naive_stats = naive.stats;
    const auto indexed = indexed_engine.detect({.references = refs, .idns = ctx.idns});
    const auto& indexed_stats = indexed.stats;
    t.add_row({std::to_string(refs.size()), util::with_commas(ctx.idns.size()), "naive",
               util::fixed(naive_stats.seconds, 4),
               util::fixed(naive_stats.seconds / refs.size() * 1e3, 4) + " ms",
               util::with_commas(naive.matches.size())});
    t.add_row({std::to_string(refs.size()), util::with_commas(ctx.idns.size()), "indexed",
               util::fixed(indexed_stats.seconds, 4),
               util::fixed(indexed_stats.seconds / refs.size() * 1e3, 4) + " ms",
               util::with_commas(indexed.matches.size())});
    if (refs.size() == 1000u) {
      naive_full = naive_stats.seconds;
      indexed_full = indexed_stats.seconds;
    }
  }
  // The UC-skeleton baseline (prior character-based work): fast hash
  // matching, but blind to SimChar pairs and unable to pinpoint diffs.
  {
    detect::DetectionStats skel_stats;
    const auto skel = detect::detect_by_skeleton(*env.uc, ctx.scenario.references,
                                                 ctx.idns, &skel_stats);
    t.add_row({std::to_string(ctx.scenario.references.size()),
               util::with_commas(ctx.idns.size()), "UC-skeleton baseline",
               util::fixed(skel_stats.seconds, 4),
               util::fixed(skel_stats.seconds / ctx.scenario.references.size() * 1e3, 4) +
                   " ms",
               util::with_commas(skel.size())});
  }
  std::printf("%s\n", t.str().c_str());

  // --- Engine thread-count sweep -------------------------------------
  // Serial baseline = the engine's indexed strategy on one thread; the
  // parallel rows shard the same scan over 1/2/4/8 workers. Output is
  // checked byte-identical against the baseline each time.
  const std::span<const std::string> refs{ctx.scenario.references};
  // Measurement engine: caching off so every best_of rep pays the full
  // build + scan cost (the cached shape is measured separately below).
  const detect::Engine engine{env.db_union, {.cache = false}};
  const auto baseline = engine.detect(
      {.references = refs, .idns = ctx.idns, .strategy = detect::Strategy::kIndexed});
  const int reps = 3;
  const double serial_seconds = best_of(reps, [&] {
    return engine
        .detect({.references = refs, .idns = ctx.idns,
                 .strategy = detect::Strategy::kIndexed})
        .stats.seconds;
  });

  util::TextTable sweep{{"threads", "shards", "seconds", "speedup", "identical"},
                        {util::Align::kRight, util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kLeft}};
  const std::size_t cores = std::max<unsigned>(1, std::thread::hardware_concurrency());
  double speedup4 = 0.0;
  bool all_identical = true;
  std::string json_rows;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    detect::DetectionStats stats;
    bool identical = true;
    const double seconds = best_of(reps, [&] {
      const auto r = engine.detect({.references = refs, .idns = ctx.idns,
                                    .strategy = detect::Strategy::kParallel,
                                    .threads = threads});
      identical = identical && r.matches == baseline.matches;
      stats = r.stats;
      return r.stats.seconds;
    });
    all_identical = all_identical && identical;
    const double speedup = serial_seconds / seconds;
    if (threads == 4) speedup4 = speedup;
    sweep.add_row({std::to_string(threads), std::to_string(stats.shards_used),
                   util::fixed(seconds, 4), util::fixed(speedup, 2) + "x",
                   identical ? "yes" : "NO"});
    char row[256];
    std::snprintf(row, sizeof row,
                  "    {\"threads\": %zu, \"shards\": %zu, \"seconds\": %.6f, "
                  "\"speedup\": %.3f, \"index_build_seconds\": %.6f, "
                  "\"match_seconds\": %.6f, \"merge_seconds\": %.6f, "
                  "\"identical_to_serial\": %s}%s\n",
                  threads, stats.shards_used, seconds, speedup,
                  stats.index_build_seconds, stats.match_seconds, stats.merge_seconds,
                  identical ? "true" : "false", threads == 8u ? "" : ",");
    json_rows += row;
  }
  std::printf("engine thread sweep (%zu refs x %zu IDNs, serial baseline %.4fs, "
              "%zu core(s) available):\n%s\n",
              refs.size(), ctx.idns.size(), serial_seconds, cores, sweep.str().c_str());

  // --- Strategy comparison: exact work done per strategy ---------------
  // `candidates` counts label pairs that reached the exact per-character
  // verifier; `char cmps` counts the code points it actually compared.
  // The skeleton index narrows candidates to same-hash buckets, so its
  // comparison count is the headline sub-linearity number.
  util::TextTable strat{{"strategy", "seconds", "candidates", "char cmps",
                         "vs indexed", "rejected", "matches"},
                        {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight, util::Align::kRight,
                         util::Align::kRight}};
  detect::DetectionStats indexed_strat_stats;
  detect::DetectionStats skeleton_strat_stats;
  bool skeleton_identical = true;
  std::string strategy_json_rows;
  const detect::Strategy strategies[] = {detect::Strategy::kSerial,
                                         detect::Strategy::kIndexed,
                                         detect::Strategy::kSkeleton};
  for (const auto strategy : strategies) {
    detect::DetectionStats stats;
    bool identical = true;
    const double seconds = best_of(reps, [&] {
      const auto r = engine.detect({.references = refs, .idns = ctx.idns,
                                    .strategy = strategy, .threads = 1});
      identical = identical && r.matches == baseline.matches;
      stats = r.stats;
      return r.stats.seconds;
    });
    if (strategy == detect::Strategy::kIndexed) indexed_strat_stats = stats;
    if (strategy == detect::Strategy::kSkeleton) {
      skeleton_strat_stats = stats;
      skeleton_identical = identical;
    }
    const double ratio =
        stats.char_comparisons == 0
            ? 0.0
            : static_cast<double>(indexed_strat_stats.char_comparisons) /
                  static_cast<double>(stats.char_comparisons);
    strat.add_row({std::string{detect::strategy_name(strategy)}, util::fixed(seconds, 4),
                   util::with_commas(stats.length_bucket_hits),
                   util::with_commas(stats.char_comparisons),
                   strategy == detect::Strategy::kSerial ? std::string{"-"}
                                                         : util::fixed(ratio, 1) + "x",
                   util::with_commas(stats.skeleton_rejected),
                   util::with_commas(baseline.matches.size())});
    char row[320];
    std::snprintf(row, sizeof row,
                  "    {\"strategy\": \"%s\", \"seconds\": %.6f, "
                  "\"candidates\": %llu, \"char_comparisons\": %llu, "
                  "\"skeleton_build_seconds\": %.6f, \"skeleton_buckets\": %zu, "
                  "\"rejection_rate\": %.4f, \"identical_to_serial\": %s}%s\n",
                  detect::strategy_name(strategy).data(), seconds,
                  static_cast<unsigned long long>(stats.length_bucket_hits),
                  static_cast<unsigned long long>(stats.char_comparisons),
                  stats.skeleton_build_seconds, stats.skeleton_buckets,
                  stats.skeleton_rejection_rate(), identical ? "true" : "false",
                  strategy == detect::Strategy::kSkeleton ? "" : ",");
    strategy_json_rows += row;
  }
  const double comparison_ratio =
      skeleton_strat_stats.char_comparisons == 0
          ? 0.0
          : static_cast<double>(indexed_strat_stats.char_comparisons) /
                static_cast<double>(skeleton_strat_stats.char_comparisons);
  std::printf("strategy comparison (%zu refs x %zu IDNs, single thread):\n%s\n",
              refs.size(), ctx.idns.size(), strat.str().c_str());
  std::printf("skeleton index: %zu buckets built in %.4f ms, %.1fx fewer exact "
              "char comparisons than indexed, %.1f%% of candidates rejected by "
              "verification\n\n",
              skeleton_strat_stats.skeleton_buckets,
              skeleton_strat_stats.skeleton_build_seconds * 1e3, comparison_ratio,
              skeleton_strat_stats.skeleton_rejection_rate() * 100.0);

  // --- Repeated-query benchmark: Engine-resident index caching ---------
  // The production shape Section 4.2 implies: one engine, one zone
  // snapshot, many queries. cold = first kSkeleton call on a caching
  // engine (index build + scan); warm = the same query again (served by
  // the whole-response memo, no build, no scan); warm_index = same IDN
  // set but a rotated reference list (memo miss, cached skeleton index
  // reused, scan runs).
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  double warm_index_seconds = 0.0;
  bool warm_hit = false;
  bool warm_index_hit = false;
  bool warm_identical = false;
  {
    const detect::Engine caching{env.db_union, {.threads = 1}};
    const auto cold = caching.detect({.references = refs, .idns = ctx.idns,
                                      .strategy = detect::Strategy::kSkeleton});
    cold_seconds = cold.stats.seconds;
    const auto warm = caching.detect({.references = refs, .idns = ctx.idns,
                                      .strategy = detect::Strategy::kSkeleton});
    warm_seconds = warm.stats.seconds;
    warm_hit = warm.stats.result_cache_hits == 1 &&
               warm.stats.skeleton_build_seconds == 0.0 &&
               warm.stats.index_build_seconds == 0.0;
    std::vector<std::string> rotated{refs.begin(), refs.end()};
    std::rotate(rotated.begin(), rotated.begin() + 1, rotated.end());
    const auto warm_index =
        caching.detect({.references = rotated, .idns = ctx.idns,
                        .strategy = detect::Strategy::kSkeleton});
    warm_index_seconds = warm_index.stats.seconds;
    warm_index_hit = warm_index.stats.index_cache_hits == 1 &&
                     warm_index.stats.skeleton_build_seconds == 0.0;
    warm_identical = warm.matches == cold.matches && cold.matches == baseline.matches;
  }
  const double warm_speedup = cold_seconds / std::max(warm_seconds, 1e-9);
  std::printf("repeated query (%zu refs x %zu IDNs, skeleton, caching engine):\n"
              "  cold        %.4fs (index built)\n"
              "  warm        %.6fs (%.0fx, result memo%s)\n"
              "  warm index  %.4fs (new refs, cached index%s)\n\n",
              refs.size(), ctx.idns.size(), cold_seconds, warm_seconds, warm_speedup,
              warm_hit ? "" : " MISSED", warm_index_seconds,
              warm_index_hit ? "" : " MISSED");

  if (std::FILE* f = std::fopen("BENCH_detect.json", "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"detect_throughput\",\n"
                 "  \"hardware_concurrency\": %zu,\n"
                 "  \"references\": %zu,\n"
                 "  \"idns\": %zu,\n"
                 "  \"naive_seconds_1000refs\": %.6f,\n"
                 "  \"indexed_seconds_1000refs\": %.6f,\n"
                 "  \"serial_baseline_seconds\": %.6f,\n"
                 "  \"sweep\": [\n%s  ],\n"
                 "  \"speedup_at_4_threads\": %.3f,\n"
                 "  \"all_outputs_identical_to_serial\": %s,\n"
                 "  \"strategies\": [\n%s  ],\n"
                 "  \"skeleton_vs_indexed_comparison_ratio\": %.3f,\n"
                 "  \"skeleton_identical_to_serial\": %s,\n"
                 "  \"repeated_query\": {\n"
                 "    \"cold_seconds\": %.6f,\n"
                 "    \"warm_seconds\": %.6f,\n"
                 "    \"warm_speedup\": %.1f,\n"
                 "    \"warm_result_cache_hit\": %s,\n"
                 "    \"warm_index_seconds\": %.6f,\n"
                 "    \"warm_index_cache_hit\": %s,\n"
                 "    \"warm_identical_to_cold\": %s\n"
                 "  },\n"
                 "  \"parallel_speedup_criterion\": \"%s\"\n"
                 "}\n",
                 cores, refs.size(), ctx.idns.size(), naive_full, indexed_full,
                 serial_seconds, json_rows.c_str(), speedup4,
                 all_identical ? "true" : "false", strategy_json_rows.c_str(),
                 comparison_ratio, skeleton_identical ? "true" : "false",
                 cold_seconds, warm_seconds, warm_speedup,
                 warm_hit ? "true" : "false", warm_index_seconds,
                 warm_index_hit ? "true" : "false", warm_identical ? "true" : "false",
                 cores >= 2
                     ? (speedup4 >= (cores >= 4 ? 2.0 : 1.3) ? "met" : "FAILED")
                     : "hardware_skipped");
    std::fclose(f);
    std::printf("wrote BENCH_detect.json\n");
  }

  const double per_ref = naive_full / 1000.0;
  std::printf("paper: 10,000 refs x 955K IDNs in 743.6 s = 0.07 s/ref\n");
  std::printf("ours:  per-ref cost %.4f ms over %zu IDNs; scaled to 955K IDNs "
              "≈ %.3f s/ref\n",
              per_ref * 1e3, ctx.idns.size(),
              per_ref * 955512.0 / static_cast<double>(ctx.idns.size()));

  bench::shape("per-reference cost is real-time (well under 0.07 s/ref scaled)",
               per_ref * 955512.0 / static_cast<double>(ctx.idns.size()) < 0.07);
  bench::shape("indexed variant is no slower than the printed Algorithm 1",
               indexed_full <= naive_full * 1.2);
  bench::shape("parallel output byte-identical to serial at every thread count",
               all_identical);
  bench::shape("skeleton output byte-identical to serial", skeleton_identical);
  bench::shape("skeleton does >= 5x fewer exact char comparisons than indexed",
               comparison_ratio >= 5.0);
  bench::shape("warm-cache detect() skips index construction (hit, build time 0)",
               warm_hit && warm_index_hit);
  bench::shape("repeated query >= 5x faster on the second call", warm_speedup >= 5.0);
  bench::shape("warm response byte-identical to cold and serial", warm_identical);
  // Any multi-core host must show parallel speedup; only a single-core
  // host is reported hardware_skipped. A host with 4+ cores must hit the
  // full 2x bar; a 2-3 core box still beats serial, just not by the full
  // 4-thread factor, so it gets a 1.3x floor instead.
  if (cores >= 4) {
    bench::shape("parallel engine >= 2x over serial at 4 threads",
                 speedup4 >= 2.0);
  } else if (cores >= 2) {
    bench::shape("parallel engine >= 1.3x over serial at 4 threads",
                 speedup4 >= 1.3);
  } else {
    std::printf("  shape: parallel engine speedup at 4 threads          [SKIPPED:"
                " only %zu core(s) available]\n", cores);
  }
  return 0;
}
