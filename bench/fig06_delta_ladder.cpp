// Figure 6: homoglyph candidates of the letter 'e' at ∆ = 0..6 — the view
// that motivates the θ = 4 threshold.
#include "bench_common.hpp"
#include "util/strings.hpp"

int main() {
  using namespace sham;
  bench::header("Figure 6: candidates of 'e' by exact pixel distance ∆");
  const auto& env = bench::standard_env();
  const auto rungs = measure::delta_ladder(env, 'e', 8);

  util::TextTable t{{"∆", "#candidates", "examples", "SimChar?"},
                    {util::Align::kRight, util::Align::kRight, util::Align::kLeft,
                     util::Align::kLeft}};
  for (const auto& rung : rungs) {
    std::string examples;
    for (const auto cp : rung.examples) {
      if (!examples.empty()) examples += ' ';
      examples += util::format_codepoint(cp);
    }
    t.add_row({std::to_string(rung.delta), std::to_string(rung.count), examples,
               rung.delta <= 4 ? "yes (∆ ≤ 4)" : "no"});
  }
  std::printf("%s\n", t.str().c_str());

  std::size_t at_or_below_4 = 0;
  std::size_t above_4 = 0;
  for (const auto& rung : rungs) {
    (rung.delta <= 4 ? at_or_below_4 : above_4) += rung.count;
  }
  bench::shape("candidates exist on both sides of the θ = 4 threshold",
               at_or_below_4 > 0 && above_4 > 0);
  bench::shape("'e' has many homoglyphs at ∆ ≤ 4 (paper: 26)", at_or_below_4 >= 20);
  return 0;
}
