// Table 4: top-5 Unicode blocks in SimChar and in UC ∩ IDNA.
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Table 4: top-5 Unicode blocks per database");
  const auto& env = bench::standard_env();

  const auto sim_blocks = measure::top_blocks_simchar(env);
  const auto uc_blocks = measure::top_blocks_uc_idna(env);

  std::printf("SimChar (paper: Hangul 8,787 / CJK 395 / Canadian Aboriginal 387 /"
              " Vai 134 / Arabic 107)\n");
  util::TextTable ts{{"Block", "ours #chars"}, {util::Align::kLeft, util::Align::kRight}};
  for (const auto& b : sim_blocks) ts.add_row({b.block, util::with_commas(b.count)});
  std::printf("%s\n", ts.str().c_str());

  std::printf("UC ∩ IDNA (paper: CJK 91 / Combining Diacritical Marks 56 /"
              " Arabic 52 / Cyrillic 40 / Thai 36)\n");
  util::TextTable tu{{"Block", "ours #chars"}, {util::Align::kLeft, util::Align::kRight}};
  for (const auto& b : uc_blocks) tu.add_row({b.block, util::with_commas(b.count)});
  std::printf("%s\n", tu.str().c_str());

  bench::shape("Hangul Syllables dominates SimChar",
               !sim_blocks.empty() && sim_blocks[0].block == "Hangul Syllables" &&
                   sim_blocks[0].count > 3 * sim_blocks[1].count);
  bench::shape("CJK leads UC ∩ IDNA",
               !uc_blocks.empty() && uc_blocks[0].block == "CJK Unified Ideographs");
  bench::shape("the two databases have different block profiles",
               sim_blocks[0].block != uc_blocks[0].block);
  return 0;
}
