// DB-artifact cold start: the preprocessing output (SimChar + homoglyph
// DB + reference skeleton index + glyph panel) serialized once and then
// memory-mapped with zero parsing. This bench measures what the artifact
// buys at process start against rebuilding everything from the font:
//
//   build path   render repertoire -> mine pairs -> compose HomoglyphDb
//                -> build skeleton index -> first detect();
//   mmap path    DbArtifact::load() -> Engine::from_db_artifact()
//                -> first detect()  (indexes adopted in place).
//
// Reported in BENCH_db.json: cold-start speedup (criterion: >= 10x),
// artifact size, resident-set growth of the mmap path, byte-identity of
// the two paths' match lists, and an N-process concurrent-load check
// (every process maps the same file; the page cache shares the physical
// pages). `db_load --smoke` is the seconds-scale correctness pass —
// registered as the `perf_smoke`/`db_smoke` ctest labels — asserting
// round-trip byte-identity across all four strategies plus
// corrupt-artifact rejection.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/shamfinder.hpp"
#include "db/artifact.hpp"
#include "detect/engine.hpp"
#include "detect/skeleton_index.hpp"
#include "font/paper_font.hpp"
#include "util/rng.hpp"

namespace {

using namespace sham;

/// VmRSS from /proc/self/status, in KiB (0 where unavailable).
std::size_t resident_kib() {
  std::ifstream status{"/proc/self/status"};
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::stoul(line.substr(6));
    }
  }
  return 0;
}

/// References plus IDNs mutated from them through the database's own
/// homoglyph map, so the workload contains both matches and rejections.
struct Workload {
  std::vector<std::string> refs;
  std::vector<detect::IdnEntry> idns;
};

Workload make_workload(const homoglyph::HomoglyphDb& db, std::size_t ref_count,
                       std::size_t idn_count, std::uint64_t seed) {
  Workload w;
  util::Rng rng{seed};
  for (std::size_t i = 0; i < ref_count; ++i) {
    std::string name;
    const std::size_t n = 4 + rng.below(9);
    for (std::size_t j = 0; j < n; ++j) name += static_cast<char>('a' + rng.below(26));
    w.refs.push_back(name);
  }
  for (std::size_t i = 0; i < idn_count; ++i) {
    const auto& ref = w.refs[rng.below(w.refs.size())];
    unicode::U32String label;
    for (const char c : ref) label.push_back(static_cast<unsigned char>(c));
    const std::size_t muts = 1 + rng.below(2);
    for (std::size_t m = 0; m < muts; ++m) {
      const std::size_t at = rng.below(label.size());
      const auto subs = db.homoglyphs_of(label[at]);
      label[at] = subs.empty() ? 'x' : subs[rng.below(subs.size())];
    }
    w.idns.push_back({"", label});
  }
  return w;
}

/// Serialize the finder's databases plus a reference-side skeleton index
/// and (optionally) the rendered panel.
void write_artifact(const std::string& path, const core::ShamFinder& finder,
                    std::span<const std::string> refs,
                    const simchar::RepertoirePanel* panel) {
  db::WriteRequest request;
  request.simchar = &finder.simchar();
  request.homoglyph = &finder.db();
  db::SkeletonFlat skeleton;
  if (!refs.empty()) {
    const detect::SkeletonIndex index{
        finder.db(), refs,
        {.max_bucket_occupancy = finder.engine_options().skeleton_bucket_cap}};
    skeleton = index.to_flat();
    request.references = refs;
    request.reference_fingerprint = detect::label_set_fingerprint(refs);
    request.skeleton = &skeleton;
  }
  if (panel != nullptr) {
    request.panel = &panel->panel;
    request.glyph_cps = panel->cps;
    request.glyph_popcounts = panel->popcounts;
  }
  db::write_db_file(path, request);
}

bool corruption_rejected(const std::string& path, std::size_t flip_offset) {
  std::vector<char> bytes;
  {
    std::ifstream in{path, std::ios::binary};
    bytes.assign(std::istreambuf_iterator<char>{in}, {});
  }
  if (flip_offset >= bytes.size()) return true;
  bytes[flip_offset] ^= 0x40;
  const std::string corrupt_path = path + ".corrupt";
  {
    std::ofstream out{corrupt_path, std::ios::binary | std::ios::trunc};
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  bool rejected = false;
  try {
    const auto artifact = db::DbArtifact::load(corrupt_path);
    // A flip in an alignment gap is invisible to the checksums; results
    // must still be sane, which the round-trip tests assert. Here a
    // successful load after a flip only counts as "not rejected".
    (void)artifact;
  } catch (const std::runtime_error&) {
    rejected = true;
  }
  std::remove(corrupt_path.c_str());
  return rejected;
}

int run_smoke() {
  simchar::SimCharDb sim{{
      {'o', 0x043E, 0},
      {'o', 0x0585, 2},
      {'e', 0x00E9, 3},
      {'a', 0x0430, 1},
      {'i', 0x0131, 2},
  }};
  homoglyph::DbConfig db_config;
  db_config.use_uc = false;
  const homoglyph::HomoglyphDb db{sim, unicode::ConfusablesDb::embedded(), db_config};
  const auto w = make_workload(db, 120, 1200, 20260808);

  const std::string path = "db_smoke.artifact";
  {
    db::WriteRequest request;
    request.simchar = &sim;
    request.homoglyph = &db;
    const detect::SkeletonIndex index{db, std::span<const std::string>{w.refs}, {}};
    const auto skeleton = index.to_flat();
    request.references = w.refs;
    request.reference_fingerprint =
        detect::label_set_fingerprint(std::span<const std::string>{w.refs});
    request.skeleton = &skeleton;
    db::write_db_file(path, request);
  }

  const detect::Engine in_process{db};
  const auto baseline = in_process.detect(
      {.references = w.refs, .idns = w.idns, .strategy = detect::Strategy::kSerial});
  std::printf("smoke: %zu refs x %zu IDNs, %zu matches (serial in-process)\n",
              w.refs.size(), w.idns.size(), baseline.matches.size());
  bool ok = !baseline.matches.empty();
  if (!ok) std::printf("smoke: FAIL — workload produced no matches\n");

  const auto mapped = detect::Engine::from_db_file(path);
  const detect::Strategy strategies[] = {
      detect::Strategy::kSerial, detect::Strategy::kIndexed,
      detect::Strategy::kParallel, detect::Strategy::kSkeleton};
  for (const auto strategy : strategies) {
    const auto r = mapped.detect(
        {.references = w.refs, .idns = w.idns, .strategy = strategy});
    const bool same = r.matches == baseline.matches;
    std::printf("  mmap %-10s %zu matches  [%s]\n",
                std::string{detect::strategy_name(strategy)}.c_str(),
                r.matches.size(), same ? "OK" : "MISMATCH");
    ok = ok && same;
  }
  // The artifact's skeleton index must be adopted, not rebuilt: the first
  // kSkeleton query against the artifact's own reference list is a cache
  // hit with zero skeleton-build time.
  {
    const auto fresh = detect::Engine::from_db_file(path);
    const auto r = fresh.detect({.references = fresh.artifact()->references(),
                                 .idns = w.idns,
                                 .strategy = detect::Strategy::kSkeleton,
                                 .join = detect::SkeletonJoin::kReferenceIndex});
    const bool seeded = r.stats.index_cache_hits == 1 &&
                        r.stats.skeleton_build_seconds == 0.0 &&
                        r.matches == baseline.matches;
    std::printf("  pre-seeded skeleton index on first query  [%s]\n",
                seeded ? "OK" : "MISS");
    ok = ok && seeded;
  }
  // Corruption must be rejected with a diagnostic, never UB: flip bytes in
  // the header, the section table, and a payload; truncate the file.
  {
    std::size_t rejected = 0;
    const std::size_t offsets[] = {0, 8, 70, 200, 4096};
    for (const auto off : offsets) rejected += corruption_rejected(path, off);
    const bool all = rejected == std::size(offsets);
    std::printf("  corrupt artifacts rejected: %zu/%zu  [%s]\n", rejected,
                std::size(offsets), all ? "OK" : "MISS");
    ok = ok && all;
    std::vector<char> bytes;
    {
      std::ifstream in{path, std::ios::binary};
      bytes.assign(std::istreambuf_iterator<char>{in}, {});
    }
    bool truncated_rejected = true;
    for (const std::size_t keep : {std::size_t{0}, std::size_t{13},
                                   std::size_t{64}, bytes.size() / 2,
                                   bytes.size() - 1}) {
      const std::string trunc_path = path + ".trunc";
      {
        std::ofstream out{trunc_path, std::ios::binary | std::ios::trunc};
        out.write(bytes.data(), static_cast<std::streamsize>(keep));
      }
      try {
        (void)db::DbArtifact::load(trunc_path);
        truncated_rejected = false;
      } catch (const std::runtime_error&) {
      }
      std::remove(trunc_path.c_str());
    }
    std::printf("  truncated artifacts rejected  [%s]\n",
                truncated_rejected ? "OK" : "MISS");
    ok = ok && truncated_rejected;
  }
  std::remove(path.c_str());
  std::printf("smoke: %s\n", ok ? "artifact round-trip byte-identical" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();

  bench::header("DB artifact: zero-parse cold start vs in-process build");

  // Everything below runs against the synthetic paper font so the numbers
  // are machine-independent in shape. One untimed build produces the
  // workload and the artifact; the timed comparison then replays both
  // cold-start paths from scratch.
  const auto font = font::make_paper_font({}).font;
  const auto setup = core::ShamFinder::build_from_font(*font);
  const auto workload = make_workload(setup.db(), 500, 20'000, 20260808);
  const auto panel = simchar::render_repertoire_panel(*font);

  const std::string path = "BENCH_db.artifact";
  write_artifact(path, setup, workload.refs, &panel);
  const auto probe = db::DbArtifact::load(path);
  const std::size_t artifact_bytes = probe.file_size();
  std::printf("artifact: %zu bytes (%zu refs embedded, skeleton %s, panel %s)\n",
              artifact_bytes, probe.references().size(),
              probe.has_skeleton() ? "yes" : "no",
              probe.has_glyph_panel() ? "yes" : "no");

  // Cold start is time-to-first-verdict: everything a fresh process pays
  // before it can answer its first query (the CLI `check` shape — a
  // handful of IDNs against the full reference list). The big workload is
  // then compared untimed to prove the two paths byte-identical at scale.
  const std::span<const detect::IdnEntry> first_query{workload.idns.data(), 64};

  // --- Timed path 1: full in-process build + first detect ---------------
  util::Stopwatch build_watch;
  const auto built = core::ShamFinder::build_from_font(*font);
  detect::DetectionStats build_stats;
  const auto first_built =
      built.find_homographs(workload.refs, first_query, &build_stats);
  const double build_seconds = build_watch.seconds();

  // --- Timed path 2: mmap the artifact + first detect -------------------
  const std::size_t rss_before_kib = resident_kib();
  util::Stopwatch load_watch;
  const auto engine = detect::Engine::from_db_file(path);
  const auto first_mapped = engine.detect({.references = workload.refs,
                                           .idns = first_query});
  const double load_seconds = load_watch.seconds();
  const std::size_t rss_after_kib = resident_kib();
  const std::size_t rss_delta_kib =
      rss_after_kib > rss_before_kib ? rss_after_kib - rss_before_kib : 0;

  // --- Untimed: the full workload must agree byte-for-byte --------------
  const auto built_matches = built.find_homographs(workload.refs, workload.idns);
  const auto mapped_full = engine.detect({.references = workload.refs,
                                          .idns = workload.idns});
  const bool identical = first_mapped.matches == first_built &&
                         mapped_full.matches == built_matches;
  const double speedup = build_seconds / std::max(load_seconds, 1e-9);
  std::printf("in-process build + first detect : %.4f s (%zu matches)\n",
              build_seconds, first_built.size());
  std::printf("mmap load + first detect        : %.4f s (%zu matches)  -> %.1fx\n",
              load_seconds, first_mapped.matches.size(), speedup);
  std::printf("full workload (%zu IDNs)     : %zu matches both paths  [%s]\n",
              workload.idns.size(), built_matches.size(),
              identical ? "identical" : "MISMATCH");
  std::printf("mmap path RSS growth            : %zu KiB (artifact %zu KiB)\n",
              rss_delta_kib, artifact_bytes / 1024);

  // --- N-process concurrent load ---------------------------------------
  // Each child maps the same artifact and runs the same query; the page
  // cache backs all mappings with one set of physical pages. Children
  // exit 0 only when their match list size equals the parent's.
  const std::size_t cores =
      std::max<unsigned>(1, std::thread::hardware_concurrency());
  const std::size_t procs = std::min<std::size_t>(4, cores);
  std::size_t concurrent_ok = 0;
  if (cores >= 2) {
    std::vector<pid_t> children;
    for (std::size_t i = 0; i < procs; ++i) {
      const pid_t pid = fork();
      if (pid == 0) {
        try {
          const auto child_engine = detect::Engine::from_db_file(path);
          const auto r = child_engine.detect({.references = workload.refs,
                                              .idns = workload.idns});
          _exit(r.matches == built_matches ? 0 : 1);
        } catch (...) {
          _exit(2);
        }
      }
      if (pid > 0) children.push_back(pid);
    }
    for (const pid_t pid : children) {
      int status = 0;
      waitpid(pid, &status, 0);
      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) ++concurrent_ok;
    }
    std::printf("concurrent load           : %zu/%zu process(es) byte-identical\n",
                concurrent_ok, procs);
  } else {
    std::printf("concurrent load           : skipped (%zu core(s))\n", cores);
  }

  // --- Corruption spot-check --------------------------------------------
  std::size_t rejected = 0;
  const std::size_t flip_offsets[] = {0, 9, 72, 512, artifact_bytes / 2,
                                      artifact_bytes - 3};
  for (const auto off : flip_offsets) rejected += corruption_rejected(path, off);
  std::printf("corrupt-artifact rejection: %zu/%zu flips rejected\n", rejected,
              std::size(flip_offsets));

  if (std::FILE* f = std::fopen("BENCH_db.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"db_load\",\n"
        "  \"hardware_concurrency\": %zu,\n"
        "  \"references\": %zu,\n"
        "  \"idns\": %zu,\n"
        "  \"artifact_bytes\": %zu,\n"
        "  \"build_seconds\": %.6f,\n"
        "  \"load_seconds\": %.6f,\n"
        "  \"cold_start_speedup\": %.1f,\n"
        "  \"matches\": %zu,\n"
        "  \"identical_to_in_process\": %s,\n"
        "  \"rss_delta_kib\": %zu,\n"
        "  \"corrupt_flips_rejected\": \"%zu/%zu\",\n"
        "  \"cold_start_criterion\": \"%s\",\n"
        "  \"concurrent_load_criterion\": \"%s\"\n"
        "}\n",
        cores, workload.refs.size(), workload.idns.size(), artifact_bytes,
        build_seconds, load_seconds, speedup, built_matches.size(),
        identical ? "true" : "false", rss_delta_kib, rejected,
        std::size(flip_offsets),
        speedup >= 10.0 && identical ? "met" : "FAILED",
        cores >= 2 ? (concurrent_ok == procs ? "met" : "FAILED")
                   : "hardware_skipped");
    std::fclose(f);
    std::printf("wrote BENCH_db.json\n");
  }
  std::remove(path.c_str());

  bench::shape("mmap cold start >= 10x faster than in-process build",
               speedup >= 10.0);
  bench::shape("mmap detect() byte-identical to in-process detect()", identical);
  bench::shape("corrupt artifacts rejected with a diagnostic",
               rejected == std::size(flip_offsets));
  if (cores >= 2) {
    bench::shape("N processes share one artifact byte-identically",
                 concurrent_ok == procs);
  } else {
    std::printf("  shape: concurrent artifact sharing                    [SKIPPED:"
                " only %zu core(s) available]\n", cores);
  }
  return 0;
}
