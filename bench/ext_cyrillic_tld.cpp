// Extension experiment (Section 7.1): homographs under a non-Latin TLD.
// The paper notes its blacklists held 1,054 domains under 'рф' (the
// Cyrillic ccTLD) and defers the analysis; the framework itself "can cover
// homoglyphs consisting of any characters". Here: a synthetic 'рф'-style
// registry whose reference names are Cyrillic, attacked by substituting
// visually identical Latin/Greek characters — the inverse of the .com
// attack direction — detected with the Unicode-reference detector.
#include <unordered_set>

#include "bench_common.hpp"
#include "core/browser_policy.hpp"
#include "detect/engine.hpp"
#include "idna/idna.hpp"
#include "util/rng.hpp"

int main() {
  using namespace sham;
  bench::header("Extension: homographs under a Cyrillic TLD ('рф'-style)");
  const auto& env = bench::standard_env();

  util::Rng rng{0xCF};
  // Cyrillic reference corpus.
  std::vector<unicode::U32String> references;
  std::unordered_set<std::string> seen;
  while (references.size() < 400) {
    unicode::U32String label;
    const int n = 4 + static_cast<int>(rng.below(7));
    for (int i = 0; i < n; ++i) {
      label.push_back(0x0430 + static_cast<unicode::CodePoint>(rng.below(32)));
    }
    if (seen.insert(idna::to_a_label(label)).second) references.push_back(label);
  }

  // Plant attacks: substitute one Cyrillic character with a non-Cyrillic
  // homoglyph (Latin/Greek/...), as registered IDN labels.
  std::vector<detect::IdnEntry> idns;
  std::vector<unicode::U32String> planted;
  std::size_t guard = 0;
  while (planted.size() < 300 && guard++ < 10000) {
    const auto& ref = references[rng.below(references.size())];
    const std::size_t pos = rng.below(ref.size());
    const auto homoglyphs = env.db_union.homoglyphs_of(ref[pos]);
    std::vector<unicode::CodePoint> non_cyrillic;
    for (const auto h : homoglyphs) {
      if (h < 0x0400 || h > 0x052F) non_cyrillic.push_back(h);
    }
    if (non_cyrillic.empty()) continue;
    auto label = ref;
    label[pos] = non_cyrillic[rng.below(non_cyrillic.size())];
    const auto ace = idna::to_a_label(label);
    if (!seen.insert(ace).second) continue;
    idns.push_back({ace, label});
    planted.push_back(label);
  }
  // Benign Cyrillic registrations alongside.
  std::size_t benign = 0;
  while (benign < 1000) {
    unicode::U32String label;
    const int n = 4 + static_cast<int>(rng.below(7));
    for (int i = 0; i < n; ++i) {
      label.push_back(0x0430 + static_cast<unicode::CodePoint>(rng.below(32)));
    }
    const auto ace = idna::to_a_label(label);
    if (!seen.insert(ace).second) continue;
    idns.push_back({ace, label});
    ++benign;
  }

  const detect::Engine engine{env.db_union,
                              {.strategy = detect::Strategy::kIndexed, .cache = false}};
  const auto response = engine.detect(
      {.unicode_references = references, .idns = idns});
  const auto& stats = response.stats;
  std::unordered_set<std::size_t> detected;
  for (const auto& m : response.matches) detected.insert(m.idn_index);

  // How would the browser mixed-script policy fare on the same labels?
  std::size_t attacks_flagged_by_browser = 0;
  for (std::size_t i = 0; i < planted.size(); ++i) {
    if (core::mixed_script_policy(idns[i].unicode).decision ==
        core::DisplayDecision::kPunycode) {
      ++attacks_flagged_by_browser;
    }
  }

  util::TextTable t{{"metric", "value"},
                    {util::Align::kLeft, util::Align::kRight}};
  t.add_row({"Cyrillic references", util::with_commas(references.size())});
  t.add_row({"registered labels (attacks + benign)", util::with_commas(idns.size())});
  t.add_row({"planted homographs", util::with_commas(planted.size())});
  t.add_row({"detected by ShamFinder", util::with_commas(detected.size())});
  t.add_row({"attacks flagged by mixed-script browser rule",
             util::with_commas(attacks_flagged_by_browser)});
  t.add_row({"detection time", util::fixed(stats.seconds * 1e3, 2) + " ms"});
  std::printf("%s\n", t.str().c_str());

  std::size_t true_positives = 0;
  for (std::size_t i = 0; i < planted.size(); ++i) {
    if (detected.contains(i)) ++true_positives;
  }
  bench::shape("every planted Cyrillic-TLD homograph detected",
               true_positives == planted.size());
  bench::shape("no benign Cyrillic label misflagged",
               detected.size() == true_positives);
  bench::shape("browser rule also fires here (mixing is the attack vector)",
               attacks_flagged_by_browser == planted.size());
  return 0;
}
