// Table 2: intersection of the character sets with the font's coverage
// (paper: GNU Unifont 12; here: the synthetic paper-scale font).
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Table 2: character sets ∩ font coverage");
  const auto& env = bench::standard_env();
  const auto s = measure::charset_sizes(env);

  util::TextTable t{{"Set", "paper #chars", "ours #chars"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight}};
  t.add_row({"IDNA ∩ font", "52,457", util::with_commas(s.idna_font_chars)});
  t.add_row({"UC ∩ font", "5,080", util::with_commas(s.uc_font_chars)});
  t.add_row({"SimChar", "12,686", util::with_commas(s.simchar_chars)});
  std::printf("%s\n", t.str().c_str());
  std::printf("font: %s, %zu glyphs total\n", env.paper.font->name().c_str(),
              s.font_glyphs);

  bench::shape("font covers a large IDNA subset", s.idna_font_chars > 10'000);
  bench::shape("SimChar ⊆ IDNA ∩ font", s.simchar_chars <= s.idna_font_chars);
  bench::shape("SimChar is a minority of rendered glyphs (most glyphs unique)",
               s.simchar_chars * 2 < s.idna_font_chars);
  return 0;
}
