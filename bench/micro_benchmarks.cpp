// Google-benchmark micro benches for the hot paths: the ∆ metric (the
// inner loop of SimChar's 1.4-billion-pair Step II), Punycode transcoding,
// homoglyph-DB lookups, Algorithm 1's per-pair matcher, and zone parsing.
#include <benchmark/benchmark.h>

#include "detect/detector.hpp"
#include "detect/engine.hpp"
#include "dns/zone_file.hpp"
#include "font/metrics.hpp"
#include "font/paper_font.hpp"
#include "idna/idna.hpp"
#include "idna/punycode.hpp"
#include "measure/environment.hpp"
#include "simchar/simchar.hpp"
#include "unicode/utf8.hpp"
#include "util/rng.hpp"

namespace {

using namespace sham;

const measure::Environment& env() {
  static const auto instance = [] {
    measure::EnvironmentConfig config;
    config.font_scale = 0.25;
    return measure::Environment::create(config);
  }();
  return instance;
}

font::GlyphBitmap random_glyph(std::uint64_t seed) {
  util::Rng rng{seed};
  font::GlyphBitmap g;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      if (rng.bernoulli(0.22)) g.set(x, y);
    }
  }
  return g;
}

void BM_DeltaExact(benchmark::State& state) {
  const auto a = random_glyph(1);
  const auto b = random_glyph(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(font::delta(a, b));
  }
}
BENCHMARK(BM_DeltaExact);

void BM_DeltaBoundedFarPair(benchmark::State& state) {
  const auto a = random_glyph(1);
  const auto b = random_glyph(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(font::delta_bounded(a, b, 4));
  }
}
BENCHMARK(BM_DeltaBoundedFarPair);

void BM_DeltaBoundedNearPair(benchmark::State& state) {
  const auto a = random_glyph(1);
  auto b = a;
  b.flip(3, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(font::delta_bounded(a, b, 4));
  }
}
BENCHMARK(BM_DeltaBoundedNearPair);

void BM_Ssim(benchmark::State& state) {
  const auto a = random_glyph(1);
  const auto b = random_glyph(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(font::ssim(a, b));
  }
}
BENCHMARK(BM_Ssim);

void BM_SimCharBuild(benchmark::State& state) {
  font::PaperFontConfig config;
  config.scale = static_cast<double>(state.range(0)) / 100.0;
  const auto paper = font::make_paper_font(config);
  simchar::BuildOptions options;
  options.use_bucket_pruning = state.range(1) != 0;
  std::size_t glyphs = 0;
  for (auto _ : state) {
    simchar::BuildStats stats;
    benchmark::DoNotOptimize(simchar::SimCharDb::build(*paper.font, options, &stats));
    glyphs = stats.glyphs_rendered;
  }
  state.counters["glyphs"] = static_cast<double>(glyphs);
}
BENCHMARK(BM_SimCharBuild)
    ->Args({10, 1})
    ->Args({25, 1})
    ->Args({50, 1})
    ->Args({25, 0})
    ->Unit(benchmark::kMillisecond);

void BM_PunycodeEncode(benchmark::State& state) {
  const unicode::U32String label{0x963F, 0x91CC, 0x5DF4, 0x5DF4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(idna::punycode_encode(label));
  }
}
BENCHMARK(BM_PunycodeEncode);

void BM_PunycodeDecode(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(idna::punycode_decode("tsta8290bfzd"));
  }
}
BENCHMARK(BM_PunycodeDecode);

void BM_DbLookup(benchmark::State& state) {
  const auto& db = env().db_union;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.are_homoglyphs('o', 0x00F6));
    benchmark::DoNotOptimize(db.are_homoglyphs('o', 0x4E00));
  }
}
BENCHMARK(BM_DbLookup);

void BM_MatchPair(benchmark::State& state) {
  const detect::HomographDetector detector{env().db_union};
  const unicode::U32String idn{'g', 0x043E, 0x043E, 'g', 'l', 'e'};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.match_pair("google", idn));
  }
}
BENCHMARK(BM_MatchPair);

void BM_ExtractIdnPredicate(benchmark::State& state) {
  const std::string ace = "xn--ggle-55da.com";
  const std::string plain = "example.com";
  for (auto _ : state) {
    benchmark::DoNotOptimize(idna::is_idn(ace));
    benchmark::DoNotOptimize(idna::is_idn(plain));
  }
}
BENCHMARK(BM_ExtractIdnPredicate);

void BM_DetectUnicodeRefs(benchmark::State& state) {
  const detect::Engine engine{env().db_union,
                              {.strategy = detect::Strategy::kIndexed, .cache = false}};
  std::vector<unicode::U32String> refs;
  util::Rng rng{9};
  for (int i = 0; i < 100; ++i) {
    unicode::U32String label;
    for (int j = 0; j < 6; ++j) {
      label.push_back(0x0430 + static_cast<unicode::CodePoint>(rng.below(32)));
    }
    refs.push_back(label);
  }
  std::vector<detect::IdnEntry> idns;
  for (int i = 0; i < 500; ++i) {
    auto label = refs[rng.below(refs.size())];
    label[rng.below(label.size())] = 'a' + static_cast<unicode::CodePoint>(rng.below(26));
    idns.push_back({idna::to_a_label(label), label});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.detect({.unicode_references = refs, .idns = idns}));
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_DetectUnicodeRefs)->Unit(benchmark::kMicrosecond);

void BM_IncrementalUpdate(benchmark::State& state) {
  font::PaperFontConfig config;
  config.scale = 0.25;
  const auto paper = font::make_paper_font(config);
  const auto existing = simchar::SimCharDb::build(*paper.font);
  // "New" characters: a slice of the covered repertoire re-checked.
  std::vector<unicode::CodePoint> added;
  const auto coverage = paper.font->coverage();
  for (std::size_t i = 0; i < coverage.size() && added.size() < 500; i += 7) {
    added.push_back(coverage[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simchar::update_with_new_characters(existing, *paper.font, added));
  }
  state.counters["added"] = static_cast<double>(added.size());
}
BENCHMARK(BM_IncrementalUpdate)->Unit(benchmark::kMillisecond);

void BM_RevertToAscii(benchmark::State& state) {
  const auto& db = env().db_union;
  const unicode::U32String label{'g', 0x043E, 0x043E, 'g', 'l', 0x0435};
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.revert_to_ascii(label));
  }
}
BENCHMARK(BM_RevertToAscii);

void BM_SkeletonBaseline(benchmark::State& state) {
  const auto& uc = unicode::ConfusablesDb::embedded();
  const unicode::U32String label{'g', 0x043E, 0x043E, 'g', 'l', 0x0435};
  for (auto _ : state) {
    benchmark::DoNotOptimize(uc.skeleton(label));
  }
}
BENCHMARK(BM_SkeletonBaseline);

void BM_ZoneParse(benchmark::State& state) {
  std::string zone = "$ORIGIN com.\n$TTL 86400\n";
  for (int i = 0; i < 1000; ++i) {
    zone += "domain-" + std::to_string(i) + " IN NS ns1.hoster.net.\n";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::parse_zone(zone));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ZoneParse)->Unit(benchmark::kMillisecond);

void BM_Utf8Decode(benchmark::State& state) {
  const std::string text = "g\xD0\xBE\xD0\xBEgle-\xE4\xB8\xAD\xE6\x96\x87";
  for (auto _ : state) {
    benchmark::DoNotOptimize(unicode::decode_utf8(text));
  }
}
BENCHMARK(BM_Utf8Decode);

}  // namespace

BENCHMARK_MAIN();
