// Ablation: the ∆ ≤ θ threshold (Section 3.3 / Figure 9 design choice).
// Sweeps θ from 0 to 8 and reports, for each setting: SimChar size, how
// many planted homoglyphs are recovered, how many above-threshold planted
// lookalikes are missed, and the expected human confusability at the
// boundary — showing why the paper settles on the conservative θ = 4.
#include "bench_common.hpp"
#include "perception/crowd_study.hpp"

int main() {
  using namespace sham;
  bench::header("Ablation: SimChar distance threshold θ");

  font::PaperFontConfig font_config;
  const auto paper = font::make_paper_font(font_config);

  // Planted pair inventory by exact ∆ (ground truth).
  std::size_t planted_by_delta[16] = {};
  for (const auto& cluster : paper.clusters) {
    for (const auto& member : cluster.members) {
      if (member.delta < 16) ++planted_by_delta[member.delta];
    }
  }

  util::TextTable t{{"θ", "pairs", "chars", "planted ≤ θ found", "planted > θ excluded",
                     "E[score] at θ", "pairwise s"},
                    {util::Align::kRight, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight}};

  for (int theta = 0; theta <= 8; ++theta) {
    simchar::BuildOptions options;
    options.threshold = theta;
    simchar::BuildStats stats;
    const auto db = simchar::SimCharDb::build(*paper.font, options, &stats);

    std::size_t found = 0;
    std::size_t excluded = 0;
    for (const auto& cluster : paper.clusters) {
      for (const auto& member : cluster.members) {
        if (member.delta <= theta) {
          if (db.are_homoglyphs(cluster.base, member.cp)) ++found;
        } else {
          ++excluded;
        }
      }
    }
    t.add_row({std::to_string(theta), util::with_commas(db.pair_count()),
               util::with_commas(db.character_count()), util::with_commas(found),
               util::with_commas(excluded),
               util::fixed(perception::expected_score(theta), 2),
               util::fixed(stats.compare_seconds, 3)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("the paper picks θ = 4: expected confusability stays in the "
              "'confusing' band (≥ 3.5) up to θ = 4 and collapses at θ = 5\n");

  bench::shape("θ = 4 keeps expected confusability ≥ 3.5",
               perception::expected_score(4) >= 3.5);
  bench::shape("θ = 5 drops expected confusability below 3",
               perception::expected_score(5) < 3.0);
  return 0;
}
