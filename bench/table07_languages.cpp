// Table 7: top languages used for registered IDNs
// (paper: Chinese 46.5%, Korean 10.6%, Japanese 9.3%, German 5.6%,
// Turkish 3.6%).
#include "bench_common.hpp"

int main() {
  using namespace sham;
  bench::header("Table 7: top languages among registered IDNs");
  const auto& env = bench::standard_env();

  internet::ScenarioConfig config;
  config.total_domains = 2'000'000;
  config.reference_count = 1'000;
  config.attack_scale = 0.3;
  config.build_world = false;
  const auto ctx = measure::make_wild_context(env, config);
  std::printf("[setup] %zu IDNs extracted\n", ctx.idns.size());

  const auto rows = measure::idn_languages(ctx, 8);
  util::TextTable t{{"Rank", "Language", "Number", "Fraction"},
                    {util::Align::kRight, util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight}};
  int rank = 1;
  for (const auto& row : rows) {
    t.add_row({std::to_string(rank++), row.language, util::with_commas(row.count),
               util::percent(row.fraction)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("paper: Chinese 46.5%% / Korean 10.6%% / Japanese 9.3%% / "
              "Germany 5.6%% / Turkish 3.6%%\n");

  bench::shape("Chinese leads by a wide margin",
               rows[0].language == "Chinese" && rows[0].fraction > 0.30);
  bool korean_above_japanese = false;
  double korean = 0;
  double japanese = 0;
  for (const auto& row : rows) {
    if (row.language == "Korean") korean = row.fraction;
    if (row.language == "Japanese") japanese = row.fraction;
  }
  korean_above_japanese = korean > japanese && japanese > 0;
  bench::shape("CJK languages dominate; Korean > Japanese", korean_above_japanese);
  return 0;
}
