#!/bin/sh
# Build, test, and regenerate every experiment — the full reproduction run.
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

echo
echo "shape criteria summary:"
grep -c "\[OK\]" bench_output.txt | xargs echo "  OK:  "
grep -c "MISS" bench_output.txt | xargs echo "  MISS:" || true
