#!/bin/sh
# End-to-end check of the streaming zone generator and the sharded
# detection pipeline: build the tree, run the generator-equivalence suite
# (ZoneTextStream byte-identical to the materialize-then-serialize path at
# every chunk size) and the shard-equivalence suite (verdict fingerprints
# identical at 1/2/8 shards), then drive the CLI the way a user would —
# build-db, a 1e6-domain synthetic scale-run at 1 and 4 shards whose
# fingerprints must agree, and a bounded-RSS assertion on the streamed run
# (peak resident set within a fixed slack of the pre-run baseline: the
# pipeline never materializes the zone).
#
#   $ tools/check_genstream.sh             # uses ./build (configures if absent)
#   $ BUILD_DIR=build-asan tools/check_genstream.sh
set -e
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
# Peak-RSS slack over the pre-run baseline for the 1e6-domain streamed
# run, KiB. The working set is engine + chunk ring + batch queue + verdict
# vectors — a constant; materializing 1e6 domains would cost ~100 MiB+.
RSS_SLACK_KIB="${RSS_SLACK_KIB:-262144}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target test_zone_gen test_scale shamfinder_cli -j >/dev/null

echo "=== generator-equivalence suite (streamed == materialized) ==="
"$BUILD_DIR"/tests/test_zone_gen --gtest_brief=1

echo "=== shard-equivalence suite (fingerprints at 1/2/8 shards) ==="
"$BUILD_DIR"/tests/test_scale --gtest_brief=1 \
  --gtest_filter='DetectSharded.*:DetectGenerated.*:StreamGenerated.*:Fleet.*'

echo "=== CLI: build-db -> synthetic 1e6-domain scale-run, 1 vs 4 shards ==="
TMP=$(mktemp -d /tmp/sham_check_genstream.XXXXXX)
trap 'rm -rf "$TMP"' EXIT
REFS=google,amazon,facebook,wikipedia,paypal

"$BUILD_DIR"/examples/shamfinder_cli build-db "$TMP/db.artifact" --refs "$REFS"

for shards in 1 4; do
  "$BUILD_DIR"/examples/shamfinder_cli scale-run --db-file "$TMP/db.artifact" \
    --domains 1000000 --seed 7 --shards "$shards" \
    > "$TMP/report_$shards.json"
  grep -q '"ok": true' "$TMP/report_$shards.json" || {
    echo "fleet report not ok at $shards shard(s):"
    cat "$TMP/report_$shards.json"; exit 1
  }
done

fp1=$(grep -o '"verdict_fingerprint": [0-9]*' "$TMP/report_1.json")
fp4=$(grep -o '"verdict_fingerprint": [0-9]*' "$TMP/report_4.json")
[ -n "$fp1" ] || { echo "no fingerprint in the 1-shard report"; exit 1; }
if [ "$fp1" != "$fp4" ]; then
  echo "shard-count changed the verdict fingerprint: $fp1 vs $fp4"
  exit 1
fi
matches=$(grep -o '"total_matches": [0-9]*' "$TMP/report_1.json" | grep -o '[0-9]*')
[ "$matches" -gt 0 ] || { echo "synthetic fleet found no homographs"; exit 1; }
echo "    1e6 domains, $matches matches, fingerprints identical at 1 and 4 shards"

echo "=== bounded-RSS assertion on the streamed run ==="
rss_before=$(grep -o '"rss_before_kib": [0-9]*' "$TMP/report_1.json" | grep -o '[0-9]*')
rss_peak=$(grep -o '"rss_peak_kib": [0-9]*' "$TMP/report_1.json" | grep -o '[0-9]*' | sort -n | tail -1)
delta=$((rss_peak - rss_before))
if [ "$delta" -gt "$RSS_SLACK_KIB" ]; then
  echo "streamed 1e6-domain run grew RSS by ${delta} KiB (> ${RSS_SLACK_KIB})"
  exit 1
fi
echo "    peak RSS ${rss_peak} KiB, +${delta} KiB over baseline (slack ${RSS_SLACK_KIB})"

echo "generated streaming pipeline end-to-end: PASS"
