#!/bin/sh
# End-to-end check of the memory-mapped DB artifact: build the tree, run
# the artifact test suite and the db_load smoke (round-trip byte-identity
# plus corruption fuzzing), then drive the CLI the way a user would —
# build-db, check --db-file vs the font-built path, and a corrupt-artifact
# rejection probe.
#
#   $ tools/check_db.sh                 # uses ./build (configures if absent)
#   $ BUILD_DIR=build-asan tools/check_db.sh
set -e
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target test_db db_load shamfinder_cli -j >/dev/null

echo "=== artifact test suite ==="
"$BUILD_DIR"/tests/test_db --gtest_brief=1

echo "=== db_load smoke (round trip + corruption fuzz) ==="
"$BUILD_DIR"/bench/db_load --smoke

echo "=== CLI: build-db -> check --db-file vs font-built check ==="
ARTIFACT=$(mktemp -u /tmp/sham_check_db.XXXXXX.artifact)
trap 'rm -f "$ARTIFACT" "$ARTIFACT.corrupt"' EXIT

"$BUILD_DIR"/examples/shamfinder_cli build-db "$ARTIFACT" \
  --refs google,amazon,facebook,wikipedia,paypal

# The two paths must agree verdict-for-verdict (stdout carries the
# warnings; stderr the build/load chatter). `check` exits 1 on a detected
# homograph, 0 on clean — both are expected outcomes here.
for domain in xn--ggle-55da.com xn--amazn-uce.com wikipedia.com; do
  built=$("$BUILD_DIR"/examples/shamfinder_cli check "$domain" \
    --refs google,amazon,facebook,wikipedia,paypal 2>/dev/null) || true
  mapped=$("$BUILD_DIR"/examples/shamfinder_cli check "$domain" \
    --db-file "$ARTIFACT" 2>/dev/null) || true
  if [ "$built" != "$mapped" ]; then
    echo "MISMATCH for $domain:"
    echo "--- font-built ---"; echo "$built"
    echo "--- db-file ---"; echo "$mapped"
    exit 1
  fi
  echo "    $domain: identical verdict"
done

echo "=== corrupt artifact rejected with a diagnostic ==="
cp "$ARTIFACT" "$ARTIFACT.corrupt"
# Flip one byte in the middle of the file (payload region).
size=$(wc -c < "$ARTIFACT.corrupt")
printf '\377' | dd of="$ARTIFACT.corrupt" bs=1 seek=$((size / 2)) conv=notrunc 2>/dev/null
if "$BUILD_DIR"/examples/shamfinder_cli check wikipedia.com \
    --db-file "$ARTIFACT.corrupt" 2>/dev/null; then
  echo "corrupt artifact was accepted"
  exit 1
fi
echo "    rejected (non-zero exit)"

echo "db artifact end-to-end: PASS"
