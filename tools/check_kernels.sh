#!/bin/sh
# Sweep the SIMD kernel layer across every dispatch level the host can run:
# build the tree, then pin each level via SHAM_KERNEL_LEVEL and re-run the
# differential kernel suite plus the kernel/pair-mining smokes. Proves the
# scalar reference and the vector variants are byte-identical end to end.
#
#   $ tools/check_kernels.sh            # uses ./build (configures if absent)
#   $ BUILD_DIR=build-asan tools/check_kernels.sh
set -e
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target test_kernels kernel_sweep simchar_pairs -j >/dev/null

levels=$("$BUILD_DIR"/bench/kernel_sweep --levels)
echo "kernel levels on this host: $(echo "$levels" | tr '\n' ' ')"

for level in $levels; do
  echo "=== SHAM_KERNEL_LEVEL=$level ==="
  SHAM_KERNEL_LEVEL="$level" "$BUILD_DIR"/tests/test_kernels --gtest_brief=1
  SHAM_KERNEL_LEVEL="$level" "$BUILD_DIR"/bench/kernel_sweep --smoke
  SHAM_KERNEL_LEVEL="$level" "$BUILD_DIR"/bench/simchar_pairs --smoke >/dev/null
  echo "    simchar pair-mining smoke: PASS"
done

echo "all kernel levels identical: PASS"
