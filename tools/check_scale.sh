#!/bin/sh
# End-to-end check of the paper-scale streaming pipeline: build the tree,
# run the streaming/equivalence test suites and the scale_run smoke
# (streamed-vs-materialised identity, fleet fingerprints, generation-diff
# vs rebuild), then drive the CLI the way a user would — build-db, craft
# two relabelled registry zones, and a scale-run fleet over the shared
# artifact whose per-TLD verdict fingerprints must agree.
#
#   $ tools/check_scale.sh                 # uses ./build (configures if absent)
#   $ BUILD_DIR=build-asan tools/check_scale.sh
set -e
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target test_scale test_dns scale_run shamfinder_cli -j >/dev/null

echo "=== streaming pipeline test suite ==="
"$BUILD_DIR"/tests/test_scale --gtest_brief=1

echo "=== zone parser + chunk-boundary property suite ==="
"$BUILD_DIR"/tests/test_dns --gtest_brief=1 \
  --gtest_filter='ZoneFile.*:ZoneStream.*:Seeds/ZoneChunkProperty.*'

echo "=== scale_run smoke (identity + fleet + diff feed) ==="
"$BUILD_DIR"/bench/scale_run --smoke

echo "=== CLI: build-db -> scale-run fleet over two relabelled zones ==="
TMP=$(mktemp -d /tmp/sham_check_scale.XXXXXX)
trap 'rm -rf "$TMP"' EXIT
REFS=google,amazon,facebook,wikipedia,paypal

"$BUILD_DIR"/examples/shamfinder_cli build-db "$TMP/db.artifact" --refs "$REFS"

# Same second-level labels under two TLDs: verdicts are keyed by the ACE
# label (TLD-independent), so both workers must report one fingerprint.
"$BUILD_DIR"/examples/shamfinder_cli candidates google 25 \
  | awk 'NR > 1 { print $NF }' > "$TMP/slds"
[ -s "$TMP/slds" ] || { echo "no homograph candidates generated"; exit 1; }

for tld in com net; do
  {
    printf '$ORIGIN %s.\n$TTL 300\n' "$tld"
    while read -r sld; do
      printf '%s IN NS ns1.hoster.net.\n' "$sld"
      printf '%s IN A 203.0.113.7\n' "$sld"
    done < "$TMP/slds"
    printf 'plain IN A 203.0.113.8\n'
  } > "$TMP/$tld.zone"
done

"$BUILD_DIR"/examples/shamfinder_cli scale-run --db-file "$TMP/db.artifact" \
  --zone "com:$TMP/com.zone" --zone "net:$TMP/net.zone" --passes 2 \
  > "$TMP/report.json"

grep -q '"ok": true' "$TMP/report.json" || {
  echo "fleet report not ok:"; cat "$TMP/report.json"; exit 1
}
matches=$(grep -o '"total_matches": [0-9]*' "$TMP/report.json" | grep -o '[0-9]*')
[ "$matches" -gt 0 ] || { echo "fleet found no homographs"; exit 1; }
fingerprints=$(grep -o '"verdict_fingerprint": [0-9]*' "$TMP/report.json" | sort -u | wc -l)
if [ "$fingerprints" -ne 1 ]; then
  echo "per-TLD verdict fingerprints diverged:"; cat "$TMP/report.json"; exit 1
fi
echo "    2 workers, $matches matches, fingerprints identical"

echo "=== scale-run rejects an artifact without references ==="
"$BUILD_DIR"/examples/shamfinder_cli build-db "$TMP/norefs.artifact" >/dev/null 2>&1
if "$BUILD_DIR"/examples/shamfinder_cli scale-run --db-file "$TMP/norefs.artifact" \
    --zone "com:$TMP/com.zone" >/dev/null 2>&1; then
  echo "reference-free artifact was accepted"
  exit 1
fi
echo "    rejected (non-zero exit)"

echo "scale pipeline end-to-end: PASS"
