// Monotonic stopwatch used by the cost-measurement experiments (Table 5,
// §4.2 detection throughput).
#pragma once

#include <chrono>

namespace sham::util {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_{clock::now()} {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace sham::util
