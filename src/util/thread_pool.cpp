#include "util/thread_pool.hpp"

#include <algorithm>
#include <memory>

namespace sham::util {

namespace {

/// Per-call completion latch for the parallel_for family: each call counts
/// down its own tasks, so concurrent callers sharing one pool never wait on
/// each other's work (the pool-wide in-flight counter would).
struct Completion {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining = 0;

  void arrive() {
    std::lock_guard lock{mutex};
    if (--remaining == 0) done.notify_all();
  }

  void wait() {
    std::unique_lock lock{mutex};
    done.wait(lock, [this] { return remaining == 0; });
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{mutex_};
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock{mutex_};
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock{mutex_};
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t, std::size_t)>& body,
                              std::size_t chunks) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (chunks == 0) chunks = thread_count() * 4;
  chunks = std::min(chunks, n);
  const std::size_t step = (n + chunks - 1) / chunks;
  const auto state = std::make_shared<Completion>();
  state->remaining = (n + step - 1) / step;
  for (std::size_t c = begin; c < end; c += step) {
    const std::size_t c_end = std::min(c + step, end);
    submit([&body, state, c, c_end] {
      body(c, c_end);
      state->arrive();
    });
  }
  state->wait();
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (begin >= end || chunks == 0) return;
  const std::size_t n = end - begin;
  const std::size_t step = (n + chunks - 1) / chunks;
  const auto state = std::make_shared<Completion>();
  state->remaining = std::min(chunks, (n + step - 1) / step);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t c_begin = begin + c * step;
    if (c_begin >= end) break;
    const std::size_t c_end = std::min(c_begin + step, end);
    submit([&body, state, c, c_begin, c_end] {
      body(c, c_begin, c_end);
      state->arrive();
    });
  }
  state->wait();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock{mutex_};
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock{mutex_};
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace sham::util
