#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace sham::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline(std::size_t depth) {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(depth * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::separate() {
  if (stack_.empty()) return;
  auto& level = stack_.back();
  if (level.key_pending) {
    // key() already wrote the separator and the key itself.
    level.key_pending = false;
    return;
  }
  if (level.members > 0) out_ += ',';
  newline(stack_.size());
  ++level.members;
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_ += '{';
  stack_.push_back({'{', 0, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had_members = !stack_.empty() && stack_.back().members > 0;
  stack_.pop_back();
  if (had_members) newline(stack_.size());
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_ += '[';
  stack_.push_back({'[', 0, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had_members = !stack_.empty() && stack_.back().members > 0;
  stack_.pop_back();
  if (had_members) newline(stack_.size());
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  auto& level = stack_.back();
  if (level.members > 0) out_ += ',';
  newline(stack_.size());
  ++level.members;
  out_ += '"';
  out_ += json_escape(k);
  out_ += indent_ > 0 ? "\": " : "\":";
  level.key_pending = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  separate();
  out_ += json;
  return *this;
}

}  // namespace sham::util
