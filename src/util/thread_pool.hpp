// Fixed-size worker pool with a blocking parallel_for, used to parallelise
// the pairwise glyph-distance computation (the paper used 15 concurrent
// processes for the same step; see Table 5).
//
// parallel_for / parallel_for_chunks track completion per call (not via the
// pool-wide in-flight counter), so independent callers may drive one shared
// pool concurrently — the serving layer relies on this. wait_idle() still
// waits for *everything*, including tasks enqueued with submit().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sham::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  void wait_idle();

  /// Split [begin, end) into chunks and run `body(chunk_begin, chunk_end)`
  /// on the pool; blocks until every chunk of *this call* is done (other
  /// callers' tasks are not waited for). `chunks` of 0 picks 4× the worker
  /// count for load balancing of irregular work.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t chunks = 0);

  /// Like parallel_for, but with a fixed chunk count and a chunk-id hook:
  /// runs `body(chunk, chunk_begin, chunk_end)` for chunk ids 0..chunks-1,
  /// where chunk c covers [begin + c*step, begin + (c+1)*step) ∩ [begin, end)
  /// with step = ceil((end-begin)/chunks). Ascending chunk ids therefore
  /// cover ascending, contiguous index ranges, so callers can write into
  /// preallocated per-chunk slots without synchronisation and merge them in
  /// chunk order to reproduce the serial iteration order exactly. Chunks
  /// whose range is empty (chunks > end-begin) are never invoked. Blocks
  /// until every chunk is done.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end, std::size_t chunks,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace sham::util
