#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace sham::util {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string to_lower_ascii(std::string_view text) {
  std::string out{text};
  for (auto& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::uint64_t parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument{"parse_u64: not a number: '" + std::string{text} + "'"};
  }
  return value;
}

std::uint32_t parse_hex_codepoint(std::string_view text) {
  if (starts_with(text, "U+") || starts_with(text, "u+")) text.remove_prefix(2);
  std::uint32_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value, 16);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument{"parse_hex_codepoint: bad hex: '" + std::string{text} + "'"};
  }
  return value;
}

std::string format_codepoint(std::uint32_t cp) {
  static constexpr char digits[] = "0123456789ABCDEF";
  std::string hex;
  while (cp != 0) {
    hex.insert(hex.begin(), digits[cp & 0xF]);
    cp >>= 4;
  }
  while (hex.size() < 4) hex.insert(hex.begin(), '0');
  return "U+" + hex;
}

}  // namespace sham::util
