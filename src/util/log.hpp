// Minimal leveled logger. Experiments log milestones at Info; tests silence
// everything below Warn to keep ctest output readable.
#pragma once

#include <string_view>

namespace sham::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

void log(LogLevel level, std::string_view message);

inline void log_debug(std::string_view m) { log(LogLevel::kDebug, m); }
inline void log_info(std::string_view m) { log(LogLevel::kInfo, m); }
inline void log_warn(std::string_view m) { log(LogLevel::kWarn, m); }
inline void log_error(std::string_view m) { log(LogLevel::kError, m); }

}  // namespace sham::util
