// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sham::util {

/// Split on a single character; empty fields are kept.
std::vector<std::string_view> split(std::string_view text, char sep);

/// Split on runs of ASCII whitespace; empty fields are dropped.
std::vector<std::string_view> split_ws(std::string_view text);

std::string_view trim(std::string_view text);

/// ASCII-only lowercasing (domain names are case-insensitive in ASCII).
std::string to_lower_ascii(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parse a non-negative integer; throws std::invalid_argument on garbage.
std::uint64_t parse_u64(std::string_view text);

/// Parse "U+XXXX" or bare hex into a code-point value.
std::uint32_t parse_hex_codepoint(std::string_view text);

/// Format a code point as "U+XXXX" (at least 4 hex digits, uppercase).
std::string format_codepoint(std::uint32_t cp);

}  // namespace sham::util
