// Deterministic random number generation for reproducible experiments.
//
// Every simulator in this repository takes an explicit 64-bit seed and
// derives its randomness from an Rng instance, so a whole experiment is
// reproducible bit-for-bit across runs and machines.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace sham::util {

/// SplitMix64: used to expand a single 64-bit seed into stream state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG (Blackman & Vigna). Small, fast, and good enough for
/// workload synthesis; not for cryptography.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  /// Derive an independent child stream; used to give each sub-component
  /// its own generator so insertion-order changes don't ripple.
  [[nodiscard]] Rng fork(std::uint64_t salt) noexcept {
    std::uint64_t s = next() ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng{s};
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <algorithm>/<random>).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument{"Rng::below: bound must be > 0"};
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument{"Rng::between: lo > hi"};
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Approximately normal variate via sum of uniforms (Irwin–Hall, n=12);
  /// adequate for perception-noise modelling.
  double normal(double mean, double stddev) noexcept {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += uniform();
    return mean + (s - 6.0) * stddev;
  }

  /// Pick a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument{"Rng::pick: empty span"};
    return items[below(items.size())];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>{items});
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[below(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Zipf-distributed rank sampler over {0, …, n-1} with exponent s.
/// Used to model the popularity skew of domain-name lookups (passive DNS)
/// and of reference-domain ranks.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Draw a rank in [0, n). Rank 0 is the most popular item.
  std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace sham::util
