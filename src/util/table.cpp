#include "util/table.hpp"

#include <cstdio>
#include <stdexcept>

namespace sham::util {

TextTable::TextTable(std::vector<std::string> header, std::vector<Align> aligns)
    : header_{std::move(header)}, aligns_{std::move(aligns)} {
  if (aligns_.empty()) aligns_.assign(header_.size(), Align::kLeft);
  if (aligns_.size() != header_.size()) {
    throw std::invalid_argument{"TextTable: aligns/header size mismatch"};
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument{"TextTable: row width mismatch"};
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_row = [&](std::string& out, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      if (c != 0) out += "  ";
      if (aligns_[c] == Align::kRight) out.append(pad, ' ');
      out += row[c];
      if (aligns_[c] == Align::kLeft && c + 1 != row.size()) out.append(pad, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(out, header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) out += "  ";
    out.append(width[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(out, row);
  return out;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string percent(double fraction, int digits) {
  return fixed(fraction * 100.0, digits) + "%";
}

std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows) {
  auto field = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += '"';
      q += c;
    }
    return q + "\"";
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += ',';
      out += field(row[i]);
    }
    out += '\n';
  };
  emit(header);
  for (const auto& row : rows) emit(row);
  return out;
}

}  // namespace sham::util
