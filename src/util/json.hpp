// Minimal streaming JSON writer shared by the stats serializers
// (DetectionStats::to_json, serve::ServerStats::to_json) and the bench
// binaries that persist BENCH_*.json artifacts — replaces the hand-rolled
// snprintf JSON rows that used to live in each bench.
//
// Commas, quoting and escaping are handled by the writer; the caller only
// sequences begin/end/key/value calls. With a nonzero indent the output is
// pretty-printed (one element per line), otherwise compact. The writer is
// append-only and single-threaded; build one per document.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sham::util {

/// Escape `s` for inclusion inside a JSON string literal (no surrounding
/// quotes): ", \, control characters.
[[nodiscard]] std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  /// indent = 0 renders compact; indent > 0 pretty-prints with that many
  /// spaces per nesting level.
  explicit JsonWriter(int indent = 0) : indent_{indent} {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value (or a
  /// begin_object / begin_array).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view{v}); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }

  /// Splice a pre-rendered JSON value (e.g. another serializer's output)
  /// in value position, verbatim.
  JsonWriter& raw(std::string_view json);

  template <typename T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// The rendered document. Valid once every begin_* has been closed.
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  struct Level {
    char kind = '{';           // '{' or '['
    std::size_t members = 0;   // values emitted at this level
    bool key_pending = false;  // key() emitted, awaiting its value
  };

  void separate();  // comma + newline/indent bookkeeping before an element
  void newline(std::size_t depth);

  std::string out_;
  std::vector<Level> stack_;
  int indent_;
};

}  // namespace sham::util
