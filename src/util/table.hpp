// Plain-text table rendering for the benchmark harness. Every bench binary
// prints the paper's table next to the measured one using this printer.
#pragma once

#include <string>
#include <vector>

namespace sham::util {

enum class Align { kLeft, kRight };

/// Column-aligned text table. Rows are strings; numeric formatting is the
/// caller's job (keeps the printer trivial and the output predictable).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header,
                     std::vector<Align> aligns = {});

  void add_row(std::vector<std::string> cells);

  /// Render with a header rule, e.g.
  ///   Name      Count
  ///   --------  -----
  ///   foo          12
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used by bench output.
std::string with_commas(std::uint64_t value);
std::string fixed(double value, int digits);
std::string percent(double fraction, int digits = 1);

/// Write rows as CSV (minimal quoting: fields containing comma/quote/newline
/// are double-quoted).
std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows);

}  // namespace sham::util
