#include "internet/webpage.hpp"

#include <algorithm>

namespace sham::internet {

std::optional<HttpResponse> WebServer::fetch(const dns::DomainName& domain,
                                             bool https) const {
  const auto* host = world_->lookup(domain);
  if (host == nullptr || !host->has_ns || !host->has_a) return std::nullopt;
  if (https ? !host->port443_open : !host->port80_open) return std::nullopt;

  // Synthesize the page the ground-truth site kind would serve.
  HttpResponse r;
  switch (host->website) {
    case WebsiteKind::kParking:
      r.status = 200;
      r.title = domain.str() + " - this domain is parked";
      r.body_bytes = 18000;
      r.body_signature = "parking-template/" + host->ns_host;
      break;
    case WebsiteKind::kForSale:
      r.status = 200;
      r.title = domain.str() + " is for sale!";
      r.body_bytes = 9000;
      r.body_signature = "sale-lander";
      break;
    case WebsiteKind::kRedirect:
      r.status = 301;
      r.location = "https://" + host->redirect_target + "/";
      r.body_bytes = 0;
      r.body_signature = "redirect";
      break;
    case WebsiteKind::kNormal:
      r.status = 200;
      r.title = domain.str();
      r.body_bytes = 120000;
      r.body_signature = "site/" + domain.str();
      break;
    case WebsiteKind::kEmpty:
      r.status = 200;
      r.title.clear();
      r.body_bytes = 0;
      r.body_signature = "blank";
      break;
    case WebsiteKind::kError:
      r.status = 0;  // connection resets / timeouts at content level
      break;
  }
  return r;
}

ClassifiedSite classify_from_evidence(const std::string& ns_host,
                                      const std::optional<HttpResponse>& http,
                                      const std::optional<HttpResponse>& https) {
  ClassifiedSite out;

  // NS-based parking detection runs first (Section 6.2's methodology).
  const auto& parking = WebClassifier::parking_nameservers();
  if (std::find(parking.begin(), parking.end(), ns_host) != parking.end()) {
    out.kind = WebsiteKind::kParking;
    return out;
  }

  const HttpResponse* r = nullptr;
  if (http && http->status != 0) r = &*http;
  if (r == nullptr && https && https->status != 0) r = &*https;
  if (r == nullptr) {
    out.kind = WebsiteKind::kError;  // reachable port, no usable response
    return out;
  }

  if (r->status >= 300 && r->status < 400 && !r->location.empty()) {
    out.kind = WebsiteKind::kRedirect;
    // Strip scheme and trailing slash from the Location header.
    auto target = r->location;
    if (const auto scheme = target.find("://"); scheme != std::string::npos) {
      target = target.substr(scheme + 3);
    }
    if (!target.empty() && target.back() == '/') target.pop_back();
    out.redirect_target = target;
    return out;
  }
  if (r->body_signature.rfind("parking-template", 0) == 0 ||
      r->title.find("domain is parked") != std::string::npos) {
    out.kind = WebsiteKind::kParking;
    return out;
  }
  if (r->title.find("for sale") != std::string::npos) {
    out.kind = WebsiteKind::kForSale;
    return out;
  }
  if (r->body_bytes == 0) {
    out.kind = WebsiteKind::kEmpty;
    return out;
  }
  out.kind = WebsiteKind::kNormal;
  return out;
}

}  // namespace sham::internet
