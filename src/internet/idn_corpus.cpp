#include "internet/idn_corpus.hpp"

#include <stdexcept>
#include <unordered_set>

#include "idna/idna.hpp"

namespace sham::internet {

namespace {

using unicode::CodePoint;
using unicode::U32String;

CodePoint pick_in(util::Rng& rng, CodePoint first, CodePoint last) {
  return first + static_cast<CodePoint>(rng.below(last - first + 1));
}

U32String chinese_label(util::Rng& rng) {
  // Common-use ideographs cluster in the lower CJK Unified range.
  const int n = 2 + static_cast<int>(rng.below(3));
  U32String out;
  for (int i = 0; i < n; ++i) out.push_back(pick_in(rng, 0x4E00, 0x62FF));
  return out;
}

U32String korean_label(util::Rng& rng) {
  const int n = 2 + static_cast<int>(rng.below(4));
  U32String out;
  for (int i = 0; i < n; ++i) out.push_back(pick_in(rng, 0xAC00, 0xD7A3));
  return out;
}

U32String japanese_label(util::Rng& rng) {
  const int n = 3 + static_cast<int>(rng.below(4));
  U32String out;
  for (int i = 0; i < n; ++i) {
    switch (rng.below(3)) {
      case 0: out.push_back(pick_in(rng, 0x3042, 0x3093)); break;  // Hiragana
      case 1: out.push_back(pick_in(rng, 0x30A2, 0x30F3)); break;  // Katakana
      default: out.push_back(pick_in(rng, 0x4E00, 0x57FF)); break; // Kanji
    }
  }
  return out;
}

U32String latin_with(util::Rng& rng, std::initializer_list<CodePoint> special) {
  const int n = 4 + static_cast<int>(rng.below(7));
  const std::size_t special_at = rng.below(static_cast<std::uint64_t>(n));
  U32String out;
  for (int i = 0; i < n; ++i) {
    if (static_cast<std::size_t>(i) == special_at) {
      out.push_back(*(special.begin() + rng.below(special.size())));
    } else {
      out.push_back('a' + static_cast<CodePoint>(rng.below(26)));
    }
  }
  return out;
}

U32String russian_label(util::Rng& rng) {
  const int n = 4 + static_cast<int>(rng.below(6));
  U32String out;
  for (int i = 0; i < n; ++i) out.push_back(pick_in(rng, 0x0430, 0x044F));
  return out;
}

U32String arabic_label(util::Rng& rng) {
  const int n = 3 + static_cast<int>(rng.below(5));
  U32String out;
  for (int i = 0; i < n; ++i) out.push_back(pick_in(rng, 0x0627, 0x064A));
  return out;
}

U32String thai_label(util::Rng& rng) {
  const int n = 3 + static_cast<int>(rng.below(5));
  U32String out;
  for (int i = 0; i < n; ++i) out.push_back(pick_in(rng, 0x0E01, 0x0E2E));
  return out;
}

U32String greek_label(util::Rng& rng) {
  const int n = 4 + static_cast<int>(rng.below(5));
  U32String out;
  for (int i = 0; i < n; ++i) out.push_back(pick_in(rng, 0x03B1, 0x03C9));
  return out;
}

struct LanguageSpec {
  dns::Language language;
  double weight;
  U32String (*make)(util::Rng&);
};

}  // namespace

IdnSample make_idn_sample(util::Rng& rng, const LanguageMix& mix) {
  const double used =
      mix.chinese + mix.korean + mix.japanese + mix.german + mix.turkish;
  if (used > 1.0) throw std::invalid_argument{"make_idn_sample: weights exceed 1"};
  const double rest = (1.0 - used) / 6.0;

  static const auto german = +[](util::Rng& rng) {
    return latin_with(rng, {0x00E4u, 0x00F6u, 0x00FCu, 0x00DFu});
  };
  static const auto turkish = +[](util::Rng& rng) {
    return latin_with(rng, {0x0131u, 0x011Fu, 0x015Fu});
  };
  static const auto french = +[](util::Rng& rng) {
    return latin_with(rng, {0x00E9u, 0x00E8u, 0x00EAu, 0x00E7u});
  };
  static const auto spanish = +[](util::Rng& rng) {
    return latin_with(rng, {0x00F1u, 0x00EDu, 0x00F3u});
  };

  const LanguageSpec specs[] = {
      {dns::Language::kChinese, mix.chinese, &chinese_label},
      {dns::Language::kKorean, mix.korean, &korean_label},
      {dns::Language::kJapanese, mix.japanese, &japanese_label},
      {dns::Language::kGerman, mix.german, german},
      {dns::Language::kTurkish, mix.turkish, turkish},
      {dns::Language::kFrench, rest, french},
      {dns::Language::kSpanish, rest, spanish},
      {dns::Language::kRussian, rest, &russian_label},
      {dns::Language::kArabic, rest, &arabic_label},
      {dns::Language::kThai, rest, &thai_label},
      {dns::Language::kGreek, rest, &greek_label},
  };

  while (true) {
    // Sample a language by weight.
    double u = rng.uniform();
    const LanguageSpec* chosen = &specs[std::size(specs) - 1];
    for (const auto& spec : specs) {
      if (u < spec.weight) {
        chosen = &spec;
        break;
      }
      u -= spec.weight;
    }
    IdnSample sample;
    sample.language = chosen->language;
    sample.label = chosen->make(rng);
    try {
      sample.ace = idna::to_a_label(sample.label);
    } catch (const std::invalid_argument&) {
      continue;  // over-long label; resample
    }
    return sample;
  }
}

std::vector<IdnSample> make_idn_corpus(std::size_t count, std::uint64_t seed,
                                       const LanguageMix& mix) {
  util::Rng rng{seed};
  std::vector<IdnSample> out;
  out.reserve(count);
  std::unordered_set<std::string> seen;
  std::size_t guard = 0;

  while (out.size() < count) {
    auto sample = make_idn_sample(rng, mix);
    if (seen.insert(sample.ace).second) {
      out.push_back(std::move(sample));
      guard = 0;
    } else if (++guard > 10000) {
      throw std::runtime_error{"make_idn_corpus: label space exhausted"};
    }
  }
  return out;
}

}  // namespace sham::internet
