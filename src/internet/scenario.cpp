#include "internet/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "idna/idna.hpp"
#include "internet/brands.hpp"
#include "internet/scenario_core.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace sham::internet {

namespace {

using homoglyph::Source;
using unicode::CodePoint;
using unicode::U32String;

constexpr std::uint8_t kHpHosts = static_cast<std::uint8_t>(BlacklistFeed::kHpHosts);
constexpr std::uint8_t kGsb = static_cast<std::uint8_t>(BlacklistFeed::kGsb);
constexpr std::uint8_t kSymantec = static_cast<std::uint8_t>(BlacklistFeed::kSymantec);

/// Scaled count helper: paper_value × attack_scale, rounded.
std::size_t scaled(double paper_value, double scale) {
  return static_cast<std::size_t>(paper_value * scale + 0.5);
}

/// Independent generator for one index of a frozen stream: every
/// index-addressed quantity (filler label, membership bits, benign
/// sample, benign host) is drawn from its own Rng so the population can
/// be enumerated in any order, or not at all, without state.
util::Rng index_rng(std::uint64_t stream_seed, std::uint64_t index) noexcept {
  std::uint64_t s = index;
  return util::Rng{stream_seed ^ util::splitmix64(s)};
}

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Provenance classes an attack substitution can be drawn from.
enum class Provenance { kUcOnly, kSimOnly, kBoth };

/// Pick a homoglyph of `base` with the wanted provenance, if one exists.
std::optional<CodePoint> pick_homoglyph(const homoglyph::HomoglyphDb& db,
                                        util::Rng& rng, CodePoint base,
                                        Provenance wanted) {
  std::vector<CodePoint> options;
  for (const auto h : db.homoglyphs_of(base)) {
    if (unicode::is_ascii(h)) continue;  // substitutions must make an IDN
    const auto source = db.source_of(base, h);
    if (!source) continue;
    const bool ok = (wanted == Provenance::kUcOnly && *source == Source::kUc) ||
                    (wanted == Provenance::kSimOnly && *source == Source::kSimChar) ||
                    (wanted == Provenance::kBoth && *source == Source::kBoth);
    if (ok) options.push_back(h);
  }
  if (options.empty()) return std::nullopt;
  return options[rng.below(options.size())];
}

/// Construct one homograph of `target` with the wanted provenance; the
/// actual achieved provenance (union over substituted positions) is
/// written to `achieved`.
std::optional<U32String> make_homograph(const homoglyph::HomoglyphDb& db,
                                        util::Rng& rng, const std::string& target,
                                        Provenance wanted, std::size_t substitutions,
                                        Source* achieved) {
  U32String label;
  label.reserve(target.size());
  for (const char c : target) label.push_back(static_cast<unsigned char>(c));

  std::vector<std::size_t> positions(target.size());
  for (std::size_t i = 0; i < positions.size(); ++i) positions[i] = i;
  rng.shuffle(positions);

  std::uint8_t provenance_bits = 0;
  std::size_t done = 0;
  for (const auto pos : positions) {
    if (done == substitutions) break;
    const auto replacement = pick_homoglyph(db, rng, label[pos], wanted);
    if (!replacement) continue;
    const auto source = db.source_of(label[pos], *replacement);
    provenance_bits |= static_cast<std::uint8_t>(*source);
    label[pos] = *replacement;
    ++done;
  }
  if (done == 0) return std::nullopt;
  *achieved = static_cast<Source>(provenance_bits);
  return label;
}

HostState benign_host_state(util::Rng& rng, bool popular, std::size_t rank) {
  HostState s;
  s.has_ns = rng.bernoulli(popular ? 1.0 : 0.92);
  s.has_a = s.has_ns && rng.bernoulli(popular ? 1.0 : 0.85);
  s.port80_open = s.has_a && rng.bernoulli(popular ? 1.0 : 0.8);
  s.port443_open = s.port80_open && rng.bernoulli(popular ? 1.0 : 0.7);
  s.has_mx = rng.bernoulli(popular ? 0.9 : 0.3);
  s.web_link = popular || rng.bernoulli(0.2);
  s.sns_link = popular ? rng.bernoulli(0.8) : rng.bernoulli(0.05);
  s.ns_host = "ns1.hosting-" + std::to_string(rng.below(5000)) + ".net";
  s.website = s.port80_open ? WebsiteKind::kNormal : WebsiteKind::kEmpty;
  if (popular) {
    // Zipf-ish popularity: top rank gets ~1e9 resolutions.
    s.dns_resolutions = static_cast<std::uint64_t>(1.0e9 / static_cast<double>(rank + 1));
  } else {
    s.dns_resolutions = rng.below(2000);
  }
  return s;
}

}  // namespace

const std::vector<CaseStudySpec>& table11_case_studies() {
  // Table 11 of the paper: top-10 active IDN homographs by passive-DNS
  // resolutions. Substitution characters chosen so the homograph is a
  // single accented/lookalike substitution of the reference name.
  static const std::vector<CaseStudySpec> specs{
      {"gmail", 'i', 0x0131, 3, "Phishing", 615447, false, true, false, false},
      {"doviz", 'o', 0x00F6, 1, "Portal", 127417, true, false, true, false},
      {"gmail", 'g', 0x0261, 0, "Parked", 74699, false, true, false, false},
      {"gmail", 'a', 0x00E0, 2, "Parked", 63233, true, false, true, false},
      {"expansion", 'o', 0x00F3, 7, "Parked", 56918, false, true, true, false},
      {"gmail", 'l', 0x013A, 4, "Parked", 49248, true, false, false, false},
      {"yahoo", 'a', 0x00E0, 1, "Parked", 44368, false, true, false, false},
      {"shadbase", 'a', 0x00E4, 2, "Parked", 38556, true, false, false, true},
      {"youtube", 'e', 0x00EA, 6, "Sale", 37713, true, false, false, true},
      {"peru", 'u', 0x00FA, 3, "Parked", 36405, true, false, false, true},
  };
  return specs;
}

ScenarioCore build_scenario_core(const homoglyph::HomoglyphDb& db,
                                 const ScenarioConfig& config) {
  if (config.total_domains == 0) {
    throw std::invalid_argument{"generate_scenario: total_domains == 0"};
  }
  ScenarioCore core;
  core.config = config;
  util::Rng rng{config.seed};

  // --- Reference list (Alexa stand-in).
  core.references = make_reference_list(config.reference_count, rng.next());

  // ---------------------------------------------------------------------
  // Planted attacks. Counts follow the paper's absolute numbers scaled by
  // attack_scale. Provenance plan from Table 8: UC 436 / SimChar 3,110 /
  // union 3,280 => UC-only 170, both 266, SimChar-only 2,844.
  const double as = config.attack_scale;
  const std::size_t want_uc_only = scaled(170, as);
  const std::size_t want_both = scaled(266, as);
  const std::size_t want_sim_only = scaled(2844, as);
  const std::size_t want_total = want_uc_only + want_both + want_sim_only;

  // Table 9 top-target plan (counts per reference), remainder Zipf-spread.
  struct TargetPlan {
    std::string name;
    std::size_t count;
  };
  std::vector<TargetPlan> plan{
      {"myetherwallet", scaled(170, as)}, {"google", scaled(114, as)},
      {"amazon", scaled(75, as)},         {"facebook", scaled(72, as)},
      {"allstate", scaled(68, as)},
  };
  std::size_t planned = 0;
  for (const auto& p : plan) planned += p.count;

  // Case studies take a slot each (they are attacks too).
  const auto& cases = table11_case_studies();

  // Remaining attacks target references by a popularity-skewed draw.
  util::ZipfSampler ref_zipf{core.references.size(), 0.9};

  // Provenance queue: shuffled multiset of planned provenances.
  std::vector<Provenance> provenance_queue;
  provenance_queue.insert(provenance_queue.end(), want_uc_only, Provenance::kUcOnly);
  provenance_queue.insert(provenance_queue.end(), want_both, Provenance::kBoth);
  provenance_queue.insert(provenance_queue.end(), want_sim_only, Provenance::kSimOnly);
  rng.shuffle(provenance_queue);

  std::unordered_set<std::string> attack_aces;
  auto plant_attack = [&](const std::string& target, Provenance wanted)
      -> std::optional<PlantedAttack> {
    // Mostly single substitutions; occasionally two (both drawn from the
    // same provenance class so the pair's class is preserved).
    const std::size_t subs = rng.bernoulli(0.12) ? 2 : 1;
    for (int attempt = 0; attempt < 6; ++attempt) {
      Source achieved{};
      const auto label = make_homograph(db, rng, target, wanted, subs, &achieved);
      if (!label) return std::nullopt;  // no homoglyphs with this provenance
      PlantedAttack attack;
      attack.unicode = *label;
      try {
        attack.ace = idna::to_a_label(*label);
      } catch (const std::invalid_argument&) {
        continue;
      }
      if (!attack_aces.insert(attack.ace).second) continue;  // duplicate
      attack.target = target;
      attack.provenance = achieved;
      attack.substitutions = subs;
      return attack;
    }
    return std::nullopt;
  };

  // 1) Case studies (fixed substitutions).
  for (const auto& cs : cases) {
    U32String label;
    for (const char c : cs.target) label.push_back(static_cast<unsigned char>(c));
    if (cs.position >= label.size() || label[cs.position] != cs.from) {
      util::log_warn("scenario: case study target mismatch for " + cs.target);
      continue;
    }
    if (!db.are_homoglyphs(cs.from, cs.to)) {
      util::log_warn("scenario: homoglyph pair missing for case study " + cs.target);
      continue;
    }
    label[cs.position] = cs.to;
    PlantedAttack attack;
    attack.unicode = label;
    attack.ace = idna::to_a_label(label);
    attack.target = cs.target;
    attack.provenance = *db.source_of(cs.from, cs.to);
    attack.substitutions = 1;
    if (attack_aces.insert(attack.ace).second) {
      core.attacks.push_back(std::move(attack));
    }
  }

  // 2) Table 9 top targets, then Zipf-spread remainder.
  std::size_t provenance_cursor = 0;
  auto next_provenance = [&] {
    if (provenance_cursor < provenance_queue.size()) {
      return provenance_queue[provenance_cursor++];
    }
    return Provenance::kSimOnly;
  };
  for (const auto& p : plan) {
    for (std::size_t i = 0; i < p.count && core.attacks.size() < want_total; ++i) {
      auto attack = plant_attack(p.name, next_provenance());
      if (attack) core.attacks.push_back(*std::move(attack));
    }
  }
  std::unordered_set<std::string> planned_targets;
  for (const auto& p : plan) planned_targets.insert(p.name);
  // The Table 9 top targets got their exact quota above; the remainder
  // spreads over other references, capped below the smallest planned quota
  // (allstate's 68) so the paper's target ordering is preserved.
  const std::size_t per_target_cap = std::max<std::size_t>(1, scaled(60, as));
  std::unordered_map<std::string, std::size_t> per_target;
  std::size_t stall_guard = 0;
  while (core.attacks.size() < want_total && stall_guard < want_total * 8 + 64) {
    ++stall_guard;
    const auto& target = core.references[ref_zipf.sample(rng)];
    if (target.size() < 4) continue;
    if (planned_targets.contains(target)) continue;
    if (per_target[target] >= per_target_cap) continue;
    auto attack = plant_attack(target, next_provenance());
    if (attack) {
      ++per_target[target];
      core.attacks.push_back(*std::move(attack));
    }
  }
  if (core.attacks.size() < want_total) {
    util::log_warn("scenario: planted " + std::to_string(core.attacks.size()) +
                   " of " + std::to_string(want_total) + " planned attacks");
  }

  // ---------------------------------------------------------------------
  // Benign IDNs fill the IDN budget; the samples themselves are
  // index-addressed (benign_idn_at), only the count and seeds live here.
  const auto idn_budget =
      static_cast<std::size_t>(config.idn_fraction * static_cast<double>(config.total_domains));
  core.benign_count =
      idn_budget > core.attacks.size() ? idn_budget - core.attacks.size() : 0;

  // Freeze the per-stream seeds for every index-addressed tail. Drawn
  // before the (conditional) world build so build_world does not shift
  // the population content.
  core.benign_seed = rng.next();
  core.filler_seed = rng.next();
  core.membership_seed = rng.next();
  core.benign_host_seed = rng.next();

  if (!config.build_world) return core;

  // ---------------------------------------------------------------------
  // World state. Attack funnel follows Tables 10-14:
  //   3,280 detected; 2,294 with NS; 1,909 with A; port scan: 1,642 on 80,
  //   700 on 443, 695 on both (1,647 live); live classification 348/345/
  //   338/281/222/113; redirects 178/125/35; blacklists per provenance.
  const std::size_t n_attacks = core.attacks.size();
  std::vector<std::size_t> order(n_attacks);
  for (std::size_t i = 0; i < n_attacks; ++i) order[i] = i;
  util::Rng funnel_rng = rng.fork(0xF00D);
  funnel_rng.shuffle(order);

  const double ratio = n_attacks / 3280.0;  // adapts paper counts to actual
  const auto r = [&](double paper_count) {
    return static_cast<std::size_t>(paper_count * ratio + 0.5);
  };

  const std::size_t n_no_ns = r(3280 - 2294);
  const std::size_t n_no_a = r(385);
  const std::size_t n_80_only = r(1642 - 695);
  const std::size_t n_both_ports = r(695);
  const std::size_t n_443_only = r(700 - 695);

  // Classification plan for live hosts, in paper proportions.
  std::vector<WebsiteKind> live_kinds;
  const auto push_kinds = [&](WebsiteKind kind, double count) {
    for (std::size_t i = 0; i < r(count); ++i) live_kinds.push_back(kind);
  };
  push_kinds(WebsiteKind::kParking, 348);
  push_kinds(WebsiteKind::kForSale, 345);
  push_kinds(WebsiteKind::kRedirect, 338);
  push_kinds(WebsiteKind::kNormal, 281);
  push_kinds(WebsiteKind::kEmpty, 222);
  push_kinds(WebsiteKind::kError, 113);
  funnel_rng.shuffle(live_kinds);

  std::vector<RedirectKind> redirect_kinds;
  for (std::size_t i = 0; i < r(178); ++i) redirect_kinds.push_back(RedirectKind::kBrandProtection);
  for (std::size_t i = 0; i < r(125); ++i) redirect_kinds.push_back(RedirectKind::kLegitimate);
  for (std::size_t i = 0; i < r(35); ++i) redirect_kinds.push_back(RedirectKind::kMalicious);
  funnel_rng.shuffle(redirect_kinds);

  // Blacklist plans per provenance class (Table 14 decomposition:
  // UC-only 20/1/1, both 8/1/0, SimChar-only 214/11/7).
  struct BlacklistPlan {
    std::size_t hphosts, gsb, symantec;
  };
  const BlacklistPlan plan_uc{r(20), r(1), r(1)};
  const BlacklistPlan plan_both{r(8), r(1), 0};
  const BlacklistPlan plan_sim{r(214), r(11), r(7)};

  std::size_t cursor = 0;
  std::size_t live_cursor = 0;
  std::size_t redirect_cursor = 0;
  std::unordered_map<int, std::size_t> bl_given_h, bl_given_g, bl_given_s;
  // Redirect targets to register afterwards so the classifier can judge
  // them from evidence (malicious targets are blacklisted; Table 13).
  std::vector<std::pair<std::string, RedirectKind>> redirect_targets;

  for (const auto idx : order) {
    const auto& attack = core.attacks[idx];
    HostState s;
    s.ns_host = "ns1.hosting-" + std::to_string(funnel_rng.below(5000)) + ".net";
    const std::size_t position = cursor++;
    if (position < n_no_ns) {
      s.has_ns = false;
    } else if (position < n_no_ns + n_no_a) {
      s.has_ns = true;
      s.has_a = false;
    } else {
      s.has_ns = true;
      s.has_a = true;
      const std::size_t scan_pos = position - n_no_ns - n_no_a;
      if (scan_pos < n_80_only) {
        s.port80_open = true;
      } else if (scan_pos < n_80_only + n_both_ports) {
        s.port80_open = s.port443_open = true;
      } else if (scan_pos < n_80_only + n_both_ports + n_443_only) {
        s.port443_open = true;
      }
    }

    const bool live = s.port80_open || s.port443_open;
    if (live && live_cursor < live_kinds.size()) {
      s.website = live_kinds[live_cursor++];
      if (s.website == WebsiteKind::kParking) {
        const auto& parking = WebClassifier::parking_nameservers();
        s.ns_host = parking[funnel_rng.below(parking.size())];
      }
      if (s.website == WebsiteKind::kRedirect) {
        s.redirect = redirect_cursor < redirect_kinds.size()
                         ? redirect_kinds[redirect_cursor++]
                         : RedirectKind::kLegitimate;
        s.redirect_target = s.redirect == RedirectKind::kBrandProtection
                                ? attack.target + ".com"
                                : synthetic_label(funnel_rng) + "-landing.com";
        if (s.redirect != RedirectKind::kBrandProtection) {
          redirect_targets.emplace_back(s.redirect_target, s.redirect);
        }
      }
    }

    // Blacklists by provenance class.
    const int pclass = attack.provenance == Source::kUc     ? 0
                       : attack.provenance == Source::kBoth ? 1
                                                            : 2;
    const BlacklistPlan& bl =
        pclass == 0 ? plan_uc : (pclass == 1 ? plan_both : plan_sim);
    // Nested feeds: Symantec ⊂ GSB ⊂ hpHosts approximately — assign in
    // order so the per-feed counts hit the plan.
    if (s.website != WebsiteKind::kRedirect) {  // Table 14 excludes redirects
      if (bl_given_h[pclass] < bl.hphosts) {
        s.blacklists |= kHpHosts;
        ++bl_given_h[pclass];
        if (bl_given_g[pclass] < bl.gsb) {
          s.blacklists |= kGsb;
          ++bl_given_g[pclass];
        }
        if (bl_given_s[pclass] < bl.symantec && (s.blacklists & kGsb) == 0) {
          s.blacklists |= kSymantec;
          ++bl_given_s[pclass];
        }
      }
    }

    s.dns_resolutions = funnel_rng.below(5000);
    s.web_link = funnel_rng.bernoulli(0.08);
    s.sns_link = funnel_rng.bernoulli(0.04);
    core.head_world.add_domain(dns::DomainName::parse_or_throw(attack.ace + ".com"), s);
  }

  // Register the redirect landing hosts; malicious landings are on the
  // community blacklist so evidence-based Table 13 inference can find them.
  for (const auto& [target, kind] : redirect_targets) {
    const auto domain = dns::DomainName::parse(target);
    if (!domain || core.head_world.is_registered(*domain)) continue;
    HostState s;
    s.has_ns = true;
    s.has_a = true;
    s.port80_open = true;
    s.ns_host = "ns1.hosting-" + std::to_string(funnel_rng.below(5000)) + ".net";
    s.website = WebsiteKind::kNormal;
    if (kind == RedirectKind::kMalicious) s.blacklists |= kHpHosts;
    core.head_world.add_domain(*domain, s);
  }

  // Overwrite case-study host state with the Table 11 rows.
  for (const auto& cs : cases) {
    U32String label;
    for (const char c : cs.target) label.push_back(static_cast<unsigned char>(c));
    if (cs.position >= label.size()) continue;
    label[cs.position] = cs.to;
    std::string ace;
    try {
      ace = idna::to_a_label(label);
    } catch (const std::invalid_argument&) {
      continue;
    }
    const auto domain = dns::DomainName::parse(ace + ".com");
    if (!domain || !core.head_world.is_registered(*domain)) continue;
    auto& s = core.head_world.state_for_update(*domain);
    s.has_ns = true;
    s.has_a = true;
    s.port80_open = true;
    s.port443_open = true;
    s.site_label = cs.category;
    s.dns_resolutions = cs.resolutions;
    s.has_mx = cs.mx_now;
    s.had_mx = cs.mx_past;
    s.web_link = cs.web_link;
    s.sns_link = cs.sns_link;
    if (cs.category == "Parked") {
      const auto& parking = WebClassifier::parking_nameservers();
      s.ns_host = parking[cs.resolutions % parking.size()];
      s.website = WebsiteKind::kParking;
    } else if (cs.category == "Sale") {
      s.website = WebsiteKind::kForSale;
      s.ns_host = "ns1.premium-names.net";
    } else {
      s.website = WebsiteKind::kNormal;
      s.ns_host = "ns1.hosting-" + std::to_string(cs.resolutions % 5000) + ".net";
    }
    if (cs.category == "Phishing") {
      s.blacklists |= kHpHosts;
    }
  }

  // Reference sites are popular benign hosts.
  util::Rng benign_rng = rng.fork(0xBE9);
  for (std::size_t i = 0; i < core.references.size(); ++i) {
    core.head_world.add_domain(
        dns::DomainName::parse_or_throw(core.references[i] + ".com"),
        benign_host_state(benign_rng, true, i));
  }
  return core;
}

IdnSample benign_idn_at(const ScenarioCore& core, std::size_t index) {
  auto rng = index_rng(core.benign_seed, index);
  return make_idn_sample(rng);
}

HostState benign_host_for(const ScenarioCore& core, std::string_view ace) {
  util::Rng rng{core.benign_host_seed ^ fnv1a64(ace)};
  return benign_host_state(rng, false, 0);
}

std::string filler_label_at(const ScenarioCore& core, std::size_t index) {
  auto rng = index_rng(core.filler_seed, index);
  auto label = synthetic_label(rng);
  // The decimal index suffix makes filler labels unique by construction
  // (see the header); no cross-path uniqueness set is required.
  label += '-';
  label += std::to_string(index);
  return label;
}

SourceMembership membership_at(const ScenarioCore& core, std::size_t index) {
  auto rng = index_rng(core.membership_seed, index);
  const bool in_zone = rng.bernoulli(core.config.zone_coverage);
  const bool in_dl = rng.bernoulli(core.config.domainlists_coverage);
  return {.zone = in_zone || !in_dl, .domainlists = in_dl || !in_zone};
}

void append_domain_records(const dns::DomainName& domain, const HostState* host,
                           std::string_view tld,
                           std::vector<dns::ResourceRecord>& out) {
  // World state is keyed by the generated .com names; the relabel swaps
  // the TLD on the emitted owner (and in-zone MX target) only.
  const auto owner =
      tld == "com" ? domain
                   : dns::DomainName::parse_or_throw(
                         std::string{domain.without_tld()} + "." + std::string{tld});

  dns::ResourceRecord ns;
  ns.owner = owner;
  ns.type = dns::RecordType::kNs;
  ns.target = host != nullptr && !host->ns_host.empty() ? host->ns_host
                                                        : "ns1.registrar-default.net";
  if (host == nullptr || host->has_ns) out.push_back(std::move(ns));

  if (host != nullptr && host->has_a) {
    dns::ResourceRecord a;
    a.owner = owner;
    a.type = dns::RecordType::kA;
    // Deterministic documentation-range address derived from the name.
    const auto h = std::hash<std::string>{}(domain.str());
    a.address = dns::Ipv4{0xCB007100u | static_cast<std::uint32_t>(h % 250)};
    out.push_back(std::move(a));
  }
  if (host != nullptr && host->has_mx) {
    dns::ResourceRecord mx;
    mx.owner = owner;
    mx.type = dns::RecordType::kMx;
    mx.priority = 10;
    mx.target = "mx." + owner.str();
    out.push_back(std::move(mx));
  }
}

Scenario generate_scenario(const homoglyph::HomoglyphDb& db,
                           const ScenarioConfig& config) {
  auto core = build_scenario_core(db, config);

  Scenario scenario;
  scenario.config = core.config;
  scenario.benign_idns.reserve(core.benign_count);
  for (std::size_t i = 0; i < core.benign_count; ++i) {
    scenario.benign_idns.push_back(benign_idn_at(core, i));
  }

  // ---------------------------------------------------------------------
  // Assemble the union population: references, attacks, benign IDNs, and
  // index-addressed ASCII backdrop filler.
  const std::size_t population = core.population();
  scenario.domains.reserve(population);
  auto add_domain = [&](const std::string& sld) {
    scenario.domains.push_back(sld + ".com");
  };
  for (const auto& ref : core.references) add_domain(ref);
  for (const auto& attack : core.attacks) add_domain(attack.ace);
  for (const auto& idn : scenario.benign_idns) add_domain(idn.ace);
  for (std::size_t i = scenario.domains.size(); i < population; ++i) {
    add_domain(filler_label_at(core, i));
  }

  // Source lists: independent coverage draws; every domain lands in at
  // least one source so the union equals the population (Table 6).
  for (std::uint32_t i = 0; i < scenario.domains.size(); ++i) {
    const auto m = membership_at(core, i);
    if (m.zone) scenario.zone_index.push_back(i);
    if (m.domainlists) scenario.domainlists_index.push_back(i);
  }

  if (config.build_world) {
    // Benign IDN registrations ride on the head world keep-first: an ACE
    // already registered (an attack or an earlier duplicate benign
    // sample) keeps its state, so world content is order-independent —
    // the property the streaming generator relies on.
    scenario.world = std::move(core.head_world);
    for (const auto& idn : scenario.benign_idns) {
      const auto domain = dns::DomainName::parse_or_throw(idn.ace + ".com");
      if (scenario.world.is_registered(domain)) continue;
      scenario.world.add_domain(domain, benign_host_for(core, idn.ace));
    }
  }

  scenario.references = std::move(core.references);
  scenario.attacks = std::move(core.attacks);
  return scenario;
}

dns::Zone scenario_to_zone(const Scenario& scenario, int which,
                           std::string_view tld) {
  if (which < 0 || which > 2) {
    throw std::invalid_argument{"scenario_to_zone: which must be 0, 1, or 2"};
  }
  dns::Zone zone;
  zone.origin = dns::DomainName::parse_or_throw(tld);
  zone.default_ttl = 172800;  // registry zones commonly use 2 days

  const auto emit = [&](std::uint32_t index) {
    const auto domain = dns::DomainName::parse(scenario.domains[index]);
    if (!domain) return;
    const auto* host = scenario.world.lookup(*domain);
    append_domain_records(*domain, host, tld, zone.records);
  };

  if (which == 0) {
    for (const auto i : scenario.zone_index) emit(i);
  } else if (which == 1) {
    for (const auto i : scenario.domainlists_index) emit(i);
  } else {
    for (std::uint32_t i = 0; i < scenario.domains.size(); ++i) emit(i);
  }
  return zone;
}

}  // namespace sham::internet
