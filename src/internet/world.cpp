#include "internet/world.hpp"

#include <algorithm>
#include <stdexcept>

#include "internet/webpage.hpp"

namespace sham::internet {

std::string_view website_kind_name(WebsiteKind kind) noexcept {
  switch (kind) {
    case WebsiteKind::kParking: return "Domain parking";
    case WebsiteKind::kForSale: return "For sale";
    case WebsiteKind::kRedirect: return "Redirect";
    case WebsiteKind::kNormal: return "Normal";
    case WebsiteKind::kEmpty: return "Empty";
    case WebsiteKind::kError: return "Error";
  }
  return "??";
}

std::string_view redirect_kind_name(RedirectKind kind) noexcept {
  switch (kind) {
    case RedirectKind::kBrandProtection: return "Brand protection";
    case RedirectKind::kLegitimate: return "Legitimate website";
    case RedirectKind::kMalicious: return "Malicious website";
  }
  return "??";
}

std::string_view blacklist_feed_name(BlacklistFeed feed) noexcept {
  switch (feed) {
    case BlacklistFeed::kHpHosts: return "hpHosts";
    case BlacklistFeed::kGsb: return "GSB";
    case BlacklistFeed::kSymantec: return "Symantec";
  }
  return "??";
}

void SimulatedInternet::add_domain(const dns::DomainName& domain, HostState state) {
  hosts_[domain] = std::move(state);
}

bool SimulatedInternet::is_registered(const dns::DomainName& domain) const {
  return hosts_.contains(domain);
}

const HostState* SimulatedInternet::lookup(const dns::DomainName& domain) const {
  const auto it = hosts_.find(domain);
  return it == hosts_.end() ? nullptr : &it->second;
}

HostState& SimulatedInternet::state_for_update(const dns::DomainName& domain) {
  const auto it = hosts_.find(domain);
  if (it == hosts_.end()) {
    throw std::invalid_argument{"SimulatedInternet: unknown domain " + domain.str()};
  }
  return it->second;
}

std::vector<dns::DomainName> SimulatedInternet::domains() const {
  std::vector<dns::DomainName> out;
  out.reserve(hosts_.size());
  for (const auto& [d, s] : hosts_) out.push_back(d);
  std::sort(out.begin(), out.end());
  return out;
}

PortScanResult PortScanner::scan(const dns::DomainName& domain) const {
  const auto* host = world_->lookup(domain);
  if (host == nullptr || !host->has_ns || !host->has_a) return {};
  return {host->port80_open, host->port443_open};
}

std::uint64_t PassiveDns::resolutions(const dns::DomainName& domain) const {
  const auto* host = world_->lookup(domain);
  return host == nullptr ? 0 : host->dns_resolutions;
}

const std::vector<std::string>& WebClassifier::parking_nameservers() {
  // 17 parking-operator nameservers (Section 6.2; list shape follows
  // Vissers et al. / DomainChroma).
  static const std::vector<std::string> list{
      "ns1.sedoparking.net",    "ns2.sedoparking.net",
      "ns1.parkingcrew.net",    "ns2.parkingcrew.net",
      "ns1.bodis.net",          "ns2.bodis.net",
      "ns1.above.net",          "ns2.above.net",
      "ns1.parklogic.net",      "ns2.parklogic.net",
      "ns1.voodoo-parking.net", "ns1.domainapps.net",
      "ns1.cashparking.net",    "ns2.cashparking.net",
      "ns1.smartname.net",      "ns1.rookmedia.net",
      "ns1.dnparking.net",
  };
  return list;
}

ClassifiedSite WebClassifier::classify(const dns::DomainName& domain) const {
  const auto* host = world_->lookup(domain);
  if (host == nullptr) return {};
  const WebServer server{*world_};
  return classify_from_evidence(host->ns_host, server.fetch(domain, false),
                                server.fetch(domain, true));
}

bool BlacklistService::listed(const dns::DomainName& domain, BlacklistFeed feed) const {
  const auto* host = world_->lookup(domain);
  return host != nullptr &&
         (host->blacklists & static_cast<std::uint8_t>(feed)) != 0;
}

std::uint8_t BlacklistService::feeds(const dns::DomainName& domain) const {
  const auto* host = world_->lookup(domain);
  return host == nullptr ? 0 : host->blacklists;
}

bool SearchEngine::has_web_link(const dns::DomainName& domain) const {
  const auto* host = world_->lookup(domain);
  return host != nullptr && host->web_link;
}

bool SearchEngine::has_sns_link(const dns::DomainName& domain) const {
  const auto* host = world_->lookup(domain);
  return host != nullptr && host->sns_link;
}

}  // namespace sham::internet
