#include "internet/zone_gen.hpp"

#include <algorithm>
#include <stdexcept>

#include "dns/zone_file.hpp"

namespace sham::internet {

ZoneTextStream::ZoneTextStream(const homoglyph::HomoglyphDb& db,
                               const ScenarioConfig& config, ZoneGenOptions options)
    : core_{build_scenario_core(db, config)}, options_{std::move(options)} {
  if (options_.which < 0 || options_.which > 2) {
    throw std::invalid_argument{"ZoneTextStream: which must be 0, 1, or 2"};
  }
  // The header is produced by the same serializer the materialized path
  // uses, over a record-less Zone — byte identity by construction.
  dns::Zone head;
  head.origin = dns::DomainName::parse_or_throw(options_.tld);
  head.default_ttl = 172800;  // matches scenario_to_zone
  header_ = dns::serialize_zone(head);
}

void ZoneTextStream::append_domain(std::size_t index, std::string& out) {
  const std::size_t n_refs = core_.references.size();
  const std::size_t n_attacks = core_.attacks.size();
  const std::string* sld = nullptr;
  std::string benign_sld;
  bool benign = false;
  std::string filler_sld;
  if (index < n_refs) {
    sld = &core_.references[index];
  } else if (index < n_refs + n_attacks) {
    sld = &core_.attacks[index - n_refs].ace;
  } else if (index < core_.head_count()) {
    benign_sld = benign_idn_at(core_, index - n_refs - n_attacks).ace;
    sld = &benign_sld;
    benign = true;
  } else {
    filler_sld = filler_label_at(core_, index);
    sld = &filler_sld;
  }

  const auto domain = dns::DomainName::parse(*sld + ".com");
  if (!domain) return;  // mirrors scenario_to_zone's skip

  const HostState* host = nullptr;
  HostState benign_state;
  if (core_.config.build_world) {
    host = core_.head_world.lookup(*domain);
    if (host == nullptr && benign) {
      // Keep-first: an ACE colliding with an attack (or an earlier
      // duplicate benign sample, same pure-function state) resolved to
      // the head-world entry above; fresh benign names get their
      // ACE-keyed state here.
      benign_state = benign_host_for(core_, *sld);
      host = &benign_state;
    }
  }

  scratch_.clear();
  append_domain_records(*domain, host, options_.tld, scratch_);
  for (const auto& record : scratch_) out += dns::serialize_record(record);
  stats_.records += scratch_.size();
  ++stats_.domains_emitted;
}

bool ZoneTextStream::next_chunk(std::string& out) {
  out.clear();
  const std::size_t target = std::max<std::size_t>(1, options_.chunk_bytes);
  const std::size_t start_cursor = cursor_;
  const bool had_header = !header_.empty();
  if (had_header) {
    out += header_;
    header_.clear();
  }
  const std::size_t population = core_.population();
  while (out.size() < target && cursor_ < population) {
    const std::size_t index = cursor_++;
    ++stats_.domains_considered;
    if (options_.which != 2) {
      const auto m = membership_at(core_, index);
      if (!(options_.which == 0 ? m.zone : m.domainlists)) continue;
    }
    append_domain(index, out);
  }
  stats_.bytes += out.size();
  // Progress (indices consumed or the header), not bytes, signals "more":
  // a tail of non-members or record-less delegations can legally produce
  // an empty final chunk.
  return had_header || cursor_ != start_cursor;
}

std::string generate_zone_text(const homoglyph::HomoglyphDb& db,
                               const ScenarioConfig& config,
                               const ZoneGenOptions& options) {
  ZoneTextStream stream{db, config, options};
  std::string text;
  std::string chunk;
  while (stream.next_chunk(chunk)) text += chunk;
  return text;
}

}  // namespace sham::internet
