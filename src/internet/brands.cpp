#include "internet/brands.hpp"

#include <stdexcept>
#include <unordered_set>

namespace sham::internet {

const std::vector<std::string>& well_known_brands() {
  static const std::vector<std::string> brands{
      // Top-10-class names (Table 9 shows google/amazon/facebook there).
      "google", "youtube", "facebook", "baidu", "wikipedia", "yahoo", "amazon",
      "twitter", "instagram", "linkedin",
      // Mail / portal names from Table 11.
      "gmail", "outlook", "hotmail", "aol", "mail",
      // Cryptocurrency names (Binance incident; myetherwallet tops Table 9).
      "binance", "myetherwallet", "coinbase", "blockchain", "bitfinex", "kraken",
      // Targets of the Table 11 homographs.
      "doviz", "expansion", "shadbase", "peru",
      // Moderately popular names, incl. allstate (rank ~5,148 in .com).
      "allstate", "netflix", "paypal", "apple", "microsoft", "office", "live",
      "bing", "ebay", "reddit", "wordpress", "github", "stackoverflow", "imdb",
      "pinterest", "tumblr", "dropbox", "spotify", "whatsapp", "telegram",
      "adobe", "salesforce", "oracle", "intel", "nvidia", "samsung", "huawei",
      "alibaba", "aliexpress", "taobao", "tmall", "jd", "qq", "weibo", "sohu",
      "sina", "naver", "daum", "rakuten", "nicovideo", "dmm", "booking",
      "airbnb", "expedia", "tripadvisor", "uber", "lyft", "walmart", "target",
      "costco", "bestbuy", "homedepot", "nike", "adidas", "zara", "hm",
      "chase", "wellsfargo", "bankofamerica", "citibank", "hsbc", "visa",
      "mastercard", "americanexpress", "fidelity", "vanguard", "schwab",
      "etrade", "robinhood", "stripe", "square", "shopify", "godaddy",
      "cloudflare", "digitalocean", "heroku", "gitlab", "bitbucket", "slack",
      "zoom", "skype", "discord", "twitch", "steam", "epicgames", "roblox",
      "minecraft", "blizzard", "ea", "ubisoft", "sony", "playstation", "xbox",
      "nintendo", "cnn", "bbc", "nytimes", "reuters", "bloomberg", "forbes",
      "espn", "foxnews", "theguardian", "washingtonpost", "wsj", "usatoday",
      "weather", "accuweather", "yelp", "zillow", "realtor", "indeed",
      "glassdoor", "monster", "craigslist", "etsy", "wish", "wayfair",
      "overstock", "groupon", "doordash", "grubhub", "instacart", "fedex",
      "ups", "usps", "dhl", "delta", "united", "southwest", "americanair",
      "marriott", "hilton", "hyatt", "verizon", "att", "tmobile", "sprint",
      "comcast", "xfinity", "spectrum", "duckduckgo", "mozilla", "opera",
      "quora", "medium", "substack", "wikihow", "fandom", "archive",
      "soundcloud", "bandcamp", "vimeo", "dailymotion", "flickr", "imgur",
      "deviantart", "behance", "dribbble", "canva", "figma", "notion",
      "trello", "asana", "atlassian", "zendesk", "mailchimp", "hubspot",
      "surveymonkey", "eventbrite", "meetup", "patreon", "kickstarter",
      "gofundme", "indiegogo", "coursera", "udemy", "edx", "khanacademy",
      "duolingo",
  };
  return brands;
}

std::string synthetic_label(util::Rng& rng) {
  static const std::vector<std::string> onsets{
      "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s",
      "t", "v", "w", "z", "br", "ch", "cl", "dr", "fl", "gr", "pl", "pr",
      "sh", "sl", "st", "tr",
  };
  static const std::vector<std::string> vowels{"a", "e", "i", "o", "u", "ai",
                                               "ea", "io", "oo", "ou"};
  static const std::vector<std::string> codas{"", "", "", "n", "r", "s", "t",
                                              "l", "x", "ck", "nd", "st"};
  const int syllables = 2 + static_cast<int>(rng.below(3));
  std::string label;
  for (int s = 0; s < syllables; ++s) {
    label += rng.pick(onsets);
    label += rng.pick(vowels);
    if (s + 1 == syllables) label += rng.pick(codas);
  }
  return label;
}

std::vector<std::string> make_reference_list(std::size_t count, std::uint64_t seed) {
  const auto& brands = well_known_brands();
  std::vector<std::string> out;
  out.reserve(count);
  std::unordered_set<std::string> seen;
  for (const auto& b : brands) {
    if (out.size() >= count) break;
    if (seen.insert(b).second) out.push_back(b);
  }
  util::Rng rng{seed};
  std::size_t guard = 0;
  while (out.size() < count) {
    auto label = synthetic_label(rng);
    if (seen.insert(label).second) {
      out.push_back(std::move(label));
    } else if (++guard > count * 100 + 1000) {
      throw std::runtime_error{"make_reference_list: name space exhausted"};
    }
  }
  return out;
}

}  // namespace sham::internet
