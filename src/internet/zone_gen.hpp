// Streaming zone generator: synthesizes registry master-file text
// chunk-by-chunk directly from ScenarioCore state — never materializing a
// Scenario or a dns::Zone — byte-identical to
//
//   dns::serialize_zone(scenario_to_zone(generate_scenario(db, config),
//                                        which, tld))
//
// for the same config/seed/which/TLD (proven by tests/test_zone_gen.cpp).
// Memory is bounded by the core's head (references + attacks + funnel
// world, all independent of total_domains) plus one chunk buffer, so the
// synthetic population can be pushed toward the paper's 141 M-domain
// magnitude without the O(N) Scenario working set. Chunks may be fed
// straight into dns::ZoneStreamReader, which accepts any split points.
#pragma once

#include <cstddef>
#include <string>

#include "homoglyph/homoglyph_db.hpp"
#include "internet/scenario_core.hpp"

namespace sham::internet {

struct ZoneGenOptions {
  /// Source list, as in scenario_to_zone: 0 = registry zone file,
  /// 1 = domainlists, 2 = union.
  int which = 0;
  /// Emitted TLD; SLD labels (the part Algorithm 1 compares) stay the
  /// scenario's .com-shaped ones, as in scenario_to_zone.
  std::string tld = "com";
  /// Target chunk size: next_chunk returns once the chunk reaches this
  /// many bytes (it may overshoot by one domain's records).
  std::size_t chunk_bytes = 256 * 1024;
};

struct ZoneGenStats {
  std::size_t domains_considered = 0;  // population indices enumerated
  std::size_t domains_emitted = 0;     // members of the selected source
  std::size_t records = 0;             // master-file record lines written
  std::size_t bytes = 0;               // chunk bytes produced (incl. header)
};

class ZoneTextStream {
 public:
  /// Builds the bounded core up front (references, attacks, funnel
  /// world); per-domain text is generated lazily by next_chunk. Throws
  /// like generate_scenario/scenario_to_zone on invalid config/which/tld.
  ZoneTextStream(const homoglyph::HomoglyphDb& db, const ScenarioConfig& config,
                 ZoneGenOptions options = {});

  /// Fill `out` with the next chunk of master-file text (the first chunk
  /// starts with the $ORIGIN/$TTL header). Returns false when the zone is
  /// exhausted, leaving `out` empty.
  bool next_chunk(std::string& out);

  [[nodiscard]] const ScenarioCore& core() const noexcept { return core_; }
  [[nodiscard]] const ZoneGenStats& stats() const noexcept { return stats_; }
  /// Population indices this stream enumerates (membership then filters
  /// them down to the selected source list).
  [[nodiscard]] std::size_t population() const noexcept { return core_.population(); }

 private:
  void append_domain(std::size_t index, std::string& out);

  ScenarioCore core_;
  ZoneGenOptions options_;
  ZoneGenStats stats_;
  std::string header_;                         // pending $ORIGIN/$TTL text
  std::vector<dns::ResourceRecord> scratch_;   // per-domain record buffer
  std::size_t cursor_ = 0;                     // next population index
};

/// One-shot convenience: concatenate every chunk (materializes the text —
/// for tests and small zones only).
[[nodiscard]] std::string generate_zone_text(const homoglyph::HomoglyphDb& db,
                                             const ScenarioConfig& config,
                                             const ZoneGenOptions& options = {});

}  // namespace sham::internet
