// Reference-domain corpus: well-known .com second-level names (the role
// Alexa Top Sites plays in the paper, Section 5.1) plus a deterministic
// pronounceable-name generator to extend the list to any size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace sham::internet {

/// Curated well-known names, ordered roughly by popularity. Includes every
/// name the paper's tables mention (google, amazon, facebook,
/// myetherwallet, allstate, gmail, yahoo, youtube, binance, ...).
[[nodiscard]] const std::vector<std::string>& well_known_brands();

/// Deterministic pronounceable label (syllable-based), 4-16 chars.
[[nodiscard]] std::string synthetic_label(util::Rng& rng);

/// Build a ranked reference list of `count` names: the curated brands
/// first (in order), then synthetic names. All names are unique.
[[nodiscard]] std::vector<std::string> make_reference_list(std::size_t count,
                                                           std::uint64_t seed);

}  // namespace sham::internet
