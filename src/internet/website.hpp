// Website/host taxonomy used by the measurement pipeline: the active-site
// classification of Table 12, the redirect breakdown of Table 13, and the
// blacklist sources of Table 14.
#pragma once

#include <cstdint>
#include <string_view>

namespace sham::internet {

/// What serving a domain's website looks like to the classifier
/// (puppeteer screenshots + HTTP responses in the paper).
enum class WebsiteKind : std::uint8_t {
  kParking,   // monetized parking page ("Domain parking")
  kForSale,   // "this domain is for sale"
  kRedirect,  // redirects to a different domain
  kNormal,    // renders a legitimate-looking site
  kEmpty,     // serves nothing visible
  kError,     // timeout / connection failure at content level
};

[[nodiscard]] std::string_view website_kind_name(WebsiteKind kind) noexcept;

/// Why a homograph redirects (Table 13).
enum class RedirectKind : std::uint8_t {
  kBrandProtection,  // owner of the original registered the homograph
  kLegitimate,       // unrelated but benign site
  kMalicious,        // phishing / malware landing
};

[[nodiscard]] std::string_view redirect_kind_name(RedirectKind kind) noexcept;

/// Blacklist feeds (Table 14), usable as a bitmask.
enum class BlacklistFeed : std::uint8_t {
  kHpHosts = 1,
  kGsb = 2,       // Google Safe Browsing
  kSymantec = 4,  // Symantec DeepSight
};

[[nodiscard]] std::string_view blacklist_feed_name(BlacklistFeed feed) noexcept;

}  // namespace sham::internet
