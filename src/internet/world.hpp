// The simulated internet: ground-truth state for every registered domain
// (DNS delegation, liveness, website behaviour, mail, popularity,
// blacklist membership) plus the query services the measurement pipeline
// uses — a port scanner, a passive-DNS feed, a headless-browser-style
// website classifier, a search engine, and blacklist lookups. Real
// implementations of these services would perform network I/O; here they
// read the world state through the same narrow interfaces (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/domain.hpp"
#include "internet/website.hpp"

namespace sham::internet {

struct HostState {
  bool has_ns = false;
  bool has_a = false;
  bool port80_open = false;
  bool port443_open = false;
  bool has_mx = false;        // active MX record
  bool had_mx = false;        // MX existed historically
  bool web_link = false;      // linked from the public web
  bool sns_link = false;      // linked from social networks
  std::string ns_host;        // delegated nameserver
  WebsiteKind website = WebsiteKind::kEmpty;
  RedirectKind redirect = RedirectKind::kLegitimate;  // when website == kRedirect
  std::string redirect_target;                        // when website == kRedirect
  std::uint8_t blacklists = 0;       // BlacklistFeed bitmask
  std::uint64_t dns_resolutions = 0; // cumulative passive-DNS lookups
  std::string site_label;            // manual-inspection label (Table 11)
};

class SimulatedInternet {
 public:
  void add_domain(const dns::DomainName& domain, HostState state);

  [[nodiscard]] bool is_registered(const dns::DomainName& domain) const;
  [[nodiscard]] const HostState* lookup(const dns::DomainName& domain) const;
  [[nodiscard]] std::size_t domain_count() const noexcept { return hosts_.size(); }

  /// Registered domains, ascending.
  [[nodiscard]] std::vector<dns::DomainName> domains() const;

  HostState& state_for_update(const dns::DomainName& domain);

 private:
  std::unordered_map<dns::DomainName, HostState> hosts_;
};

/// --- Query services (the measurement pipeline's view of the world) ---

struct PortScanResult {
  bool tcp80 = false;
  bool tcp443 = false;
  [[nodiscard]] bool any() const noexcept { return tcp80 || tcp443; }
};

class PortScanner {
 public:
  explicit PortScanner(const SimulatedInternet& world) : world_{&world} {}

  /// Scans succeed only for resolvable hosts (NS + A present), mirroring
  /// the paper's NS -> A -> scan funnel (Section 6.1).
  [[nodiscard]] PortScanResult scan(const dns::DomainName& domain) const;

 private:
  const SimulatedInternet* world_;
};

class PassiveDns {
 public:
  explicit PassiveDns(const SimulatedInternet& world) : world_{&world} {}

  /// Cumulative name-resolution count observed by the sensor network;
  /// zero for unknown domains.
  [[nodiscard]] std::uint64_t resolutions(const dns::DomainName& domain) const;

 private:
  const SimulatedInternet* world_;
};

struct ClassifiedSite {
  WebsiteKind kind = WebsiteKind::kError;
  std::string redirect_target;  // set when kind == kRedirect (from Location)
};

/// Headless-browser-style classifier: parking detection by NS (the 17
/// parking nameservers), then classification of the *fetched evidence*
/// (pages synthesized by internet::WebServer) — not of the ground truth.
class WebClassifier {
 public:
  explicit WebClassifier(const SimulatedInternet& world) : world_{&world} {}

  /// Classify an *active* site (caller established liveness via scan).
  [[nodiscard]] ClassifiedSite classify(const dns::DomainName& domain) const;

  /// The parking-company nameserver list used for NS-based detection.
  [[nodiscard]] static const std::vector<std::string>& parking_nameservers();

 private:
  const SimulatedInternet* world_;
};

class BlacklistService {
 public:
  explicit BlacklistService(const SimulatedInternet& world) : world_{&world} {}

  [[nodiscard]] bool listed(const dns::DomainName& domain, BlacklistFeed feed) const;
  [[nodiscard]] std::uint8_t feeds(const dns::DomainName& domain) const;

 private:
  const SimulatedInternet* world_;
};

/// Search-engine presence checks used by Table 11 ("Web link" / "SNS").
class SearchEngine {
 public:
  explicit SearchEngine(const SimulatedInternet& world) : world_{&world} {}

  [[nodiscard]] bool has_web_link(const dns::DomainName& domain) const;
  [[nodiscard]] bool has_sns_link(const dns::DomainName& domain) const;

 private:
  const SimulatedInternet* world_;
};

}  // namespace sham::internet
