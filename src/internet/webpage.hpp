// Simulated web serving: what a headless browser (puppeteer in the paper,
// Section 6.2) observes when it visits a domain. The world holds ground
// truth; WebServer synthesizes the observable HTTP evidence from it; the
// classifier then infers the category *from the evidence only* — so the
// classification experiments exercise a real inference path, and tests can
// check inference against the planted truth.
#pragma once

#include <optional>
#include <string>

#include "internet/world.hpp"

namespace sham::internet {

/// Observable response to fetching http(s)://<domain>/.
struct HttpResponse {
  int status = 0;              // 0 = connection failure / timeout
  std::string location;        // Location header for 3xx
  std::string title;           // <title> text of the rendered page
  std::size_t body_bytes = 0;  // rendered content size
  std::string body_signature;  // stand-in for a screenshot perceptual hash
};

class WebServer {
 public:
  explicit WebServer(const SimulatedInternet& world) : world_{&world} {}

  /// Fetch the front page over TCP/80 (https=false) or TCP/443. Returns
  /// std::nullopt when the name does not resolve or the port is closed.
  [[nodiscard]] std::optional<HttpResponse> fetch(const dns::DomainName& domain,
                                                  bool https) const;

 private:
  const SimulatedInternet* world_;
};

/// Infer a site category from observable evidence: the delegated
/// nameserver (parking operators), then the response (redirects, for-sale
/// markers, parking templates, empty bodies, failures).
[[nodiscard]] ClassifiedSite classify_from_evidence(
    const std::string& ns_host, const std::optional<HttpResponse>& http,
    const std::optional<HttpResponse>& https);

}  // namespace sham::internet
