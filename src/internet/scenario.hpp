// Scenario generation: a seeded synthetic .com ecosystem whose composition
// mirrors the paper's measurement setting (Section 5 and 6):
//
//  * two overlapping registered-domain sources (registry zone file +
//    domainlists.io) whose union is the full population (Table 6);
//  * benign IDNs in the Table 7 language mix;
//  * planted IDN homograph attacks with controlled database provenance
//    (UC-only / SimChar-only / both) and per-domain host state matching
//    the funnels of Tables 8-14 (NS -> A -> port scan -> classification,
//    blacklist membership, passive-DNS popularity);
//  * the named case-study homographs of Table 11 (gmaıl.com etc.).
//
// Everything is deterministic in the seed; planted ground truth is
// returned so experiments can score detector output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/zone_file.hpp"
#include "homoglyph/homoglyph_db.hpp"
#include "internet/idn_corpus.hpp"
#include "internet/world.hpp"

namespace sham::internet {

struct ScenarioConfig {
  std::uint64_t seed = 2019;

  /// Size of the registered-domain population (the paper's union list has
  /// 141.2 M names; the default scales that by ~1/470).
  std::size_t total_domains = 300'000;

  /// Fraction of the population that is IDNs (paper: 0.67%). Planted
  /// attacks count toward this budget; the remainder is benign IDNs.
  double idn_fraction = 0.0067;

  /// Reference list length (paper: Alexa top-10K .com names).
  std::size_t reference_count = 1'000;

  /// Scales the planted-attack tables. 1.0 plants the paper's absolute
  /// numbers (3,280 homographs, Tables 8-14); smaller values shrink every
  /// row proportionally.
  double attack_scale = 1.0;

  /// Fractions of the union each source covers (Table 6: 140.9 M and
  /// 139.67 M of 141.2 M).
  double zone_coverage = 0.9978;
  double domainlists_coverage = 0.9891;

  /// Skip building per-domain host state (world); list-only scenarios are
  /// much cheaper for dataset-size experiments.
  bool build_world = true;
};

struct PlantedAttack {
  std::string ace;                 // registered label, e.g. "xn--ggle-55da"
  unicode::U32String unicode;      // decoded homograph label
  std::string target;              // targeted reference label
  homoglyph::Source provenance = homoglyph::Source::kSimChar;
  std::size_t substitutions = 1;
};

struct Scenario {
  ScenarioConfig config;

  /// Union population, SLD labels with ".com" appended.
  std::vector<std::string> domains;
  /// Indices into `domains` for each source list.
  std::vector<std::uint32_t> zone_index;
  std::vector<std::uint32_t> domainlists_index;

  std::vector<std::string> references;  // ranked reference labels (no TLD)
  std::vector<IdnSample> benign_idns;
  std::vector<PlantedAttack> attacks;

  SimulatedInternet world;  // empty when !config.build_world
};

/// Generate a scenario. The homoglyph database is used to choose attack
/// substitution characters with the requested provenance; it must be built
/// from the same SimChar/UC databases the detector under test will use.
[[nodiscard]] Scenario generate_scenario(const homoglyph::HomoglyphDb& db,
                                         const ScenarioConfig& config = {});

/// Render one source list of the scenario as a registry zone (master-file
/// records), with NS/A/MX records taken from the world state — the actual
/// artifact Step 1 of the pipeline consumes (Section 5.2). `which` selects
/// the source: 0 = zone-file list, 1 = domainlists list, 2 = union.
/// Requires config.build_world (for delegation data); domains without
/// world state get a generic NS delegation, as registries list every
/// registered name.
///
/// `tld` relabels the zone under another top-level domain (the scenario
/// generator itself is .com-shaped): owners and in-zone MX targets swap
/// their ".com" suffix for ".<tld>", so one scenario can fan out into the
/// multi-TLD fleet of the paper-scale run (Section 6 covers 1,000+ TLDs)
/// while SLD labels — the part Algorithm 1 compares — stay identical.
[[nodiscard]] dns::Zone scenario_to_zone(const Scenario& scenario, int which = 0,
                                         std::string_view tld = "com");

/// The Table 11 case-study homographs planted by every scenario (when the
/// needed homoglyph pairs exist in the database).
struct CaseStudySpec {
  std::string target;            // reference label
  unicode::CodePoint from = 0;   // character replaced
  unicode::CodePoint to = 0;     // replacement homoglyph
  std::size_t position = 0;      // index in the target label
  std::string category;          // Table 11 "Category" column
  std::uint64_t resolutions = 0;
  bool mx_now = false;
  bool mx_past = false;
  bool web_link = false;
  bool sns_link = false;
};

[[nodiscard]] const std::vector<CaseStudySpec>& table11_case_studies();

}  // namespace sham::internet
