// The streamable core of scenario generation. `build_scenario_core`
// materializes only what is bounded by the config (references, planted
// attacks, the attack-funnel world) and freezes per-stream seeds for
// everything whose size scales with total_domains. Each population index
// is then a pure function of (core, index):
//
//   index in [0, R)            -> reference label
//   index in [R, R+A)          -> planted-attack ACE
//   index in [R+A, R+A+B)      -> benign IDN (benign_idn_at)
//   index in [R+A+B, N)        -> ASCII filler (filler_label_at)
//
// with source-list membership (membership_at) and benign host state
// (benign_host_for) drawn from per-index forks of the frozen seeds. This
// lets generate_scenario (materializing) and ZoneTextStream (streaming)
// enumerate the identical population without sharing any O(N) state — the
// byte-identity contract tests/test_zone_gen.cpp proves.
//
// Filler labels are unique by construction: synthetic_label() and the
// reference corpus are hyphen-free, ACE labels contain "xn--", and every
// filler label is "<syllables>-<population index>" — exactly one hyphen
// followed by the decimal index — so no cross-class or intra-class
// collision is possible and no uniqueness set is needed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dns/records.hpp"
#include "homoglyph/homoglyph_db.hpp"
#include "internet/scenario.hpp"
#include "internet/world.hpp"

namespace sham::internet {

struct ScenarioCore {
  ScenarioConfig config;

  std::vector<std::string> references;
  std::vector<PlantedAttack> attacks;

  /// Host state for the bounded head: attack funnel, redirect landings,
  /// case-study overwrites, reference sites. Empty when !config.build_world.
  /// Benign-IDN host state is NOT here — it is a pure function of the ACE
  /// (benign_host_for), registered keep-first behind any attack collision.
  SimulatedInternet head_world;

  /// Benign IDN count filling the IDN budget left by the attacks.
  std::size_t benign_count = 0;

  // Frozen per-stream seeds for the index-addressed tails.
  std::uint64_t benign_seed = 0;       // benign_idn_at
  std::uint64_t filler_seed = 0;       // filler_label_at
  std::uint64_t membership_seed = 0;   // membership_at
  std::uint64_t benign_host_seed = 0;  // benign_host_for

  [[nodiscard]] std::size_t head_count() const noexcept {
    return references.size() + attacks.size() + benign_count;
  }
  /// Population size: the configured total, or the head if it overflows
  /// the total (mirrors the legacy filler loop, which only topped up).
  [[nodiscard]] std::size_t population() const noexcept {
    return head_count() > config.total_domains ? head_count()
                                               : config.total_domains;
  }
};

[[nodiscard]] ScenarioCore build_scenario_core(const homoglyph::HomoglyphDb& db,
                                               const ScenarioConfig& config);

/// Benign IDN sample `index` in [0, core.benign_count).
[[nodiscard]] IdnSample benign_idn_at(const ScenarioCore& core, std::size_t index);

/// Host state of a benign IDN registration, keyed by its ACE label so
/// duplicate benign samples (possible — the tail is not deduplicated)
/// resolve to one consistent state in both generation paths.
[[nodiscard]] HostState benign_host_for(const ScenarioCore& core,
                                        std::string_view ace);

/// ASCII filler label for population index `index` (>= head_count()).
[[nodiscard]] std::string filler_label_at(const ScenarioCore& core,
                                          std::size_t index);

struct SourceMembership {
  bool zone = false;
  bool domainlists = false;
};

/// Source-list membership of population index `index`: independent
/// coverage draws, forced into at least one list so the union equals the
/// population (Table 6).
[[nodiscard]] SourceMembership membership_at(const ScenarioCore& core,
                                             std::size_t index);

/// Append the registry records scenario_to_zone emits for one registered
/// name: `domain` is the world-keyed ".com" name, `host` its world state
/// (null = bare delegation), `tld` relabels the emitted owner and in-zone
/// MX target. Shared by the materializing and streaming zone writers.
void append_domain_records(const dns::DomainName& domain, const HostState* host,
                           std::string_view tld,
                           std::vector<dns::ResourceRecord>& out);

}  // namespace sham::internet
