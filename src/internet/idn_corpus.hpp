// Benign-IDN corpus generator: registered IDNs in the language mix the
// paper measured for .com (Table 7: Chinese 46.5%, Korean 10.6%,
// Japanese 9.3%, German 5.6%, Turkish 3.6%, long tail of others).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/langid.hpp"
#include "unicode/codepoint.hpp"
#include "util/rng.hpp"

namespace sham::internet {

struct IdnSample {
  unicode::U32String label;  // U-label code points
  std::string ace;           // "xn--..." form
  dns::Language language;    // planted ground truth
};

/// Language weights matching Table 7 (fractions of registered .com IDNs).
struct LanguageMix {
  double chinese = 0.465;
  double korean = 0.106;
  double japanese = 0.093;
  double german = 0.056;
  double turkish = 0.036;
  // Remainder split across French/Spanish/Russian/Arabic/Thai/other.
};

/// Draw one benign IDN sample from `rng`: a weighted language pick, then
/// a label in that script, retried until it IDNA-encodes. This is the
/// unit make_idn_corpus loops over, exposed so index-addressed generators
/// (internet::ScenarioCore) can produce sample i without samples 0..i-1.
[[nodiscard]] IdnSample make_idn_sample(util::Rng& rng, const LanguageMix& mix = {});

/// Generate `count` benign IDN labels with the given mix; deterministic in
/// `seed`. Labels are unique in ACE form.
[[nodiscard]] std::vector<IdnSample> make_idn_corpus(std::size_t count,
                                                     std::uint64_t seed,
                                                     const LanguageMix& mix = {});

}  // namespace sham::internet
