#include "measure/wild_experiments.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "core/shamfinder.hpp"
#include "detect/engine.hpp"
#include "dns/langid.hpp"
#include "idna/idna.hpp"
#include "unicode/utf8.hpp"

namespace sham::measure {

namespace {

std::vector<std::size_t> unique_idn_indices(const std::vector<detect::Match>& matches) {
  std::unordered_set<std::size_t> seen;
  for (const auto& m : matches) seen.insert(m.idn_index);
  std::vector<std::size_t> out{seen.begin(), seen.end()};
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

dns::DomainName WildContext::idn_domain(std::size_t idn_index) const {
  return dns::DomainName::parse_or_throw(idns[idn_index].ace + ".com");
}

WildContext make_wild_context(const Environment& env,
                              const internet::ScenarioConfig& config) {
  WildContext ctx;
  ctx.scenario = internet::generate_scenario(env.db_union, config);
  ctx.idns = core::ShamFinder::extract_idns(ctx.scenario.domains, "com");

  // One-shot engines per database flavour; kIndexed mirrors the original
  // detect_indexed measurement path (single thread, length buckets).
  const detect::EngineOptions opts{.strategy = detect::Strategy::kIndexed,
                                   .cache = false};
  const detect::DetectRequest request{.references = ctx.scenario.references,
                                      .idns = ctx.idns};
  const detect::Engine eng_uc{env.db_uc, opts};
  const detect::Engine eng_sim{env.db_sim, opts};
  const detect::Engine eng_union{env.db_union, opts};

  ctx.detected_uc = unique_idn_indices(eng_uc.detect(request).matches);
  ctx.detected_sim = unique_idn_indices(eng_sim.detect(request).matches);
  ctx.union_matches = eng_union.detect(request).matches;
  ctx.detected_union = unique_idn_indices(ctx.union_matches);
  return ctx;
}

std::vector<DatasetRow> dataset_statistics(const internet::Scenario& s) {
  const auto count_idns = [&](const std::vector<std::uint32_t>& index) {
    std::size_t n = 0;
    for (const auto i : index) {
      if (idna::is_idn(s.domains[i])) ++n;
    }
    return n;
  };
  std::size_t union_idns = 0;
  for (const auto& d : s.domains) {
    if (idna::is_idn(d)) ++union_idns;
  }
  return {
      {"zone file", s.zone_index.size(), count_idns(s.zone_index)},
      {"domainlists.io", s.domainlists_index.size(), count_idns(s.domainlists_index)},
      {"Total (union)", s.domains.size(), union_idns},
  };
}

std::vector<LanguageRow> idn_languages(const WildContext& ctx, std::size_t top_n) {
  std::map<std::string, std::size_t> counts;
  for (const auto& idn : ctx.idns) {
    counts[std::string{dns::language_name(dns::classify_language(idn.unicode))}]++;
  }
  std::vector<LanguageRow> rows;
  for (const auto& [name, count] : counts) {
    rows.push_back({name, count,
                    static_cast<double>(count) / static_cast<double>(ctx.idns.size())});
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.count > b.count; });
  if (rows.size() > top_n) rows.resize(top_n);
  return rows;
}

DetectionCounts detection_counts(const WildContext& ctx) {
  DetectionCounts c;
  c.uc = ctx.detected_uc.size();
  c.simchar = ctx.detected_sim.size();
  c.union_all = ctx.detected_union.size();
  c.planted = ctx.scenario.attacks.size();

  std::unordered_set<std::string> planted_aces;
  for (const auto& a : ctx.scenario.attacks) planted_aces.insert(a.ace);
  for (const auto idx : ctx.detected_union) {
    if (planted_aces.contains(ctx.idns[idx].ace)) {
      ++c.true_positives;
    } else {
      ++c.extra_detections;
    }
  }
  c.false_negatives = c.planted - c.true_positives;
  return c;
}

std::vector<TargetRow> top_targets(const WildContext& ctx, std::size_t top_n) {
  std::map<std::size_t, std::unordered_set<std::size_t>> per_ref;  // ref -> IDN set
  for (const auto& m : ctx.union_matches) {
    per_ref[m.reference_index].insert(m.idn_index);
  }
  std::vector<TargetRow> rows;
  for (const auto& [ref, idns] : per_ref) {
    rows.push_back({ctx.scenario.references[ref], idns.size()});
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.homographs != b.homographs ? a.homographs > b.homographs
                                        : a.reference < b.reference;
  });
  if (rows.size() > top_n) rows.resize(top_n);
  return rows;
}

PortScanFunnel port_scan_funnel(const WildContext& ctx) {
  PortScanFunnel f;
  f.detected = ctx.detected_union.size();
  const internet::PortScanner scanner{ctx.scenario.world};
  for (const auto idx : ctx.detected_union) {
    const auto domain = ctx.idn_domain(idx);
    const auto* host = ctx.scenario.world.lookup(domain);
    if (host == nullptr || !host->has_ns) continue;
    ++f.with_ns;
    if (!host->has_a) continue;
    ++f.with_a;
    const auto scan = scanner.scan(domain);
    if (scan.tcp80) ++f.open_80;
    if (scan.tcp443) ++f.open_443;
    if (scan.tcp80 && scan.tcp443) ++f.open_both;
    if (scan.any()) ++f.active;
  }
  return f;
}

std::vector<PopularIdnRow> popular_active_idns(const WildContext& ctx,
                                               std::size_t top_n) {
  const internet::PortScanner scanner{ctx.scenario.world};
  const internet::PassiveDns pdns{ctx.scenario.world};
  std::vector<PopularIdnRow> rows;
  for (const auto idx : ctx.detected_union) {
    const auto domain = ctx.idn_domain(idx);
    if (!scanner.scan(domain).any()) continue;
    const auto* host = ctx.scenario.world.lookup(domain);
    if (host == nullptr) continue;
    PopularIdnRow row;
    row.display = unicode::to_utf8(ctx.idns[idx].unicode);
    row.ace = ctx.idns[idx].ace;
    row.category = host->site_label.empty()
                       ? std::string{internet::website_kind_name(host->website)}
                       : host->site_label;
    row.resolutions = pdns.resolutions(domain);
    row.mx_now = host->has_mx;
    row.mx_past = host->had_mx;
    row.web_link = host->web_link;
    row.sns_link = host->sns_link;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.resolutions > b.resolutions; });
  if (rows.size() > top_n) rows.resize(top_n);
  return rows;
}

std::vector<ClassificationRow> classify_active(const WildContext& ctx) {
  const internet::PortScanner scanner{ctx.scenario.world};
  const internet::WebClassifier classifier{ctx.scenario.world};
  std::map<std::string, std::size_t> counts;
  std::size_t total = 0;
  for (const auto idx : ctx.detected_union) {
    const auto domain = ctx.idn_domain(idx);
    if (!scanner.scan(domain).any()) continue;
    const auto site = classifier.classify(domain);
    counts[std::string{internet::website_kind_name(site.kind)}]++;
    ++total;
  }
  std::vector<ClassificationRow> rows;
  for (const auto& [name, count] : counts) rows.push_back({name, count});
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.count > b.count; });
  rows.push_back({"Total", total});
  return rows;
}

std::vector<ClassificationRow> classify_redirects(const WildContext& ctx) {
  const internet::PortScanner scanner{ctx.scenario.world};
  const internet::WebClassifier classifier{ctx.scenario.world};
  const internet::BlacklistService blacklists{ctx.scenario.world};

  // The matched reference per detected IDN (needed to recognise defensive
  // registrations: a homograph redirecting to its own original).
  std::unordered_map<std::size_t, std::size_t> ref_of;
  for (const auto& m : ctx.union_matches) ref_of.emplace(m.idn_index, m.reference_index);

  std::map<std::string, std::size_t> counts;
  std::size_t total = 0;
  for (const auto idx : ctx.detected_union) {
    const auto domain = ctx.idn_domain(idx);
    if (!scanner.scan(domain).any()) continue;
    const auto site = classifier.classify(domain);
    if (site.kind != internet::WebsiteKind::kRedirect) continue;
    ++total;

    // Infer the redirect purpose from evidence (the paper used VirusTotal
    // plus manual screenshot inspection):
    //  * landing on the matched original => brand protection;
    //  * blacklisted landing domain      => malicious;
    //  * anything else                   => legitimate.
    std::string kind = "Legitimate website";
    const auto ref_it = ref_of.find(idx);
    if (ref_it != ref_of.end() &&
        site.redirect_target == ctx.scenario.references[ref_it->second] + ".com") {
      kind = "Brand protection";
    } else if (const auto target = dns::DomainName::parse(site.redirect_target);
               target && blacklists.feeds(*target) != 0) {
      kind = "Malicious website";
    }
    counts[kind]++;
  }
  std::vector<ClassificationRow> rows;
  for (const auto& [name, count] : counts) rows.push_back({name, count});
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.count > b.count; });
  rows.push_back({"Total", total});
  return rows;
}

std::vector<BlacklistRow> blacklist_counts(const WildContext& ctx) {
  const internet::BlacklistService blacklists{ctx.scenario.world};
  const auto count_for = [&](const std::vector<std::size_t>& detected) {
    BlacklistRow row;
    for (const auto idx : detected) {
      const auto domain = ctx.idn_domain(idx);
      if (blacklists.listed(domain, internet::BlacklistFeed::kHpHosts)) ++row.hphosts;
      if (blacklists.listed(domain, internet::BlacklistFeed::kGsb)) ++row.gsb;
      if (blacklists.listed(domain, internet::BlacklistFeed::kSymantec)) ++row.symantec;
    }
    return row;
  };
  auto uc = count_for(ctx.detected_uc);
  uc.db = "UC";
  auto sim = count_for(ctx.detected_sim);
  sim.db = "SimChar";
  auto both = count_for(ctx.detected_union);
  both.db = "UC + SimChar";
  return {uc, sim, both};
}

RevertResult revert_analysis(const Environment& env, const WildContext& ctx,
                             std::size_t alexa_cutoff) {
  RevertResult result;
  const internet::BlacklistService blacklists{ctx.scenario.world};
  std::unordered_set<std::string> popular;
  for (std::size_t i = 0; i < ctx.scenario.references.size() && i < alexa_cutoff; ++i) {
    popular.insert(ctx.scenario.references[i]);
  }
  for (const auto idx : ctx.detected_union) {
    const auto domain = ctx.idn_domain(idx);
    if (blacklists.feeds(domain) == 0) continue;
    ++result.malicious;
    const auto reverted = env.db_union.revert_to_ascii(ctx.idns[idx].unicode);
    if (!reverted) continue;
    ++result.reverted;
    std::string original;
    for (const auto cp : *reverted) original += static_cast<char>(cp);
    if (!popular.contains(original)) {
      ++result.non_popular_targets;
      if (result.examples.size() < 10) {
        result.examples.push_back(ctx.idns[idx].ace + " -> " + original);
      }
    }
  }
  return result;
}

}  // namespace sham::measure
