// Experiment drivers for the in-the-wild measurement study (Sections 5-6):
// dataset statistics (Table 6), IDN languages (Table 7), homograph
// detection per database (Table 8), top targets (Table 9), the liveness
// funnel (Table 10), passive-DNS case studies (Table 11), active-site
// classification (Tables 12-13), blacklists (Table 14), and the
// revert-to-original analysis (Section 6.4).
#pragma once

#include <string>
#include <vector>

#include "detect/detector.hpp"
#include "internet/scenario.hpp"
#include "measure/environment.hpp"

namespace sham::measure {

/// Detection context shared by Tables 8-14: extracted IDNs plus the
/// detected homograph sets under each database configuration.
struct WildContext {
  internet::Scenario scenario;
  std::vector<detect::IdnEntry> idns;      // Step 2 output
  std::vector<std::size_t> detected_uc;    // IDN indices, UC database
  std::vector<std::size_t> detected_sim;   // SimChar database
  std::vector<std::size_t> detected_union; // UC ∪ SimChar
  std::vector<detect::Match> union_matches;

  [[nodiscard]] dns::DomainName idn_domain(std::size_t idn_index) const;
};

[[nodiscard]] WildContext make_wild_context(const Environment& env,
                                            const internet::ScenarioConfig& config);

/// Table 6: per-source dataset sizes.
struct DatasetRow {
  std::string source;
  std::size_t domains = 0;
  std::size_t idns = 0;
};
[[nodiscard]] std::vector<DatasetRow> dataset_statistics(const internet::Scenario& s);

/// Table 7: top languages among registered IDNs.
struct LanguageRow {
  std::string language;
  std::size_t count = 0;
  double fraction = 0.0;
};
[[nodiscard]] std::vector<LanguageRow> idn_languages(const WildContext& ctx,
                                                     std::size_t top_n = 5);

/// Table 8: detected homographs per database configuration.
struct DetectionCounts {
  std::size_t uc = 0;
  std::size_t simchar = 0;
  std::size_t union_all = 0;
  /// Ground-truth scoring against the planted attacks:
  std::size_t planted = 0;
  std::size_t true_positives = 0;   // detected ∩ planted (union DB)
  std::size_t false_negatives = 0;
  std::size_t extra_detections = 0; // detected but not planted (benign IDN
                                    // that happens to be a homograph)
};
[[nodiscard]] DetectionCounts detection_counts(const WildContext& ctx);

/// Table 9: references with the most homographs.
struct TargetRow {
  std::string reference;
  std::size_t homographs = 0;
};
[[nodiscard]] std::vector<TargetRow> top_targets(const WildContext& ctx,
                                                 std::size_t top_n = 5);

/// Table 10: NS / A / port-scan funnel over detected homographs.
struct PortScanFunnel {
  std::size_t detected = 0;
  std::size_t with_ns = 0;
  std::size_t with_a = 0;
  std::size_t open_80 = 0;
  std::size_t open_443 = 0;
  std::size_t open_both = 0;
  std::size_t active = 0;  // unique reachable (80 or 443)
};
[[nodiscard]] PortScanFunnel port_scan_funnel(const WildContext& ctx);

/// Table 11: top active homographs by passive-DNS resolutions.
struct PopularIdnRow {
  std::string display;      // Unicode rendering
  std::string ace;
  std::string category;     // site label
  std::uint64_t resolutions = 0;
  bool mx_now = false;
  bool mx_past = false;
  bool web_link = false;
  bool sns_link = false;
};
[[nodiscard]] std::vector<PopularIdnRow> popular_active_idns(const WildContext& ctx,
                                                             std::size_t top_n = 10);

/// Table 12: classification of active homographs.
struct ClassificationRow {
  std::string category;
  std::size_t count = 0;
};
[[nodiscard]] std::vector<ClassificationRow> classify_active(const WildContext& ctx);

/// Table 13: redirect breakdown.
[[nodiscard]] std::vector<ClassificationRow> classify_redirects(const WildContext& ctx);

/// Table 14: blacklisted homographs per database configuration and feed.
struct BlacklistRow {
  std::string db;          // "UC", "SimChar", "UC ∪ SimChar"
  std::size_t hphosts = 0;
  std::size_t gsb = 0;
  std::size_t symantec = 0;
};
[[nodiscard]] std::vector<BlacklistRow> blacklist_counts(const WildContext& ctx);

/// Section 6.4: revert malicious homographs to their original domains;
/// count those whose original is NOT in the top `alexa_cutoff` references.
struct RevertResult {
  std::size_t malicious = 0;          // blacklisted homographs
  std::size_t reverted = 0;           // successfully reverted to ASCII
  std::size_t non_popular_targets = 0;
  std::vector<std::string> examples;  // "xn--... -> original"
};
[[nodiscard]] RevertResult revert_analysis(const Environment& env, const WildContext& ctx,
                                           std::size_t alexa_cutoff = 100);

}  // namespace sham::measure
