// Shared experiment environment: the paper-scale font, the SimChar build
// over it, the embedded UC database, and the three homoglyph-database
// configurations the measurement study compares (UC-only = prior work,
// SimChar-only, and the union ShamFinder uses).
#pragma once

#include <cstdint>
#include <memory>

#include "font/paper_font.hpp"
#include "homoglyph/homoglyph_db.hpp"
#include "simchar/simchar.hpp"
#include "unicode/confusables.hpp"

namespace sham::measure {

struct EnvironmentConfig {
  std::uint64_t seed = 42;
  double font_scale = 1.0;       // scales synthetic font coverage
  simchar::BuildOptions build;   // θ = 4, sparse < 10, parallel
};

struct Environment {
  EnvironmentConfig config;
  font::PaperFont paper;           // font + planted ground truth
  simchar::SimCharDb simchar;
  simchar::BuildStats build_stats;
  const unicode::ConfusablesDb* uc = nullptr;  // embedded database

  homoglyph::HomoglyphDb db_union;   // UC ∪ SimChar
  homoglyph::HomoglyphDb db_uc;      // UC only (Quinkert et al. baseline)
  homoglyph::HomoglyphDb db_sim;     // SimChar only

  static Environment create(const EnvironmentConfig& config = {});
};

}  // namespace sham::measure
