#include "measure/environment.hpp"

namespace sham::measure {

Environment Environment::create(const EnvironmentConfig& config) {
  Environment env;
  env.config = config;

  font::PaperFontConfig font_config;
  font_config.seed = config.seed;
  font_config.scale = config.font_scale;
  env.paper = font::make_paper_font(font_config);

  env.simchar = simchar::SimCharDb::build(*env.paper.font, config.build,
                                          &env.build_stats);
  env.uc = &unicode::ConfusablesDb::embedded();

  homoglyph::DbConfig both;
  env.db_union = homoglyph::HomoglyphDb{env.simchar, *env.uc, both};

  homoglyph::DbConfig uc_only;
  uc_only.use_simchar = false;
  env.db_uc = homoglyph::HomoglyphDb{env.simchar, *env.uc, uc_only};

  homoglyph::DbConfig sim_only;
  sim_only.use_uc = false;
  env.db_sim = homoglyph::HomoglyphDb{env.simchar, *env.uc, sim_only};

  return env;
}

}  // namespace sham::measure
