#include "measure/report.hpp"

#include "util/table.hpp"

namespace sham::measure {

namespace {

void heading(std::string& out, const std::string& title) {
  out += "\n## " + title + "\n\n";
}

void md_row(std::string& out, const std::vector<std::string>& cells) {
  out += "|";
  for (const auto& c : cells) {
    out += " " + c + " |";
  }
  out += "\n";
}

void md_header(std::string& out, const std::vector<std::string>& cells) {
  md_row(out, cells);
  out += "|";
  for (std::size_t i = 0; i < cells.size(); ++i) out += "---|";
  out += "\n";
}

std::string num(std::size_t v) { return util::with_commas(v); }

}  // namespace

std::string generate_report(const ReportConfig& config) {
  std::string out;
  out += "# ShamFinder reproduction report\n\n";
  out += "Deterministic run: environment seed " +
         std::to_string(config.environment.seed) + ", scenario seed " +
         std::to_string(config.scenario.seed) + ".\n";

  const auto env = Environment::create(config.environment);
  out += "\nSimChar build: " + num(env.build_stats.glyphs_rendered) + " glyphs, " +
         num(env.build_stats.pairs_compared) + " comparisons, " +
         num(env.simchar.pair_count()) + " pairs (θ = " +
         std::to_string(config.environment.build.threshold) + ").\n";

  // --- Character sets.
  heading(out, "Character sets (paper Table 1)");
  const auto sizes = charset_sizes(env);
  md_header(out, {"Set", "paper chars", "measured chars"});
  md_row(out, {"IDNA", "123,006", num(sizes.idna_chars)});
  md_row(out, {"UC", "9,605", num(sizes.uc_chars)});
  md_row(out, {"UC ∩ IDNA", "980", num(sizes.uc_idna_chars)});
  md_row(out, {"SimChar", "12,686", num(sizes.simchar_chars)});
  md_row(out, {"SimChar ∩ UC", "233", num(sizes.simchar_uc_chars)});
  md_row(out, {"union", "13,210", num(sizes.union_chars)});

  heading(out, "Latin-letter homoglyphs (paper Table 3)");
  md_header(out, {"letter", "SimChar", "UC ∩ IDNA"});
  std::size_t shown = 0;
  for (const auto& row : latin_homoglyph_counts(env)) {
    if (shown++ == 8) break;
    md_row(out, {std::string(1, row.letter), num(row.simchar_count),
                 num(row.uc_idna_count)});
  }

  heading(out, "Top Unicode blocks (paper Table 4)");
  md_header(out, {"SimChar block", "chars"});
  for (const auto& b : top_blocks_simchar(env)) md_row(out, {b.block, num(b.count)});

  // --- Perception.
  if (config.include_perception) {
    heading(out, "Confusability vs threshold (paper Figure 9)");
    const auto threshold = threshold_study(env);
    md_header(out, {"∆", "mean", "median"});
    for (int d = 0; d <= 8; ++d) {
      const auto& s = threshold.per_delta[static_cast<std::size_t>(d)];
      md_row(out, {std::to_string(d), util::fixed(s.mean, 2),
                   util::fixed(s.median, 1)});
    }
    heading(out, "Random / SimChar / UC (paper Figure 10)");
    const auto conf = confusability_study(env);
    md_header(out, {"set", "n", "mean", "median"});
    md_row(out, {"Random", num(conf.random.n), util::fixed(conf.random.mean, 2),
                 util::fixed(conf.random.median, 1)});
    md_row(out, {"SimChar", num(conf.simchar.n), util::fixed(conf.simchar.mean, 2),
                 util::fixed(conf.simchar.median, 1)});
    md_row(out, {"UC", num(conf.uc.n), util::fixed(conf.uc.mean, 2),
                 util::fixed(conf.uc.median, 1)});
  }

  // --- Wild measurement.
  const auto ctx = make_wild_context(env, config.scenario);

  heading(out, "Datasets (paper Table 6)");
  md_header(out, {"source", "domains", "IDNs"});
  for (const auto& row : dataset_statistics(ctx.scenario)) {
    md_row(out, {row.source, num(row.domains), num(row.idns)});
  }

  heading(out, "IDN languages (paper Table 7)");
  md_header(out, {"language", "count", "fraction"});
  for (const auto& row : idn_languages(ctx)) {
    md_row(out, {row.language, num(row.count), util::percent(row.fraction)});
  }

  heading(out, "Detection (paper Table 8: UC 436 / SimChar 3,110 / union 3,280)");
  const auto counts = detection_counts(ctx);
  md_header(out, {"database", "detected"});
  md_row(out, {"UC", num(counts.uc)});
  md_row(out, {"SimChar", num(counts.simchar)});
  md_row(out, {"UC ∪ SimChar", num(counts.union_all)});
  out += "\nGround truth: " + num(counts.planted) + " planted, " +
         num(counts.true_positives) + " found, " + num(counts.false_negatives) +
         " missed, " + num(counts.extra_detections) + " extra.\n";

  heading(out, "Top targets (paper Table 9)");
  md_header(out, {"reference", "homographs"});
  for (const auto& row : top_targets(ctx)) {
    md_row(out, {row.reference, num(row.homographs)});
  }

  heading(out, "Liveness funnel (paper Table 10)");
  const auto funnel = port_scan_funnel(ctx);
  md_header(out, {"stage", "count"});
  md_row(out, {"detected", num(funnel.detected)});
  md_row(out, {"with NS", num(funnel.with_ns)});
  md_row(out, {"with A", num(funnel.with_a)});
  md_row(out, {"TCP/80", num(funnel.open_80)});
  md_row(out, {"TCP/443", num(funnel.open_443)});
  md_row(out, {"reachable", num(funnel.active)});

  heading(out, "Active-site classification (paper Table 12)");
  md_header(out, {"category", "count"});
  for (const auto& row : classify_active(ctx)) {
    md_row(out, {row.category, num(row.count)});
  }

  heading(out, "Redirect purposes (paper Table 13)");
  md_header(out, {"category", "count"});
  for (const auto& row : classify_redirects(ctx)) {
    md_row(out, {row.category, num(row.count)});
  }

  heading(out, "Blacklisted homographs (paper Table 14)");
  md_header(out, {"database", "hpHosts", "GSB", "Symantec"});
  for (const auto& row : blacklist_counts(ctx)) {
    md_row(out, {row.db, num(row.hphosts), num(row.gsb), num(row.symantec)});
  }

  heading(out, "Reverting malicious IDNs (paper Section 6.4)");
  const auto revert = revert_analysis(env, ctx);
  out += num(revert.malicious) + " malicious homographs; " + num(revert.reverted) +
         " reverted to an ASCII original; " + num(revert.non_popular_targets) +
         " target domains outside the top references.\n";

  return out;
}

}  // namespace sham::measure
