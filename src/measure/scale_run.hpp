// Paper-scale streaming measurement run (Sections 5-6 at zone scale):
//
//   * stream_zone_idns — Step 1+2 as one bounded-memory pass: a registry
//     zone file is streamed through dns::ZoneStreamReader, owner names are
//     deduplicated on the fly (registry zones group a delegation's records
//     together), and the "xn--" second-level labels are decoded into
//     detect::IdnEntry batches without ever materialising the zone or the
//     domain list;
//   * detect_streaming / detect_materialized — Step 3 over those batches
//     against a fixed reference list, with the verdicts canonicalised
//     (sorted by (reference, ACE) and fingerprinted) so the streaming path
//     is provably byte-identical to the classic materialise-then-detect
//     path regardless of batch boundaries;
//   * GenerationDiffPipeline — the Section 4.2 maintenance loop as a
//     long-lived object: daily batches of new Unicode characters and new
//     registrations are folded in through simchar/HomoglyphDb incremental
//     updates and SkeletonIndex::rehash_changed, with
//     verify_against_rebuild proving the accumulated state identical to a
//     from-scratch rebuild;
//   * run_fleet — the multi-TLD measurement fleet: one detect::Engine per
//     TLD, every worker mapping the same build-db artifact
//     (Engine::from_db_file — the page cache shares the physical pages),
//     streaming its zone as steady load and reporting per-TLD throughput
//     plus process RSS. bench/scale_run persists the result as
//     BENCH_scale.json.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "detect/detector.hpp"
#include "detect/engine.hpp"
#include "detect/skeleton_index.hpp"
#include "font/font_source.hpp"
#include "homoglyph/homoglyph_db.hpp"
#include "internet/scenario.hpp"
#include "internet/zone_gen.hpp"
#include "simchar/simchar.hpp"

namespace sham::measure {

/// VmRSS from /proc/self/status in KiB (0 where unavailable) — the
/// bounded-memory evidence the scale run records.
[[nodiscard]] std::size_t resident_kib();

// --- Step 1+2 streaming ---------------------------------------------------

/// Periodic progress snapshot of a running stream (long runs are
/// observable: domains seen so far and the current resident set).
struct StreamProgress {
  std::size_t domains = 0;
  std::size_t idns = 0;
  std::size_t records = 0;
  std::size_t rss_kib = 0;  // VmRSS at the snapshot
};

struct StreamOptions {
  std::string tld = "com";
  /// IDN entries per on_batch delivery (the bounded working set).
  std::size_t batch_size = 4096;
  /// Owner names between on_progress callbacks (0 = no callbacks).
  std::size_t progress_interval = 0;
  std::function<void(const StreamProgress&)> on_progress;
};

struct ZoneStreamStats {
  std::size_t records = 0;  // resource records streamed
  std::size_t domains = 0;  // distinct owner names seen
  std::size_t idns = 0;     // decoded IDN entries delivered
  std::size_t batches = 0;  // on_batch invocations
};

/// Stream the zone file at `path`: parse records incrementally, dedup
/// consecutive owner names, decode the IDN owners of `options.tld`, and
/// deliver them in batches of at most `options.batch_size` entries. The
/// batch span is only valid during the callback. Memory is bounded by the
/// batch size, not the zone size. Throws like dns::parse_zone_file.
ZoneStreamStats stream_zone_idns(
    const std::string& path, const StreamOptions& options,
    const std::function<void(std::span<const detect::IdnEntry>)>& on_batch);

// --- Canonical verdicts ---------------------------------------------------

/// One detection verdict in batch-order-independent form: the IDN is
/// identified by its ACE label (stable across batch boundaries) instead of
/// a per-batch index.
struct Verdict {
  std::uint32_t reference_index = 0;
  std::string ace;
  std::vector<detect::DiffChar> diffs;

  friend bool operator==(const Verdict&, const Verdict&) = default;
};

struct DetectionOutcome {
  /// Sorted by (reference_index, ace), deduplicated.
  std::vector<Verdict> verdicts;
  /// FNV-1a over the sorted verdict stream — equal fingerprints mean the
  /// two paths produced byte-identical verdict sets.
  std::uint64_t fingerprint = 0;
  ZoneStreamStats stream;
};

/// Canonicalise one engine response (sort, dedup, fingerprint). `idns` is
/// the entry list `matches` indexes into.
[[nodiscard]] DetectionOutcome canonicalize_matches(
    std::span<const detect::Match> matches, std::span<const detect::IdnEntry> idns);

/// Merge per-batch outcomes into one canonical outcome.
[[nodiscard]] DetectionOutcome merge_outcomes(std::vector<DetectionOutcome> parts);

/// Stream the zone through `engine` batch by batch (bounded memory).
[[nodiscard]] DetectionOutcome detect_streaming(const detect::Engine& engine,
                                                std::span<const std::string> references,
                                                const std::string& zone_path,
                                                const StreamOptions& options,
                                                detect::Strategy strategy);

/// Classic path: materialise every IDN of the zone, one detect() call.
/// The reference baseline detect_streaming must reproduce byte-for-byte.
[[nodiscard]] DetectionOutcome detect_materialized(const detect::Engine& engine,
                                                   std::span<const std::string> references,
                                                   const std::string& zone_path,
                                                   const StreamOptions& options,
                                                   detect::Strategy strategy);

// --- Intra-zone sharding --------------------------------------------------

/// Produce side of a sharded run: invoked with a batch sink, drives the
/// whole stream through it, returns the stream totals. stream_zone_idns
/// and stream_generated_idns both curry into this shape.
using BatchProducer = std::function<ZoneStreamStats(
    const std::function<void(std::span<const detect::IdnEntry>)>&)>;

struct ShardOptions {
  /// Detection workers pulling batches off the stream. <= 1 runs inline
  /// on the producing thread (no queue, no threads).
  std::size_t shards = 1;
  /// Bounded producer->worker batch queue: the producer blocks once this
  /// many batches are in flight (backpressure keeps memory bounded by
  /// queue_batches x batch_size entries).
  std::size_t queue_batches = 16;
};

/// Run one stream through N detection shards over a shared const engine.
/// Per-shard verdicts merge through the canonical sort/dedup/fingerprint,
/// so the outcome is identical at any shard count, batch size, or
/// interleaving — the invariance tests/test_scale.cpp proves. Worker
/// exceptions abort the queue (unblocking the producer) and rethrow.
[[nodiscard]] DetectionOutcome detect_sharded(const detect::Engine& engine,
                                              std::span<const std::string> references,
                                              detect::Strategy strategy,
                                              const ShardOptions& shard,
                                              const BatchProducer& produce);

// --- Streaming zone generation (produce side) -----------------------------

/// A synthetic zone generated on the fly: scenario config + zone options
/// (which/tld/chunk size) + the bounded generator->parser chunk ring.
struct GenStream {
  internet::ScenarioConfig scenario;
  internet::ZoneGenOptions zone;
  /// Text chunks buffered between the generator thread and the parsing
  /// thread; the generator blocks when the ring is full (backpressure).
  std::size_t ring_chunks = 8;
};

/// Generate-and-extract without touching disk: a generator thread streams
/// internet::ZoneTextStream chunks through a bounded ring into
/// dns::ZoneStreamReader on the calling thread, which batches IdnEntry
/// like stream_zone_idns. IDN extraction uses gen.zone.tld (options.tld
/// is ignored). Memory is bounded by the generator head + ring + batch.
ZoneStreamStats stream_generated_idns(
    const homoglyph::HomoglyphDb& db, const GenStream& gen,
    const StreamOptions& options,
    const std::function<void(std::span<const detect::IdnEntry>)>& on_batch);

/// Full generate-and-detect pipeline: generator thread -> chunk ring ->
/// parser -> batch queue -> shard workers -> canonical merge.
[[nodiscard]] DetectionOutcome detect_generated(const detect::Engine& engine,
                                                std::span<const std::string> references,
                                                const homoglyph::HomoglyphDb& db,
                                                const GenStream& gen,
                                                const StreamOptions& options,
                                                const ShardOptions& shard,
                                                detect::Strategy strategy);

// --- Generation-diff ingestion (Section 4.2 as a daily feed) --------------

/// One day's feed: the font version covering the new characters (null =
/// keep the previous version), the Unicode additions, and the day's new
/// registrations (full domain names, "<label>.<tld>").
struct DiffBatch {
  const font::FontSource* font = nullptr;
  std::vector<unicode::CodePoint> new_characters;
  std::vector<std::string> new_registrations;
};

struct DiffPipelineConfig {
  simchar::BuildOptions build;
  homoglyph::DbConfig db;
  detect::EngineOptions engine;
  std::string tld = "com";
  std::size_t skeleton_bucket_cap = 64;
};

class GenerationDiffPipeline {
 public:
  using Config = DiffPipelineConfig;

  struct ApplyResult {
    homoglyph::HomoglyphDb::UpdateResult db_update;
    std::size_t index_entries_rehashed = 0;  // reference-index entries touched
    std::size_t new_idns = 0;                // IDN registrations extracted
  };

  /// Build the initial state from `initial_font` (day 0). References must
  /// be ASCII LDH labels; the pipeline keeps a reference-side skeleton
  /// index patched incrementally as the database grows.
  GenerationDiffPipeline(const font::FontSource& initial_font,
                         std::vector<std::string> references, Config config = {});

  // The engine holds a pointer to db_; keep the pipeline pinned.
  GenerationDiffPipeline(const GenerationDiffPipeline&) = delete;
  GenerationDiffPipeline& operator=(const GenerationDiffPipeline&) = delete;

  /// Fold in one day's feed: SimChar update (O(|added|·n), not a rebuild),
  /// HomoglyphDb::update_with_new_characters, SkeletonIndex::rehash_changed
  /// over exactly the code points whose canonical representative moved,
  /// and IDN extraction of the new registrations.
  ApplyResult apply(const DiffBatch& batch);

  /// Detect the accumulated IDN set against the references under
  /// `strategy` (the engine's own cache patches itself through the
  /// database generation counter).
  [[nodiscard]] DetectionOutcome detect(detect::Strategy strategy) const;

  [[nodiscard]] const simchar::SimCharDb& simchar() const noexcept { return simchar_; }
  [[nodiscard]] const homoglyph::HomoglyphDb& db() const noexcept { return db_; }
  [[nodiscard]] const detect::SkeletonIndex& reference_index() const noexcept {
    return ref_index_;
  }
  [[nodiscard]] std::span<const std::string> references() const noexcept {
    return references_;
  }
  [[nodiscard]] std::span<const detect::IdnEntry> idns() const noexcept {
    return idns_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const font::FontSource& current_font() const noexcept {
    return *font_;
  }

 private:
  Config config_;
  const font::FontSource* font_;
  simchar::SimCharDb simchar_;
  homoglyph::HomoglyphDb db_;
  std::vector<std::string> references_;
  detect::SkeletonIndex ref_index_;
  std::vector<detect::IdnEntry> idns_;
  std::unique_ptr<detect::Engine> engine_;
};

/// Field-by-field comparison of the pipeline's incrementally-maintained
/// state against a from-scratch rebuild over the pipeline's current font
/// (whose coverage is day 0 plus every applied addition).
struct DiffEquivalence {
  bool pairs_identical = false;      // homoglyph pair set + provenance
  bool canonical_identical = false;  // confusable-closure canonical map
  bool skeleton_identical = false;   // reference-index bucket structure
  bool verdicts_identical = false;   // detect() across all four strategies

  [[nodiscard]] bool ok() const noexcept {
    return pairs_identical && canonical_identical && skeleton_identical &&
           verdicts_identical;
  }
};

[[nodiscard]] DiffEquivalence verify_against_rebuild(const GenerationDiffPipeline& p);

// --- Multi-TLD fleet ------------------------------------------------------

struct FleetZone {
  std::string tld;
  /// Zone file on disk; empty = synthetic (the worker generates the zone
  /// on the fly from `scenario`/`which` over the engine's own database).
  std::string zone_path;
  internet::ScenarioConfig scenario;  // synthetic zones only
  int which = 2;                      // source list for synthetic zones
  std::size_t chunk_bytes = 256 * 1024;  // generator chunk size
};

struct FleetOptions {
  /// build-db artifact every worker maps (Engine::from_db_file). Its
  /// embedded reference list is the fleet's reference list.
  std::string db_file;
  std::vector<FleetZone> zones;
  std::size_t batch_size = 4096;
  detect::Strategy strategy = detect::Strategy::kSkeleton;
  /// Steady-load repetitions of each zone per worker.
  std::size_t passes = 1;
  /// Intra-zone detection shards per worker (detect_sharded).
  std::size_t shards = 1;
  std::size_t queue_batches = 16;
  /// Owner names between progress callbacks (0 = a default cadence used
  /// only for internal peak-RSS sampling).
  std::size_t progress_interval = 0;
  std::function<void(const std::string& tld, const StreamProgress&)> on_progress;
};

struct FleetZoneResult {
  std::string tld;
  ZoneStreamStats stream;            // totals over all passes
  std::size_t matches = 0;           // canonical verdict count (one pass)
  std::uint64_t verdict_fingerprint = 0;
  double setup_seconds = 0.0;        // artifact map + engine construction
  double seconds = 0.0;              // this worker's own work span
  double domains_per_second = 0.0;
  std::size_t rss_peak_kib = 0;      // max VmRSS sampled during the run
  std::string error;                 // nonempty when the worker failed
};

struct FleetReport {
  std::vector<FleetZoneResult> zones;
  std::size_t artifact_bytes = 0;
  std::size_t references = 0;
  std::size_t shards = 1;
  std::size_t rss_before_kib = 0;
  std::size_t rss_after_kib = 0;
  double seconds = 0.0;  // wall clock of the whole fleet
  std::size_t total_domains = 0;
  std::size_t total_idns = 0;
  std::size_t total_matches = 0;

  [[nodiscard]] bool ok() const noexcept;
  [[nodiscard]] std::string to_json(int indent = 0) const;
};

/// Run the fleet: one worker thread per zone, each with its own engine
/// over the shared artifact, streaming its zone `passes` times.
[[nodiscard]] FleetReport run_fleet(const FleetOptions& options);

}  // namespace sham::measure
