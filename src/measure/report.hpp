// Markdown report generation: runs every experiment against an
// environment + scenario and renders one self-contained document — the
// artifact a reproduction run hands to a reviewer.
#pragma once

#include <string>

#include "measure/charset_experiments.hpp"
#include "measure/wild_experiments.hpp"

namespace sham::measure {

struct ReportConfig {
  EnvironmentConfig environment;
  internet::ScenarioConfig scenario;
  bool include_perception = true;  // crowd-study simulations (slowest part)
};

/// Run the full experiment suite and render a markdown report with
/// paper-vs-measured tables. Deterministic in the config seeds.
[[nodiscard]] std::string generate_report(const ReportConfig& config = {});

}  // namespace sham::measure
