// Experiment drivers for the character-set and perception results:
// Tables 1-5, Figure 6 (∆ ladder), Figure 9 (threshold study), and
// Figure 10 (UC vs SimChar confusability). Each driver returns structured
// rows; the bench binaries render them next to the paper's numbers.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "measure/environment.hpp"
#include "perception/crowd_study.hpp"

namespace sham::measure {

/// Table 1 / Table 2: character-set sizes and pair counts.
struct CharsetSizes {
  std::size_t idna_chars = 0;          // PVALID repertoire (planes 0-1)
  std::size_t uc_chars = 0;            // all UC characters
  std::size_t uc_pairs = 0;
  std::size_t uc_idna_chars = 0;       // UC ∩ IDNA
  std::size_t uc_idna_pairs = 0;
  std::size_t simchar_chars = 0;
  std::size_t simchar_pairs = 0;
  std::size_t simchar_uc_chars = 0;    // SimChar ∩ UC (characters)
  std::size_t union_chars = 0;         // SimChar ∪ (UC ∩ IDNA)
  std::size_t union_pairs = 0;
  // Table 2 (font intersections):
  std::size_t font_glyphs = 0;             // glyphs the font covers
  std::size_t idna_font_chars = 0;         // IDNA ∩ font
  std::size_t uc_font_chars = 0;           // UC ∩ font
};

[[nodiscard]] CharsetSizes charset_sizes(const Environment& env);

/// Table 3: homoglyph counts of Basic Latin lowercase letters.
struct LatinHomoglyphRow {
  char letter = 0;
  std::size_t simchar_count = 0;   // SimChar homoglyphs of the letter
  std::size_t uc_idna_count = 0;   // UC ∩ IDNA homoglyphs of the letter
};

[[nodiscard]] std::vector<LatinHomoglyphRow> latin_homoglyph_counts(
    const Environment& env);

/// Table 4: top Unicode blocks by character count in each database.
struct BlockCount {
  std::string block;
  std::size_t count = 0;
};

[[nodiscard]] std::vector<BlockCount> top_blocks_simchar(const Environment& env,
                                                         std::size_t top_n = 5);
[[nodiscard]] std::vector<BlockCount> top_blocks_uc_idna(const Environment& env,
                                                         std::size_t top_n = 5);

/// Figure 6: characters at each exact ∆ from a base letter.
struct DeltaLadderRung {
  int delta = 0;
  std::size_t count = 0;                         // characters at this exact ∆
  std::vector<unicode::CodePoint> examples;      // up to a few
};

[[nodiscard]] std::vector<DeltaLadderRung> delta_ladder(const Environment& env,
                                                        char letter, int max_delta = 8,
                                                        std::size_t max_examples = 4);

/// Figure 9: confusability vs threshold. One summary per ∆ in [0, 8].
struct ThresholdStudyResult {
  std::array<perception::LikertSummary, 9> per_delta;
  perception::LikertSummary dummies;
  std::size_t workers_recruited = 0;
  std::size_t workers_kept = 0;
  std::size_t effective_responses = 0;
};

[[nodiscard]] ThresholdStudyResult threshold_study(const Environment& env,
                                                   std::uint64_t seed = 7,
                                                   std::size_t pairs_per_delta = 20,
                                                   std::size_t dummy_pairs = 30,
                                                   std::size_t workers = 12);

/// Figure 10: Random vs SimChar vs UC confusability.
struct ConfusabilityStudyResult {
  perception::LikertSummary random;
  perception::LikertSummary simchar;
  perception::LikertSummary uc;
  std::size_t workers_kept = 0;
};

[[nodiscard]] ConfusabilityStudyResult confusability_study(const Environment& env,
                                                           std::uint64_t seed = 11,
                                                           std::size_t uc_pairs = 30,
                                                           std::size_t simchar_pairs = 100,
                                                           std::size_t dummy_pairs = 30,
                                                           std::size_t workers = 31);

/// Word-context confusability (Section 7.1 names this as future work: "we
/// may also need to study the confusability of homoglyphs by using
/// words"). Stimuli are whole domain-label pairs (reference vs homograph);
/// the visual distance is the summed glyph ∆ over the label. Compares
/// single-substitution homographs of short vs long labels: the same
/// character-level ∆ is diluted in a longer word.
struct WordContextResult {
  perception::LikertSummary short_labels;  // ≤ 6 characters
  perception::LikertSummary long_labels;   // ≥ 9 characters
  std::size_t workers_kept = 0;
};

[[nodiscard]] WordContextResult word_context_study(const Environment& env,
                                                   std::uint64_t seed = 13,
                                                   std::size_t pairs_per_group = 40,
                                                   std::size_t workers = 24);

}  // namespace sham::measure
