#include "measure/scale_run.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "core/shamfinder.hpp"
#include "db/artifact.hpp"
#include "dns/zone_file.hpp"
#include "dns/zone_stream.hpp"
#include "unicode/confusables.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"

namespace sham::measure {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, sizeof v); }

[[nodiscard]] auto diff_tuple(const detect::DiffChar& d) {
  return std::tuple{d.index, d.idn_char, d.ref_char,
                    static_cast<std::uint8_t>(d.source)};
}

bool verdict_less(const Verdict& x, const Verdict& y) {
  if (x.reference_index != y.reference_index) {
    return x.reference_index < y.reference_index;
  }
  if (x.ace != y.ace) return x.ace < y.ace;
  return std::lexicographical_compare(
      x.diffs.begin(), x.diffs.end(), y.diffs.begin(), y.diffs.end(),
      [](const detect::DiffChar& a, const detect::DiffChar& b) {
        return diff_tuple(a) < diff_tuple(b);
      });
}

/// Sort, dedup, and fingerprint a verdict list — the one canonical form
/// every detection path is reduced to before comparison.
DetectionOutcome canonicalize_verdicts(std::vector<Verdict> verdicts) {
  std::sort(verdicts.begin(), verdicts.end(), verdict_less);
  verdicts.erase(std::unique(verdicts.begin(), verdicts.end()), verdicts.end());

  std::uint64_t h = kFnvOffset;
  for (const auto& v : verdicts) {
    fnv_u64(h, v.reference_index);
    fnv_u64(h, v.ace.size());
    fnv_bytes(h, v.ace.data(), v.ace.size());
    fnv_u64(h, v.diffs.size());
    for (const auto& d : v.diffs) {
      fnv_u64(h, d.index);
      fnv_u64(h, d.idn_char);
      fnv_u64(h, d.ref_char);
      fnv_u64(h, static_cast<std::uint8_t>(d.source));
    }
  }

  DetectionOutcome out;
  out.verdicts = std::move(verdicts);
  out.fingerprint = h;
  return out;
}

void append_verdicts(std::vector<Verdict>& out, std::span<const detect::Match> matches,
                     std::span<const detect::IdnEntry> idns) {
  for (const auto& m : matches) {
    Verdict v;
    v.reference_index = static_cast<std::uint32_t>(m.reference_index);
    v.ace = idns[m.idn_index].ace;
    v.diffs = m.diffs;
    out.push_back(std::move(v));
  }
}

/// Bounded MPSC/SPMC hand-off buffer: push blocks while full (the
/// backpressure that keeps producer memory bounded), pop blocks while
/// empty. close() drains remaining items to the consumers; abort() drops
/// everything and unblocks both sides (failure propagation).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_{std::max<std::size_t>(1, capacity)} {}

  /// False when the queue was aborted (a consumer failed).
  bool push(T item) {
    std::unique_lock lock{mutex_};
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || aborted_; });
    if (aborted_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// False when closed-and-drained or aborted.
  bool pop(T& out) {
    std::unique_lock lock{mutex_};
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_ || aborted_; });
    if (aborted_ || items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void close() {
    std::lock_guard lock{mutex_};
    closed_ = true;
    not_empty_.notify_all();
  }

  void abort() {
    std::lock_guard lock{mutex_};
    aborted_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  bool closed_ = false;
  bool aborted_ = false;
};

/// Owner-name -> IdnEntry batching shared by the disk and generated
/// streams: consecutive-owner dedup, bounded pending/batch buffers, and
/// the periodic progress callback.
class IdnBatcher {
 public:
  IdnBatcher(std::string tld, const StreamOptions& options,
             const std::function<void(std::span<const detect::IdnEntry>)>& on_batch)
      : tld_{std::move(tld)},
        options_{&options},
        on_batch_{&on_batch},
        cap_{std::max<std::size_t>(1, options.batch_size)} {}

  void record(const dns::ResourceRecord& r) {
    ++stats_.records;
    auto owner = r.owner.str();
    // Registry zones group a delegation's records under one owner, so a
    // consecutive-duplicate check deduplicates almost everything; stray
    // repeats are harmless (verdicts are deduplicated canonically).
    if (owner == last_owner_) return;
    last_owner_ = std::move(owner);
    ++stats_.domains;
    pending_.push_back(last_owner_);
    if (pending_.size() >= cap_) extract_pending();
    if (options_->progress_interval != 0 && options_->on_progress &&
        stats_.domains % options_->progress_interval == 0) {
      // idns includes the extracted-but-undelivered tail so the progress
      // line doesn't lag by a whole batch.
      options_->on_progress({stats_.domains, stats_.idns + batch_.size(),
                             stats_.records, resident_kib()});
    }
  }

  /// Flush; call exactly once, after the last record.
  ZoneStreamStats finish() {
    extract_pending();
    deliver();
    return stats_;
  }

 private:
  void deliver() {
    if (batch_.empty()) return;
    stats_.idns += batch_.size();
    ++stats_.batches;
    (*on_batch_)(batch_);
    batch_.clear();
  }

  void extract_pending() {
    auto idns = core::ShamFinder::extract_idns(pending_, tld_);
    pending_.clear();
    for (auto& entry : idns) {
      batch_.push_back(std::move(entry));
      if (batch_.size() >= cap_) deliver();
    }
  }

  std::string tld_;
  const StreamOptions* options_;
  const std::function<void(std::span<const detect::IdnEntry>)>* on_batch_;
  std::size_t cap_;
  ZoneStreamStats stats_;
  std::vector<std::string> pending_;  // owner names awaiting IDN extraction
  std::vector<detect::IdnEntry> batch_;
  std::string last_owner_;
};

}  // namespace

std::size_t resident_kib() {
  std::ifstream status{"/proc/self/status"};
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) return std::stoul(line.substr(6));
  }
  return 0;
}

ZoneStreamStats stream_zone_idns(
    const std::string& path, const StreamOptions& options,
    const std::function<void(std::span<const detect::IdnEntry>)>& on_batch) {
  IdnBatcher batcher{options.tld, options, on_batch};
  dns::parse_zone_file(path,
                       [&](const dns::ResourceRecord& r) { batcher.record(r); });
  return batcher.finish();
}

ZoneStreamStats stream_generated_idns(
    const homoglyph::HomoglyphDb& db, const GenStream& gen,
    const StreamOptions& options,
    const std::function<void(std::span<const detect::IdnEntry>)>& on_batch) {
  BoundedQueue<std::string> ring{gen.ring_chunks};
  std::exception_ptr generator_error;  // written before abort(), read after join

  std::thread generator{[&] {
    try {
      internet::ZoneTextStream stream{db, gen.scenario, gen.zone};
      std::string chunk;
      while (stream.next_chunk(chunk)) {
        if (!ring.push(std::move(chunk))) return;  // consumer aborted
        chunk.clear();
      }
      ring.close();
    } catch (...) {
      generator_error = std::current_exception();
      ring.abort();
    }
  }};

  ZoneStreamStats stats;
  std::exception_ptr consumer_error;
  try {
    IdnBatcher batcher{gen.zone.tld, options, on_batch};
    dns::ZoneStreamReader reader{
        [&](const dns::ResourceRecord& r) { batcher.record(r); }};
    std::string chunk;
    while (ring.pop(chunk)) reader.feed(chunk);
    reader.finish();
    stats = batcher.finish();
  } catch (...) {
    consumer_error = std::current_exception();
    ring.abort();  // unblock the generator if it is waiting on a full ring
  }
  generator.join();
  // Generator failures win: an aborted ring starves the consumer, whose
  // secondary error (truncated parse) would mask the root cause.
  if (generator_error) std::rethrow_exception(generator_error);
  if (consumer_error) std::rethrow_exception(consumer_error);
  return stats;
}

DetectionOutcome detect_sharded(const detect::Engine& engine,
                                std::span<const std::string> references,
                                detect::Strategy strategy,
                                const ShardOptions& shard,
                                const BatchProducer& produce) {
  if (shard.shards <= 1) {
    // Inline: detect on the producing thread, no queue.
    std::vector<Verdict> verdicts;
    const auto stream = produce([&](std::span<const detect::IdnEntry> batch) {
      const auto r = engine.detect(
          {.references = references, .idns = batch, .strategy = strategy});
      append_verdicts(verdicts, r.matches, batch);
    });
    auto out = canonicalize_verdicts(std::move(verdicts));
    out.stream = stream;
    return out;
  }

  BoundedQueue<std::vector<detect::IdnEntry>> queue{shard.queue_batches};
  std::vector<std::vector<Verdict>> per_shard(shard.shards);
  std::mutex error_mutex;
  std::exception_ptr worker_error;

  std::vector<std::thread> workers;
  workers.reserve(shard.shards);
  for (std::size_t k = 0; k < shard.shards; ++k) {
    workers.emplace_back([&, k] {
      std::vector<detect::IdnEntry> batch;
      try {
        while (queue.pop(batch)) {
          const auto r = engine.detect(
              {.references = references, .idns = batch, .strategy = strategy});
          append_verdicts(per_shard[k], r.matches, batch);
        }
      } catch (...) {
        {
          std::lock_guard lock{error_mutex};
          if (!worker_error) worker_error = std::current_exception();
        }
        queue.abort();  // unblocks the producer and the sibling shards
      }
    });
  }

  ZoneStreamStats stream;
  std::exception_ptr produce_error;
  try {
    stream = produce([&](std::span<const detect::IdnEntry> batch) {
      if (!queue.push(std::vector<detect::IdnEntry>{batch.begin(), batch.end()})) {
        throw std::runtime_error{"detect_sharded: shard worker failed"};
      }
    });
  } catch (...) {
    produce_error = std::current_exception();
    queue.abort();
  }
  queue.close();
  for (auto& t : workers) t.join();
  // A worker failure caused any push-side runtime_error; report the root.
  if (worker_error) std::rethrow_exception(worker_error);
  if (produce_error) std::rethrow_exception(produce_error);

  std::size_t total = 0;
  for (const auto& part : per_shard) total += part.size();
  std::vector<Verdict> verdicts;
  verdicts.reserve(total);
  for (auto& part : per_shard) {
    verdicts.insert(verdicts.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
  }
  auto out = canonicalize_verdicts(std::move(verdicts));
  out.stream = stream;
  return out;
}

DetectionOutcome detect_generated(const detect::Engine& engine,
                                  std::span<const std::string> references,
                                  const homoglyph::HomoglyphDb& db,
                                  const GenStream& gen, const StreamOptions& options,
                                  const ShardOptions& shard,
                                  detect::Strategy strategy) {
  return detect_sharded(
      engine, references, strategy, shard,
      [&](const std::function<void(std::span<const detect::IdnEntry>)>& sink) {
        return stream_generated_idns(db, gen, options, sink);
      });
}

DetectionOutcome canonicalize_matches(std::span<const detect::Match> matches,
                                      std::span<const detect::IdnEntry> idns) {
  std::vector<Verdict> verdicts;
  verdicts.reserve(matches.size());
  append_verdicts(verdicts, matches, idns);
  return canonicalize_verdicts(std::move(verdicts));
}

DetectionOutcome merge_outcomes(std::vector<DetectionOutcome> parts) {
  std::vector<Verdict> verdicts;
  ZoneStreamStats stream;
  for (auto& part : parts) {
    verdicts.insert(verdicts.end(), std::make_move_iterator(part.verdicts.begin()),
                    std::make_move_iterator(part.verdicts.end()));
    stream.records += part.stream.records;
    stream.domains += part.stream.domains;
    stream.idns += part.stream.idns;
    stream.batches += part.stream.batches;
  }
  auto out = canonicalize_verdicts(std::move(verdicts));
  out.stream = stream;
  return out;
}

DetectionOutcome detect_streaming(const detect::Engine& engine,
                                  std::span<const std::string> references,
                                  const std::string& zone_path,
                                  const StreamOptions& options,
                                  detect::Strategy strategy) {
  std::vector<Verdict> verdicts;
  const auto stream =
      stream_zone_idns(zone_path, options, [&](std::span<const detect::IdnEntry> batch) {
        const auto r = engine.detect(
            {.references = references, .idns = batch, .strategy = strategy});
        append_verdicts(verdicts, r.matches, batch);
      });
  auto out = canonicalize_verdicts(std::move(verdicts));
  out.stream = stream;
  return out;
}

DetectionOutcome detect_materialized(const detect::Engine& engine,
                                     std::span<const std::string> references,
                                     const std::string& zone_path,
                                     const StreamOptions& options,
                                     detect::Strategy strategy) {
  std::vector<detect::IdnEntry> idns;
  auto stream =
      stream_zone_idns(zone_path, options, [&](std::span<const detect::IdnEntry> batch) {
        idns.insert(idns.end(), batch.begin(), batch.end());
      });
  const auto r =
      engine.detect({.references = references, .idns = idns, .strategy = strategy});
  auto out = canonicalize_matches(r.matches, idns);
  out.stream = stream;
  return out;
}

// --- GenerationDiffPipeline -----------------------------------------------

GenerationDiffPipeline::GenerationDiffPipeline(const font::FontSource& initial_font,
                                               std::vector<std::string> references,
                                               Config config)
    : config_{std::move(config)},
      font_{&initial_font},
      simchar_{simchar::SimCharDb::build(initial_font, config_.build)},
      db_{simchar_, unicode::ConfusablesDb::embedded(), config_.db},
      references_{std::move(references)},
      ref_index_{db_, std::span<const std::string>{references_},
                 {.max_bucket_occupancy = config_.skeleton_bucket_cap}},
      engine_{std::make_unique<detect::Engine>(db_, config_.engine)} {}

GenerationDiffPipeline::ApplyResult GenerationDiffPipeline::apply(
    const DiffBatch& batch) {
  ApplyResult result;
  if (batch.font != nullptr) font_ = batch.font;
  if (!batch.new_characters.empty()) {
    simchar_ = simchar::update_with_new_characters(simchar_, *font_,
                                                   batch.new_characters, config_.build);
    result.db_update = db_.update_with_new_characters(simchar_);
    if (!result.db_update.canonical_changed.empty()) {
      result.index_entries_rehashed =
          ref_index_.rehash_changed(std::span<const std::string>{references_},
                                    result.db_update.canonical_changed);
    }
  }
  if (!batch.new_registrations.empty()) {
    auto fresh = core::ShamFinder::extract_idns(batch.new_registrations, config_.tld);
    result.new_idns = fresh.size();
    idns_.insert(idns_.end(), std::make_move_iterator(fresh.begin()),
                 std::make_move_iterator(fresh.end()));
  }
  return result;
}

DetectionOutcome GenerationDiffPipeline::detect(detect::Strategy strategy) const {
  const auto r = engine_->detect(
      {.references = references_, .idns = idns_, .strategy = strategy});
  auto out = canonicalize_matches(r.matches, idns_);
  out.stream.idns = idns_.size();
  return out;
}

DiffEquivalence verify_against_rebuild(const GenerationDiffPipeline& p) {
  DiffEquivalence eq;
  const auto& cfg = p.config();

  // From-scratch baseline over the current font: its coverage is day 0
  // plus every addition applied so far, so a full build over it is what
  // the incremental path claims to equal.
  const auto rebuilt_sim = simchar::SimCharDb::build(p.current_font(), cfg.build);
  const homoglyph::HomoglyphDb rebuilt_db{rebuilt_sim,
                                          unicode::ConfusablesDb::embedded(), cfg.db};

  const auto a = p.db().to_flat();
  const auto b = rebuilt_db.to_flat();
  eq.pairs_identical = a.pair_keys == b.pair_keys && a.pair_sources == b.pair_sources;
  eq.canonical_identical = a.canon_keys == b.canon_keys &&
                           a.canon_reps == b.canon_reps &&
                           a.canonical_classes == b.canonical_classes;

  const detect::SkeletonIndex rebuilt_index{
      rebuilt_db, p.references(), {.max_bucket_occupancy = cfg.skeleton_bucket_cap}};
  const auto fa = p.reference_index().to_flat();
  const auto fb = rebuilt_index.to_flat();
  eq.skeleton_identical =
      fa.hash_mask == fb.hash_mask && fa.entry_hashes == fb.entry_hashes &&
      fa.entry_h2 == fb.entry_h2 && fa.bucket_hashes == fb.bucket_hashes &&
      fa.bucket_offsets == fb.bucket_offsets &&
      fa.bucket_entries == fb.bucket_entries &&
      fa.bucket_child_start == fb.bucket_child_start && fa.child_h2 == fb.child_h2 &&
      fa.child_offsets == fb.child_offsets && fa.child_entries == fb.child_entries;

  const detect::Engine rebuilt_engine{rebuilt_db, cfg.engine};
  constexpr detect::Strategy kStrategies[] = {
      detect::Strategy::kSerial, detect::Strategy::kIndexed,
      detect::Strategy::kParallel, detect::Strategy::kSkeleton};
  eq.verdicts_identical = true;
  for (const auto strategy : kStrategies) {
    const auto incremental = p.detect(strategy);
    const auto r = rebuilt_engine.detect(
        {.references = p.references(), .idns = p.idns(), .strategy = strategy});
    const auto rebuilt = canonicalize_matches(r.matches, p.idns());
    eq.verdicts_identical = eq.verdicts_identical &&
                            incremental.verdicts == rebuilt.verdicts &&
                            incremental.fingerprint == rebuilt.fingerprint;
  }
  return eq;
}

// --- Fleet ----------------------------------------------------------------

bool FleetReport::ok() const noexcept {
  return std::all_of(zones.begin(), zones.end(),
                     [](const FleetZoneResult& z) { return z.error.empty(); });
}

std::string FleetReport::to_json(int indent) const {
  util::JsonWriter w{indent};
  w.begin_object();
  w.field("artifact_bytes", static_cast<std::uint64_t>(artifact_bytes));
  w.field("references", static_cast<std::uint64_t>(references));
  w.field("shards", static_cast<std::uint64_t>(shards));
  w.field("rss_before_kib", static_cast<std::uint64_t>(rss_before_kib));
  w.field("rss_after_kib", static_cast<std::uint64_t>(rss_after_kib));
  w.field("seconds", seconds);
  w.field("total_domains", static_cast<std::uint64_t>(total_domains));
  w.field("total_idns", static_cast<std::uint64_t>(total_idns));
  w.field("total_matches", static_cast<std::uint64_t>(total_matches));
  w.field("ok", ok());
  w.key("zones").begin_array();
  for (const auto& z : zones) {
    w.begin_object();
    w.field("tld", z.tld);
    w.field("records", static_cast<std::uint64_t>(z.stream.records));
    w.field("domains", static_cast<std::uint64_t>(z.stream.domains));
    w.field("idns", static_cast<std::uint64_t>(z.stream.idns));
    w.field("batches", static_cast<std::uint64_t>(z.stream.batches));
    w.field("matches", static_cast<std::uint64_t>(z.matches));
    w.field("verdict_fingerprint", z.verdict_fingerprint);
    w.field("setup_seconds", z.setup_seconds);
    w.field("seconds", z.seconds);
    w.field("domains_per_second", z.domains_per_second);
    w.field("rss_peak_kib", static_cast<std::uint64_t>(z.rss_peak_kib));
    if (!z.error.empty()) w.field("error", z.error);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

FleetReport run_fleet(const FleetOptions& options) {
  FleetReport report;
  report.rss_before_kib = resident_kib();
  {
    // Validate the artifact once up front; workers map it again (the page
    // cache backs every mapping with one set of physical pages).
    const auto probe = db::DbArtifact::load(options.db_file);
    if (probe.references().empty()) {
      throw std::invalid_argument{
          "run_fleet: artifact carries no reference list (build-db --references)"};
    }
    report.artifact_bytes = probe.file_size();
    report.references = probe.references().size();
  }

  report.shards = std::max<std::size_t>(1, options.shards);
  report.zones.resize(options.zones.size());
  const std::size_t passes = std::max<std::size_t>(1, options.passes);
  util::Stopwatch fleet_watch;
  std::vector<std::thread> workers;
  workers.reserve(options.zones.size());
  for (std::size_t i = 0; i < options.zones.size(); ++i) {
    workers.emplace_back([&options, &report, passes, i] {
      auto& out = report.zones[i];
      const auto& zone = options.zones[i];
      out.tld = zone.tld;
      try {
        util::Stopwatch setup_watch;
        const auto engine = detect::Engine::from_db_file(options.db_file);
        const auto& refs = engine.artifact()->references();
        out.setup_seconds = setup_watch.seconds();

        StreamOptions stream{.tld = zone.tld, .batch_size = options.batch_size};
        // Progress doubles as the peak-RSS sampler; keep a sampling
        // cadence even when the caller asked for no progress output.
        stream.progress_interval = options.progress_interval != 0
                                       ? options.progress_interval
                                       : std::size_t{262'144};
        stream.on_progress = [&options, &out](const StreamProgress& p) {
          out.rss_peak_kib = std::max(out.rss_peak_kib, p.rss_kib);
          if (options.on_progress) options.on_progress(out.tld, p);
        };
        const ShardOptions shard{.shards = std::max<std::size_t>(1, options.shards),
                                 .queue_batches = options.queue_batches};

        // Timed from here: the worker's own work span, not fleet launch
        // or artifact-mapping skew.
        util::Stopwatch work_watch;
        for (std::size_t pass = 0; pass < passes; ++pass) {
          DetectionOutcome outcome;
          if (zone.zone_path.empty()) {
            GenStream gen;
            gen.scenario = zone.scenario;
            gen.zone = {.which = zone.which,
                        .tld = zone.tld,
                        .chunk_bytes = zone.chunk_bytes};
            outcome = detect_generated(engine, refs, engine.db(), gen, stream,
                                       shard, options.strategy);
          } else {
            outcome = detect_sharded(
                engine, refs, options.strategy, shard,
                [&](const std::function<void(std::span<const detect::IdnEntry>)>&
                        sink) { return stream_zone_idns(zone.zone_path, stream, sink); });
          }
          out.stream.records += outcome.stream.records;
          out.stream.domains += outcome.stream.domains;
          out.stream.idns += outcome.stream.idns;
          out.stream.batches += outcome.stream.batches;
          out.matches = outcome.verdicts.size();
          out.verdict_fingerprint = outcome.fingerprint;
        }
        out.seconds = work_watch.seconds();
      } catch (const std::exception& e) {
        out.error = e.what();
      }
      out.rss_peak_kib = std::max(out.rss_peak_kib, resident_kib());
      out.domains_per_second =
          out.seconds > 0.0 ? static_cast<double>(out.stream.domains) / out.seconds
                            : 0.0;
    });
  }
  for (auto& t : workers) t.join();
  report.seconds = fleet_watch.seconds();
  report.rss_after_kib = resident_kib();
  for (const auto& z : report.zones) {
    report.total_domains += z.stream.domains;
    report.total_idns += z.stream.idns;
    report.total_matches += z.matches;
  }
  return report;
}

}  // namespace sham::measure
