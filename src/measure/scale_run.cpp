#include "measure/scale_run.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "core/shamfinder.hpp"
#include "db/artifact.hpp"
#include "dns/zone_file.hpp"
#include "unicode/confusables.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"

namespace sham::measure {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, sizeof v); }

[[nodiscard]] auto diff_tuple(const detect::DiffChar& d) {
  return std::tuple{d.index, d.idn_char, d.ref_char,
                    static_cast<std::uint8_t>(d.source)};
}

bool verdict_less(const Verdict& x, const Verdict& y) {
  if (x.reference_index != y.reference_index) {
    return x.reference_index < y.reference_index;
  }
  if (x.ace != y.ace) return x.ace < y.ace;
  return std::lexicographical_compare(
      x.diffs.begin(), x.diffs.end(), y.diffs.begin(), y.diffs.end(),
      [](const detect::DiffChar& a, const detect::DiffChar& b) {
        return diff_tuple(a) < diff_tuple(b);
      });
}

/// Sort, dedup, and fingerprint a verdict list — the one canonical form
/// every detection path is reduced to before comparison.
DetectionOutcome canonicalize_verdicts(std::vector<Verdict> verdicts) {
  std::sort(verdicts.begin(), verdicts.end(), verdict_less);
  verdicts.erase(std::unique(verdicts.begin(), verdicts.end()), verdicts.end());

  std::uint64_t h = kFnvOffset;
  for (const auto& v : verdicts) {
    fnv_u64(h, v.reference_index);
    fnv_u64(h, v.ace.size());
    fnv_bytes(h, v.ace.data(), v.ace.size());
    fnv_u64(h, v.diffs.size());
    for (const auto& d : v.diffs) {
      fnv_u64(h, d.index);
      fnv_u64(h, d.idn_char);
      fnv_u64(h, d.ref_char);
      fnv_u64(h, static_cast<std::uint8_t>(d.source));
    }
  }

  DetectionOutcome out;
  out.verdicts = std::move(verdicts);
  out.fingerprint = h;
  return out;
}

void append_verdicts(std::vector<Verdict>& out, std::span<const detect::Match> matches,
                     std::span<const detect::IdnEntry> idns) {
  for (const auto& m : matches) {
    Verdict v;
    v.reference_index = static_cast<std::uint32_t>(m.reference_index);
    v.ace = idns[m.idn_index].ace;
    v.diffs = m.diffs;
    out.push_back(std::move(v));
  }
}

}  // namespace

std::size_t resident_kib() {
  std::ifstream status{"/proc/self/status"};
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) return std::stoul(line.substr(6));
  }
  return 0;
}

ZoneStreamStats stream_zone_idns(
    const std::string& path, const StreamOptions& options,
    const std::function<void(std::span<const detect::IdnEntry>)>& on_batch) {
  const std::size_t cap = std::max<std::size_t>(1, options.batch_size);
  ZoneStreamStats stats;
  std::vector<std::string> pending;  // owner names awaiting IDN extraction
  std::vector<detect::IdnEntry> batch;
  std::string last_owner;

  const auto deliver = [&] {
    if (batch.empty()) return;
    stats.idns += batch.size();
    ++stats.batches;
    on_batch(batch);
    batch.clear();
  };
  const auto extract_pending = [&] {
    auto idns = core::ShamFinder::extract_idns(pending, options.tld);
    pending.clear();
    for (auto& entry : idns) {
      batch.push_back(std::move(entry));
      if (batch.size() >= cap) deliver();
    }
  };

  stats.records = dns::parse_zone_file(path, [&](const dns::ResourceRecord& r) {
    auto owner = r.owner.str();
    // Registry zones group a delegation's records under one owner, so a
    // consecutive-duplicate check deduplicates almost everything; stray
    // repeats are harmless (verdicts are deduplicated canonically).
    if (owner == last_owner) return;
    last_owner = std::move(owner);
    ++stats.domains;
    pending.push_back(last_owner);
    if (pending.size() >= cap) extract_pending();
  });
  extract_pending();
  deliver();
  return stats;
}

DetectionOutcome canonicalize_matches(std::span<const detect::Match> matches,
                                      std::span<const detect::IdnEntry> idns) {
  std::vector<Verdict> verdicts;
  verdicts.reserve(matches.size());
  append_verdicts(verdicts, matches, idns);
  return canonicalize_verdicts(std::move(verdicts));
}

DetectionOutcome merge_outcomes(std::vector<DetectionOutcome> parts) {
  std::vector<Verdict> verdicts;
  ZoneStreamStats stream;
  for (auto& part : parts) {
    verdicts.insert(verdicts.end(), std::make_move_iterator(part.verdicts.begin()),
                    std::make_move_iterator(part.verdicts.end()));
    stream.records += part.stream.records;
    stream.domains += part.stream.domains;
    stream.idns += part.stream.idns;
    stream.batches += part.stream.batches;
  }
  auto out = canonicalize_verdicts(std::move(verdicts));
  out.stream = stream;
  return out;
}

DetectionOutcome detect_streaming(const detect::Engine& engine,
                                  std::span<const std::string> references,
                                  const std::string& zone_path,
                                  const StreamOptions& options,
                                  detect::Strategy strategy) {
  std::vector<Verdict> verdicts;
  const auto stream =
      stream_zone_idns(zone_path, options, [&](std::span<const detect::IdnEntry> batch) {
        const auto r = engine.detect(
            {.references = references, .idns = batch, .strategy = strategy});
        append_verdicts(verdicts, r.matches, batch);
      });
  auto out = canonicalize_verdicts(std::move(verdicts));
  out.stream = stream;
  return out;
}

DetectionOutcome detect_materialized(const detect::Engine& engine,
                                     std::span<const std::string> references,
                                     const std::string& zone_path,
                                     const StreamOptions& options,
                                     detect::Strategy strategy) {
  std::vector<detect::IdnEntry> idns;
  auto stream =
      stream_zone_idns(zone_path, options, [&](std::span<const detect::IdnEntry> batch) {
        idns.insert(idns.end(), batch.begin(), batch.end());
      });
  const auto r =
      engine.detect({.references = references, .idns = idns, .strategy = strategy});
  auto out = canonicalize_matches(r.matches, idns);
  out.stream = stream;
  return out;
}

// --- GenerationDiffPipeline -----------------------------------------------

GenerationDiffPipeline::GenerationDiffPipeline(const font::FontSource& initial_font,
                                               std::vector<std::string> references,
                                               Config config)
    : config_{std::move(config)},
      font_{&initial_font},
      simchar_{simchar::SimCharDb::build(initial_font, config_.build)},
      db_{simchar_, unicode::ConfusablesDb::embedded(), config_.db},
      references_{std::move(references)},
      ref_index_{db_, std::span<const std::string>{references_},
                 {.max_bucket_occupancy = config_.skeleton_bucket_cap}},
      engine_{std::make_unique<detect::Engine>(db_, config_.engine)} {}

GenerationDiffPipeline::ApplyResult GenerationDiffPipeline::apply(
    const DiffBatch& batch) {
  ApplyResult result;
  if (batch.font != nullptr) font_ = batch.font;
  if (!batch.new_characters.empty()) {
    simchar_ = simchar::update_with_new_characters(simchar_, *font_,
                                                   batch.new_characters, config_.build);
    result.db_update = db_.update_with_new_characters(simchar_);
    if (!result.db_update.canonical_changed.empty()) {
      result.index_entries_rehashed =
          ref_index_.rehash_changed(std::span<const std::string>{references_},
                                    result.db_update.canonical_changed);
    }
  }
  if (!batch.new_registrations.empty()) {
    auto fresh = core::ShamFinder::extract_idns(batch.new_registrations, config_.tld);
    result.new_idns = fresh.size();
    idns_.insert(idns_.end(), std::make_move_iterator(fresh.begin()),
                 std::make_move_iterator(fresh.end()));
  }
  return result;
}

DetectionOutcome GenerationDiffPipeline::detect(detect::Strategy strategy) const {
  const auto r = engine_->detect(
      {.references = references_, .idns = idns_, .strategy = strategy});
  auto out = canonicalize_matches(r.matches, idns_);
  out.stream.idns = idns_.size();
  return out;
}

DiffEquivalence verify_against_rebuild(const GenerationDiffPipeline& p) {
  DiffEquivalence eq;
  const auto& cfg = p.config();

  // From-scratch baseline over the current font: its coverage is day 0
  // plus every addition applied so far, so a full build over it is what
  // the incremental path claims to equal.
  const auto rebuilt_sim = simchar::SimCharDb::build(p.current_font(), cfg.build);
  const homoglyph::HomoglyphDb rebuilt_db{rebuilt_sim,
                                          unicode::ConfusablesDb::embedded(), cfg.db};

  const auto a = p.db().to_flat();
  const auto b = rebuilt_db.to_flat();
  eq.pairs_identical = a.pair_keys == b.pair_keys && a.pair_sources == b.pair_sources;
  eq.canonical_identical = a.canon_keys == b.canon_keys &&
                           a.canon_reps == b.canon_reps &&
                           a.canonical_classes == b.canonical_classes;

  const detect::SkeletonIndex rebuilt_index{
      rebuilt_db, p.references(), {.max_bucket_occupancy = cfg.skeleton_bucket_cap}};
  const auto fa = p.reference_index().to_flat();
  const auto fb = rebuilt_index.to_flat();
  eq.skeleton_identical =
      fa.hash_mask == fb.hash_mask && fa.entry_hashes == fb.entry_hashes &&
      fa.entry_h2 == fb.entry_h2 && fa.bucket_hashes == fb.bucket_hashes &&
      fa.bucket_offsets == fb.bucket_offsets &&
      fa.bucket_entries == fb.bucket_entries &&
      fa.bucket_child_start == fb.bucket_child_start && fa.child_h2 == fb.child_h2 &&
      fa.child_offsets == fb.child_offsets && fa.child_entries == fb.child_entries;

  const detect::Engine rebuilt_engine{rebuilt_db, cfg.engine};
  constexpr detect::Strategy kStrategies[] = {
      detect::Strategy::kSerial, detect::Strategy::kIndexed,
      detect::Strategy::kParallel, detect::Strategy::kSkeleton};
  eq.verdicts_identical = true;
  for (const auto strategy : kStrategies) {
    const auto incremental = p.detect(strategy);
    const auto r = rebuilt_engine.detect(
        {.references = p.references(), .idns = p.idns(), .strategy = strategy});
    const auto rebuilt = canonicalize_matches(r.matches, p.idns());
    eq.verdicts_identical = eq.verdicts_identical &&
                            incremental.verdicts == rebuilt.verdicts &&
                            incremental.fingerprint == rebuilt.fingerprint;
  }
  return eq;
}

// --- Fleet ----------------------------------------------------------------

bool FleetReport::ok() const noexcept {
  return std::all_of(zones.begin(), zones.end(),
                     [](const FleetZoneResult& z) { return z.error.empty(); });
}

std::string FleetReport::to_json(int indent) const {
  util::JsonWriter w{indent};
  w.begin_object();
  w.field("bench", "scale_run");
  w.field("artifact_bytes", static_cast<std::uint64_t>(artifact_bytes));
  w.field("references", static_cast<std::uint64_t>(references));
  w.field("rss_before_kib", static_cast<std::uint64_t>(rss_before_kib));
  w.field("rss_after_kib", static_cast<std::uint64_t>(rss_after_kib));
  w.field("seconds", seconds);
  w.field("total_domains", static_cast<std::uint64_t>(total_domains));
  w.field("total_idns", static_cast<std::uint64_t>(total_idns));
  w.field("total_matches", static_cast<std::uint64_t>(total_matches));
  w.field("ok", ok());
  w.key("zones").begin_array();
  for (const auto& z : zones) {
    w.begin_object();
    w.field("tld", z.tld);
    w.field("records", static_cast<std::uint64_t>(z.stream.records));
    w.field("domains", static_cast<std::uint64_t>(z.stream.domains));
    w.field("idns", static_cast<std::uint64_t>(z.stream.idns));
    w.field("batches", static_cast<std::uint64_t>(z.stream.batches));
    w.field("matches", static_cast<std::uint64_t>(z.matches));
    w.field("verdict_fingerprint", z.verdict_fingerprint);
    w.field("seconds", z.seconds);
    w.field("domains_per_second", z.domains_per_second);
    if (!z.error.empty()) w.field("error", z.error);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

FleetReport run_fleet(const FleetOptions& options) {
  FleetReport report;
  report.rss_before_kib = resident_kib();
  {
    // Validate the artifact once up front; workers map it again (the page
    // cache backs every mapping with one set of physical pages).
    const auto probe = db::DbArtifact::load(options.db_file);
    if (probe.references().empty()) {
      throw std::invalid_argument{
          "run_fleet: artifact carries no reference list (build-db --references)"};
    }
    report.artifact_bytes = probe.file_size();
    report.references = probe.references().size();
  }

  report.zones.resize(options.zones.size());
  const std::size_t passes = std::max<std::size_t>(1, options.passes);
  util::Stopwatch fleet_watch;
  std::vector<std::thread> workers;
  workers.reserve(options.zones.size());
  for (std::size_t i = 0; i < options.zones.size(); ++i) {
    workers.emplace_back([&options, &report, passes, i] {
      auto& out = report.zones[i];
      out.tld = options.zones[i].tld;
      util::Stopwatch watch;
      try {
        const auto engine = detect::Engine::from_db_file(options.db_file);
        const auto& refs = engine.artifact()->references();
        const StreamOptions stream{.tld = options.zones[i].tld,
                                   .batch_size = options.batch_size};
        for (std::size_t pass = 0; pass < passes; ++pass) {
          auto outcome = detect_streaming(engine, refs, options.zones[i].zone_path,
                                          stream, options.strategy);
          out.stream.records += outcome.stream.records;
          out.stream.domains += outcome.stream.domains;
          out.stream.idns += outcome.stream.idns;
          out.stream.batches += outcome.stream.batches;
          out.matches = outcome.verdicts.size();
          out.verdict_fingerprint = outcome.fingerprint;
        }
      } catch (const std::exception& e) {
        out.error = e.what();
      }
      out.seconds = watch.seconds();
      out.domains_per_second =
          out.seconds > 0.0 ? static_cast<double>(out.stream.domains) / out.seconds
                            : 0.0;
    });
  }
  for (auto& t : workers) t.join();
  report.seconds = fleet_watch.seconds();
  report.rss_after_kib = resident_kib();
  for (const auto& z : report.zones) {
    report.total_domains += z.stream.domains;
    report.total_idns += z.stream.idns;
    report.total_matches += z.matches;
  }
  return report;
}

}  // namespace sham::measure
