#include "measure/charset_experiments.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_set>

#include "font/metrics.hpp"
#include "unicode/blocks.hpp"
#include "unicode/idna_properties.hpp"

namespace sham::measure {

namespace {

using unicode::CodePoint;

std::vector<std::pair<CodePoint, CodePoint>> uc_idna_pairs(const Environment& env) {
  std::vector<std::pair<CodePoint, CodePoint>> out;
  for (const auto& [a, b] : env.uc->single_char_pairs()) {
    if (unicode::is_idna_permitted(a) && unicode::is_idna_permitted(b)) {
      out.emplace_back(a, b);
    }
  }
  return out;
}

}  // namespace

CharsetSizes charset_sizes(const Environment& env) {
  CharsetSizes s;
  s.idna_chars = unicode::idna_permitted_count();

  const auto uc_chars = env.uc->all_characters();
  s.uc_chars = uc_chars.size();
  s.uc_pairs = env.uc->single_char_pairs().size();

  std::unordered_set<CodePoint> uc_idna_set;
  for (const auto cp : uc_chars) {
    if (unicode::is_idna_permitted(cp)) uc_idna_set.insert(cp);
  }
  s.uc_idna_chars = uc_idna_set.size();
  s.uc_idna_pairs = uc_idna_pairs(env).size();

  const auto sim_chars = env.simchar.characters();
  s.simchar_chars = sim_chars.size();
  s.simchar_pairs = env.simchar.pair_count();

  std::size_t overlap = 0;
  std::unordered_set<CodePoint> uc_all{uc_chars.begin(), uc_chars.end()};
  for (const auto cp : sim_chars) {
    if (uc_all.contains(cp)) ++overlap;
  }
  s.simchar_uc_chars = overlap;

  std::unordered_set<CodePoint> union_chars{sim_chars.begin(), sim_chars.end()};
  union_chars.insert(uc_idna_set.begin(), uc_idna_set.end());
  s.union_chars = union_chars.size();
  s.union_pairs = env.db_union.pair_count();

  // Table 2: font intersections.
  const auto coverage = env.paper.font->coverage();
  s.font_glyphs = coverage.size();
  std::unordered_set<CodePoint> covered{coverage.begin(), coverage.end()};
  for (const auto cp : coverage) {
    if (unicode::is_idna_permitted(cp)) ++s.idna_font_chars;
  }
  for (const auto cp : uc_chars) {
    if (covered.contains(cp)) ++s.uc_font_chars;
  }
  return s;
}

std::vector<LatinHomoglyphRow> latin_homoglyph_counts(const Environment& env) {
  std::vector<LatinHomoglyphRow> rows;
  rows.reserve(26);
  const auto pairs = uc_idna_pairs(env);
  for (char letter = 'a'; letter <= 'z'; ++letter) {
    LatinHomoglyphRow row;
    row.letter = letter;
    row.simchar_count = env.simchar.homoglyphs_of(static_cast<CodePoint>(letter)).size();
    for (const auto& [a, b] : pairs) {
      if (b == static_cast<CodePoint>(letter) || a == static_cast<CodePoint>(letter)) {
        ++row.uc_idna_count;
      }
    }
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
    return x.simchar_count > y.simchar_count;
  });
  return rows;
}

namespace {

std::vector<BlockCount> top_blocks(const std::vector<CodePoint>& chars,
                                   std::size_t top_n) {
  std::map<std::string, std::size_t> counts;
  for (const auto cp : chars) {
    counts[std::string{unicode::block_name(cp)}]++;
  }
  std::vector<BlockCount> out;
  out.reserve(counts.size());
  for (auto& [name, count] : counts) out.push_back({name, count});
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    return x.count != y.count ? x.count > y.count : x.block < y.block;
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

}  // namespace

std::vector<BlockCount> top_blocks_simchar(const Environment& env, std::size_t top_n) {
  return top_blocks(env.simchar.characters(), top_n);
}

std::vector<BlockCount> top_blocks_uc_idna(const Environment& env, std::size_t top_n) {
  // Character-level intersection (the paper's Table 4 counts UC characters
  // that are IDNA-permitted; their confusable partner may itself lie
  // outside IDNA, e.g. a Kangxi radical whose ideograph prototype is the
  // permitted one).
  std::vector<CodePoint> chars;
  for (const auto cp : env.uc->all_characters()) {
    if (unicode::is_idna_permitted(cp)) chars.push_back(cp);
  }
  return top_blocks(chars, top_n);
}

std::vector<DeltaLadderRung> delta_ladder(const Environment& env, char letter,
                                          int max_delta, std::size_t max_examples) {
  const auto& font = *env.paper.font;
  const auto base = font.glyph(static_cast<CodePoint>(letter));
  if (!base) throw std::invalid_argument{"delta_ladder: font lacks the base letter"};

  std::vector<DeltaLadderRung> rungs(static_cast<std::size_t>(max_delta) + 1);
  for (int d = 0; d <= max_delta; ++d) rungs[static_cast<std::size_t>(d)].delta = d;

  for (const auto cp : font.coverage()) {
    if (cp == static_cast<CodePoint>(letter)) continue;
    if (!unicode::is_idna_permitted(cp)) continue;
    const auto g = font.glyph(cp);
    if (!g) continue;
    const int d = font::delta_bounded(*base, *g, max_delta);
    if (d > max_delta) continue;
    auto& rung = rungs[static_cast<std::size_t>(d)];
    ++rung.count;
    if (rung.examples.size() < max_examples) rung.examples.push_back(cp);
  }
  return rungs;
}

namespace {

/// Gather (letter, other) pairs whose glyph distance is exactly `delta`.
std::vector<perception::Stimulus> pairs_at_delta(const Environment& env, int delta,
                                                 std::size_t limit,
                                                 const std::string& tag) {
  std::vector<perception::Stimulus> out;
  const auto& font = *env.paper.font;
  for (char letter = 'a'; letter <= 'z' && out.size() < limit; ++letter) {
    const auto base = font.glyph(static_cast<CodePoint>(letter));
    if (!base) continue;
    // Planted clusters record the candidates; verify ∆ against the font.
    for (const auto& cluster : env.paper.clusters) {
      if (cluster.base != static_cast<CodePoint>(letter)) continue;
      for (const auto& member : cluster.members) {
        if (out.size() >= limit) break;
        const auto g = font.glyph(member.cp);
        if (!g) continue;
        const int d = font::delta(*base, *g);
        if (d != delta) continue;
        out.push_back({static_cast<CodePoint>(letter), member.cp,
                       static_cast<double>(d), false, tag});
      }
    }
  }
  return out;
}

std::vector<perception::Stimulus> dummy_stimuli(const Environment& env,
                                                std::size_t count, std::uint64_t seed) {
  // Two random covered characters; by construction of the synthetic font
  // their distance is large (hundreds of pixels).
  util::Rng rng{seed};
  const auto coverage = env.paper.font->coverage();
  std::vector<perception::Stimulus> out;
  std::size_t guard = 0;
  while (out.size() < count && guard++ < count * 100 + 100) {
    const auto a = coverage[rng.below(coverage.size())];
    const auto b = coverage[rng.below(coverage.size())];
    if (a == b) continue;
    const auto ga = env.paper.font->glyph(a);
    const auto gb = env.paper.font->glyph(b);
    if (!ga || !gb) continue;
    const int d = font::delta(*ga, *gb);
    if (d < 60) continue;  // must be clearly distinct
    out.push_back({a, b, static_cast<double>(d), true, "dummy"});
  }
  return out;
}

}  // namespace

ThresholdStudyResult threshold_study(const Environment& env, std::uint64_t seed,
                                     std::size_t pairs_per_delta,
                                     std::size_t dummy_pairs, std::size_t workers) {
  std::vector<perception::Stimulus> stimuli;
  for (int d = 0; d <= 8; ++d) {
    const auto tag = "delta=" + std::to_string(d);
    auto pairs = pairs_at_delta(env, d, pairs_per_delta, tag);
    stimuli.insert(stimuli.end(), pairs.begin(), pairs.end());
  }
  const auto dummies = dummy_stimuli(env, dummy_pairs, seed ^ 0xD00D);
  stimuli.insert(stimuli.end(), dummies.begin(), dummies.end());

  perception::StudyConfig config;
  config.seed = seed;
  config.workers = workers;
  const auto outcome = perception::run_study(stimuli, config);

  ThresholdStudyResult result;
  result.workers_recruited = outcome.workers_recruited;
  result.workers_kept = outcome.workers_kept;
  for (int d = 0; d <= 8; ++d) {
    const auto scores =
        outcome.scores_for_tag(stimuli, "delta=" + std::to_string(d));
    result.effective_responses += scores.size();
    result.per_delta[static_cast<std::size_t>(d)] =
        perception::summarize_scores(scores);
  }
  result.dummies = perception::summarize_scores(outcome.scores_for_tag(stimuli, "dummy"));
  return result;
}

WordContextResult word_context_study(const Environment& env, std::uint64_t seed,
                                     std::size_t pairs_per_group, std::size_t workers) {
  // Build label stimuli: pick reference words of the two length classes
  // and substitute one character with a SimChar homoglyph; the stimulus
  // distance is the per-character ∆ scaled down by label length (a proxy
  // for how diluted the difference is across the whole word image).
  util::Rng rng{seed};
  static const std::vector<std::string> kShort{"go", "ebay", "zoom", "uber",
                                               "bing", "apple", "yahoo", "gmail"};
  static const std::vector<std::string> kLong{
      "myetherwallet", "stackoverflow", "bankofamerica", "institutional",
      "encyclopedia", "international"};

  std::vector<perception::Stimulus> stimuli;
  const auto add_group = [&](const std::vector<std::string>& words,
                             const std::string& tag) {
    std::size_t added = 0;
    std::size_t guard = 0;
    while (added < pairs_per_group && guard++ < pairs_per_group * 50) {
      const auto& word = words[rng.below(words.size())];
      const std::size_t pos = rng.below(word.size());
      const auto base = static_cast<unicode::CodePoint>(word[pos]);
      const auto homoglyphs = env.simchar.homoglyphs_of(base);
      if (homoglyphs.empty()) continue;
      const auto sub = homoglyphs[rng.below(homoglyphs.size())];
      const auto d = env.simchar.delta_of(base, sub);
      if (!d) continue;
      perception::Stimulus s;
      s.a = base;
      s.b = sub;
      // Context dilution: perceived distance shrinks with word length
      // (one changed letter in a 13-char word is harder to spot).
      s.visual_delta = static_cast<double>(*d) * 6.0 / static_cast<double>(word.size());
      s.tag = tag;
      stimuli.push_back(s);
      ++added;
    }
  };
  add_group(kShort, "short");
  add_group(kLong, "long");

  perception::StudyConfig config;
  config.seed = seed;
  config.workers = workers;
  const auto outcome = perception::run_study(stimuli, config);

  WordContextResult result;
  result.workers_kept = outcome.workers_kept;
  result.short_labels = perception::summarize_scores(outcome.scores_for_tag(stimuli, "short"));
  result.long_labels = perception::summarize_scores(outcome.scores_for_tag(stimuli, "long"));
  return result;
}

ConfusabilityStudyResult confusability_study(const Environment& env, std::uint64_t seed,
                                             std::size_t uc_pairs,
                                             std::size_t simchar_pairs,
                                             std::size_t dummy_pairs,
                                             std::size_t workers) {
  std::vector<perception::Stimulus> stimuli;
  const auto& font = *env.paper.font;

  // UC sample: homoglyphs of Basic Latin lowercase letters listed in
  // UC ∩ IDNA, with their true visual distance in this font.
  for (const auto& [a, b] : env.uc->single_char_pairs()) {
    if (stimuli.size() >= uc_pairs) break;
    if (b < 'a' || b > 'z') continue;
    if (!unicode::is_idna_permitted(a)) continue;
    const auto ga = font.glyph(a);
    const auto gb = font.glyph(b);
    if (!ga || !gb) continue;
    stimuli.push_back({a, b, static_cast<double>(font::delta(*ga, *gb)), false, "UC"});
  }

  // SimChar sample: pairs detected with ∆ ≤ 4 involving a Latin letter.
  std::size_t sim_count = 0;
  for (const auto& pair : env.simchar.pairs()) {
    if (sim_count >= simchar_pairs) break;
    const bool latin = (pair.a >= 'a' && pair.a <= 'z') || (pair.b >= 'a' && pair.b <= 'z');
    if (!latin) continue;
    stimuli.push_back({pair.a, pair.b, static_cast<double>(pair.delta), false, "SimChar"});
    ++sim_count;
  }

  const auto dummies = dummy_stimuli(env, dummy_pairs, seed ^ 0xDD);
  stimuli.insert(stimuli.end(), dummies.begin(), dummies.end());

  perception::StudyConfig config;
  config.seed = seed;
  config.workers = workers;
  const auto outcome = perception::run_study(stimuli, config);

  ConfusabilityStudyResult result;
  result.workers_kept = outcome.workers_kept;
  result.random = perception::summarize_scores(outcome.scores_for_tag(stimuli, "dummy"));
  result.simchar = perception::summarize_scores(outcome.scores_for_tag(stimuli, "SimChar"));
  result.uc = perception::summarize_scores(outcome.scores_for_tag(stimuli, "UC"));
  return result;
}

}  // namespace sham::measure
