// Skeleton-hash candidate index (Strategy::kSkeleton).
//
// UTS#39-style skeletonization turns Algorithm 1's pairwise scan into a
// hash join: every code point is replaced by its confusable-closure
// representative (HomoglyphDb::canonical), the canonicalized label is
// hashed (FNV-1a over representatives, length-prefixed), and IDNs are
// bucketed by that hash. A reference then costs one skeleton computation
// plus one bucket probe instead of a scan over every same-length IDN.
//
// Soundness: if a reference matches an IDN under Algorithm 1, every
// position is either equal or a listed pair, and both imply equal
// canonical representatives — so the two skeleton hashes are equal and
// the bucket probe can never miss a true match. The converse fails: the
// homoglyph relation is not transitive, so the closure over-approximates
// (a~b and b~c put a and c in one component even when {a, c} is not a
// pair), and distinct skeletons can collide in the hash. Every bucket hit
// is therefore a *candidate* that must be re-verified with the exact
// per-character check before it becomes a match.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "detect/detector.hpp"
#include "homoglyph/homoglyph_db.hpp"
#include "unicode/codepoint.hpp"

namespace sham::detect {

struct SkeletonIndexOptions {
  /// Keep only the low `hash_bits` bits of each skeleton hash. The default
  /// keeps all 64; tests shrink it to force bucket collisions and exercise
  /// the verification path deterministically.
  unsigned hash_bits = 64;
};

class SkeletonIndex {
 public:
  /// The database and the IDN list must outlive the index.
  SkeletonIndex(const homoglyph::HomoglyphDb& db, std::span<const IdnEntry> idns,
                SkeletonIndexOptions options = {});

  /// Skeleton hash of a reference label (ASCII or Unicode).
  [[nodiscard]] std::uint64_t hash_of(std::string_view reference) const;
  [[nodiscard]] std::uint64_t hash_of(const unicode::U32String& reference) const;

  /// IDN indices bucketed under `hash`, ascending; nullptr when empty.
  /// The bucket over-approximates (closure + collisions): exact-verify
  /// every entry.
  [[nodiscard]] const std::vector<std::size_t>* probe(std::uint64_t hash) const {
    const auto it = buckets_.find(hash);
    return it == buckets_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }

  /// Bucket-occupancy histogram: slot i counts buckets holding exactly
  /// i+1 IDNs; the final slot aggregates buckets of size >= max_slots.
  [[nodiscard]] std::vector<std::uint64_t> occupancy_histogram(
      std::size_t max_slots = 8) const;

 private:
  template <typename String>
  [[nodiscard]] std::uint64_t hash_impl(const String& label) const;

  const homoglyph::HomoglyphDb* db_;
  std::uint64_t hash_mask_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets_;
};

}  // namespace sham::detect
