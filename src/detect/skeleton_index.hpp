// Skeleton-hash candidate index (Strategy::kSkeleton).
//
// UTS#39-style skeletonization turns Algorithm 1's pairwise scan into a
// hash join: every code point is replaced by its confusable-closure
// representative (HomoglyphDb::canonical), the canonicalized label is
// hashed (FNV-1a over representatives, length-prefixed), and labels are
// bucketed by that hash. A probe then costs one skeleton computation
// plus one bucket lookup instead of a scan over every same-length label.
//
// The index can be built over either side of the join: IDN entries (the
// classic forward join — references probe IDN buckets) or reference
// labels (the inverted join for the many-references case — IDNs probe
// reference buckets). Engine picks the cheaper side.
//
// Soundness: if a reference matches an IDN under Algorithm 1, every
// position is either equal or a listed pair, and both imply equal
// canonical representatives — so the two skeleton hashes are equal and
// the bucket probe can never miss a true match. The converse fails: the
// homoglyph relation is not transitive, so the closure over-approximates
// (a~b and b~c put a and c in one component even when {a, c} is not a
// pair), and distinct skeletons can collide in the hash. Every bucket hit
// is therefore a *candidate* that must be re-verified with the exact
// per-character check before it becomes a match.
//
// Incremental maintenance: the index records each entry's hash and an
// inverted posting list from raw code point to the entries whose label
// contains it. When the database reports which code points changed their
// canonical representative (HomoglyphDb::canonical_changes_since), only
// the entries whose labels contain an affected code point are rehashed —
// an entry's hash depends on canonical(c) for exactly its raw code
// points, so rehashing that set reproduces a full rebuild. Removal can
// leave empty buckets behind (probe treats them as misses).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "db/format.hpp"
#include "detect/detector.hpp"
#include "homoglyph/homoglyph_db.hpp"
#include "unicode/codepoint.hpp"

namespace sham::detect {

struct SkeletonIndexOptions {
  /// Keep only the low `hash_bits` bits of each skeleton hash. The default
  /// keeps all 64; tests shrink it to force bucket collisions and exercise
  /// the verification path deterministically.
  unsigned hash_bits = 64;
  /// Split any bucket holding more than this many entries into child
  /// buckets keyed by a secondary, full-width hash (0 = never split).
  /// Bounds per-probe verification cost when many labels share one
  /// skeleton (or when hash_bits truncation piles distinct skeletons into
  /// one bucket). Exact: a true match has equal canonical streams, hence
  /// equal secondary hashes, so it always lands in the probed child.
  std::size_t max_bucket_occupancy = 0;
};

/// Primary (bucket) and secondary (child-bucket) skeleton hashes of one
/// label. Both are functions of the canonical code-point stream only.
struct SkeletonHashes {
  std::uint64_t primary = 0;
  std::uint64_t secondary = 0;
};

class SkeletonIndex {
 public:
  /// Build over IDN labels (forward join). The database must outlive the
  /// index; the label list only needs to be live during construction and
  /// rehash_changed() calls (and must be the same list each time).
  SkeletonIndex(const homoglyph::HomoglyphDb& db, std::span<const IdnEntry> idns,
                SkeletonIndexOptions options = {});
  /// Build over ASCII reference labels (inverted join). Callers must have
  /// rejected non-ASCII bytes already: bytes are hashed as code points.
  SkeletonIndex(const homoglyph::HomoglyphDb& db, std::span<const std::string> labels,
                SkeletonIndexOptions options = {});
  /// Build over Unicode reference labels (inverted join).
  SkeletonIndex(const homoglyph::HomoglyphDb& db,
                std::span<const unicode::U32String> labels,
                SkeletonIndexOptions options = {});

  /// Skeleton hash of a probe label (ASCII or Unicode).
  [[nodiscard]] std::uint64_t hash_of(std::string_view reference) const;
  [[nodiscard]] std::uint64_t hash_of(const unicode::U32String& reference) const;

  /// Primary + secondary skeleton hashes of a probe label, for the
  /// split-aware probe below.
  [[nodiscard]] SkeletonHashes hashes_of(std::string_view reference) const;
  [[nodiscard]] SkeletonHashes hashes_of(const unicode::U32String& reference) const;

  /// Entry indices bucketed under `hash`, ascending; empty span on a miss.
  /// For a split bucket this is the full union of its children (legacy
  /// probe — never misses, just unbounded). The bucket over-approximates
  /// (closure + collisions): exact-verify every entry. Returned by value
  /// so the owned and memory-mapped (view) storage modes share one shape.
  [[nodiscard]] std::span<const std::uint32_t> probe(std::uint64_t hash) const {
    if (view_) {
      const auto b = view_bucket(hash);
      if (b == kNoBucket) return {};
      return flat_.bucket_entries.subspan(
          flat_.bucket_offsets[b], flat_.bucket_offsets[b + 1] - flat_.bucket_offsets[b]);
    }
    const auto it = buckets_.find(hash);
    return it == buckets_.end() ? std::span<const std::uint32_t>{}
                                : std::span<const std::uint32_t>{it->second.entries};
  }

  /// Split-aware probe: on a split bucket only the child keyed by the
  /// secondary hash is returned, so occupancy stays under the cap even
  /// when thousands of labels share one primary hash.
  [[nodiscard]] std::span<const std::uint32_t> probe(SkeletonHashes hashes) const {
    if (view_) {
      const auto b = view_bucket(hashes.primary);
      if (b == kNoBucket) return {};
      const auto child_begin = flat_.bucket_child_start[b];
      const auto child_end = flat_.bucket_child_start[b + 1];
      if (child_begin == child_end) {
        return flat_.bucket_entries.subspan(
            flat_.bucket_offsets[b],
            flat_.bucket_offsets[b + 1] - flat_.bucket_offsets[b]);
      }
      const auto first = flat_.child_h2.begin() + child_begin;
      const auto last = flat_.child_h2.begin() + child_end;
      const auto it = std::lower_bound(first, last, hashes.secondary);
      if (it == last || *it != hashes.secondary) return {};
      const auto c = static_cast<std::size_t>(it - flat_.child_h2.begin());
      return flat_.child_entries.subspan(
          flat_.child_offsets[c], flat_.child_offsets[c + 1] - flat_.child_offsets[c]);
    }
    const auto it = buckets_.find(hashes.primary);
    if (it == buckets_.end() || it->second.entries.empty()) return {};
    if (!it->second.split) return it->second.entries;
    const auto child = it->second.children.find(hashes.secondary);
    return child == it->second.children.end()
               ? std::span<const std::uint32_t>{}
               : std::span<const std::uint32_t>{child->second};
  }

  /// Number of primary buckets currently split into secondary children.
  [[nodiscard]] std::size_t split_bucket_count() const noexcept {
    return split_buckets_;
  }

  /// Number of non-empty buckets (incremental maintenance can leave empty
  /// buckets in the table; they don't count).
  [[nodiscard]] std::size_t bucket_count() const noexcept { return non_empty_buckets_; }

  [[nodiscard]] std::size_t entry_count() const noexcept {
    return view_ ? flat_.entry_hashes.size() : entry_hashes_.size();
  }

  /// Current skeleton hash of entry `i` (what its bucket is keyed by).
  [[nodiscard]] std::uint64_t entry_hash(std::size_t i) const {
    return view_ ? flat_.entry_hashes[i] : entry_hashes_[i];
  }

  // --- DB-artifact (de)serialization ------------------------------------

  /// Flatten into the artifact's sorted-array layout (db/format.hpp SKEL
  /// section). Deterministic: buckets by hash, children by secondary hash.
  [[nodiscard]] db::SkeletonFlat to_flat() const;

  /// Adopt a mapped flat index in place (zero parsing; probes binary-search
  /// the bucket table). `db` must be the database the index was built
  /// against — same canonical map, same generation — and must outlive the
  /// index; `backing` keeps the mapped arrays alive. The first
  /// rehash_changed() call materializes an owned copy (copy-on-write).
  /// Throws std::runtime_error on structurally inconsistent flat data.
  static SkeletonIndex adopt_view(const homoglyph::HomoglyphDb& db,
                                  const db::SkeletonFlatView& flat,
                                  std::shared_ptr<const void> backing);

  /// True when the index reads adopted (e.g. memory-mapped) storage.
  [[nodiscard]] bool is_view() const noexcept { return view_; }

  /// Recompute the hashes of exactly the entries whose label contains a
  /// code point in `changed` (sorted or not; the set the database reports
  /// after an update), moving them between buckets. `labels` must be the
  /// same list the index was built over. Returns the number of entries
  /// examined. Vacated buckets stay in the table, empty.
  std::size_t rehash_changed(std::span<const IdnEntry> labels,
                             std::span<const unicode::CodePoint> changed);
  std::size_t rehash_changed(std::span<const std::string> labels,
                             std::span<const unicode::CodePoint> changed);
  std::size_t rehash_changed(std::span<const unicode::U32String> labels,
                             std::span<const unicode::CodePoint> changed);

  /// Bucket-occupancy histogram: slot i counts buckets holding exactly
  /// i+1 entries; the final slot aggregates buckets of size >= max_slots.
  /// Split buckets contribute their children (the probe-visible units),
  /// not the parent union — that is the long tail the split removes.
  /// Empty buckets (possible after rehash_changed) are not counted.
  [[nodiscard]] std::vector<std::uint64_t> occupancy_histogram(
      std::size_t max_slots = 8) const;

 private:
  /// `entries` is always the full ascending union (serves the legacy
  /// probe); when `split`, `children` partitions it by secondary hash.
  struct Bucket {
    std::vector<std::uint32_t> entries;
    bool split = false;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> children;
  };

  static constexpr std::size_t kNoBucket = static_cast<std::size_t>(-1);

  SkeletonIndex() = default;  // adopt_view scaffolding

  template <typename String>
  [[nodiscard]] std::uint64_t hash_impl(const String& label) const;
  template <typename String>
  [[nodiscard]] std::uint64_t hash2_impl(const String& label) const;
  template <typename Label>
  void build(std::span<const Label> labels);
  template <typename Label>
  std::size_t rehash_impl(std::span<const Label> labels,
                          std::span<const unicode::CodePoint> changed);
  /// Re-derive a bucket's split state from its current entries (called on
  /// every bucket rehash_changed touched, and after build).
  void refresh_split(Bucket& bucket);
  /// Copy-on-write: rebuild owned buckets/postings from the flat arrays
  /// (no rehash — hashes are stored) before the first mutation.
  template <typename Label>
  void materialize(std::span<const Label> labels);
  /// Binary search the flat bucket table; kNoBucket on a miss or an empty
  /// bucket union.
  [[nodiscard]] std::size_t view_bucket(std::uint64_t hash) const {
    const auto it =
        std::lower_bound(flat_.bucket_hashes.begin(), flat_.bucket_hashes.end(), hash);
    if (it == flat_.bucket_hashes.end() || *it != hash) return kNoBucket;
    const auto b = static_cast<std::size_t>(it - flat_.bucket_hashes.begin());
    return flat_.bucket_offsets[b] == flat_.bucket_offsets[b + 1] ? kNoBucket : b;
  }

  const homoglyph::HomoglyphDb* db_ = nullptr;
  std::uint64_t hash_mask_ = ~0ULL;
  std::size_t max_bucket_occupancy_ = 0;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
  std::size_t non_empty_buckets_ = 0;
  std::size_t split_buckets_ = 0;
  /// Hash currently keying each entry's bucket slot.
  std::vector<std::uint64_t> entry_hashes_;
  /// Secondary hash per entry; filled only when max_bucket_occupancy > 0.
  std::vector<std::uint64_t> entry_h2_;
  /// Raw code point -> entries whose label contains it (deduplicated,
  /// ascending). Keys are raw code points, not canonical representatives,
  /// so the postings stay valid across database updates.
  std::unordered_map<unicode::CodePoint, std::vector<std::uint32_t>> entries_by_cp_;

  /// View mode: probes binary-search these mapped arrays instead of the
  /// hash map (empty until adopt_view; cleared by materialize()).
  bool view_ = false;
  db::SkeletonFlatView flat_;
  std::shared_ptr<const void> backing_;
};

}  // namespace sham::detect
