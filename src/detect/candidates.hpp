// Homograph candidate generation — the defensive/brand-protection use of
// the homoglyph database: enumerate the IDN homographs an attacker could
// register against a given name (bounded), so owners can register or
// monitor them (Section 6.2 observes such defensive registrations).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "homoglyph/homoglyph_db.hpp"
#include "idna/tld_policy.hpp"

namespace sham::detect {

struct Candidate {
  unicode::U32String unicode;  // the homograph label
  std::string ace;             // its "xn--" form
  std::size_t substitutions = 0;
};

struct CandidateOptions {
  /// Maximum simultaneous character substitutions (1 = classic attacks).
  std::size_t max_substitutions = 1;
  /// Hard cap on generated candidates (generation is combinatorial).
  std::size_t max_candidates = 10000;
  /// Only emit candidates whose every character is IDNA-PVALID.
  bool idna_only = true;
  /// When set, only emit candidates registrable under this TLD's
  /// inclusion-based IDN table (Section 2.1) — e.g. under .jp, no Latin
  /// lookalikes survive. Must outlive the call.
  const idna::TldPolicy* tld_policy = nullptr;
};

/// Enumerate homograph candidates of an ASCII label (no TLD, no dots).
/// Candidates are produced in deterministic order: fewer substitutions
/// first, then by position, then by code point.
[[nodiscard]] std::vector<Candidate> generate_candidates(
    const homoglyph::HomoglyphDb& db, std::string_view ascii_label,
    const CandidateOptions& options = {});

}  // namespace sham::detect
