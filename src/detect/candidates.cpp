#include "detect/candidates.hpp"

#include <algorithm>
#include <stdexcept>

#include "idna/idna.hpp"
#include "unicode/idna_properties.hpp"

namespace sham::detect {

namespace {

void extend(const homoglyph::HomoglyphDb& db, const CandidateOptions& options,
            const unicode::U32String& base, unicode::U32String& current,
            std::size_t position, std::size_t substitutions,
            std::vector<Candidate>& out) {
  if (out.size() >= options.max_candidates) return;
  if (substitutions > 0) {
    Candidate c;
    c.unicode = current;
    try {
      c.ace = idna::to_a_label(current);
    } catch (const std::invalid_argument&) {
      c.ace.clear();  // over-long ACE forms are unreachable as domains
    }
    c.substitutions = substitutions;
    if (!c.ace.empty()) out.push_back(std::move(c));
  }
  if (substitutions == options.max_substitutions) return;
  for (std::size_t i = position; i < base.size(); ++i) {
    for (const auto h : db.homoglyphs_of(base[i])) {
      if (h == base[i]) continue;
      if (options.idna_only && !unicode::is_idna_permitted(h)) continue;
      if (options.tld_policy != nullptr && !options.tld_policy->permits(h)) continue;
      current[i] = h;
      extend(db, options, base, current, i + 1, substitutions + 1, out);
      current[i] = base[i];
      if (out.size() >= options.max_candidates) return;
    }
  }
}

}  // namespace

std::vector<Candidate> generate_candidates(const homoglyph::HomoglyphDb& db,
                                           std::string_view ascii_label,
                                           const CandidateOptions& options) {
  if (ascii_label.empty()) {
    throw std::invalid_argument{"generate_candidates: empty label"};
  }
  unicode::U32String base;
  base.reserve(ascii_label.size());
  for (const char c : ascii_label) {
    const auto b = static_cast<unsigned char>(c);
    if (b >= 0x80) {
      throw std::invalid_argument{"generate_candidates: label must be ASCII"};
    }
    base.push_back(b);
  }
  std::vector<Candidate> out;
  unicode::U32String current = base;
  extend(db, options, base, current, 0, 0, out);
  // Depth-first emission interleaves substitution counts; normalize order.
  std::stable_sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.substitutions < b.substitutions;
  });
  return out;
}

}  // namespace sham::detect
