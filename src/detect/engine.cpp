#include "detect/engine.hpp"

#include <algorithm>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>

#include "db/artifact.hpp"
#include "detect/skeleton_index.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace sham::detect {

namespace {

using LengthIndex = std::unordered_map<std::size_t, std::vector<std::size_t>>;

LengthIndex build_length_index(std::span<const IdnEntry> idns) {
  LengthIndex by_length;
  for (std::size_t x = 0; x < idns.size(); ++x) {
    by_length[idns[x].unicode.size()].push_back(x);
  }
  return by_length;
}

// --- Content fingerprints -------------------------------------------------
//
// Cache keys are content hashes, not span addresses: callers routinely
// reuse a buffer with different contents (or pass a different buffer with
// the same contents), and pointer identity would alias both. splitmix64
// over a length-prefixed, type-tagged stream of label sizes and code
// points / bytes; the tag keeps an ASCII reference list, a Unicode
// reference list and an IDN list with identical payloads from colliding.

constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Fingerprinter {
  std::uint64_t h = 0x9ae16a3b2f90404fULL;
  void mix(std::uint64_t v) noexcept { h = splitmix64(h ^ v); }
};

std::uint64_t fingerprint_of(std::span<const IdnEntry> idns) {
  Fingerprinter f;
  f.mix(0x1D);  // type tag: IDN entries
  f.mix(idns.size());
  for (const auto& entry : idns) {
    f.mix(entry.unicode.size());
    for (const auto cp : entry.unicode) f.mix(cp);
  }
  return f.h;
}

std::uint64_t fingerprint_of(std::span<const std::string> references) {
  Fingerprinter f;
  f.mix(0xA5);  // type tag: ASCII references
  f.mix(references.size());
  for (const auto& ref : references) {
    f.mix(ref.size());
    for (const char c : ref) f.mix(static_cast<unsigned char>(c));
  }
  return f.h;
}

std::uint64_t fingerprint_of(std::span<const unicode::U32String> references) {
  Fingerprinter f;
  f.mix(0xB7);  // type tag: Unicode references
  f.mix(references.size());
  for (const auto& ref : references) {
    f.mix(ref.size());
    for (const auto cp : ref) f.mix(cp);
  }
  return f.h;
}

/// Per-shard output slot: owned by exactly one shard during the scan,
/// touched again only after wait_idle() during the merge.
struct ShardResult {
  std::vector<Match> matches;
  std::uint64_t length_bucket_hits = 0;
  std::uint64_t char_comparisons = 0;
  std::uint64_t skeleton_candidates = 0;
  std::uint64_t skeleton_rejected = 0;
};

/// Scan references [begin, end) against the length index. The serial
/// indexed path and every parallel shard run this same function, which is
/// what makes the strategies bit-for-bit equivalent.
template <typename RefString>
void scan_references(const HomographDetector& detector,
                     std::span<const RefString> references,
                     std::span<const IdnEntry> idns, const LengthIndex& by_length,
                     std::size_t begin, std::size_t end, ShardResult& out) {
  std::vector<DiffChar> diffs;
  for (std::size_t r = begin; r < end; ++r) {
    const auto& ref = references[r];
    const auto bucket = by_length.find(ref.size());
    if (bucket == by_length.end()) continue;
    for (const auto x : bucket->second) {
      ++out.length_bucket_hits;
      out.char_comparisons += ref.size();
      if (detector.match_pair(ref, idns[x].unicode, &diffs)) {
        out.matches.push_back({r, x, diffs});
      }
    }
  }
}

/// Skeleton-strategy forward scan: one skeleton hash + one bucket probe
/// per reference, exact per-character verification of every candidate.
/// Buckets list IDN indices ascending and can only ever contain a
/// superset of the true matches (see skeleton_index.hpp), so the verified
/// matches come out in the same (reference, idn) order the serial scan
/// produces — the shard merge below stays a plain concatenation.
template <typename RefString>
void scan_references_skeleton(const HomographDetector& detector,
                              std::span<const RefString> references,
                              std::span<const IdnEntry> idns,
                              const SkeletonIndex& index, std::size_t begin,
                              std::size_t end, ShardResult& out) {
  std::vector<DiffChar> diffs;
  for (std::size_t r = begin; r < end; ++r) {
    const auto& ref = references[r];
    const auto bucket = index.probe(index.hashes_of(ref));
    if (bucket.empty()) continue;
    for (const auto x : bucket) {
      ++out.length_bucket_hits;  // candidates examined, as under kIndexed
      ++out.skeleton_candidates;
      out.char_comparisons += ref.size();
      if (detector.match_pair(ref, idns[x].unicode, &diffs)) {
        out.matches.push_back({r, x, diffs});
      } else {
        ++out.skeleton_rejected;
      }
    }
  }
}

/// Inverted skeleton scan over IDNs [begin, end): the index buckets
/// *reference* indices, each IDN probes once. The hash-equality join is
/// symmetric, so the candidate (reference, idn) pair set — and every
/// counter derived from it (char_comparisons charges the reference
/// length per candidate, exactly as the forward scan does) — is
/// identical to the forward join's; only the emission order differs
/// (idn-major), which the caller restores with a final sort.
template <typename RefString>
void scan_idns_skeleton(const HomographDetector& detector,
                        std::span<const RefString> references,
                        std::span<const IdnEntry> idns, const SkeletonIndex& index,
                        std::size_t begin, std::size_t end, ShardResult& out) {
  std::vector<DiffChar> diffs;
  for (std::size_t x = begin; x < end; ++x) {
    const auto bucket = index.probe(index.hashes_of(idns[x].unicode));
    if (bucket.empty()) continue;
    for (const auto r : bucket) {
      ++out.length_bucket_hits;
      ++out.skeleton_candidates;
      out.char_comparisons += references[r].size();
      if (detector.match_pair(references[r], idns[x].unicode, &diffs)) {
        out.matches.push_back({r, x, diffs});
      } else {
        ++out.skeleton_rejected;
      }
    }
  }
}

std::size_t resolve_threads(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return threads;
}

}  // namespace

// --- Cache state ----------------------------------------------------------
//
// Single-slot caches (last label set wins — the intended workload is many
// queries against one stable zone snapshot). Published indexes are
// immutable: an incremental update clones the index, patches the clone
// and swaps the shared_ptr, so a concurrent detect() holding the old
// pointer keeps scanning a consistent index (copy-on-write).
struct Engine::CacheState {
  std::mutex mutex;

  /// IDN-side indexes, keyed by the IDN-set fingerprint. The length index
  /// is database-independent; the skeleton index is valid for
  /// `skeleton_generation` and patched forward via canonical_changes_since.
  struct IdnSlot {
    bool valid = false;
    std::uint64_t fingerprint = 0;
    std::uint64_t skeleton_generation = 0;
    std::shared_ptr<const SkeletonIndex> skeleton;
    std::shared_ptr<const LengthIndex> by_length;
  };

  /// Reference-side skeleton index (inverted join), same lifecycle.
  struct RefSlot {
    bool valid = false;
    std::uint64_t fingerprint = 0;
    std::uint64_t skeleton_generation = 0;
    std::shared_ptr<const SkeletonIndex> skeleton;
  };

  /// One whole-response memo entry. The engine keeps the last
  /// EngineOptions::result_cache_capacity distinct queries in an LRU
  /// (linear scan — capacity is single-digit) so rotating reference lists
  /// against one zone snapshot all stay warm.
  struct ResultEntry {
    std::uint64_t ref_fingerprint = 0;
    std::uint64_t idn_fingerprint = 0;
    std::uint64_t generation = 0;
    Strategy strategy = Strategy::kSerial;
    std::size_t workers = 0;
    bool inverted = false;
    std::shared_ptr<const DetectResponse> response;
    std::uint64_t tick = 0;  // last-use time; smallest tick is evicted

    [[nodiscard]] bool matches(std::uint64_t ref_fp, std::uint64_t idn_fp,
                               std::uint64_t gen, Strategy s, std::size_t w,
                               bool inv) const noexcept {
      return ref_fingerprint == ref_fp && idn_fingerprint == idn_fp &&
             generation == gen && strategy == s && workers == w && inverted == inv;
    }
  };

  IdnSlot idn;
  RefSlot ref;
  std::vector<ResultEntry> results;
  std::uint64_t result_tick = 0;

  /// SkeletonJoin::kAuto stability promotion: when the same IDN set shows
  /// up twice in a row it is treated as the stable snapshot and indexed
  /// (forward join) even if the size rule says inverted — otherwise the
  /// many-references heuristic would keep the cacheable side unindexed
  /// forever.
  bool last_idn_seen = false;
  std::uint64_t last_idn_fingerprint = 0;
};

Engine::Engine(const homoglyph::HomoglyphDb& db, EngineOptions options)
    : db_{&db},
      options_{options},
      cache_{options.cache ? std::make_unique<CacheState>() : nullptr} {}

Engine::~Engine() = default;
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

Engine Engine::from_db_file(const std::string& path, EngineOptions options) {
  return from_db_artifact(
      std::make_shared<const db::DbArtifact>(db::DbArtifact::load(path)), options);
}

Engine Engine::from_db_artifact(std::shared_ptr<const db::DbArtifact> artifact,
                                EngineOptions options) {
  if (artifact == nullptr) {
    throw std::invalid_argument{"Engine::from_db_artifact: null artifact"};
  }
  // Trust check before anything keys off the header fingerprint: checksums
  // only prove self-consistency (an attacker computes them like anyone
  // else), so verify the stamp actually describes the stored labels.
  // Otherwise a hostile artifact could stamp the fingerprint of one list
  // while shipping another, and both the pre-seeded cache slot below and
  // callers defaulting their references to artifact->references() would
  // silently operate on the wrong list.
  if (!artifact->references().empty() &&
      label_set_fingerprint(
          std::span<const std::string>{artifact->references()}) !=
          artifact->reference_fingerprint()) {
    throw std::runtime_error{
        "Engine::from_db_artifact: reference fingerprint does not match the "
        "stored labels (corrupt or hostile artifact)"};
  }
  // The view database lives on the heap so db_ survives Engine moves.
  auto db = std::make_unique<const homoglyph::HomoglyphDb>(artifact->homoglyph());
  Engine engine{*db, options};
  engine.owned_db_ = std::move(db);
  // Seed the reference-side skeleton slot from the artifact's SKEL
  // section: the first kSkeleton detect() against the serialized
  // reference list (same fingerprint, same generation) probes the mapped
  // index instead of building one. adopt_view re-validates the flat
  // arrays structurally (the checksummed file could still be hostile).
  if (engine.cache_ != nullptr && artifact->has_skeleton()) {
    auto index = std::make_shared<const SkeletonIndex>(SkeletonIndex::adopt_view(
        *engine.owned_db_, artifact->skeleton(), artifact->backing()));
    auto& slot = engine.cache_->ref;
    slot.valid = true;
    slot.fingerprint = artifact->reference_fingerprint();
    slot.skeleton_generation = artifact->generation();
    slot.skeleton = std::move(index);
  }
  engine.artifact_ = std::move(artifact);
  return engine;
}

std::string_view strategy_name(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::kSerial: return "serial";
    case Strategy::kIndexed: return "indexed";
    case Strategy::kParallel: return "parallel";
    case Strategy::kSkeleton: return "skeleton";
  }
  return "unknown";
}

std::optional<Strategy> parse_strategy(std::string_view name) noexcept {
  if (name == "serial") return Strategy::kSerial;
  if (name == "indexed") return Strategy::kIndexed;
  if (name == "parallel") return Strategy::kParallel;
  if (name == "skeleton") return Strategy::kSkeleton;
  return std::nullopt;
}

void validate_request(const DetectRequest& request) {
  if (!request.references.empty() && !request.unicode_references.empty()) {
    throw std::invalid_argument{
        "DetectRequest: supply ASCII references or unicode_references, not both"};
  }
  // The ASCII span is matched (and skeleton-hashed) byte-wise; a stray
  // UTF-8 byte would silently diverge from per-code-point semantics, so
  // reject it here at the API boundary (satellite bugfix: hash asymmetry).
  for (std::size_t r = 0; r < request.references.size(); ++r) {
    if (request.references[r].empty()) {
      throw std::invalid_argument{"DetectRequest: references[" + std::to_string(r) +
                                  "] is empty; reference labels must be non-empty"};
    }
    for (const char c : request.references[r]) {
      const auto byte = static_cast<unsigned char>(c);
      if (byte >= 0x80) {
        throw std::invalid_argument{
            "DetectRequest: references[" + std::to_string(r) +
            "] contains non-ASCII byte " + std::to_string(byte) +
            "; decode it and pass it via unicode_references"};
      }
    }
  }
  for (std::size_t r = 0; r < request.unicode_references.size(); ++r) {
    if (request.unicode_references[r].empty()) {
      throw std::invalid_argument{"DetectRequest: unicode_references[" +
                                  std::to_string(r) +
                                  "] is empty; reference labels must be non-empty"};
    }
  }
}

std::uint64_t label_set_fingerprint(std::span<const IdnEntry> idns) noexcept {
  return fingerprint_of(idns);
}

std::uint64_t label_set_fingerprint(std::span<const std::string> references) noexcept {
  return fingerprint_of(references);
}

std::uint64_t label_set_fingerprint(
    std::span<const unicode::U32String> references) noexcept {
  return fingerprint_of(references);
}

DetectResponse Engine::detect(const DetectRequest& request) const {
  // Validation runs before the empty-input short-circuit so malformed
  // requests fail identically under every strategy and input size.
  validate_request(request);
  const auto strategy = request.strategy.value_or(options_.strategy);
  const auto threads = request.threads.value_or(options_.threads);
  const auto join = request.join.value_or(options_.join);
  // Empty-input short-circuit: fully-zeroed stats under every strategy
  // (satellite bugfix — no index build, no cache traffic, no shard slots).
  if (request.idns.empty() ||
      (request.references.empty() && request.unicode_references.empty())) {
    return {};
  }
  if (!request.unicode_references.empty()) {
    return run(request.unicode_references, request.idns, strategy, threads, join);
  }
  return run(request.references, request.idns, strategy, threads, join);
}

template <typename RefString>
DetectResponse Engine::run(std::span<const RefString> references,
                           std::span<const IdnEntry> idns, Strategy strategy,
                           std::size_t threads, SkeletonJoin join) const {
  util::Stopwatch total;
  DetectResponse out;
  const HomographDetector detector{*db_};

  if (strategy == Strategy::kSerial) {
    // Algorithm 1 as printed: no index, every (ref, IDN) length pair
    // probed. Deliberately cache-free — this is the ground-truth baseline
    // every cache state is compared against.
    std::vector<DiffChar> diffs;
    for (std::size_t r = 0; r < references.size(); ++r) {
      const auto& ref = references[r];
      for (std::size_t x = 0; x < idns.size(); ++x) {
        if (idns[x].unicode.size() != ref.size()) continue;
        ++out.stats.length_bucket_hits;
        out.stats.char_comparisons += ref.size();
        if (detector.match_pair(ref, idns[x].unicode, &diffs)) {
          out.matches.push_back({r, x, diffs});
        }
      }
    }
    out.stats.match_seconds = total.seconds();
    out.stats.shard_candidates = {out.stats.length_bucket_hits};
    out.stats.seconds = total.seconds();
    return out;
  }

  const auto workers = resolve_threads(threads);
  const auto generation = db_->generation();
  const bool use_cache = cache_ != nullptr;

  std::uint64_t ref_fp = 0;
  std::uint64_t idn_fp = 0;
  if (use_cache) {
    ref_fp = fingerprint_of(references);
    idn_fp = fingerprint_of(idns);
  }

  // Join direction (kSkeleton only): explicit request wins; kAuto prefers
  // the side that is already cached (warm index beats any rebuild), then
  // a stable-looking IDN set (build the reusable index), then the size
  // rule (index the smaller side).
  bool inverted = false;
  if (strategy == Strategy::kSkeleton) {
    if (join == SkeletonJoin::kReferenceIndex) {
      inverted = true;
    } else if (join == SkeletonJoin::kAuto) {
      const bool smaller_ref_side =
          references.size() * options_.inverted_join_ratio <= idns.size();
      if (!use_cache) {
        inverted = smaller_ref_side;
      } else {
        std::lock_guard lock{cache_->mutex};
        const bool idn_index_warm = cache_->idn.valid &&
                                    cache_->idn.fingerprint == idn_fp &&
                                    cache_->idn.skeleton != nullptr;
        const bool idn_stable =
            cache_->last_idn_seen && cache_->last_idn_fingerprint == idn_fp;
        // A warm reference-side index (e.g. seeded from a DB artifact whose
        // SKEL section indexes the reference list) beats the size rule, but
        // never outranks a warm or stable IDN side — the stability promotion
        // (see CacheState) must still win for repeated IDN snapshots.
        const bool ref_index_warm = cache_->ref.valid &&
                                    cache_->ref.fingerprint == ref_fp &&
                                    cache_->ref.skeleton != nullptr &&
                                    cache_->ref.skeleton_generation == generation;
        inverted = !idn_index_warm && !idn_stable &&
                   (ref_index_warm || smaller_ref_side);
      }
    }
  }
  out.stats.inverted_join = inverted;
  out.stats.db_generation = generation;
  out.stats.index_generation = generation;

  // L1: whole-response LRU. Key covers everything the response depends
  // on; on a hit the stored response is copied and its timing/cache
  // counters overwritten to describe *this* call (no build, no scan).
  if (use_cache) {
    std::lock_guard lock{cache_->mutex};
    const auto hit = std::find_if(
        cache_->results.begin(), cache_->results.end(), [&](const auto& entry) {
          return entry.matches(ref_fp, idn_fp, generation, strategy, workers,
                               inverted);
        });
    if (hit != cache_->results.end()) {
      hit->tick = ++cache_->result_tick;
      out = *hit->response;
      out.stats.result_cache_hits = 1;
      out.stats.result_cache_entries = cache_->results.size();
      out.stats.index_cache_hits = 0;
      out.stats.index_cache_rebuilds = 0;
      out.stats.index_cache_updates = 0;
      out.stats.index_entries_rehashed = 0;
      out.stats.index_build_seconds = 0.0;
      out.stats.skeleton_build_seconds = 0.0;
      out.stats.index_update_seconds = 0.0;
      out.stats.match_seconds = 0.0;
      out.stats.merge_seconds = 0.0;
      out.stats.db_generation = generation;
      out.stats.index_generation = generation;
      cache_->last_idn_seen = true;
      cache_->last_idn_fingerprint = idn_fp;
      out.stats.seconds = total.seconds();
      return out;
    }
  }

  // L2: index acquisition — cached (hit / incremental patch / rebuild)
  // or a local uncached build.
  util::Stopwatch stage;
  std::shared_ptr<const LengthIndex> by_length;
  std::shared_ptr<const SkeletonIndex> skeleton;
  const SkeletonIndexOptions index_opts{
      .max_bucket_occupancy = options_.skeleton_bucket_cap};

  if (strategy == Strategy::kSkeleton) {
    if (!use_cache) {
      stage.reset();
      skeleton = inverted
                     ? std::make_shared<SkeletonIndex>(*db_, references, index_opts)
                     : std::make_shared<SkeletonIndex>(*db_, idns, index_opts);
      out.stats.skeleton_build_seconds = stage.seconds();
    } else if (!inverted) {
      std::lock_guard lock{cache_->mutex};
      auto& slot = cache_->idn;
      if (!(slot.valid && slot.fingerprint == idn_fp)) {
        slot = {};
        slot.valid = true;
        slot.fingerprint = idn_fp;
      }
      bool ready = false;
      if (slot.skeleton != nullptr) {
        if (slot.skeleton_generation == generation) {
          out.stats.index_cache_hits = 1;
          ready = true;
        } else if (const auto changes =
                       db_->canonical_changes_since(slot.skeleton_generation)) {
          stage.reset();
          auto patched = std::make_shared<SkeletonIndex>(*slot.skeleton);
          out.stats.index_entries_rehashed = patched->rehash_changed(idns, *changes);
          slot.skeleton = std::move(patched);
          slot.skeleton_generation = generation;
          out.stats.index_cache_updates = 1;
          out.stats.index_update_seconds = stage.seconds();
          ready = true;
        }
      }
      if (!ready) {
        stage.reset();
        slot.skeleton = std::make_shared<SkeletonIndex>(*db_, idns, index_opts);
        slot.skeleton_generation = generation;
        out.stats.index_cache_rebuilds = 1;
        out.stats.skeleton_build_seconds = stage.seconds();
      }
      skeleton = slot.skeleton;
      cache_->last_idn_seen = true;
      cache_->last_idn_fingerprint = idn_fp;
    } else {
      std::lock_guard lock{cache_->mutex};
      auto& slot = cache_->ref;
      if (!(slot.valid && slot.fingerprint == ref_fp)) {
        slot = {};
        slot.valid = true;
        slot.fingerprint = ref_fp;
      }
      bool ready = false;
      if (slot.skeleton != nullptr) {
        if (slot.skeleton_generation == generation) {
          out.stats.index_cache_hits = 1;
          ready = true;
        } else if (const auto changes =
                       db_->canonical_changes_since(slot.skeleton_generation)) {
          stage.reset();
          auto patched = std::make_shared<SkeletonIndex>(*slot.skeleton);
          out.stats.index_entries_rehashed =
              patched->rehash_changed(references, *changes);
          slot.skeleton = std::move(patched);
          slot.skeleton_generation = generation;
          out.stats.index_cache_updates = 1;
          out.stats.index_update_seconds = stage.seconds();
          ready = true;
        }
      }
      if (!ready) {
        stage.reset();
        slot.skeleton = std::make_shared<SkeletonIndex>(*db_, references, index_opts);
        slot.skeleton_generation = generation;
        out.stats.index_cache_rebuilds = 1;
        out.stats.skeleton_build_seconds = stage.seconds();
      }
      skeleton = slot.skeleton;
      cache_->last_idn_seen = true;
      cache_->last_idn_fingerprint = idn_fp;
    }
    out.stats.skeleton_buckets = skeleton->bucket_count();
    out.stats.skeleton_bucket_histogram = skeleton->occupancy_histogram();
  } else {
    // kIndexed / kParallel: the length index depends only on the IDN set
    // (not on the database), so its slot carries no generation.
    if (!use_cache) {
      stage.reset();
      by_length = std::make_shared<LengthIndex>(build_length_index(idns));
      out.stats.index_build_seconds = stage.seconds();
    } else {
      std::lock_guard lock{cache_->mutex};
      auto& slot = cache_->idn;
      if (!(slot.valid && slot.fingerprint == idn_fp)) {
        slot = {};
        slot.valid = true;
        slot.fingerprint = idn_fp;
      }
      if (slot.by_length != nullptr) {
        out.stats.index_cache_hits = 1;
      } else {
        stage.reset();
        slot.by_length = std::make_shared<LengthIndex>(build_length_index(idns));
        out.stats.index_cache_rebuilds = 1;
        out.stats.index_build_seconds = stage.seconds();
      }
      by_length = slot.by_length;
      cache_->last_idn_seen = true;
      cache_->last_idn_fingerprint = idn_fp;
    }
  }

  // The streamed side: references (forward) or IDNs (inverted join).
  const std::size_t domain = inverted ? idns.size() : references.size();
  const auto scan = [&](std::size_t begin, std::size_t end, ShardResult& slot) {
    if (skeleton != nullptr && inverted) {
      scan_idns_skeleton(detector, references, idns, *skeleton, begin, end, slot);
    } else if (skeleton != nullptr) {
      scan_references_skeleton(detector, references, idns, *skeleton, begin, end,
                               slot);
    } else {
      scan_references(detector, references, idns, *by_length, begin, end, slot);
    }
  };
  const auto accumulate = [&](ShardResult& shard) {
    std::move(shard.matches.begin(), shard.matches.end(),
              std::back_inserter(out.matches));
    out.stats.length_bucket_hits += shard.length_bucket_hits;
    out.stats.char_comparisons += shard.char_comparisons;
    out.stats.skeleton_candidates += shard.skeleton_candidates;
    out.stats.skeleton_rejected += shard.skeleton_rejected;
    out.stats.shard_candidates.push_back(shard.length_bucket_hits);
  };
  // The inverted scan emits idn-major; restore the canonical
  // (reference_index, idn_index) order the serial scan defines. Pairs are
  // unique, so a plain sort is deterministic.
  const auto restore_order = [&] {
    if (!inverted) return;
    std::sort(out.matches.begin(), out.matches.end(),
              [](const Match& a, const Match& b) {
                return a.reference_index != b.reference_index
                           ? a.reference_index < b.reference_index
                           : a.idn_index < b.idn_index;
              });
  };

  const bool parallel =
      (strategy == Strategy::kParallel || strategy == Strategy::kSkeleton) &&
      workers > 1 && domain > 1;

  if (!parallel) {
    ShardResult shard;
    stage.reset();
    scan(0, domain, shard);
    out.stats.match_seconds = stage.seconds();
    accumulate(shard);
    restore_order();
  } else {
    const std::size_t shards = std::min(
        domain, std::max<std::size_t>(1, workers * options_.shards_per_thread));
    std::vector<ShardResult> shard_results(shards);

    stage.reset();
    {
      util::ThreadPool pool{workers};
      pool.parallel_for_chunks(
          0, domain, shards,
          [&](std::size_t chunk, std::size_t chunk_begin, std::size_t chunk_end) {
            scan(chunk_begin, chunk_end, shard_results[chunk]);
          });
    }
    out.stats.match_seconds = stage.seconds();

    // Deterministic merge: shards cover ascending ranges of the streamed
    // side, so appending them in shard order reproduces that side's scan
    // order (the inverted join then re-sorts to reference-major).
    stage.reset();
    std::size_t total_matches = 0;
    for (const auto& shard : shard_results) total_matches += shard.matches.size();
    out.matches.reserve(total_matches);
    out.stats.shard_candidates.reserve(shards);
    for (auto& shard : shard_results) accumulate(shard);
    restore_order();
    out.stats.merge_seconds = stage.seconds();

    out.stats.threads_used = workers;
    out.stats.shards_used = shards;
  }

  if (use_cache && options_.result_cache_capacity > 0) {
    std::lock_guard lock{cache_->mutex};
    auto& lru = cache_->results;
    auto slot = std::find_if(lru.begin(), lru.end(), [&](const auto& entry) {
      return entry.matches(ref_fp, idn_fp, generation, strategy, workers, inverted);
    });
    if (slot == lru.end()) {
      if (lru.size() >= options_.result_cache_capacity) {
        // Evict the least-recently-used entry (smallest tick).
        slot = std::min_element(lru.begin(), lru.end(),
                                [](const auto& x, const auto& y) {
                                  return x.tick < y.tick;
                                });
      } else {
        slot = lru.emplace(lru.end());
      }
    }
    *slot = {ref_fp,   idn_fp,  generation, strategy,
             workers,  inverted, nullptr,   ++cache_->result_tick};
    out.stats.result_cache_entries = lru.size();
    slot->response = std::make_shared<DetectResponse>(out);
  }

  out.stats.seconds = total.seconds();
  return out;
}

template DetectResponse Engine::run(std::span<const std::string>,
                                    std::span<const IdnEntry>, Strategy,
                                    std::size_t, SkeletonJoin) const;
template DetectResponse Engine::run(std::span<const unicode::U32String>,
                                    std::span<const IdnEntry>, Strategy,
                                    std::size_t, SkeletonJoin) const;

}  // namespace sham::detect
