#include "detect/engine.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "detect/skeleton_index.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace sham::detect {

namespace {

using LengthIndex = std::unordered_map<std::size_t, std::vector<std::size_t>>;

LengthIndex build_length_index(std::span<const IdnEntry> idns) {
  LengthIndex by_length;
  for (std::size_t x = 0; x < idns.size(); ++x) {
    by_length[idns[x].unicode.size()].push_back(x);
  }
  return by_length;
}

/// Per-shard output slot: owned by exactly one shard during the scan,
/// touched again only after wait_idle() during the merge.
struct ShardResult {
  std::vector<Match> matches;
  std::uint64_t length_bucket_hits = 0;
  std::uint64_t char_comparisons = 0;
  std::uint64_t skeleton_candidates = 0;
  std::uint64_t skeleton_rejected = 0;
};

/// Scan references [begin, end) against the length index. The serial
/// indexed path and every parallel shard run this same function, which is
/// what makes the strategies bit-for-bit equivalent.
template <typename RefString>
void scan_references(const HomographDetector& detector,
                     std::span<const RefString> references,
                     std::span<const IdnEntry> idns, const LengthIndex& by_length,
                     std::size_t begin, std::size_t end, ShardResult& out) {
  std::vector<DiffChar> diffs;
  for (std::size_t r = begin; r < end; ++r) {
    const auto& ref = references[r];
    const auto bucket = by_length.find(ref.size());
    if (bucket == by_length.end()) continue;
    for (const auto x : bucket->second) {
      ++out.length_bucket_hits;
      out.char_comparisons += ref.size();
      if (detector.match_pair(ref, idns[x].unicode, &diffs)) {
        out.matches.push_back({r, x, diffs});
      }
    }
  }
}

/// Skeleton-strategy variant of scan_references: one skeleton hash + one
/// bucket probe per reference, exact per-character verification of every
/// candidate. Buckets list IDN indices ascending and can only ever contain
/// a superset of the true matches (see skeleton_index.hpp), so the
/// verified matches come out in the same (reference, idn) order the serial
/// scan produces — the shard merge below stays a plain concatenation.
template <typename RefString>
void scan_references_skeleton(const HomographDetector& detector,
                              std::span<const RefString> references,
                              std::span<const IdnEntry> idns,
                              const SkeletonIndex& index, std::size_t begin,
                              std::size_t end, ShardResult& out) {
  std::vector<DiffChar> diffs;
  for (std::size_t r = begin; r < end; ++r) {
    const auto& ref = references[r];
    const auto* bucket = index.probe(index.hash_of(ref));
    if (bucket == nullptr) continue;
    for (const auto x : *bucket) {
      ++out.length_bucket_hits;  // candidates examined, as under kIndexed
      ++out.skeleton_candidates;
      out.char_comparisons += ref.size();
      if (detector.match_pair(ref, idns[x].unicode, &diffs)) {
        out.matches.push_back({r, x, diffs});
      } else {
        ++out.skeleton_rejected;
      }
    }
  }
}

std::size_t resolve_threads(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return threads;
}

}  // namespace

std::string_view strategy_name(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::kSerial: return "serial";
    case Strategy::kIndexed: return "indexed";
    case Strategy::kParallel: return "parallel";
    case Strategy::kSkeleton: return "skeleton";
  }
  return "unknown";
}

std::optional<Strategy> parse_strategy(std::string_view name) noexcept {
  if (name == "serial") return Strategy::kSerial;
  if (name == "indexed") return Strategy::kIndexed;
  if (name == "parallel") return Strategy::kParallel;
  if (name == "skeleton") return Strategy::kSkeleton;
  return std::nullopt;
}

DetectResponse Engine::detect(const DetectRequest& request) const {
  if (!request.references.empty() && !request.unicode_references.empty()) {
    throw std::invalid_argument{
        "DetectRequest: supply ASCII references or unicode_references, not both"};
  }
  const auto strategy = request.strategy.value_or(options_.strategy);
  const auto threads = request.threads.value_or(options_.threads);
  if (!request.unicode_references.empty()) {
    return run(request.unicode_references, request.idns, strategy, threads);
  }
  return run(request.references, request.idns, strategy, threads);
}

template <typename RefString>
DetectResponse Engine::run(std::span<const RefString> references,
                           std::span<const IdnEntry> idns, Strategy strategy,
                           std::size_t threads) const {
  util::Stopwatch total;
  DetectResponse out;
  const HomographDetector detector{*db_};

  if (strategy == Strategy::kSerial) {
    // Algorithm 1 as printed: no index, every (ref, IDN) length pair probed.
    std::vector<DiffChar> diffs;
    for (std::size_t r = 0; r < references.size(); ++r) {
      const auto& ref = references[r];
      for (std::size_t x = 0; x < idns.size(); ++x) {
        if (idns[x].unicode.size() != ref.size()) continue;
        ++out.stats.length_bucket_hits;
        out.stats.char_comparisons += ref.size();
        if (detector.match_pair(ref, idns[x].unicode, &diffs)) {
          out.matches.push_back({r, x, diffs});
        }
      }
    }
    out.stats.match_seconds = total.seconds();
    out.stats.shard_candidates = {out.stats.length_bucket_hits};
    out.stats.seconds = total.seconds();
    return out;
  }

  // Index build: length buckets for kIndexed/kParallel, skeleton-hash
  // buckets for kSkeleton.
  util::Stopwatch stage;
  LengthIndex by_length;
  std::optional<SkeletonIndex> skeleton;
  if (strategy == Strategy::kSkeleton) {
    skeleton.emplace(*db_, idns);
    out.stats.skeleton_build_seconds = stage.seconds();
    out.stats.skeleton_buckets = skeleton->bucket_count();
    out.stats.skeleton_bucket_histogram = skeleton->occupancy_histogram();
  } else {
    by_length = build_length_index(idns);
    out.stats.index_build_seconds = stage.seconds();
  }

  const auto scan = [&](std::size_t begin, std::size_t end, ShardResult& slot) {
    if (skeleton) {
      scan_references_skeleton(detector, references, idns, *skeleton, begin, end,
                               slot);
    } else {
      scan_references(detector, references, idns, by_length, begin, end, slot);
    }
  };
  const auto accumulate = [&](ShardResult& shard) {
    std::move(shard.matches.begin(), shard.matches.end(),
              std::back_inserter(out.matches));
    out.stats.length_bucket_hits += shard.length_bucket_hits;
    out.stats.char_comparisons += shard.char_comparisons;
    out.stats.skeleton_candidates += shard.skeleton_candidates;
    out.stats.skeleton_rejected += shard.skeleton_rejected;
    out.stats.shard_candidates.push_back(shard.length_bucket_hits);
  };

  const auto workers = resolve_threads(threads);
  const bool parallel =
      (strategy == Strategy::kParallel || strategy == Strategy::kSkeleton) &&
      workers > 1 && references.size() > 1;

  if (!parallel) {
    ShardResult shard;
    stage.reset();
    scan(0, references.size(), shard);
    out.stats.match_seconds = stage.seconds();
    accumulate(shard);
    out.stats.seconds = total.seconds();
    return out;
  }

  const std::size_t shards = std::min(
      references.size(), std::max<std::size_t>(1, workers * options_.shards_per_thread));
  std::vector<ShardResult> shard_results(shards);

  stage.reset();
  util::ThreadPool pool{workers};
  pool.parallel_for_chunks(
      0, references.size(), shards,
      [&](std::size_t chunk, std::size_t chunk_begin, std::size_t chunk_end) {
        scan(chunk_begin, chunk_end, shard_results[chunk]);
      });
  out.stats.match_seconds = stage.seconds();

  // Deterministic merge: shards cover ascending reference ranges, so
  // appending them in shard order reproduces the serial scan order.
  stage.reset();
  std::size_t total_matches = 0;
  for (const auto& shard : shard_results) total_matches += shard.matches.size();
  out.matches.reserve(total_matches);
  out.stats.shard_candidates.reserve(shards);
  for (auto& shard : shard_results) accumulate(shard);
  out.stats.merge_seconds = stage.seconds();

  out.stats.threads_used = workers;
  out.stats.shards_used = shards;
  out.stats.seconds = total.seconds();
  return out;
}

template DetectResponse Engine::run(std::span<const std::string>,
                                    std::span<const IdnEntry>, Strategy,
                                    std::size_t) const;
template DetectResponse Engine::run(std::span<const unicode::U32String>,
                                    std::span<const IdnEntry>, Strategy,
                                    std::size_t) const;

}  // namespace sham::detect
