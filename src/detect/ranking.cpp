#include "detect/ranking.hpp"

#include <algorithm>
#include <limits>

#include "font/metrics.hpp"

namespace sham::detect {

std::optional<int> visual_distance(const font::FontSource& font,
                                   std::string_view reference,
                                   const unicode::U32String& idn) {
  if (reference.size() != idn.size()) return std::nullopt;
  int total = 0;
  for (std::size_t i = 0; i < idn.size(); ++i) {
    const auto ref_char = static_cast<unicode::CodePoint>(
        static_cast<unsigned char>(reference[i]));
    if (ref_char == idn[i]) continue;
    const auto a = font.glyph(ref_char);
    const auto b = font.glyph(idn[i]);
    if (!a || !b) return std::nullopt;
    total += font::delta(*a, *b);
  }
  return total;
}

std::vector<RankedMatch> rank_matches(const font::FontSource& font,
                                      std::span<const Match> matches,
                                      std::span<const std::string> references,
                                      std::span<const IdnEntry> idns) {
  std::vector<RankedMatch> ranked;
  ranked.reserve(matches.size());
  for (const auto& match : matches) {
    RankedMatch r;
    r.match = match;
    const auto d = visual_distance(font, references[match.reference_index],
                                   idns[match.idn_index].unicode);
    r.total_visual_delta = d.value_or(std::numeric_limits<int>::max());
    ranked.push_back(std::move(r));
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedMatch& a, const RankedMatch& b) {
                     return a.total_visual_delta < b.total_visual_delta;
                   });
  return ranked;
}

}  // namespace sham::detect
