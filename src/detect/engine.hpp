// The detection engine: a single detect(DetectRequest) entry point over
// Algorithm 1, replacing the detect / detect_indexed / detect_unicode
// triplet of HomographDetector (kept as thin wrappers over this engine).
//
// Execution strategies:
//   kSerial    Algorithm 1 as printed — outer loop over references, inner
//              loop over all IDNs, restricted to equal lengths;
//   kIndexed   length-bucketed IDN index built once, serial scan;
//   kParallel  the indexed scan sharded over the reference list on a
//              util::ThreadPool;
//   kSkeleton  IDNs bucketed by confusable-closure skeleton hash
//              (skeleton_index.hpp); each reference costs one skeleton
//              computation plus one bucket probe, and every candidate is
//              re-verified with the exact per-character check. Shards over
//              the reference list like kParallel when threads permit.
//
// Determinism: every strategy produces the same match list in the same
// order. The parallel path shards the reference list into contiguous
// ascending ranges, collects one Match vector plus one counter set per
// shard (no shared mutable state, no atomics on the hot path), and merges
// the shards in shard order — so the output is byte-identical to the
// serial indexed scan. DetectionStats doubles as the observability layer:
// per-stage wall-clock times and per-shard candidate counts (see
// detector.hpp for the exact aggregation semantics).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "detect/detector.hpp"
#include "homoglyph/homoglyph_db.hpp"
#include "unicode/codepoint.hpp"

namespace sham::detect {

enum class Strategy {
  kSerial,    // Algorithm 1 as printed (no index)
  kIndexed,   // length-bucketed index, single thread
  kParallel,  // length-bucketed index, references sharded over a pool
  kSkeleton,  // skeleton-hash candidate index + exact verification
};

[[nodiscard]] std::string_view strategy_name(Strategy strategy) noexcept;
[[nodiscard]] std::optional<Strategy> parse_strategy(std::string_view name) noexcept;

struct EngineOptions {
  Strategy strategy = Strategy::kParallel;
  /// Worker threads for kParallel; 0 means hardware_concurrency.
  std::size_t threads = 0;
  /// Reference-list shards per worker thread (load balancing granularity;
  /// more shards smooth out skewed length buckets at a small merge cost).
  std::size_t shards_per_thread = 4;
};

/// One detection run: references (exactly one of the two spans may be
/// non-empty — ASCII reference names or decoded Unicode labels), the IDN
/// set, and optional per-request overrides of the engine's defaults.
struct DetectRequest {
  std::span<const std::string> references{};                 // ASCII (LDH) names
  std::span<const unicode::U32String> unicode_references{};  // non-Latin refs
  std::span<const IdnEntry> idns{};
  std::optional<Strategy> strategy{};     // overrides EngineOptions::strategy
  std::optional<std::size_t> threads{};   // overrides EngineOptions::threads
};

struct DetectResponse {
  std::vector<Match> matches;  // stable (reference_index, idn_index) order
  DetectionStats stats;
};

class Engine {
 public:
  /// The database must outlive the engine.
  explicit Engine(const homoglyph::HomoglyphDb& db, EngineOptions options = {})
      : db_{&db}, options_{options} {}

  [[nodiscard]] const EngineOptions& options() const noexcept { return options_; }

  /// Run Algorithm 1 under the requested strategy. Throws
  /// std::invalid_argument if both reference spans are non-empty.
  [[nodiscard]] DetectResponse detect(const DetectRequest& request) const;

 private:
  template <typename RefString>
  [[nodiscard]] DetectResponse run(std::span<const RefString> references,
                                   std::span<const IdnEntry> idns, Strategy strategy,
                                   std::size_t threads) const;

  const homoglyph::HomoglyphDb* db_;
  EngineOptions options_;
};

}  // namespace sham::detect
