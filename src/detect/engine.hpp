// The detection engine: the single detect(DetectRequest) entry point over
// Algorithm 1. The old detect / detect_indexed / detect_unicode triplet of
// HomographDetector is gone — every list-vs-list caller goes through here.
//
// Execution strategies:
//   kSerial    Algorithm 1 as printed — outer loop over references, inner
//              loop over all IDNs, restricted to equal lengths;
//   kIndexed   length-bucketed IDN index built once, serial scan;
//   kParallel  the indexed scan sharded over the reference list on a
//              util::ThreadPool;
//   kSkeleton  one side of the join bucketed by confusable-closure
//              skeleton hash (skeleton_index.hpp); the other side costs
//              one skeleton computation plus one bucket probe per label,
//              and every candidate is re-verified with the exact
//              per-character check. Which side gets indexed is the *join
//              direction* (SkeletonJoin): forward buckets the IDNs and
//              streams references; inverted buckets the references and
//              streams IDNs (the many-references case). kAuto picks so
//              build cost scales with min(refs, idns), preferring a
//              side that is already cached. Shards over the streamed
//              side like kParallel when threads permit.
//
// Caching: the engine owns its indexes. With EngineOptions::cache (the
// default) it keeps the last-built skeleton/length index keyed by a
// content fingerprint of the label set plus the HomoglyphDb generation,
// and a whole-response memo for the exact (references, idns, generation,
// strategy, threads, join) query. Repeated queries against a stable zone
// snapshot therefore pay the index build once; when the database grows
// (HomoglyphDb::apply_update / update_with_new_characters) the cached
// skeleton index is patched incrementally — only entries whose labels
// contain a code point whose canonical representative moved are rehashed.
// Strategy::kSerial never touches the cache (it is the ground-truth
// baseline the test suite compares everything against).
//
// Const-safety: detect() stays const — cache state lives behind a mutex
// in a heap-allocated slot, published indexes are immutable shared_ptrs
// (copy-on-write updates), so concurrent detect() calls on one Engine
// are safe.
//
// Determinism: every strategy and every cache state (cold, warm,
// post-incremental-update, inverted join) produces the same match list
// in the same (reference_index, idn_index) order. The parallel path
// shards the streamed side into contiguous ascending ranges, collects
// one Match vector plus one counter set per shard (no shared mutable
// state, no atomics on the hot path), and merges the shards in shard
// order; the inverted join additionally restores (reference_index,
// idn_index) order with a final sort. DetectionStats doubles as the
// observability layer: per-stage wall-clock times, per-shard candidate
// counts, and cache hit/rebuild/update counters (see detector.hpp for
// the exact aggregation semantics).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "detect/detector.hpp"
#include "homoglyph/homoglyph_db.hpp"
#include "unicode/codepoint.hpp"

namespace sham::db {
class DbArtifact;
}  // namespace sham::db

namespace sham::detect {

enum class Strategy {
  kSerial,    // Algorithm 1 as printed (no index)
  kIndexed,   // length-bucketed index, single thread
  kParallel,  // length-bucketed index, references sharded over a pool
  kSkeleton,  // skeleton-hash candidate index + exact verification
};

/// Join direction for Strategy::kSkeleton (which side gets indexed).
enum class SkeletonJoin {
  kAuto,            // cheaper side: cached > stable > smaller (see engine.cpp)
  kIdnIndex,        // forward: bucket IDNs, stream references
  kReferenceIndex,  // inverted: bucket references, stream IDNs
};

[[nodiscard]] std::string_view strategy_name(Strategy strategy) noexcept;
[[nodiscard]] std::optional<Strategy> parse_strategy(std::string_view name) noexcept;

struct EngineOptions {
  Strategy strategy = Strategy::kParallel;
  /// Worker threads for kParallel; 0 means hardware_concurrency.
  std::size_t threads = 0;
  /// Reference-list shards per worker thread (load balancing granularity;
  /// more shards smooth out skewed length buckets at a small merge cost).
  std::size_t shards_per_thread = 4;
  /// Keep indexes (and a single-query response memo) on the engine across
  /// detect() calls. Disable for one-shot engines or measurement code
  /// that needs every call to pay full cost.
  bool cache = true;
  /// Join direction for Strategy::kSkeleton.
  SkeletonJoin join = SkeletonJoin::kAuto;
  /// kAuto picks the inverted join only when
  ///   refs * inverted_join_ratio <= idns
  /// and the IDN-side index is neither cached nor looking stable — the
  /// margin keeps a reusable IDN index worth building near the break-even
  /// point.
  std::size_t inverted_join_ratio = 4;
  /// Response-memo LRU capacity: the last K distinct
  /// (references, idns, generation, strategy, threads, join) responses are
  /// kept, so rotating reference lists against one zone snapshot all hit.
  /// 0 disables the response memo (index caching is unaffected).
  std::size_t result_cache_capacity = 8;
  /// Split skeleton-index buckets holding more than this many labels by a
  /// secondary hash (0 = never split) — bounds verification cost when many
  /// labels share one skeleton. Applies to engine-built skeleton indexes.
  std::size_t skeleton_bucket_cap = 64;
};

/// One detection run: references (exactly one of the two spans may be
/// non-empty — ASCII reference names or decoded Unicode labels), the IDN
/// set, and optional per-request overrides of the engine's defaults.
/// ASCII `references` must be pure ASCII: non-ASCII bytes are rejected
/// with std::invalid_argument (put such labels in unicode_references —
/// byte-wise matching of multi-byte UTF-8 would silently diverge from
/// the per-code-point semantics of Algorithm 1). Zero-length reference
/// labels are rejected the same way: an empty label is never a domain
/// label, and letting it through would hash an empty skeleton stream.
/// See validate_request for the exact rules — they hold identically under
/// all four strategies and through the serving layer.
struct DetectRequest {
  std::span<const std::string> references{};                 // ASCII (LDH) names
  std::span<const unicode::U32String> unicode_references{};  // non-Latin refs
  std::span<const IdnEntry> idns{};
  std::optional<Strategy> strategy{};       // overrides EngineOptions::strategy
  std::optional<std::size_t> threads{};     // overrides EngineOptions::threads
  std::optional<SkeletonJoin> join{};       // overrides EngineOptions::join
};

struct DetectResponse {
  std::vector<Match> matches;  // stable (reference_index, idn_index) order
  DetectionStats stats;
};

/// Uniform boundary validation, shared by every strategy and by the
/// serving layer (serve::DetectionServer validates at admission time with
/// this exact function). Throws std::invalid_argument when
///   - both reference spans are non-empty (ambiguous request),
///   - an ASCII reference contains a non-ASCII byte, or
///   - any reference label (ASCII or Unicode) is zero-length.
/// A well-formed request with no references or no IDNs passes — detect()
/// short-circuits it to an empty response with zeroed stats.
void validate_request(const DetectRequest& request);

/// Content fingerprint of a label set — the key the engine caches indexes
/// under, exposed so the serving layer can group same-snapshot requests
/// (fingerprint + HomoglyphDb generation) without duplicating the scheme.
/// Equal contents fingerprint equally regardless of buffer address; the
/// three overloads are type-tagged so payload-identical sets of different
/// kinds never collide.
[[nodiscard]] std::uint64_t label_set_fingerprint(
    std::span<const IdnEntry> idns) noexcept;
[[nodiscard]] std::uint64_t label_set_fingerprint(
    std::span<const std::string> references) noexcept;
[[nodiscard]] std::uint64_t label_set_fingerprint(
    std::span<const unicode::U32String> references) noexcept;

class Engine {
 public:
  /// The database must outlive the engine. The engine observes database
  /// growth through HomoglyphDb::generation(); mutating the database
  /// in place invalidates (incrementally updates) cached indexes on the
  /// next detect() call.
  explicit Engine(const homoglyph::HomoglyphDb& db, EngineOptions options = {});
  ~Engine();
  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;

  /// Zero-parse cold start: mmap a DB artifact (db::write_db_file) and
  /// run against its view-mode homoglyph database — the engine owns both
  /// the mapping and the adopted database, so no external lifetime to
  /// manage. When the artifact carries a reference-side skeleton index,
  /// the engine's cache is pre-seeded with it (keyed by the artifact's
  /// reference fingerprint and generation stamp), so the first
  /// Strategy::kSkeleton call against the artifact's reference list skips
  /// the index build entirely. Throws std::runtime_error on a corrupt or
  /// incompatible artifact.
  static Engine from_db_file(const std::string& path, EngineOptions options = {});
  static Engine from_db_artifact(std::shared_ptr<const db::DbArtifact> artifact,
                                 EngineOptions options = {});

  /// The loaded artifact (null for database-backed engines) — exposes the
  /// serialized reference list so callers can probe with the exact set
  /// the pre-seeded index covers.
  [[nodiscard]] const db::DbArtifact* artifact() const noexcept {
    return artifact_.get();
  }

  [[nodiscard]] const EngineOptions& options() const noexcept { return options_; }

  /// The homoglyph database this engine detects with (the adopted
  /// artifact view for from_db_file engines). Const queries are
  /// thread-safe; synthetic-zone generators draw substitution characters
  /// from the same database the fleet detects with.
  [[nodiscard]] const homoglyph::HomoglyphDb& db() const noexcept { return *db_; }

  /// Run Algorithm 1 under the requested strategy. Applies
  /// validate_request() first (std::invalid_argument on malformed input,
  /// identically across strategies); empty references or IDNs then
  /// short-circuit to an empty response with fully-zeroed stats.
  [[nodiscard]] DetectResponse detect(const DetectRequest& request) const;

 private:
  struct CacheState;

  template <typename RefString>
  [[nodiscard]] DetectResponse run(std::span<const RefString> references,
                                   std::span<const IdnEntry> idns, Strategy strategy,
                                   std::size_t threads, SkeletonJoin join) const;

  const homoglyph::HomoglyphDb* db_;
  EngineOptions options_;
  /// Heap slot so the Engine stays movable (the mutex lives inside);
  /// null when options_.cache is false.
  std::unique_ptr<CacheState> cache_;
  /// Set only by from_db_artifact: the mapping keepalive and the heap-
  /// allocated view database db_ points at (stable across moves).
  std::shared_ptr<const db::DbArtifact> artifact_;
  std::unique_ptr<const homoglyph::HomoglyphDb> owned_db_;
};

}  // namespace sham::detect
