// IDN homograph detection (Section 3.1, Algorithm 1 and Figure 2).
//
// Given a reference list of popular domain names and the registered IDNs
// of a TLD (both with the TLD part removed), mark an IDN as a homograph of
// a reference name when the two strings have equal length and every
// character position either matches exactly or is a pair in the homoglyph
// database. Unlike image- or OCR-based approaches, the output pinpoints
// the differential characters, enabling the countermeasure UI of
// Section 7.2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "homoglyph/homoglyph_db.hpp"
#include "unicode/codepoint.hpp"

namespace sham::detect {

/// One registered IDN, in both wire (ACE) and decoded forms, TLD removed.
struct IdnEntry {
  std::string ace;                 // e.g. "xn--ggle-0nda"
  unicode::U32String unicode;      // decoded U-label sequence
};

/// A character position where the IDN differs from the reference.
struct DiffChar {
  std::size_t index = 0;
  unicode::CodePoint idn_char = 0;
  unicode::CodePoint ref_char = 0;
  homoglyph::Source source = homoglyph::Source::kUc;

  friend bool operator==(const DiffChar&, const DiffChar&) = default;
};

struct Match {
  std::size_t reference_index = 0;  // into the reference list
  std::size_t idn_index = 0;        // into the IDN list
  std::vector<DiffChar> diffs;      // nonempty (all-equal strings are not IDNs)

  friend bool operator==(const Match&, const Match&) = default;
};

/// Run metrics, well-defined under both serial and parallel execution:
/// counters (`length_bucket_hits`, `char_comparisons`) are accumulated
/// per shard and summed at merge time, so their totals are independent of
/// the shard count; every `*_seconds` field is wall-clock time of the
/// stage named (never a sum over shards), so under parallel execution
/// match_seconds shrinks with thread count while the counters do not move.
struct DetectionStats {
  /// Schema version of the to_json() serialization. Bump whenever a field
  /// is renamed, removed, or changes meaning (adding fields is
  /// backward-compatible and does not require a bump). Consumers — the CLI
  /// `check --stats-json`, the serve stats endpoint, and the BENCH_*.json
  /// artifacts — key on this to stay in sync.
  static constexpr std::uint32_t kSchemaVersion = 1;

  std::uint64_t length_bucket_hits = 0;  // candidate (ref, IDN) pairs examined
  std::uint64_t char_comparisons = 0;
  double seconds = 0.0;                  // wall clock for the whole run

  // Per-stage breakdown, filled by detect::Engine (zero when the run had
  // no such stage, e.g. no index build under Strategy::kSerial).
  double index_build_seconds = 0.0;  // length-bucketed IDN index construction
  double match_seconds = 0.0;        // reference scan (all shards, wall clock)
  double merge_seconds = 0.0;        // deterministic shard merge
  std::size_t threads_used = 1;
  std::size_t shards_used = 1;
  /// Candidate pairs examined by each shard, in shard (= reference range)
  /// order; sums to length_bucket_hits. Size shards_used for engine runs.
  std::vector<std::uint64_t> shard_candidates;

  // Skeleton-index observability (Strategy::kSkeleton only; zero/empty
  // under other strategies). Under kSkeleton, length_bucket_hits counts
  // bucket-probe candidates (== skeleton_candidates), so the counters
  // above keep their "candidates examined" meaning across strategies.
  double skeleton_build_seconds = 0.0;    // skeleton-index construction
  std::uint64_t skeleton_candidates = 0;  // bucket-probe candidate pairs
  std::uint64_t skeleton_rejected = 0;    // candidates killed by exact verify
  std::size_t skeleton_buckets = 0;       // distinct skeleton-hash buckets
  /// Bucket-occupancy histogram: slot i = buckets holding i+1 IDNs, last
  /// slot aggregates the tail (see SkeletonIndex::occupancy_histogram).
  std::vector<std::uint64_t> skeleton_bucket_histogram;

  // Engine cache observability (zero under Strategy::kSerial and for
  // engines constructed with EngineOptions::cache = false).
  std::uint64_t index_cache_hits = 0;      // index reused as-is (build skipped)
  std::uint64_t index_cache_rebuilds = 0;  // index built from scratch this call
  std::uint64_t index_cache_updates = 0;   // index patched incrementally
  std::uint64_t index_entries_rehashed = 0;  // entries touched by the patch
  std::uint64_t result_cache_hits = 0;  // whole response served from the memo
  /// Entries resident in the response LRU after this call (bounded by
  /// EngineOptions::result_cache_capacity).
  std::uint64_t result_cache_entries = 0;
  double index_update_seconds = 0.0;    // wall clock of the incremental patch
  /// HomoglyphDb::generation() observed at query time, and the generation
  /// the served index was (re)built or patched up to. Equal after every
  /// call; a gap would mean a stale index was served.
  std::uint64_t db_generation = 0;
  std::uint64_t index_generation = 0;
  /// True when the skeleton join ran inverted (references bucketed, IDNs
  /// streamed) — see EngineOptions::join.
  bool inverted_join = false;

  /// Fraction of skeleton candidates the exact per-character verification
  /// rejected (closure over-approximation + hash collisions).
  [[nodiscard]] double skeleton_rejection_rate() const noexcept {
    return skeleton_candidates == 0
               ? 0.0
               : static_cast<double>(skeleton_rejected) /
                     static_cast<double>(skeleton_candidates);
  }

  /// One JSON object covering every field above plus kSchemaVersion (as
  /// "schema_version"). The single serialization used by the CLI, the
  /// serve stats endpoint, and the bench artifacts. `indent` as in
  /// util::JsonWriter (0 = compact).
  [[nodiscard]] std::string to_json(int indent = 0) const;
};

/// Single-pair matcher used by detect::Engine and by callers that probe
/// one (reference, IDN) pair at a time (candidate generation, warnings).
///
/// List-vs-list detection goes through detect::Engine exclusively — the
/// detect / detect_indexed / detect_unicode wrappers that used to live
/// here were removed once every caller migrated to
/// Engine::detect(DetectRequest).
class HomographDetector {
 public:
  /// The database must outlive the detector.
  explicit HomographDetector(const homoglyph::HomoglyphDb& db) : db_{&db} {}

  /// Match a single (reference, IDN) pair; empty diffs => no match
  /// (returns true only for genuine homograph matches with ≥1 diff).
  [[nodiscard]] bool match_pair(std::string_view reference,
                                const unicode::U32String& idn,
                                std::vector<DiffChar>* diffs = nullptr) const;

  /// Non-Latin references (Sections 2.2 and 7.1: "an attacker can create
  /// an IDN homograph of a non-Latin IDN", e.g. エ業大学 spoofing
  /// 工業大学). Same algorithm with a Unicode reference string.
  [[nodiscard]] bool match_pair(const unicode::U32String& reference,
                                const unicode::U32String& idn,
                                std::vector<DiffChar>* diffs = nullptr) const;

 private:
  const homoglyph::HomoglyphDb* db_;
};

/// Baseline: UC-skeleton matching in the style of prior character-based
/// work (Quinkert et al.) — an IDN is a homograph when its UTS #39
/// skeleton equals the reference string. Does not pinpoint differential
/// characters and cannot use SimChar pairs.
[[nodiscard]] std::vector<Match> detect_by_skeleton(
    const unicode::ConfusablesDb& uc, std::span<const std::string> references,
    std::span<const IdnEntry> idns, DetectionStats* stats = nullptr);

}  // namespace sham::detect
