#include "detect/detector.hpp"

#include <algorithm>
#include <unordered_map>

#include "detect/engine.hpp"
#include "util/stopwatch.hpp"

namespace sham::detect {

namespace {

template <typename RefString>
bool match_impl(const homoglyph::HomoglyphDb& db, const RefString& reference,
                const unicode::U32String& idn, std::vector<DiffChar>* diffs) {
  if (reference.size() != idn.size()) return false;
  if (diffs != nullptr) diffs->clear();
  bool any_diff = false;
  for (std::size_t i = 0; i < idn.size(); ++i) {
    const auto ref_char = static_cast<unicode::CodePoint>(
        static_cast<std::make_unsigned_t<typename RefString::value_type>>(reference[i]));
    const auto idn_char = idn[i];
    if (ref_char == idn_char) continue;
    const auto source = db.source_of(idn_char, ref_char);
    if (!source) return false;
    any_diff = true;
    if (diffs != nullptr) diffs->push_back({i, idn_char, ref_char, *source});
  }
  return any_diff;
}

}  // namespace

bool HomographDetector::match_pair(std::string_view reference,
                                   const unicode::U32String& idn,
                                   std::vector<DiffChar>* diffs) const {
  return match_impl(*db_, reference, idn, diffs);
}

bool HomographDetector::match_pair(const unicode::U32String& reference,
                                   const unicode::U32String& idn,
                                   std::vector<DiffChar>* diffs) const {
  return match_impl(*db_, reference, idn, diffs);
}

// The detect / detect_indexed / detect_unicode triplet below is kept as
// thin deprecated wrappers over detect::Engine so existing callers compile
// unchanged; new code should construct an Engine and call detect().

std::vector<Match> HomographDetector::detect_unicode(
    std::span<const unicode::U32String> references, std::span<const IdnEntry> idns,
    DetectionStats* stats) const {
  const Engine engine{*db_, {.strategy = Strategy::kIndexed, .threads = 1, .cache = false}};
  auto response = engine.detect({.unicode_references = references, .idns = idns});
  if (stats != nullptr) *stats = std::move(response.stats);
  return std::move(response.matches);
}

std::vector<Match> HomographDetector::detect(std::span<const std::string> references,
                                             std::span<const IdnEntry> idns,
                                             DetectionStats* stats) const {
  const Engine engine{*db_, {.strategy = Strategy::kSerial, .threads = 1, .cache = false}};
  auto response = engine.detect({.references = references, .idns = idns});
  if (stats != nullptr) *stats = std::move(response.stats);
  return std::move(response.matches);
}

std::vector<Match> HomographDetector::detect_indexed(
    std::span<const std::string> references, std::span<const IdnEntry> idns,
    DetectionStats* stats) const {
  const Engine engine{*db_, {.strategy = Strategy::kIndexed, .threads = 1, .cache = false}};
  auto response = engine.detect({.references = references, .idns = idns});
  if (stats != nullptr) *stats = std::move(response.stats);
  return std::move(response.matches);
}

std::vector<Match> detect_by_skeleton(const unicode::ConfusablesDb& uc,
                                      std::span<const std::string> references,
                                      std::span<const IdnEntry> idns,
                                      DetectionStats* stats) {
  util::Stopwatch watch;
  DetectionStats local;

  std::unordered_map<std::string, std::vector<std::size_t>> ref_by_skeleton;
  for (std::size_t r = 0; r < references.size(); ++r) {
    unicode::U32String u;
    u.reserve(references[r].size());
    for (const char c : references[r]) {
      u.push_back(static_cast<unsigned char>(c));
    }
    const auto skel = uc.skeleton(u);
    std::string k;
    for (const auto cp : skel) {
      k += std::to_string(cp);
      k += ',';
    }
    ref_by_skeleton[k].push_back(r);
  }

  std::vector<Match> matches;
  for (std::size_t x = 0; x < idns.size(); ++x) {
    const auto skel = uc.skeleton(idns[x].unicode);
    std::string k;
    for (const auto cp : skel) {
      k += std::to_string(cp);
      k += ',';
    }
    const auto it = ref_by_skeleton.find(k);
    if (it == ref_by_skeleton.end()) continue;
    for (const auto r : it->second) {
      // Skip identical strings (a registered ASCII name is not an IDN, but
      // guard against caller-supplied duplicates).
      ++local.length_bucket_hits;
      matches.push_back({r, x, {}});
    }
  }
  local.seconds = watch.seconds();
  if (stats != nullptr) *stats = local;
  return matches;
}

}  // namespace sham::detect
