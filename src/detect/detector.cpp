#include "detect/detector.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/json.hpp"
#include "util/stopwatch.hpp"

namespace sham::detect {

namespace {

template <typename RefString>
bool match_impl(const homoglyph::HomoglyphDb& db, const RefString& reference,
                const unicode::U32String& idn, std::vector<DiffChar>* diffs) {
  if (reference.size() != idn.size()) return false;
  if (diffs != nullptr) diffs->clear();
  bool any_diff = false;
  for (std::size_t i = 0; i < idn.size(); ++i) {
    const auto ref_char = static_cast<unicode::CodePoint>(
        static_cast<std::make_unsigned_t<typename RefString::value_type>>(reference[i]));
    const auto idn_char = idn[i];
    if (ref_char == idn_char) continue;
    const auto source = db.source_of(idn_char, ref_char);
    if (!source) return false;
    any_diff = true;
    if (diffs != nullptr) diffs->push_back({i, idn_char, ref_char, *source});
  }
  return any_diff;
}

}  // namespace

bool HomographDetector::match_pair(std::string_view reference,
                                   const unicode::U32String& idn,
                                   std::vector<DiffChar>* diffs) const {
  return match_impl(*db_, reference, idn, diffs);
}

bool HomographDetector::match_pair(const unicode::U32String& reference,
                                   const unicode::U32String& idn,
                                   std::vector<DiffChar>* diffs) const {
  return match_impl(*db_, reference, idn, diffs);
}

std::string DetectionStats::to_json(int indent) const {
  util::JsonWriter w{indent};
  w.begin_object();
  w.field("schema_version", kSchemaVersion);
  w.field("seconds", seconds);
  w.field("length_bucket_hits", length_bucket_hits);
  w.field("char_comparisons", char_comparisons);
  w.field("index_build_seconds", index_build_seconds);
  w.field("match_seconds", match_seconds);
  w.field("merge_seconds", merge_seconds);
  w.field("threads_used", static_cast<std::uint64_t>(threads_used));
  w.field("shards_used", static_cast<std::uint64_t>(shards_used));
  w.key("shard_candidates").begin_array();
  for (const auto c : shard_candidates) w.value(c);
  w.end_array();
  w.field("skeleton_build_seconds", skeleton_build_seconds);
  w.field("skeleton_candidates", skeleton_candidates);
  w.field("skeleton_rejected", skeleton_rejected);
  w.field("skeleton_rejection_rate", skeleton_rejection_rate());
  w.field("skeleton_buckets", static_cast<std::uint64_t>(skeleton_buckets));
  w.key("skeleton_bucket_histogram").begin_array();
  for (const auto n : skeleton_bucket_histogram) w.value(n);
  w.end_array();
  w.field("index_cache_hits", index_cache_hits);
  w.field("index_cache_rebuilds", index_cache_rebuilds);
  w.field("index_cache_updates", index_cache_updates);
  w.field("index_entries_rehashed", index_entries_rehashed);
  w.field("index_update_seconds", index_update_seconds);
  w.field("result_cache_hits", result_cache_hits);
  w.field("result_cache_entries", result_cache_entries);
  w.field("db_generation", db_generation);
  w.field("index_generation", index_generation);
  w.field("inverted_join", inverted_join);
  w.end_object();
  return w.str();
}

std::vector<Match> detect_by_skeleton(const unicode::ConfusablesDb& uc,
                                      std::span<const std::string> references,
                                      std::span<const IdnEntry> idns,
                                      DetectionStats* stats) {
  util::Stopwatch watch;
  DetectionStats local;

  std::unordered_map<std::string, std::vector<std::size_t>> ref_by_skeleton;
  for (std::size_t r = 0; r < references.size(); ++r) {
    unicode::U32String u;
    u.reserve(references[r].size());
    for (const char c : references[r]) {
      u.push_back(static_cast<unsigned char>(c));
    }
    const auto skel = uc.skeleton(u);
    std::string k;
    for (const auto cp : skel) {
      k += std::to_string(cp);
      k += ',';
    }
    ref_by_skeleton[k].push_back(r);
  }

  std::vector<Match> matches;
  for (std::size_t x = 0; x < idns.size(); ++x) {
    const auto skel = uc.skeleton(idns[x].unicode);
    std::string k;
    for (const auto cp : skel) {
      k += std::to_string(cp);
      k += ',';
    }
    const auto it = ref_by_skeleton.find(k);
    if (it == ref_by_skeleton.end()) continue;
    for (const auto r : it->second) {
      // Skip identical strings (a registered ASCII name is not an IDN, but
      // guard against caller-supplied duplicates).
      ++local.length_bucket_hits;
      matches.push_back({r, x, {}});
    }
  }
  local.seconds = watch.seconds();
  if (stats != nullptr) *stats = local;
  return matches;
}

}  // namespace sham::detect
