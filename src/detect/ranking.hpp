// Visual triage of detector output: rank matches by total pixel distance
// between the IDN and the reference, so analysts see the most deceptive
// homographs first (a ∆ = 0 whole-glyph clone above an accented variant).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "detect/detector.hpp"
#include "font/font_source.hpp"

namespace sham::detect {

struct RankedMatch {
  Match match;
  /// Sum of glyph ∆ over the differing positions; 0 means every
  /// substituted character renders pixel-identically to the original.
  int total_visual_delta = 0;
};

/// Total glyph distance between an IDN and a same-length reference at the
/// differing positions; std::nullopt when the font lacks a needed glyph.
[[nodiscard]] std::optional<int> visual_distance(const font::FontSource& font,
                                                 std::string_view reference,
                                                 const unicode::U32String& idn);

/// Rank `matches` most-deceptive (smallest total ∆) first. Matches whose
/// glyphs the font cannot render sort last, keeping their relative order.
[[nodiscard]] std::vector<RankedMatch> rank_matches(
    const font::FontSource& font, std::span<const Match> matches,
    std::span<const std::string> references, std::span<const IdnEntry> idns);

}  // namespace sham::detect
