#include "detect/skeleton_index.hpp"

#include <algorithm>
#include <type_traits>

namespace sham::detect {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a_u32(std::uint64_t h, std::uint32_t v) noexcept {
  for (int shift = 0; shift < 32; shift += 8) {
    h ^= (v >> shift) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

template <typename Char>
constexpr unicode::CodePoint to_cp(Char c) noexcept {
  return static_cast<unicode::CodePoint>(static_cast<std::make_unsigned_t<Char>>(c));
}

// Label projections: IdnEntry hashes its decoded Unicode form; reference
// label lists hash as-is.
const unicode::U32String& label_of(const IdnEntry& entry) { return entry.unicode; }
const std::string& label_of(const std::string& label) { return label; }
const unicode::U32String& label_of(const unicode::U32String& label) { return label; }

}  // namespace

template <typename String>
std::uint64_t SkeletonIndex::hash_impl(const String& label) const {
  // Length-prefixed so equal-hash buckets are (length, skeleton) buckets up
  // to genuine FNV collisions (which verification absorbs).
  std::uint64_t h = fnv1a_u32(kFnvOffset, static_cast<std::uint32_t>(label.size()));
  for (const auto c : label) {
    h = fnv1a_u32(h, db_->canonical(to_cp(c)));
  }
  return h & hash_mask_;
}

template <typename Label>
void SkeletonIndex::build(std::span<const Label> labels) {
  entry_hashes_.resize(labels.size());
  buckets_.reserve(labels.size());
  std::vector<unicode::CodePoint> uniq;
  for (std::size_t x = 0; x < labels.size(); ++x) {
    const auto& label = label_of(labels[x]);
    const auto h = hash_impl(label);
    entry_hashes_[x] = h;
    auto& bucket = buckets_[h];
    if (bucket.empty()) ++non_empty_buckets_;
    bucket.push_back(x);  // ascending: x is monotonic

    uniq.clear();
    for (const auto c : label) uniq.push_back(to_cp(c));
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (const auto cp : uniq) entries_by_cp_[cp].push_back(x);
  }
}

template <typename Label>
std::size_t SkeletonIndex::rehash_impl(std::span<const Label> labels,
                                       std::span<const unicode::CodePoint> changed) {
  std::vector<std::size_t> affected;
  for (const auto cp : changed) {
    const auto it = entries_by_cp_.find(cp);
    if (it == entries_by_cp_.end()) continue;
    affected.insert(affected.end(), it->second.begin(), it->second.end());
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()), affected.end());

  for (const auto x : affected) {
    const auto old_hash = entry_hashes_[x];
    const auto new_hash = hash_impl(label_of(labels[x]));
    if (new_hash == old_hash) continue;
    auto& old_bucket = buckets_[old_hash];
    old_bucket.erase(std::find(old_bucket.begin(), old_bucket.end(), x));
    if (old_bucket.empty()) --non_empty_buckets_;  // stays in the table, empty
    auto& new_bucket = buckets_[new_hash];
    if (new_bucket.empty()) ++non_empty_buckets_;
    new_bucket.insert(std::upper_bound(new_bucket.begin(), new_bucket.end(), x), x);
    entry_hashes_[x] = new_hash;
  }
  return affected.size();
}

SkeletonIndex::SkeletonIndex(const homoglyph::HomoglyphDb& db,
                             std::span<const IdnEntry> idns,
                             SkeletonIndexOptions options)
    : db_{&db},
      hash_mask_{options.hash_bits >= 64 ? ~0ULL
                                         : (1ULL << options.hash_bits) - 1} {
  build(idns);
}

SkeletonIndex::SkeletonIndex(const homoglyph::HomoglyphDb& db,
                             std::span<const std::string> labels,
                             SkeletonIndexOptions options)
    : db_{&db},
      hash_mask_{options.hash_bits >= 64 ? ~0ULL
                                         : (1ULL << options.hash_bits) - 1} {
  build(labels);
}

SkeletonIndex::SkeletonIndex(const homoglyph::HomoglyphDb& db,
                             std::span<const unicode::U32String> labels,
                             SkeletonIndexOptions options)
    : db_{&db},
      hash_mask_{options.hash_bits >= 64 ? ~0ULL
                                         : (1ULL << options.hash_bits) - 1} {
  build(labels);
}

std::uint64_t SkeletonIndex::hash_of(std::string_view reference) const {
  return hash_impl(reference);
}

std::uint64_t SkeletonIndex::hash_of(const unicode::U32String& reference) const {
  return hash_impl(reference);
}

std::size_t SkeletonIndex::rehash_changed(std::span<const IdnEntry> labels,
                                          std::span<const unicode::CodePoint> changed) {
  return rehash_impl(labels, changed);
}

std::size_t SkeletonIndex::rehash_changed(std::span<const std::string> labels,
                                          std::span<const unicode::CodePoint> changed) {
  return rehash_impl(labels, changed);
}

std::size_t SkeletonIndex::rehash_changed(std::span<const unicode::U32String> labels,
                                          std::span<const unicode::CodePoint> changed) {
  return rehash_impl(labels, changed);
}

std::vector<std::uint64_t> SkeletonIndex::occupancy_histogram(
    std::size_t max_slots) const {
  std::vector<std::uint64_t> histogram(max_slots, 0);
  if (max_slots == 0) return histogram;
  for (const auto& entry : buckets_) {
    // Vacated buckets (rehash_changed moved every entry out) stay in the
    // table; size() - 1 would underflow for them.
    if (entry.second.empty()) continue;
    const auto slot = std::min(entry.second.size() - 1, max_slots - 1);
    ++histogram[slot];
  }
  return histogram;
}

}  // namespace sham::detect
