#include "detect/skeleton_index.hpp"

#include <algorithm>
#include <type_traits>

namespace sham::detect {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
/// Offset basis for the secondary (bucket-splitting) hash stream — any
/// value distinct from kFnvOffset gives an independent hash family.
constexpr std::uint64_t kFnv2Offset = 0x84222325cbf29ce4ULL;

constexpr std::uint64_t fnv1a_u32(std::uint64_t h, std::uint32_t v) noexcept {
  for (int shift = 0; shift < 32; shift += 8) {
    h ^= (v >> shift) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

/// Extra diffusion for the secondary stream: the primary already consumes
/// the raw canonical values, so the secondary consumes a mixed image of
/// them — labels colliding under the (possibly hash_bits-truncated)
/// primary separate here unless their canonical streams are identical.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

template <typename Char>
constexpr unicode::CodePoint to_cp(Char c) noexcept {
  return static_cast<unicode::CodePoint>(static_cast<std::make_unsigned_t<Char>>(c));
}

// Label projections: IdnEntry hashes its decoded Unicode form; reference
// label lists hash as-is.
const unicode::U32String& label_of(const IdnEntry& entry) { return entry.unicode; }
const std::string& label_of(const std::string& label) { return label; }
const unicode::U32String& label_of(const unicode::U32String& label) { return label; }

}  // namespace

template <typename String>
std::uint64_t SkeletonIndex::hash_impl(const String& label) const {
  // Length-prefixed so equal-hash buckets are (length, skeleton) buckets up
  // to genuine FNV collisions (which verification absorbs).
  std::uint64_t h = fnv1a_u32(kFnvOffset, static_cast<std::uint32_t>(label.size()));
  for (const auto c : label) {
    h = fnv1a_u32(h, db_->canonical(to_cp(c)));
  }
  return h & hash_mask_;
}

template <typename String>
std::uint64_t SkeletonIndex::hash2_impl(const String& label) const {
  // Full width (never masked by hash_bits): the secondary hash must keep
  // separating labels precisely when the primary stopped doing so.
  std::uint64_t h = fnv1a_u32(kFnv2Offset, static_cast<std::uint32_t>(label.size()));
  for (const auto c : label) {
    const auto mixed = mix64(db_->canonical(to_cp(c)));
    h = fnv1a_u32(h, static_cast<std::uint32_t>(mixed));
    h = fnv1a_u32(h, static_cast<std::uint32_t>(mixed >> 32));
  }
  return h;
}

void SkeletonIndex::refresh_split(Bucket& bucket) {
  const bool was_split = bucket.split;
  bucket.split = max_bucket_occupancy_ > 0 &&
                 bucket.entries.size() > max_bucket_occupancy_;
  if (bucket.split != was_split) split_buckets_ += bucket.split ? 1 : -1;
  bucket.children.clear();
  if (!bucket.split) return;
  for (const auto x : bucket.entries) {
    bucket.children[entry_h2_[x]].push_back(x);  // ascending: entries are
  }
}

template <typename Label>
void SkeletonIndex::build(std::span<const Label> labels) {
  entry_hashes_.resize(labels.size());
  if (max_bucket_occupancy_ > 0) entry_h2_.resize(labels.size());
  buckets_.reserve(labels.size());
  std::vector<unicode::CodePoint> uniq;
  for (std::size_t x = 0; x < labels.size(); ++x) {
    const auto& label = label_of(labels[x]);
    const auto h = hash_impl(label);
    entry_hashes_[x] = h;
    if (max_bucket_occupancy_ > 0) entry_h2_[x] = hash2_impl(label);
    auto& bucket = buckets_[h];
    if (bucket.entries.empty()) ++non_empty_buckets_;
    bucket.entries.push_back(x);  // ascending: x is monotonic

    uniq.clear();
    for (const auto c : label) uniq.push_back(to_cp(c));
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (const auto cp : uniq) entries_by_cp_[cp].push_back(x);
  }
  if (max_bucket_occupancy_ > 0) {
    for (auto& [h, bucket] : buckets_) refresh_split(bucket);
  }
}

template <typename Label>
std::size_t SkeletonIndex::rehash_impl(std::span<const Label> labels,
                                       std::span<const unicode::CodePoint> changed) {
  std::vector<std::size_t> affected;
  for (const auto cp : changed) {
    const auto it = entries_by_cp_.find(cp);
    if (it == entries_by_cp_.end()) continue;
    affected.insert(affected.end(), it->second.begin(), it->second.end());
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()), affected.end());

  std::vector<std::uint64_t> touched;
  for (const auto x : affected) {
    const auto old_hash = entry_hashes_[x];
    const auto new_hash = hash_impl(label_of(labels[x]));
    if (max_bucket_occupancy_ > 0) entry_h2_[x] = hash2_impl(label_of(labels[x]));
    if (new_hash == old_hash) {
      // Same primary bucket, but under a cap the secondary hash (hence the
      // child partition) may have moved.
      if (max_bucket_occupancy_ > 0) touched.push_back(old_hash);
      continue;
    }
    auto& old_bucket = buckets_[old_hash].entries;
    old_bucket.erase(std::find(old_bucket.begin(), old_bucket.end(), x));
    if (old_bucket.empty()) --non_empty_buckets_;  // stays in the table, empty
    auto& new_bucket = buckets_[new_hash].entries;
    if (new_bucket.empty()) ++non_empty_buckets_;
    new_bucket.insert(std::upper_bound(new_bucket.begin(), new_bucket.end(), x), x);
    entry_hashes_[x] = new_hash;
    if (max_bucket_occupancy_ > 0) {
      touched.push_back(old_hash);
      touched.push_back(new_hash);
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const auto h : touched) refresh_split(buckets_[h]);
  return affected.size();
}

SkeletonIndex::SkeletonIndex(const homoglyph::HomoglyphDb& db,
                             std::span<const IdnEntry> idns,
                             SkeletonIndexOptions options)
    : db_{&db},
      hash_mask_{options.hash_bits >= 64 ? ~0ULL
                                         : (1ULL << options.hash_bits) - 1},
      max_bucket_occupancy_{options.max_bucket_occupancy} {
  build(idns);
}

SkeletonIndex::SkeletonIndex(const homoglyph::HomoglyphDb& db,
                             std::span<const std::string> labels,
                             SkeletonIndexOptions options)
    : db_{&db},
      hash_mask_{options.hash_bits >= 64 ? ~0ULL
                                         : (1ULL << options.hash_bits) - 1},
      max_bucket_occupancy_{options.max_bucket_occupancy} {
  build(labels);
}

SkeletonIndex::SkeletonIndex(const homoglyph::HomoglyphDb& db,
                             std::span<const unicode::U32String> labels,
                             SkeletonIndexOptions options)
    : db_{&db},
      hash_mask_{options.hash_bits >= 64 ? ~0ULL
                                         : (1ULL << options.hash_bits) - 1},
      max_bucket_occupancy_{options.max_bucket_occupancy} {
  build(labels);
}

std::uint64_t SkeletonIndex::hash_of(std::string_view reference) const {
  return hash_impl(reference);
}

std::uint64_t SkeletonIndex::hash_of(const unicode::U32String& reference) const {
  return hash_impl(reference);
}

SkeletonHashes SkeletonIndex::hashes_of(std::string_view reference) const {
  return {hash_impl(reference),
          max_bucket_occupancy_ > 0 ? hash2_impl(reference) : 0};
}

SkeletonHashes SkeletonIndex::hashes_of(const unicode::U32String& reference) const {
  return {hash_impl(reference),
          max_bucket_occupancy_ > 0 ? hash2_impl(reference) : 0};
}

std::size_t SkeletonIndex::rehash_changed(std::span<const IdnEntry> labels,
                                          std::span<const unicode::CodePoint> changed) {
  return rehash_impl(labels, changed);
}

std::size_t SkeletonIndex::rehash_changed(std::span<const std::string> labels,
                                          std::span<const unicode::CodePoint> changed) {
  return rehash_impl(labels, changed);
}

std::size_t SkeletonIndex::rehash_changed(std::span<const unicode::U32String> labels,
                                          std::span<const unicode::CodePoint> changed) {
  return rehash_impl(labels, changed);
}

std::vector<std::uint64_t> SkeletonIndex::occupancy_histogram(
    std::size_t max_slots) const {
  std::vector<std::uint64_t> histogram(max_slots, 0);
  if (max_slots == 0) return histogram;
  for (const auto& entry : buckets_) {
    // Vacated buckets (rehash_changed moved every entry out) stay in the
    // table; size() - 1 would underflow for them.
    if (entry.second.entries.empty()) continue;
    if (entry.second.split) {
      // A split bucket's probe-visible units are its children — counting
      // them (not the parent union) is what shows the long tail shrink.
      for (const auto& [h2, child] : entry.second.children) {
        if (child.empty()) continue;
        ++histogram[std::min(child.size() - 1, max_slots - 1)];
      }
      continue;
    }
    const auto slot = std::min(entry.second.entries.size() - 1, max_slots - 1);
    ++histogram[slot];
  }
  return histogram;
}

}  // namespace sham::detect
