#include "detect/skeleton_index.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "kernels/kernels.hpp"

namespace sham::detect {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
/// Offset basis for the secondary (bucket-splitting) hash stream — any
/// value distinct from kFnvOffset gives an independent hash family.
constexpr std::uint64_t kFnv2Offset = 0x84222325cbf29ce4ULL;

/// Extra diffusion for the secondary stream: the primary already consumes
/// the raw canonical values, so the secondary consumes a mixed image of
/// them — labels colliding under the (possibly hash_bits-truncated)
/// primary separate here unless their canonical streams are identical.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

template <typename Char>
constexpr unicode::CodePoint to_cp(Char c) noexcept {
  return static_cast<unicode::CodePoint>(static_cast<std::make_unsigned_t<Char>>(c));
}

// Label projections: IdnEntry hashes its decoded Unicode form; reference
// label lists hash as-is.
const unicode::U32String& label_of(const IdnEntry& entry) { return entry.unicode; }
const std::string& label_of(const std::string& label) { return label; }
const unicode::U32String& label_of(const unicode::U32String& label) { return label; }

/// Materialize the u32 stream the primary hash consumes: [length,
/// canonical(c)...]. The length prefix is just the first stream value, so
/// feeding this to fnv1a_span reproduces the historical hash bit-exactly.
template <typename String>
void primary_stream(const homoglyph::HomoglyphDb& db, const String& label,
                    std::vector<std::uint32_t>& out) {
  out.clear();
  out.reserve(label.size() + 1);
  out.push_back(static_cast<std::uint32_t>(label.size()));
  for (const auto c : label) out.push_back(db.canonical(to_cp(c)));
}

/// The secondary stream: [length, lo(mix64(canonical)), hi(...), ...].
template <typename String>
void secondary_stream(const homoglyph::HomoglyphDb& db, const String& label,
                      std::vector<std::uint32_t>& out) {
  out.clear();
  out.reserve(2 * label.size() + 1);
  out.push_back(static_cast<std::uint32_t>(label.size()));
  for (const auto c : label) {
    const auto mixed = mix64(db.canonical(to_cp(c)));
    out.push_back(static_cast<std::uint32_t>(mixed));
    out.push_back(static_cast<std::uint32_t>(mixed >> 32));
  }
}

}  // namespace

template <typename String>
std::uint64_t SkeletonIndex::hash_impl(const String& label) const {
  // Length-prefixed so equal-hash buckets are (length, skeleton) buckets up
  // to genuine FNV collisions (which verification absorbs). The canonical
  // stream flows through the kernel in stack-buffer chunks — the chain
  // resumes from the previous flush's value, so chunking is exact (and the
  // path stays allocation-free and thread-safe for concurrent hash_of).
  std::array<std::uint32_t, 64> buf;
  std::size_t fill = 0;
  std::uint64_t h = kFnvOffset;
  buf[fill++] = static_cast<std::uint32_t>(label.size());
  for (const auto c : label) {
    if (fill == buf.size()) {
      h = kernels::fnv1a_span(h, buf.data(), fill);
      fill = 0;
    }
    buf[fill++] = db_->canonical(to_cp(c));
  }
  h = kernels::fnv1a_span(h, buf.data(), fill);
  return h & hash_mask_;
}

template <typename String>
std::uint64_t SkeletonIndex::hash2_impl(const String& label) const {
  // Full width (never masked by hash_bits): the secondary hash must keep
  // separating labels precisely when the primary stopped doing so.
  std::array<std::uint32_t, 64> buf;
  std::size_t fill = 0;
  std::uint64_t h = kFnv2Offset;
  buf[fill++] = static_cast<std::uint32_t>(label.size());
  for (const auto c : label) {
    if (fill + 2 > buf.size()) {
      h = kernels::fnv1a_span(h, buf.data(), fill);
      fill = 0;
    }
    const auto mixed = mix64(db_->canonical(to_cp(c)));
    buf[fill++] = static_cast<std::uint32_t>(mixed);
    buf[fill++] = static_cast<std::uint32_t>(mixed >> 32);
  }
  h = kernels::fnv1a_span(h, buf.data(), fill);
  return h;
}

void SkeletonIndex::refresh_split(Bucket& bucket) {
  const bool was_split = bucket.split;
  bucket.split = max_bucket_occupancy_ > 0 &&
                 bucket.entries.size() > max_bucket_occupancy_;
  if (bucket.split != was_split) split_buckets_ += bucket.split ? 1 : -1;
  bucket.children.clear();
  if (!bucket.split) return;
  for (const auto x : bucket.entries) {
    bucket.children[entry_h2_[x]].push_back(x);  // ascending: entries are
  }
}

template <typename Label>
void SkeletonIndex::build(std::span<const Label> labels) {
  const std::size_t n = labels.size();
  entry_hashes_.resize(n);
  if (max_bucket_occupancy_ > 0) entry_h2_.resize(n);
  buckets_.reserve(n);

  // Pass 1: hash four labels per kernel call — four independent FNV
  // chains, which the dispatch table runs in SIMD lanes where available.
  // Remainder entries (< 4) go through the single-chain path; both produce
  // the identical historical hash.
  std::array<std::vector<std::uint32_t>, 4> streams;
  std::size_t x = 0;
  for (; x + 4 <= n; x += 4) {
    const std::uint32_t* ptrs[4];
    std::size_t lens[4];
    std::uint64_t seeds[4];
    std::uint64_t out[4];
    for (int c = 0; c < 4; ++c) {
      primary_stream(*db_, label_of(labels[x + c]), streams[c]);
      ptrs[c] = streams[c].data();
      lens[c] = streams[c].size();
      seeds[c] = kFnvOffset;
    }
    kernels::fnv1a_batch4(ptrs, lens, seeds, out);
    for (int c = 0; c < 4; ++c) entry_hashes_[x + c] = out[c] & hash_mask_;
    if (max_bucket_occupancy_ > 0) {
      for (int c = 0; c < 4; ++c) {
        secondary_stream(*db_, label_of(labels[x + c]), streams[c]);
        ptrs[c] = streams[c].data();
        lens[c] = streams[c].size();
        seeds[c] = kFnv2Offset;
      }
      kernels::fnv1a_batch4(ptrs, lens, seeds, out);
      for (int c = 0; c < 4; ++c) entry_h2_[x + c] = out[c];
    }
  }
  for (; x < n; ++x) {
    entry_hashes_[x] = hash_impl(label_of(labels[x]));
    if (max_bucket_occupancy_ > 0) entry_h2_[x] = hash2_impl(label_of(labels[x]));
  }

  // Pass 2: bucket and posting insertion, ascending x (deterministic).
  std::vector<unicode::CodePoint> uniq;
  for (std::size_t y = 0; y < n; ++y) {
    const auto& label = label_of(labels[y]);
    auto& bucket = buckets_[entry_hashes_[y]];
    if (bucket.entries.empty()) ++non_empty_buckets_;
    bucket.entries.push_back(static_cast<std::uint32_t>(y));  // ascending

    uniq.clear();
    for (const auto c : label) uniq.push_back(to_cp(c));
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (const auto cp : uniq) {
      entries_by_cp_[cp].push_back(static_cast<std::uint32_t>(y));
    }
  }
  if (max_bucket_occupancy_ > 0) {
    for (auto& [h, bucket] : buckets_) refresh_split(bucket);
  }
}

template <typename Label>
void SkeletonIndex::materialize(std::span<const Label> labels) {
  if (!view_) return;
  // Rebuild the owned representation from the stored hashes — build()'s
  // pass 2 without any rehashing. `labels` must be the list the flat index
  // was built over (the rehash_changed contract already requires this).
  const auto flat = flat_;
  view_ = false;
  const std::size_t n = flat.entry_hashes.size();
  entry_hashes_.assign(flat.entry_hashes.begin(), flat.entry_hashes.end());
  entry_h2_.assign(flat.entry_h2.begin(), flat.entry_h2.end());
  hash_mask_ = flat.hash_mask;
  max_bucket_occupancy_ = static_cast<std::size_t>(flat.max_bucket_occupancy);
  buckets_.clear();
  entries_by_cp_.clear();
  non_empty_buckets_ = 0;
  split_buckets_ = 0;
  buckets_.reserve(n);

  std::vector<unicode::CodePoint> uniq;
  for (std::size_t y = 0; y < n; ++y) {
    auto& bucket = buckets_[entry_hashes_[y]];
    if (bucket.entries.empty()) ++non_empty_buckets_;
    bucket.entries.push_back(static_cast<std::uint32_t>(y));

    const auto& label = label_of(labels[y]);
    uniq.clear();
    for (const auto c : label) uniq.push_back(to_cp(c));
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (const auto cp : uniq) {
      entries_by_cp_[cp].push_back(static_cast<std::uint32_t>(y));
    }
  }
  if (max_bucket_occupancy_ > 0) {
    for (auto& [h, bucket] : buckets_) refresh_split(bucket);
  }
  flat_ = {};
  backing_.reset();
}

template <typename Label>
std::size_t SkeletonIndex::rehash_impl(std::span<const Label> labels,
                                       std::span<const unicode::CodePoint> changed) {
  if (view_) materialize(labels);  // copy-on-write before the first mutation
  std::vector<std::uint32_t> affected;
  for (const auto cp : changed) {
    const auto it = entries_by_cp_.find(cp);
    if (it == entries_by_cp_.end()) continue;
    affected.insert(affected.end(), it->second.begin(), it->second.end());
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()), affected.end());

  std::vector<std::uint64_t> touched;
  for (const auto x : affected) {
    const auto old_hash = entry_hashes_[x];
    const auto new_hash = hash_impl(label_of(labels[x]));
    if (max_bucket_occupancy_ > 0) entry_h2_[x] = hash2_impl(label_of(labels[x]));
    if (new_hash == old_hash) {
      // Same primary bucket, but under a cap the secondary hash (hence the
      // child partition) may have moved.
      if (max_bucket_occupancy_ > 0) touched.push_back(old_hash);
      continue;
    }
    auto& old_bucket = buckets_[old_hash].entries;
    old_bucket.erase(std::find(old_bucket.begin(), old_bucket.end(), x));
    if (old_bucket.empty()) --non_empty_buckets_;  // stays in the table, empty
    auto& new_bucket = buckets_[new_hash].entries;
    if (new_bucket.empty()) ++non_empty_buckets_;
    new_bucket.insert(std::upper_bound(new_bucket.begin(), new_bucket.end(), x), x);
    entry_hashes_[x] = new_hash;
    if (max_bucket_occupancy_ > 0) {
      touched.push_back(old_hash);
      touched.push_back(new_hash);
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const auto h : touched) refresh_split(buckets_[h]);
  return affected.size();
}

SkeletonIndex::SkeletonIndex(const homoglyph::HomoglyphDb& db,
                             std::span<const IdnEntry> idns,
                             SkeletonIndexOptions options)
    : db_{&db},
      hash_mask_{options.hash_bits >= 64 ? ~0ULL
                                         : (1ULL << options.hash_bits) - 1},
      max_bucket_occupancy_{options.max_bucket_occupancy} {
  build(idns);
}

SkeletonIndex::SkeletonIndex(const homoglyph::HomoglyphDb& db,
                             std::span<const std::string> labels,
                             SkeletonIndexOptions options)
    : db_{&db},
      hash_mask_{options.hash_bits >= 64 ? ~0ULL
                                         : (1ULL << options.hash_bits) - 1},
      max_bucket_occupancy_{options.max_bucket_occupancy} {
  build(labels);
}

SkeletonIndex::SkeletonIndex(const homoglyph::HomoglyphDb& db,
                             std::span<const unicode::U32String> labels,
                             SkeletonIndexOptions options)
    : db_{&db},
      hash_mask_{options.hash_bits >= 64 ? ~0ULL
                                         : (1ULL << options.hash_bits) - 1},
      max_bucket_occupancy_{options.max_bucket_occupancy} {
  build(labels);
}

std::uint64_t SkeletonIndex::hash_of(std::string_view reference) const {
  return hash_impl(reference);
}

std::uint64_t SkeletonIndex::hash_of(const unicode::U32String& reference) const {
  return hash_impl(reference);
}

SkeletonHashes SkeletonIndex::hashes_of(std::string_view reference) const {
  return {hash_impl(reference),
          max_bucket_occupancy_ > 0 ? hash2_impl(reference) : 0};
}

SkeletonHashes SkeletonIndex::hashes_of(const unicode::U32String& reference) const {
  return {hash_impl(reference),
          max_bucket_occupancy_ > 0 ? hash2_impl(reference) : 0};
}

std::size_t SkeletonIndex::rehash_changed(std::span<const IdnEntry> labels,
                                          std::span<const unicode::CodePoint> changed) {
  return rehash_impl(labels, changed);
}

std::size_t SkeletonIndex::rehash_changed(std::span<const std::string> labels,
                                          std::span<const unicode::CodePoint> changed) {
  return rehash_impl(labels, changed);
}

std::size_t SkeletonIndex::rehash_changed(std::span<const unicode::U32String> labels,
                                          std::span<const unicode::CodePoint> changed) {
  return rehash_impl(labels, changed);
}

db::SkeletonFlat SkeletonIndex::to_flat() const {
  db::SkeletonFlat flat;
  if (view_) {
    // Already flat: copy the mapped arrays verbatim.
    flat.hash_mask = flat_.hash_mask;
    flat.max_bucket_occupancy = flat_.max_bucket_occupancy;
    flat.non_empty_buckets = flat_.non_empty_buckets;
    flat.split_buckets = flat_.split_buckets;
    flat.entry_hashes.assign(flat_.entry_hashes.begin(), flat_.entry_hashes.end());
    flat.entry_h2.assign(flat_.entry_h2.begin(), flat_.entry_h2.end());
    flat.bucket_hashes.assign(flat_.bucket_hashes.begin(), flat_.bucket_hashes.end());
    flat.bucket_offsets.assign(flat_.bucket_offsets.begin(), flat_.bucket_offsets.end());
    flat.bucket_entries.assign(flat_.bucket_entries.begin(), flat_.bucket_entries.end());
    flat.bucket_child_start.assign(flat_.bucket_child_start.begin(),
                                   flat_.bucket_child_start.end());
    flat.child_h2.assign(flat_.child_h2.begin(), flat_.child_h2.end());
    flat.child_offsets.assign(flat_.child_offsets.begin(), flat_.child_offsets.end());
    flat.child_entries.assign(flat_.child_entries.begin(), flat_.child_entries.end());
    return flat;
  }

  flat.hash_mask = hash_mask_;
  flat.max_bucket_occupancy = static_cast<std::uint64_t>(max_bucket_occupancy_);
  flat.non_empty_buckets = static_cast<std::uint64_t>(non_empty_buckets_);
  flat.split_buckets = static_cast<std::uint64_t>(split_buckets_);
  flat.entry_hashes = entry_hashes_;
  flat.entry_h2 = entry_h2_;

  // Deterministic layout: buckets ascending by hash (empty buckets left by
  // rehash_changed are dropped — view_bucket treats absence as a miss),
  // split children ascending by secondary hash.
  std::vector<std::uint64_t> hashes;
  hashes.reserve(buckets_.size());
  for (const auto& [h, bucket] : buckets_) {
    if (!bucket.entries.empty()) hashes.push_back(h);
  }
  std::sort(hashes.begin(), hashes.end());

  flat.bucket_hashes = hashes;
  flat.bucket_offsets.reserve(hashes.size() + 1);
  flat.bucket_child_start.reserve(hashes.size() + 1);
  flat.bucket_offsets.push_back(0);
  flat.bucket_child_start.push_back(0);
  flat.child_offsets.push_back(0);
  std::vector<std::uint64_t> child_hashes;
  for (const auto h : hashes) {
    const auto& bucket = buckets_.at(h);
    flat.bucket_entries.insert(flat.bucket_entries.end(), bucket.entries.begin(),
                               bucket.entries.end());
    flat.bucket_offsets.push_back(static_cast<std::uint32_t>(flat.bucket_entries.size()));
    if (bucket.split) {
      child_hashes.clear();
      child_hashes.reserve(bucket.children.size());
      for (const auto& [h2, child] : bucket.children) child_hashes.push_back(h2);
      std::sort(child_hashes.begin(), child_hashes.end());
      for (const auto h2 : child_hashes) {
        const auto& child = bucket.children.at(h2);
        flat.child_h2.push_back(h2);
        flat.child_entries.insert(flat.child_entries.end(), child.begin(), child.end());
        flat.child_offsets.push_back(static_cast<std::uint32_t>(flat.child_entries.size()));
      }
    }
    flat.bucket_child_start.push_back(static_cast<std::uint32_t>(flat.child_h2.size()));
  }
  return flat;
}

SkeletonIndex SkeletonIndex::adopt_view(const homoglyph::HomoglyphDb& db,
                                        const db::SkeletonFlatView& flat,
                                        std::shared_ptr<const void> backing) {
  const auto bad = [](const char* what) {
    throw std::runtime_error(std::string{"SkeletonIndex: flat view "} + what);
  };
  const std::size_t n = flat.entry_hashes.size();
  const std::size_t buckets = flat.bucket_hashes.size();
  if (!flat.entry_h2.empty() && flat.entry_h2.size() != n) {
    bad("entry_h2 size mismatch");
  }
  if (flat.max_bucket_occupancy > 0 && n > 0 && flat.entry_h2.empty()) {
    bad("missing secondary hashes under an occupancy cap");
  }
  if (flat.bucket_offsets.size() != buckets + 1 ||
      flat.bucket_child_start.size() != buckets + 1) {
    bad("bucket offset table size mismatch");
  }
  if (!std::is_sorted(flat.bucket_hashes.begin(), flat.bucket_hashes.end()) ||
      std::adjacent_find(flat.bucket_hashes.begin(), flat.bucket_hashes.end()) !=
          flat.bucket_hashes.end()) {
    bad("bucket hashes not strictly ascending");
  }
  if (!std::is_sorted(flat.bucket_offsets.begin(), flat.bucket_offsets.end()) ||
      flat.bucket_offsets.front() != 0 ||
      flat.bucket_offsets.back() != flat.bucket_entries.size()) {
    bad("bucket offsets inconsistent");
  }
  if (!std::is_sorted(flat.bucket_child_start.begin(), flat.bucket_child_start.end()) ||
      flat.bucket_child_start.front() != 0 ||
      flat.bucket_child_start.back() != flat.child_h2.size()) {
    bad("bucket child table inconsistent");
  }
  if (flat.child_offsets.size() != flat.child_h2.size() + 1 ||
      !std::is_sorted(flat.child_offsets.begin(), flat.child_offsets.end()) ||
      flat.child_offsets.front() != 0 ||
      flat.child_offsets.back() != flat.child_entries.size()) {
    bad("child offsets inconsistent");
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    const auto first = flat.child_h2.begin() + flat.bucket_child_start[b];
    const auto last = flat.child_h2.begin() + flat.bucket_child_start[b + 1];
    if (!std::is_sorted(first, last) || std::adjacent_find(first, last) != last) {
      bad("child hashes not ascending within a bucket");
    }
  }
  for (const auto x : flat.bucket_entries) {
    if (x >= n) bad("bucket entry out of range");
  }
  for (const auto x : flat.child_entries) {
    if (x >= n) bad("child entry out of range");
  }

  SkeletonIndex index;
  index.db_ = &db;
  index.hash_mask_ = flat.hash_mask;
  index.max_bucket_occupancy_ = static_cast<std::size_t>(flat.max_bucket_occupancy);
  index.non_empty_buckets_ = static_cast<std::size_t>(flat.non_empty_buckets);
  index.split_buckets_ = static_cast<std::size_t>(flat.split_buckets);
  index.view_ = true;
  index.flat_ = flat;
  index.backing_ = std::move(backing);
  return index;
}

std::vector<std::uint64_t> SkeletonIndex::occupancy_histogram(
    std::size_t max_slots) const {
  std::vector<std::uint64_t> histogram(max_slots, 0);
  if (max_slots == 0) return histogram;
  if (view_) {
    for (std::size_t b = 0; b < flat_.bucket_hashes.size(); ++b) {
      const std::size_t size = flat_.bucket_offsets[b + 1] - flat_.bucket_offsets[b];
      if (size == 0) continue;
      const auto child_begin = flat_.bucket_child_start[b];
      const auto child_end = flat_.bucket_child_start[b + 1];
      if (child_begin != child_end) {
        for (auto c = child_begin; c != child_end; ++c) {
          const std::size_t child_size = flat_.child_offsets[c + 1] - flat_.child_offsets[c];
          if (child_size == 0) continue;
          ++histogram[std::min(child_size - 1, max_slots - 1)];
        }
        continue;
      }
      ++histogram[std::min(size - 1, max_slots - 1)];
    }
    return histogram;
  }
  for (const auto& entry : buckets_) {
    // Vacated buckets (rehash_changed moved every entry out) stay in the
    // table; size() - 1 would underflow for them.
    if (entry.second.entries.empty()) continue;
    if (entry.second.split) {
      // A split bucket's probe-visible units are its children — counting
      // them (not the parent union) is what shows the long tail shrink.
      for (const auto& [h2, child] : entry.second.children) {
        if (child.empty()) continue;
        ++histogram[std::min(child.size() - 1, max_slots - 1)];
      }
      continue;
    }
    const auto slot = std::min(entry.second.entries.size() - 1, max_slots - 1);
    ++histogram[slot];
  }
  return histogram;
}

}  // namespace sham::detect
