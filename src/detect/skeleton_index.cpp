#include "detect/skeleton_index.hpp"

#include <algorithm>
#include <type_traits>

namespace sham::detect {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a_u32(std::uint64_t h, std::uint32_t v) noexcept {
  for (int shift = 0; shift < 32; shift += 8) {
    h ^= (v >> shift) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

template <typename String>
std::uint64_t SkeletonIndex::hash_impl(const String& label) const {
  // Length-prefixed so equal-hash buckets are (length, skeleton) buckets up
  // to genuine FNV collisions (which verification absorbs).
  std::uint64_t h = fnv1a_u32(kFnvOffset, static_cast<std::uint32_t>(label.size()));
  for (const auto c : label) {
    const auto cp = static_cast<unicode::CodePoint>(
        static_cast<std::make_unsigned_t<typename String::value_type>>(c));
    h = fnv1a_u32(h, db_->canonical(cp));
  }
  return h & hash_mask_;
}

SkeletonIndex::SkeletonIndex(const homoglyph::HomoglyphDb& db,
                             std::span<const IdnEntry> idns,
                             SkeletonIndexOptions options)
    : db_{&db},
      hash_mask_{options.hash_bits >= 64 ? ~0ULL
                                         : (1ULL << options.hash_bits) - 1} {
  for (std::size_t x = 0; x < idns.size(); ++x) {
    buckets_[hash_impl(idns[x].unicode)].push_back(x);
  }
}

std::uint64_t SkeletonIndex::hash_of(std::string_view reference) const {
  return hash_impl(reference);
}

std::uint64_t SkeletonIndex::hash_of(const unicode::U32String& reference) const {
  return hash_impl(reference);
}

std::vector<std::uint64_t> SkeletonIndex::occupancy_histogram(
    std::size_t max_slots) const {
  std::vector<std::uint64_t> histogram(max_slots, 0);
  if (max_slots == 0) return histogram;
  for (const auto& entry : buckets_) {
    const auto slot = std::min(entry.second.size() - 1, max_slots - 1);
    ++histogram[slot];
  }
  return histogram;
}

}  // namespace sham::detect
