#include "core/browser_policy.hpp"

#include <algorithm>

#include "unicode/script.hpp"

namespace sham::core {

namespace {

using unicode::Script;

bool is_cjk_family(Script s) {
  return s == Script::kHan || s == Script::kHiragana || s == Script::kKatakana ||
         s == Script::kHangul || s == Script::kBopomofo;
}

}  // namespace

PolicyResult legacy_policy(const unicode::U32String&) {
  return {DisplayDecision::kUnicode, "legacy: always Unicode"};
}

PolicyResult mixed_script_policy(const unicode::U32String& label) {
  const auto scripts = unicode::scripts_in(label);
  if (scripts.size() <= 1) {
    return {DisplayDecision::kUnicode, "single script"};
  }
  // CJK carve-out: Han may combine with kana/Hangul/Bopomofo and Latin
  // (Japanese and Korean names legitimately mix these).
  const bool all_cjk_or_latin =
      std::all_of(scripts.begin(), scripts.end(), [](Script s) {
        return is_cjk_family(s) || s == Script::kLatin;
      });
  const bool has_cjk = std::any_of(scripts.begin(), scripts.end(), is_cjk_family);
  if (all_cjk_or_latin && has_cjk) {
    return {DisplayDecision::kUnicode, "CJK combination carve-out"};
  }
  return {DisplayDecision::kPunycode, "mixed scripts"};
}

PolicyResult whole_script_policy(const unicode::U32String& label,
                                 const homoglyph::HomoglyphDb* db) {
  auto result = mixed_script_policy(label);
  if (result.decision == DisplayDecision::kPunycode || db == nullptr) return result;

  // Whole-script confusable: every non-ASCII character is spoofing a Basic
  // Latin letter. Requires at least one non-ASCII character (otherwise the
  // label simply is ASCII).
  bool any_non_ascii = false;
  for (const auto cp : label) {
    if (unicode::is_ascii(cp)) continue;
    any_non_ascii = true;
    const auto homoglyphs = db->homoglyphs_of(cp);
    const bool has_latin = std::any_of(homoglyphs.begin(), homoglyphs.end(),
                                       [](unicode::CodePoint h) { return unicode::is_ldh(h); });
    if (!has_latin) return result;  // an honest native character: allow
  }
  if (any_non_ascii) {
    return {DisplayDecision::kPunycode, "whole-script confusable"};
  }
  return result;
}

}  // namespace sham::core
