// Emulation of browser IDN display policies (Section 2.2 of the paper).
//
// After the 2017 homograph disclosures, Chrome and Firefox render an IDN
// in Unicode only when it passes script-mixing checks; otherwise the
// Punycode form is shown. The paper's point: this punishes legitimate
// IDNs (Punycode is user-hostile) while *missing* single-script homographs
// (whole-script Cyrillic spoofs, CJK-vs-Katakana lookalikes). This module
// reproduces the policy so experiments can compare its catch rate with
// ShamFinder's database-driven detection.
#pragma once

#include <string>

#include "homoglyph/homoglyph_db.hpp"
#include "unicode/codepoint.hpp"

namespace sham::core {

enum class DisplayDecision {
  kUnicode,   // label rendered in Unicode (user sees the lookalike)
  kPunycode,  // label forced to "xn--..." form
};

struct PolicyResult {
  DisplayDecision decision = DisplayDecision::kUnicode;
  std::string reason;  // which rule fired
};

/// Baseline policy of pre-2017 browsers: always display Unicode.
[[nodiscard]] PolicyResult legacy_policy(const unicode::U32String& label);

/// Mixed-script policy in the spirit of Firefox/Chrome (Section 2.2):
///  * single-script labels display as Unicode;
///  * scripts may mix with Common/Inherited only;
///  * CJK combinations (Han + Hiragana/Katakana/Hangul/Bopomofo, plus
///    Latin) are allowed, mirroring the carve-out the paper highlights —
///    which is exactly why the 工業大学 / エ業大学 attack still displays;
///  * any other mix forces Punycode.
[[nodiscard]] PolicyResult mixed_script_policy(const unicode::U32String& label);

/// Mixed-script policy plus a whole-script-confusable check: a label whose
/// every non-ASCII character has a Basic Latin homoglyph in `db` is forced
/// to Punycode even when single-script (the hardening Chrome later
/// shipped). Pass nullptr to disable the confusable check.
[[nodiscard]] PolicyResult whole_script_policy(const unicode::U32String& label,
                                               const homoglyph::HomoglyphDb* db);

}  // namespace sham::core
