#include "core/shamfinder.hpp"

#include "idna/idna.hpp"
#include "util/strings.hpp"

namespace sham::core {

ShamFinder ShamFinder::build_from_font(const font::FontSource& font,
                                       const ShamFinderConfig& config,
                                       simchar::BuildStats* stats) {
  auto simchar_db = simchar::SimCharDb::build(font, config.build, stats);
  return ShamFinder{std::move(simchar_db), unicode::ConfusablesDb::embedded(), config.db,
                    config.engine};
}

ShamFinder::ShamFinder(simchar::SimCharDb simchar_db, const unicode::ConfusablesDb& uc,
                       const homoglyph::DbConfig& config,
                       const detect::EngineOptions& engine)
    : simchar_{std::move(simchar_db)},
      db_{simchar_, uc, config},
      engine_options_{engine},
      engine_{db_, engine_options_} {}

ShamFinder::ShamFinder(ShamFinder&& other) noexcept
    : simchar_{std::move(other.simchar_)},
      db_{std::move(other.db_)},
      engine_options_{other.engine_options_},
      // Rebind to our own db_ — memberwise move would leave the engine
      // pointing into the moved-from object.
      engine_{db_, engine_options_} {}

ShamFinder& ShamFinder::operator=(ShamFinder&& other) noexcept {
  if (this == &other) return *this;
  simchar_ = std::move(other.simchar_);
  db_ = std::move(other.db_);
  engine_options_ = other.engine_options_;
  engine_ = detect::Engine{db_, engine_options_};
  return *this;
}

std::vector<detect::IdnEntry> ShamFinder::extract_idns(
    std::span<const std::string> domains, std::string_view tld) {
  std::vector<detect::IdnEntry> out;
  const std::string suffix = "." + std::string{tld};
  for (const auto& domain : domains) {
    if (!util::ends_with(domain, suffix)) continue;
    const std::string_view sld{domain.data(), domain.size() - suffix.size()};
    if (!idna::is_a_label(sld)) continue;
    auto decoded = idna::to_u_label(sld);
    if (!decoded) continue;
    out.push_back({std::string{sld}, *std::move(decoded)});
  }
  return out;
}

std::vector<detect::Match> ShamFinder::find_homographs(
    std::span<const std::string> references, std::span<const detect::IdnEntry> idns,
    detect::DetectionStats* stats) const {
  auto response = engine_.detect({.references = references, .idns = idns});
  if (stats != nullptr) *stats = std::move(response.stats);
  return std::move(response.matches);
}

std::optional<std::string> ShamFinder::revert(const unicode::U32String& label) const {
  const auto reverted = db_.revert_to_ascii(label);
  if (!reverted) return std::nullopt;
  std::string out;
  out.reserve(reverted->size());
  for (const auto cp : *reverted) out += static_cast<char>(cp);
  return out;
}

}  // namespace sham::core
