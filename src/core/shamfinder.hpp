// ShamFinder: the top-level framework API (Figure 1).
//
//   Step 1  collect registered domain names (zone files / domain lists);
//   Step 2  extract IDNs (names with an "xn--" label);
//   Step 3  match IDNs against a reference list of popular names using the
//           homoglyph database (UC ∪ SimChar).
//
// This facade owns the built databases and exposes the pipeline steps;
// examples/ and bench/ drive everything through it.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "detect/detector.hpp"
#include "detect/engine.hpp"
#include "font/font_source.hpp"
#include "homoglyph/homoglyph_db.hpp"
#include "simchar/simchar.hpp"
#include "unicode/confusables.hpp"

namespace sham::core {

struct ShamFinderConfig {
  simchar::BuildOptions build;       // SimChar construction options
  homoglyph::DbConfig db;            // which sub-databases to enable
  detect::EngineOptions engine;      // detection strategy and threading
};

class ShamFinder {
 public:
  /// Build SimChar from `font`, compose with the embedded UC database.
  static ShamFinder build_from_font(const font::FontSource& font,
                                    const ShamFinderConfig& config = {},
                                    simchar::BuildStats* stats = nullptr);

  /// Compose from prebuilt databases (e.g. a deserialized SimChar).
  ShamFinder(simchar::SimCharDb simchar_db, const unicode::ConfusablesDb& uc,
             const homoglyph::DbConfig& config = {},
             const detect::EngineOptions& engine = {});

  // The facade owns a persistent detect::Engine wired to db_ so repeated
  // find_homographs calls against a stable IDN snapshot reuse the cached
  // skeleton/length index; moving rebinds the engine to the moved-into
  // database (the cache starts cold in the destination).
  ShamFinder(ShamFinder&& other) noexcept;
  ShamFinder& operator=(ShamFinder&& other) noexcept;
  ShamFinder(const ShamFinder&) = delete;
  ShamFinder& operator=(const ShamFinder&) = delete;

  [[nodiscard]] const simchar::SimCharDb& simchar() const noexcept { return simchar_; }
  [[nodiscard]] const homoglyph::HomoglyphDb& db() const noexcept { return db_; }

  /// Step 2: extract the IDNs of `tld` from a registered-domain list and
  /// decode them. Names whose A-labels fail to decode are skipped (they
  /// cannot be displayed as Unicode, hence cannot be homographs).
  /// Returned entries hold the SLD label with the TLD removed, as
  /// Algorithm 1 expects.
  [[nodiscard]] static std::vector<detect::IdnEntry> extract_idns(
      std::span<const std::string> domains, std::string_view tld = "com");

  /// Step 3: run Algorithm 1 through the detection engine, under the
  /// strategy and thread count of ShamFinderConfig::engine (default: the
  /// parallel sharded scan; Strategy::kSkeleton swaps in the skeleton-hash
  /// candidate index for zone-scale reference lists; output is identical
  /// under every strategy).
  ///
  /// detect::Engine::detect(DetectRequest) — reached through this facade,
  /// directly, or through serve::DetectionServer — is the single supported
  /// list-vs-list detection entry point; the old HomographDetector
  /// detect/detect_indexed/detect_unicode wrappers no longer exist.
  [[nodiscard]] std::vector<detect::Match> find_homographs(
      std::span<const std::string> references, std::span<const detect::IdnEntry> idns,
      detect::DetectionStats* stats = nullptr) const;

  [[nodiscard]] const detect::EngineOptions& engine_options() const noexcept {
    return engine_options_;
  }

  /// Revert a homograph to its plausible original (Section 6.4).
  [[nodiscard]] std::optional<std::string> revert(const unicode::U32String& label) const;

 private:
  simchar::SimCharDb simchar_;
  homoglyph::HomoglyphDb db_;
  detect::EngineOptions engine_options_;
  detect::Engine engine_;  // bound to db_; owns the cached indexes
};

}  // namespace sham::core
