#include "core/warning.hpp"

#include "unicode/blocks.hpp"
#include "unicode/script.hpp"
#include "unicode/utf8.hpp"
#include "util/strings.hpp"

namespace sham::core {

std::string describe_codepoint(unicode::CodePoint cp) {
  std::string out = util::format_codepoint(cp);
  out += " (";
  out += unicode::block_name(cp);
  const auto script = unicode::script_of(cp);
  if (script != unicode::Script::kCommon && script != unicode::Script::kUnknown) {
    out += ", ";
    out += unicode::script_name(script);
    out += " script";
  }
  out += ")";
  return out;
}

HomographWarning make_warning(const detect::Match& match, const std::string& reference,
                              const detect::IdnEntry& idn, std::string tld) {
  HomographWarning warning;
  warning.idn_display = unicode::to_utf8(idn.unicode);
  warning.original = reference;
  warning.tld = std::move(tld);
  for (const auto& diff : match.diffs) {
    CharExplanation e;
    e.index = diff.index;
    e.idn_char_utf8 = unicode::to_utf8(diff.idn_char);
    e.ref_char_utf8 = unicode::to_utf8(diff.ref_char);
    e.idn_char_desc = describe_codepoint(diff.idn_char);
    e.ref_char_desc = describe_codepoint(diff.ref_char);
    switch (diff.source) {
      case homoglyph::Source::kUc: e.source = "UC"; break;
      case homoglyph::Source::kSimChar: e.source = "SimChar"; break;
      case homoglyph::Source::kBoth: e.source = "UC+SimChar"; break;
    }
    warning.diffs.push_back(std::move(e));
  }
  return warning;
}

std::string HomographWarning::render() const {
  std::string out;
  out += "WARNING: use of homoglyph detected.\n";
  out += "You are accessing  " + idn_display + "." + tld + "\n";
  out += "Did you mean       " + original + "." + tld + " ?\n";
  for (const auto& d : diffs) {
    out += "  position " + std::to_string(d.index + 1) + ": '" + d.idn_char_utf8 +
           "' " + d.idn_char_desc + "\n";
    out += "    looks like '" + d.ref_char_utf8 + "' " + d.ref_char_desc +
           "  [flagged by " + d.source + "]\n";
  }
  return out;
}

}  // namespace sham::core
