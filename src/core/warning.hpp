// The countermeasure UI of Section 7.2 / Figure 12: instead of forcing
// Punycode display, show the IDN in Unicode and pinpoint exactly which
// characters were substituted and what they look like — possible only
// because the homoglyph database is character-based.
#pragma once

#include <string>
#include <vector>

#include "detect/detector.hpp"

namespace sham::core {

struct CharExplanation {
  std::size_t index = 0;
  std::string idn_char_utf8;
  std::string ref_char_utf8;
  std::string idn_char_desc;  // "U+0F00 (Tibetan)"
  std::string ref_char_desc;  // "U+006F (Basic Latin)"
  std::string source;         // which DB flagged the pair ("UC", "SimChar", ...)
};

struct HomographWarning {
  std::string idn_display;  // UTF-8 rendering of the IDN label
  std::string original;     // the reference label
  std::string tld;          // e.g. "com"
  std::vector<CharExplanation> diffs;

  /// Multi-line warning text in the spirit of Figure 12.
  [[nodiscard]] std::string render() const;
};

/// Build a warning from a detector match.
[[nodiscard]] HomographWarning make_warning(const detect::Match& match,
                                            const std::string& reference,
                                            const detect::IdnEntry& idn,
                                            std::string tld = "com");

/// "U+XXXX (<block>, <script>)" description for a code point.
[[nodiscard]] std::string describe_codepoint(unicode::CodePoint cp);

}  // namespace sham::core
