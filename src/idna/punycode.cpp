#include "idna/punycode.hpp"

#include <limits>
#include <stdexcept>

namespace sham::idna {

namespace {

// RFC 3492 section 5: parameter values for IDNA's Bootstring instance.
constexpr std::uint32_t kBase = 36;
constexpr std::uint32_t kTMin = 1;
constexpr std::uint32_t kTMax = 26;
constexpr std::uint32_t kSkew = 38;
constexpr std::uint32_t kDamp = 700;
constexpr std::uint32_t kInitialBias = 72;
constexpr std::uint32_t kInitialN = 128;
constexpr char kDelimiter = '-';

constexpr std::uint32_t kMaxUint = std::numeric_limits<std::uint32_t>::max();

// RFC 3492 section 6.1.
std::uint32_t adapt(std::uint32_t delta, std::uint32_t num_points, bool first_time) {
  delta = first_time ? delta / kDamp : delta / 2;
  delta += delta / num_points;
  std::uint32_t k = 0;
  while (delta > ((kBase - kTMin) * kTMax) / 2) {
    delta /= kBase - kTMin;
    k += kBase;
  }
  return k + (((kBase - kTMin + 1) * delta) / (delta + kSkew));
}

char encode_digit(std::uint32_t d) {
  // 0..25 -> 'a'..'z', 26..35 -> '0'..'9'
  return d < 26 ? static_cast<char>('a' + d) : static_cast<char>('0' + d - 26);
}

std::optional<std::uint32_t> decode_digit(char c) {
  if (c >= 'a' && c <= 'z') return static_cast<std::uint32_t>(c - 'a');
  if (c >= 'A' && c <= 'Z') return static_cast<std::uint32_t>(c - 'A');
  if (c >= '0' && c <= '9') return static_cast<std::uint32_t>(c - '0' + 26);
  return std::nullopt;
}

}  // namespace

std::string punycode_encode(const unicode::U32String& input) {
  std::string output;
  for (const auto cp : input) {
    if (!unicode::is_scalar_value(cp)) {
      throw std::invalid_argument{"punycode_encode: non-scalar input"};
    }
    if (cp < 0x80) output += static_cast<char>(cp);
  }
  const std::uint32_t basic_count = static_cast<std::uint32_t>(output.size());
  std::uint32_t handled = basic_count;
  if (basic_count > 0) output += kDelimiter;

  std::uint32_t n = kInitialN;
  std::uint32_t delta = 0;
  std::uint32_t bias = kInitialBias;

  while (handled < input.size()) {
    // Find the smallest code point >= n among the unhandled ones.
    std::uint32_t m = kMaxUint;
    for (const auto cp : input) {
      if (cp >= n && cp < m) m = cp;
    }
    if (m - n > (kMaxUint - delta) / (handled + 1)) {
      throw std::overflow_error{"punycode_encode: overflow"};
    }
    delta += (m - n) * (handled + 1);
    n = m;

    for (const auto cp : input) {
      if (cp < n && ++delta == 0) throw std::overflow_error{"punycode_encode: overflow"};
      if (cp == n) {
        std::uint32_t q = delta;
        for (std::uint32_t k = kBase;; k += kBase) {
          const std::uint32_t t = k <= bias ? kTMin : (k >= bias + kTMax ? kTMax : k - bias);
          if (q < t) break;
          output += encode_digit(t + (q - t) % (kBase - t));
          q = (q - t) / (kBase - t);
        }
        output += encode_digit(q);
        bias = adapt(delta, handled + 1, handled == basic_count);
        delta = 0;
        ++handled;
      }
    }
    ++delta;
    ++n;
  }
  return output;
}

std::optional<unicode::U32String> punycode_decode(std::string_view input) {
  unicode::U32String output;

  // Basic code points precede the last delimiter (if any).
  std::size_t basic_end = input.rfind(kDelimiter);
  if (basic_end == std::string_view::npos) basic_end = 0;
  for (std::size_t i = 0; i < basic_end; ++i) {
    const auto c = static_cast<unsigned char>(input[i]);
    if (c >= 0x80) return std::nullopt;
    output.push_back(c);
  }

  std::size_t in = basic_end > 0 ? basic_end + 1 : 0;
  std::uint32_t n = kInitialN;
  std::uint32_t i = 0;
  std::uint32_t bias = kInitialBias;

  while (in < input.size()) {
    const std::uint32_t old_i = i;
    std::uint32_t w = 1;
    for (std::uint32_t k = kBase;; k += kBase) {
      if (in >= input.size()) return std::nullopt;  // truncated
      const auto digit = decode_digit(input[in++]);
      if (!digit) return std::nullopt;
      if (*digit > (kMaxUint - i) / w) return std::nullopt;  // overflow
      i += *digit * w;
      const std::uint32_t t = k <= bias ? kTMin : (k >= bias + kTMax ? kTMax : k - bias);
      if (*digit < t) break;
      if (w > kMaxUint / (kBase - t)) return std::nullopt;  // overflow
      w *= kBase - t;
    }
    const auto out_size = static_cast<std::uint32_t>(output.size());
    bias = adapt(i - old_i, out_size + 1, old_i == 0);
    if (i / (out_size + 1) > kMaxUint - n) return std::nullopt;  // overflow
    n += i / (out_size + 1);
    i %= out_size + 1;
    if (!unicode::is_scalar_value(n)) return std::nullopt;
    output.insert(output.begin() + i, n);
    ++i;
  }
  return output;
}

}  // namespace sham::idna
