// Per-TLD IDN registration policies (Section 2.1 of the paper).
//
// The 2003 ICANN guideline requires registries to be "inclusion-based":
// each TLD publishes an IDN table of the code points it accepts (kept by
// IANA). The paper's examples: .com permits characters from 97 Unicode
// blocks, while .jp permits only LDH + Hiragana + Katakana + a CJK subset
// — so the Latin homograph "ácm.jp" is not registrable, but .com-style
// policies leave the whole homoglyph space open.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "unicode/codepoint.hpp"

namespace sham::idna {

/// An inclusion-based registration policy: a label is registrable iff it
/// is IDNA-valid and every code point falls in a permitted range.
class TldPolicy {
 public:
  struct Range {
    unicode::CodePoint first = 0;
    unicode::CodePoint last = 0;
  };

  TldPolicy(std::string tld, std::vector<Range> permitted);

  [[nodiscard]] const std::string& tld() const noexcept { return tld_; }

  /// True iff every character of the label is permitted by this TLD's IDN
  /// table (LDH is always permitted) and the label is a valid U-label.
  [[nodiscard]] bool is_registrable(const unicode::U32String& label) const;

  [[nodiscard]] bool permits(unicode::CodePoint cp) const;

  /// Built-in policies modelled on IANA's IDN tables:
  /// ".com"  — broad multi-block policy (Latin/Greek/Cyrillic/Arabic/
  ///           Hebrew/CJK/Hangul/kana/Indic/...; the paper counts 97
  ///           blocks);
  /// ".jp"   — LDH + Hiragana + Katakana + CJK subset (no Latin-lookalike
  ///           homoglyphs);
  /// ".de"   — LDH + Latin letters with diacritics only.
  static const TldPolicy& com();
  static const TldPolicy& jp();
  static const TldPolicy& de();

  /// Look up a built-in policy by TLD string; nullptr when unknown.
  static const TldPolicy* find(std::string_view tld);

 private:
  std::string tld_;
  std::vector<Range> permitted_;  // sorted, disjoint
};

}  // namespace sham::idna
