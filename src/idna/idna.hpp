// IDNA label and domain conversion between U-label (Unicode) and A-label
// ("xn--" + Punycode) forms, plus the IDN-extraction predicate that Step 2
// of the ShamFinder pipeline uses (domains starting with "xn--").
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "unicode/codepoint.hpp"

namespace sham::idna {

inline constexpr std::string_view kAcePrefix = "xn--";

/// True if the (single) label carries the ACE prefix.
[[nodiscard]] bool is_a_label(std::string_view label);

/// True if any label of the dot-separated domain name is an A-label.
/// This is the paper's "extract IDNs" predicate (Section 3.1, Step 2).
[[nodiscard]] bool is_idn(std::string_view domain);

/// Convert one Unicode label to its A-label. Pure-ASCII labels pass
/// through unchanged (lowercased). Throws std::invalid_argument for empty
/// labels or labels that would exceed the 63-octet LDH limit.
[[nodiscard]] std::string to_a_label(const unicode::U32String& label);

/// Decode one label: A-labels are Punycode-decoded; plain labels decode as
/// ASCII. Returns std::nullopt for malformed A-labels.
[[nodiscard]] std::optional<unicode::U32String> to_u_label(std::string_view label);

/// Convert a whole Unicode domain (code points, '.' separated via U+002E)
/// to its ASCII form; each label is converted independently.
[[nodiscard]] std::string domain_to_ascii(const unicode::U32String& domain);

/// UTF-8 convenience overload.
[[nodiscard]] std::string domain_to_ascii_utf8(std::string_view domain_utf8);

/// Decode a (possibly ACE-encoded) ASCII domain to code points; malformed
/// A-labels yield std::nullopt.
[[nodiscard]] std::optional<unicode::U32String> domain_to_unicode(std::string_view domain);

/// Render a decoded domain as UTF-8 for display.
[[nodiscard]] std::string domain_display(std::string_view domain);

/// Validate a single U-label against IDNA2008 lexical rules used here:
/// nonempty, ≤63 octets in ACE form, all code points PVALID (or LDH),
/// no leading/trailing hyphen, no "--" in positions 3-4 unless ACE.
[[nodiscard]] bool is_valid_u_label(const unicode::U32String& label);

}  // namespace sham::idna
