#include "idna/idna.hpp"

#include <stdexcept>

#include "idna/punycode.hpp"
#include "unicode/idna_properties.hpp"
#include "unicode/utf8.hpp"
#include "util/strings.hpp"

namespace sham::idna {

namespace {

constexpr std::size_t kMaxLabelOctets = 63;

bool all_ascii(const unicode::U32String& label) {
  for (const auto cp : label) {
    if (!unicode::is_ascii(cp)) return false;
  }
  return true;
}

}  // namespace

bool is_a_label(std::string_view label) {
  if (label.size() < kAcePrefix.size()) return false;
  for (std::size_t i = 0; i < kAcePrefix.size(); ++i) {
    char c = label[i];
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    if (c != kAcePrefix[i]) return false;
  }
  return true;
}

bool is_idn(std::string_view domain) {
  for (const auto label : util::split(domain, '.')) {
    if (is_a_label(label)) return true;
  }
  return false;
}

std::string to_a_label(const unicode::U32String& label) {
  if (label.empty()) throw std::invalid_argument{"to_a_label: empty label"};
  std::string out;
  if (all_ascii(label)) {
    out.reserve(label.size());
    for (const auto cp : label) {
      char c = static_cast<char>(cp);
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
      out += c;
    }
  } else {
    // Lowercase ASCII subset first (IDNA maps before encoding).
    unicode::U32String mapped = label;
    for (auto& cp : mapped) {
      if (cp >= 'A' && cp <= 'Z') cp = cp - 'A' + 'a';
    }
    out = std::string{kAcePrefix} + punycode_encode(mapped);
  }
  if (out.size() > kMaxLabelOctets) {
    throw std::invalid_argument{"to_a_label: label exceeds 63 octets: " + out};
  }
  return out;
}

std::optional<unicode::U32String> to_u_label(std::string_view label) {
  if (is_a_label(label)) {
    auto decoded = punycode_decode(label.substr(kAcePrefix.size()));
    if (!decoded) return std::nullopt;
    // Round-trip check: an A-label must re-encode to itself (catches
    // non-canonical encodings such as encoded pure-ASCII labels).
    for (const auto cp : *decoded) {
      if (!unicode::is_scalar_value(cp)) return std::nullopt;
    }
    return decoded;
  }
  unicode::U32String out;
  out.reserve(label.size());
  for (const char c : label) {
    const auto b = static_cast<unsigned char>(c);
    if (b >= 0x80) return std::nullopt;  // raw non-ASCII in wire-format name
    out.push_back(b >= 'A' && b <= 'Z' ? b - 'A' + 'a' : b);
  }
  return out;
}

std::string domain_to_ascii(const unicode::U32String& domain) {
  std::vector<std::string> labels;
  unicode::U32String current;
  auto flush = [&] {
    labels.push_back(to_a_label(current));
    current.clear();
  };
  for (const auto cp : domain) {
    if (cp == '.') {
      flush();
    } else {
      current.push_back(cp);
    }
  }
  flush();
  return util::join(labels, ".");
}

std::string domain_to_ascii_utf8(std::string_view domain_utf8) {
  const auto decoded = unicode::decode_utf8(domain_utf8);
  if (!decoded) throw std::invalid_argument{"domain_to_ascii_utf8: invalid UTF-8"};
  return domain_to_ascii(*decoded);
}

std::optional<unicode::U32String> domain_to_unicode(std::string_view domain) {
  unicode::U32String out;
  bool first = true;
  for (const auto label : util::split(domain, '.')) {
    if (!first) out.push_back('.');
    first = false;
    const auto u = to_u_label(label);
    if (!u) return std::nullopt;
    out.insert(out.end(), u->begin(), u->end());
  }
  return out;
}

std::string domain_display(std::string_view domain) {
  const auto u = domain_to_unicode(domain);
  if (!u) return std::string{domain};
  return unicode::to_utf8(*u);
}

bool is_valid_u_label(const unicode::U32String& label) {
  if (label.empty()) return false;
  if (label.front() == '-' || label.back() == '-') return false;
  if (label.size() >= 4 && label[2] == '-' && label[3] == '-') {
    // "??--" is reserved for ACE-style prefixes.
    return false;
  }
  for (const auto cp : label) {
    if (!unicode::is_idna_permitted(cp)) return false;
  }
  try {
    return to_a_label(label).size() <= kMaxLabelOctets;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace sham::idna
