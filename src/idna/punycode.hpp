// Punycode (RFC 3492): the Bootstring encoding that represents a Unicode
// label as LDH ASCII for the DNS wire format. IDN labels carry the ACE
// prefix "xn--" in front of the Punycode output (RFC 5890).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "unicode/codepoint.hpp"

namespace sham::idna {

/// Encode code points to Punycode (without the "xn--" prefix).
/// Throws std::invalid_argument on non-scalar input, std::overflow_error if
/// the input would overflow the delta arithmetic (RFC 3492 section 6.4).
[[nodiscard]] std::string punycode_encode(const unicode::U32String& input);

/// Decode Punycode (without prefix). Returns std::nullopt on malformed
/// input (bad digit, overflow, out-of-range code point).
[[nodiscard]] std::optional<unicode::U32String> punycode_decode(std::string_view input);

}  // namespace sham::idna
