#include "idna/tld_policy.hpp"

#include <algorithm>
#include <stdexcept>

#include "idna/idna.hpp"

namespace sham::idna {

TldPolicy::TldPolicy(std::string tld, std::vector<Range> permitted)
    : tld_{std::move(tld)}, permitted_{std::move(permitted)} {
  std::sort(permitted_.begin(), permitted_.end(),
            [](const Range& a, const Range& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < permitted_.size(); ++i) {
    if (permitted_[i].first > permitted_[i].last) {
      throw std::invalid_argument{"TldPolicy: inverted range"};
    }
    if (i > 0 && permitted_[i].first <= permitted_[i - 1].last) {
      throw std::invalid_argument{"TldPolicy: overlapping ranges"};
    }
  }
}

bool TldPolicy::permits(unicode::CodePoint cp) const {
  if (unicode::is_ldh(cp)) return true;  // LDH is universal
  const auto it = std::lower_bound(
      permitted_.begin(), permitted_.end(), cp,
      [](const Range& r, unicode::CodePoint value) { return r.last < value; });
  return it != permitted_.end() && cp >= it->first;
}

bool TldPolicy::is_registrable(const unicode::U32String& label) const {
  if (!is_valid_u_label(label)) return false;
  return std::all_of(label.begin(), label.end(),
                     [&](unicode::CodePoint cp) { return permits(cp); });
}

const TldPolicy& TldPolicy::com() {
  static const TldPolicy policy{
      "com",
      {
          {0x00C0, 0x024F},  // accented Latin, Extended A/B
          {0x0250, 0x02AF},  // IPA
          {0x0370, 0x03FF},  // Greek
          {0x0400, 0x052F},  // Cyrillic + supplement
          {0x0530, 0x058F},  // Armenian
          {0x0590, 0x05FF},  // Hebrew
          {0x0600, 0x06FF},  // Arabic
          {0x0900, 0x0DFF},  // Indic blocks
          {0x0E00, 0x0EFF},  // Thai, Lao
          {0x0F00, 0x0FFF},  // Tibetan
          {0x10A0, 0x10FF},  // Georgian
          {0x1100, 0x11FF},  // Hangul Jamo (registry table; IDNA still rejects)
          {0x1200, 0x137F},  // Ethiopic
          {0x13A0, 0x13FD},  // Cherokee
          {0x1400, 0x167F},  // Canadian Aboriginal
          {0x1780, 0x17FF},  // Khmer
          {0x1E00, 0x1FFF},  // Latin Additional, Greek Extended
          {0x3005, 0x3007},  // ideographic iteration/zero
          {0x3040, 0x30FF},  // Hiragana, Katakana
          {0x3105, 0x312F},  // Bopomofo
          {0x3400, 0x4DBF},  // CJK Ext A
          {0x4E00, 0x9FFF},  // CJK Unified
          {0xA000, 0xA4CF},  // Yi
          {0xA4D0, 0xA4FF},  // Lisu
          {0xA500, 0xA63F},  // Vai
          {0xAC00, 0xD7A3},  // Hangul Syllables
      }};
  return policy;
}

const TldPolicy& TldPolicy::jp() {
  static const TldPolicy policy{
      "jp",
      {
          {0x3005, 0x3007},  // 々, 〆, 〇
          {0x3041, 0x3096},  // Hiragana
          {0x30A1, 0x30FA},  // Katakana
          {0x30FC, 0x30FC},  // prolonged sound mark
          {0x3400, 0x4DBF},  // CJK Ext A (subset in reality)
          {0x4E00, 0x9FFF},  // CJK Unified (subset in reality)
      }};
  return policy;
}

const TldPolicy& TldPolicy::de() {
  static const TldPolicy policy{
      "de",
      {
          {0x00DF, 0x00F6},  // ß, à..ö
          {0x00F8, 0x00FF},  // ø..ÿ
          {0x0101, 0x017F},  // Latin Extended-A lowercase
      }};
  return policy;
}

const TldPolicy* TldPolicy::find(std::string_view tld) {
  if (tld == "com") return &com();
  if (tld == "jp") return &jp();
  if (tld == "de") return &de();
  return nullptr;
}

}  // namespace sham::idna
