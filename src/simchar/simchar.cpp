#include "simchar/simchar.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "unicode/idna_properties.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace sham::simchar {

namespace {

/// Resolve the legacy use_bucket_pruning knob: an explicit pair_strategy
/// wins; kAuto preserves the historical behaviour of the bool.
PairStrategy resolve_strategy(const BuildOptions& options) {
  if (options.pair_strategy != PairStrategy::kAuto) return options.pair_strategy;
  return options.use_bucket_pruning ? PairStrategy::kPopcountBand
                                    : PairStrategy::kAllPairs;
}

/// Step I: render every IDNA-permitted (when requested) code point the
/// font covers. Shared verbatim by the full build and the incremental
/// update — the font is the repertoire authority for both.
std::vector<MinerGlyph> render_repertoire(const font::FontSource& font,
                                          const BuildOptions& options,
                                          util::ThreadPool& pool,
                                          BuildStats& stats) {
  const auto coverage = font.coverage();
  std::vector<unicode::CodePoint> repertoire;
  repertoire.reserve(coverage.size());
  for (const auto cp : coverage) {
    if (!options.idna_only || unicode::is_idna_permitted(cp)) repertoire.push_back(cp);
  }
  stats.repertoire_size = repertoire.size();

  std::vector<MinerGlyph> rendered(repertoire.size());
  std::vector<char> covered(repertoire.size(), 0);
  pool.parallel_for(0, repertoire.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto g = font.glyph(repertoire[i]);
      if (!g) continue;
      rendered[i] = MinerGlyph{repertoire[i], *g, g->popcount()};
      covered[i] = 1;
    }
  });
  std::vector<MinerGlyph> glyphs;
  glyphs.reserve(rendered.size());
  for (std::size_t i = 0; i < rendered.size(); ++i) {
    if (covered[i]) glyphs.push_back(rendered[i]);
  }
  stats.glyphs_rendered = glyphs.size();
  return glyphs;
}

}  // namespace

SimCharDb SimCharDb::build(const font::FontSource& font, const BuildOptions& options,
                           BuildStats* stats) {
  if (options.threshold < 0) throw std::invalid_argument{"SimCharDb: threshold < 0"};
  BuildStats local_stats;
  util::ThreadPool pool{options.threads};

  // --- Step I: render the repertoire.
  util::Stopwatch watch;
  const auto glyphs = render_repertoire(font, options, pool, local_stats);
  local_stats.render_seconds = watch.seconds();

  // --- Step II: pairwise ∆ ≤ θ, via the shared pair miner.
  watch.reset();
  const PairMiner miner{glyphs, options.threshold, resolve_strategy(options), pool};
  auto pairs = miner.mine_all(&local_stats.mining);
  local_stats.pairs_compared = local_stats.mining.delta_evaluations;
  local_stats.pairs_found = pairs.size();
  local_stats.compare_seconds = watch.seconds();

  // --- Step III: eliminate sparse characters from the extracted pairs.
  watch.reset();
  std::unordered_set<unicode::CodePoint> sparse;
  for (const auto& g : glyphs) {
    if (g.popcount < options.min_black_pixels) sparse.insert(g.cp);
  }
  std::size_t eliminated_chars = 0;
  {
    std::unordered_set<unicode::CodePoint> touched;
    for (const auto& p : pairs) {
      if (sparse.contains(p.a)) touched.insert(p.a);
      if (sparse.contains(p.b)) touched.insert(p.b);
    }
    eliminated_chars = touched.size();
  }
  std::erase_if(pairs, [&](const HomoglyphPair& p) {
    return sparse.contains(p.a) || sparse.contains(p.b);
  });
  local_stats.sparse_eliminated = eliminated_chars;
  local_stats.pairs_after_sparse = pairs.size();
  local_stats.sparse_seconds = watch.seconds();

  if (stats != nullptr) *stats = local_stats;
  return SimCharDb{std::move(pairs)};
}

SimCharDb::SimCharDb(std::vector<HomoglyphPair> pairs) : pairs_{std::move(pairs)} {
  for (auto& p : pairs_) {
    if (p.a == p.b) throw std::invalid_argument{"SimCharDb: reflexive pair"};
    if (p.a > p.b) std::swap(p.a, p.b);
  }
  std::sort(pairs_.begin(), pairs_.end());
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end(),
                           [](const HomoglyphPair& x, const HomoglyphPair& y) {
                             return x.a == y.a && x.b == y.b;
                           }),
               pairs_.end());
  index();
}

void SimCharDb::index() {
  by_char_.clear();
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    by_char_[pairs_[i].a].push_back(i);
    by_char_[pairs_[i].b].push_back(i);
  }
  // Sort each posting list by partner code point so delta_of can binary-
  // search it (hot in the detect verify path) and homoglyphs_of comes out
  // ascending without a per-query sort.
  for (auto& [cp, postings] : by_char_) {
    std::sort(postings.begin(), postings.end(),
              [&, c = cp](std::size_t x, std::size_t y) {
                const auto px = pairs_[x].a == c ? pairs_[x].b : pairs_[x].a;
                const auto py = pairs_[y].a == c ? pairs_[y].b : pairs_[y].a;
                return px < py;
              });
  }
}

bool SimCharDb::are_homoglyphs(unicode::CodePoint a, unicode::CodePoint b) const {
  return delta_of(a, b).has_value();
}

std::optional<int> SimCharDb::delta_of(unicode::CodePoint a, unicode::CodePoint b) const {
  if (a == b) return std::nullopt;
  if (a > b) std::swap(a, b);
  const auto it = by_char_.find(a);
  if (it == by_char_.end()) return std::nullopt;
  // Postings are sorted by partner code point (see index()), so the pair
  // {a, b} — stored canonically as (a, b) with a < b — is a binary search
  // away. Any posting whose partner is b must have a as its smaller member.
  const auto partner = [&](std::size_t idx) {
    return pairs_[idx].a == a ? pairs_[idx].b : pairs_[idx].a;
  };
  const auto& postings = it->second;
  const auto lo = std::lower_bound(postings.begin(), postings.end(), b,
                                   [&](std::size_t idx, unicode::CodePoint value) {
                                     return partner(idx) < value;
                                   });
  if (lo == postings.end() || partner(*lo) != b) return std::nullopt;
  return pairs_[*lo].delta;
}

std::vector<unicode::CodePoint> SimCharDb::homoglyphs_of(unicode::CodePoint cp) const {
  std::vector<unicode::CodePoint> out;
  const auto it = by_char_.find(cp);
  if (it == by_char_.end()) return out;
  out.reserve(it->second.size());
  // Postings are partner-sorted and pairs are unique, so the output is
  // already ascending and duplicate-free.
  for (const auto idx : it->second) {
    out.push_back(pairs_[idx].a == cp ? pairs_[idx].b : pairs_[idx].a);
  }
  return out;
}

std::vector<unicode::CodePoint> SimCharDb::characters() const {
  std::vector<unicode::CodePoint> out;
  out.reserve(by_char_.size());
  for (const auto& [cp, idxs] : by_char_) out.push_back(cp);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t SimCharDb::character_count() const { return by_char_.size(); }

std::string SimCharDb::serialize() const {
  std::string out;
  out.reserve(pairs_.size() * 20);
  for (const auto& p : pairs_) {
    out += util::format_codepoint(p.a);
    out += ' ';
    out += util::format_codepoint(p.b);
    out += ' ';
    out += std::to_string(p.delta);
    out += '\n';
  }
  return out;
}

SimCharDb SimCharDb::merge(const SimCharDb& a, const SimCharDb& b) {
  std::vector<HomoglyphPair> pairs = a.pairs_;
  pairs.insert(pairs.end(), b.pairs_.begin(), b.pairs_.end());
  // The constructor sorts by (a, b, delta) and keeps the first of each
  // (a, b) — i.e. the smaller recorded ∆ wins on conflict.
  return SimCharDb{std::move(pairs)};
}

SimCharDb update_with_new_characters(const SimCharDb& existing,
                                     const font::FontSource& font,
                                     const std::vector<unicode::CodePoint>& added,
                                     const BuildOptions& options, BuildStats* stats) {
  if (options.threshold < 0) {
    throw std::invalid_argument{"update_with_new_characters: threshold < 0"};
  }
  BuildStats local_stats;
  util::ThreadPool pool{options.threads};
  util::Stopwatch watch;

  // Render the full (old ∪ new) repertoire — the font is the repertoire
  // authority, exactly as in the full build.
  const auto glyphs = render_repertoire(font, options, pool, local_stats);
  local_stats.render_seconds = watch.seconds();

  std::unordered_set<unicode::CodePoint> added_set;
  for (const auto cp : added) added_set.insert(cp);

  // Compare only the added glyphs against the whole repertoire, through
  // the same miner as the full build: under kBlockIndex this probes the
  // block tables with just the added glyphs' blocks.
  watch.reset();
  const PairMiner miner{glyphs, options.threshold, resolve_strategy(options), pool};
  auto new_pairs = miner.mine_involving(added_set, &local_stats.mining);
  local_stats.pairs_compared = local_stats.mining.delta_evaluations;
  local_stats.pairs_found = new_pairs.size();
  local_stats.compare_seconds = watch.seconds();

  // Step III over the new pairs.
  watch.reset();
  std::unordered_map<unicode::CodePoint, int> popcount_of;
  for (const auto& g : glyphs) popcount_of[g.cp] = g.popcount;
  const auto is_sparse = [&](unicode::CodePoint cp) {
    // A code point absent from the rendered glyph set has an *unknown* ink
    // count; full-build Step III only eliminates characters it measured as
    // sparse, so unknown keeps the pair (operator[] would default to 0 and
    // silently erase it).
    const auto it = popcount_of.find(cp);
    return it != popcount_of.end() && it->second < options.min_black_pixels;
  };
  std::erase_if(new_pairs, [&](const HomoglyphPair& p) {
    return is_sparse(p.a) || is_sparse(p.b);
  });
  local_stats.pairs_after_sparse = new_pairs.size();
  local_stats.sparse_seconds = watch.seconds();

  if (stats != nullptr) *stats = local_stats;
  return SimCharDb::merge(existing, SimCharDb{std::move(new_pairs)});
}

DbDiff diff(const SimCharDb& before, const SimCharDb& after) {
  const auto key = [](const HomoglyphPair& p) {
    return (static_cast<std::uint64_t>(p.a) << 32) | p.b;
  };
  std::unordered_set<std::uint64_t> before_keys;
  for (const auto& p : before.pairs()) before_keys.insert(key(p));
  std::unordered_set<std::uint64_t> after_keys;
  for (const auto& p : after.pairs()) after_keys.insert(key(p));

  DbDiff out;
  for (const auto& p : after.pairs()) {
    if (!before_keys.contains(key(p))) out.added.push_back(p);
  }
  for (const auto& p : before.pairs()) {
    if (!after_keys.contains(key(p))) out.removed.push_back(p);
  }
  return out;
}

SimCharDb SimCharDb::parse(std::string_view text) {
  std::vector<HomoglyphPair> pairs;
  std::size_t line_no = 0;
  for (const auto line : util::split(text, '\n')) {
    ++line_no;
    const auto body = util::trim(line);
    if (body.empty() || body.front() == '#') continue;
    const auto fields = util::split_ws(body);
    if (fields.size() != 3) {
      throw std::invalid_argument{"SimCharDb::parse: line " + std::to_string(line_no) +
                                  ": expected 3 fields"};
    }
    HomoglyphPair p;
    p.a = util::parse_hex_codepoint(fields[0]);
    p.b = util::parse_hex_codepoint(fields[1]);
    p.delta = static_cast<int>(util::parse_u64(fields[2]));
    pairs.push_back(p);
  }
  return SimCharDb{std::move(pairs)};
}

}  // namespace sham::simchar
