#include "simchar/simchar.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "unicode/idna_properties.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace sham::simchar {

namespace {

/// Resolve the legacy use_bucket_pruning knob: an explicit pair_strategy
/// wins; kAuto preserves the historical behaviour of the bool.
PairStrategy resolve_strategy(const BuildOptions& options) {
  if (options.pair_strategy != PairStrategy::kAuto) return options.pair_strategy;
  return options.use_bucket_pruning ? PairStrategy::kPopcountBand
                                    : PairStrategy::kAllPairs;
}

/// Step I: render every IDNA-permitted (when requested) code point the
/// font covers. Shared verbatim by the full build and the incremental
/// update — the font is the repertoire authority for both.
std::vector<MinerGlyph> render_repertoire(const font::FontSource& font,
                                          const BuildOptions& options,
                                          util::ThreadPool& pool,
                                          BuildStats& stats) {
  const auto coverage = font.coverage();
  std::vector<unicode::CodePoint> repertoire;
  repertoire.reserve(coverage.size());
  for (const auto cp : coverage) {
    if (!options.idna_only || unicode::is_idna_permitted(cp)) repertoire.push_back(cp);
  }
  stats.repertoire_size = repertoire.size();

  std::vector<MinerGlyph> rendered(repertoire.size());
  std::vector<char> covered(repertoire.size(), 0);
  pool.parallel_for(0, repertoire.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto g = font.glyph(repertoire[i]);
      if (!g) continue;
      rendered[i] = MinerGlyph{repertoire[i], *g, g->popcount()};
      covered[i] = 1;
    }
  });
  std::vector<MinerGlyph> glyphs;
  glyphs.reserve(rendered.size());
  for (std::size_t i = 0; i < rendered.size(); ++i) {
    if (covered[i]) glyphs.push_back(rendered[i]);
  }
  stats.glyphs_rendered = glyphs.size();
  return glyphs;
}

}  // namespace

SimCharDb SimCharDb::build(const font::FontSource& font, const BuildOptions& options,
                           BuildStats* stats) {
  if (options.threshold < 0) throw std::invalid_argument{"SimCharDb: threshold < 0"};
  BuildStats local_stats;
  util::ThreadPool pool{options.threads};

  // --- Step I: render the repertoire.
  util::Stopwatch watch;
  const auto glyphs = render_repertoire(font, options, pool, local_stats);
  local_stats.render_seconds = watch.seconds();

  // --- Step II: pairwise ∆ ≤ θ, via the shared pair miner.
  watch.reset();
  const PairMiner miner{glyphs, options.threshold, resolve_strategy(options), pool};
  auto pairs = miner.mine_all(&local_stats.mining);
  local_stats.pairs_compared = local_stats.mining.delta_evaluations;
  local_stats.pairs_found = pairs.size();
  local_stats.compare_seconds = watch.seconds();

  // --- Step III: eliminate sparse characters from the extracted pairs.
  watch.reset();
  std::unordered_set<unicode::CodePoint> sparse;
  for (const auto& g : glyphs) {
    if (g.popcount < options.min_black_pixels) sparse.insert(g.cp);
  }
  std::size_t eliminated_chars = 0;
  {
    std::unordered_set<unicode::CodePoint> touched;
    for (const auto& p : pairs) {
      if (sparse.contains(p.a)) touched.insert(p.a);
      if (sparse.contains(p.b)) touched.insert(p.b);
    }
    eliminated_chars = touched.size();
  }
  std::erase_if(pairs, [&](const HomoglyphPair& p) {
    return sparse.contains(p.a) || sparse.contains(p.b);
  });
  local_stats.sparse_eliminated = eliminated_chars;
  local_stats.pairs_after_sparse = pairs.size();
  local_stats.sparse_seconds = watch.seconds();

  if (stats != nullptr) *stats = local_stats;
  return SimCharDb{std::move(pairs)};
}

SimCharDb::SimCharDb(std::vector<HomoglyphPair> pairs)
    : owned_pairs_{std::move(pairs)} {
  for (auto& p : owned_pairs_) {
    if (p.a == p.b) throw std::invalid_argument{"SimCharDb: reflexive pair"};
    if (p.a > p.b) std::swap(p.a, p.b);
  }
  std::sort(owned_pairs_.begin(), owned_pairs_.end());
  owned_pairs_.erase(std::unique(owned_pairs_.begin(), owned_pairs_.end(),
                                 [](const HomoglyphPair& x, const HomoglyphPair& y) {
                                   return x.a == y.a && x.b == y.b;
                                 }),
                     owned_pairs_.end());
  index();
}

SimCharDb& SimCharDb::operator=(const SimCharDb& other) {
  if (this == &other) return *this;
  if (other.is_view()) {
    // View copies share the immutable backing storage — no deep copy.
    owned_pairs_.clear();
    owned_chars_.clear();
    owned_offsets_.clear();
    owned_postings_.clear();
    pairs_ = other.pairs_;
    chars_ = other.chars_;
    offsets_ = other.offsets_;
    postings_ = other.postings_;
    backing_ = other.backing_;
    return *this;
  }
  owned_pairs_ = other.owned_pairs_;
  owned_chars_ = other.owned_chars_;
  owned_offsets_ = other.owned_offsets_;
  owned_postings_ = other.owned_postings_;
  backing_.reset();
  rebind();
  return *this;
}

void SimCharDb::rebind() noexcept {
  pairs_ = owned_pairs_;
  chars_ = owned_chars_;
  offsets_ = owned_offsets_;
  postings_ = owned_postings_;
}

void SimCharDb::index() {
  // CSR posting index: one (cp, partner, pair) triple per pair endpoint,
  // sorted by (cp, partner) — each character's postings therefore come out
  // partner-sorted, so delta_of can binary-search them (hot in the detect
  // verify path) and homoglyphs_of is ascending without a per-query sort.
  struct Entry {
    unicode::CodePoint cp;
    unicode::CodePoint partner;
    std::uint32_t pair;
  };
  std::vector<Entry> entries;
  entries.reserve(2 * owned_pairs_.size());
  for (std::size_t i = 0; i < owned_pairs_.size(); ++i) {
    const auto& p = owned_pairs_[i];
    entries.push_back({p.a, p.b, static_cast<std::uint32_t>(i)});
    entries.push_back({p.b, p.a, static_cast<std::uint32_t>(i)});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& x, const Entry& y) {
    return x.cp != y.cp ? x.cp < y.cp : x.partner < y.partner;
  });

  owned_chars_.clear();
  owned_offsets_.clear();
  owned_postings_.clear();
  owned_postings_.reserve(entries.size());
  for (const auto& e : entries) {
    if (owned_chars_.empty() || owned_chars_.back() != e.cp) {
      owned_chars_.push_back(e.cp);
      owned_offsets_.push_back(static_cast<std::uint32_t>(owned_postings_.size()));
    }
    owned_postings_.push_back(e.pair);
  }
  owned_offsets_.push_back(static_cast<std::uint32_t>(owned_postings_.size()));
  rebind();
}

SimCharDb::Flat SimCharDb::flat() const noexcept {
  return {pairs_, chars_, offsets_, postings_};
}

SimCharDb SimCharDb::adopt_view(const Flat& flat, std::shared_ptr<const void> backing) {
  if (flat.offsets.size() != flat.chars.size() + 1 ||
      flat.postings.size() != 2 * flat.pairs.size() ||
      (!flat.offsets.empty() && flat.offsets.back() != flat.postings.size())) {
    throw std::runtime_error{"SimCharDb: flat view shape mismatch"};
  }
  SimCharDb db;
  db.pairs_ = flat.pairs;
  db.chars_ = flat.chars;
  db.offsets_ = flat.offsets;
  db.postings_ = flat.postings;
  db.backing_ = std::move(backing);
  return db;
}

bool SimCharDb::are_homoglyphs(unicode::CodePoint a, unicode::CodePoint b) const {
  return delta_of(a, b).has_value();
}

std::optional<int> SimCharDb::delta_of(unicode::CodePoint a, unicode::CodePoint b) const {
  if (a == b) return std::nullopt;
  if (a > b) std::swap(a, b);
  const auto slot = std::lower_bound(chars_.begin(), chars_.end(), a);
  if (slot == chars_.end() || *slot != a) return std::nullopt;
  const auto c = static_cast<std::size_t>(slot - chars_.begin());
  // Postings are sorted by partner code point (see index()), so the pair
  // {a, b} — stored canonically as (a, b) with a < b — is a binary search
  // away. Any posting whose partner is b must have a as its smaller member.
  const auto partner = [&](std::uint32_t idx) {
    return pairs_[idx].a == a ? pairs_[idx].b : pairs_[idx].a;
  };
  const auto postings = postings_.subspan(offsets_[c], offsets_[c + 1] - offsets_[c]);
  const auto lo = std::lower_bound(postings.begin(), postings.end(), b,
                                   [&](std::uint32_t idx, unicode::CodePoint value) {
                                     return partner(idx) < value;
                                   });
  if (lo == postings.end() || partner(*lo) != b) return std::nullopt;
  return pairs_[*lo].delta;
}

std::vector<unicode::CodePoint> SimCharDb::homoglyphs_of(unicode::CodePoint cp) const {
  std::vector<unicode::CodePoint> out;
  const auto slot = std::lower_bound(chars_.begin(), chars_.end(), cp);
  if (slot == chars_.end() || *slot != cp) return out;
  const auto c = static_cast<std::size_t>(slot - chars_.begin());
  out.reserve(offsets_[c + 1] - offsets_[c]);
  // Postings are partner-sorted and pairs are unique, so the output is
  // already ascending and duplicate-free.
  for (std::uint32_t i = offsets_[c]; i < offsets_[c + 1]; ++i) {
    const auto idx = postings_[i];
    out.push_back(pairs_[idx].a == cp ? pairs_[idx].b : pairs_[idx].a);
  }
  return out;
}

std::vector<unicode::CodePoint> SimCharDb::characters() const {
  return {chars_.begin(), chars_.end()};
}

std::string SimCharDb::serialize() const {
  std::string out;
  out.reserve(pairs_.size() * 20);
  for (const auto& p : pairs_) {
    out += util::format_codepoint(p.a);
    out += ' ';
    out += util::format_codepoint(p.b);
    out += ' ';
    out += std::to_string(p.delta);
    out += '\n';
  }
  return out;
}

SimCharDb SimCharDb::merge(const SimCharDb& a, const SimCharDb& b) {
  std::vector<HomoglyphPair> pairs{a.pairs_.begin(), a.pairs_.end()};
  pairs.insert(pairs.end(), b.pairs_.begin(), b.pairs_.end());
  // The constructor sorts by (a, b, delta) and keeps the first of each
  // (a, b) — i.e. the smaller recorded ∆ wins on conflict.
  return SimCharDb{std::move(pairs)};
}

SimCharDb update_with_new_characters(const SimCharDb& existing,
                                     const font::FontSource& font,
                                     const std::vector<unicode::CodePoint>& added,
                                     const BuildOptions& options, BuildStats* stats) {
  if (options.threshold < 0) {
    throw std::invalid_argument{"update_with_new_characters: threshold < 0"};
  }
  BuildStats local_stats;
  util::ThreadPool pool{options.threads};
  util::Stopwatch watch;

  // Render the full (old ∪ new) repertoire — the font is the repertoire
  // authority, exactly as in the full build.
  const auto glyphs = render_repertoire(font, options, pool, local_stats);
  local_stats.render_seconds = watch.seconds();

  std::unordered_set<unicode::CodePoint> added_set;
  for (const auto cp : added) added_set.insert(cp);

  // Compare only the added glyphs against the whole repertoire, through
  // the same miner as the full build: under kBlockIndex this probes the
  // block tables with just the added glyphs' blocks.
  watch.reset();
  const PairMiner miner{glyphs, options.threshold, resolve_strategy(options), pool};
  auto new_pairs = miner.mine_involving(added_set, &local_stats.mining);
  local_stats.pairs_compared = local_stats.mining.delta_evaluations;
  local_stats.pairs_found = new_pairs.size();
  local_stats.compare_seconds = watch.seconds();

  // Step III over the new pairs.
  watch.reset();
  std::unordered_map<unicode::CodePoint, int> popcount_of;
  for (const auto& g : glyphs) popcount_of[g.cp] = g.popcount;
  const auto is_sparse = [&](unicode::CodePoint cp) {
    // A code point absent from the rendered glyph set has an *unknown* ink
    // count; full-build Step III only eliminates characters it measured as
    // sparse, so unknown keeps the pair (operator[] would default to 0 and
    // silently erase it).
    const auto it = popcount_of.find(cp);
    return it != popcount_of.end() && it->second < options.min_black_pixels;
  };
  std::erase_if(new_pairs, [&](const HomoglyphPair& p) {
    return is_sparse(p.a) || is_sparse(p.b);
  });
  local_stats.pairs_after_sparse = new_pairs.size();
  local_stats.sparse_seconds = watch.seconds();

  if (stats != nullptr) *stats = local_stats;
  return SimCharDb::merge(existing, SimCharDb{std::move(new_pairs)});
}

RepertoirePanel render_repertoire_panel(const font::FontSource& font,
                                        const BuildOptions& options) {
  BuildStats stats;
  util::ThreadPool pool{options.threads};
  const auto glyphs = render_repertoire(font, options, pool, stats);

  RepertoirePanel out;
  out.cps.reserve(glyphs.size());
  out.popcounts.reserve(glyphs.size());
  out.panel.reset(glyphs.size());
  for (std::size_t i = 0; i < glyphs.size(); ++i) {
    out.cps.push_back(glyphs[i].cp);
    out.popcounts.push_back(glyphs[i].popcount);
    out.panel.set_glyph(i, glyphs[i].glyph.words().data());
  }
  return out;
}

DbDiff diff(const SimCharDb& before, const SimCharDb& after) {
  const auto key = [](const HomoglyphPair& p) {
    return (static_cast<std::uint64_t>(p.a) << 32) | p.b;
  };
  std::unordered_set<std::uint64_t> before_keys;
  for (const auto& p : before.pairs()) before_keys.insert(key(p));
  std::unordered_set<std::uint64_t> after_keys;
  for (const auto& p : after.pairs()) after_keys.insert(key(p));

  DbDiff out;
  for (const auto& p : after.pairs()) {
    if (!before_keys.contains(key(p))) out.added.push_back(p);
  }
  for (const auto& p : before.pairs()) {
    if (!after_keys.contains(key(p))) out.removed.push_back(p);
  }
  return out;
}

SimCharDb SimCharDb::parse(std::string_view text) {
  std::vector<HomoglyphPair> pairs;
  std::size_t line_no = 0;
  for (const auto line : util::split(text, '\n')) {
    ++line_no;
    const auto body = util::trim(line);
    if (body.empty() || body.front() == '#') continue;
    const auto fields = util::split_ws(body);
    if (fields.size() != 3) {
      throw std::invalid_argument{"SimCharDb::parse: line " + std::to_string(line_no) +
                                  ": expected 3 fields"};
    }
    HomoglyphPair p;
    p.a = util::parse_hex_codepoint(fields[0]);
    p.b = util::parse_hex_codepoint(fields[1]);
    p.delta = static_cast<int>(util::parse_u64(fields[2]));
    pairs.push_back(p);
  }
  return SimCharDb{std::move(pairs)};
}

}  // namespace sham::simchar
