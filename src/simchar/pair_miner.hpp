// Step II pair mining: generate every glyph pair with ∆ ≤ θ from a
// rendered repertoire. One candidate generator shared by the full
// SimCharDb::build and the incremental update_with_new_characters path,
// so both are tested (and optimized) once.
//
// Strategies:
//   kAllPairs      the exhaustive O(n²/2) sweep, exactly as Section 3.3
//                  describes it — the ground truth the others are checked
//                  against;
//   kPopcountBand  glyphs sorted by ink count; ∆(a, b) ≥ |pc(a) − pc(b)|,
//                  so each glyph is compared only against the run within
//                  ±θ ink pixels (the original bucket prune);
//   kBlockIndex    pigeonhole multi-index hashing. The 1024-bit bitmap
//                  (16 u64 words) is partitioned into θ + 1 contiguous
//                  word blocks; a pair with ∆ ≤ θ has fewer than θ + 1
//                  differing bits, so at least one block matches
//                  *exactly*. One hash table per block keyed by the
//                  block's words turns Step II into bucket-collision
//                  candidate generation followed by exact re-verification
//                  — zero recall loss, and on repertoires where ink
//                  counts cluster (the popcount band's worst case) the
//                  candidate set stays near the true pair count instead
//                  of degenerating to O(n²).
//
// Every strategy returns the identical, canonically sorted pair list for
// the same input, deterministic regardless of thread count: work is
// chunked through util::ThreadPool with per-chunk result slots merged in
// chunk order (no mutex-ordered insertion), and kBlockIndex sorts its
// deduplicated candidates before verification.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "font/glyph.hpp"
#include "kernels/glyph_panel.hpp"
#include "unicode/codepoint.hpp"

namespace sham::util {
class ThreadPool;
}

namespace sham::simchar {

struct HomoglyphPair {
  unicode::CodePoint a = 0;  // canonical: a < b
  unicode::CodePoint b = 0;
  int delta = 0;

  [[nodiscard]] auto operator<=>(const HomoglyphPair&) const = default;
};

enum class PairStrategy {
  kAuto,          // resolved from BuildOptions (legacy use_bucket_pruning knob)
  kAllPairs,      // exhaustive pairwise sweep
  kPopcountBand,  // ink-count window prune (exact)
  kBlockIndex,    // pigeonhole block hash tables (exact)
};

[[nodiscard]] std::string_view pair_strategy_name(PairStrategy strategy) noexcept;
[[nodiscard]] std::optional<PairStrategy> parse_pair_strategy(
    std::string_view name) noexcept;

/// One rendered repertoire member, as the miner consumes it.
struct MinerGlyph {
  unicode::CodePoint cp = 0;
  font::GlyphBitmap glyph;
  int popcount = 0;
};

/// Per-mining-call observability. `delta_evaluations` is the number of
/// full ∆ computations (the quantity Table 5 measures); the candidate
/// counters are only populated by kBlockIndex (zero otherwise).
struct MinerStats {
  PairStrategy strategy = PairStrategy::kAllPairs;  // strategy actually used
  std::uint64_t delta_evaluations = 0;  // delta_bounded calls performed
  /// Pairs an all-pairs sweep over the same domain would have evaluated
  /// (C(n,2) for mine_all; pairs touching a probe for mine_involving).
  std::uint64_t all_pairs_domain = 0;
  std::uint64_t comparisons_avoided = 0;  // all_pairs_domain - delta_evaluations

  // kBlockIndex only:
  std::size_t block_tables = 0;            // hash tables built (θ + 1)
  std::uint64_t candidates_emitted = 0;    // bucket collisions, incl. cross-table dupes
  std::uint64_t candidates_deduped = 0;    // unique (i, j) candidates verified
  std::uint64_t candidates_pruned = 0;     // killed by the popcount prune pre-∆
  std::uint64_t candidates_verified = 0;   // ∆ ≤ θ (kept)
  std::uint64_t candidates_rejected = 0;   // ∆ > θ (bucket over-approximation)
  /// Aggregate bucket-occupancy histogram across all block tables: slot i
  /// counts buckets holding exactly i+1 glyphs, last slot aggregates the
  /// tail (same convention as SkeletonIndex::occupancy_histogram).
  std::vector<std::uint64_t> bucket_histogram;
};

/// Candidate generator over a fixed glyph set. Construction builds the
/// strategy's index (popcount order, or the θ + 1 block tables); the
/// incremental update path then probes those same tables with only the
/// added glyphs' blocks instead of re-deriving its own window.
///
/// The glyph span must stay alive and unchanged for the miner's lifetime.
/// Code points are assumed unique across the span (one glyph per cp, as
/// FontSource::coverage guarantees).
class PairMiner {
 public:
  /// `strategy` must be concrete (not kAuto — the caller resolves the
  /// legacy BuildOptions knob). kBlockIndex needs θ + 1 ≤ 16 word blocks;
  /// for θ > 15 it silently falls back to kPopcountBand (strategy()
  /// reports the fallback). Throws std::invalid_argument on a negative
  /// threshold or kAuto.
  PairMiner(std::span<const MinerGlyph> glyphs, int threshold,
            PairStrategy strategy, util::ThreadPool& pool);

  /// The strategy mining actually runs under (after any fallback).
  [[nodiscard]] PairStrategy strategy() const noexcept { return strategy_; }

  /// Every pair {a, b} with ∆ ≤ θ, sorted by (a, b) — byte-identical
  /// across strategies and thread counts.
  [[nodiscard]] std::vector<HomoglyphPair> mine_all(MinerStats* stats = nullptr) const;

  /// Every pair with ∆ ≤ θ and at least one endpoint in `probes`
  /// (code points the font does not cover are ignored), sorted by (a, b).
  /// This is the incremental-update path: under kBlockIndex only the
  /// probes' blocks are hashed against the prebuilt tables.
  [[nodiscard]] std::vector<HomoglyphPair> mine_involving(
      const std::unordered_set<unicode::CodePoint>& probes,
      MinerStats* stats = nullptr) const;

 private:
  /// One pigeonhole table: block words (hashed) -> glyph indices whose
  /// block bits are (hash-)equal, ascending. Hash collisions between
  /// distinct block contents only add candidates; verification absorbs
  /// them, so correctness never depends on the hash.
  struct BlockTable {
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  };

  void build_popcount_order();
  void build_panel();
  void build_block_tables();
  [[nodiscard]] std::uint64_t block_key(std::size_t glyph, std::size_t block) const;
  [[nodiscard]] std::vector<HomoglyphPair> verify_candidates(
      std::vector<std::uint64_t>& packed, MinerStats* stats) const;
  void fill_block_stats(MinerStats* stats) const;

  std::span<const MinerGlyph> glyphs_;
  int threshold_ = 0;
  PairStrategy strategy_ = PairStrategy::kAllPairs;
  util::ThreadPool* pool_;

  /// kPopcountBand: glyph indices sorted by (popcount, cp).
  std::vector<std::uint32_t> order_;
  /// SoA copy of the glyph bitmaps for the batched kernels. Column k holds
  /// glyph k — except under kPopcountBand, where columns follow order_ so
  /// the ink window is a contiguous panel range.
  kernels::GlyphPanel panel_;
  /// kPopcountBand: popcounts in panel/order_ position (ascending), for
  /// binary-searching the window ends.
  std::vector<int> sorted_popcounts_;
  /// kBlockIndex: word span [first, last) per block, one table per block.
  std::vector<std::pair<int, int>> block_spans_;
  std::vector<BlockTable> tables_;
};

}  // namespace sham::simchar
