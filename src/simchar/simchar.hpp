// SimChar: the automatically constructed homoglyph database (Section 3.3).
//
// Pipeline:
//   Step I    render every IDNA-permitted code point the font covers as a
//             32x32 binary bitmap;
//   Step II   compute the pixel-difference metric ∆ for every pairwise
//             combination and keep pairs with ∆ ≤ θ (paper: θ = 4);
//   Step III  eliminate sparse characters (< 10 black pixels).
//
// The quadratic Step II is exact but is accelerated by a pluggable pair-
// mining strategy (simchar/pair_miner.hpp): the original pixel-count band
// prune — ∆(a, b) ≥ |popcount(a) − popcount(b)| — or a pigeonhole block
// index that hashes θ + 1 word blocks of each bitmap and verifies only
// bucket collisions. Both are exact; tests cross-check every strategy
// against the naive all-pairs build.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "font/font_source.hpp"
#include "simchar/pair_miner.hpp"
#include "unicode/codepoint.hpp"

namespace sham::simchar {

struct BuildOptions {
  int threshold = 4;           // keep pairs with ∆ ≤ threshold (Step II)
  int min_black_pixels = 10;   // sparse-character cutoff (Step III)
  std::size_t threads = 0;     // 0 = hardware concurrency
  /// Legacy knob, honored only when pair_strategy == kAuto:
  /// true → kPopcountBand, false → kAllPairs.
  bool use_bucket_pruning = true;
  bool idna_only = true;       // intersect repertoire with IDNA-PVALID
  /// Step II candidate generation strategy (see pair_miner.hpp).
  PairStrategy pair_strategy = PairStrategy::kAuto;
};

struct BuildStats {
  std::size_t repertoire_size = 0;    // code points considered
  std::size_t glyphs_rendered = 0;    // glyphs the font actually covers
  std::uint64_t pairs_compared = 0;   // full ∆ evaluations performed
  std::size_t pairs_found = 0;        // pairs with ∆ ≤ θ before Step III
  std::size_t sparse_eliminated = 0;  // characters dropped by Step III
  std::size_t pairs_after_sparse = 0;
  double render_seconds = 0.0;        // Table 5 row 1
  double compare_seconds = 0.0;       // Table 5 row 2
  double sparse_seconds = 0.0;        // Table 5 row 3
  /// Per-strategy Step II counters (strategy actually used, candidate
  /// funnel, bucket occupancy, comparisons avoided vs all-pairs).
  /// mining.delta_evaluations == pairs_compared.
  MinerStats mining;
};

/// The built homoglyph database (value type; cheap queries).
class SimCharDb {
 public:
  /// Run the three-step construction against `font`.
  static SimCharDb build(const font::FontSource& font, const BuildOptions& options = {},
                         BuildStats* stats = nullptr);

  SimCharDb() = default;
  explicit SimCharDb(std::vector<HomoglyphPair> pairs);

  /// True if {a, b} is listed (order-insensitive; reflexive pairs are not
  /// stored, so are_homoglyphs(x, x) is false).
  [[nodiscard]] bool are_homoglyphs(unicode::CodePoint a, unicode::CodePoint b) const;

  /// The ∆ recorded for {a, b}, if listed.
  [[nodiscard]] std::optional<int> delta_of(unicode::CodePoint a,
                                            unicode::CodePoint b) const;

  /// All homoglyphs of `cp`, ascending.
  [[nodiscard]] std::vector<unicode::CodePoint> homoglyphs_of(unicode::CodePoint cp) const;

  /// All pairs, canonical order.
  [[nodiscard]] const std::vector<HomoglyphPair>& pairs() const noexcept { return pairs_; }

  /// Every character participating in at least one pair ("# characters"
  /// in the paper's Table 1).
  [[nodiscard]] std::vector<unicode::CodePoint> characters() const;

  [[nodiscard]] std::size_t pair_count() const noexcept { return pairs_.size(); }
  [[nodiscard]] std::size_t character_count() const;

  /// Text serialization: one "U+XXXX U+YYYY <delta>" line per pair.
  [[nodiscard]] std::string serialize() const;
  static SimCharDb parse(std::string_view text);

  /// Merge two databases (union of pairs; on conflict the smaller ∆ wins).
  [[nodiscard]] static SimCharDb merge(const SimCharDb& a, const SimCharDb& b);

 private:
  void index();

  std::vector<HomoglyphPair> pairs_;
  std::unordered_map<unicode::CodePoint, std::vector<std::size_t>> by_char_;
};

/// Incremental maintenance (Section 4.2 of the paper: "we would need to
/// update SimChar when the Unicode standard adds a new set of glyphs" —
/// e.g. Unicode 12 added 553 characters over version 11).
///
/// Instead of redoing the full O(n²/2) pairwise pass, compare only the
/// `added` characters against the whole (old ∪ added) repertoire:
/// O(|added|·n) — plus the pairs among the added characters themselves.
/// The result merged with `existing` is exactly what a full rebuild over
/// the union repertoire would produce (property-tested).
///
/// `existing` must have been built from `font` with the same `options`;
/// characters in `added` that the font does not cover are ignored.
[[nodiscard]] SimCharDb update_with_new_characters(
    const SimCharDb& existing, const font::FontSource& font,
    const std::vector<unicode::CodePoint>& added, const BuildOptions& options = {},
    BuildStats* stats = nullptr);

/// Difference between two database versions: pairs only in `after`
/// (added) and only in `before` (removed).
struct DbDiff {
  std::vector<HomoglyphPair> added;
  std::vector<HomoglyphPair> removed;
};

[[nodiscard]] DbDiff diff(const SimCharDb& before, const SimCharDb& after);

}  // namespace sham::simchar
